package emmver

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// quickstartDesign is the package-doc example: a zero-initialized memory
// whose unwritten words must read as zero. BMC-3 proves it by forward
// termination after a handful of depths — enough to exercise per-depth
// trace events without making the test slow.
func quickstartDesign() *Design {
	d := NewDesign("demo")
	mem := d.Memory("ram", 4, 8, MemZero)
	addr := d.Input("addr", 4)
	data := mem.Read(addr, True)
	d.AssertAlways("read-zero", d.IsZero(data))
	return d
}

func TestVerifyCtxHonorsCancelledContext(t *testing.T) {
	d := quickstartDesign()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := VerifyCtx(ctx, d.N, 0, BMC3(50))
	if r.Kind != TimedOut {
		t.Fatalf("already-cancelled context must report TimedOut, got %v", r)
	}
	many := VerifyAllCtx(ctx, d.N, []int{0}, BMC3(50))
	if many.Results[0].Kind != TimedOut {
		t.Fatalf("VerifyAllCtx under a cancelled context must report TimedOut, got %v", many.Results[0])
	}
}

// TestTraceJournalMatchesEMMSizes runs the quickstart design with a JSONL
// trace attached and reconciles the journal against the run's Result: the
// cumulative emm_clauses field of the last per-depth end event must match
// Stats.EMM (the acceptance bound is 1%; the implementation reports the
// same counter, so the match is exact), every span must start and end
// exactly once, and the metrics registry must agree with Stats.
func TestTraceJournalMatchesEMMSizes(t *testing.T) {
	d := quickstartDesign()
	var buf bytes.Buffer
	journal := NewJSONLTrace(&buf)
	opt := Observe(BMC3(20), journal)
	r := Verify(d.N, 0, opt)
	if r.Kind != Proved {
		t.Fatalf("quickstart must prove: %v", r)
	}
	if err := journal.Flush(); err != nil {
		t.Fatal(err)
	}

	starts := make(map[float64]string)
	var depthEnds []map[string]interface{}
	var lastEMM float64
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev map[string]interface{}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("journal line is not valid JSON: %q: %v", line, err)
		}
		switch ev["ev"] {
		case "start":
			id := ev["span"].(float64)
			if _, dup := starts[id]; dup {
				t.Fatalf("span %v started twice", id)
			}
			starts[id] = ev["name"].(string)
		case "end":
			id := ev["span"].(float64)
			name, ok := starts[id]
			if !ok {
				t.Fatalf("span %v ended without starting", id)
			}
			if name != ev["name"] {
				t.Fatalf("span %v started as %q but ended as %q", id, name, ev["name"])
			}
			delete(starts, id)
			if ev["name"] == "bmc.depth" {
				depthEnds = append(depthEnds, ev)
				cum := ev["emm_clauses"].(float64)
				if cum < lastEMM {
					t.Fatalf("cumulative emm_clauses decreased: %v -> %v", lastEMM, cum)
				}
				lastEMM = cum
			}
		}
	}
	if len(starts) != 0 {
		t.Fatalf("%d spans never ended: %v", len(starts), starts)
	}
	if len(depthEnds) != r.Depth+1 {
		t.Fatalf("expected %d bmc.depth spans, got %d", r.Depth+1, len(depthEnds))
	}

	want := float64(r.Stats.EMM.Clauses() + r.Stats.EMM.InitClauses)
	if want == 0 {
		t.Fatal("quickstart run generated no EMM clauses; test design is wrong")
	}
	diff := lastEMM - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01*want {
		t.Fatalf("journal emm_clauses=%v vs Stats.EMM=%v: off by more than 1%%", lastEMM, want)
	}

	snap := opt.Obs.Registry().Snapshot()
	if got := snap["solver.solves"]; got != int64(r.Stats.SolveCalls) {
		t.Fatalf("registry solves=%d vs Stats.SolveCalls=%d", got, r.Stats.SolveCalls)
	}
	if got := snap["bmc.depth"]; got != int64(r.Depth) {
		t.Fatalf("registry depth gauge=%d vs Result.Depth=%d", got, r.Depth)
	}
	// The registry aggregates BOTH windows (the backward induction window
	// carries its own EMM generator), while Stats.EMM reports the forward
	// window alone — so the fleet-wide total must dominate it.
	if got := snap["emm.addr_clauses"] + snap["emm.readdata_clauses"] + snap["emm.init_clauses"]; got < int64(want) {
		t.Fatalf("registry EMM clause total=%d below forward-window Stats.EMM=%v", got, want)
	}
	// BMC3 traces proofs for PBA, which disables inprocessing wholesale.
	if snap["solver.simplifies"] != 0 || r.Stats.Simplifies != 0 {
		t.Fatalf("PBA run reported inprocessing work: registry=%d stats=%d",
			snap["solver.simplifies"], r.Stats.Simplifies)
	}
}

// TestInprocCountersReconcile runs a conflict-heavy shared-address design
// and reconciles the new solver counters three ways: Result.Stats, the
// metrics registry, and the bmc.simplify spans of the JSONL journal must
// all tell the same story. The quickstart design is too easy here — the
// inprocessing pass only fires once the solvers have logged enough
// conflicts to pay for it, and BMC-3's backward induction proves any
// latch-free property at depth 0 — so this test uses plain BMC-2 on the
// §S2 shape: one write and two reads racing on a shared address bus, with
// the optimizer caches off so every depth is a real refutation.
func TestInprocCountersReconcile(t *testing.T) {
	d := NewDesign("shared-addr")
	mem := d.Memory("ram", 4, 8, MemArbitrary)
	addr := d.Input("a", 4)
	mem.Write(addr, d.Input("wd", 8), d.InputBit("we"))
	re0 := d.InputBit("re0")
	re1 := d.InputBit("re1")
	rd0 := mem.Read(addr, re0)
	rd1 := mem.Read(addr, re1)
	both := d.N.And(re0, re1)
	d.AssertAlways("shared-read-agree", d.N.And(both, d.Eq(rd0, rd1).Not()).Not())
	d.Done()

	var buf bytes.Buffer
	journal := NewJSONLTrace(&buf)
	opt := BMC2(10)
	opt.DisableStrash = true
	opt.DisableEMMMemo = true
	opt = Observe(opt, journal)
	r := Verify(d.N, 0, opt)
	if r.Kind != NoCounterExample {
		t.Fatalf("valid property must not be falsified: %v", r)
	}
	if err := journal.Flush(); err != nil {
		t.Fatal(err)
	}

	if r.Stats.Simplifies == 0 {
		t.Fatal("multi-depth non-PBA run never simplified")
	}
	if r.Stats.Restarts != r.Stats.RestartsLuby+r.Stats.RestartsEMA {
		t.Fatalf("restart split does not sum: %d != %d + %d",
			r.Stats.Restarts, r.Stats.RestartsLuby, r.Stats.RestartsEMA)
	}

	snap := opt.Obs.Registry().Snapshot()
	for name, want := range map[string]int64{
		"solver.restarts":             r.Stats.Restarts,
		"solver.restarts_luby":        r.Stats.RestartsLuby,
		"solver.restarts_ema":         r.Stats.RestartsEMA,
		"solver.simplifies":           r.Stats.Simplifies,
		"solver.subsumed_clauses":     r.Stats.SubsumedClauses,
		"solver.strengthened_clauses": r.Stats.StrengthenedClauses,
		"solver.eliminated_vars":      r.Stats.EliminatedVars,
	} {
		if got := snap[name]; got != want {
			t.Errorf("registry %s=%d vs Stats=%d", name, got, want)
		}
	}

	var simplifySpans int
	var journalElim float64
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev map[string]interface{}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("journal line is not valid JSON: %q: %v", line, err)
		}
		if ev["ev"] == "end" && ev["name"] == "bmc.simplify" {
			simplifySpans++
			// Cumulative across both solvers; the last span carries the total.
			journalElim = ev["eliminated_vars"].(float64)
		}
	}
	// BMC-2 has only the forward solver, so the solver counter is exactly
	// one per span (a proofs run would log two).
	if int64(simplifySpans) != r.Stats.Simplifies {
		t.Errorf("journal has %d bmc.simplify spans vs Stats.Simplifies=%d (want 1 per span)",
			simplifySpans, r.Stats.Simplifies)
	}
	if int64(journalElim) != r.Stats.EliminatedVars {
		t.Errorf("journal eliminated_vars=%v vs Stats=%d", journalElim, r.Stats.EliminatedVars)
	}
}
