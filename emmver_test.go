package emmver

import (
	"testing"
	"time"
)

func TestFacadeQuickstart(t *testing.T) {
	d := NewDesign("demo")
	mem := d.Memory("ram", 4, 8, MemZero)
	addr := d.Input("addr", 4)
	data := mem.Read(addr, True)
	d.AssertAlways("read-zero", d.IsZero(data))
	res := Verify(d.N, 0, BMC3(20))
	if res.Kind != Proved {
		t.Fatalf("unwritten zero memory must read zero: %v", res)
	}
}

func TestFacadeCounterExampleAndReplay(t *testing.T) {
	d := NewDesign("demo")
	mem := d.Memory("ram", 3, 4, MemZero)
	mem.Write(d.Input("wa", 3), d.Input("wd", 4), d.InputBit("we"))
	rd := mem.Read(d.Input("ra", 3), True)
	d.AssertAlways("never-7", d.EqConst(rd, 7).Not())
	opt := BMC2(10)
	opt.ValidateWitness = true
	res := Verify(d.N, 0, opt)
	if res.Kind != CounterExample {
		t.Fatalf("expected counter-example, got %v", res)
	}
	if err := res.Witness.Replay(d.N, 0); err != nil {
		t.Fatalf("witness replay failed: %v", err)
	}
}

func TestFacadeVerifyAll(t *testing.T) {
	d := NewDesign("demo")
	c := d.Register("c", 3, 0)
	c.SetNext(d.Inc(c.Q))
	d.Done(c)
	d.AssertAlways("ne2", d.EqConst(c.Q, 2).Not())
	d.AssertAlways("tauto", True)
	opt := Options{MaxDepth: 10, Proofs: true}
	res := VerifyAll(d.N, []int{0, 1}, opt)
	if res.Results[0].Kind != CounterExample || res.Results[1].Kind != Proved {
		t.Fatalf("unexpected outcomes: %v %v", res.Results[0], res.Results[1])
	}
}

func TestFacadeExpandAndSimulate(t *testing.T) {
	d := NewDesign("demo")
	mem := d.Memory("ram", 2, 4, MemZero)
	mem.Read(d.Input("ra", 2), True)
	exp, err := ExpandMemories(d.N)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Memories) != 0 {
		t.Fatalf("expansion left memories behind")
	}
	s := NewSimulator(d.N)
	s.Step(nil)
	if s.Cycle() != 1 {
		t.Fatalf("simulator did not step")
	}
}

func TestFacadeProveWithAbstraction(t *testing.T) {
	d := NewDesign("demo")
	c := d.Register("c", 3, 0)
	wrap := d.EqConst(c.Q, 4)
	c.SetNext(d.MuxV(wrap, d.Const(3, 0), d.Inc(c.Q)))
	junk := d.Register("junk", 8, 0)
	junk.SetNext(d.Inc(junk.Q))
	d.Done(c, junk)
	d.AssertAlways("ne6", d.EqConst(c.Q, 6).Not())
	opt := Options{MaxDepth: 40, StabilityDepth: 5, Timeout: 30 * time.Second}
	res := ProveWithAbstraction(d.N, 0, opt)
	if res.Kind() != Proved {
		t.Fatalf("expected proof, got %v", res.Kind())
	}
	if res.Abs == nil || len(res.Abs.FreeLatches) == 0 {
		t.Fatalf("expected latch reduction")
	}
}

func TestFacadeVerilogAndLTL(t *testing.T) {
	src := `
module toggler(input clk, input en);
  reg t;
  always @(posedge clk) if (en) t <= !t;
  assert(!t || t, "tauto");
endmodule`
	n, err := CompileVerilog(src, "toggler")
	if err != nil {
		t.Fatal(err)
	}
	if Verify(n, 0, BMC1(5)).Kind != Proved {
		t.Fatalf("tautology must be proved")
	}
	// LTL: the toggle bit goes high eventually (with en held).
	f, err := ParseLTL("F thigh")
	if err != nil {
		t.Fatal(err)
	}
	var tbit Bit
	for _, l := range n.Latches {
		if l.Name == "t[0]" {
			tbit = MkBit(l.Node)
		}
	}
	w, err := FindLTLWitness(n, LTLBinding{"thigh": tbit}, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || w.K != 1 {
		t.Fatalf("expected witness at bound 1, got %v", w)
	}
}
