// Package emmver is a SAT-based bounded model checker for embedded memory
// systems built around Efficient Memory Modeling (EMM), reproducing
//
//	Ganai, Gupta, Ashar: "Verification of Embedded Memory Systems using
//	Efficient Memory Modeling", DATE 2005.
//
// Instead of expanding each embedded memory into 2^AW × DW state bits, EMM
// removes the arrays and constrains the retained memory interface signals
// with data-forwarding semantics at every analysis depth — for any number
// of memories, each with any number of read and write ports — and models
// arbitrary initial memory contents precisely, which makes SAT-based
// induction proofs possible on the abstracted model. Proof-based
// abstraction (PBA) identifies the latches, memories, and ports a property
// actually depends on and prunes the rest.
//
// # Quick start
//
//	d := emmver.NewDesign("demo")
//	mem := d.Memory("ram", 4, 8, emmver.MemZero)
//	addr := d.Input("addr", 4)
//	data := mem.Read(addr, emmver.True)
//	d.AssertAlways("read-zero", d.IsZero(data))
//	res := emmver.Verify(d.N, 0, emmver.BMC3(50))
//	fmt.Println(res)
//
// The package is a facade over the internal engine:
//
//	internal/sat     CDCL SAT solver with UNSAT-core proof tracing
//	internal/aig     and-inverter netlists with first-class memories
//	internal/rtl     word-level design entry (registers, buses, FSMs)
//	internal/unroll  time-frame expansion with tagged CNF
//	internal/core    the EMM constraint generation (the paper's §3–§4)
//	internal/expmem  the Explicit Modeling baseline
//	internal/pass    the static compile pipeline (COI, sweep, ports, dedup)
//	internal/bmc     BMC-1 / BMC-2 / BMC-3 engines and the PBA flow
//	internal/pba     latch-reason tracking and model reduction
//	internal/bdd     a BDD-based model checker for comparison
//	internal/sim     concrete-memory simulation and witness replay
//	internal/designs the paper's case studies (quicksort, filter, lookup)
//	internal/exp     the Table 1 / Table 2 / case-study harness
//	internal/spec    the serializable request schema (engine + options)
//	internal/serve   the verification job server and verdict cache
package emmver

import (
	"context"
	"io"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/btor2"
	"emmver/internal/expmem"
	"emmver/internal/ltl"
	"emmver/internal/obs"
	"emmver/internal/pass"
	"emmver/internal/rtl"
	"emmver/internal/sim"
	"emmver/internal/spec"
	"emmver/internal/verilog"
)

// Design-entry aliases: a Design is a word-level module under
// construction; Vec is a bus of bits.
type (
	// Design is a word-level design under construction.
	Design = rtl.Module
	// Vec is a bus, least-significant bit first.
	Vec = rtl.Vec
	// Reg is a register.
	Reg = rtl.Reg
	// Mem is an embedded memory handle.
	Mem = rtl.Mem
	// FSM is a finite-state-machine helper.
	FSM = rtl.FSM
	// Netlist is the compiled and-inverter netlist.
	Netlist = aig.Netlist
	// Bit is a single signal (possibly complemented).
	Bit = aig.Lit
)

// Constant bits.
const (
	// False is the constant-0 signal.
	False = aig.False
	// True is the constant-1 signal.
	True = aig.True
)

// Memory initialization modes.
const (
	// MemZero: every word starts at zero.
	MemZero = aig.MemZero
	// MemArbitrary: unconstrained initial contents, modeled precisely
	// (§4.2) so proofs remain sound.
	MemArbitrary = aig.MemArbitrary
	// MemImage: initialized from an explicit image (simulation and
	// explicit modeling only).
	MemImage = aig.MemImage
)

// NewDesign starts a new word-level design.
func NewDesign(name string) *Design { return rtl.NewModule(name) }

// MkBit builds the plain (non-complemented) signal of a netlist node.
func MkBit(n aig.NodeID) Bit { return aig.MkLit(n, false) }

// Verification aliases.
type (
	// Options configures a verification run; see BMC1/BMC2/BMC3 for the
	// paper's algorithm presets. For a serializable, cache-keyable
	// description of a run, use Spec (OptionsSpec converts between the
	// two).
	Options = bmc.Options
	// Result is a verification outcome.
	Result = bmc.Result
	// ManyResult is the outcome of a VerifyAll run.
	ManyResult = bmc.ManyResult
	// Witness is a counter-example trace.
	Witness = bmc.Witness
	// PBAResult is the outcome of the prove-with-abstraction flow.
	PBAResult = bmc.PBAResult
)

// Observability aliases: an Observer couples a metrics Registry (atomic
// counters/gauges every engine layer publishes into) with an optional
// TraceSink receiving structured span events. See Observe and NewJSONLTrace.
type (
	// Observer attaches metrics and tracing to a run (Options.Obs).
	Observer = obs.Observer
	// Registry accumulates named counters and gauges.
	Registry = obs.Registry
	// TraceSink consumes structured trace events.
	TraceSink = obs.Sink
	// TraceEvent is one span start/end or point event.
	TraceEvent = obs.Event
	// JSONLTrace is the journaling TraceSink included with the package.
	JSONLTrace = obs.JSONL
)

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewObserver couples a registry (nil: tracing only) with a trace sink
// (nil: metrics only).
func NewObserver(reg *Registry, sink TraceSink) *Observer { return obs.New(reg, sink) }

// NewJSONLTrace builds a buffered JSON-lines trace journal over w (one
// flat object per event, jq-friendly). Call Close (or Flush) when the run
// is done.
func NewJSONLTrace(w io.Writer) *JSONLTrace { return obs.NewJSONL(w) }

// Observe returns a copy of opt instrumented with a fresh metrics registry
// and the given trace sink (nil sink: metrics only). Read the totals
// afterwards via opt.Obs.Registry().Snapshot(). Equivalent to
// opt.WithTrace(sink).
func Observe(opt Options, sink TraceSink) Options {
	return opt.WithTrace(sink)
}

// Result kinds.
const (
	// NoCounterExample: the bound was exhausted.
	NoCounterExample = bmc.KindNoCE
	// CounterExample: a violation was found (and, by default on
	// unabstracted models, replayed on the concrete design).
	CounterExample = bmc.KindCE
	// Proved: a termination check proved the property for all depths.
	Proved = bmc.KindProof
	// TimedOut: the time budget expired.
	TimedOut = bmc.KindTimeout
)

// BMC1 configures plain BMC with induction proofs (Fig. 1) — for designs
// without memories or with explicitly expanded ones.
func BMC1(maxDepth int) Options { return bmc.BMC1(maxDepth) }

// BMC2 configures EMM falsification (Fig. 2).
func BMC2(maxDepth int) Options { return bmc.BMC2(maxDepth) }

// BMC3 configures EMM with proofs and proof-based abstraction (Fig. 3).
func BMC3(maxDepth int) Options { return bmc.BMC3(maxDepth) }

// KInd configures k-induction over EMM: base case, recurrence-diameter
// check, and an induction step strengthened by write-free-init retention —
// the unbounded-proof engine for properties plain induction loses to an
// adversarial initial memory state.
func KInd(maxDepth int) Options { return bmc.KInd(maxDepth) }

// Verify model-checks one safety property of a design.
func Verify(n *Netlist, prop int, opt Options) *Result {
	return VerifyCtx(context.Background(), n, prop, opt)
}

// VerifyCtx is Verify under a cancellation context: when ctx is cancelled
// (or its deadline passes) the run stops at the next solver poll and
// reports TimedOut. An already-cancelled ctx returns immediately.
func VerifyCtx(ctx context.Context, n *Netlist, prop int, opt Options) *Result {
	return bmc.CheckCtx(ctx, n, prop, opt)
}

// Spec is the serializable request schema: a plain JSON-marshalable
// description of a verification run (engine, depth, passes, performance
// knobs) with a canonical form and stable cache keys. It is the wire
// format of the emmserved job server and the single source of truth for
// the CLI engine flags.
type Spec = spec.Spec

// DefaultSpec is the schema's default request: BMC-3 at the default
// depth with the full compile pipeline.
func DefaultSpec() Spec { return spec.Default() }

// OptionsSpec lifts an engine configuration into the request schema —
// the inverse of Spec.Options. Fields outside the schema (observers,
// writers, callbacks) are dropped; round-tripping an Options produced
// by a Spec is lossless.
func OptionsSpec(o Options) Spec { return spec.FromOptions(o) }

// VerifySpec model-checks one safety property as described by a request
// spec — Verify with the configuration coming from the serializable
// schema instead of an Options struct. Invalid specs report an error
// instead of panicking.
func VerifySpec(n *Netlist, prop int, s Spec) (*Result, error) {
	return VerifySpecCtx(context.Background(), n, prop, s)
}

// VerifySpecCtx is VerifySpec under a cancellation context; see
// VerifyCtx. The run starts at depth 0; servers resuming from a cached
// NO_CE frontier use spec.Spec.RunCtx directly.
func VerifySpecCtx(ctx context.Context, n *Netlist, prop int, s Spec) (*Result, error) {
	return s.RunCtx(ctx, n, prop, 0, nil)
}

// VerifyAll model-checks many properties of one design. With Options.Jobs
// != 1 the properties are distributed over a worker pool (0 selects
// NumCPU) whose engines share a forward-termination oracle; Jobs == 1 — or
// Options.CollectDepthStats, which only the sequential engine can
// attribute to depths — runs all properties over a single shared
// incremental unrolling. Verdicts are identical either way.
func VerifyAll(n *Netlist, props []int, opt Options) *ManyResult {
	return VerifyAllCtx(context.Background(), n, props, opt)
}

// VerifyAllCtx is VerifyAll under a cancellation context; see VerifyCtx.
func VerifyAllCtx(ctx context.Context, n *Netlist, props []int, opt Options) *ManyResult {
	if opt.Jobs == 1 || opt.CollectDepthStats {
		return bmc.CheckManyCtx(ctx, n, props, opt)
	}
	return bmc.CheckManyParallelCtx(ctx, n, props, opt, opt.Jobs)
}

// ProveWithAbstraction runs the §4.3 flow: collect a stable latch-reason
// set with PBA, reduce the model (dropping irrelevant memories and ports),
// and prove on the reduced model.
func ProveWithAbstraction(n *Netlist, prop int, opt Options) *PBAResult {
	return bmc.ProveWithPBA(n, prop, opt)
}

// ProveWithAbstractionCtx is ProveWithAbstraction under a cancellation
// context spanning both phases; see VerifyCtx.
func ProveWithAbstractionCtx(ctx context.Context, n *Netlist, prop int, opt Options) *PBAResult {
	return bmc.ProveWithPBACtx(ctx, n, prop, opt)
}

// ProveWithInvariant first proves a helper invariant property, then
// assumes it as a per-cycle constraint while checking the main property —
// the Industry II methodology of §5 (prove G(WE=0 ∨ WD=0), then verify
// under it), generalized.
func ProveWithInvariant(n *Netlist, mainProp, invariantProp int, opt Options) (*bmc.InvariantResult, error) {
	return bmc.ProveWithInvariant(n, mainProp, invariantProp, opt)
}

// Compile-pipeline aliases: the static netlist-to-netlist passes every
// engine runs before unrolling. Options.Passes (or WithPasses) selects
// them per verification run; Compile runs the pipeline standalone.
type (
	// CompileOptions configures a standalone Compile run (pass spec +
	// observer).
	CompileOptions = pass.Options
	// CompiledModel is the reduced netlist, the renumbered property
	// indices, and the mapping back to source coordinates.
	CompiledModel = pass.Compiled
	// PassMapping translates compiled latch/memory/port coordinates back
	// to the source netlist. The engines use it internally to back-map
	// witnesses and PBA latch reasons; it is exposed for tools that
	// consume CompiledModel directly.
	PassMapping = pass.Mapping
)

// PassNames lists the available compile passes in default-pipeline order.
func PassNames() []string { return pass.Names() }

// Compile runs the static compile pipeline (cone-of-influence reduction,
// inductive constant sweep, memory-port pruning, structural dedup — the
// spec in opt.Spec, default all four) over n for the given property
// indices. Every Verify/VerifyAll run does this automatically under
// Options.Passes; call Compile directly to inspect the reduction or hand
// the reduced model to other tools.
func Compile(n *Netlist, props []int, opt CompileOptions) (*CompiledModel, error) {
	return pass.Compile(n, props, opt)
}

// ExpandMemories builds the Explicit Modeling baseline: every memory
// becomes 2^AW × DW latches. It reports an error for inputs explicit
// modeling cannot represent — combinational cycles through memory ports,
// or expansions past expmem.MaxExpandedBits (the blowup EMM exists to
// avoid).
func ExpandMemories(n *Netlist) (*Netlist, error) {
	out, _, err := expmem.Expand(n)
	return out, err
}

// NewSimulator builds a cycle-accurate concrete-memory simulator for a
// design.
func NewSimulator(n *Netlist) *sim.Simulator { return sim.New(n) }

// CompileVerilog elaborates a synthesizable-subset Verilog source (memory
// arrays become embedded memory modules; assert()/assume() items become
// properties and constraints). top selects the root module.
func CompileVerilog(src, top string) (*Netlist, error) {
	return verilog.ElaborateString(src, top)
}

// ReadBTOR2 parses a BTOR2 word-level model; array states become embedded
// memory modules verified through EMM.
func ReadBTOR2(r io.Reader) (*Netlist, error) { return btor2.Read(r) }

// WriteBTOR2 serializes a design as BTOR2, keeping memories word-level
// (array states with read nodes and write-chain next functions).
func WriteBTOR2(w io.Writer, n *Netlist) error { return btor2.Write(w, n) }

// LTLFormula is a linear-temporal-logic formula (see ParseLTL).
type LTLFormula = ltl.Formula

// LTLBinding maps formula atoms to design signals.
type LTLBinding = ltl.Binding

// ParseLTL parses an LTL formula ("G (req -> F ack)").
func ParseLTL(s string) (*LTLFormula, error) { return ltl.Parse(s) }

// FindLTLWitness searches for a bounded witness (path or lasso) of an
// existential LTL formula over the design. To refute "always ψ", search
// for a witness of ¬ψ.
func FindLTLWitness(n *Netlist, bind LTLBinding, f *LTLFormula, maxK int) (*ltl.LassoWitness, error) {
	return ltl.FindWitness(n, bind, f, ltl.SearchOptions{MaxK: maxK})
}
