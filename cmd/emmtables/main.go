// Command emmtables regenerates the paper's evaluation artifacts:
//
//	emmtables -exp t1            Table 1 (quicksort, EMM vs Explicit)
//	emmtables -exp t2            Table 2 (quicksort P2 with PBA)
//	emmtables -exp i1            Industry I (image filter, 216 properties)
//	emmtables -exp i2            Industry II (multi-port lookup engine)
//	emmtables -exp f1            constraint-growth validation ("figure")
//	emmtables -exp s3            compile-pipeline A/B (§S3)
//	emmtables -exp s4            cooperative-solving A/B (§S4)
//	emmtables -exp s5            distributed-solving A/B (§S5)
//	emmtables -exp s7            lazy-EMM A/B (§S7)
//	emmtables -exp all           everything
//
// By default experiments run at the reduced scale (small memory widths,
// everything finishes in seconds). Pass -scale paper for the paper's exact
// parameters; the explicit baseline then times out, as it did for the
// authors, so pick -timeout accordingly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"emmver/internal/cliobs"
	"emmver/internal/exp"
	"emmver/internal/spec"
)

func main() {
	which := flag.String("exp", "all", "experiment: t1, t2, i1, i2, f1, s3, s4, s5, s7, all")
	runs := flag.Int("runs", 3, "runs per side of the s4/s5/s7 A/Bs (median is reported)")
	scale := flag.String("scale", "reduced", "design sizing: reduced or paper")
	sizes := flag.String("n", "3,4,5", "quicksort array sizes for t1/t2")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	// Each experiment fixes its own engines and depths, so those schema
	// flags stay unregistered; -timeout and -jobs come from the schema with
	// this tool's tighter budget as the default.
	def := spec.Default()
	def.Timeout = spec.Duration(2 * time.Minute)
	engFlags := cliobs.RegisterEngineFor(def, "engine", "depth")
	obsFlags := cliobs.Register()
	flag.Parse()
	timeout := time.Duration(engFlags.Spec.Timeout)

	restart, noSimplify, passes, err := engFlags.Values()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	observer, obsStop := obsFlags.Setup()
	defer obsStop()
	cfg := exp.Config{
		Timeout: timeout, Jobs: engFlags.Spec.Jobs, Obs: observer,
		Restart: restart, NoSimplify: noSimplify, Passes: passes,
	}
	cfg.Share, cfg.Cube = engFlags.ShareCube()
	switch *scale {
	case "reduced":
		cfg.Scale = exp.ScaleReduced
	case "paper":
		cfg.Scale = exp.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 2 {
			fmt.Fprintf(os.Stderr, "bad -n element %q\n", s)
			os.Exit(2)
		}
		ns = append(ns, v)
	}

	run := func(name string) {
		switch name {
		case "t1":
			fmt.Printf("## Experiment T1 (scale=%s, timeout=%s)\n\n", cfg.Scale, timeout)
			fmt.Println(exp.RenderTable1(exp.Table1(cfg, ns)))
		case "t2":
			fmt.Printf("## Experiment T2 (scale=%s, timeout=%s)\n\n", cfg.Scale, timeout)
			fmt.Println(exp.RenderTable2(exp.Table2(cfg, ns)))
		case "i1":
			fmt.Printf("## Experiment I1 (scale=%s, timeout=%s)\n\n", cfg.Scale, timeout)
			fmt.Println(exp.RenderIndustry1(exp.Industry1(cfg)))
		case "i2":
			fmt.Printf("## Experiment I2 (scale=%s, timeout=%s)\n\n", cfg.Scale, timeout)
			fmt.Println(exp.RenderIndustry2(exp.Industry2(cfg)))
		case "f1":
			fmt.Printf("## Experiment F1 (constraint growth)\n\n")
			fmt.Println(exp.RenderGrowth(exp.Growth(exp.DefaultGrowth())))
		case "s3":
			fmt.Printf("## Experiment S3 (compile pipeline A/B)\n\n")
			ab, err := exp.CompileAB(exp.DefaultCompileAB())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Println(exp.RenderCompileAB(ab))
		case "s4":
			fmt.Printf("## Experiment S4 (cooperative solving A/B)\n\n")
			ab, err := exp.ShareAB(exp.DefaultShareAB(), *runs)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Println(exp.RenderShareAB(ab))
		case "s5":
			fmt.Printf("## Experiment S5 (distributed solving A/B, %d socket workers)\n\n", *engFlags.Workers)
			ab, err := exp.DistAB(exp.DefaultDistAB(), *engFlags.Workers, *runs)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Println(exp.RenderDistAB(ab))
		case "s7":
			fmt.Printf("## Experiment S7 (lazy EMM A/B)\n\n")
			ab, err := exp.LazyAB(exp.DefaultLazyAB(), *runs)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Println(exp.RenderLazyAB(ab))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *which == "all" {
		for _, name := range []string{"t1", "t2", "i1", "i2", "f1", "s3", "s4", "s5", "s7"} {
			run(name)
		}
		return
	}
	run(*which)
}
