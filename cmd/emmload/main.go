// Command emmload load-tests an emmserved job server with bursts of
// duplicate and near-duplicate verification requests, and reports the
// cache hit rates and request latencies the serving layer achieves:
//
//	emmload                      # self-hosts a server on a unix socket
//	emmload -addr tcp:host:9393  # drives an external server
//	emmload -burst 100 -depth 16
//
// The workload replays what a CI fleet does to a verification service:
//
//	cold    one first-sight solve of the growth design (fills the cache)
//	dup     a burst of byte-identical resubmissions (exact cache hits)
//	near    a burst of decoy-salted variants of the same problem — extra
//	        logic the compile pipeline removes — landing on the same
//	        content-addressed family (post-pass cache hits)
//	warm    a double-depth resubmission that must warm-start from the
//	        cached NO_CE frontier instead of re-checking the prefix
//	ce      a counter-example design submitted twice; the duplicate must
//	        return the identical witness from the cache
//
// Every phase cross-checks verdict parity against the cold run before
// reporting, so a hit-rate number can never paper over a wrong answer.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"emmver/internal/btor2"
	"emmver/internal/exp"
	"emmver/internal/serve"
	"emmver/internal/spec"
)

const counterSrc = `
module counter(input clk, input en, input rst);
  reg [3:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 4'd0;
    else if (en) cnt <= cnt + 4'd1;
  end
  assert(cnt != 4'd9, "never9");
endmodule`

func main() {
	addr := flag.String("addr", "", "emmserved address; empty self-hosts one on a unix socket")
	burst := flag.Int("burst", 50, "requests per duplicate/near-duplicate burst")
	depth := flag.Int("depth", 12, "analysis depth of the base request")
	solvers := flag.Int("solvers", 2, "worker pool of the self-hosted server")
	flag.Parse()

	target := *addr
	if target == "" {
		sock := filepath.Join(os.TempDir(), fmt.Sprintf("emmload-%d.sock", os.Getpid()))
		os.Remove(sock)
		l, err := net.Listen("unix", sock)
		if err != nil {
			fatal(err)
		}
		s := serve.New(serve.Config{Workers: *solvers})
		go s.Serve(l)
		defer func() {
			s.Shutdown()
			os.Remove(sock)
		}()
		target = "unix:" + sock
		fmt.Printf("self-hosted emmserved on %s (%d solvers)\n\n", sock, *solvers)
	}
	cl := serve.NewClient(target)
	if err := cl.Healthy(5 * time.Second); err != nil {
		fatal(err)
	}

	growth := func(decoys int) string {
		cfg := exp.DefaultGrowthSolve()
		cfg.AW, cfg.DW = 4, 8
		cfg.Decoys = decoys
		var buf bytes.Buffer
		if err := btor2.Write(&buf, exp.GrowthSolveNetlist(cfg)); err != nil {
			fatal(err)
		}
		return buf.String()
	}
	baseReq := func() serve.Request {
		return serve.Request{Format: "btor2", Source: growth(0), Prop: 0,
			Spec: spec.Spec{Engine: spec.EngineBMC2, Depth: *depth}}
	}

	type phase struct {
		name            string
		requests        int
		hits            int
		warmed          int
		lats            []time.Duration
		note            string
		parityViolation string
	}
	var phases []*phase
	run := func(p *phase, req serve.Request, check func(*serve.JobStatus) string) {
		t0 := time.Now()
		st, err := cl.Submit(req, true)
		if err != nil {
			fatal(err)
		}
		p.lats = append(p.lats, time.Since(t0))
		p.requests++
		if st.Cached {
			p.hits++
		}
		if st.WarmStart > 0 {
			p.warmed++
		}
		if p.parityViolation == "" && check != nil {
			p.parityViolation = check(st)
		}
	}

	// cold: first sight, must actually solve.
	cold := &phase{name: "cold", note: "first-sight solve"}
	var coldVerdict *serve.Verdict
	run(cold, baseReq(), func(st *serve.JobStatus) string {
		coldVerdict = st.Verdict
		if st.Cached || st.Verdict == nil || st.Verdict.Kind != "NO_CE" {
			return fmt.Sprintf("cold run: cached=%v verdict=%+v", st.Cached, st.Verdict)
		}
		return ""
	})
	phases = append(phases, cold)

	sameVerdict := func(st *serve.JobStatus, wantCached bool) string {
		if st.Verdict == nil || st.Verdict.Kind != coldVerdict.Kind || st.Verdict.Depth != coldVerdict.Depth {
			return fmt.Sprintf("verdict drifted: %+v (cold %+v)", st.Verdict, coldVerdict)
		}
		if wantCached && !st.Cached {
			return fmt.Sprintf("job %s was re-solved", st.ID)
		}
		return ""
	}

	// dup: byte-identical resubmissions.
	dup := &phase{name: "dup", note: "byte-identical burst"}
	for i := 0; i < *burst; i++ {
		run(dup, baseReq(), func(st *serve.JobStatus) string { return sameVerdict(st, true) })
	}
	phases = append(phases, dup)

	// near: decoy-salted variants, isomorphic after the compile pipeline.
	near := &phase{name: "near", note: "decoy-salted burst"}
	for i := 0; i < *burst; i++ {
		req := baseReq()
		req.Source = growth(1 + i%3)
		run(near, req, func(st *serve.JobStatus) string { return sameVerdict(st, true) })
	}
	phases = append(phases, near)

	// warm: double depth; the NO_CE frontier must seed the deeper run.
	warm := &phase{name: "warm", note: "double-depth resubmission"}
	wreq := baseReq()
	wreq.Spec.Depth = 2 * *depth
	run(warm, wreq, func(st *serve.JobStatus) string {
		if st.Cached {
			return "deeper request claimed a full hit"
		}
		if st.WarmStart != *depth+1 {
			return fmt.Sprintf("warm start at %d, want %d", st.WarmStart, *depth+1)
		}
		if st.Verdict == nil || st.Verdict.Kind != "NO_CE" || st.Verdict.Depth != 2**depth {
			return fmt.Sprintf("warm verdict: %+v", st.Verdict)
		}
		return ""
	})
	phases = append(phases, warm)

	// lazy: the same problem under demand-driven EMM. The performance knob
	// is excluded from the cache keys, so the burst must land as exact hits
	// on the eagerly-solved verdict; the deeper tail request then actually
	// solves lazily on the server, warm-started from the cached frontier.
	lz := &phase{name: "lazy", note: "lazy-spec burst + deeper lazy solve"}
	for i := 0; i < *burst; i++ {
		req := baseReq()
		req.Spec.Lazy = true
		run(lz, req, func(st *serve.JobStatus) string { return sameVerdict(st, true) })
	}
	lreq := baseReq()
	lreq.Spec.Lazy = true
	lreq.Spec.Depth = 2**depth + 4
	run(lz, lreq, func(st *serve.JobStatus) string {
		if st.Cached {
			return "deeper lazy request claimed a full hit"
		}
		if st.WarmStart != 2**depth+1 {
			return fmt.Sprintf("lazy warm start at %d, want %d", st.WarmStart, 2**depth+1)
		}
		if st.Verdict == nil || st.Verdict.Kind != "NO_CE" || st.Verdict.Depth != 2**depth+4 {
			return fmt.Sprintf("lazy verdict: %+v", st.Verdict)
		}
		return ""
	})
	phases = append(phases, lz)

	// ce: witness-bearing duplicate.
	ce := &phase{name: "ce", note: "counter-example + identical witness"}
	ceReq := serve.Request{Format: "verilog", Source: counterSrc, Prop: 0,
		Spec: spec.Spec{Engine: spec.EngineBMC3, Depth: 15}}
	var firstCE *serve.Verdict
	run(ce, ceReq, func(st *serve.JobStatus) string {
		firstCE = st.Verdict
		if st.Verdict == nil || st.Verdict.Kind != "CE" || st.Verdict.Witness == nil {
			return fmt.Sprintf("ce seed: %+v", st.Verdict)
		}
		return ""
	})
	run(ce, ceReq, func(st *serve.JobStatus) string {
		if !st.Cached || st.Verdict == nil || st.Verdict.Kind != "CE" {
			return fmt.Sprintf("ce duplicate re-solved: %+v", st)
		}
		if !reflect.DeepEqual(st.Verdict.Witness, firstCE.Witness) {
			return "cached witness differs from the solved one"
		}
		return ""
	})
	phases = append(phases, ce)

	fmt.Println("| phase | note | requests | cache hits | hit rate | warm starts | p50 | p95 |")
	fmt.Println("|-------|------|---------:|-----------:|---------:|------------:|----:|----:|")
	ok := true
	for _, p := range phases {
		fmt.Printf("| %s | %s | %d | %d | %.0f%% | %d | %s | %s |\n",
			p.name, p.note, p.requests, p.hits,
			100*float64(p.hits)/float64(p.requests), p.warmed,
			quantile(p.lats, 0.50), quantile(p.lats, 0.95))
		if p.parityViolation != "" {
			ok = false
			fmt.Fprintf(os.Stderr, "PARITY VIOLATION [%s]: %s\n", p.name, p.parityViolation)
		}
	}
	if stats, err := cl.Stats(); err == nil {
		fmt.Printf("\nserver: cache=%s queued=%s\n", stats["cache"], stats["queued"])
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Println("verdict parity: all phases consistent with the cold run")
}

func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx].Round(10 * time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
