// Command emmv verifies Verilog designs: it elaborates a synthesizable
// subset (with memory arrays inferred as embedded memory modules) and
// model-checks the design's assert() properties with the EMM-based
// engines.
//
//	emmv design.v                                # prove all assertions (BMC-3)
//	emmv -top quicksort -param N=4 design.v      # parameter override
//	emmv -engine bmc2 -depth 50 design.v         # falsification only
//	emmv -engine pba design.v                    # prove with abstraction
//	emmv -engine kind design.v                   # unbounded proof by k-induction
//	emmv -explicit design.v                      # Explicit Modeling baseline
//	emmv -vcd bug.vcd design.v                   # dump counter-examples
//	emmv -remote unix:/tmp/emmserved.sock d.v    # solve on an emmserved server
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emmver/internal/bmc"
	"emmver/internal/cliobs"
	"emmver/internal/expmem"
	"emmver/internal/par"
	"emmver/internal/serve"
	"emmver/internal/vcd"
	"emmver/internal/verilog"
)

type paramFlags map[string]uint64

func (p paramFlags) String() string { return "" }
func (p paramFlags) Set(s string) error {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseUint(s[eq+1:], 0, 64)
	if err != nil {
		return err
	}
	p[s[:eq]] = v
	return nil
}

func main() {
	top := flag.String("top", "", "top module (default: the last module in the file)")
	remote := flag.String("remote", "",
		"submit to an emmserved job server at this address (unix:/path, tcp:host:port, or a socket path) instead of solving locally")
	explicit := flag.Bool("explicit", false, "expand memories into latches first")
	vcdOut := flag.String("vcd", "", "write the first counter-example waveform here")
	stats := flag.Bool("stats", false, "print per-depth solver stats and EMM sizes (forces a sequential run)")
	verbose := flag.Bool("v", false, "log per-depth progress")
	engFlags := cliobs.RegisterEngine()
	obsFlags := cliobs.Register()
	params := paramFlags{}
	flag.Var(params, "param", "parameter override NAME=VALUE (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emmv [flags] design.v")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	file, err := verilog.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	topName := *top
	if topName == "" {
		topName = file.Modules[len(file.Modules)-1].Name
	}
	n, err := verilog.ElaborateWithParams(file, topName, params)
	if err != nil {
		fatal(err)
	}
	orig := n
	fmt.Printf("%s: %s, %d properties\n", topName, n.Stats(), len(n.Props))
	if len(n.Props) == 0 {
		fmt.Println("nothing to verify (no assert() items)")
		return
	}
	if *remote != "" {
		// Client mode: the server parses, keys, caches, and solves; this
		// process only renders verdicts. One job per assertion.
		if *explicit || engFlags.DistActive() {
			fatal(fmt.Errorf("-remote excludes -explicit, -listen, and -connect"))
		}
		cl := serve.NewClient(*remote)
		req := engFlags.Request()
		fails := 0
		for pi, p := range n.Props {
			st, err := cl.Submit(serve.Request{
				Format: "verilog", Source: string(src), Top: topName,
				Params: params, Prop: pi, Spec: req,
			}, true)
			if err != nil {
				fatal(err)
			}
			if st.State != "done" {
				fatal(fmt.Errorf("[%s] job %s %s: %s", p.Name, st.ID, st.State, st.Error))
			}
			note := ""
			if st.Cached {
				note = " (cached)"
			} else if st.WarmStart > 0 {
				note = fmt.Sprintf(" (warm-started at depth %d)", st.WarmStart)
			}
			v := st.Verdict
			fmt.Printf("  [%s] %s depth=%d t=%dms%s\n", p.Name, v.Kind, v.Depth, v.ElapsedMS, note)
			if v.Kind == "CE" {
				fails++
				if v.Witness != nil {
					fmt.Printf("  [%s] counter-example of length %d\n", p.Name, v.Witness.Length)
				}
			}
		}
		if fails > 0 {
			os.Exit(1)
		}
		return
	}
	if *explicit {
		var err error
		n, _, err = expmem.Expand(n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("explicit model: %s\n", n.Stats())
	}

	// The -engine/-depth/-timeout/-jobs/... flags all live in the request
	// schema; one conversion yields the engine configuration.
	req := engFlags.Request()
	engine := req.Canonical().Engine
	opt, err := engFlags.Options()
	if err != nil {
		fatal(err)
	}
	opt.ValidateWitness = !*explicit
	opt.CollectDepthStats = *stats
	if *verbose {
		allProps := make([]int, len(n.Props))
		for pi := range allProps {
			allProps[pi] = pi
		}
		if s := cliobs.DescribeCompile(n, allProps, opt.Passes); s != "" {
			fmt.Printf("compile: %s\n", s)
		}
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	observer, obsStop := obsFlags.Setup()
	opt.Obs = observer
	if *explicit {
		// The memories were expanded away; solve the latch-level model.
		opt.UseEMM = false
	}

	// Check every assertion concurrently, then render in declaration
	// order (the first CE in that order gets the waveform dump).
	results := make([]*bmc.Result, len(n.Props))
	abstractions := make([]string, len(n.Props))
	var depthStats []bmc.DepthStat
	if engFlags.DistActive() {
		// Distributed fleet: one property per fleet (the cube partition is
		// property-specific), brokered (-listen) or joined (-connect).
		if len(n.Props) != 1 {
			fatal(fmt.Errorf("distributed mode verifies one property per fleet; %s asserts %d", topName, len(n.Props)))
		}
		// Engine × dist eligibility is the capability resolver's call
		// (RunDist checks it); no per-engine special cases here.
		r, err := engFlags.RunDist(n, 0, opt)
		if err != nil {
			fatal(err)
		}
		results[0] = r
	} else if engine == "pba" {
		par.ForEach(context.Background(), opt.Jobs, len(n.Props), func(_ context.Context, _, pi int) {
			res := bmc.ProveWithPBA(n, pi, opt)
			if res.Proof != nil {
				results[pi] = res.Proof
			} else {
				results[pi] = res.Phase1
			}
			if res.Abs != nil {
				abstractions[pi] = res.Abs.String()
			}
		})
	} else {
		props := make([]int, len(n.Props))
		for pi := range props {
			props[pi] = pi
		}
		var mr *bmc.ManyResult
		if *stats {
			// Per-depth stats need one shared engine processing depths in
			// order, so the run is sequential.
			mr = bmc.CheckMany(n, props, opt)
		} else {
			mr = bmc.CheckManyParallel(n, props, opt, opt.Jobs)
		}
		copy(results, mr.Results)
		depthStats = mr.DepthStats
		if *stats {
			fmt.Printf("stats: %d solver calls, %d conflicts, restarts %d (luby %d, ema %d)\n",
				mr.Stats.SolveCalls, mr.Stats.Conflicts,
				mr.Stats.Restarts, mr.Stats.RestartsLuby, mr.Stats.RestartsEMA)
			if mr.Stats.Simplifies > 0 {
				fmt.Printf("inprocessing: %d passes, %d clauses subsumed, %d strengthened, %d vars eliminated\n",
					mr.Stats.Simplifies, mr.Stats.SubsumedClauses,
					mr.Stats.StrengthenedClauses, mr.Stats.EliminatedVars)
			}
		}
	}

	fails := 0
	for pi, p := range n.Props {
		r := results[pi]
		if abstractions[pi] != "" {
			fmt.Printf("  [%s] abstraction: %s\n", p.Name, abstractions[pi])
		}
		fmt.Printf("  [%s] %s\n", p.Name, r)
		if r.Kind == bmc.KindCE {
			fails++
			if r.Witness == nil {
				// A distributed peer holds the witness.
				continue
			}
			if !*explicit {
				r.Witness.Minimize(n, pi)
			}
			if *vcdOut != "" {
				f, err := os.Create(*vcdOut)
				if err != nil {
					fatal(err)
				}
				if err := vcd.DumpWitness(f, n, r.Witness, pi); err != nil {
					fatal(err)
				}
				f.Close()
				fmt.Printf("  [%s] waveform written to %s\n", p.Name, *vcdOut)
				*vcdOut = "" // only the first CE
			}
		}
	}
	if *stats {
		for _, d := range depthStats {
			fmt.Println(d)
		}
	}
	_ = orig
	obsStop()
	if fails > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
