// Command emmsat is a standalone DIMACS CNF solver over the library's CDCL
// core, with optional UNSAT-core extraction:
//
//	emmsat problem.cnf
//	emmsat -core problem.cnf
//	emmsat -restart luby -stats -trace run.jsonl problem.cnf
//
// It shares the engine CLIs' solver flag plumbing: -restart selects the
// restart strategy, -stats prints the full solver statistics block, and
// -trace/-progress/-pprof attach the observability layer exactly as on
// emmv/emmbmc/emmbtor.
//
// Exit status follows the SAT-competition convention: 10 for SAT, 20 for
// UNSAT, 1 for errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"emmver/internal/cliobs"
	"emmver/internal/obs"
	"emmver/internal/sat"
)

func main() {
	core := flag.Bool("core", false, "trace the proof and report an UNSAT core (clause indices)")
	budget := flag.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
	quiet := flag.Bool("q", false, "suppress the model/core listing")
	restart := flag.String("restart", "ema", "solver restart strategy: luby or ema (adaptive)")
	stats := flag.Bool("stats", false, "print the full solver statistics block")
	obsFlags := cliobs.Register()
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emmsat [-core] [-conflicts N] [-restart luby|ema] [-stats] problem.cnf")
		os.Exit(1)
	}
	mode, err := sat.ParseRestartMode(*restart)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	observer, stopObs := obsFlags.Setup()

	s := sat.New()
	s.Restart = mode
	if *core {
		s.EnableProofTracing()
	}
	s.ConflictBudget = *budget
	if *timeout > 0 {
		deadline := time.Now().Add(*timeout)
		s.Interrupt = func() bool { return time.Now().After(deadline) }
	}
	s.AttachObs(observer)

	start := time.Now()
	nc, err := readTagged(s, f, *core)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sp := observer.Span("sat.solve", obs.F("file", flag.Arg(0)))
	res := s.Solve()
	sp.End()
	elapsed := time.Since(start)
	s.PublishObs()
	st := s.Stats()
	fmt.Printf("c %d vars, %d clauses, %d conflicts, %d decisions, %d propagations, %.3fs\n",
		s.NumVars(), nc, st.Conflicts, st.Decisions, st.Propagations, elapsed.Seconds())
	if *stats {
		printStats(st)
	}

	code := 0
	switch res {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if !*quiet {
			s.WriteModelDIMACS(os.Stdout)
		}
		code = 10
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		if *core && !*quiet {
			tags := s.Core()
			fmt.Printf("c core: %d of %d clauses\n", len(tags), nc)
			fmt.Print("c core clause indices:")
			for _, tg := range tags {
				fmt.Printf(" %d", tg)
			}
			fmt.Println()
		}
		code = 20
	default:
		fmt.Println("s UNKNOWN")
	}
	stopObs()
	os.Exit(code)
}

// printStats renders the detailed statistics block in DIMACS comment lines.
func printStats(st sat.Stats) {
	fmt.Printf("c restarts: %d (luby %d, ema %d, blocked %d)\n",
		st.Restarts, st.RestartsLuby, st.RestartsEMA, st.RestartsBlocked)
	fmt.Printf("c learnts: %d added, %d deleted, %d reducedbs\n",
		st.LearntsAdded, st.LearntsDeleted, st.ReduceDBs)
	if st.LearntsAdded > 0 {
		fmt.Printf("c avg lbd: %.2f\n", float64(st.LBDSum)/float64(st.LearntsAdded))
	}
	fmt.Printf("c binary propagations: %d\n", st.BinPropagations)
	fmt.Printf("c inprocessing: %d passes, %d subsumed, %d strengthened, %d vars eliminated\n",
		st.Simplifies, st.SubsumedClauses, st.StrengthenedClauses, st.EliminatedVars)
}

// readTagged loads the CNF; with tagging, each clause carries its index so
// cores can reference input clauses.
func readTagged(s *sat.Solver, f *os.File, tagged bool) (int, error) {
	if !tagged {
		return s.ReadDIMACS(f)
	}
	// Re-read with per-clause tags: parse through a second solver to
	// reuse the DIMACS reader, then copy clause by clause.
	tmp := sat.New()
	n, err := tmp.ReadDIMACS(f)
	if err != nil {
		return n, err
	}
	for tmp.NumVars() > s.NumVars() {
		s.NewVar()
	}
	for i := 0; i < tmp.NumClauses(); i++ {
		s.AddClauseTagged(int64(i), tmp.ClauseAt(i))
	}
	return n, nil
}
