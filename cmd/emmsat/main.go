// Command emmsat is a standalone DIMACS CNF solver over the library's CDCL
// core, with optional UNSAT-core extraction:
//
//	emmsat problem.cnf
//	emmsat -core problem.cnf
//
// Exit status follows the SAT-competition convention: 10 for SAT, 20 for
// UNSAT, 1 for errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"emmver/internal/sat"
)

func main() {
	core := flag.Bool("core", false, "trace the proof and report an UNSAT core (clause indices)")
	budget := flag.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
	quiet := flag.Bool("q", false, "suppress the model/core listing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emmsat [-core] [-conflicts N] problem.cnf")
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	s := sat.New()
	if *core {
		s.EnableProofTracing()
	}
	s.ConflictBudget = *budget
	if *timeout > 0 {
		deadline := time.Now().Add(*timeout)
		s.Interrupt = func() bool { return time.Now().After(deadline) }
	}

	start := time.Now()
	nc, err := readTagged(s, f, *core)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := s.Solve()
	elapsed := time.Since(start)
	st := s.Stats()
	fmt.Printf("c %d vars, %d clauses, %d conflicts, %d decisions, %d propagations, %.3fs\n",
		s.NumVars(), nc, st.Conflicts, st.Decisions, st.Propagations, elapsed.Seconds())

	switch res {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if !*quiet {
			s.WriteModelDIMACS(os.Stdout)
		}
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		if *core && !*quiet {
			tags := s.Core()
			fmt.Printf("c core: %d of %d clauses\n", len(tags), nc)
			fmt.Print("c core clause indices:")
			for _, tg := range tags {
				fmt.Printf(" %d", tg)
			}
			fmt.Println()
		}
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		os.Exit(0)
	}
}

// readTagged loads the CNF; with tagging, each clause carries its index so
// cores can reference input clauses.
func readTagged(s *sat.Solver, f *os.File, tagged bool) (int, error) {
	if !tagged {
		return s.ReadDIMACS(f)
	}
	// Re-read with per-clause tags: parse through a second solver to
	// reuse the DIMACS reader, then copy clause by clause.
	tmp := sat.New()
	n, err := tmp.ReadDIMACS(f)
	if err != nil {
		return n, err
	}
	for tmp.NumVars() > s.NumVars() {
		s.NewVar()
	}
	for i := 0; i < tmp.NumClauses(); i++ {
		s.AddClauseTagged(int64(i), tmp.ClauseAt(i))
	}
	return n, nil
}
