// Command emmserved runs the verification job server: a long-running
// process that accepts netlists (Verilog, BTOR2, AIGER) over HTTP/JSON,
// schedules them onto a bounded solver pool, streams live JSONL progress,
// and memoizes verdicts in a content-addressed cache keyed by the
// post-compile netlist structure and the request's engine configuration.
//
//	emmserved -listen tcp:127.0.0.1:9393
//	emmserved -listen unix:/tmp/emmserved.sock -solvers 4
//
// Submit with emmv -remote, emmload, or plain HTTP:
//
//	POST /v1/jobs?wait=1   {"format":"verilog","source":"...","prop":0,
//	                        "spec":{"engine":"bmc3","depth":24}}
//	GET  /v1/jobs/{id}/events   live NDJSON progress
//	GET  /v1/stats              cache hit/miss/warm counters
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"emmver/internal/cliobs"
	"emmver/internal/serve"
)

func main() {
	listen := flag.String("listen", "tcp:127.0.0.1:9393",
		"serve the job API here (unix:/path, tcp:host:port, or a socket path)")
	solvers := flag.Int("solvers", 2, "concurrent verification jobs")
	cacheCap := flag.Int("cache", 1024, "verdict-cache capacity (families)")
	queueDepth := flag.Int("queue", 256, "submission backlog before 503s")
	obsFlags := cliobs.Register()
	flag.Parse()

	observer, obsStop := obsFlags.Setup()
	defer obsStop()

	network, addr := cliobs.ParseNetAddr(*listen)
	if network == "unix" {
		// A stale socket from a previous run refuses the bind; clear it.
		os.Remove(addr)
	}
	l, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := serve.New(serve.Config{
		Workers:    *solvers,
		CacheCap:   *cacheCap,
		QueueDepth: *queueDepth,
		Obs:        observer,
	})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "emmserved: shutting down")
		s.Shutdown() // cancels the context, which closes the HTTP server
		if network == "unix" {
			os.Remove(addr)
		}
	}()

	fmt.Printf("emmserved: listening on %s:%s (%d solvers, cache %d)\n",
		network, addr, *solvers, *cacheCap)
	if err := s.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
