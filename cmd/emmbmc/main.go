// Command emmbmc model-checks one of the built-in case-study designs with
// any of the paper's engines:
//
//	emmbmc -design quicksort -n 3 -prop p1 -engine bmc3
//	emmbmc -design quicksort -n 3 -prop p1 -engine bmc1 -explicit
//	emmbmc -design lookup -prop inv -engine bmc3
//	emmbmc -design filter -prop 42 -engine bmc2
//	emmbmc -design quicksort -prop p2 -engine pba
//	emmbmc -design growth -prop 0 -engine kind
//	emmbmc -design lookup -prop 1 -engine bdd -explicit
//
// Engines: bmc1 (plain + proofs), bmc2 (EMM falsification), bmc3 (EMM +
// proofs + PBA), kind (k-induction with write-free-init retention), pba
// (two-phase prove-with-abstraction), bdd (BDD-based reachability;
// requires -explicit). -explicit first expands every memory into latches
// (the paper's Explicit Modeling baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"emmver/internal/aig"
	"emmver/internal/aiger"
	"emmver/internal/bdd"
	"emmver/internal/bmc"
	"emmver/internal/cliobs"
	"emmver/internal/designs"
	"emmver/internal/exp"
	"emmver/internal/expmem"
	"emmver/internal/obs"
	"emmver/internal/spec"
	"emmver/internal/vcd"
)

func main() {
	design := flag.String("design", "quicksort", "quicksort, filter, lookup, or growth (the shared-address experiment shape)")
	n := flag.Int("n", 3, "quicksort array size")
	reduced := flag.Bool("reduced", true, "use reduced memory widths (fast); false = paper widths")
	prop := flag.String("prop", "p1", "property: p1/p2 (quicksort), inv or index (lookup), index (filter)")
	explicit := flag.Bool("explicit", false, "expand memories into latches first")
	bddNodes := flag.Int("bddnodes", 500000, "BDD node budget for -engine bdd")
	vcdOut := flag.String("vcd", "", "write a counter-example waveform to this file")
	aigerOut := flag.String("aiger", "", "write the (memory-free) model as AIGER to this file and exit")
	stats := flag.Bool("stats", false, "print per-depth solver stats and EMM sizes")
	verbose := flag.Bool("v", false, "log per-depth progress")
	// The schema's flags with this tool's deeper default bound; "bdd" is an
	// extra engine value handled here before the spec conversion.
	def := spec.Default()
	def.Depth = 200
	engFlags := cliobs.RegisterEngineFor(def)
	obsFlags := cliobs.Register()
	flag.Parse()
	engine := engFlags.Request().Canonical().Engine

	netlist, pi := buildDesign(*design, *n, *reduced, *prop)
	if *explicit {
		var err error
		netlist, _, err = expmem.Expand(netlist)
		if err != nil {
			fail(err.Error())
		}
		fmt.Printf("explicit model: %s\n", netlist.Stats())
	} else {
		fmt.Printf("model: %s\n", netlist.Stats())
	}

	if *aigerOut != "" {
		f, err := os.Create(*aigerOut)
		if err != nil {
			fail(err.Error())
		}
		defer f.Close()
		if err := aiger.Write(f, netlist, true); err != nil {
			fail(err.Error())
		}
		fmt.Printf("wrote %s\n", *aigerOut)
		return
	}

	if engine == "bdd" {
		// BDD reachability sits outside the request schema (no depth, no
		// solver); dispatch before the Spec conversion.
		if len(netlist.Memories) > 0 {
			fmt.Fprintln(os.Stderr, "the BDD engine needs -explicit")
			os.Exit(2)
		}
		r, err := bdd.CheckSafety(netlist, pi, *bddNodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("verdict: %s\n", r)
		return
	}
	opt, err := engFlags.Options()
	if err != nil {
		fail(err.Error())
	}
	opt.ValidateWitness = !*explicit
	if s := cliobs.DescribeCompile(netlist, []int{pi}, opt.Passes); s != "" {
		fmt.Printf("compile: %s\n", s)
	}
	opt.CollectDepthStats = *stats
	// With more than one job the engine races forward/backward termination
	// on separate goroutines at each depth (only meaningful with proofs;
	// k-induction fixes its own check order, so the race never applies).
	opt.Portfolio = opt.Portfolio || (opt.Jobs != 1 && !opt.KInduction)
	if *verbose {
		opt.Log = os.Stderr
	}
	observer, obsStop := obsFlags.Setup()
	defer obsStop()
	if engFlags.DistActive() && observer.Registry() == nil {
		// The sharenet frame counters live in the obs registry; give the
		// distributed path one even when no -trace/-progress flag asked.
		observer = obs.New(obs.NewRegistry(), nil)
	}
	opt.Obs = observer
	if engine == "pba" {
		res := bmc.ProveWithPBA(netlist, pi, opt)
		fmt.Printf("phase 1: %s (%.1fs)\n", res.Phase1, res.AbstractionTime.Seconds())
		if res.Abs != nil {
			fmt.Printf("abstraction: %s\n", res.Abs)
		}
		if res.Proof != nil {
			fmt.Printf("phase 2: %s\n", res.Proof)
		}
		fmt.Printf("verdict: %s\n", res.Kind())
		return
	}
	if *explicit {
		opt.UseEMM = false
	}
	var r *bmc.Result
	if engFlags.DistActive() {
		// Distributed fleet: this process brokers (-listen) or joins
		// (-connect) a cross-process cube-and-conquer run.
		r, err = engFlags.RunDist(netlist, pi, opt)
		if err != nil {
			fail(err.Error())
		}
	} else {
		r = bmc.Check(netlist, pi, opt)
	}
	fmt.Printf("verdict: %s\n", r)
	if r.Kind == bmc.KindProof {
		fmt.Printf("proved by %s termination at depth %d\n", r.ProofSide, r.Depth)
	}
	if r.Kind == bmc.KindCE && r.Witness == nil {
		// A distributed peer found the counter-example; the witness lives in
		// that worker's process.
		fmt.Println("counter-example found by a remote fleet worker (no local witness)")
	}
	if r.Kind == bmc.KindCE && r.Witness != nil {
		fmt.Printf("counter-example of length %d (validated on the concrete design: %v)\n",
			r.Witness.Length, !*explicit)
		if !*explicit {
			r.Witness.Minimize(netlist, pi)
		}
		if *vcdOut != "" {
			f, err := os.Create(*vcdOut)
			if err != nil {
				fail(err.Error())
			}
			defer f.Close()
			if err := vcd.DumpWitness(f, netlist, r.Witness, pi); err != nil {
				fail(err.Error())
			}
			fmt.Printf("waveform written to %s\n", *vcdOut)
		}
	}
	fmt.Printf("stats: %d solver calls, %d clauses, %d vars, %d conflicts, %.0f MB heap\n",
		r.Stats.SolveCalls, r.Stats.Clauses, r.Stats.Vars, r.Stats.Conflicts, r.Stats.PeakHeapMB)
	fmt.Printf("restarts: %d (luby %d, ema %d)\n",
		r.Stats.Restarts, r.Stats.RestartsLuby, r.Stats.RestartsEMA)
	if r.Stats.Simplifies > 0 {
		fmt.Printf("inprocessing: %d passes, %d clauses subsumed, %d strengthened, %d vars eliminated\n",
			r.Stats.Simplifies, r.Stats.SubsumedClauses, r.Stats.StrengthenedClauses, r.Stats.EliminatedVars)
	}
	if r.Stats.SharedExported > 0 || r.Stats.SharedImported > 0 || r.Stats.SharedDropped > 0 {
		fmt.Printf("sharing: %d clauses exported, %d imported, %d filtered, %d dropped\n",
			r.Stats.SharedExported, r.Stats.SharedImported, r.Stats.SharedFiltered, r.Stats.SharedDropped)
	}
	if engFlags.DistActive() {
		reg := observer.Registry()
		fmt.Printf("sharenet: %d frames sent, %d received, %d dropped, %d reconnects\n",
			reg.Counter(obs.MNetSent).Value(), reg.Counter(obs.MNetReceived).Value(),
			reg.Counter(obs.MNetDropped).Value(), reg.Counter(obs.MNetReconnects).Value())
	}
	if r.Stats.EMM.Clauses() > 0 {
		fmt.Printf("emm constraints: %s\n", r.Stats.EMM)
	}
	if r.Stats.LazyRounds > 0 || r.Stats.EMM.LazyReads > 0 {
		fmt.Printf("lazy emm: %d reads tracked, %d axiom levels, %d completed, %d refinement rounds (%d spurious)\n",
			r.Stats.EMM.LazyReads, r.Stats.EMM.LazyAxioms, r.Stats.EMM.LazyCompleted,
			r.Stats.LazyRounds, r.Stats.LazySpurious)
	}
	for _, d := range r.DepthStats {
		fmt.Println(d)
	}
}

func buildDesign(name string, n int, reduced bool, prop string) (*aig.Netlist, int) {
	switch name {
	case "quicksort":
		cfg := designs.DefaultQuickSort(n)
		if reduced {
			cfg = designs.QuickSortConfig{N: n, ArrayAW: 4, DataW: 8, StackAW: 4}
		}
		q := designs.NewQuickSort(cfg)
		switch prop {
		case "p1", "P1":
			return q.Netlist(), q.P1Index
		case "p2", "P2":
			return q.Netlist(), q.P2Index
		}
		fail("quicksort properties are p1 and p2")
	case "filter":
		cfg := designs.DefaultImageFilter()
		if reduced {
			cfg = designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 16}
		}
		f := designs.NewImageFilter(cfg)
		idx, err := strconv.Atoi(prop)
		if err != nil || idx < 0 || idx >= cfg.NumProps {
			fail(fmt.Sprintf("filter properties are 0..%d", cfg.NumProps-1))
		}
		return f.Netlist(), idx
	case "lookup":
		cfg := designs.DefaultLookup()
		if reduced {
			cfg = designs.LookupConfig{AW: 4, DW: 6, NumProps: 8, Latency: 6}
		}
		l := designs.NewLookup(cfg)
		if prop == "inv" {
			return l.Netlist(), l.InvariantIndex
		}
		idx, err := strconv.Atoi(prop)
		if err != nil || idx < 0 || idx >= len(l.ReachIndices) {
			fail("lookup properties are inv or 0..7")
		}
		return l.Netlist(), l.ReachIndices[idx]
	case "growth":
		// The §S2/§S5 experiment shape: one memory, one write port, two read
		// ports on a shared address bus, one valid read-consistency property.
		return exp.GrowthSolveNetlist(exp.DefaultGrowthSolve()), 0
	}
	fail("designs are quicksort, filter, lookup, and growth")
	return nil, 0
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(2)
}
