// Command emmbench runs the solver and CNF-generation micro-benchmarks
// (the same workloads as BenchmarkPropagate, BenchmarkUnrollStrash, and
// BenchmarkEMMDepthGrowth in bench_test.go) outside `go test` and records
// the results as JSON, seeding the repository's benchmark trajectory:
//
//	emmbench                      # writes BENCH_solver.json
//	emmbench -o results.json      # alternate output path
//	emmbench -benchtime 5         # minimum seconds per benchmark
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"emmver/internal/exp"
	"emmver/internal/pass"
	"emmver/internal/rtl"
	"emmver/internal/sat"
	"emmver/internal/unroll"
)

type entry struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_solver.json", "output file")
	benchSecs := flag.Float64("benchtime", 1, "minimum seconds per benchmark")
	coopDepth := flag.Int("coopdepth", 24, "BMC depth of the CoopSolve sharing A/B (lower for smoke runs)")
	coopRuns := flag.Int("coopruns", 3, "runs per side of the CoopSolve sharing A/B (median is recorded)")
	distDepth := flag.Int("distdepth", 24, "BMC depth of the DistSolve socket-fleet A/B (lower for smoke runs)")
	distRuns := flag.Int("distruns", 3, "runs per side of the DistSolve socket-fleet A/B (median is recorded)")
	lazyDepth := flag.Int("lazydepth", 24, "BMC depth of the LazyEMM eager/lazy A/B (lower for smoke runs)")
	lazyRuns := flag.Int("lazyruns", 3, "runs per side of the LazyEMM eager/lazy A/B (median is recorded)")
	flag.Parse()
	testing.Init()
	if err := flag.Set("test.benchtime", fmt.Sprintf("%gs", *benchSecs)); err != nil {
		fatal(err)
	}

	rep := report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, b := range []struct {
		name string
		run  func() entry
	}{
		{"Propagate", benchPropagate},
		{"UnrollStrash/On", func() entry { return benchStrash(false) }},
		{"UnrollStrash/Off", func() entry { return benchStrash(true) }},
		{"EMMDepthGrowth/On", func() entry { return benchGrowth(false) }},
		{"EMMDepthGrowth/Off", func() entry { return benchGrowth(true) }},
		{"ReduceDBTiers", benchReduceDBTiers},
		{"Simplify", benchSimplify},
		{"GrowthSolve/Baseline", func() entry { return benchGrowthSolve(sat.RestartLuby, true) }},
		{"GrowthSolve/Inproc", func() entry { return benchGrowthSolve(sat.RestartEMA, false) }},
		{"CompilePipeline/Static", benchCompileStatic},
		{"CompilePipeline/Off", func() entry { return benchCompileSolve(pass.SpecNone) }},
		{"CompilePipeline/On", func() entry { return benchCompileSolve("") }},
	} {
		e := b.run()
		e.Name = b.name
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-22s %12.0f ns/op  %v\n", e.Name, e.NsPerOp, e.Metrics)
	}

	// The PR-6 headline: cooperative solving. Both sides run the identical
	// 8-worker cube-and-conquer fleet on the shared-address growth design;
	// only the learnt-clause bus differs, so the speedup isolates what
	// lemma exchange buys. Medians over -coopruns runs per side.
	coopCfg := exp.DefaultShareAB()
	coopCfg.MaxK = *coopDepth
	coop, err := exp.ShareAB(coopCfg, *coopRuns)
	if err != nil {
		fatal(err)
	}
	for _, side := range []struct {
		name   string
		median time.Duration
		runs   []exp.GrowthSolveResult
	}{
		{"CoopSolve/Off", coop.OffMedian, coop.Off},
		{"CoopSolve/On", coop.OnMedian, coop.On},
	} {
		e := entry{
			Name:       side.name,
			Iterations: len(side.runs),
			NsPerOp:    float64(side.median.Nanoseconds()),
			Metrics: map[string]float64{
				"conflicts":   medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Conflicts) }),
				"cube_splits": medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Stats.CubeSplits) }),
				"imported":    medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Stats.SharedImported) }),
			},
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-22s %12.0f ns/op  %v\n", e.Name, e.NsPerOp, e.Metrics)
	}
	rep.Benchmarks = append(rep.Benchmarks, entry{
		Name: "CoopSolve/Speedup",
		Metrics: map[string]float64{
			"speedup_x": coop.Speedup,
			"depth":     float64(*coopDepth),
			"workers":   float64(coopCfg.Jobs),
		},
	})
	fmt.Printf("cooperative sharing speedup at depth %d: %.2fx (median of %d runs/side, verdict %s)\n",
		*coopDepth, coop.Speedup, *coopRuns, coop.Off[0].Kind)

	// The PR-7 headline: distributed solving. A two-worker fleet — separate
	// engines joined only by a broker on a unix socket — runs the same
	// workload with the cross-process clause uplink off and on; the speedup
	// isolates what socket lemma exchange buys on top of cube brokering.
	distCfg := exp.DefaultDistAB()
	distCfg.MaxK = *distDepth
	const distWorkers = 2
	dist, err := exp.DistAB(distCfg, distWorkers, *distRuns)
	if err != nil {
		fatal(err)
	}
	for _, side := range []struct {
		name   string
		median time.Duration
		runs   []exp.GrowthSolveResult
	}{
		{"DistSolve/Off", dist.OffMedian, dist.Off},
		{"DistSolve/On", dist.OnMedian, dist.On},
	} {
		e := entry{
			Name:       side.name,
			Iterations: len(side.runs),
			NsPerOp:    float64(side.median.Nanoseconds()),
			Metrics: map[string]float64{
				"conflicts": medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Conflicts) }),
				"imported":  medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Stats.SharedImported) }),
			},
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-22s %12.0f ns/op  %v\n", e.Name, e.NsPerOp, e.Metrics)
	}
	rep.Benchmarks = append(rep.Benchmarks, entry{
		Name: "DistSolve/Speedup",
		Metrics: map[string]float64{
			"speedup_x": dist.Speedup,
			"depth":     float64(*distDepth),
			"workers":   float64(distWorkers),
			"seq_ns":    float64(dist.SeqMedian.Nanoseconds()),
		},
	})
	fmt.Printf("distributed sharing speedup at depth %d: %.2fx (median of %d runs/side, verdict %s)\n",
		*distDepth, dist.Speedup, *distRuns, dist.Seq[0].Kind)

	// The PR-9 headline: lazy EMM. Same shared-address workload, eager vs
	// demand-driven read-over-write axiom instantiation; the clause metric
	// is the EMM constraint count each side actually emitted, and the
	// speedup is what skipping the irrelevant axioms buys on wall-clock.
	lazyCfg := exp.DefaultLazyAB()
	lazyCfg.MaxK = *lazyDepth
	lazy, err := exp.LazyAB(lazyCfg, *lazyRuns)
	if err != nil {
		fatal(err)
	}
	for _, side := range []struct {
		name   string
		median time.Duration
		runs   []exp.GrowthSolveResult
	}{
		{"LazyEMM/Off", lazy.OffMedian, lazy.Off},
		{"LazyEMM/On", lazy.OnMedian, lazy.On},
	} {
		e := entry{
			Name:       side.name,
			Iterations: len(side.runs),
			NsPerOp:    float64(side.median.Nanoseconds()),
			Metrics: map[string]float64{
				"conflicts":   medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Conflicts) }),
				"emm_clauses": float64(side.runs[0].Stats.EMM.Clauses() + side.runs[0].Stats.EMM.InitClauses),
				"rounds":      medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Stats.LazyRounds) }),
				"spurious":    medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Stats.LazySpurious) }),
				"axioms":      medianOf(side.runs, func(r exp.GrowthSolveResult) float64 { return float64(r.Stats.EMM.LazyAxioms) }),
			},
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-22s %12.0f ns/op  %v\n", e.Name, e.NsPerOp, e.Metrics)
	}
	rep.Benchmarks = append(rep.Benchmarks, entry{
		Name: "LazyEMM/Speedup",
		Metrics: map[string]float64{
			"speedup_x":     lazy.Speedup,
			"depth":         float64(*lazyDepth),
			"reduction_pct": 100 * lazy.Reduction,
		},
	})
	fmt.Printf("lazy EMM at depth %d: %.1f%% fewer EMM clauses, %.2fx speedup (median of %d runs/side, verdict %s)\n",
		*lazyDepth, 100*lazy.Reduction, lazy.Speedup, *lazyRuns, lazy.Off[0].Kind)

	// The headline number: CNF reduction from strash + comparator
	// memoization on the shared-address growth design.
	var on, off float64
	for _, e := range rep.Benchmarks {
		switch e.Name {
		case "EMMDepthGrowth/On":
			on = e.Metrics["clauses"]
		case "EMMDepthGrowth/Off":
			off = e.Metrics["clauses"]
		}
	}
	if on > 0 && off > 0 {
		red := 100 * (1 - on/off)
		rep.Benchmarks = append(rep.Benchmarks, entry{
			Name:    "EMMDepthGrowth/Reduction",
			Metrics: map[string]float64{"reduction_pct": red},
		})
		fmt.Printf("CNF reduction at depth 24: %.1f%%\n", red)
	}

	// The PR-4 headline: solve-time reduction from adaptive restarts +
	// LBD tiers + between-depth inprocessing on the solve-based growth
	// experiment (Baseline approximates the pre-inprocessing solver:
	// Luby restarts, no Simplify).
	var base, inp entry
	for _, e := range rep.Benchmarks {
		switch e.Name {
		case "GrowthSolve/Baseline":
			base = e
		case "GrowthSolve/Inproc":
			inp = e
		}
	}
	if base.NsPerOp > 0 && inp.NsPerOp > 0 {
		timeRed := 100 * (1 - inp.NsPerOp/base.NsPerOp)
		conflRed := 100 * (1 - inp.Metrics["conflicts"]/base.Metrics["conflicts"])
		rep.Benchmarks = append(rep.Benchmarks, entry{
			Name: "GrowthSolve/Reduction",
			Metrics: map[string]float64{
				"time_reduction_pct":     timeRed,
				"conflict_reduction_pct": conflRed,
			},
		})
		fmt.Printf("solve reduction at depth 24: %.1f%% time, %.1f%% conflicts\n", timeRed, conflRed)
	}

	// The PR-5 headline: CNF reduction from the static compile pipeline
	// (COI + constant sweep + port pruning + dedup) on the decoy-salted
	// growth design, solved to the same depth either way.
	var pOff, pOn float64
	for _, e := range rep.Benchmarks {
		switch e.Name {
		case "CompilePipeline/Off":
			pOff = e.Metrics["clauses"]
		case "CompilePipeline/On":
			pOn = e.Metrics["clauses"]
		}
	}
	if pOff > 0 && pOn > 0 {
		red := 100 * (1 - pOn/pOff)
		rep.Benchmarks = append(rep.Benchmarks, entry{
			Name:    "CompilePipeline/Reduction",
			Metrics: map[string]float64{"clause_reduction_pct": red},
		})
		fmt.Printf("pass-pipeline CNF reduction at depth 24: %.1f%%\n", red)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchPropagate: long implication chains of alternating binary and ternary
// clauses, solved under an assumption that forces the whole chain.
func benchPropagate() entry {
	const n = 20000
	s := sat.New()
	vars := make([]sat.Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+2 < n; i++ {
		s.AddClause(sat.NegLit(vars[i]), sat.PosLit(vars[i+1]))
		s.AddClause(sat.NegLit(vars[i]), sat.NegLit(vars[i+1]), sat.PosLit(vars[i+2]))
	}
	var props, bins int64
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s.Solve(sat.PosLit(vars[0])) != sat.Sat {
				b.Fatal("chain must be satisfiable")
			}
		}
		props = s.Stats().Propagations
		bins = s.Stats().BinPropagations
	})
	perOp := float64(r.NsPerOp())
	return entry{
		Iterations: r.N,
		NsPerOp:    perOp,
		Metrics: map[string]float64{
			"props/s":   float64(props) / r.T.Seconds(),
			"bin_props": float64(bins),
		},
	}
}

// benchStrash: ten rounds of all pairwise ANDs over 64 literals through the
// auxiliary gate builders.
func benchStrash(off bool) entry {
	const width, rounds = 64, 10
	m := rtl.NewModule("strash")
	bus := m.Input("x", width)
	m.Done()
	var clauses, hits int
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.New()
			u := unroll.New(m.N, s, unroll.Initialized)
			u.NoStrash = off
			xs := u.VecLits(bus, 0)
			tag := unroll.MkTag(unroll.TagAux, 0, 0)
			for round := 0; round < rounds; round++ {
				for i := 0; i < width; i++ {
					for j := i + 1; j < width; j++ {
						u.MkAndAux(xs[i], xs[j], tag)
					}
				}
			}
			clauses, hits = u.ClausesAdded, u.StrashHits
		}
	})
	return entry{
		Iterations: r.N,
		NsPerOp:    float64(r.NsPerOp()),
		Metrics: map[string]float64{
			"clauses":     float64(clauses),
			"strash_hits": float64(hits),
		},
	}
}

// benchGrowth: EMM constraint generation to depth 24 for the shared-address
// memory (AW=10, DW=32, one write, two reads).
func benchGrowth(noOpt bool) entry {
	cfg := exp.GrowthConfig{AW: 10, DW: 32, Writes: 1, Reads: 2, MaxK: 24, Step: 24,
		SharedAddr: true, NoOpt: noOpt}
	var last exp.GrowthPoint
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts := exp.Growth(cfg)
			last = pts[len(pts)-1]
		}
	})
	return entry{
		Iterations: r.N,
		NsPerOp:    float64(r.NsPerOp()),
		Metrics: map[string]float64{
			"clauses":     float64(last.CNFClauses),
			"memo_hits":   float64(last.MemoHits),
			"strash_hits": float64(last.StrashHits),
		},
	}
}

// benchReduceDBTiers: a hard UNSAT pigeonhole instance, solved from scratch
// each iteration. The thousands of conflicts push learnts through the
// core/mid/local tiers and fire several reduceDB rounds, so the run prices
// the whole tier bookkeeping (LBD computation, promotion, demotion,
// activity-sorted deletion).
func benchReduceDBTiers() entry {
	const holes = 8
	var st sat.Stats
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.New()
			addPigeonhole(s, holes+1, holes)
			if s.Solve() != sat.Unsat {
				b.Fatal("pigeonhole must be UNSAT")
			}
			st = s.Stats()
		}
	})
	return entry{
		Iterations: r.N,
		NsPerOp:    float64(r.NsPerOp()),
		Metrics: map[string]float64{
			"conflicts": float64(st.Conflicts),
			"reducedbs": float64(st.ReduceDBs),
			"restarts":  float64(st.Restarts),
		},
	}
}

// addPigeonhole encodes PHP(p, h): p pigeons into h holes.
func addPigeonhole(s *sat.Solver, pigeons, holes int) {
	vars := make([][]sat.Var, pigeons)
	for p := range vars {
		vars[p] = make([]sat.Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		clause := make([]sat.Lit, holes)
		for h := 0; h < holes; h++ {
			clause[h] = sat.PosLit(vars[p][h])
		}
		s.AddClause(clause...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(sat.NegLit(vars[p1][h]), sat.NegLit(vars[p2][h]))
			}
		}
	}
}

// benchSimplify: one inprocessing pass over a CNF salted with redundancy —
// every clause has a strict superset right next to it (subsumption food), a
// long implication chain of unfrozen auxiliaries (elimination food), and
// near-duplicate clauses differing in one flipped literal (strengthening
// food). The construction runs outside the timer; only Simplify is priced.
func benchSimplify() entry {
	const chain = 4000
	var st sat.Stats
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := sat.New()
			vars := make([]sat.Var, chain)
			for j := range vars {
				vars[j] = s.NewVar()
			}
			s.Freeze(vars[0])
			s.Freeze(vars[chain-1])
			for j := 0; j+1 < chain; j++ {
				a, c := sat.NegLit(vars[j]), sat.PosLit(vars[j+1])
				s.AddClause(a, c)
				// Superset of the binary above: subsumed on sight.
				s.AddClause(a, c, sat.PosLit(vars[(j+7)%chain]))
				// (p ∨ q ∨ x) with (p ∨ q ∨ ¬x), no (p ∨ q) around: the
				// first self-subsumes the second down to (p ∨ q).
				p := sat.PosLit(vars[(j+11)%chain])
				q := sat.PosLit(vars[(j+23)%chain])
				x := sat.PosLit(vars[(j+13)%chain])
				s.AddClause(p, q, x)
				s.AddClause(p, q, x.Not())
			}
			b.StartTimer()
			if err := s.Simplify(); err != nil {
				b.Fatal(err)
			}
			st = s.Stats()
		}
	})
	return entry{
		Iterations: r.N,
		NsPerOp:    float64(r.NsPerOp()),
		Metrics: map[string]float64{
			"subsumed":     float64(st.SubsumedClauses),
			"strengthened": float64(st.StrengthenedClauses),
			"eliminated":   float64(st.EliminatedVars),
		},
	}
}

// benchGrowthSolve: the solve-based growth experiment (§S2) — BMC-2 on the
// shared-address read-consistency property to depth 24 with strash and
// comparator memoization off. Baseline (Luby, no Simplify) approximates the
// pre-inprocessing solver; Inproc is the current default configuration.
func benchGrowthSolve(mode sat.RestartMode, noSimplify bool) entry {
	cfg := exp.DefaultGrowthSolve()
	cfg.Restart = mode
	cfg.NoSimplify = noSimplify
	var res exp.GrowthSolveResult
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res = exp.GrowthSolve(cfg)
		}
	})
	return entry{
		Iterations: r.N,
		NsPerOp:    float64(r.NsPerOp()),
		Metrics: map[string]float64{
			"conflicts":       float64(res.Conflicts),
			"restarts":        float64(res.Stats.Restarts),
			"eliminated_vars": float64(res.Stats.EliminatedVars),
			"subsumed":        float64(res.Stats.SubsumedClauses),
		},
	}
}

// benchCompileStatic times the four netlist passes alone on the
// decoy-salted §S3 growth design.
func benchCompileStatic() entry {
	cfg := exp.DefaultCompileAB()
	n := exp.GrowthSolveNetlist(cfg)
	var after pass.Counts
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := pass.Compile(n, []int{0}, pass.Options{})
			if err != nil {
				b.Fatal(err)
			}
			after = pass.CountsOf(c.N)
		}
	})
	before := pass.CountsOf(n)
	return entry{
		Iterations: r.N,
		NsPerOp:    float64(r.NsPerOp()),
		Metrics: map[string]float64{
			"nodes_removed":   float64(before.Nodes - after.Nodes),
			"latches_removed": float64(before.Latches - after.Latches),
			"ports_removed":   float64(before.MemPorts - after.MemPorts),
		},
	}
}

// benchCompileSolve runs the §S3 A/B half selected by spec: the
// decoy-salted growth design, BMC-2 to depth 24, with the compile
// pipeline off (spec "none") or on (spec "").
func benchCompileSolve(spec string) entry {
	cfg := exp.DefaultCompileAB()
	cfg.Passes = spec
	var res exp.GrowthSolveResult
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res = exp.GrowthSolve(cfg)
		}
	})
	return entry{
		Iterations: r.N,
		NsPerOp:    float64(r.NsPerOp()),
		Metrics: map[string]float64{
			"clauses":   float64(res.Stats.Clauses),
			"conflicts": float64(res.Conflicts),
		},
	}
}

// medianOf extracts f over runs and returns the median value.
func medianOf(runs []exp.GrowthSolveResult, f func(exp.GrowthSolveResult) float64) float64 {
	vs := make([]float64, len(runs))
	for i, r := range runs {
		vs[i] = f(r)
	}
	sort.Float64s(vs)
	return vs[len(vs)/2]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
