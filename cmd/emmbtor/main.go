// Command emmbtor verifies BTOR2 word-level models. Array states map onto
// embedded memory modules and are verified with EMM — no bit-blasting of
// the arrays.
//
//	emmbtor model.btor2                   # prove all bad properties (BMC-3)
//	emmbtor -engine bmc2 -depth 80 model.btor2
//	emmbtor -export model.btor2 design... # (see emmbmc -aiger for AIGER)
//
// Exit status: 0 all proved / bound exhausted without witnesses, 1 a
// witness was found, 2 usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"emmver/internal/bmc"
	"emmver/internal/btor2"
	"emmver/internal/cliobs"
	"emmver/internal/spec"
)

func main() {
	verbose := flag.Bool("v", false, "log per-depth progress")
	// Schema flags with this tool's sequential default; the PBA flow has no
	// BTOR2 driver, so that engine value is rejected below.
	def := spec.Default()
	def.Jobs = 1
	engFlags := cliobs.RegisterEngineFor(def)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emmbtor [flags] model.btor2")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	n, err := btor2.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("model: %s, %d properties\n", n.Stats(), len(n.Props))
	if len(n.Props) == 0 {
		return
	}

	if engFlags.Request().Canonical().Engine == spec.EnginePBA {
		fmt.Fprintln(os.Stderr, "emmbtor engines are bmc1, bmc2, bmc3, portfolio, and kind")
		os.Exit(2)
	}
	opt, err := engFlags.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt.ValidateWitness = true
	if *verbose {
		opt.Log = os.Stderr
	}
	if s := cliobs.DescribeCompile(n, allProps(len(n.Props)), opt.Passes); s != "" {
		fmt.Printf("compile: %s\n", s)
	}

	// One CheckMany run shares the compile pipeline and the incremental
	// unrolling across every bad property.
	props := allProps(len(n.Props))
	var mr *bmc.ManyResult
	if engFlags.DistActive() {
		// Distributed fleet: one property per fleet, brokered (-listen) or
		// joined (-connect).
		if len(props) != 1 {
			fmt.Fprintf(os.Stderr, "distributed mode verifies one property per fleet; model has %d\n", len(props))
			os.Exit(2)
		}
		r, err := engFlags.RunDist(n, 0, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		mr = &bmc.ManyResult{Results: []*bmc.Result{r}}
	} else if opt.Jobs != 1 {
		mr = bmc.CheckManyParallel(n, props, opt, opt.Jobs)
	} else {
		mr = bmc.CheckMany(n, props, opt)
	}
	fails := 0
	for pi, p := range n.Props {
		r := mr.Results[pi]
		fmt.Printf("  [%s] %s\n", p.Name, r)
		if r.Kind == bmc.KindCE {
			fails++
		}
	}
	if fails > 0 {
		os.Exit(1)
	}
}

func allProps(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
