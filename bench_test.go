package emmver

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), at the reduced scale so a full -bench=. run finishes in
// minutes. The paper-scale runs (AW=10/DW=32 arrays, 216 properties,
// 3-hour timeouts) are reproduced by cmd/emmtables -scale paper; measured
// numbers for both scales are recorded in EXPERIMENTS.md.
//
//	BenchmarkTable1/*            Table 1  (quicksort proofs, EMM vs Explicit)
//	BenchmarkTable2/*            Table 2  (quicksort P2 with PBA)
//	BenchmarkIndustryI           Industry I  (image filter, witnesses + proofs)
//	BenchmarkIndustryII          Industry II (lookup engine flow)
//	BenchmarkConstraintGrowth    Fig.-equivalent: EMM constraint counts vs depth
//
// Engine micro-benchmarks (solver, EMM generation, explicit expansion)
// quantify the substrate.

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/designs"
	"emmver/internal/exp"
	"emmver/internal/expmem"
	"emmver/internal/ltl"
	"emmver/internal/pass"
	"emmver/internal/rtl"
	"emmver/internal/sat"
	"emmver/internal/unroll"
	"emmver/internal/verilog"
)

// BenchmarkTable1 regenerates Table 1 rows: forward-induction proofs of
// P1/P2 on the quicksort machine, EMM (BMC-3) vs Explicit Modeling
// (BMC-1), per array size N.
func BenchmarkTable1(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			cfg := exp.DefaultConfig(90 * time.Second)
			var rows []exp.T1Row
			for i := 0; i < b.N; i++ {
				rows = exp.Table1(cfg, []int{n})
			}
			for _, r := range rows {
				b.ReportMetric(float64(r.D), "D_"+r.Prop)
				b.ReportMetric(r.EMMSec, "emm_s_"+r.Prop)
				if !r.ExplTO {
					b.ReportMetric(r.ExplSec, "expl_s_"+r.Prop)
				}
			}
			b.Logf("\n%s", exp.RenderTable1(rows))
		})
	}
}

// BenchmarkTable2 regenerates Table 2: P2 through proof-based
// abstraction, reporting reduced model sizes and proof cost.
func BenchmarkTable2(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			cfg := exp.DefaultConfig(90 * time.Second)
			var rows []exp.T2Row
			for i := 0; i < b.N; i++ {
				rows = exp.Table2(cfg, []int{n})
			}
			r := rows[0]
			b.ReportMetric(float64(r.EMMKeptFF), "kept_FF")
			b.ReportMetric(float64(r.EMMOrigFF), "orig_FF")
			b.ReportMetric(r.EMMSec, "emm_proof_s")
			b.Logf("\n%s", exp.RenderTable2(rows))
		})
	}
}

// BenchmarkIndustryI regenerates the Industry I narrative: the
// witness/proof split over the filter's reachability properties.
func BenchmarkIndustryI(b *testing.B) {
	cfg := exp.DefaultConfig(2 * time.Minute)
	var r *exp.I1Result
	for i := 0; i < b.N; i++ {
		r = exp.Industry1(cfg)
	}
	b.ReportMetric(float64(r.EMMWitnesses), "witnesses")
	b.ReportMetric(float64(r.EMMProofs), "proofs")
	b.ReportMetric(float64(r.EMMMaxDepth), "max_depth")
	b.ReportMetric(r.EMMSec, "emm_s")
	b.ReportMetric(r.ExplSec, "expl_s")
	b.Logf("\n%s", exp.RenderIndustry1(r))
}

// BenchmarkIndustryII regenerates the Industry II flow: spurious CEs
// under full abstraction, EMM search, the backward-induction invariant,
// the RD=0 abstraction proofs, and the BDD blowup.
func BenchmarkIndustryII(b *testing.B) {
	cfg := exp.DefaultConfig(2 * time.Minute)
	var r *exp.I2Result
	for i := 0; i < b.N; i++ {
		r = exp.Industry2(cfg)
	}
	b.ReportMetric(float64(r.SpuriousDepth), "spurious_depth")
	b.ReportMetric(float64(r.InvDepth), "invariant_depth")
	b.ReportMetric(float64(r.RDZeroProofs), "rd0_proofs")
	b.Logf("\n%s", exp.RenderIndustry2(r))
}

// BenchmarkConstraintGrowth regenerates the figure-equivalent: EMM
// constraint counts against the §3/§4.1 closed forms across depths, for
// the paper's single-port and Industry-II port configurations.
func BenchmarkConstraintGrowth(b *testing.B) {
	var pts []exp.GrowthPoint
	for i := 0; i < b.N; i++ {
		pts = exp.Growth(exp.GrowthConfig{AW: 10, DW: 32, Writes: 1, Reads: 1, MaxK: 60, Step: 10})
	}
	last := pts[len(pts)-1]
	b.ReportMetric(float64(last.Clauses), "clauses_at_60")
	b.ReportMetric(float64(last.Gates), "gates_at_60")
	b.Logf("\n%s", exp.RenderGrowth(pts))
}

// BenchmarkParallelSpeedup measures the property-level worker pool on the
// Industry I property set: the same CheckManyParallel run at 1/2/4/8
// workers, reporting each configuration's speedup over the 1-worker
// baseline as x_speedup. On a single-core host the sub-benchmarks time-share
// one CPU and x_speedup stays near 1; the metric shows real scaling only
// when GOMAXPROCS cores are available (see EXPERIMENTS.md).
func BenchmarkParallelSpeedup(b *testing.B) {
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 16})
	opt := bmc.Options{MaxDepth: 3*4 + 10, UseEMM: true, Proofs: true}
	var baseline float64
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				mr := bmc.CheckManyParallel(f.Netlist(), f.PropIndices(), opt, jobs)
				if c := mr.Counts(); c[bmc.KindTimeout] > 0 {
					b.Fatalf("unexpected timeouts: %v", c)
				}
			}
			perOp := time.Since(start).Seconds() / float64(b.N)
			if jobs == 1 {
				baseline = perOp
			}
			if baseline > 0 {
				b.ReportMetric(baseline/perOp, "x_speedup")
			}
		})
	}
}

// --- engine micro-benchmarks ---

// BenchmarkPropagate measures raw unit-propagation throughput through the
// arena-based clause store: long implication chains of alternating binary
// and ternary clauses, solved under an assumption that forces the whole
// chain. Reports propagations per second.
func BenchmarkPropagate(b *testing.B) {
	const n = 20000
	s := sat.New()
	vars := make([]sat.Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+2 < n; i++ {
		// Binary link: v_i -> v_{i+1} (served by the implication lists).
		s.AddClause(sat.NegLit(vars[i]), sat.PosLit(vars[i+1]))
		// Ternary link: v_i ∧ v_{i+1} -> v_{i+2} (served by watch lists).
		s.AddClause(sat.NegLit(vars[i]), sat.NegLit(vars[i+1]), sat.PosLit(vars[i+2]))
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if s.Solve(sat.PosLit(vars[0])) != sat.Sat {
			b.Fatal("chain must be satisfiable")
		}
	}
	props := s.Stats().Propagations
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(props)/sec, "props/s")
	}
	b.ReportMetric(float64(s.Stats().BinPropagations), "bin_props")
}

// BenchmarkUnrollStrash measures the structural-hashing cache on the
// auxiliary gate builders (the path EMM and the loop-free-path constraints
// go through): ten rounds of all pairwise ANDs over 64 literals. With
// hashing on, rounds two through ten are pure cache hits; off, every gate
// is re-encoded. Netlist nodes themselves are deduplicated by the per-frame
// value cache, so this — repeated client-built gates — is where strash
// earns its keep.
func BenchmarkUnrollStrash(b *testing.B) {
	const width, rounds = 64, 10
	m := rtl.NewModule("strash")
	bus := m.Input("x", width)
	m.Done()
	for _, variant := range []struct {
		name string
		off  bool
	}{{"On", false}, {"Off", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var clauses, hits int
			for i := 0; i < b.N; i++ {
				s := sat.New()
				u := unroll.New(m.N, s, unroll.Initialized)
				u.NoStrash = variant.off
				xs := u.VecLits(bus, 0)
				tag := unroll.MkTag(unroll.TagAux, 0, 0)
				for r := 0; r < rounds; r++ {
					for i := 0; i < width; i++ {
						for j := i + 1; j < width; j++ {
							u.MkAndAux(xs[i], xs[j], tag)
						}
					}
				}
				clauses, hits = u.ClausesAdded, u.StrashHits
			}
			b.ReportMetric(float64(clauses), "clauses")
			b.ReportMetric(float64(hits), "strash_hits")
		})
	}
}

// BenchmarkEMMDepthGrowth measures EMM constraint generation to depth 24
// for the shared-address-bus memory (AW=10, DW=32, one write, two reads)
// with the optimizations on and off. The reduction_pct metric is the PR's
// acceptance number: >= 25% fewer CNF clauses at depth >= 20 (also pinned
// by exp.TestGrowthSharedAddrReduction).
func BenchmarkEMMDepthGrowth(b *testing.B) {
	cfg := exp.GrowthConfig{AW: 10, DW: 32, Writes: 1, Reads: 2, MaxK: 24, Step: 24, SharedAddr: true}
	var on, off exp.GrowthPoint
	b.Run("On", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts := exp.Growth(cfg)
			on = pts[len(pts)-1]
		}
		b.ReportMetric(float64(on.CNFClauses), "clauses")
		b.ReportMetric(float64(on.MemoHits), "memo_hits")
	})
	b.Run("Off", func(b *testing.B) {
		c := cfg
		c.NoOpt = true
		for i := 0; i < b.N; i++ {
			pts := exp.Growth(c)
			off = pts[len(pts)-1]
		}
		b.ReportMetric(float64(off.CNFClauses), "clauses")
	})
	if on.CNFClauses > 0 && off.CNFClauses > 0 {
		red := 100 * (1 - float64(on.CNFClauses)/float64(off.CNFClauses))
		b.ReportMetric(red, "reduction_pct")
		if red < 25 {
			b.Fatalf("CNF reduction %.1f%% below the required 25%%", red)
		}
	}
}

// BenchmarkSATSolverPigeonhole measures raw CDCL throughput on a hard
// structured UNSAT family.
func BenchmarkSATSolverPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		holes := 8
		vars := make([][]sat.Var, holes+1)
		for p := range vars {
			vars[p] = make([]sat.Var, holes)
			for h := range vars[p] {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= holes; p++ {
			cl := make([]sat.Lit, holes)
			for h := 0; h < holes; h++ {
				cl[h] = sat.PosLit(vars[p][h])
			}
			s.AddClause(cl...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 <= holes; p1++ {
				for p2 := p1 + 1; p2 <= holes; p2++ {
					s.AddClause(sat.NegLit(vars[p1][h]), sat.NegLit(vars[p2][h]))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("PHP must be UNSAT")
		}
	}
}

// BenchmarkEMMGeneration measures the cost of emitting EMM constraints to
// depth 60 for the paper's AW=10/DW=32 memory.
func BenchmarkEMMGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Growth(exp.GrowthConfig{AW: 10, DW: 32, Writes: 1, Reads: 1, MaxK: 60, Step: 60})
	}
}

// BenchmarkExplicitExpansion measures expanding the paper-scale quicksort
// memories (2×2^10 words) into latches.
func BenchmarkExplicitExpansion(b *testing.B) {
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 4, ArrayAW: 8, DataW: 16, StackAW: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := expmem.Expand(q.Netlist()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerilogQuicksort measures the full HDL pipeline: parse and
// elaborate the Verilog quicksort, then prove P1 with EMM.
func BenchmarkVerilogQuicksort(b *testing.B) {
	src, err := os.ReadFile("internal/verilog/testdata/quicksort.v")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		file, err := verilog.Parse(string(src))
		if err != nil {
			b.Fatal(err)
		}
		n, err := verilog.ElaborateWithParams(file, "quicksort",
			map[string]uint64{"N": 3, "AW": 2, "DW": 3, "SW": 2})
		if err != nil {
			b.Fatal(err)
		}
		if r := bmc.Check(n, 0, bmc.BMC3(120)); r.Kind != bmc.KindProof {
			b.Fatalf("expected proof, got %v", r)
		}
	}
}

// BenchmarkLTLLassoSearch measures bounded-LTL witness search with loop
// encodings over a counter design.
func BenchmarkLTLLassoSearch(b *testing.B) {
	f, err := ltl.Parse("G F wrap")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		d := designsCounter()
		bd := ltl.Binding{"wrap": d.EqConst(probeBus(d), 6)}
		w, err := ltl.FindWitness(d.N, bd, f, ltl.SearchOptions{MaxK: 12})
		if err != nil || w == nil {
			b.Fatalf("no witness: %v %v", w, err)
		}
	}
}

func designsCounter() *rtl.Module {
	m := rtl.NewModule("cnt")
	c := m.Register("c", 3, 0)
	c.SetNext(m.Inc(c.Q))
	m.Done(c)
	return m
}

func probeBus(m *rtl.Module) rtl.Vec {
	var v rtl.Vec
	for _, l := range m.N.Latches {
		v = append(v, aig.MkLit(l.Node, false))
	}
	return v
}

// BenchmarkAblationPBAvsCEGAR contrasts the paper's proof-based
// abstraction (§2.2/§4.3) with the refinement-based flow its introduction
// argues against ([6–8]): both prove quicksort's P2, and the metrics show
// the final model sizes and iteration counts of each.
func BenchmarkAblationPBAvsCEGAR(b *testing.B) {
	cfg := designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3}
	b.Run("PBA", func(b *testing.B) {
		var kept int
		for i := 0; i < b.N; i++ {
			q := designs.NewQuickSort(cfg)
			res := bmc.ProveWithPBA(q.Netlist(), q.P2Index,
				bmc.Options{MaxDepth: 200, UseEMM: true, StabilityDepth: 10})
			if res.Kind() != bmc.KindProof {
				b.Fatalf("PBA failed: %v", res.Kind())
			}
			kept = res.Abs.KeptLatches
		}
		b.ReportMetric(float64(kept), "kept_FF")
	})
	b.Run("CEGAR", func(b *testing.B) {
		var kept, rounds int
		for i := 0; i < b.N; i++ {
			q := designs.NewQuickSort(cfg)
			res := bmc.CEGAR(q.Netlist(), q.P2Index,
				bmc.Options{MaxDepth: 200, UseEMM: true}, 12)
			if res.Final.Kind != bmc.KindProof {
				b.Fatalf("CEGAR failed: %v", res.Final)
			}
			kept, rounds = res.KeptLatches, res.Rounds
		}
		b.ReportMetric(float64(kept), "kept_FF")
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkAblationExclusivity measures the paper's §3 claim that the
// exclusive valid-read chains (eq. 4) "improve the SAT solve time
// significantly" over the direct eq. 1 translation: the same quicksort P1
// proof runs with both encodings.
func BenchmarkAblationExclusivity(b *testing.B) {
	cfg := designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3}
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"Chains", false}, {"Direct", true}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := designs.NewQuickSort(cfg)
				opt := bmc.Options{MaxDepth: 200, UseEMM: true, Proofs: true,
					DisableExclusivity: variant.disable}
				if r := bmc.Check(q.Netlist(), q.P1Index, opt); r.Kind != bmc.KindProof {
					b.Fatalf("expected proof, got %v", r)
				}
			}
		})
	}
}

// BenchmarkEMMFalsification measures bug hunting (BMC-2) on the buggy
// quicksort.
func BenchmarkEMMFalsification(b *testing.B) {
	cfg := designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3, Buggy: true}
	for i := 0; i < b.N; i++ {
		q := designs.NewQuickSort(cfg)
		r := bmc.Check(q.Netlist(), q.P1Index, bmc.Options{MaxDepth: 80, UseEMM: true})
		if r.Kind != bmc.KindCE {
			b.Fatalf("expected CE, got %v", r)
		}
	}
}

// BenchmarkObsOverhead quantifies the observability tax on a full BMC-3
// proof run. The "off" case is the default (Options.Obs nil: every obs
// call site is a nil-receiver no-op); "metrics" attaches a registry but no
// trace sink — the configuration the <2% overhead requirement is about,
// since counters are published as deltas at solve-call/depth granularity
// rather than per solver operation; "traced" adds a JSONL journal to
// an in-memory buffer for comparison.
func BenchmarkObsOverhead(b *testing.B) {
	cfg := designs.QuickSortConfig{N: 3, ArrayAW: 4, DataW: 8, StackAW: 4}
	base := bmc.Options{MaxDepth: 200, UseEMM: true, Proofs: true}
	run := func(name string, mkOpt func() bmc.Options) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := designs.NewQuickSort(cfg)
				r := bmc.Check(q.Netlist(), q.P1Index, mkOpt())
				if r.Kind != bmc.KindProof {
					b.Fatalf("expected proof, got %v", r)
				}
			}
		})
	}
	run("off", func() bmc.Options { return base })
	run("metrics", func() bmc.Options {
		return base.WithObserver(NewObserver(NewRegistry(), nil))
	})
	run("traced", func() bmc.Options {
		return base.WithTrace(NewJSONLTrace(&bytes.Buffer{}))
	})
}

// BenchmarkReduceDBTiers prices the three-tier learnt-clause bookkeeping
// (LBD computation, promotion/demotion, activity-sorted local deletion) on
// a conflict-heavy UNSAT pigeonhole solve. Mirrored in cmd/emmbench.
func BenchmarkReduceDBTiers(b *testing.B) {
	const holes = 7
	for i := 0; i < b.N; i++ {
		s := sat.New()
		vars := make([][]sat.Var, holes+1)
		for p := range vars {
			vars[p] = make([]sat.Var, holes)
			for h := range vars[p] {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= holes; p++ {
			cl := make([]sat.Lit, holes)
			for h := 0; h < holes; h++ {
				cl[h] = sat.PosLit(vars[p][h])
			}
			s.AddClause(cl...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 <= holes; p1++ {
				for p2 := p1 + 1; p2 <= holes; p2++ {
					s.AddClause(sat.NegLit(vars[p1][h]), sat.NegLit(vars[p2][h]))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("PHP must be UNSAT")
		}
	}
}

// BenchmarkSimplify prices one inprocessing pass over a CNF salted with
// subsumable supersets, self-subsuming near-duplicates, and an eliminable
// implication chain. Mirrored (at larger scale) in cmd/emmbench.
func BenchmarkSimplify(b *testing.B) {
	const chain = 1000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := sat.New()
		vars := make([]sat.Var, chain)
		for j := range vars {
			vars[j] = s.NewVar()
		}
		s.Freeze(vars[0])
		s.Freeze(vars[chain-1])
		for j := 0; j+1 < chain; j++ {
			a, c := sat.NegLit(vars[j]), sat.PosLit(vars[j+1])
			s.AddClause(a, c)
			s.AddClause(a, c, sat.PosLit(vars[(j+7)%chain]))
			p := sat.PosLit(vars[(j+11)%chain])
			q := sat.PosLit(vars[(j+23)%chain])
			x := sat.PosLit(vars[(j+13)%chain])
			s.AddClause(p, q, x)
			s.AddClause(p, q, x.Not())
		}
		b.StartTimer()
		if err := s.Simplify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrowthSolve runs the solve-based growth experiment (§S2) at a
// CI-sized configuration: the shared-address read-consistency property,
// BMC-2 to depth 12 with strash and memoization off, with and without
// inprocessing. The full-depth A/B lives in cmd/emmbench.
func BenchmarkGrowthSolve(b *testing.B) {
	run := func(name string, noSimplify bool) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := exp.GrowthSolveConfig{AW: 5, DW: 8, MaxK: 12, NoOpt: true, NoSimplify: noSimplify}
				if r := exp.GrowthSolve(cfg); r.Kind != bmc.KindNoCE {
					b.Fatalf("valid property must report NO_CE, got %v", r.Kind)
				}
			}
		})
	}
	run("baseline", true)
	run("inproc", false)
}

// BenchmarkLazyEMM prices demand-driven read-over-write instantiation on
// the shared-address growth shape: /eager is the full per-depth encoding,
// /lazy the refinement loop, both reporting the EMM clause count actually
// emitted so the trajectory captures the reduction alongside the time.
func BenchmarkLazyEMM(b *testing.B) {
	run := func(name string, lazy bool) {
		b.Run(name, func(b *testing.B) {
			var clauses int
			for i := 0; i < b.N; i++ {
				cfg := exp.GrowthSolveConfig{AW: 5, DW: 8, MaxK: 12, NoOpt: true, Lazy: lazy}
				r := exp.GrowthSolve(cfg)
				if r.Kind != bmc.KindNoCE {
					b.Fatalf("valid property must report NO_CE, got %v", r.Kind)
				}
				clauses = r.Stats.EMM.Clauses() + r.Stats.EMM.InitClauses
			}
			b.ReportMetric(float64(clauses), "emm_clauses")
		})
	}
	run("eager", false)
	run("lazy", true)
}

// BenchmarkCompilePipeline prices the static compile pipeline and records
// its effect on the decoy-salted growth design: /static times the four
// netlist passes alone; /solve-off and /solve-on run the depth-12 BMC-2
// check with the pipeline disabled and enabled, reporting cumulative CNF
// clauses so the benchmark trajectory captures the reduction.
func BenchmarkCompilePipeline(b *testing.B) {
	cfg := exp.GrowthSolveConfig{AW: 5, DW: 8, MaxK: 12, NoOpt: true, Decoys: 8}
	b.Run("static", func(b *testing.B) {
		n := exp.GrowthSolveNetlist(cfg)
		var after pass.Counts
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := pass.Compile(n, []int{0}, pass.Options{})
			if err != nil {
				b.Fatal(err)
			}
			after = pass.CountsOf(c.N)
		}
		before := pass.CountsOf(n)
		b.ReportMetric(float64(before.Nodes-after.Nodes), "nodes_removed")
		b.ReportMetric(float64(before.Latches-after.Latches), "latches_removed")
		b.ReportMetric(float64(before.MemPorts-after.MemPorts), "ports_removed")
	})
	solve := func(name, spec string) {
		b.Run(name, func(b *testing.B) {
			var clauses int
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Passes = spec
				r := exp.GrowthSolve(c)
				if r.Kind != bmc.KindNoCE {
					b.Fatalf("valid property must report NO_CE, got %v", r.Kind)
				}
				clauses = r.Stats.Clauses
			}
			b.ReportMetric(float64(clauses), "clauses")
		})
	}
	solve("solve-off", pass.SpecNone)
	solve("solve-on", "")
}
