// Lookupinv replays the Industry II verification story end to end on the
// multi-port lookup engine (one memory, 1 write + 3 read ports, dead write
// path):
//
//  1. abstracting the memory away completely yields spurious witnesses;
//  2. with EMM, no witness exists at any searched depth;
//  3. the invariant G(WE=0 ∨ WD=0) is proved by backward induction at
//     depth 2 — evidence of the latent "data read is always 0" bug;
//  4. justified by the invariant, the memory is replaced by an RD=0
//     constraint and every reachability property is proved via PBA;
//  5. the BDD-based model checker, for comparison, blows up on the
//     explicit-memory model.
package main

import (
	"fmt"

	"emmver"
	"emmver/internal/bdd"
	"emmver/internal/bmc"
	"emmver/internal/designs"
)

func main() {
	cfg := designs.LookupConfig{AW: 4, DW: 8, NumProps: 8, Latency: 6}
	l := designs.NewLookup(cfg)
	fmt.Printf("lookup engine: %s\n\n", l.Netlist().Stats())

	// 1. Full memory abstraction: read data free -> spurious witness.
	p0 := l.ReachIndices[0]
	r := emmver.Verify(l.Netlist(), p0, bmc.Options{MaxDepth: 20})
	fmt.Printf("1. no memory model:   %s\n", r)
	if r.Kind == emmver.CounterExample {
		err := r.Witness.Replay(l.Netlist(), p0)
		fmt.Printf("   concrete replay rejects it: %v\n", err != nil)
	}

	// 2. EMM: no witness.
	r = emmver.Verify(l.Netlist(), p0, emmver.BMC2(60))
	fmt.Printf("2. with EMM:          %s\n", r)

	// 3. The invariant, by backward induction.
	r = emmver.Verify(l.Netlist(), l.InvariantIndex, emmver.BMC3(20))
	fmt.Printf("3. G(WE=0 or WD=0):   %s via %s induction\n", r, r.ProofSide)

	// 4. RD=0 abstraction + PBA proves every property.
	constrained := l.WithRDZeroConstraint()
	proved := 0
	for _, p := range l.ReachIndices {
		pr := emmver.ProveWithAbstraction(constrained, p, bmc.Options{
			MaxDepth: 30, StabilityDepth: 5,
		})
		if pr.Kind() == emmver.Proved {
			proved++
		}
	}
	fmt.Printf("4. RD=0 + PBA:        %d/%d properties proved\n", proved, cfg.NumProps)

	// 5. The BDD engine on the explicit model.
	exp, err := emmver.ExpandMemories(l.Netlist())
	if err != nil {
		panic(err)
	}
	mc, err := bdd.CheckSafety(exp, p0, 200000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("5. BDD on explicit:   %s\n", mc)
}
