// Filtersearch reproduces the Industry I workload shape: a streaming
// low-pass image filter with two line-buffer memories and a battery of
// reachability properties "output == v". Most values have witnesses
// (found by EMM-based BMC, deepest around two scan lines); values above
// the smoothing bound are proved unreachable by induction.
package main

import (
	"fmt"

	"emmver"
	"emmver/internal/bmc"
	"emmver/internal/designs"
)

func main() {
	cfg := designs.ImageFilterConfig{LineWidth: 6, AW: 4, DW: 4, NumProps: 16}
	f := designs.NewImageFilter(cfg)
	fmt.Printf("image filter: %s\n", f.Netlist().Stats())
	fmt.Printf("smoothing bound: output ≤ %d\n\n", f.MaxOutput)

	res := emmver.VerifyAll(f.Netlist(), f.PropIndices(), bmc.Options{
		MaxDepth:        6*cfg.LineWidth + 10,
		UseEMM:          true,
		Proofs:          true,
		ValidateWitness: true,
	})

	witnesses, proofs := 0, 0
	for v, r := range res.Results {
		switch r.Kind {
		case emmver.CounterExample:
			witnesses++
			fmt.Printf("out==%-3d reachable  (witness depth %d)\n", v, r.Depth)
		case emmver.Proved:
			proofs++
			fmt.Printf("out==%-3d unreachable (proved by %s induction at depth %d)\n",
				v, r.ProofSide, r.Depth)
		default:
			fmt.Printf("out==%-3d %s\n", v, r.Kind)
		}
	}
	fmt.Printf("\n%d witnesses (deepest %d), %d induction proofs, %.1fs total\n",
		witnesses, res.MaxWitnessDepth, proofs, res.Stats.Elapsed.Seconds())
}
