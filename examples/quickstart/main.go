// Quickstart: build a tiny design with an embedded memory, find a real
// bug with EMM-based BMC, validate the counter-example on the concrete
// design, then prove a corrected property by induction.
package main

import (
	"fmt"

	"emmver"
)

func main() {
	// A scratchpad memory guarded by a bounds checker. The checker is
	// buggy: it uses <= instead of < for the upper bound, so address 8
	// (one past the last valid slot 7) slips through.
	d := emmver.NewDesign("scratchpad")
	mem := d.Memory("scratch", 4, 8, emmver.MemZero) // 16 words of 8 bits
	addr := d.Input("addr", 4)
	data := d.Input("data", 8)
	wr := d.InputBit("wr")

	limit := d.Const(4, 8)
	inBounds := d.Ule(addr, limit) // BUG: should be Ult
	mem.Write(addr, data, d.N.And(wr, inBounds))

	// Track whether slot 8 (reserved) was ever written.
	hit := d.BitReg("reserved_hit", false)
	hit.UpdateBit(d.N.Ands(wr, inBounds, d.EqConst(addr, 8)), emmver.True)
	d.Done(hit)

	d.AssertAlways("reserved-slot-untouched", hit.Bit().Not())

	// Hunt for a violation with EMM-based BMC (the memory array is never
	// expanded into state bits).
	opt := emmver.BMC2(20)
	opt.ValidateWitness = true // replay every CE on the concrete design
	res := emmver.Verify(d.N, 0, opt)
	fmt.Println("buggy design:", res)
	if res.Kind == emmver.CounterExample {
		fmt.Printf("  bug reproduced at cycle %d\n", res.Witness.Length)
		for f := 0; f <= res.Witness.Length; f++ {
			fmt.Printf("  cycle %d: %s\n", f, res.Witness.FormatFrame(d.N, f))
		}
	}

	// Fix the comparison and prove the property by SAT-based induction.
	fixed := emmver.NewDesign("scratchpad-fixed")
	mem2 := fixed.Memory("scratch", 4, 8, emmver.MemZero)
	a2 := fixed.Input("addr", 4)
	d2 := fixed.Input("data", 8)
	w2 := fixed.InputBit("wr")
	ok2 := fixed.Ult(a2, fixed.Const(4, 8))
	mem2.Write(a2, d2, fixed.N.And(w2, ok2))
	hit2 := fixed.BitReg("reserved_hit", false)
	hit2.UpdateBit(fixed.N.Ands(w2, ok2, fixed.EqConst(a2, 8)), emmver.True)
	fixed.Done(hit2)
	fixed.AssertAlways("reserved-slot-untouched", hit2.Bit().Not())

	res2 := emmver.Verify(fixed.N, 0, emmver.BMC3(20))
	fmt.Println("fixed design:", res2)
}
