// Verilogflow compiles a small Verilog design with an embedded memory, hunts
// for a protocol bug with EMM-based BMC, writes the counter-example as a
// VCD waveform, and proves the fixed version — the full HDL-to-verdict
// pipeline.
package main

import (
	"fmt"
	"os"

	"emmver"
	"emmver/internal/vcd"
)

const buggy = `
// A FIFO with a one-slot skid buffer: pop data comes from the memory.
// The bug: the full check allows count == DEPTH+1.
module fifo(input clk, input push, input pop, input [7:0] din);
  parameter DEPTH = 4;   // power of two
  parameter AW = 2;

  (* init = "zero" *) reg [7:0] mem [DEPTH-1:0];
  reg [AW-1:0] wp;
  reg [AW-1:0] rp;
  reg [AW:0]   count;

  wire can_push = count <= DEPTH;     // BUG: should be count < DEPTH
  wire can_pop  = count != 0;
  wire do_push = push && can_push;
  wire do_pop  = pop && can_pop;

  always @(posedge clk) begin
    if (do_push) begin
      mem[wp] <= din;
      wp <= wp + 1'b1;
    end
    if (do_pop) rp <= rp + 1'b1;
    count <= count + (do_push ? 1'b1 : 1'b0) - (do_pop ? 1'b1 : 1'b0);
  end

  assert(count <= DEPTH, "never-overfull");
endmodule`

func main() {
	n, err := emmver.CompileVerilog(buggy, "fifo")
	if err != nil {
		panic(err)
	}
	fmt.Printf("fifo: %s\n", n.Stats())

	opt := emmver.BMC2(20)
	opt.ValidateWitness = true
	res := emmver.Verify(n, 0, opt)
	fmt.Println("buggy fifo:", res)
	if res.Kind == emmver.CounterExample {
		f, err := os.Create("fifo_bug.vcd")
		if err != nil {
			panic(err)
		}
		if err := vcd.DumpWitness(f, n, res.Witness, 0); err != nil {
			panic(err)
		}
		f.Close()
		fmt.Println("waveform written to fifo_bug.vcd")
	}

	fixed, err := emmver.CompileVerilog(
		replace(buggy, "count <= DEPTH;     // BUG: should be count < DEPTH",
			"count < DEPTH;"), "fifo")
	if err != nil {
		panic(err)
	}
	res2 := emmver.Verify(fixed, 0, emmver.BMC3(30))
	fmt.Println("fixed fifo:", res2)
}

func replace(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	panic("pattern not found")
}
