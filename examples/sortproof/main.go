// Sortproof walks through the paper's quicksort case study (Tables 1 and
// 2) at laptop scale: it proves the sortedness property P1 and the
// stack-discipline property P2 by forward induction with EMM, compares
// against the Explicit Modeling baseline, and shows proof-based
// abstraction discovering that P2 does not depend on the array memory.
package main

import (
	"fmt"
	"time"

	"emmver"
	"emmver/internal/bmc"
	"emmver/internal/designs"
)

func main() {
	cfg := designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3}
	q := designs.NewQuickSort(cfg)
	fmt.Printf("quicksort machine (N=%d): %s\n", cfg.N, q.Netlist().Stats())

	// First confirm the machine actually sorts, via concrete simulation.
	input := []uint64{9, 2, 7}
	sorted, cycles, err := q.SimulateSort(input, 2000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulation: %v -> %v in %d cycles\n\n", input, sorted, cycles)

	// P1 with EMM (BMC-3): the array has arbitrary initial contents, so
	// the proof needs the paper's precise initial-state modeling (§4.2).
	for _, pc := range []struct {
		name string
		prop int
	}{{"P1 (sorted)", q.P1Index}, {"P2 (stack discipline)", q.P2Index}} {
		q := designs.NewQuickSort(cfg)
		r := emmver.Verify(q.Netlist(), pc.prop, emmver.BMC3(200))
		fmt.Printf("EMM      %-22s %s\n", pc.name, r)

		exp, err := emmver.ExpandMemories(q.Netlist())
		if err != nil {
			panic(err)
		}
		opt := emmver.BMC1(200)
		opt.Timeout = 2 * time.Minute
		re := emmver.Verify(exp, pc.prop, opt)
		fmt.Printf("Explicit %-22s %s\n\n", pc.name, re)
	}

	// Table 2's point: with PBA, the array memory disappears from the P2
	// proof obligation entirely.
	q2 := designs.NewQuickSort(cfg)
	res := emmver.ProveWithAbstraction(q2.Netlist(), q2.P2Index, bmc.Options{
		MaxDepth: 200, UseEMM: true, StabilityDepth: 10,
	})
	fmt.Printf("P2 with PBA: %s\n", res.Kind())
	fmt.Printf("  reduced model: %s\n", res.Abs)
	fmt.Printf("  array memory modeled: %v (stack: %v)\n",
		res.Abs.MemEnabled[0], res.Abs.MemEnabled[1])
}
