// Package expmem implements the paper's comparison baseline, "Explicit
// Modeling": every embedded memory module is expanded into 2^AW × DW
// latches with address decoders on the write side and word-select mux logic
// on the read side. The result is a memory-free netlist that any plain BMC
// engine (BMC-1) can verify, at the cost of the state-space blowup the
// paper's EMM exists to avoid.
//
// The expansion preserves the exact memory semantics used by EMM and the
// simulator: asynchronous reads, synchronous writes visible the next cycle,
// and higher-indexed write ports winning same-cycle same-address races.
package expmem

import (
	"fmt"

	"emmver/internal/aig"
)

// Mapping relates objects of the original netlist to the expanded one.
type Mapping struct {
	// Input maps original input nodes to expanded input nodes.
	Input map[aig.NodeID]aig.NodeID
	// Latch maps original latch nodes to expanded latch nodes.
	Latch map[aig.NodeID]aig.NodeID
	// MemLatches[mi][word] is the expanded word register (LSB first) of
	// memory mi.
	MemLatches [][][]aig.Lit
}

// MaxExpandedBits caps the total number of memory latches one expansion
// may create (the 2^AW × DW blowup is the very thing EMM exists to avoid —
// past this point explicit modeling is a mistake, not a baseline). Expand
// reports an error instead of exhausting memory.
const MaxExpandedBits = 1 << 24

// expandError is the typed panic the expander throws on bad input; Expand
// converts it into its error return. Anything else keeps unwinding — a
// plain panic here is a bug, not an input condition.
type expandError struct{ err error }

// failf aborts the expansion with an input-condition error.
func failf(format string, args ...interface{}) {
	panic(expandError{fmt.Errorf("expmem: "+format, args...)})
}

// Expand builds a memory-free copy of n. It reports an error on inputs
// explicit modeling cannot represent: combinational cycles through memory
// ports (a read port whose address depends on its own data), read-data
// nodes not owned by any port, and expansions larger than MaxExpandedBits.
func Expand(n *aig.Netlist) (out *aig.Netlist, mp *Mapping, err error) {
	x := &expander{
		src: n,
		dst: aig.New(n.Name + "_explicit"),
		mp: &Mapping{
			Input: make(map[aig.NodeID]aig.NodeID),
			Latch: make(map[aig.NodeID]aig.NodeID),
		},
		memo:  make(map[aig.NodeID]aig.Lit),
		state: make(map[aig.NodeID]int),
	}
	defer func() {
		if r := recover(); r != nil {
			ee, ok := r.(expandError)
			if !ok {
				panic(r)
			}
			out, mp, err = nil, nil, ee.err
		}
	}()
	x.run()
	return x.dst, x.mp, nil
}

type expander struct {
	src *aig.Netlist
	dst *aig.Netlist
	mp  *Mapping

	memo  map[aig.NodeID]aig.Lit
	state map[aig.NodeID]int // 0 unvisited, 1 visiting, 2 done

	// readVal[port pointer] -> expanded read-data bus
	readVal map[*aig.ReadPort][]aig.Lit
	// wordSel caches, per memory index and read port, the word-select mux
	// output; built lazily because the port address must be copied first.
	portOf map[aig.NodeID]portRef
}

type portRef struct {
	mi  int
	rp  *aig.ReadPort
	bit int
}

func (x *expander) run() {
	// Inputs, in declaration order, with their names.
	for _, id := range x.src.Inputs {
		nl := x.dst.NewInput(x.src.InputName(id))
		x.mp.Input[id] = nl.Node()
		x.memo[id] = nl
		x.state[id] = 2
	}
	// Design latches.
	for _, l := range x.src.Latches {
		nl := x.dst.NewLatch(l.Name, l.Init)
		x.mp.Latch[l.Node] = nl.Node()
		x.memo[l.Node] = nl
		x.state[l.Node] = 2
	}
	// Memory word registers, after checking the blowup fits the cap.
	var totalBits int64
	for _, m := range x.src.Memories {
		totalBits += int64(m.Words()) * int64(m.DW)
	}
	if totalBits > MaxExpandedBits {
		failf("expansion needs %d memory latches (cap %d); use EMM instead", totalBits, MaxExpandedBits)
	}
	for mi, m := range x.src.Memories {
		words := make([][]aig.Lit, m.Words())
		for w := range words {
			bits := make([]aig.Lit, m.DW)
			for b := range bits {
				init := aig.Init0
				switch m.Init {
				case aig.MemArbitrary:
					init = aig.InitX
				case aig.MemImage:
					if m.Image[w]>>uint(b)&1 == 1 {
						init = aig.Init1
					}
				}
				bits[b] = x.dst.NewLatch(fmt.Sprintf("%s[%d][%d]", m.Name, w, b), init)
			}
			words[w] = bits
		}
		x.mp.MemLatches = append(x.mp.MemLatches, words)
		_ = mi
	}
	// Index read-data nodes back to their ports.
	x.portOf = make(map[aig.NodeID]portRef)
	x.readVal = make(map[*aig.ReadPort][]aig.Lit)
	for mi, m := range x.src.Memories {
		for _, rp := range m.Reads {
			for b, id := range rp.Data {
				x.portOf[id] = portRef{mi: mi, rp: rp, bit: b}
			}
		}
	}

	// Copy combinational definitions: latch next-state functions.
	for _, l := range x.src.Latches {
		x.dst.SetNext(x.memo[l.Node], x.copyLit(l.Next))
	}
	// Write-side logic for every memory word.
	for mi, m := range x.src.Memories {
		x.buildWrites(mi, m)
	}
	// Properties and constraints.
	for _, p := range x.src.Props {
		x.dst.AddProperty(p.Name, x.copyLit(p.OK))
	}
	for _, c := range x.src.Constraints {
		x.dst.AddConstraint(x.copyLit(c))
	}
}

func (x *expander) copyLit(l aig.Lit) aig.Lit {
	v := x.copyNode(l.Node())
	return v.XorInv(l.Inverted())
}

func (x *expander) copyNode(id aig.NodeID) aig.Lit {
	if v, ok := x.memo[id]; ok && x.state[id] == 2 {
		return v
	}
	if x.state[id] == 1 {
		failf("combinational cycle through a memory port")
	}
	x.state[id] = 1
	node := x.src.NodeAt(id)
	var v aig.Lit
	switch node.Kind {
	case aig.KConst:
		v = aig.False
	case aig.KAnd:
		a := x.copyLit(node.F0)
		b := x.copyLit(node.F1)
		v = x.dst.And(a, b)
	case aig.KMemRead:
		pr, ok := x.portOf[id]
		if !ok {
			failf("orphan memory-read node %d", id)
		}
		v = x.readData(pr.mi, pr.rp)[pr.bit]
	default:
		failf("unexpected kind %v during copy", node.Kind)
	}
	x.memo[id] = v
	x.state[id] = 2
	return v
}

// wordSelect builds the one-hot word-select signals for an address bus.
func (x *expander) wordSelect(m *aig.Memory, addr []aig.Lit) []aig.Lit {
	sel := make([]aig.Lit, m.Words())
	for w := range sel {
		s := aig.True
		for b, al := range addr {
			bit := al
			if w>>uint(b)&1 == 0 {
				bit = bit.Not()
			}
			s = x.dst.And(s, bit)
		}
		sel[w] = s
	}
	return sel
}

// readData builds (once per port) the full read mux: the value most
// recently stored at the port's address. Reads are modeled as always
// returning the stored word; designs are expected to consume read data only
// under an active read enable, where this coincides with the EMM model.
func (x *expander) readData(mi int, rp *aig.ReadPort) []aig.Lit {
	if v, ok := x.readVal[rp]; ok {
		return v
	}
	m := x.src.Memories[mi]
	addr := make([]aig.Lit, len(rp.Addr))
	for i, al := range rp.Addr {
		addr[i] = x.copyLit(al)
	}
	sel := x.wordSelect(m, addr)
	words := x.mp.MemLatches[mi]
	out := make([]aig.Lit, m.DW)
	for b := 0; b < m.DW; b++ {
		v := aig.False
		for w := range words {
			v = x.dst.Or(v, x.dst.And(sel[w], words[w][b]))
		}
		out[b] = v
	}
	x.readVal[rp] = out
	return out
}

// buildWrites assigns next-state functions to every word register of
// memory mi: later (higher-indexed) write ports take priority on
// same-cycle same-address races, matching the EMM chain of eq. 4.
func (x *expander) buildWrites(mi int, m *aig.Memory) {
	words := x.mp.MemLatches[mi]
	type wport struct {
		sel  []aig.Lit
		data []aig.Lit
		en   aig.Lit
	}
	var ports []wport
	for _, wp := range m.Writes {
		addr := make([]aig.Lit, len(wp.Addr))
		for i, al := range wp.Addr {
			addr[i] = x.copyLit(al)
		}
		data := make([]aig.Lit, len(wp.Data))
		for i, dl := range wp.Data {
			data[i] = x.copyLit(dl)
		}
		ports = append(ports, wport{
			sel:  x.wordSelect(m, addr),
			data: data,
			en:   x.copyLit(wp.En),
		})
	}
	for w := range words {
		for b := range words[w] {
			next := words[w][b]
			for _, p := range ports {
				hit := x.dst.And(p.sel[w], p.en)
				next = x.dst.Mux(hit, p.data[b], next)
			}
			x.dst.SetNext(words[w][b], next)
		}
	}
}
