package expmem

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
	"emmver/internal/sim"
)

// buildMemDesign creates a design whose memory ports are driven by inputs
// and whose read data is exposed through per-bit properties, so that the
// original (memory-ful) and expanded (memory-free) netlists can be compared
// cycle by cycle under identical stimulus.
func buildMemDesign(aw, dw, nw, nr int, init aig.MemInit, image []uint64) *rtl.Module {
	m := rtl.NewModule("dut")
	mem := m.Memory("mem", aw, dw, init)
	if init == aig.MemImage {
		mem.Mod.Image = image
	}
	for w := 0; w < nw; w++ {
		mem.Write(m.Input("wa", aw), m.Input("wd", dw), m.InputBit("we"))
	}
	for r := 0; r < nr; r++ {
		rd := mem.Read(m.Input("ra", aw), aig.True)
		for b, l := range rd {
			_ = b
			m.AssertAlways("rd", l)
		}
	}
	return m
}

// compareRuns drives both netlists with the same random inputs for several
// cycles and compares all property values.
func compareRuns(t *testing.T, orig *aig.Netlist, seed int64, cycles int) {
	t.Helper()
	exp, mp, err := Expand(orig)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sim.New(orig)
	s2 := sim.New(exp)
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < cycles; c++ {
		in1 := s1.RandomInputs(rng)
		in2 := make(map[aig.NodeID]bool, len(in1))
		for id, v := range in1 {
			in2[mp.Input[id]] = v
		}
		r1 := s1.Step(in1)
		r2 := s2.Step(in2)
		if len(r1.PropOK) != len(r2.PropOK) {
			t.Fatalf("property count mismatch")
		}
		for i := range r1.PropOK {
			if r1.PropOK[i] != r2.PropOK[i] {
				t.Fatalf("cycle %d prop %d: orig=%v explicit=%v", c, i, r1.PropOK[i], r2.PropOK[i])
			}
		}
	}
}

func TestExpandMatchesSimZeroInit(t *testing.T) {
	m := buildMemDesign(3, 4, 1, 1, aig.MemZero, nil)
	for seed := int64(0); seed < 10; seed++ {
		compareRuns(t, m.N, seed, 40)
	}
}

func TestExpandMatchesSimMultiPort(t *testing.T) {
	m := buildMemDesign(2, 3, 2, 2, aig.MemZero, nil)
	for seed := int64(0); seed < 10; seed++ {
		compareRuns(t, m.N, seed, 40)
	}
}

func TestExpandMatchesSimImageInit(t *testing.T) {
	image := []uint64{1, 2, 3, 4, 5, 6, 7, 0}
	m := buildMemDesign(3, 3, 1, 1, aig.MemImage, image)
	for seed := int64(0); seed < 5; seed++ {
		compareRuns(t, m.N, seed, 30)
	}
}

func TestExpandWithDesignLatches(t *testing.T) {
	// A design mixing a memory with ordinary state: an accumulator sums
	// every value read from the memory.
	m := rtl.NewModule("dut")
	mem := m.Memory("mem", 2, 4, aig.MemZero)
	mem.Write(m.Input("wa", 2), m.Input("wd", 4), m.InputBit("we"))
	rd := mem.Read(m.Input("ra", 2), aig.True)
	acc := m.Register("acc", 4, 0)
	acc.SetNext(m.Add(acc.Q, rd))
	m.Done(acc)
	for _, l := range acc.Q {
		m.AssertAlways("acc", l)
	}
	for seed := int64(0); seed < 10; seed++ {
		compareRuns(t, m.N, seed, 30)
	}
}

func TestWriteRacePriority(t *testing.T) {
	// Two write ports, same address, same cycle: the higher port index
	// must win, matching the EMM chain semantics.
	m := rtl.NewModule("dut")
	mem := m.Memory("mem", 2, 4, aig.MemZero)
	addr := m.Input("a", 2)
	mem.Write(addr, m.Const(4, 5), aig.True) // port 0 writes 5
	mem.Write(addr, m.Const(4, 9), aig.True) // port 1 writes 9
	rd := mem.Read(addr, aig.True)
	for _, l := range rd {
		m.AssertAlways("rd", l)
	}
	exp, mp, err := Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(exp)
	in := make(map[aig.NodeID]bool)
	for _, l := range addr {
		in[mp.Input[l.Node()]] = false
	}
	s.Step(in)
	s.Begin(in)
	var got uint64
	for b := range rd {
		if s.Eval(exp.Props[b].OK) {
			got |= 1 << uint(b)
		}
	}
	if got != 9 {
		t.Fatalf("race winner: got %d want 9 (higher port index)", got)
	}
}

func TestExpandStats(t *testing.T) {
	m := buildMemDesign(4, 8, 1, 1, aig.MemZero, nil)
	exp, _, err := Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Memories != 0 {
		t.Fatalf("explicit model must have no memories")
	}
	if st.Latches != 16*8 {
		t.Fatalf("expected %d word-register latches, got %d", 16*8, st.Latches)
	}
	if st.Inputs != m.N.Stats().Inputs {
		t.Fatalf("input count must be preserved")
	}
}

func TestExpandArbitraryInitLatches(t *testing.T) {
	m := buildMemDesign(2, 2, 1, 1, aig.MemArbitrary, nil)
	exp, mp, err := Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	for _, word := range mp.MemLatches[0] {
		for _, bit := range word {
			if exp.LatchOf(bit.Node()).Init != aig.InitX {
				t.Fatalf("arbitrary-init memory must expand to InitX latches")
			}
		}
	}
}

func TestExpandPreservesConstraints(t *testing.T) {
	m := buildMemDesign(2, 2, 1, 1, aig.MemZero, nil)
	c := m.InputBit("cond")
	m.Assume(c)
	exp, _, err := Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Constraints) != 1 {
		t.Fatalf("constraints must be copied")
	}
}

func TestCombinationalCycleErrors(t *testing.T) {
	// A read port whose address depends on its own data is a
	// combinational cycle; Expand must reject it with an error, not a
	// panic.
	m := rtl.NewModule("bad")
	mem := m.Memory("mem", 2, 2, aig.MemZero)
	rp := m.N.NewReadPort(mem.Mod)
	d := rp.DataLits()
	m.N.SetReadAddr(mem.Mod, rp, d, aig.True)
	m.AssertAlways("cyclic", d[0])
	out, _, err := Expand(m.N)
	if err == nil || out != nil {
		t.Fatalf("combinational cycle must be reported as an error, got out=%v err=%v", out, err)
	}
}

func TestOversizedExpansionErrors(t *testing.T) {
	// A 2^24-word memory would expand past MaxExpandedBits; Expand must
	// refuse rather than exhaust memory building the word registers.
	m := rtl.NewModule("huge")
	mem := m.Memory("mem", 24, 8, aig.MemZero)
	rd := mem.Read(m.Input("ra", 24), aig.True)
	m.AssertAlways("rd", rd[0])
	out, _, err := Expand(m.N)
	if err == nil || out != nil {
		t.Fatalf("oversized expansion must be reported as an error, got out=%v err=%v", out, err)
	}
}

func TestExpandedModelIsDeterministic(t *testing.T) {
	// Expanding twice yields netlists of identical size.
	m := buildMemDesign(3, 4, 2, 1, aig.MemZero, nil)
	e1, _, err1 := Expand(m.N)
	e2, _, err2 := Expand(m.N)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if e1.NumNodes() != e2.NumNodes() || e1.NumAnds() != e2.NumAnds() {
		t.Fatalf("expansion not deterministic")
	}
}
