package ltl

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

func TestParseAndString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"G p", "G p"},
		{"F (p & q)", "F (p & q)"},
		{"p U q", "(p U q)"},
		{"p R q", "(p R q)"},
		{"!p | q", "(!p | q)"},
		{"p -> X q", "(p -> X q)"},
		{"G (we=0 | wd0)", "G (we=0 | wd0)"},
		{"p & q | r", "((p & q) | r)"},
		{"p U q U r", "((p U q) U r)"},
	}
	for _, c := range cases {
		f, err := Parse(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if f.String() != c.want {
			t.Fatalf("parse %q: got %q want %q", c.in, f.String(), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "(p", "p &", "& p", "G", "p q", "1abc"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("parse %q should fail", bad)
		}
	}
}

func TestNNF(t *testing.T) {
	cases := []struct{ in, want string }{
		{"!(p & q)", "(!p | !q)"},
		{"!(p | q)", "(!p & !q)"},
		{"!G p", "F !p"},
		{"!F p", "G !p"},
		{"!X p", "X !p"},
		{"!(p U q)", "(!p R !q)"},
		{"!(p R q)", "(!p U !q)"},
		{"!(p -> q)", "(p & !q)"},
		{"!!p", "p"},
	}
	for _, c := range cases {
		f, err := Parse(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.NNF().String(); got != c.want {
			t.Fatalf("NNF(%q) = %q want %q", c.in, got, c.want)
		}
	}
}

// counter builds a w-bit free-running counter and returns the module and a
// binding with atoms at0..at(2^w-1) meaning "counter == value".
func counter(w int) (*rtl.Module, Binding) {
	m := rtl.NewModule("cnt")
	c := m.Register("c", w, 0)
	c.SetNext(m.Inc(c.Q))
	m.Done(c)
	b := Binding{}
	for v := 0; v < 1<<uint(w); v++ {
		b[atomName(v)] = m.EqConst(c.Q, uint64(v))
	}
	return m, b
}

func atomName(v int) string {
	return "at" + string(rune('A'+v))
}

func TestFWitnessAtExactBound(t *testing.T) {
	m, b := counter(2)
	f, _ := Parse("F " + atomName(3))
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || w.K != 3 {
		t.Fatalf("want witness at bound 3, got %v", w)
	}
}

func TestXChains(t *testing.T) {
	m, b := counter(2)
	f, _ := Parse("X X " + atomName(2))
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || w.K != 2 {
		t.Fatalf("want witness at bound 2, got %v", w)
	}
}

func TestGNeedsLasso(t *testing.T) {
	// G(true-ish atom): the counter visits every value; "G !at3" is
	// false, but "G (at0|at1|at2|at3)" holds and needs a lasso.
	m, b := counter(2)
	f, _ := Parse("G (" + atomName(0) + "|" + atomName(1) + "|" + atomName(2) + "|" + atomName(3) + ")")
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatalf("tautological G must have a lasso witness")
	}
	if w.LoopTo < 0 {
		t.Fatalf("G witness must be a lasso, got %v", w)
	}
	// The 2-bit counter loops with period 4: earliest lasso at K=3.
	if w.K != 3 || w.LoopTo != 0 {
		t.Fatalf("expected (3,0)-lasso, got %v", w)
	}
}

func TestGFalseHasNoWitness(t *testing.T) {
	m, b := counter(2)
	f, _ := Parse("G !" + atomName(3)) // counter does reach 3
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Fatalf("false G property must have no witness, got %v", w)
	}
}

func TestGFLiveness(t *testing.T) {
	// GF at2: the counter hits 2 infinitely often.
	m, b := counter(2)
	f, _ := Parse("G F " + atomName(2))
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || w.LoopTo < 0 {
		t.Fatalf("GF needs a lasso witness, got %v", w)
	}
}

func TestUntil(t *testing.T) {
	// (at0|at1|at2) U at3: holds along the counter run.
	m, b := counter(2)
	f, _ := Parse("(" + atomName(0) + "|" + atomName(1) + "|" + atomName(2) + ") U " + atomName(3))
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || w.K != 3 {
		t.Fatalf("until witness at bound 3 expected, got %v", w)
	}
	// at1 U at3 fails: at0 breaks it immediately.
	f2, _ := Parse(atomName(1) + " U " + atomName(3))
	w2, err := FindWitness(m.N, b, f2, SearchOptions{MaxK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w2 != nil {
		t.Fatalf("false until must have no witness, got %v", w2)
	}
}

func TestRelease(t *testing.T) {
	// at3 R (at0|at1|at2|at3): g holds up to (and including) the frame
	// where at3 holds.
	m, b := counter(2)
	all := "(" + atomName(0) + "|" + atomName(1) + "|" + atomName(2) + "|" + atomName(3) + ")"
	f, _ := Parse(atomName(3) + " R " + all)
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatalf("release witness expected")
	}
}

func TestFGSaturation(t *testing.T) {
	// A saturating counter: once it reaches 3 it stays. FG at3 holds.
	m := rtl.NewModule("sat")
	c := m.Register("c", 2, 0)
	atMax := m.EqConst(c.Q, 3)
	c.Update(atMax.Not(), m.Inc(c.Q))
	m.Done(c)
	b := Binding{"max": atMax}
	f, _ := Parse("F G max")
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || w.LoopTo < 0 {
		t.Fatalf("FG needs a lasso, got %v", w)
	}
}

func TestUnboundAtom(t *testing.T) {
	m, b := counter(2)
	f, _ := Parse("F nosuch")
	if _, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 3}); err == nil {
		t.Fatalf("unbound atom must error")
	}
	_ = m
}

func TestLTLOverMemoryDesign(t *testing.T) {
	// "F got5" over the memory design: the environment can write 5 and
	// read it back; EMM constraints make the witness concrete.
	m := rtl.NewModule("mem")
	mem := m.Memory("mem", 2, 3, aig.MemZero)
	mem.Write(m.Input("wa", 2), m.Input("wd", 3), m.InputBit("we"))
	re := m.InputBit("re")
	rd := mem.Read(m.Input("ra", 2), re)
	got5 := m.BitReg("got5", false)
	got5.UpdateBit(m.N.And(re, m.EqConst(rd, 5)), aig.True)
	m.Done(got5)
	b := Binding{"got5": got5.Bit()}
	f, _ := Parse("F got5")
	w, err := FindWitness(m.N, b, f, SearchOptions{MaxK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || w.K != 2 {
		t.Fatalf("memory liveness witness at bound 2 expected, got %v", w)
	}
	// "G !got5" must have no witness... actually it DOES have one: the
	// environment can simply never write 5. Check it exists as a lasso
	// with no writes in the loop.
	f2, _ := Parse("G !got5")
	w2, err := FindWitness(m.N, b, f2, SearchOptions{MaxK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w2 == nil || w2.LoopTo < 0 {
		t.Fatalf("quiescent lasso expected, got %v", w2)
	}
}

func TestWitnessString(t *testing.T) {
	w := &LassoWitness{K: 5, LoopTo: -1}
	if w.String() == "" {
		t.Fatalf("empty string")
	}
	w.LoopTo = 2
	if w.String() == "" {
		t.Fatalf("empty string")
	}
}
