package ltl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// randFormula builds a random formula over a small atom alphabet.
func randFormula(rng *rand.Rand, depth int) *Formula {
	atoms := []string{"p", "q", "r"}
	if depth <= 0 || rng.Intn(4) == 0 {
		f := Atom(atoms[rng.Intn(len(atoms))])
		if rng.Intn(3) == 0 {
			return Not(f)
		}
		return f
	}
	switch rng.Intn(9) {
	case 0:
		return Not(randFormula(rng, depth-1))
	case 1:
		return And(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 2:
		return Or(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 3:
		return Implies(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 4:
		return X(randFormula(rng, depth-1))
	case 5:
		return F(randFormula(rng, depth-1))
	case 6:
		return G(randFormula(rng, depth-1))
	case 7:
		return U(randFormula(rng, depth-1), randFormula(rng, depth-1))
	default:
		return R(randFormula(rng, depth-1), randFormula(rng, depth-1))
	}
}

// isNNF reports whether negations appear only on atoms and no implication
// remains.
func isNNF(f *Formula) bool {
	switch f.Op {
	case OpAtom:
		return true
	case OpNot:
		return f.L.Op == OpAtom
	case OpImplies:
		return false
	case OpX, OpF, OpG:
		return isNNF(f.L)
	default:
		return isNNF(f.L) && isNNF(f.R)
	}
}

// TestNNFProperties: NNF output is in NNF and idempotent, and the printer
// and parser are mutually inverse on it.
func TestNNFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	check := func() bool {
		f := randFormula(rng, 4)
		n := f.NNF()
		if !isNNF(n) {
			t.Logf("not NNF: %s -> %s", f, n)
			return false
		}
		if n.NNF().String() != n.String() {
			t.Logf("not idempotent: %s", n)
			return false
		}
		back, err := Parse(n.String())
		if err != nil {
			t.Logf("reparse failed: %s: %v", n, err)
			return false
		}
		return back.String() == n.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// evalTrace evaluates an NNF formula over a lasso trace of atom
// assignments (infinite unrolling by following the loop), the reference
// semantics for the bounded encoder.
func evalTrace(f *Formula, trace []map[string]bool, loop int, i int, depthBudget int) bool {
	if depthBudget == 0 {
		return false // defensive; budgets are sized to suffice
	}
	succ := func(j int) int {
		if j < len(trace)-1 {
			return j + 1
		}
		return loop
	}
	switch f.Op {
	case OpAtom:
		return trace[i][f.Atom]
	case OpNot:
		return !trace[i][f.L.Atom]
	case OpAnd:
		return evalTrace(f.L, trace, loop, i, depthBudget-1) && evalTrace(f.R, trace, loop, i, depthBudget-1)
	case OpOr:
		return evalTrace(f.L, trace, loop, i, depthBudget-1) || evalTrace(f.R, trace, loop, i, depthBudget-1)
	case OpX:
		return evalTrace(f.L, trace, loop, succ(i), depthBudget-1)
	case OpF:
		for _, j := range positionsFrom(trace, loop, i) {
			if evalTrace(f.L, trace, loop, j, depthBudget-1) {
				return true
			}
		}
		return false
	case OpG:
		for _, j := range positionsFrom(trace, loop, i) {
			if !evalTrace(f.L, trace, loop, j, depthBudget-1) {
				return false
			}
		}
		return true
	case OpU:
		// Walk the (finite) set of distinct suffix positions.
		seen := map[int]bool{}
		j := i
		for !seen[j] {
			seen[j] = true
			if evalTrace(f.R, trace, loop, j, depthBudget-1) {
				return true
			}
			if !evalTrace(f.L, trace, loop, j, depthBudget-1) {
				return false
			}
			j = succ(j)
		}
		return false
	case OpR:
		seen := map[int]bool{}
		j := i
		for !seen[j] {
			seen[j] = true
			if !evalTrace(f.R, trace, loop, j, depthBudget-1) {
				return false
			}
			if evalTrace(f.L, trace, loop, j, depthBudget-1) {
				return true
			}
			j = succ(j)
		}
		return true
	}
	return false
}

// TestEncoderAgainstTraceSemantics cross-checks FindWitness against the
// reference lasso semantics on a stateless design whose atoms are free
// inputs:
//
//   - soundness: every witness found must satisfy the formula under
//     evalTrace;
//   - completeness: if FindWitness reports no witness up to bound K, no
//     lasso of length ≤ K+1 satisfies the formula (checked by exhaustive
//     enumeration over two atoms).
func TestEncoderAgainstTraceSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const maxK = 3

	for iter := 0; iter < 120; iter++ {
		f := randFormula2(rng, 3) // over atoms p, q only
		m, bind, inputs := freeAtomDesign()
		w, err := FindWitness(m, bind, f, SearchOptions{MaxK: maxK})
		if err != nil {
			t.Fatal(err)
		}
		nnf := f.NNF()
		if w != nil {
			if w.LoopTo < 0 {
				// Finite-path witness: extend to a lasso by looping the
				// last frame onto itself (the design is stateless, so
				// that is a legal execution).
				w.LoopTo = w.K
			}
			trace := make([]map[string]bool, w.K+1)
			for i := range trace {
				trace[i] = map[string]bool{
					"p": w.Inputs[i][inputs[0]],
					"q": w.Inputs[i][inputs[1]],
				}
			}
			if !evalTrace(nnf, trace, w.LoopTo, 0, 10000) {
				t.Fatalf("iter %d: witness for %s does not satisfy it (trace %v loop %d)",
					iter, f, trace, w.LoopTo)
			}
			continue
		}
		// Exhaustive completeness check.
		for k := 0; k <= maxK; k++ {
			for mask := 0; mask < 1<<uint(2*(k+1)); mask++ {
				trace := make([]map[string]bool, k+1)
				for i := range trace {
					trace[i] = map[string]bool{
						"p": mask>>(2*i)&1 == 1,
						"q": mask>>(2*i+1)&1 == 1,
					}
				}
				for loop := 0; loop <= k; loop++ {
					if evalTrace(nnf, trace, loop, 0, 10000) {
						t.Fatalf("iter %d: %s has a (%d,%d)-lasso witness %v but the encoder found none",
							iter, f, k, loop, trace)
					}
				}
			}
		}
	}
}

// randFormula2 is randFormula restricted to atoms p and q.
func randFormula2(rng *rand.Rand, depth int) *Formula {
	f := randFormula(rng, depth)
	var fix func(g *Formula)
	fix = func(g *Formula) {
		if g == nil {
			return
		}
		if g.Op == OpAtom && g.Atom == "r" {
			g.Atom = "q"
		}
		fix(g.L)
		fix(g.R)
	}
	fix(f)
	return f
}

// freeAtomDesign builds a stateless design with two free input atoms.
func freeAtomDesign() (*aig.Netlist, Binding, []aig.NodeID) {
	m := rtl.NewModule("atoms")
	p := m.InputBit("p")
	q := m.InputBit("q")
	bind := Binding{"p": p, "q": q}
	return m.N, bind, []aig.NodeID{p.Node(), q.Node()}
}

func positionsFrom(trace []map[string]bool, loop, i int) []int {
	from := i
	if loop < from {
		from = loop
	}
	var out []int
	for j := from; j < len(trace); j++ {
		out = append(out, j)
	}
	return out
}
