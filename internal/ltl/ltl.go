// Package ltl implements linear temporal logic formulas and their bounded
// translation into SAT, following the semantics the paper's BMC background
// (§2.1) builds on: given a Kripke structure M, an LTL formula f and a
// bound k, the translation [M, f]_k is satisfiable iff a witness of length
// k exists — either a finite path (for formulas whose witnesses need no
// loop) or a (k, l)-lasso.
//
// The bmc package handles plain safety (G p) natively; this package adds
// full existential LTL witness search — F, X, U, R and nested
// combinations — used, e.g., to hunt for liveness counter-examples.
package ltl

import (
	"fmt"
	"strings"
)

// Op is a formula node kind.
type Op int

// Formula operators.
const (
	OpAtom Op = iota
	OpNot
	OpAnd
	OpOr
	OpImplies
	OpX
	OpF
	OpG
	OpU
	OpR
)

// Formula is an LTL formula tree.
type Formula struct {
	Op   Op
	Atom string // OpAtom
	L, R *Formula
}

// Atom builds an atomic proposition referring to a named design signal.
func Atom(name string) *Formula { return &Formula{Op: OpAtom, Atom: name} }

// Not builds ¬f.
func Not(f *Formula) *Formula { return &Formula{Op: OpNot, L: f} }

// And builds f ∧ g.
func And(f, g *Formula) *Formula { return &Formula{Op: OpAnd, L: f, R: g} }

// Or builds f ∨ g.
func Or(f, g *Formula) *Formula { return &Formula{Op: OpOr, L: f, R: g} }

// Implies builds f → g.
func Implies(f, g *Formula) *Formula { return &Formula{Op: OpImplies, L: f, R: g} }

// X builds "next f".
func X(f *Formula) *Formula { return &Formula{Op: OpX, L: f} }

// F builds "eventually f".
func F(f *Formula) *Formula { return &Formula{Op: OpF, L: f} }

// G builds "always f".
func G(f *Formula) *Formula { return &Formula{Op: OpG, L: f} }

// U builds "f until g".
func U(f, g *Formula) *Formula { return &Formula{Op: OpU, L: f, R: g} }

// R builds "f releases g".
func R(f, g *Formula) *Formula { return &Formula{Op: OpR, L: f, R: g} }

// String renders the formula.
func (f *Formula) String() string {
	switch f.Op {
	case OpAtom:
		return f.Atom
	case OpNot:
		return "!" + f.L.String()
	case OpAnd:
		return "(" + f.L.String() + " & " + f.R.String() + ")"
	case OpOr:
		return "(" + f.L.String() + " | " + f.R.String() + ")"
	case OpImplies:
		return "(" + f.L.String() + " -> " + f.R.String() + ")"
	case OpX:
		return "X " + f.L.String()
	case OpF:
		return "F " + f.L.String()
	case OpG:
		return "G " + f.L.String()
	case OpU:
		return "(" + f.L.String() + " U " + f.R.String() + ")"
	case OpR:
		return "(" + f.L.String() + " R " + f.R.String() + ")"
	}
	return "?"
}

// NNF rewrites the formula into negation normal form (negations only on
// atoms, implications expanded), which the bounded encoder requires.
func (f *Formula) NNF() *Formula { return nnf(f, false) }

func nnf(f *Formula, neg bool) *Formula {
	switch f.Op {
	case OpAtom:
		if neg {
			return Not(f)
		}
		return f
	case OpNot:
		if f.L.Op == OpAtom && !neg {
			return f
		}
		return nnf(f.L, !neg)
	case OpAnd:
		if neg {
			return Or(nnf(f.L, true), nnf(f.R, true))
		}
		return And(nnf(f.L, false), nnf(f.R, false))
	case OpOr:
		if neg {
			return And(nnf(f.L, true), nnf(f.R, true))
		}
		return Or(nnf(f.L, false), nnf(f.R, false))
	case OpImplies:
		// f -> g ≡ ¬f ∨ g
		if neg {
			return And(nnf(f.L, false), nnf(f.R, true))
		}
		return Or(nnf(f.L, true), nnf(f.R, false))
	case OpX:
		return X(nnf(f.L, neg))
	case OpF:
		if neg {
			return G(nnf(f.L, true))
		}
		return F(nnf(f.L, false))
	case OpG:
		if neg {
			return F(nnf(f.L, true))
		}
		return G(nnf(f.L, false))
	case OpU:
		if neg {
			return R(nnf(f.L, true), nnf(f.R, true))
		}
		return U(nnf(f.L, false), nnf(f.R, false))
	case OpR:
		if neg {
			return U(nnf(f.L, true), nnf(f.R, true))
		}
		return R(nnf(f.L, false), nnf(f.R, false))
	}
	panic("ltl: unknown op")
}

// Parse reads a formula from text. Grammar (loosest to tightest binding):
//
//	formula := until ('->' formula)?
//	until   := or (('U'|'R') or)*
//	or      := and ('|' and)*
//	and     := unary ('&' unary)*
//	unary   := ('!'|'X'|'F'|'G') unary | atom | '(' formula ')'
//
// Atoms are identifiers (letters, digits, '_', '.', '[', ']').
func Parse(s string) (*Formula, error) {
	p := &parser{toks: lex(s)}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("ltl: trailing input at %q", p.toks[p.pos])
	}
	return f, nil
}

func lex(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '!' || c == '&' || c == '|':
			toks = append(toks, string(c))
			i++
		case c == '-' && i+1 < len(s) && s[i+1] == '>':
			toks = append(toks, "->")
			i += 2
		default:
			j := i
			for j < len(s) && isAtomChar(s[j]) {
				j++
			}
			if j == i {
				toks = append(toks, string(c))
				i++
				continue
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func isAtomChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.' || c == '[' || c == ']' || c == '='
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) formula() (*Formula, error) {
	l, err := p.until()
	if err != nil {
		return nil, err
	}
	if p.peek() == "->" {
		p.next()
		r, err := p.formula()
		if err != nil {
			return nil, err
		}
		return Implies(l, r), nil
	}
	return l, nil
}

func (p *parser) until() (*Formula, error) {
	l, err := p.or()
	if err != nil {
		return nil, err
	}
	for p.peek() == "U" || p.peek() == "R" {
		op := p.next()
		r, err := p.or()
		if err != nil {
			return nil, err
		}
		if op == "U" {
			l = U(l, r)
		} else {
			l = R(l, r)
		}
	}
	return l, nil
}

func (p *parser) or() (*Formula, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.next()
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *parser) and() (*Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&" {
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

func (p *parser) unary() (*Formula, error) {
	switch t := p.peek(); t {
	case "!":
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case "X", "F", "G":
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		switch t {
		case "X":
			return X(f), nil
		case "F":
			return F(f), nil
		default:
			return G(f), nil
		}
	case "(":
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("ltl: missing ')'")
		}
		return f, nil
	case "", ")", "&", "|", "->", "U", "R":
		return nil, fmt.Errorf("ltl: unexpected token %q", t)
	default:
		name := p.next()
		if !validAtom(name) {
			return nil, fmt.Errorf("ltl: bad atom %q", name)
		}
		return Atom(name), nil
	}
}

func validAtom(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isAtomChar(s[i]) {
			return false
		}
	}
	return !strings.ContainsAny(s[:1], "0123456789")
}
