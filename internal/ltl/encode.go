package ltl

import (
	"fmt"
	"time"

	"emmver/internal/aig"
	"emmver/internal/core"
	"emmver/internal/sat"
	"emmver/internal/unroll"
)

// Binding maps atom names to design signals.
type Binding map[string]aig.Lit

// LassoWitness is a bounded LTL witness: a path of K+1 states, optionally
// closing back to frame LoopTo (LoopTo = -1 for loop-free witnesses).
type LassoWitness struct {
	K      int
	LoopTo int
	Inputs []map[aig.NodeID]bool
}

// String summarizes the witness.
func (w *LassoWitness) String() string {
	if w.LoopTo < 0 {
		return fmt.Sprintf("path witness of length %d", w.K)
	}
	return fmt.Sprintf("(%d,%d)-lasso witness", w.K, w.LoopTo)
}

// SearchOptions configures FindWitness.
type SearchOptions struct {
	MaxK    int
	Timeout time.Duration
}

// FindWitness searches for a bounded witness of f over n, increasing the
// bound from 0 to MaxK (the standard BMC loop of §2.1). The formula is
// taken existentially: a result means some execution satisfies f. To
// refute a universal property ψ, search for a witness of ¬ψ.
//
// Designs with embedded memories are handled through EMM constraints; a
// lasso witness additionally requires the loop section to perform no
// memory writes, which guarantees the memory state repeats (sound, though
// it can miss lassos that rewrite identical contents).
func FindWitness(n *aig.Netlist, bind Binding, f *Formula, opt SearchOptions) (*LassoWitness, error) {
	if err := checkBinding(n, bind, f); err != nil {
		return nil, err
	}
	g := f.NNF()
	deadline := time.Time{}
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	for k := 0; k <= opt.MaxK; k++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, fmt.Errorf("ltl: timeout at bound %d", k)
		}
		w, err := witnessAt(n, bind, g, k, deadline)
		if err != nil {
			return nil, err
		}
		if w != nil {
			return w, nil
		}
	}
	return nil, nil
}

func checkBinding(n *aig.Netlist, bind Binding, f *Formula) error {
	switch f.Op {
	case OpAtom:
		if _, ok := bind[f.Atom]; !ok {
			return fmt.Errorf("ltl: unbound atom %q", f.Atom)
		}
		return nil
	case OpNot, OpX, OpF, OpG:
		return checkBinding(n, bind, f.L)
	default:
		if err := checkBinding(n, bind, f.L); err != nil {
			return err
		}
		return checkBinding(n, bind, f.R)
	}
}

type encoder struct {
	u    *unroll.Unroller
	bind Binding
	k    int
	memo map[encKey]sat.Lit
	tag  unroll.Tag
}

type encKey struct {
	f    *Formula
	i    int
	loop int // -1 for the no-loop translation
}

func witnessAt(n *aig.Netlist, bind Binding, f *Formula, k int, deadline time.Time) (*LassoWitness, error) {
	s := sat.New()
	if !deadline.IsZero() {
		s.Interrupt = func() bool { return time.Now().After(deadline) }
	}
	u := unroll.New(n, s, unroll.Initialized)
	u.FoldInits = true
	if len(n.Memories) > 0 {
		gen := core.NewGenerator(u, false)
		gen.AddUpTo(k)
	}
	for t := 0; t <= k; t++ {
		u.AssertConstraints(t)
	}
	e := &encoder{u: u, bind: bind, k: k, memo: make(map[encKey]sat.Lit), tag: unroll.MkTag(unroll.TagAux, k, 1)}

	// No-loop translation.
	top := e.enc(f, 0, -1)
	// Loop translations, one selector per loop-back point.
	sels := make([]sat.Lit, k+1)
	for l := 0; l <= k; l++ {
		cond := e.loopCondition(l)
		body := e.enc(f, 0, l)
		sel := u.MkAndAux(cond, body, e.tag)
		sels[l] = sel
		top = u.MkOrAux(top, sel, e.tag)
	}

	switch s.Solve(top) {
	case sat.Sat:
		w := &LassoWitness{K: k, LoopTo: -1}
		for l := 0; l <= k; l++ {
			if s.LitValue(sels[l]) == sat.True {
				w.LoopTo = l
				break
			}
		}
		for t := 0; t <= k; t++ {
			in := make(map[aig.NodeID]bool)
			for _, id := range n.Inputs {
				if u.Built(id, t) {
					in[id] = u.ModelBit(aig.MkLit(id, false), t)
				}
			}
			w.Inputs = append(w.Inputs, in)
		}
		return w, nil
	case sat.Unknown:
		return nil, fmt.Errorf("ltl: timeout at bound %d", k)
	}
	return nil, nil
}

// loopCondition encodes "the successor of state k equals state l" — and,
// when memories exist, "no write fires anywhere on the path", so that the
// memory contents provably repeat around the loop.
func (e *encoder) loopCondition(l int) sat.Lit {
	u := e.u
	cond := u.TrueLit()
	for _, latch := range u.N.Latches {
		nextAtK := u.Lit(latch.Next, e.k)
		atL := u.Lit(aig.MkLit(latch.Node, false), l)
		// eq := nextAtK ≡ atL
		a := u.MkAndAux(nextAtK, atL, e.tag)
		b := u.MkAndAux(nextAtK.Not(), atL.Not(), e.tag)
		cond = u.MkAndAux(cond, u.MkOrAux(a, b, e.tag), e.tag)
	}
	if len(u.N.Memories) > 0 {
		for t := l; t <= e.k; t++ {
			cond = u.MkAndAux(cond, u.WriteActivity(t).Not(), e.tag)
		}
	}
	return cond
}

// succ is the successor frame under loop l.
func (e *encoder) succ(i, l int) int {
	if i < e.k {
		return i + 1
	}
	return l
}

// enc builds the CNF literal of formula f at frame i under loop l (-1 for
// the no-loop translation). f must be in NNF.
func (e *encoder) enc(f *Formula, i, l int) sat.Lit {
	key := encKey{f: f, i: i, loop: l}
	if v, ok := e.memo[key]; ok {
		return v
	}
	u := e.u
	var out sat.Lit
	switch f.Op {
	case OpAtom:
		out = u.Lit(e.bind[f.Atom], i)
	case OpNot:
		out = u.Lit(e.bind[f.L.Atom], i).Not()
	case OpAnd:
		out = u.MkAndAux(e.enc(f.L, i, l), e.enc(f.R, i, l), e.tag)
	case OpOr:
		out = u.MkOrAux(e.enc(f.L, i, l), e.enc(f.R, i, l), e.tag)
	case OpX:
		if l < 0 && i >= e.k {
			out = u.FalseLit()
		} else {
			out = e.enc(f.L, e.succ(i, l), l)
		}
	case OpF:
		out = u.FalseLit()
		for _, j := range e.positions(i, l) {
			out = u.MkOrAux(out, e.enc(f.L, j, l), e.tag)
		}
	case OpG:
		if l < 0 {
			out = u.FalseLit() // G needs an infinite path
		} else {
			out = u.TrueLit()
			for _, j := range e.positions(i, l) {
				out = u.MkAndAux(out, e.enc(f.L, j, l), e.tag)
			}
		}
	case OpU:
		out = e.encUntil(f, i, l)
	case OpR:
		out = e.encRelease(f, i, l)
	default:
		panic("ltl: non-NNF formula in encoder")
	}
	e.memo[key] = out
	return out
}

// positions lists the frames visited from i onward: {i..k} plus, on a
// lasso, the loop section {l..k}.
func (e *encoder) positions(i, l int) []int {
	from := i
	if l >= 0 && l < from {
		from = l
	}
	out := make([]int, 0, e.k-from+1)
	for j := from; j <= e.k; j++ {
		out = append(out, j)
	}
	return out
}

// encUntil: f U g — g eventually holds, with f holding at every earlier
// visited position (Biere et al.'s bounded translation).
func (e *encoder) encUntil(f *Formula, i, l int) sat.Lit {
	u := e.u
	out := u.FalseLit()
	// Straight section: g at j ∈ [i..k], f on [i..j).
	prefix := u.TrueLit()
	for j := i; j <= e.k; j++ {
		hit := u.MkAndAux(prefix, e.enc(f.R, j, l), e.tag)
		out = u.MkOrAux(out, hit, e.tag)
		prefix = u.MkAndAux(prefix, e.enc(f.L, j, l), e.tag)
	}
	if l >= 0 {
		// Wrap-around: g at j ∈ [l..i), f on [i..k] and on [l..j).
		fTail := prefix // f on all of [i..k]
		wrapPrefix := u.TrueLit()
		for j := l; j < i; j++ {
			hit := u.MkAndAux(u.MkAndAux(fTail, wrapPrefix, e.tag), e.enc(f.R, j, l), e.tag)
			out = u.MkOrAux(out, hit, e.tag)
			wrapPrefix = u.MkAndAux(wrapPrefix, e.enc(f.L, j, l), e.tag)
		}
	}
	return out
}

// encRelease: f R g — g holds up to and including the point where f
// holds, or forever.
func (e *encoder) encRelease(f *Formula, i, l int) sat.Lit {
	u := e.u
	out := u.FalseLit()
	// g forever (all visited positions) — only meaningful on a lasso.
	if l >= 0 {
		all := u.TrueLit()
		for _, j := range e.positions(i, l) {
			all = u.MkAndAux(all, e.enc(f.R, j, l), e.tag)
		}
		out = all
	}
	// Straight section: f at j ∈ [i..k] with g on [i..j].
	gPrefix := u.TrueLit()
	for j := i; j <= e.k; j++ {
		gPrefix = u.MkAndAux(gPrefix, e.enc(f.R, j, l), e.tag)
		hit := u.MkAndAux(gPrefix, e.enc(f.L, j, l), e.tag)
		out = u.MkOrAux(out, hit, e.tag)
	}
	if l >= 0 {
		// Wrap-around: f at j ∈ [l..i) with g on [i..k] and [l..j].
		gTail := gPrefix // g on all of [i..k]
		gWrap := u.TrueLit()
		for j := l; j < i; j++ {
			gWrap = u.MkAndAux(gWrap, e.enc(f.R, j, l), e.tag)
			hit := u.MkAndAux(u.MkAndAux(gTail, gWrap, e.tag), e.enc(f.L, j, l), e.tag)
			out = u.MkOrAux(out, hit, e.tag)
		}
	}
	return out
}
