package exp

import (
	"testing"

	"emmver/internal/bmc"
	"emmver/internal/sat"
)

// The shared-read-agree property is valid, so both the inprocessing-off and
// inprocessing-on runs must refute every depth — and the on-run must have
// actually simplified between depths.
func TestGrowthSolveEquivalence(t *testing.T) {
	cfg := GrowthSolveConfig{AW: 4, DW: 4, MaxK: 6, NoOpt: true}

	cfg.Restart, cfg.NoSimplify = sat.RestartLuby, true
	off := GrowthSolve(cfg)
	cfg.Restart, cfg.NoSimplify = sat.RestartEMA, false
	on := GrowthSolve(cfg)

	for _, r := range []GrowthSolveResult{off, on} {
		if r.Kind != bmc.KindNoCE {
			t.Fatalf("expected NoCE on valid property, got %v (simplify=%v)", r.Kind, !r.Config.NoSimplify)
		}
		if len(r.Depths) != cfg.MaxK+1 {
			t.Fatalf("expected %d depth stats, got %d", cfg.MaxK+1, len(r.Depths))
		}
	}
	if off.Stats.Simplifies != 0 {
		t.Fatalf("off-run ran %d simplify passes", off.Stats.Simplifies)
	}
	if on.Stats.Simplifies == 0 {
		t.Fatalf("on-run never simplified")
	}
	t.Log(RenderGrowthSolveAB(off, on))
}
