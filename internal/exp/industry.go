package exp

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"emmver/internal/aig"
	"emmver/internal/bdd"
	"emmver/internal/bmc"
	"emmver/internal/designs"
	"emmver/internal/par"
)

// I1Result captures the Industry I (image filter) narrative: how many of
// the reachability properties have witnesses, how deep the deepest witness
// is, how many are proved by induction, and the totals for EMM vs Explicit
// Modeling.
type I1Result struct {
	Props        int
	EMMWitnesses int
	EMMProofs    int
	EMMOther     int
	EMMMaxDepth  int
	EMMSec       float64
	EMMMB        float64

	ExplWitnesses int
	ExplProofs    int
	ExplOther     int
	ExplSec       float64
	ExplMB        float64
	ExplTO        bool
}

// filterConfig picks the design parameters for the scale.
func (c Config) filterConfig() designs.ImageFilterConfig {
	if c.Scale == ScalePaper {
		return designs.DefaultImageFilter()
	}
	return designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 16}
}

// Industry1 reproduces the Industry I case study.
func Industry1(cfg Config) *I1Result {
	fcfg := cfg.filterConfig()
	res := &I1Result{Props: fcfg.NumProps}
	f := designs.NewImageFilter(fcfg)

	// Two phases, as in the paper: hunt witnesses with plain (EMM) BMC
	// first, then prove the leftovers by induction — this avoids paying
	// per-property induction checks at every depth for properties that
	// are about to produce witnesses anyway. Both phases fan out over the
	// worker pool: the witness hunt runs per-property engines, and the
	// induction follow-ups are independent bmc.Check runs.
	runBoth := func(n *aig.Netlist, useEMM bool) (wit, proofs, other, maxDepth int, sec, mb float64, timedOut bool) {
		t0 := time.Now()
		props := f.PropIndices()
		mr := bmc.CheckManyParallel(n, props, cfg.apply(bmc.Options{
			MaxDepth: 3*fcfg.LineWidth + 10,
			UseEMM:   useEMM,
			Timeout:  cfg.Timeout,
			Obs:      cfg.Obs,
		}), cfg.Jobs)
		mb = mr.Stats.PeakHeapMB
		var leftovers []int
		for pi, r := range mr.Results {
			switch r.Kind {
			case bmc.KindCE:
				wit++
				if r.Depth > maxDepth {
					maxDepth = r.Depth
				}
			case bmc.KindTimeout:
				other++
				timedOut = true
			default:
				// No witness within the bound: try induction.
				leftovers = append(leftovers, props[pi])
			}
		}
		kinds := make([]bmc.Kind, len(leftovers))
		par.ForEach(context.Background(), cfg.Jobs, len(leftovers), func(_ context.Context, _, li int) {
			pr := bmc.Check(n, leftovers[li], cfg.apply(bmc.Options{
				MaxDepth: 10, UseEMM: useEMM, Proofs: true, Timeout: cfg.Timeout, Obs: cfg.Obs,
			}))
			kinds[li] = pr.Kind
		})
		for _, k := range kinds {
			if k == bmc.KindProof {
				proofs++
			} else {
				other++
				if k == bmc.KindTimeout {
					timedOut = true
				}
			}
		}
		sec = time.Since(t0).Seconds()
		return
	}

	cfg.logf("industry1: EMM over %d properties ...", fcfg.NumProps)
	res.EMMWitnesses, res.EMMProofs, res.EMMOther, res.EMMMaxDepth, res.EMMSec, res.EMMMB, _ =
		runBoth(f.Netlist(), true)

	cfg.logf("industry1: Explicit over %d properties ...", fcfg.NumProps)
	exp := mustExpand(f.Netlist())
	res.ExplWitnesses, res.ExplProofs, res.ExplOther, _, res.ExplSec, res.ExplMB, res.ExplTO =
		runBoth(exp, false)
	return res
}

// RenderIndustry1 prints the narrative comparison.
func RenderIndustry1(r *I1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Industry I (low-pass image filter, %d reachability properties)\n", r.Props)
	fmt.Fprintf(&b, "| Engine | Witnesses | Max depth | Induction proofs | Unresolved | sec | MB |\n")
	fmt.Fprintf(&b, "|--------|-----------|-----------|------------------|------------|-----|----|\n")
	fmt.Fprintf(&b, "| EMM | %d | %d | %d | %d | %s | %s |\n",
		r.EMMWitnesses, r.EMMMaxDepth, r.EMMProofs, r.EMMOther,
		fmtDur(durOf(r.EMMSec), false), fmtMB(r.EMMMB, false))
	fmt.Fprintf(&b, "| Explicit | %d | - | %d | %d | %s | %s |\n",
		r.ExplWitnesses, r.ExplProofs, r.ExplOther,
		fmtDur(durOf(r.ExplSec), false), fmtMB(r.ExplMB, false))
	return b.String()
}

// I2Result captures the Industry II (lookup engine) narrative.
type I2Result struct {
	// SpuriousDepth is the depth of the spurious witness when the memory
	// is fully abstracted (paper: 7).
	SpuriousDepth int
	// EMMNoCEDepth is how deep EMM searched without finding a witness
	// (paper: 200), and EMMNoCESec its cost.
	EMMNoCEDepth int
	EMMNoCESec   float64
	// Invariant proof (backward induction; paper: depth 2, <1s via EMM,
	// 78s explicit).
	InvDepth   int
	InvSec     float64
	InvExplSec float64
	InvExplTO  bool
	// RD=0 abstraction: all reachability properties proved.
	RDZeroProofs int
	RDZeroSec    float64
	// BDD engine on the explicit model (paper: could not build the
	// transition relation).
	BDDBlewUp bool
}

// lookupConfig picks the design parameters for the scale.
func (c Config) lookupConfig() designs.LookupConfig {
	if c.Scale == ScalePaper {
		return designs.DefaultLookup()
	}
	return designs.LookupConfig{AW: 4, DW: 6, NumProps: 8, Latency: 6}
}

// Industry2 reproduces the Industry II case study flow.
func Industry2(cfg Config) *I2Result {
	lcfg := cfg.lookupConfig()
	res := &I2Result{}

	// (a) Full memory abstraction: spurious witnesses at shallow depth.
	cfg.logf("industry2: full-abstraction spurious CE ...")
	l := designs.NewLookup(lcfg)
	r := bmc.Check(l.Netlist(), l.ReachIndices[0], cfg.apply(bmc.Options{MaxDepth: 20, Timeout: cfg.Timeout, Obs: cfg.Obs}))
	if r.Kind == bmc.KindCE {
		res.SpuriousDepth = r.Depth
	}

	// (b) EMM: no witnesses up to a deep bound. The per-property searches
	// are independent; a found witness cancels the rest of the sweep.
	depth := 200
	if cfg.Scale == ScaleReduced {
		depth = 50
	}
	cfg.logf("industry2: EMM search to depth %d ...", depth)
	t0 := time.Now()
	var foundCE atomic.Bool
	sweepCtx, cancelSweep := context.WithCancel(context.Background())
	par.ForEach(sweepCtx, cfg.Jobs, len(l.ReachIndices), func(ctx context.Context, _, i int) {
		rr := bmc.CheckCtx(ctx, l.Netlist(), l.ReachIndices[i], cfg.apply(bmc.Options{
			MaxDepth: depth, UseEMM: true, Timeout: cfg.Timeout, Obs: cfg.Obs,
		}))
		if rr.Kind == bmc.KindCE {
			foundCE.Store(true)
			cancelSweep()
		}
	})
	cancelSweep()
	if foundCE.Load() {
		res.EMMNoCEDepth = -1
	} else {
		res.EMMNoCEDepth = depth
	}
	res.EMMNoCESec = time.Since(t0).Seconds()

	// (c) The invariant G(WE=0 ∨ WD=0) by backward induction.
	cfg.logf("industry2: invariant proof ...")
	// Passes pinned off: the pipeline's constant sweep proves the dead
	// privilege chain constant and discharges the invariant at depth 0,
	// but the number this experiment replicates is the 2-induction depth
	// on the unreduced design.
	ir := bmc.Check(l.Netlist(), l.InvariantIndex, cfg.apply(bmc.Options{
		MaxDepth: 20, UseEMM: true, Proofs: true, Timeout: cfg.Timeout, Obs: cfg.Obs,
		Passes: "none",
	}))
	if ir.Kind == bmc.KindProof {
		res.InvDepth = ir.Depth
		res.InvSec = ir.Stats.Elapsed.Seconds()
	}
	exp := mustExpand(l.Netlist())
	ier := bmc.Check(exp, l.InvariantIndex, cfg.apply(bmc.Options{MaxDepth: 20, Proofs: true, Timeout: cfg.Timeout, Obs: cfg.Obs}))
	res.InvExplSec = ier.Stats.Elapsed.Seconds()
	res.InvExplTO = ier.Kind == bmc.KindTimeout

	// (d) RD=0 abstraction + PBA: prove every reachability property. The
	// per-property PBA pipelines are independent runs over the shared
	// read-only constrained netlist.
	cfg.logf("industry2: RD=0 abstraction proofs ...")
	constrained := l.WithRDZeroConstraint()
	t0 = time.Now()
	var rdProofs atomic.Int64
	par.ForEach(context.Background(), cfg.Jobs, len(l.ReachIndices), func(_ context.Context, _, i int) {
		pr := bmc.ProveWithPBA(constrained, l.ReachIndices[i], cfg.apply(bmc.Options{
			MaxDepth: 30, StabilityDepth: 5, Timeout: cfg.Timeout, Obs: cfg.Obs,
		}))
		if pr.Kind() == bmc.KindProof {
			rdProofs.Add(1)
		}
	})
	res.RDZeroProofs = int(rdProofs.Load())
	res.RDZeroSec = time.Since(t0).Seconds()

	// (e) The BDD model checker on the explicit model.
	cfg.logf("industry2: BDD engine on explicit model ...")
	budget := 200000
	mc, err := bdd.CheckSafety(exp, l.ReachIndices[0], budget)
	res.BDDBlewUp = err == nil && mc.Kind == bdd.MCBlowup
	return res
}

// RenderIndustry2 prints the narrative.
func RenderIndustry2(r *I2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Industry II (multi-port lookup engine, 1W+3R memory)\n")
	fmt.Fprintf(&b, "- full memory abstraction: spurious witness at depth %d\n", r.SpuriousDepth)
	fmt.Fprintf(&b, "- EMM: no witness for any property up to depth %d (%s)\n",
		r.EMMNoCEDepth, fmtDur(durOf(r.EMMNoCESec), false))
	fmt.Fprintf(&b, "- invariant G(WE=0 ∨ WD=0): backward induction depth %d in %s (explicit: %s)\n",
		r.InvDepth, fmtDur(durOf(r.InvSec), false), fmtDur(durOf(r.InvExplSec), r.InvExplTO))
	fmt.Fprintf(&b, "- RD=0 abstraction + PBA: %d/8 properties proved in %s\n",
		r.RDZeroProofs, fmtDur(durOf(r.RDZeroSec), false))
	fmt.Fprintf(&b, "- BDD model checker on the explicit model: blowup=%v\n", r.BDDBlewUp)
	return b.String()
}
