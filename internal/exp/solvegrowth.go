package exp

import (
	"fmt"
	"strings"
	"time"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/rtl"
	"emmver/internal/sat"
)

// GrowthSolveConfig selects the solve-based variant of the growth
// experiment: the same shared-address memory shape as GrowthConfig, but the
// formula is actually handed to the solver with a valid property, so the
// run measures search effort (conflicts, wall-clock) rather than formula
// size. NoOpt disables strash and comparator memoization — the
// configuration where depth-local auxiliary gates pile up and between-depth
// inprocessing has the most to reclaim.
type GrowthSolveConfig struct {
	AW, DW     int
	MaxK       int
	NoOpt      bool
	Restart    sat.RestartMode
	NoSimplify bool
	Timeout    time.Duration
}

// DefaultGrowthSolve is the §S2 configuration: the shared-address shape at
// reduced widths, checked to depth 24.
func DefaultGrowthSolve() GrowthSolveConfig {
	return GrowthSolveConfig{AW: 8, DW: 16, MaxK: 24, NoOpt: true}
}

// GrowthSolveResult aggregates one BMC-2 run of the solve-based growth
// experiment.
type GrowthSolveResult struct {
	Config    GrowthSolveConfig
	Kind      bmc.Kind
	Conflicts int64
	Elapsed   time.Duration
	Stats     bmc.Stats
	Depths    []bmc.DepthStat
}

// GrowthSolve builds the shared-address design — one write port and two
// read ports all driven by a single address bus — and BMC-2-checks the
// read-consistency property "re0 ∧ re1 → rd0 == rd1" up to cfg.MaxK. The
// property is valid (both ports observe the same address, so EMM forces
// equal data), which makes every depth an UNSAT instance: the solver must
// refute the whole unrolling each time, so conflicts and wall-clock track
// solver quality rather than luck in witness search.
func GrowthSolve(cfg GrowthSolveConfig) GrowthSolveResult {
	m := rtl.NewModule("growth-solve")
	mem := m.Memory("mem", cfg.AW, cfg.DW, aig.MemArbitrary)
	addr := m.Input("a", cfg.AW)
	mem.Write(addr, m.Input("wd", cfg.DW), m.InputBit("we"))
	re0 := m.InputBit("re0")
	re1 := m.InputBit("re1")
	rd0 := mem.Read(addr, re0)
	rd1 := mem.Read(addr, re1)
	both := m.N.And(re0, re1)
	ok := m.N.And(both, m.Eq(rd0, rd1).Not()).Not()
	m.AssertAlways("shared-read-agree", ok)
	m.Done()

	opt := bmc.BMC2(cfg.MaxK).
		WithRestart(cfg.Restart).
		WithSimplify(!cfg.NoSimplify).
		WithTimeout(cfg.Timeout)
	opt.DisableStrash = cfg.NoOpt
	opt.DisableEMMMemo = cfg.NoOpt
	opt.CollectDepthStats = true

	t0 := time.Now()
	r := bmc.Check(m.N, 0, opt)
	return GrowthSolveResult{
		Config:    cfg,
		Kind:      r.Kind,
		Conflicts: r.Stats.Conflicts,
		Elapsed:   time.Since(t0),
		Stats:     r.Stats,
		Depths:    r.DepthStats,
	}
}

// RenderGrowthSolveAB prints the §S2 before/after table: per-depth
// conflicts and wall-clock with inprocessing off (a) and on (b).
func RenderGrowthSolveAB(off, on GrowthSolveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "solve-based growth (shared-address, NoOpt=%v, AW=%d DW=%d): inprocessing off vs on\n",
		off.Config.NoOpt, off.Config.AW, off.Config.DW)
	fmt.Fprintf(&b, "| k | conflicts (off) | conflicts (on) | time (off) | time (on) |\n")
	fmt.Fprintf(&b, "|---|-----------------|----------------|------------|----------|\n")
	for i := range off.Depths {
		if i >= len(on.Depths) {
			break
		}
		fmt.Fprintf(&b, "| %d | %d | %d | %s | %s |\n",
			off.Depths[i].Depth, off.Depths[i].Conflicts, on.Depths[i].Conflicts,
			off.Depths[i].Elapsed.Round(time.Millisecond),
			on.Depths[i].Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "total: %d vs %d conflicts, %s vs %s\n",
		off.Conflicts, on.Conflicts,
		off.Elapsed.Round(time.Millisecond), on.Elapsed.Round(time.Millisecond))
	return b.String()
}
