package exp

import (
	"fmt"
	"strings"
	"time"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/pass"
	"emmver/internal/rtl"
	"emmver/internal/sat"
)

// GrowthSolveConfig selects the solve-based variant of the growth
// experiment: the same shared-address memory shape as GrowthConfig, but the
// formula is actually handed to the solver with a valid property, so the
// run measures search effort (conflicts, wall-clock) rather than formula
// size. NoOpt disables strash and comparator memoization — the
// configuration where depth-local auxiliary gates pile up and between-depth
// inprocessing has the most to reclaim.
type GrowthSolveConfig struct {
	AW, DW     int
	MaxK       int
	NoOpt      bool
	Restart    sat.RestartMode
	NoSimplify bool
	Timeout    time.Duration
	// Decoys salts the design with reduction food for the static compile
	// pipeline: a Decoys-bit free-running counter outside the property
	// cone (COI food), an inductively constant flag gating an extra write
	// port on the live memory (sweep + ports food), a dead read port on
	// the live memory (ports food), and a whole decoy memory nobody reads
	// (COI food). All of it is semantically inert — the shared-read
	// property stays valid — so passes-off and passes-on runs check the
	// same theorem over differently sized formulas. 0 keeps the clean
	// §S2 shape.
	Decoys int
	// Passes is the compile-pipeline spec for the run ("" = default
	// pipeline, pass.SpecNone = off).
	Passes string
	// Jobs, Cube and Share select the cooperative fleet: Jobs > 1 with
	// Cube splits the search over EMM address comparators across that many
	// workers, and Share turns on the learnt-clause bus between them. The
	// §S4 A/B holds Jobs and Cube fixed and toggles Share.
	Jobs  int
	Cube  bool
	Share bool
	// Lazy switches the CE query to demand-driven read-over-write axiom
	// instantiation (bmc.Options.LazyEMM). The §S7 A/B holds everything
	// else fixed and toggles this.
	Lazy bool
}

// DefaultGrowthSolve is the §S2 configuration: the shared-address shape at
// reduced widths, checked to depth 24.
func DefaultGrowthSolve() GrowthSolveConfig {
	return GrowthSolveConfig{AW: 8, DW: 16, MaxK: 24, NoOpt: true}
}

// GrowthSolveResult aggregates one BMC-2 run of the solve-based growth
// experiment.
type GrowthSolveResult struct {
	Config    GrowthSolveConfig
	Kind      bmc.Kind
	Conflicts int64
	Elapsed   time.Duration
	Stats     bmc.Stats
	Depths    []bmc.DepthStat
}

// GrowthSolve builds the shared-address design — one write port and two
// read ports all driven by a single address bus — and BMC-2-checks the
// read-consistency property "re0 ∧ re1 → rd0 == rd1" up to cfg.MaxK. The
// property is valid (both ports observe the same address, so EMM forces
// equal data), which makes every depth an UNSAT instance: the solver must
// refute the whole unrolling each time, so conflicts and wall-clock track
// solver quality rather than luck in witness search.
func GrowthSolve(cfg GrowthSolveConfig) GrowthSolveResult {
	n := GrowthSolveNetlist(cfg)

	opt := bmc.BMC2(cfg.MaxK).
		WithRestart(cfg.Restart).
		WithSimplify(!cfg.NoSimplify).
		WithTimeout(cfg.Timeout)
	opt.DisableStrash = cfg.NoOpt
	opt.DisableEMMMemo = cfg.NoOpt
	opt.CollectDepthStats = true
	opt.Passes = cfg.Passes
	opt.LazyEMM = cfg.Lazy
	if cfg.Jobs > 1 {
		opt = opt.WithJobs(cfg.Jobs).WithCube(cfg.Cube).WithShare(cfg.Share)
	}

	t0 := time.Now()
	r := bmc.Check(n, 0, opt)
	return GrowthSolveResult{
		Config:    cfg,
		Kind:      r.Kind,
		Conflicts: r.Stats.Conflicts,
		Elapsed:   time.Since(t0),
		Stats:     r.Stats,
		Depths:    r.DepthStats,
	}
}

// GrowthSolveNetlist builds the shared-address design, salted with
// cfg.Decoys worth of pipeline-removable structure when requested.
func GrowthSolveNetlist(cfg GrowthSolveConfig) *aig.Netlist {
	m := rtl.NewModule("growth-solve")
	mem := m.Memory("mem", cfg.AW, cfg.DW, aig.MemArbitrary)
	addr := m.Input("a", cfg.AW)
	mem.Write(addr, m.Input("wd", cfg.DW), m.InputBit("we"))
	re0 := m.InputBit("re0")
	re1 := m.InputBit("re1")
	rd0 := mem.Read(addr, re0)
	rd1 := mem.Read(addr, re1)

	var regs []*rtl.Reg
	if cfg.Decoys > 0 {
		junk := m.Register("junk", cfg.Decoys, 0)
		junk.SetNext(m.Inc(junk.Q))
		flag := m.BitReg("flag0", false)
		flag.SetNext(rtl.Vec{flag.Bit()}) // holds 0: inductively constant
		// Extra write on the live memory, gated by the constant flag:
		// sweep folds the enable to false, ports then drops the port.
		mem.Write(m.Input("da", cfg.AW), m.Input("dd", cfg.DW), flag.Bit())
		// Dead read on the live memory: its data drives nothing.
		mem.Read(m.Input("dra", cfg.AW), m.InputBit("dre"))
		// A whole memory outside the cone.
		decoy := m.Memory("decoy", cfg.AW, cfg.DW, aig.MemArbitrary)
		decoy.Write(m.Input("xa", cfg.AW), m.Input("xd", cfg.DW), m.InputBit("xwe"))
		decoy.Read(m.Input("xra", cfg.AW), m.InputBit("xre"))
		regs = append(regs, junk, flag)
	}

	both := m.N.And(re0, re1)
	ok := m.N.And(both, m.Eq(rd0, rd1).Not()).Not()
	m.AssertAlways("shared-read-agree", ok)
	m.Done(regs...)
	return m.N
}

// CompileABResult is the §S3 artifact: the decoy-salted growth design
// verified to MaxK with the static compile pipeline off and on, plus the
// pipeline's static size deltas.
type CompileABResult struct {
	Off, On       GrowthSolveResult
	Before, After pass.Counts
	Applied       []string
}

// DefaultCompileAB is the §S3 configuration: the §S2 solve shape plus
// 16 bits of decoy state and the decoy memory/ports.
func DefaultCompileAB() GrowthSolveConfig {
	cfg := DefaultGrowthSolve()
	cfg.Decoys = 16
	return cfg
}

// CompileAB runs the compile-pipeline A/B experiment: one passes-off and
// one default-pipeline verification of the decoy-salted shared-address
// design, with the static reduction measured separately.
func CompileAB(cfg GrowthSolveConfig) (CompileABResult, error) {
	var res CompileABResult
	n := GrowthSolveNetlist(cfg)
	c, err := pass.Compile(n, []int{0}, pass.Options{})
	if err != nil {
		return res, err
	}
	res.Before, res.After = pass.CountsOf(n), pass.CountsOf(c.N)
	res.Applied = c.Applied

	off := cfg
	off.Passes = pass.SpecNone
	res.Off = GrowthSolve(off)
	on := cfg
	on.Passes = "" // default pipeline
	res.On = GrowthSolve(on)
	return res, nil
}

// RenderCompileAB prints the §S3 before/after table: static netlist sizes
// and cumulative depth-MaxK CNF clauses / conflicts / wall-clock with the
// pipeline off and on.
func RenderCompileAB(r CompileABResult) string {
	var b strings.Builder
	cfg := r.Off.Config
	fmt.Fprintf(&b, "compile pipeline A/B (shared-address + decoys, AW=%d DW=%d decoys=%d, depth %d, passes=[%s])\n",
		cfg.AW, cfg.DW, cfg.Decoys, cfg.MaxK, strings.Join(r.Applied, ","))
	fmt.Fprintf(&b, "| metric | passes off | passes on |\n")
	fmt.Fprintf(&b, "|--------|-----------:|----------:|\n")
	fmt.Fprintf(&b, "| nodes | %d | %d |\n", r.Before.Nodes, r.After.Nodes)
	fmt.Fprintf(&b, "| latches | %d | %d |\n", r.Before.Latches, r.After.Latches)
	fmt.Fprintf(&b, "| memories | %d | %d |\n", r.Before.Mems, r.After.Mems)
	fmt.Fprintf(&b, "| memory ports | %d | %d |\n", r.Before.MemPorts, r.After.MemPorts)
	fmt.Fprintf(&b, "| CNF clauses @ depth %d | %d | %d |\n", cfg.MaxK, r.Off.Stats.Clauses, r.On.Stats.Clauses)
	fmt.Fprintf(&b, "| conflicts | %d | %d |\n", r.Off.Conflicts, r.On.Conflicts)
	fmt.Fprintf(&b, "| wall-clock | %s | %s |\n",
		r.Off.Elapsed.Round(time.Millisecond), r.On.Elapsed.Round(time.Millisecond))
	if r.Off.Stats.Clauses > 0 {
		fmt.Fprintf(&b, "clause reduction: %.1f%% (verdict %s vs %s, both must agree)\n",
			100*(1-float64(r.On.Stats.Clauses)/float64(r.Off.Stats.Clauses)),
			r.Off.Kind, r.On.Kind)
	}
	return b.String()
}

// RenderGrowthSolveAB prints the §S2 before/after table: per-depth
// conflicts and wall-clock with inprocessing off (a) and on (b).
func RenderGrowthSolveAB(off, on GrowthSolveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "solve-based growth (shared-address, NoOpt=%v, AW=%d DW=%d): inprocessing off vs on\n",
		off.Config.NoOpt, off.Config.AW, off.Config.DW)
	fmt.Fprintf(&b, "| k | conflicts (off) | conflicts (on) | time (off) | time (on) |\n")
	fmt.Fprintf(&b, "|---|-----------------|----------------|------------|----------|\n")
	for i := range off.Depths {
		if i >= len(on.Depths) {
			break
		}
		fmt.Fprintf(&b, "| %d | %d | %d | %s | %s |\n",
			off.Depths[i].Depth, off.Depths[i].Conflicts, on.Depths[i].Conflicts,
			off.Depths[i].Elapsed.Round(time.Millisecond),
			on.Depths[i].Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "total: %d vs %d conflicts, %s vs %s\n",
		off.Conflicts, on.Conflicts,
		off.Elapsed.Round(time.Millisecond), on.Elapsed.Round(time.Millisecond))
	return b.String()
}
