package exp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"emmver/internal/bmc"
	"emmver/internal/designs"
	"emmver/internal/par"
)

// T2Row is one row of Table 2: quicksort P2 through proof-based
// abstraction, EMM vs Explicit Modeling.
type T2Row struct {
	N int

	EMMKeptFF int
	EMMOrigFF int
	EMMPBASec float64
	EMMSec    float64
	EMMMB     float64
	EMMTO     bool
	EMMArray  bool // whether the array memory survived abstraction
	EMMKind   bmc.Kind

	ExplKeptFF int
	ExplOrigFF int
	ExplPBASec float64
	ExplSec    float64
	ExplMB     float64
	ExplTO     bool
	ExplKind   bmc.Kind
}

// Table2 reproduces Table 2: prove P2 with PBA, on the EMM model (BMC-3)
// and on the Explicit model (BMC-1), reporting the reduced model sizes,
// abstraction time, and proof time/memory. The paper's stability depth of
// 10 is used.
func Table2(cfg Config, sizes []int) []T2Row {
	cfg.Log = par.SyncWriter(cfg.Log)
	// Each array size is an independent pair of PBA runs: one worker per
	// row, row order preserved.
	rows := make([]T2Row, len(sizes))
	par.ForEach(context.Background(), cfg.Jobs, len(sizes), func(_ context.Context, _, si int) {
		n := sizes[si]
		qcfg := cfg.quickSortConfig(n)
		row := T2Row{N: n}

		cfg.logf("table2: N=%d EMM+PBA ...", n)
		q := designs.NewQuickSort(qcfg)
		opt := cfg.apply(bmc.Options{MaxDepth: 400, UseEMM: true, StabilityDepth: 10, Timeout: cfg.Timeout, Obs: cfg.Obs})
		res := bmc.ProveWithPBA(q.Netlist(), q.P2Index, opt)
		row.EMMOrigFF = len(q.Netlist().Latches)
		row.EMMPBASec = res.AbstractionTime.Seconds()
		row.EMMKind = res.Kind()
		if res.Abs != nil {
			row.EMMKeptFF = res.Abs.KeptLatches
			row.EMMArray = res.Abs.MemEnabled[0]
		}
		if res.Proof != nil {
			row.EMMSec = res.Proof.Stats.Elapsed.Seconds()
			row.EMMMB = res.Proof.Stats.PeakHeapMB
			row.EMMTO = res.Proof.Kind == bmc.KindTimeout
		} else {
			row.EMMTO = res.Phase1.Kind == bmc.KindTimeout
		}

		cfg.logf("table2: N=%d Explicit+PBA ...", n)
		exp := mustExpand(q.Netlist())
		eopt := cfg.apply(bmc.Options{MaxDepth: 400, StabilityDepth: 10, Timeout: cfg.Timeout, Obs: cfg.Obs})
		eres := bmc.ProveWithPBA(exp, q.P2Index, eopt)
		row.ExplOrigFF = len(exp.Latches)
		row.ExplPBASec = eres.AbstractionTime.Seconds()
		row.ExplKind = eres.Kind()
		if eres.Abs != nil {
			row.ExplKeptFF = eres.Abs.KeptLatches
		}
		if eres.Proof != nil {
			row.ExplSec = eres.Proof.Stats.Elapsed.Seconds()
			row.ExplMB = eres.Proof.Stats.PeakHeapMB
			row.ExplTO = eres.Proof.Kind == bmc.KindTimeout
		} else {
			row.ExplTO = eres.Phase1.Kind == bmc.KindTimeout
		}

		rows[si] = row
	})
	return rows
}

// RenderTable2 prints the rows like the paper's Table 2.
func RenderTable2(rows []T2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Performance summary on Quick Sort on P2 (PBA, stability depth 10)\n")
	fmt.Fprintf(&b, "| N | EMM FF (orig) | EMM PBA sec | EMM proof sec | EMM MB | array kept | Expl FF (orig) | Expl PBA sec | Expl proof sec | Expl MB |\n")
	fmt.Fprintf(&b, "|---|---------------|-------------|---------------|--------|------------|----------------|--------------|----------------|---------|\n")
	for _, r := range rows {
		eff := fmt.Sprintf("%d (%d)", r.EMMKeptFF, r.EMMOrigFF)
		xff := fmt.Sprintf("%d (%d)", r.ExplKeptFF, r.ExplOrigFF)
		if r.ExplTO && r.ExplKeptFF == 0 {
			xff = fmt.Sprintf("- (%d)", r.ExplOrigFF)
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %v | %s | %s | %s | %s |\n",
			r.N, eff,
			fmtDur(time.Duration(r.EMMPBASec*float64(time.Second)), false),
			fmtDur(durOf(r.EMMSec), r.EMMTO), fmtMB(r.EMMMB, r.EMMTO),
			r.EMMArray, xff,
			fmtDur(durOf(r.ExplPBASec), r.ExplTO && r.ExplKeptFF == 0),
			fmtDur(durOf(r.ExplSec), r.ExplTO), fmtMB(r.ExplMB, r.ExplTO))
	}
	return b.String()
}
