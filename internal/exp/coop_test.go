package exp

import (
	"strings"
	"testing"

	"emmver/internal/bmc"
)

// A tiny ShareAB must agree with the sequential verdict on both sides and
// fill in the medians; the property is valid, so everything is NO_CE.
func TestShareABSmoke(t *testing.T) {
	cfg := GrowthSolveConfig{AW: 4, DW: 4, MaxK: 6, NoOpt: true, Jobs: 2, Cube: true}
	r, err := ShareAB(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Off[0].Kind != bmc.KindNoCE || r.On[0].Kind != bmc.KindNoCE {
		t.Fatalf("verdicts: off=%v on=%v, want NO_CE", r.Off[0].Kind, r.On[0].Kind)
	}
	if r.OffMedian <= 0 || r.OnMedian <= 0 || r.Speedup <= 0 {
		t.Fatalf("medians not filled in: off=%v on=%v speedup=%v", r.OffMedian, r.OnMedian, r.Speedup)
	}
	out := RenderShareAB(r)
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "NO_CE") {
		t.Fatalf("render missing fields:\n%s", out)
	}
}
