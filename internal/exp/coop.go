package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ShareABResult is the §S4 artifact: the shared-address growth design
// verified to MaxK by the cube-and-conquer fleet with the learnt-clause bus
// off and on, several runs per side, compared by median wall-clock. Both
// sides run the identical cube fleet — the only difference is Share — so
// the speedup isolates what lemma exchange buys, not what partitioning
// buys.
type ShareABResult struct {
	Config GrowthSolveConfig
	Runs   int
	// Off and On hold the per-run results, in run order.
	Off, On []GrowthSolveResult
	// OffMedian and OnMedian are the median wall-clock times per side.
	OffMedian, OnMedian time.Duration
	// Speedup is OffMedian / OnMedian.
	Speedup float64
}

// DefaultShareAB is the §S4 configuration: the §S2 shared-address solve
// shape at depth 24, split over 8 cube workers.
func DefaultShareAB() GrowthSolveConfig {
	cfg := DefaultGrowthSolve()
	cfg.Jobs = 8
	cfg.Cube = true
	return cfg
}

// ShareAB runs the cooperative-solving A/B experiment: runs verifications
// of cfg with the sharing bus off, runs with it on, everything else
// identical. It fails if any run's verdict disagrees with the others —
// sharing and cubing must never change what is proved.
func ShareAB(cfg GrowthSolveConfig, runs int) (ShareABResult, error) {
	if runs < 1 {
		runs = 1
	}
	res := ShareABResult{Config: cfg, Runs: runs}
	off := cfg
	off.Share = false
	on := cfg
	on.Share = true
	for i := 0; i < runs; i++ {
		res.Off = append(res.Off, GrowthSolve(off))
		res.On = append(res.On, GrowthSolve(on))
	}
	want := res.Off[0].Kind
	for i := 0; i < runs; i++ {
		if res.Off[i].Kind != want || res.On[i].Kind != want {
			return res, fmt.Errorf("exp: share A/B verdicts diverge: run %d off=%s on=%s want=%s",
				i, res.Off[i].Kind, res.On[i].Kind, want)
		}
	}
	res.OffMedian = medianElapsed(res.Off)
	res.OnMedian = medianElapsed(res.On)
	if res.OnMedian > 0 {
		res.Speedup = float64(res.OffMedian) / float64(res.OnMedian)
	}
	return res, nil
}

func medianElapsed(rs []GrowthSolveResult) time.Duration {
	ds := make([]time.Duration, len(rs))
	for i, r := range rs {
		ds[i] = r.Elapsed
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// RenderShareAB prints the §S4 table: per-run wall-clock and conflicts for
// both sides, the bus traffic of the sharing runs, and the median speedup.
func RenderShareAB(r ShareABResult) string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "cooperative solving A/B (shared-address, AW=%d DW=%d, depth %d, %d cube workers, %d runs/side)\n",
		cfg.AW, cfg.DW, cfg.MaxK, cfg.Jobs, r.Runs)
	fmt.Fprintf(&b, "| run | time (share off) | time (share on) | conflicts (off) | conflicts (on) | imported (on) |\n")
	fmt.Fprintf(&b, "|-----|-----------------:|----------------:|----------------:|---------------:|--------------:|\n")
	for i := 0; i < r.Runs; i++ {
		fmt.Fprintf(&b, "| %d | %s | %s | %d | %d | %d |\n", i+1,
			r.Off[i].Elapsed.Round(time.Millisecond), r.On[i].Elapsed.Round(time.Millisecond),
			r.Off[i].Conflicts, r.On[i].Conflicts, r.On[i].Stats.SharedImported)
	}
	fmt.Fprintf(&b, "median: %s off vs %s on — %.2fx speedup (verdict %s on every run)\n",
		r.OffMedian.Round(time.Millisecond), r.OnMedian.Round(time.Millisecond),
		r.Speedup, r.Off[0].Kind)
	return b.String()
}
