package exp

import (
	"strings"
	"testing"
	"time"

	"emmver/internal/bmc"
)

func TestTable1Reduced(t *testing.T) {
	cfg := DefaultConfig(60 * time.Second)
	rows := Table1(cfg, []int{3})
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.EMMKind != bmc.KindProof {
			t.Fatalf("N=%d %s: EMM must prove, got %v", r.N, r.Prop, r.EMMKind)
		}
		if r.D <= 0 {
			t.Fatalf("proof diameter missing")
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "| 3 | P1 |") {
		t.Fatalf("render wrong:\n%s", out)
	}
}

func TestTable2Reduced(t *testing.T) {
	cfg := DefaultConfig(60 * time.Second)
	rows := Table2(cfg, []int{3})
	if len(rows) != 1 {
		t.Fatalf("expected 1 row")
	}
	r := rows[0]
	if r.EMMKind != bmc.KindProof {
		t.Fatalf("EMM+PBA must prove P2, got %v", r.EMMKind)
	}
	if r.EMMArray {
		t.Fatalf("array memory must be abstracted away for P2")
	}
	if r.EMMKeptFF == 0 || r.EMMKeptFF >= r.EMMOrigFF {
		t.Fatalf("no latch reduction: %d (%d)", r.EMMKeptFF, r.EMMOrigFF)
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "Table 2") {
		t.Fatalf("render wrong:\n%s", out)
	}
}

func TestIndustry1Reduced(t *testing.T) {
	cfg := DefaultConfig(120 * time.Second)
	r := Industry1(cfg)
	if r.EMMWitnesses == 0 || r.EMMProofs == 0 {
		t.Fatalf("expected both witnesses and proofs: %+v", r)
	}
	if r.EMMOther != 0 {
		t.Fatalf("EMM left %d properties unresolved", r.EMMOther)
	}
	if r.EMMWitnesses+r.EMMProofs != r.Props {
		t.Fatalf("property accounting wrong")
	}
	// The reachable/unreachable split must match the filter's bound:
	// for DW=4 the bound is 11, so 12 witnesses and 4 proofs of 16.
	if r.EMMWitnesses != 12 || r.EMMProofs != 4 {
		t.Fatalf("split %d/%d, want 12/4", r.EMMWitnesses, r.EMMProofs)
	}
	if RenderIndustry1(r) == "" {
		t.Fatalf("empty render")
	}
}

func TestIndustry2Reduced(t *testing.T) {
	cfg := DefaultConfig(120 * time.Second)
	r := Industry2(cfg)
	if r.SpuriousDepth != 7 {
		t.Fatalf("spurious depth %d, want 7", r.SpuriousDepth)
	}
	if r.EMMNoCEDepth != 50 {
		t.Fatalf("EMM search depth %d, want 50 (no CE)", r.EMMNoCEDepth)
	}
	if r.InvDepth != 2 {
		t.Fatalf("invariant induction depth %d, want 2", r.InvDepth)
	}
	if r.RDZeroProofs != 8 {
		t.Fatalf("RD=0 proofs %d, want 8", r.RDZeroProofs)
	}
	if !r.BDDBlewUp {
		t.Fatalf("BDD engine should blow up on the explicit model")
	}
	if RenderIndustry2(r) == "" {
		t.Fatalf("empty render")
	}
}

func TestGrowthMatchesClosedForms(t *testing.T) {
	for _, gc := range []GrowthConfig{
		{AW: 10, DW: 32, Writes: 1, Reads: 1, MaxK: 40, Step: 10},
		{AW: 12, DW: 32, Writes: 1, Reads: 3, MaxK: 20, Step: 5},
		{AW: 6, DW: 8, Writes: 2, Reads: 2, MaxK: 20, Step: 5},
	} {
		pts := Growth(gc)
		for _, p := range pts {
			if !p.Match {
				t.Fatalf("cfg %+v depth %d: measured %d/%d vs predicted %d/%d",
					gc, p.Depth, p.Clauses, p.Gates, p.PredClauses, p.PredGates)
			}
		}
		// Quadratic growth: the last point must dominate a linear
		// extrapolation of the first nonzero one.
		if len(pts) >= 3 {
			p1, pl := pts[1], pts[len(pts)-1]
			ratio := float64(pl.Clauses) / float64(p1.Clauses)
			depthRatio := float64(pl.Depth) / float64(p1.Depth)
			if ratio < depthRatio*1.5 {
				t.Fatalf("growth not superlinear: %v", pts)
			}
		}
		if RenderGrowth(pts) == "" {
			t.Fatalf("empty render")
		}
	}
}

func TestScaleAndConfigHelpers(t *testing.T) {
	if ScalePaper.String() != "paper" || ScaleReduced.String() != "reduced" {
		t.Fatalf("scale names wrong")
	}
	c := Config{Scale: ScalePaper}
	if c.quickSortConfig(4).ArrayAW != 10 {
		t.Fatalf("paper scale must use AW=10")
	}
	if c.filterConfig().NumProps != 216 {
		t.Fatalf("paper scale must use 216 properties")
	}
	if c.lookupConfig().AW != 12 {
		t.Fatalf("paper scale must use AW=12")
	}
	rc := Config{Scale: ScaleReduced}
	if rc.quickSortConfig(3).ArrayAW >= 10 {
		t.Fatalf("reduced scale must shrink AW")
	}
}
