package exp

import (
	"fmt"
	"strings"
	"time"
)

// LazyABResult is the §S7 artifact: the shared-address growth design
// verified to MaxK with eager and demand-driven EMM instantiation, several
// runs per side, compared by median wall-clock and by the EMM clause count
// each side actually emitted. The property is valid (every depth UNSAT),
// which is the lazy encoding's best case AND its riskiest: UNSAT of the
// relaxation must already be UNSAT of the full semantics, so the verdict
// cross-check below is the soundness regression, not a formality.
type LazyABResult struct {
	Config GrowthSolveConfig
	Runs   int
	// Off (eager) and On (lazy) hold the per-run results, in run order.
	Off, On []GrowthSolveResult
	// OffMedian and OnMedian are the median wall-clock times per side.
	OffMedian, OnMedian time.Duration
	// Speedup is OffMedian / OnMedian.
	Speedup float64
	// OffEMM and OnEMM are the cumulative EMM clause counts (read-data +
	// address-comparator + init) of one run per side; the encodings are
	// deterministic per side, so one run is representative.
	OffEMM, OnEMM int
	// Reduction is the fraction of eager EMM clauses the lazy run avoided.
	Reduction float64
	// Rounds, Spurious, Axioms summarize the lazy side's refinement work:
	// oracle validations, rejected models, and instantiated axiom levels.
	Rounds, Spurious int64
	Axioms           int
}

// DefaultLazyAB is the §S7 configuration: the §S2 shared-address solve
// shape at depth 24, eager vs lazy.
func DefaultLazyAB() GrowthSolveConfig {
	return DefaultGrowthSolve()
}

// LazyAB runs the lazy-EMM A/B experiment: runs verifications of cfg with
// eager instantiation, runs with demand-driven instantiation, everything
// else identical. It fails if any run's verdict disagrees with the others
// — laziness must never change what is proved.
func LazyAB(cfg GrowthSolveConfig, runs int) (LazyABResult, error) {
	if runs < 1 {
		runs = 1
	}
	res := LazyABResult{Config: cfg, Runs: runs}
	off := cfg
	off.Lazy = false
	on := cfg
	on.Lazy = true
	for i := 0; i < runs; i++ {
		res.Off = append(res.Off, GrowthSolve(off))
		res.On = append(res.On, GrowthSolve(on))
	}
	want := res.Off[0].Kind
	for i := 0; i < runs; i++ {
		if res.Off[i].Kind != want || res.On[i].Kind != want {
			return res, fmt.Errorf("exp: lazy A/B verdicts diverge: run %d eager=%s lazy=%s want=%s",
				i, res.Off[i].Kind, res.On[i].Kind, want)
		}
	}
	res.OffMedian = medianElapsed(res.Off)
	res.OnMedian = medianElapsed(res.On)
	if res.OnMedian > 0 {
		res.Speedup = float64(res.OffMedian) / float64(res.OnMedian)
	}
	res.OffEMM = res.Off[0].Stats.EMM.Clauses() + res.Off[0].Stats.EMM.InitClauses
	res.OnEMM = res.On[0].Stats.EMM.Clauses() + res.On[0].Stats.EMM.InitClauses
	if res.OffEMM > 0 {
		res.Reduction = 1 - float64(res.OnEMM)/float64(res.OffEMM)
	}
	res.Rounds = res.On[0].Stats.LazyRounds
	res.Spurious = res.On[0].Stats.LazySpurious
	res.Axioms = res.On[0].Stats.EMM.LazyAxioms
	return res, nil
}

// RenderLazyAB prints the §S7 table: per-run wall-clock and conflicts for
// both sides, the EMM clause counts, and the refinement-loop effort.
func RenderLazyAB(r LazyABResult) string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "lazy EMM A/B (shared-address, AW=%d DW=%d, depth %d, %d runs/side)\n",
		cfg.AW, cfg.DW, cfg.MaxK, r.Runs)
	fmt.Fprintf(&b, "| run | time (eager) | time (lazy) | conflicts (eager) | conflicts (lazy) |\n")
	fmt.Fprintf(&b, "|-----|-------------:|------------:|------------------:|-----------------:|\n")
	for i := 0; i < r.Runs; i++ {
		fmt.Fprintf(&b, "| %d | %s | %s | %d | %d |\n", i+1,
			r.Off[i].Elapsed.Round(time.Millisecond), r.On[i].Elapsed.Round(time.Millisecond),
			r.Off[i].Conflicts, r.On[i].Conflicts)
	}
	fmt.Fprintf(&b, "EMM clauses: %d eager vs %d lazy — %.1f%% avoided (%d axiom levels over %d rounds, %d spurious)\n",
		r.OffEMM, r.OnEMM, 100*r.Reduction, r.Axioms, r.Rounds, r.Spurious)
	fmt.Fprintf(&b, "median: %s eager vs %s lazy — %.2fx speedup (verdict %s on every run)\n",
		r.OffMedian.Round(time.Millisecond), r.OnMedian.Round(time.Millisecond),
		r.Speedup, r.Off[0].Kind)
	return b.String()
}
