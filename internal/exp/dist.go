package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"emmver/internal/bmc"
	"emmver/internal/sharenet"
)

// DistABResult is the §S5 artifact: the shared-address growth design
// verified to MaxK by a cross-process-shaped fleet — independent worker
// engines joined only by a broker on a real unix socket — with the clause
// uplink off and on, plus a one-process sequential reference. All three
// sides check the same theorem, so every verdict must agree; the Off/On
// medians isolate what cross-process lemma exchange buys on top of cube
// brokering alone.
type DistABResult struct {
	Config  GrowthSolveConfig
	Workers int
	Runs    int
	// Seq is the one-process reference; Off and On are the fleet runs
	// without and with clause sharing, in run order.
	Seq, Off, On []GrowthSolveResult
	// Medians of the per-side wall-clock times.
	SeqMedian, OffMedian, OnMedian time.Duration
	// Speedup is OffMedian / OnMedian — the sharing gain at fixed fleet.
	Speedup float64
}

// DefaultDistAB is the §S5 configuration: the §S2 shared-address solve
// shape at depth 24, the same workload the in-process §S4 A/B uses.
func DefaultDistAB() GrowthSolveConfig {
	return DefaultGrowthSolve()
}

// DistAB runs the distributed-solving A/B experiment: runs sequential
// references, runs socket fleets with sharing off, runs with sharing on.
// It fails if any run's verdict diverges — brokering and the clause uplink
// must never change what is proved.
func DistAB(cfg GrowthSolveConfig, workers, runs int) (DistABResult, error) {
	if workers < 2 {
		workers = 2
	}
	if runs < 1 {
		runs = 1
	}
	res := DistABResult{Config: cfg, Workers: workers, Runs: runs}
	seq := cfg
	seq.Jobs, seq.Cube, seq.Share = 0, false, false
	for i := 0; i < runs; i++ {
		res.Seq = append(res.Seq, GrowthSolve(seq))
		off, err := distGrowthRun(cfg, workers, false)
		if err != nil {
			return res, err
		}
		res.Off = append(res.Off, off)
		on, err := distGrowthRun(cfg, workers, true)
		if err != nil {
			return res, err
		}
		res.On = append(res.On, on)
	}
	want := res.Seq[0].Kind
	for i := 0; i < runs; i++ {
		if res.Seq[i].Kind != want || res.Off[i].Kind != want || res.On[i].Kind != want {
			return res, fmt.Errorf("exp: dist A/B verdicts diverge: run %d seq=%s off=%s on=%s",
				i, res.Seq[i].Kind, res.Off[i].Kind, res.On[i].Kind)
		}
	}
	res.SeqMedian = medianElapsed(res.Seq)
	res.OffMedian = medianElapsed(res.Off)
	res.OnMedian = medianElapsed(res.On)
	if res.OnMedian > 0 {
		res.Speedup = float64(res.OffMedian) / float64(res.OnMedian)
	}
	return res, nil
}

// distGrowthRun verifies the growth design once with a broker plus workers
// independent CheckDist engines over a unix socket, and aggregates the
// fleet into one GrowthSolveResult (stats summed, wall-clock of the whole
// fleet, the verdict every worker agreed on).
func distGrowthRun(cfg GrowthSolveConfig, workers int, share bool) (GrowthSolveResult, error) {
	out := GrowthSolveResult{Config: cfg}
	n := GrowthSolveNetlist(cfg)
	opt := bmc.BMC2(cfg.MaxK).
		WithRestart(cfg.Restart).
		WithSimplify(!cfg.NoSimplify).
		WithTimeout(cfg.Timeout).
		WithShare(share)
	opt.DisableStrash = cfg.NoOpt
	opt.DisableEMMMemo = cfg.NoOpt
	opt.Passes = cfg.Passes

	dir, err := os.MkdirTemp("", "emmdist")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "fleet.sock")
	br, err := sharenet.Listen("unix", sock, sharenet.BrokerOptions{Workers: workers})
	if err != nil {
		return out, err
	}
	defer br.Close()

	t0 := time.Now()
	results := make([]*bmc.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			maxDepth, proofs := bmc.DistWorkerHello(opt)
			cl, err := sharenet.Dial("unix", sock, sharenet.ClientOptions{MaxDepth: maxDepth, Proofs: proofs})
			if err != nil {
				errs[w] = err
				return
			}
			defer cl.Close()
			results[w], errs[w] = bmc.CheckDist(n, 0, opt, cl)
		}(w)
	}
	wg.Wait()
	out.Elapsed = time.Since(t0)
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return out, fmt.Errorf("exp: dist worker %d: %w", w, errs[w])
		}
		if results[w].Kind != results[0].Kind {
			return out, fmt.Errorf("exp: dist workers disagree: %s vs %s", results[0].Kind, results[w].Kind)
		}
		out.Stats.Add(results[w].Stats)
	}
	out.Kind = results[0].Kind
	out.Conflicts = out.Stats.Conflicts
	return out, nil
}

// RenderDistAB prints the §S5 table: per-run wall-clock for the sequential
// reference and both fleet sides, the sharing runs' import traffic, and the
// median sharing speedup.
func RenderDistAB(r DistABResult) string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "distributed solving A/B (shared-address, AW=%d DW=%d, depth %d, %d socket workers, %d runs/side)\n",
		cfg.AW, cfg.DW, cfg.MaxK, r.Workers, r.Runs)
	fmt.Fprintf(&b, "| run | time (1 process) | time (fleet, share off) | time (fleet, share on) | imported (on) |\n")
	fmt.Fprintf(&b, "|-----|-----------------:|------------------------:|-----------------------:|--------------:|\n")
	for i := 0; i < r.Runs; i++ {
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %d |\n", i+1,
			r.Seq[i].Elapsed.Round(time.Millisecond),
			r.Off[i].Elapsed.Round(time.Millisecond),
			r.On[i].Elapsed.Round(time.Millisecond),
			r.On[i].Stats.SharedImported)
	}
	fmt.Fprintf(&b, "median: %s sequential, %s fleet off, %s fleet on — %.2fx sharing speedup (verdict %s on every run)\n",
		r.SeqMedian.Round(time.Millisecond), r.OffMedian.Round(time.Millisecond),
		r.OnMedian.Round(time.Millisecond), r.Speedup, r.Seq[0].Kind)
	return b.String()
}
