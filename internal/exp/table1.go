package exp

import (
	"context"
	"fmt"
	"strings"

	"emmver/internal/bmc"
	"emmver/internal/designs"
	"emmver/internal/par"
)

// T1Row is one row of Table 1: quicksort forward-induction proofs, EMM
// (BMC-3) vs Explicit Modeling (BMC-1).
type T1Row struct {
	N        int
	Prop     string
	D        int // forward proof diameter (from the EMM run)
	EMMSec   float64
	EMMMB    float64
	EMMTO    bool
	ExplSec  float64
	ExplMB   float64
	ExplTO   bool
	EMMKind  bmc.Kind
	ExplKind bmc.Kind
}

// quickSortConfig picks the design parameters for the scale.
func (c Config) quickSortConfig(n int) designs.QuickSortConfig {
	if c.Scale == ScalePaper {
		return designs.DefaultQuickSort(n)
	}
	return designs.QuickSortConfig{N: n, ArrayAW: 3, DataW: 4, StackAW: 3}
}

// Table1 reproduces Table 1: for each array size N and property P1/P2,
// prove by forward induction with EMM (BMC-3) and with Explicit Modeling
// (BMC-1), reporting time and memory.
func Table1(cfg Config, sizes []int) []T1Row {
	cfg.Log = par.SyncWriter(cfg.Log)
	type task struct {
		n    int
		prop string
	}
	var tasks []task
	for _, n := range sizes {
		for _, prop := range []string{"P1", "P2"} {
			tasks = append(tasks, task{n, prop})
		}
	}
	// Each (N, property) pair is an independent verification run: fan the
	// flattened task list over the worker pool, keeping the row order of
	// the sequential driver.
	rows := make([]T1Row, len(tasks))
	par.ForEach(context.Background(), cfg.Jobs, len(tasks), func(_ context.Context, _, ti int) {
		n, prop := tasks[ti].n, tasks[ti].prop
		qcfg := cfg.quickSortConfig(n)
		q := designs.NewQuickSort(qcfg)
		pi := q.P1Index
		if prop == "P2" {
			pi = q.P2Index
		}
		row := T1Row{N: n, Prop: prop}

		cfg.logf("table1: N=%d %s EMM ...", n, prop)
		opt := cfg.apply(bmc.Options{MaxDepth: 400, UseEMM: true, Proofs: true, Timeout: cfg.Timeout, Obs: cfg.Obs})
		r := bmc.Check(q.Netlist(), pi, opt)
		row.EMMKind = r.Kind
		row.EMMSec = r.Stats.Elapsed.Seconds()
		row.EMMMB = r.Stats.PeakHeapMB
		row.EMMTO = r.Kind == bmc.KindTimeout
		if r.Kind == bmc.KindProof {
			row.D = r.Depth
		}

		cfg.logf("table1: N=%d %s Explicit ...", n, prop)
		exp := mustExpand(q.Netlist())
		re := bmc.Check(exp, pi, cfg.apply(bmc.Options{MaxDepth: 400, Proofs: true, Timeout: cfg.Timeout, Obs: cfg.Obs}))
		row.ExplKind = re.Kind
		row.ExplSec = re.Stats.Elapsed.Seconds()
		row.ExplMB = re.Stats.PeakHeapMB
		row.ExplTO = re.Kind == bmc.KindTimeout

		rows[ti] = row
	})
	return rows
}

// RenderTable1 prints the rows like the paper's Table 1.
func RenderTable1(rows []T1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Performance summary on Quick Sort\n")
	fmt.Fprintf(&b, "| N | Prop | D | EMM sec | EMM MB | Explicit sec | Explicit MB |\n")
	fmt.Fprintf(&b, "|---|------|---|---------|--------|--------------|-------------|\n")
	for _, r := range rows {
		d := fmt.Sprintf("%d", r.D)
		if r.EMMTO {
			d = "-"
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %s | %s |\n",
			r.N, r.Prop, d,
			fmtDur(durOf(r.EMMSec), r.EMMTO), fmtMB(r.EMMMB, r.EMMTO),
			fmtDur(durOf(r.ExplSec), r.ExplTO), fmtMB(r.ExplMB, r.ExplTO))
	}
	return b.String()
}
