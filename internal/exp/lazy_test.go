package exp

import (
	"strings"
	"testing"

	"emmver/internal/bmc"
)

// A tiny LazyAB must agree on the verdict and fill in the medians and the
// clause accounting; the property is valid, so everything is NO_CE and the
// lazy side answers from the relaxation alone.
func TestLazyABSmoke(t *testing.T) {
	cfg := GrowthSolveConfig{AW: 4, DW: 4, MaxK: 6, NoOpt: true}
	r, err := LazyAB(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Off[0].Kind != bmc.KindNoCE || r.On[0].Kind != bmc.KindNoCE {
		t.Fatalf("verdicts: eager=%v lazy=%v, want NO_CE", r.Off[0].Kind, r.On[0].Kind)
	}
	if r.OffMedian <= 0 || r.OnMedian <= 0 || r.OffEMM <= 0 {
		t.Fatalf("result not filled in: %+v", r)
	}
	if r.OnEMM > r.OffEMM {
		t.Fatalf("lazy emitted MORE EMM clauses: %d vs %d", r.OnEMM, r.OffEMM)
	}
	out := RenderLazyAB(r)
	if !strings.Contains(out, "avoided") || !strings.Contains(out, "NO_CE") {
		t.Fatalf("render missing fields:\n%s", out)
	}
}

// The §S7 acceptance bar on the full growth configuration: at depth 24 the
// demand-driven encoding must avoid at least 40% of the eager EMM clause
// set while reporting the identical verdict.
func TestLazyGrowthClauseReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-depth growth run")
	}
	r, err := LazyAB(DefaultLazyAB(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Off[0].Kind != bmc.KindNoCE {
		t.Fatalf("growth property must hold, got %v", r.Off[0].Kind)
	}
	if r.Reduction < 0.40 {
		t.Fatalf("lazy EMM clause reduction %.1f%% below the 40%% bar (%d eager vs %d lazy)",
			100*r.Reduction, r.OffEMM, r.OnEMM)
	}
}
