package exp

import "testing"

// TestGrowthSharedAddrReduction pins the PR's headline acceptance number:
// with one address bus feeding the write port and both read ports (the
// SharedAddr configuration), structural hashing plus comparator memoization
// must cut the CNF emitted at depth >= 20 by at least 25%. The savings are
// deterministic — every eq. 6 consistency comparator coincides with an
// already-built forwarding comparator, and the second read port's
// comparators and match gates coincide with the first's.
func TestGrowthSharedAddrReduction(t *testing.T) {
	cfg := GrowthConfig{AW: 10, DW: 32, Writes: 1, Reads: 2, MaxK: 24, Step: 24, SharedAddr: true}
	on := Growth(cfg)
	cfg.NoOpt = true
	off := Growth(cfg)
	a, b := on[len(on)-1], off[len(off)-1]
	if a.Depth < 20 {
		t.Fatalf("sample depth %d below the acceptance threshold of 20", a.Depth)
	}
	red := 1 - float64(a.CNFClauses)/float64(b.CNFClauses)
	t.Logf("depth %d: optimized %d clauses, unoptimized %d (%.1f%% reduction, %d memo hits, %d strash hits)",
		a.Depth, a.CNFClauses, b.CNFClauses, 100*red, a.MemoHits, a.StrashHits)
	if red < 0.25 {
		t.Fatalf("reduction %.1f%% below the required 25%%", 100*red)
	}
	if a.MemoHits == 0 || a.StrashHits == 0 {
		t.Fatalf("expected both caches to land hits (memo=%d strash=%d)", a.MemoHits, a.StrashHits)
	}
	// Without the shared bus every comparator pair is unique: the caches
	// must stay cold and the closed-form predictions must keep holding.
	base := Growth(GrowthConfig{AW: 6, DW: 8, Writes: 1, Reads: 1, MaxK: 10, Step: 5})
	for _, p := range base {
		if p.MemoHits != 0 {
			t.Fatalf("depth %d: unexpected memo hits %d on distinct-bus config", p.Depth, p.MemoHits)
		}
		if !p.Match {
			t.Fatalf("depth %d: closed-form mismatch on distinct-bus config", p.Depth)
		}
	}
}
