// Package exp regenerates the paper's evaluation artifacts: Table 1 and
// Table 2 (quicksort, EMM vs Explicit Modeling, with and without PBA), the
// Industry I and Industry II case-study narratives, and the
// constraint-growth validation of the §3/§4.1 closed forms. Each
// experiment returns structured rows and can render itself as a
// paper-style markdown table.
//
// Two scales are supported: ScalePaper uses the paper's exact design
// parameters (AW=10/DW=32 arrays, 216 properties, ...), where the explicit
// baseline times out just as it did for the authors; ScaleReduced shrinks
// widths so both engines finish in seconds and the crossover is
// measurable. EXPERIMENTS.md records results at both scales.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/expmem"
	"emmver/internal/obs"
	"emmver/internal/sat"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales.
const (
	// ScaleReduced shrinks memory widths so every engine terminates
	// quickly; used by the benchmark harness.
	ScaleReduced Scale = iota
	// ScalePaper uses the paper's exact parameters.
	ScalePaper
)

// String names the scale.
func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "reduced"
}

// Config parameterizes a harness run.
type Config struct {
	Scale Scale
	// Timeout bounds each individual verification run (the paper used 3
	// hours). Runs that exceed it are reported as ">TO", as in Table 1.
	Timeout time.Duration
	// Jobs bounds how many verification runs execute concurrently within
	// each experiment (<= 0 selects runtime.NumCPU). Note that concurrent
	// rows share the machine, so per-row times at Jobs > 1 measure
	// throughput, not isolated latency.
	Jobs int
	// Log receives progress lines (nil = quiet).
	Log io.Writer
	// Obs attaches the observability layer to every verification run an
	// experiment performs: solver/EMM/unroller metrics aggregate into its
	// registry and per-depth/solve spans flow to its trace sink, letting a
	// journal reconstruct e.g. Table 2 clause-growth curves. Nil is off.
	Obs *obs.Observer
	// Restart selects the solver restart strategy for every verification
	// run an experiment performs (zero value = solver default, EMA).
	Restart sat.RestartMode
	// NoSimplify disables between-depth inprocessing in every run.
	NoSimplify bool
	// Passes overrides the static compile-pipeline spec for every run:
	// "" keeps the default pipeline, "none" disables it. Sub-checks that
	// pin their own spec to replicate a paper number keep their pin.
	Passes string
	// Share and Cube turn on the cooperative fleet for every eligible
	// verification run an experiment performs (learnt-clause bus and
	// cube-and-conquer over EMM address comparators); ineligible runs —
	// PBA, environment constraints, single-worker — ignore them.
	Share bool
	Cube  bool
}

// apply copies the engine-wide knobs (restart strategy, inprocessing,
// compile-pipeline spec) onto opt. An opt that already pins Passes keeps
// its pin — Industry II's invariant check relies on that to replicate the
// unreduced 2-induction depth.
func (c Config) apply(opt bmc.Options) bmc.Options {
	opt.Restart = c.Restart
	opt.NoSimplify = c.NoSimplify
	if opt.Passes == "" {
		opt.Passes = c.Passes
	}
	if c.Share {
		opt.Share = true
	}
	if c.Cube {
		opt.Cube = true
	}
	return opt
}

// DefaultConfig returns a reduced-scale configuration with the given
// per-run timeout.
func DefaultConfig(timeout time.Duration) Config {
	return Config{Scale: ScaleReduced, Timeout: timeout}
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// fmtDur renders a duration like the paper's seconds column.
func fmtDur(d time.Duration, timedOut bool) string {
	if timedOut {
		return ">TO"
	}
	if d < time.Second {
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// fmtMB renders megabytes.
func fmtMB(mb float64, timedOut bool) string {
	if timedOut {
		return "NA"
	}
	return fmt.Sprintf("%.0f", mb)
}

// durOf converts seconds back to a duration for formatting.
func durOf(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// heapMB samples the current heap size.
func heapMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// mustExpand builds the Explicit Modeling baseline of a harness-generated
// design. The generators only emit netlists Expand accepts, so a failure
// here is a harness bug and panics rather than polluting every row type
// with an error column.
func mustExpand(n *aig.Netlist) *aig.Netlist {
	out, _, err := expmem.Expand(n)
	if err != nil {
		panic(fmt.Sprintf("exp: explicit baseline expansion failed: %v", err))
	}
	return out
}
