package exp

import (
	"fmt"
	"strings"

	"emmver/internal/aig"
	"emmver/internal/core"
	"emmver/internal/rtl"
	"emmver/internal/sat"
	"emmver/internal/unroll"
)

// GrowthPoint is one sample of the constraint-size curve.
type GrowthPoint struct {
	Depth        int
	Clauses      int // EMM clauses per the paper's accounting
	Gates        int
	PredClauses  int // closed-form prediction
	PredGates    int
	Match        bool
	ExplicitAnds int // gates of the equivalent explicit memory model
	CNFClauses   int // total CNF clauses emitted (unroller + EMM, incl. eq. 6)
	MemoHits     int // comparators answered from the memo cache
	StrashHits   int // AND gates answered from the strash cache
}

// GrowthConfig selects the memory shape swept by the growth experiment.
type GrowthConfig struct {
	AW, DW int
	Writes int
	Reads  int
	MaxK   int
	Step   int
	// SharedAddr drives every write AND read port from one shared address
	// bus (a common RTL shape: one AGU feeding all ports). The EMM
	// comparators then repeat across ports and depths — the configuration
	// where comparator memoization and strash pay off most.
	SharedAddr bool
	// NoOpt disables structural hashing and comparator memoization, for
	// before/after measurements.
	NoOpt bool
}

// DefaultGrowth matches the single-port configuration discussed in §3.
func DefaultGrowth() GrowthConfig {
	return GrowthConfig{AW: 10, DW: 32, Writes: 1, Reads: 1, MaxK: 60, Step: 10}
}

// Growth measures the EMM constraint counts against the paper's closed
// forms — ((4m+2n+1)kW + 2n+1)·R clauses and 3kWR gates per depth k — and
// reports the cumulative sizes by depth (the quadratic-growth
// "figure-equivalent"). The explicit-model gate count is included for
// comparison: constant per frame but enormous.
func Growth(cfg GrowthConfig) []GrowthPoint {
	build := func() (*rtl.Module, *unroll.Unroller, *core.Generator) {
		m := rtl.NewModule("growth")
		mem := m.Memory("mem", cfg.AW, cfg.DW, aig.MemArbitrary)
		var sharedAddr rtl.Vec
		if cfg.SharedAddr {
			sharedAddr = m.Input("a", cfg.AW)
		}
		addr := func(name string) rtl.Vec {
			if cfg.SharedAddr {
				return sharedAddr
			}
			return m.Input(name, cfg.AW)
		}
		for w := 0; w < cfg.Writes; w++ {
			mem.Write(addr("wa"), m.Input("wd", cfg.DW), m.InputBit("we"))
		}
		for r := 0; r < cfg.Reads; r++ {
			mem.Read(addr("ra"), m.InputBit("re"))
		}
		s := sat.New()
		u := unroll.New(m.N, s, unroll.Initialized)
		u.NoStrash = cfg.NoOpt
		g := core.NewGenerator(u, false)
		if cfg.NoOpt {
			g.DisableComparatorMemo()
		}
		return m, u, g
	}

	// Explicit-model cost: count AND gates of one expanded copy.
	m, _, _ := build()
	explicitAnds := explicitGateCount(m)

	var pts []GrowthPoint
	_, u, g := build()
	for k := 0; k <= cfg.MaxK; k += cfg.Step {
		g.AddUpTo(k)
		sz := g.Sizes()
		sumJ := 0
		for j := 0; j <= k; j++ {
			sumJ += j
		}
		predClauses := ((4*cfg.AW+2*cfg.DW+1)*sumJ*cfg.Writes + (2*cfg.DW+1)*(k+1)) * cfg.Reads
		predGates := 3 * sumJ * cfg.Writes * cfg.Reads
		pts = append(pts, GrowthPoint{
			Depth:        k,
			Clauses:      sz.Clauses(),
			Gates:        sz.Gates,
			PredClauses:  predClauses,
			PredGates:    predGates,
			Match:        sz.Clauses() == predClauses && sz.Gates == predGates,
			ExplicitAnds: explicitAnds,
			CNFClauses:   u.ClausesAdded,
			MemoHits:     sz.CompMemoHits,
			StrashHits:   u.StrashHits,
		})
	}
	return pts
}

func explicitGateCount(m *rtl.Module) int {
	// Avoid importing expmem (cycle-free but heavy at paper scale for
	// AW=10·DW=32: ~hundreds of thousands of gates). The dominant terms:
	// read mux 2·2^AW·DW, write decode/mux ≈ 2^AW·(AW+3·DW·W).
	var total int
	for _, mem := range m.N.Memories {
		words := mem.Words()
		total += words * (mem.AW + 2*mem.DW) // decoder + read or-and tree
		total += words * 3 * mem.DW * len(mem.Writes)
	}
	return total
}

// RenderGrowth prints the curve.
func RenderGrowth(pts []GrowthPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "EMM constraint growth (quadratic in depth) vs closed forms\n")
	fmt.Fprintf(&b, "| k | clauses | predicted | gates | predicted | match | explicit-model gates (const) |\n")
	fmt.Fprintf(&b, "|---|---------|-----------|-------|-----------|-------|------------------------------|\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %v | %d |\n",
			p.Depth, p.Clauses, p.PredClauses, p.Gates, p.PredGates, p.Match, p.ExplicitAnds)
	}
	return b.String()
}
