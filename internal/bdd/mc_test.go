package bdd

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/expmem"
	"emmver/internal/rtl"
)

func TestMCCounterReachability(t *testing.T) {
	// mod-5 counter: value 3 reachable at depth 3, value 6 never.
	build := func(target uint64) *rtl.Module {
		m := rtl.NewModule("mc")
		c := m.Register("cnt", 3, 0)
		wrap := m.EqConst(c.Q, 4)
		c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
		m.Done(c)
		m.AssertAlways("ne", m.EqConst(c.Q, target).Not())
		return m
	}
	r, err := CheckSafety(build(3).N, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != MCViolated || r.Depth != 3 {
		t.Fatalf("expected violation at depth 3, got %v", r)
	}
	r, err = CheckSafety(build(6).N, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != MCProved {
		t.Fatalf("expected proof, got %v", r)
	}
}

func TestMCInputsAndInitX(t *testing.T) {
	// A register loaded from an input: any value reachable at depth 1;
	// an InitX register: any value reachable at depth 0.
	m := rtl.NewModule("mc2")
	d := m.Input("d", 2)
	r1 := m.Register("r1", 2, 0)
	r1.SetNext(d)
	r2 := m.RegisterX("r2", 2)
	r2.SetNext(r2.Q)
	m.Done(r1, r2)
	m.AssertAlways("p1", m.EqConst(r1.Q, 3).Not())
	m.AssertAlways("p2", m.EqConst(r2.Q, 3).Not())
	res, err := CheckSafety(m.N, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != MCViolated || res.Depth != 1 {
		t.Fatalf("p1: want violation at 1, got %v", res)
	}
	res, err = CheckSafety(m.N, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != MCViolated || res.Depth != 0 {
		t.Fatalf("p2: want violation at 0, got %v", res)
	}
}

func TestMCConstraints(t *testing.T) {
	m := rtl.NewModule("mc3")
	x := m.InputBit("x")
	r := m.BitReg("r", false)
	r.UpdateBit(x, aig.True)
	m.Done(r)
	m.Assume(x.Not())
	m.AssertAlways("stays0", r.Bit().Not())
	res, err := CheckSafety(m.N, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != MCProved {
		t.Fatalf("constrained design must be proved, got %v", res)
	}
}

func TestMCRejectsMemories(t *testing.T) {
	m := rtl.NewModule("mc4")
	mem := m.Memory("mem", 2, 2, aig.MemZero)
	rd := mem.Read(m.Input("ra", 2), aig.True)
	m.AssertAlways("p", rd[0].Not())
	if _, err := CheckSafety(m.N, 0, 0); err == nil {
		t.Fatalf("netlists with memories must be rejected")
	}
}

func TestMCBlowupOnExplicitMemory(t *testing.T) {
	// The Industry II phenomenon: the explicit model's transition
	// relation exceeds any modest node budget.
	m := rtl.NewModule("mc5")
	mem := m.Memory("mem", 5, 8, aig.MemZero)
	mem.Write(m.Input("wa", 5), m.Input("wd", 8), m.InputBit("we"))
	rd := mem.Read(m.Input("ra", 5), aig.True)
	m.AssertAlways("p", m.IsZero(rd))
	exp, _, err := expmem.Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckSafety(exp, 0, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != MCBlowup {
		t.Fatalf("expected blowup, got %v", res)
	}
}

// TestMCAgreesWithBMC cross-checks the two engines on random small
// memory-free designs.
func TestMCAgreesWithBMC(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 15; iter++ {
		m := rtl.NewModule("fuzz")
		w := 2 + rng.Intn(2)
		c := m.Register("c", w, uint64(rng.Intn(2)))
		step := uint64(1 + rng.Intn(3))
		c.SetNext(m.Add(c.Q, m.Const(w, step)))
		m.Done(c)
		target := rng.Uint64() & (1<<uint(w) - 1)
		m.AssertAlways("p", m.EqConst(c.Q, target).Not())

		mc, err := CheckSafety(m.N, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		bm := bmc.Check(m.N, 0, bmc.BMC1(1<<uint(w)+2))
		switch {
		case mc.Kind == MCViolated && bm.Kind == bmc.KindCE:
			if mc.Depth != bm.Depth {
				t.Fatalf("iter %d: depth mismatch bdd=%d bmc=%d", iter, mc.Depth, bm.Depth)
			}
		case mc.Kind == MCProved && bm.Kind == bmc.KindProof:
		default:
			t.Fatalf("iter %d: verdict mismatch bdd=%v bmc=%v", iter, mc, bm)
		}
	}
}

func TestMCKindStrings(t *testing.T) {
	for _, k := range []MCKind{MCProved, MCViolated, MCBlowup} {
		if k.String() == "" {
			t.Fatalf("unnamed kind")
		}
	}
	r := &MCResult{Kind: MCProved}
	if r.String() == "" {
		t.Fatalf("empty result string")
	}
}
