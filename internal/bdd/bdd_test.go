package bdd

import (
	"math/rand"
	"testing"
)

func mustVar(t *testing.T, m *Manager, v int) Ref {
	t.Helper()
	r, err := m.Var(v)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTerminalsAndVar(t *testing.T) {
	m := NewManager(0)
	x := mustVar(t, m, 0)
	if m.Eval(x, map[int]bool{0: true}) != true {
		t.Fatalf("x under x=1 must be true")
	}
	if m.Eval(x, map[int]bool{0: false}) != false {
		t.Fatalf("x under x=0 must be false")
	}
	nx, _ := m.NVar(0)
	if m.Eval(nx, map[int]bool{0: true}) {
		t.Fatalf("¬x under x=1 must be false")
	}
}

func TestCanonicity(t *testing.T) {
	m := NewManager(0)
	x, y := mustVar(t, m, 0), mustVar(t, m, 1)
	a1, _ := m.And(x, y)
	a2, _ := m.And(y, x)
	if a1 != a2 {
		t.Fatalf("AND must be canonical")
	}
	o1, _ := m.Or(x, y)
	// x ∨ y == ¬(¬x ∧ ¬y)
	nx, _ := m.Not(x)
	ny, _ := m.Not(y)
	an, _ := m.And(nx, ny)
	o2, _ := m.Not(an)
	if o1 != o2 {
		t.Fatalf("De Morgan must yield identical nodes")
	}
}

func TestDoubleNegation(t *testing.T) {
	m := NewManager(0)
	x := mustVar(t, m, 3)
	nx, _ := m.Not(x)
	nnx, _ := m.Not(nx)
	if nnx != x {
		t.Fatalf("¬¬x must be x")
	}
}

// TestRandomExpressionsAgainstEval builds random expressions as BDDs and
// compares against direct evaluation under all assignments.
func TestRandomExpressionsAgainstEval(t *testing.T) {
	const nVars = 5
	rng := rand.New(rand.NewSource(11))
	type expr struct {
		bdd  Ref
		eval func(a map[int]bool) bool
	}
	m := NewManager(0)
	for iter := 0; iter < 60; iter++ {
		var pool []expr
		for v := 0; v < nVars; v++ {
			vv := v
			r := mustVar(t, m, v)
			pool = append(pool, expr{r, func(a map[int]bool) bool { return a[vv] }})
		}
		for step := 0; step < 12; step++ {
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			var r Ref
			var err error
			var f func(map[int]bool) bool
			switch rng.Intn(4) {
			case 0:
				r, err = m.And(a.bdd, b.bdd)
				f = func(as map[int]bool) bool { return a.eval(as) && b.eval(as) }
			case 1:
				r, err = m.Or(a.bdd, b.bdd)
				f = func(as map[int]bool) bool { return a.eval(as) || b.eval(as) }
			case 2:
				r, err = m.Xor(a.bdd, b.bdd)
				f = func(as map[int]bool) bool { return a.eval(as) != b.eval(as) }
			default:
				r, err = m.Not(a.bdd)
				f = func(as map[int]bool) bool { return !a.eval(as) }
			}
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, expr{r, f})
		}
		top := pool[len(pool)-1]
		for mask := 0; mask < 1<<nVars; mask++ {
			as := make(map[int]bool)
			for v := 0; v < nVars; v++ {
				as[v] = mask>>uint(v)&1 == 1
			}
			if m.Eval(top.bdd, as) != top.eval(as) {
				t.Fatalf("iter %d mask %b: disagreement", iter, mask)
			}
		}
	}
}

func TestExists(t *testing.T) {
	m := NewManager(0)
	x, y := mustVar(t, m, 0), mustVar(t, m, 1)
	f, _ := m.And(x, y)
	ex, err := m.Exists(f, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if ex != y {
		t.Fatalf("∃x. x∧y must be y")
	}
	nx, _ := m.Not(x)
	g, _ := m.And(x, nx) // False
	eg, _ := m.Exists(g, map[int]bool{0: true})
	if eg != False {
		t.Fatalf("∃x. false must be false")
	}
	xo, _ := m.Xor(x, y)
	exo, _ := m.Exists(xo, map[int]bool{0: true})
	if exo != True {
		t.Fatalf("∃x. x⊕y must be true")
	}
}

func TestReplace(t *testing.T) {
	m := NewManager(0)
	y := mustVar(t, m, 3)
	r, err := m.Replace(y, map[int]int{3: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := mustVar(t, m, 1)
	if r != want {
		t.Fatalf("replace wrong")
	}
}

func TestSatCount(t *testing.T) {
	m := NewManager(0)
	x, y := mustVar(t, m, 0), mustVar(t, m, 1)
	f, _ := m.Or(x, y)
	if got := m.SatCount(f, 2); got != 3 {
		t.Fatalf("satcount(x∨y)=%v want 3", got)
	}
	if got := m.SatCount(True, 3); got != 8 {
		t.Fatalf("satcount(true,3)=%v want 8", got)
	}
	if got := m.SatCount(False, 3); got != 0 {
		t.Fatalf("satcount(false)=%v want 0", got)
	}
}

func TestNodeLimit(t *testing.T) {
	m := NewManager(8)
	// Build a function needing more than 8 nodes.
	var f Ref = True
	var err error
	for v := 0; v < 10; v++ {
		var x Ref
		x, err = m.Var(2 * v)
		if err != nil {
			break
		}
		var y Ref
		y, err = m.Var(2*v + 1)
		if err != nil {
			break
		}
		var xy Ref
		xy, err = m.Xor(x, y)
		if err != nil {
			break
		}
		f, err = m.And(f, xy)
		if err != nil {
			break
		}
	}
	if err != ErrNodeLimit {
		t.Fatalf("expected ErrNodeLimit, got %v (nodes=%d)", err, m.NumNodes())
	}
	if m.String() == "" {
		t.Fatalf("empty manager string")
	}
}
