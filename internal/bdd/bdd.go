// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a unique table, an ITE computed-table, existential quantification
// and variable replacement, plus a BDD-based forward-reachability safety
// checker. It plays the role of the paper's "BDD-based model checker": the
// engine that works on small (abstracted) models but blows up on designs
// with real memories — the Industry II case study reports it "unable to
// build even the transition relation", which this package reproduces via a
// configurable node limit.
package bdd

import (
	"errors"
	"fmt"
)

// Ref is a BDD node reference. 0 and 1 are the terminals.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// ErrNodeLimit is returned when an operation would exceed the manager's
// node budget (the "BDD blowup" outcome).
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

const terminalLevel = int32(1 << 30)

type node struct {
	level  int32
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// Manager owns the node and operation tables.
type Manager struct {
	nodes    []node
	unique   map[node]Ref
	iteCache map[iteKey]Ref
	// MaxNodes bounds the node table (0 = unlimited).
	MaxNodes int
}

// NewManager creates a manager with the given node budget (0 = unlimited).
func NewManager(maxNodes int) *Manager {
	m := &Manager{
		unique:   make(map[node]Ref),
		iteCache: make(map[iteKey]Ref),
		MaxNodes: maxNodes,
	}
	// Terminals.
	m.nodes = append(m.nodes,
		node{level: terminalLevel},
		node{level: terminalLevel})
	return m
}

// NumNodes returns the number of allocated nodes (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }

func (m *Manager) mk(level int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		return lo, nil
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r, nil
	}
	if m.MaxNodes > 0 && len(m.nodes) >= m.MaxNodes {
		return False, ErrNodeLimit
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r, nil
}

// Var returns the BDD of variable v (levels are the variable order;
// smaller level = closer to the root).
func (m *Manager) Var(v int) (Ref, error) {
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD of ¬v.
func (m *Manager) NVar(v int) (Ref, error) {
	return m.mk(int32(v), True, False)
}

// Ite computes if-then-else(f, g, h).
func (m *Manager) Ite(f, g, h Ref) (Ref, error) {
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := iteKey{f, g, h}
	if r, ok := m.iteCache[key]; ok {
		return r, nil
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	fl, fh := m.cofactor(f, top)
	gl, gh := m.cofactor(g, top)
	hl, hh := m.cofactor(h, top)
	lo, err := m.Ite(fl, gl, hl)
	if err != nil {
		return False, err
	}
	hi, err := m.Ite(fh, gh, hh)
	if err != nil {
		return False, err
	}
	r, err := m.mk(top, lo, hi)
	if err != nil {
		return False, err
	}
	m.iteCache[key] = r
	return r, nil
}

func (m *Manager) cofactor(f Ref, level int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// Not computes ¬f.
func (m *Manager) Not(f Ref) (Ref, error) { return m.Ite(f, False, True) }

// And computes f ∧ g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.Ite(f, g, False) }

// Or computes f ∨ g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.Ite(f, True, g) }

// Xor computes f ⊕ g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.Ite(f, ng, g)
}

// Xnor computes f ≡ g.
func (m *Manager) Xnor(f, g Ref) (Ref, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.Ite(f, g, ng)
}

// Exists existentially quantifies the variables whose levels are in vars.
func (m *Manager) Exists(f Ref, vars map[int]bool) (Ref, error) {
	cache := make(map[Ref]Ref)
	var rec func(f Ref) (Ref, error)
	rec = func(f Ref) (Ref, error) {
		if f == True || f == False {
			return f, nil
		}
		if r, ok := cache[f]; ok {
			return r, nil
		}
		n := m.nodes[f]
		lo, err := rec(n.lo)
		if err != nil {
			return False, err
		}
		hi, err := rec(n.hi)
		if err != nil {
			return False, err
		}
		var r Ref
		if vars[int(n.level)] {
			r, err = m.Or(lo, hi)
		} else {
			r, err = m.mk(n.level, lo, hi)
		}
		if err != nil {
			return False, err
		}
		cache[f] = r
		return r, nil
	}
	return rec(f)
}

// Replace renames variables according to perm (level → level). The
// permutation must preserve the variable order on the support of f.
func (m *Manager) Replace(f Ref, perm map[int]int) (Ref, error) {
	cache := make(map[Ref]Ref)
	var rec func(f Ref) (Ref, error)
	rec = func(f Ref) (Ref, error) {
		if f == True || f == False {
			return f, nil
		}
		if r, ok := cache[f]; ok {
			return r, nil
		}
		n := m.nodes[f]
		lo, err := rec(n.lo)
		if err != nil {
			return False, err
		}
		hi, err := rec(n.hi)
		if err != nil {
			return False, err
		}
		lvl := int(n.level)
		if nl, ok := perm[lvl]; ok {
			lvl = nl
		}
		r, err := m.mk(int32(lvl), lo, hi)
		if err != nil {
			return False, err
		}
		cache[f] = r
		return r, nil
	}
	return rec(f)
}

// Eval evaluates f under a total assignment (level → value).
func (m *Manager) Eval(f Ref, assign map[int]bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[int(n.level)] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over nVars
// variables (levels 0..nVars-1).
func (m *Manager) SatCount(f Ref, nVars int) float64 {
	cache := make(map[Ref]float64)
	var rec func(f Ref, level int32) float64
	rec = func(f Ref, level int32) float64 {
		lvl := m.level(f)
		if f == False {
			return 0
		}
		if f == True {
			lvl = int32(nVars)
		}
		scale := float64(uint64(1) << uint(min64(int64(lvl)-int64(level), 62)))
		if f == True {
			return scale
		}
		v, ok := cache[f]
		if !ok {
			n := m.nodes[f]
			v = rec(n.lo, n.level+1) + rec(n.hi, n.level+1)
			cache[f] = v
		}
		return scale * v
	}
	return rec(f, 0)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// String renders a node count summary.
func (m *Manager) String() string {
	return fmt.Sprintf("bdd.Manager{%d nodes}", len(m.nodes))
}
