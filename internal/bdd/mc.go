package bdd

import (
	"errors"
	"fmt"

	"emmver/internal/aig"
)

// MCKind classifies a model-checking outcome.
type MCKind int

// Model checking outcomes.
const (
	// MCProved: the property holds in all reachable states.
	MCProved MCKind = iota
	// MCViolated: a reachable state violates the property.
	MCViolated
	// MCBlowup: the node budget was exceeded (transition relation or
	// image too large) — the failure mode the Industry II case study
	// reports for the BDD engine.
	MCBlowup
)

// String names the outcome.
func (k MCKind) String() string {
	switch k {
	case MCProved:
		return "PROVED"
	case MCViolated:
		return "VIOLATED"
	}
	return "BLOWUP"
}

// MCResult is the outcome of CheckSafety.
type MCResult struct {
	Kind MCKind
	// Depth is the BFS layer at which the violation was found, or the
	// number of image computations to the fixed point.
	Depth int
	// Nodes is the final BDD node count.
	Nodes int
}

// String renders the result.
func (r *MCResult) String() string {
	return fmt.Sprintf("%s depth=%d nodes=%d", r.Kind, r.Depth, r.Nodes)
}

// CheckSafety runs BDD-based forward reachability on a memory-free netlist
// for one property. maxNodes bounds the node table (0 = unlimited); when
// exceeded the result kind is MCBlowup.
func CheckSafety(n *aig.Netlist, prop int, maxNodes int) (*MCResult, error) {
	if len(n.Memories) > 0 {
		return nil, errors.New("bdd: netlist has memory modules; expand them first (expmem)")
	}
	m := NewManager(maxNodes)
	L := len(n.Latches)

	// Variable order: cur_i ↔ 2i, next_i ↔ 2i+1, inputs after.
	curVar := func(i int) int { return 2 * i }
	nextVar := func(i int) int { return 2*i + 1 }
	inputVar := make(map[aig.NodeID]int)
	for j, id := range n.Inputs {
		inputVar[id] = 2*L + j
	}
	latchVar := make(map[aig.NodeID]int)
	for i, l := range n.Latches {
		latchVar[l.Node] = curVar(i)
	}

	blowup := func(err error, depth int) (*MCResult, error) {
		if errors.Is(err, ErrNodeLimit) {
			return &MCResult{Kind: MCBlowup, Depth: depth, Nodes: m.NumNodes()}, nil
		}
		return nil, err
	}

	// Build combinational cones over current-state and input variables.
	memo := make(map[aig.NodeID]Ref)
	var cone func(l aig.Lit) (Ref, error)
	cone = func(l aig.Lit) (Ref, error) {
		id := l.Node()
		r, ok := memo[id]
		if !ok {
			node := n.NodeAt(id)
			var err error
			switch node.Kind {
			case aig.KConst:
				r = False
			case aig.KInput:
				r, err = m.Var(inputVar[id])
			case aig.KLatch:
				r, err = m.Var(latchVar[id])
			case aig.KAnd:
				var a, b Ref
				a, err = cone(node.F0)
				if err == nil {
					b, err = cone(node.F1)
					if err == nil {
						r, err = m.And(a, b)
					}
				}
			default:
				return False, fmt.Errorf("bdd: unsupported node kind %v", node.Kind)
			}
			if err != nil {
				return False, err
			}
			memo[id] = r
		}
		if l.Inverted() {
			return m.Not(r)
		}
		return r, nil
	}

	// Environment constraints (assumed each cycle).
	constr := True
	for _, c := range n.Constraints {
		cb, err := cone(c)
		if err != nil {
			return blowup(err, 0)
		}
		constr, err = m.And(constr, cb)
		if err != nil {
			return blowup(err, 0)
		}
	}

	// Transition relation T = constr ∧ ∧_i (next_i ≡ f_i).
	t := constr
	for i, l := range n.Latches {
		f, err := cone(l.Next)
		if err != nil {
			return blowup(err, 0)
		}
		nv, err := m.Var(nextVar(i))
		if err != nil {
			return blowup(err, 0)
		}
		eq, err := m.Xnor(nv, f)
		if err != nil {
			return blowup(err, 0)
		}
		t, err = m.And(t, eq)
		if err != nil {
			return blowup(err, 0)
		}
	}

	// Bad states: ∃inputs (¬OK ∧ constr).
	okB, err := cone(n.Props[prop].OK)
	if err != nil {
		return blowup(err, 0)
	}
	nok, err := m.Not(okB)
	if err != nil {
		return blowup(err, 0)
	}
	nok, err = m.And(nok, constr)
	if err != nil {
		return blowup(err, 0)
	}
	inputSet := make(map[int]bool)
	for _, v := range inputVar {
		inputSet[v] = true
	}
	bad, err := m.Exists(nok, inputSet)
	if err != nil {
		return blowup(err, 0)
	}

	// Initial states.
	init := True
	for i, l := range n.Latches {
		var lit Ref
		switch l.Init {
		case aig.Init0:
			lit, err = m.NVar(curVar(i))
		case aig.Init1:
			lit, err = m.Var(curVar(i))
		default:
			continue
		}
		if err != nil {
			return blowup(err, 0)
		}
		init, err = m.And(init, lit)
		if err != nil {
			return blowup(err, 0)
		}
	}

	// Quantification set for image: current-state and input variables.
	exSet := make(map[int]bool)
	for i := 0; i < L; i++ {
		exSet[curVar(i)] = true
	}
	for v := range inputSet {
		exSet[v] = true
	}
	perm := make(map[int]int)
	for i := 0; i < L; i++ {
		perm[nextVar(i)] = curVar(i)
	}

	reach := init
	for depth := 0; ; depth++ {
		hit, err := m.And(reach, bad)
		if err != nil {
			return blowup(err, depth)
		}
		if hit != False {
			return &MCResult{Kind: MCViolated, Depth: depth, Nodes: m.NumNodes()}, nil
		}
		step, err := m.And(reach, t)
		if err != nil {
			return blowup(err, depth)
		}
		img, err := m.Exists(step, exSet)
		if err != nil {
			return blowup(err, depth)
		}
		img, err = m.Replace(img, perm)
		if err != nil {
			return blowup(err, depth)
		}
		next, err := m.Or(reach, img)
		if err != nil {
			return blowup(err, depth)
		}
		if next == reach {
			return &MCResult{Kind: MCProved, Depth: depth, Nodes: m.NumNodes()}, nil
		}
		reach = next
	}
}
