package pba

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
	"emmver/internal/unroll"
)

func tag(k unroll.TagKind, frame, idx int) int64 {
	return int64(unroll.MkTag(k, frame, idx))
}

func TestLatchesInCore(t *testing.T) {
	core := []int64{
		tag(unroll.TagGate, 3, 17),
		tag(unroll.TagLatchNext, 2, 4),
		tag(unroll.TagLatchInit, 0, 9),
		tag(unroll.TagEMM, 1, 0),
	}
	got := LatchesInCore(core)
	if len(got) != 2 || !got[4] || !got[9] {
		t.Fatalf("latch extraction wrong: %v", got)
	}
}

func TestMemPortsInCore(t *testing.T) {
	core := []int64{
		tag(unroll.TagEMM, 1, 2<<8|1),
		tag(unroll.TagEMMInit, 4, 0<<8|3),
		tag(unroll.TagGate, 0, 5),
	}
	got := MemPortsInCore(core)
	if len(got) != 2 || !got[[2]int{2, 1}] || !got[[2]int{0, 3}] {
		t.Fatalf("mem port extraction wrong: %v", got)
	}
}

func TestTrackerStability(t *testing.T) {
	tr := NewTracker()
	if tr.StableFor(5) != 0 {
		t.Fatalf("fresh tracker must report no stability")
	}
	if !tr.Update(0, []int64{tag(unroll.TagLatchNext, 0, 1)}) {
		t.Fatalf("first update must grow")
	}
	if tr.Update(1, []int64{tag(unroll.TagLatchNext, 1, 1)}) {
		t.Fatalf("same latch must not grow")
	}
	if tr.StableFor(4) != 4 {
		t.Fatalf("stability miscomputed: %d", tr.StableFor(4))
	}
	if !tr.Update(5, []int64{tag(unroll.TagLatchInit, 0, 2)}) {
		t.Fatalf("new latch must grow")
	}
	if tr.StableFor(5) != 0 {
		t.Fatalf("growth must reset stability")
	}
	if tr.Size() != 2 {
		t.Fatalf("size wrong: %d", tr.Size())
	}
	sorted := tr.Sorted()
	if len(sorted) != 2 || sorted[0] != 1 || sorted[1] != 2 {
		t.Fatalf("sorted wrong: %v", sorted)
	}
}

// buildTwoCounterDesign: counter A (latches 0..2) controls memory A's
// ports; counter B (latches 3..6) controls memory B's ports.
func buildTwoCounterDesign() (*rtl.Module, *rtl.Reg, *rtl.Reg) {
	m := rtl.NewModule("two")
	ca := m.Register("ca", 3, 0)
	ca.SetNext(m.Inc(ca.Q))
	cb := m.Register("cb", 4, 0)
	cb.SetNext(m.Inc(cb.Q))
	memA := m.Memory("memA", 3, 4, aig.MemZero)
	memA.Write(ca.Q, m.ZeroExtend(ca.Q, 4), aig.True)
	memA.Read(ca.Q, aig.True)
	memB := m.Memory("memB", 4, 4, aig.MemZero)
	memB.Write(cb.Q, cb.Q, aig.True)
	memB.Read(cb.Q, aig.True)
	m.Done(ca, cb)
	return m, ca, cb
}

func TestAbstractDropsIrrelevantMemory(t *testing.T) {
	m, ca, _ := buildTwoCounterDesign()
	tr := NewTracker()
	// Counter A's latches and memory A's EMM constraints appeared in
	// refutations; memory B never did.
	tr.Update(0, []int64{
		tag(unroll.TagLatchNext, 1, 0),
		tag(unroll.TagLatchNext, 1, 1),
		tag(unroll.TagLatchNext, 1, 2),
		tag(unroll.TagEMM, 2, 0<<8|0),
	})
	abs := tr.Abstract(m.N)
	if abs.KeptLatches != 3 {
		t.Fatalf("kept %d latches, want 3", abs.KeptLatches)
	}
	if !abs.MemEnabled[0] {
		t.Fatalf("memA appeared in refutations and must stay")
	}
	if abs.MemEnabled[1] {
		t.Fatalf("memB never appeared in a refutation; it must be dropped")
	}
	for _, q := range ca.Q {
		if abs.FreeLatches[q.Node()] {
			t.Fatalf("kept latch marked free")
		}
	}
	if abs.String() == "" {
		t.Fatalf("empty abstraction string")
	}
}

func TestAbstractKeepsMemoryWhenEMMTagsUsed(t *testing.T) {
	m, _, _ := buildTwoCounterDesign()
	tr := NewTracker()
	// No latch reasons at all, but memory 1's EMM constraints appeared.
	tr.Update(0, []int64{tag(unroll.TagEMM, 2, 1<<8|0)})
	abs := tr.Abstract(m.N)
	if !abs.MemEnabled[1] {
		t.Fatalf("memory with used EMM constraints must be kept")
	}
	if abs.MemEnabled[0] {
		t.Fatalf("memory without reasons must be dropped")
	}
	if !abs.WriteEnabled[1][0] {
		t.Fatalf("write ports of a kept memory must stay")
	}
}

func TestAbstractPortLevel(t *testing.T) {
	// One memory, two read ports: only port 0's constraints appeared in
	// refutations. Port 1 must be disabled.
	m := rtl.NewModule("ports")
	ca := m.Register("ca", 2, 0)
	ca.SetNext(m.Inc(ca.Q))
	cb := m.Register("cb", 2, 0)
	cb.SetNext(m.Inc(cb.Q))
	mem := m.Memory("mem", 2, 2, aig.MemZero)
	mem.Write(ca.Q, ca.Q, aig.True)
	mem.Read(ca.Q, aig.True)
	mem.Read(cb.Q, aig.True)
	m.Done(ca, cb)
	tr := NewTracker()
	tr.Update(0, []int64{tag(unroll.TagEMMInit, 3, 0<<8|0)})
	abs := tr.Abstract(m.N)
	if !abs.MemEnabled[0] {
		t.Fatalf("memory must be kept (port 0 relevant)")
	}
	if !abs.ReadEnabled[0][0] {
		t.Fatalf("read port 0 must be kept")
	}
	if abs.ReadEnabled[0][1] {
		t.Fatalf("read port 1 must be dropped")
	}
	if !abs.WriteEnabled[0][0] {
		t.Fatalf("write port must be kept")
	}
}
