// Package pba implements latch-based proof-based abstraction (§2.2, §4.3).
//
// After an UNSAT "no counter-example at depth i" answer, the SAT solver's
// refutation identifies a subset of clauses sufficient for
// unsatisfiability. The latches whose interface clauses (frame-linking or
// initial-value clauses) appear in that subset form the latch reasons
// LR(i); latches outside the accumulated LR can be turned into
// pseudo-primary inputs while preserving the property up to depth i. Once
// LR stays unchanged for a configurable number of depths (the stability
// depth), an abstract model is built — and, following §4.3, any memory
// module or port none of whose control-logic latches appear in LR is
// abstracted away entirely, so no EMM constraints need to be generated for
// it.
//
// On top of the paper's latch-cone criterion this implementation also
// records which memories' EMM constraints actually appeared in refutations
// (their clauses carry per-memory tags); a memory is kept whenever either
// signal says it matters, which keeps the "correct up to depth i" PBA
// guarantee airtight.
package pba

import (
	"fmt"
	"sort"

	"emmver/internal/aig"
	"emmver/internal/unroll"
)

// LatchesInCore extracts the latch indices mentioned by a clause core.
func LatchesInCore(core []int64) map[int]bool {
	out := make(map[int]bool)
	for _, raw := range core {
		tg := unroll.Tag(raw)
		if tg.Kind() == unroll.TagLatchNext || tg.Kind() == unroll.TagLatchInit {
			out[tg.Index()] = true
		}
	}
	return out
}

// MemPortsInCore extracts the (memory, read port) pairs whose EMM clauses
// are mentioned by a clause core. The index packing matches package core:
// memory<<8 | readPort.
func MemPortsInCore(core []int64) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for _, raw := range core {
		tg := unroll.Tag(raw)
		if tg.Kind() == unroll.TagEMM || tg.Kind() == unroll.TagEMMInit {
			out[[2]int{tg.Index() >> 8, tg.Index() & 0xff}] = true
		}
	}
	return out
}

// Tracker accumulates latch reasons (and EMM-constraint usage) across BMC
// depths and detects stability.
type Tracker struct {
	// LR is the accumulated latch-reason set (indices into
	// Netlist.Latches).
	LR map[int]bool
	// MemPortsUsed accumulates (memory, read port) pairs whose EMM
	// constraints appeared in any refutation.
	MemPortsUsed map[[2]int]bool

	lastGrowth int
	updated    bool
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{LR: make(map[int]bool), MemPortsUsed: make(map[[2]int]bool)}
}

// Update merges the latch reasons of the given depth's core and returns
// whether the latch set grew.
func (t *Tracker) Update(depth int, core []int64) bool {
	grew := false
	for idx := range LatchesInCore(core) {
		if !t.LR[idx] {
			t.LR[idx] = true
			grew = true
		}
	}
	for mp := range MemPortsInCore(core) {
		t.MemPortsUsed[mp] = true
	}
	if grew {
		t.lastGrowth = depth
	}
	t.updated = true
	return grew
}

// StableFor returns how many depths the latch set has been unchanged as of
// the given depth (0 if never updated).
func (t *Tracker) StableFor(depth int) int {
	if !t.updated {
		return 0
	}
	return depth - t.lastGrowth
}

// Size returns |LR|.
func (t *Tracker) Size() int { return len(t.LR) }

// Sorted returns the latch indices in increasing order.
func (t *Tracker) Sorted() []int {
	out := make([]int, 0, len(t.LR))
	for i := range t.LR {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Abstraction is a reduced verification model derived from a stable
// latch-reason set.
type Abstraction struct {
	// FreeLatches are latches converted to pseudo-primary inputs.
	FreeLatches map[aig.NodeID]bool
	// KeptLatches is the number of latches kept concrete.
	KeptLatches int
	// MemEnabled[mi] reports whether memory mi still needs EMM modeling.
	MemEnabled []bool
	// ReadEnabled[mi][r] / WriteEnabled[mi][w] refine the per-port
	// abstraction of §4.3.
	ReadEnabled  [][]bool
	WriteEnabled [][]bool
}

// Abstract builds the reduced model from the tracker's accumulated
// reasons. Latches outside LR become free. A memory module (or read port)
// is dropped when none of its EMM constraints appeared in any refutation:
// since refutations stay valid without the dropped clauses, the reduced
// model preserves the absence of counter-examples up to the analysis
// depth. This refines the paper's criterion — §4.3 infers relevance from
// the memory's control-logic latches in LR, which over-keeps memories
// whose port logic shares latches (e.g. one FSM) with relevant state; our
// per-memory clause tags let the refutation speak directly. Dropping a
// memory only ever over-approximates, so proofs on the reduced model
// remain sound either way.
func (t *Tracker) Abstract(n *aig.Netlist) *Abstraction {
	a := &Abstraction{FreeLatches: make(map[aig.NodeID]bool)}
	inLR := make(map[aig.NodeID]bool)
	for i, l := range n.Latches {
		if t.LR[i] {
			inLR[l.Node] = true
			a.KeptLatches++
		} else {
			a.FreeLatches[l.Node] = true
		}
	}
	for mi, m := range n.Memories {
		memOn := false
		reads := make([]bool, len(m.Reads))
		for r := range m.Reads {
			if t.MemPortsUsed[[2]int{mi, r}] {
				reads[r] = true
				memOn = true
			}
		}
		a.MemEnabled = append(a.MemEnabled, memOn)
		// Write ports feed every kept read port's forwarding chain; keep
		// them all while the memory is modeled.
		writes := make([]bool, len(m.Writes))
		for w := range writes {
			writes[w] = memOn
		}
		a.ReadEnabled = append(a.ReadEnabled, reads)
		a.WriteEnabled = append(a.WriteEnabled, writes)
	}
	return a
}

// String summarizes the abstraction like the paper's Table 2 rows.
func (a *Abstraction) String() string {
	total := a.KeptLatches + len(a.FreeLatches)
	mems := 0
	for _, on := range a.MemEnabled {
		if on {
			mems++
		}
	}
	return fmt.Sprintf("%d (%d) latches kept, %d/%d memories modeled",
		a.KeptLatches, total, mems, len(a.MemEnabled))
}

// Remap returns a copy of t with latch indices translated through latch
// and (memory, read-port) pairs through memPort, preserving the stability
// bookkeeping. The compile pipeline (package pass) uses it to report latch
// reasons and port usage in source-netlist coordinates after the engines
// ran on a reduced netlist. Entries for which a translation returns a
// negative index are kept untranslated — they cannot occur when the
// tracker really came from the compiled netlist.
func (t *Tracker) Remap(latch func(int) int, memPort func(mi, ri int) (int, int)) *Tracker {
	out := &Tracker{
		LR:           make(map[int]bool, len(t.LR)),
		MemPortsUsed: make(map[[2]int]bool, len(t.MemPortsUsed)),
		lastGrowth:   t.lastGrowth,
		updated:      t.updated,
	}
	for i := range t.LR {
		if si := latch(i); si >= 0 {
			out.LR[si] = true
		} else {
			out.LR[i] = true
		}
	}
	for mp := range t.MemPortsUsed {
		smi, sri := memPort(mp[0], mp[1])
		if smi >= 0 && sri >= 0 {
			out.MemPortsUsed[[2]int{smi, sri}] = true
		} else {
			out.MemPortsUsed[mp] = true
		}
	}
	return out
}
