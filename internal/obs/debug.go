package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the HTTP handler served by the -pprof CLI flag: the
// standard net/http/pprof endpoints under /debug/pprof/ plus a plain-text
// metrics dump of reg under /metrics.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer serves DebugMux on addr in a background goroutine,
// reporting startup failures to logw (verification must not die because a
// port is taken).
func StartDebugServer(addr string, reg *Registry, logw io.Writer) {
	go func() {
		if err := http.ListenAndServe(addr, DebugMux(reg)); err != nil && logw != nil {
			fmt.Fprintf(logw, "obs: debug server on %s: %v\n", addr, err)
		}
	}()
}
