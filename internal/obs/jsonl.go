package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// JSONL writes each trace event as one flat JSON object per line:
//
//	{"t_us":1754380800123456,"ev":"end","name":"solve.forward","span":7,"dur_us":812,"depth":3,"result":"SAT"}
//
// Fixed keys are t_us (wall-clock unix microseconds), ev, name, span
// (omitted for points), and dur_us (end events only); the event's fields
// are flattened into the same object, which keeps jq pipelines one
// selector deep. Emit is safe for concurrent use; the writer is buffered,
// so call Close (or Flush) before reading the journal.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	out io.Writer
	err error
}

// NewJSONL builds a journal writer over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{bw: bufio.NewWriterSize(w, 1<<16), out: w}
}

// Emit appends one event line. Write errors are sticky and reported by
// Err/Close rather than interrupting the verification run.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	buf := make([]byte, 0, 160)
	buf = append(buf, `{"t_us":`...)
	buf = strconv.AppendInt(buf, e.T.UnixMicro(), 10)
	buf = append(buf, `,"ev":`...)
	buf = appendJSONString(buf, e.Ev)
	buf = append(buf, `,"name":`...)
	buf = appendJSONString(buf, e.Name)
	if e.Span != 0 {
		buf = append(buf, `,"span":`...)
		buf = strconv.AppendUint(buf, e.Span, 10)
	}
	if e.Ev == "end" {
		buf = append(buf, `,"dur_us":`...)
		buf = strconv.AppendInt(buf, e.DurUS, 10)
	}
	for _, kv := range e.Fields {
		buf = append(buf, ',')
		buf = appendJSONString(buf, kv.K)
		buf = append(buf, ':')
		buf = appendJSONValue(buf, kv.V)
	}
	buf = append(buf, '}', '\n')
	_, j.err = j.bw.Write(buf)
}

// Flush drains the buffer to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = j.bw.Flush()
	}
	return j.err
}

// Close flushes and, when the underlying writer is an io.Closer (a file),
// closes it. Returns the first error seen over the journal's lifetime.
func (j *JSONL) Close() error {
	err := j.Flush()
	if c, ok := j.out.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Err reports the sticky write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func appendJSONValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case bool:
		return strconv.AppendBool(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case string:
		return appendJSONString(buf, x)
	case time.Duration:
		return strconv.AppendInt(buf, x.Microseconds(), 10)
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return appendJSONString(buf, "!"+err.Error())
		}
		return append(buf, b...)
	}
}

func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			// Field keys and values in this journal are ASCII identifiers
			// and design names; multi-byte runes pass through verbatim,
			// which is valid JSON (UTF-8).
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

func hexDigit(d byte) byte {
	if d < 10 {
		return '0' + d
	}
	return 'a' + d - 10
}
