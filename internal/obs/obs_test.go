package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from many goroutines (run
// under -race in CI): concurrent first-use creation, counter bumps, gauge
// maxing, and snapshots must all be safe and lose no increments.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				r.Counter("late.counter").Add(2)
				g.Max(int64(w*perWorker + i))
				if i%256 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap["shared.counter"] != workers*perWorker {
		t.Fatalf("lost counter increments: %d", snap["shared.counter"])
	}
	if snap["late.counter"] != 2*workers*perWorker {
		t.Fatalf("lost late-created counter increments: %d", snap["late.counter"])
	}
	if want := int64(workers*perWorker - 1); snap["shared.gauge"] != want {
		t.Fatalf("gauge max: got %d want %d", snap["shared.gauge"], want)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	var r *Registry
	var c *Counter
	var g *Gauge
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	g.Set(7)
	g.Max(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Snapshot() != nil {
		t.Fatal("nil registry must return nils")
	}
	if o.Enabled() || o.Registry() != nil || o.TraceSink() != nil || o.With(F("a", 1)) != nil {
		t.Fatal("nil observer must be inert")
	}
	sp := o.Span("x", F("k", "v"))
	sp.End(F("k2", 2))
	o.Point("y")
	o.Counter("z").Inc()
	o.Gauge("w").Set(1)
	// Metrics-only observer: spans are free, counters work.
	mo := New(NewRegistry(), nil)
	if mo.Enabled() {
		t.Fatal("observer without sink must report disabled tracing")
	}
	mo.Span("x").End()
	mo.Counter(MConflicts).Add(3)
	if mo.Counter(MConflicts).Value() != 3 {
		t.Fatal("metrics-only observer lost a count")
	}
}

// TestJSONLJournal checks that emitted events round-trip as flat JSON
// lines with paired start/end spans and base-field attribution.
func TestJSONLJournal(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	o := New(NewRegistry(), sink).With(F("worker", 3))

	sp := o.Span("solve.forward", F("depth", 7))
	time.Sleep(time.Millisecond)
	sp.End(F("result", "UNSAT"), F("quote", `a"b\c`), F("neg", -12), F("flag", true))
	o.Point("pba.update", F("core", 42))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 journal lines, got %d: %q", len(lines), buf.String())
	}
	var evs []map[string]any
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
		evs = append(evs, m)
	}
	if evs[0]["ev"] != "start" || evs[1]["ev"] != "end" || evs[2]["ev"] != "point" {
		t.Fatalf("event types wrong: %v", evs)
	}
	if evs[0]["span"] != evs[1]["span"] {
		t.Fatalf("span ids must pair: %v vs %v", evs[0]["span"], evs[1]["span"])
	}
	if evs[1]["dur_us"].(float64) < 500 {
		t.Fatalf("end event lost its duration: %v", evs[1]["dur_us"])
	}
	for i, m := range evs {
		if m["worker"] != float64(3) {
			t.Fatalf("event %d lost base field attribution: %v", i, m)
		}
	}
	if evs[1]["result"] != "UNSAT" || evs[1]["quote"] != `a"b\c` || evs[1]["neg"] != float64(-12) || evs[1]["flag"] != true {
		t.Fatalf("end fields mangled: %v", evs[1])
	}
	if evs[0]["depth"] != float64(7) || evs[2]["core"] != float64(42) {
		t.Fatalf("payload fields mangled: %v %v", evs[0], evs[2])
	}
}

// TestJSONLConcurrent interleaves emitters; every line must stay a valid,
// complete JSON object (run under -race in CI).
func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	o := New(nil, sink)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wo := o.With(F("worker", w))
			for i := 0; i < 500; i++ {
				wo.Span("op", F("i", i)).End()
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4*500*2 {
		t.Fatalf("expected %d lines, got %d", 4*500*2, len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("torn line %q: %v", ln, err)
		}
	}
}

func TestProgressReporter(t *testing.T) {
	r := NewRegistry()
	r.Gauge(MDepth).Set(12)
	r.Counter(MConflicts).Add(3456)
	r.Counter(MEMMAddrClauses).Add(100)
	var buf bytes.Buffer
	var mu sync.Mutex
	w := lockedWriter{mu: &mu, w: &buf}
	p := StartProgress(r, w, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	r.Counter(MConflicts).Add(1000)
	p.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "depth=12") || !strings.Contains(out, "emm=") {
		t.Fatalf("progress line missing summary: %q", out)
	}
	// Stop is idempotent and nil-safe.
	p.Stop()
	(*Progress)(nil).Stop()
	if StartProgress(nil, &buf, time.Second) != nil || StartProgress(r, nil, time.Second) != nil || StartProgress(r, &buf, 0) != nil {
		t.Fatal("degenerate StartProgress must return nil")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter(MConflicts).Add(77)
	r.Gauge(MDepth).Set(5)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.Contains(body, "emmver_solver_conflicts 77") || !strings.Contains(body, "emmver_bmc_depth 5") {
		t.Fatalf("metrics dump wrong:\n%s", body)
	}
}
