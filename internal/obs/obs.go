// Package obs is the engine's observability layer: a metrics registry of
// atomic counters and gauges, structured span tracing to a pluggable sink,
// and a live progress reporter. It is dependency-free (standard library
// only) and designed so that an absent observer costs nothing: every
// method on a nil *Observer, *Counter, *Gauge, or zero Span is a no-op,
// and the hot paths of the solver/unroller/EMM layers publish counter
// deltas at depth or solve-call granularity rather than per operation.
//
// The canonical metric names (MDepth, MConflicts, ...) form the schema
// shared by the SAT solver, the unrollers, the EMM generator, and the BMC
// engines; CLIs and the /metrics text dump rely on them, and so do the
// example jq one-liners in the README.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric names. Counters unless noted.
const (
	// BMC engine.
	MDepth         = "bmc.depth" // gauge: deepest depth any engine has completed
	MPropsResolved = "bmc.props_resolved"

	// SAT solvers (aggregated across every attached solver).
	MSolves          = "solver.solves"
	MConflicts       = "solver.conflicts"
	MPropagations    = "solver.propagations"
	MBinPropagations = "solver.bin_propagations"
	MDecisions       = "solver.decisions"
	MRestarts        = "solver.restarts"
	MRestartsLuby    = "solver.restarts_luby"
	MRestartsEMA     = "solver.restarts_ema"
	MRestartsBlocked = "solver.restarts_blocked"
	MReduceDBs       = "solver.reducedbs"
	MLearntsAdded    = "solver.learnts_added"
	MLearntsDeleted  = "solver.learnts_deleted"
	MSolverClauses   = "solver.clauses"
	MSolverVars      = "solver.vars"
	// Inprocessing (Simplify) and LBD clause management.
	MLBDSum              = "solver.lbd_sum"
	MSimplifies          = "solver.simplifies"
	MSubsumedClauses     = "solver.subsumed_clauses"
	MStrengthenedClauses = "solver.strengthened_clauses"
	MEliminatedVars      = "solver.eliminated_vars"
	MTierCore            = "solver.tier_core"  // gauge: high-water core-tier size
	MTierMid             = "solver.tier_mid"   // gauge: high-water mid-tier size
	MTierLocal           = "solver.tier_local" // gauge: high-water local-tier size

	// Unrollers.
	MUnrollGates   = "unroll.gates"
	MStrashHits    = "unroll.strash_hits"
	MUnrollClauses = "unroll.clauses"
	MUnrollVars    = "unroll.aux_vars"

	// EMM constraint generation, per constraint family (§4.1's tally).
	MEMMAddrClauses     = "emm.addr_clauses"
	MEMMReadDataClauses = "emm.readdata_clauses"
	MEMMGates           = "emm.gates"
	MEMMInitPairs       = "emm.init_pairs"
	MEMMInitClauses     = "emm.init_clauses"
	MEMMMemoHits        = "emm.memo_hits"

	// Lazy-EMM refinement (demand-driven axiom instantiation on the
	// counter-example path, bmc.Options.LazyEMM).
	MLazyRounds   = "lazy.rounds"   // model validations run by the oracle
	MLazyAxioms   = "lazy.axioms"   // forwarding axioms instantiated on demand
	MLazySpurious = "lazy.spurious" // SAT models rejected as semantically spurious

	// Cooperative solving: clause-sharing bus and cube-and-conquer.
	MShareExported = "share.exported" // clauses published to the bus
	MShareImported = "share.imported" // clauses replayed into a peer solver
	MShareFiltered = "share.filtered" // clauses dropped by the canonical-coding filter
	MCubeSplits    = "cube.split"     // cube refinements (budget-exceeded splits)
	MCubeStolen    = "cube.stolen"    // cubes solved by a worker other than their producer
	MShareDropped  = "share.dropped"  // clause deliveries lost to ring overrun

	// Distributed solving: cross-process transport (package sharenet).
	MNetSent       = "sharenet.sent"       // frames written to the socket
	MNetReceived   = "sharenet.received"   // frames read from the socket
	MNetDropped    = "sharenet.dropped"    // clause frames dropped on a full peer queue
	MNetReconnects = "sharenet.reconnects" // dial retries before the link came up

	// Proof-based abstraction.
	MPBACoreSize     = "pba.core_size"     // gauge: last UNSAT core size
	MPBALatchReasons = "pba.latch_reasons" // gauge: |LR| after the last update

	// Static compile pipeline (package pass): totals removed across all
	// pipeline runs seen by this registry.
	MPassRuns            = "pass.runs"
	MPassNodesRemoved    = "pass.nodes_removed"
	MPassLatchesRemoved  = "pass.latches_removed"
	MPassMemsRemoved     = "pass.mems_removed"
	MPassMemPortsRemoved = "pass.mem_ports_removed"
)

// Counter is a monotonically increasing atomic metric. All methods are
// safe on a nil receiver (no-ops), so layers can attach unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value metric. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Max raises the gauge to v if v is larger (fleet workers publish their
// own depth; the registry keeps the frontier).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a concurrency-safe collection of named counters and gauges.
// Lookup creates on first use; the returned pointers are stable, so hot
// code resolves its metrics once at attach time and then works purely with
// atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns (creating if needed) the named counter. Nil on a nil
// registry, which composes with Counter's nil-safe methods.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot reads every metric into one map (counters and gauges share the
// namespace by construction).
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// WriteText dumps every metric as scrape-friendly "name value" lines in
// sorted order, with non-identifier characters folded to underscores and
// an emmver_ prefix (the /metrics endpoint of the CLI debug server).
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "emmver_%s %d\n", sanitizeMetricName(name), snap[name]); err != nil {
			return err
		}
	}
	return nil
}

func sanitizeMetricName(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// KV is one structured field on a trace event.
type KV struct {
	K string
	V any
}

// F builds a field.
func F(k string, v any) KV { return KV{K: k, V: v} }

// Event is one trace record. Ev is "start", "end", or "point"; Span links
// a start to its end; DurUS is the span duration in microseconds (end
// events only). Fields carry the event's structured payload, prefixed by
// the observer's base fields (worker/lane attribution).
type Event struct {
	T      time.Time // wall-clock emission time
	Ev     string
	Name   string
	Span   uint64
	DurUS  int64
	Fields []KV
}

// Sink receives trace events. Implementations must be safe for concurrent
// Emit calls: portfolio lanes and fleet workers share one sink.
type Sink interface {
	Emit(Event)
}

// Observer bundles a metrics registry and a trace sink, and is the handle
// the engine layers are wired with. A nil *Observer is fully usable and
// free: spans collapse to zero values, metric lookups return nil.
type Observer struct {
	reg  *Registry
	sink Sink
	ids  *atomic.Uint64
	base []KV
}

// New builds an observer over reg (may be nil: tracing only) and sink (may
// be nil: metrics only).
func New(reg *Registry, sink Sink) *Observer {
	return &Observer{reg: reg, sink: sink, ids: new(atomic.Uint64)}
}

// Registry returns the metrics registry (nil-safe).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// TraceSink returns the trace sink (nil-safe).
func (o *Observer) TraceSink() Sink {
	if o == nil {
		return nil
	}
	return o.sink
}

// Enabled reports whether span emission does anything.
func (o *Observer) Enabled() bool { return o != nil && o.sink != nil }

// With derives an observer whose every event carries the given base fields
// in addition to o's: the fleet engines use it for per-worker attribution.
// The registry, sink, and span-id sequence are shared with o.
func (o *Observer) With(kvs ...KV) *Observer {
	if o == nil {
		return nil
	}
	base := make([]KV, 0, len(o.base)+len(kvs))
	base = append(base, o.base...)
	base = append(base, kvs...)
	return &Observer{reg: o.reg, sink: o.sink, ids: o.ids, base: base}
}

// Counter resolves a registry counter (nil when metrics are off).
func (o *Observer) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge resolves a registry gauge (nil when metrics are off).
func (o *Observer) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

func (o *Observer) fields(kvs []KV) []KV {
	if len(o.base) == 0 {
		return kvs
	}
	out := make([]KV, 0, len(o.base)+len(kvs))
	out = append(out, o.base...)
	out = append(out, kvs...)
	return out
}

// Span emits a typed start event and returns a handle whose End emits the
// matching end event with the measured duration. Free when no sink is
// attached.
func (o *Observer) Span(name string, kvs ...KV) Span {
	if !o.Enabled() {
		return Span{}
	}
	id := o.ids.Add(1)
	now := time.Now()
	o.sink.Emit(Event{T: now, Ev: "start", Name: name, Span: id, Fields: o.fields(kvs)})
	return Span{o: o, name: name, id: id, start: now}
}

// Point emits a single instantaneous event.
func (o *Observer) Point(name string, kvs ...KV) {
	if !o.Enabled() {
		return
	}
	o.sink.Emit(Event{T: time.Now(), Ev: "point", Name: name, Fields: o.fields(kvs)})
}

// Span is an in-flight traced operation. The zero value is inert.
type Span struct {
	o     *Observer
	name  string
	id    uint64
	start time.Time
}

// End closes the span, attaching the duration and any extra fields.
func (s Span) End(kvs ...KV) {
	if s.o == nil {
		return
	}
	now := time.Now()
	s.o.sink.Emit(Event{
		T:      now,
		Ev:     "end",
		Name:   s.name,
		Span:   s.id,
		DurUS:  now.Sub(s.start).Microseconds(),
		Fields: s.o.fields(kvs),
	})
}
