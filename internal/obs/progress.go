package obs

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Progress is a heartbeat goroutine that periodically summarizes the
// registry (depth, formula size, conflict rate, heap) to a log writer —
// the -progress CLI flag. Start with StartProgress, stop with Stop; a
// final line is emitted on Stop so short runs still report once.
type Progress struct {
	reg   *Registry
	w     io.Writer
	every time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once

	start time.Time
	prev  map[string]int64
	prevT time.Time
}

// StartProgress launches the heartbeat. Returns nil (safe to Stop) when
// reg or w is nil or the interval is non-positive.
func StartProgress(reg *Registry, w io.Writer, every time.Duration) *Progress {
	if reg == nil || w == nil || every <= 0 {
		return nil
	}
	now := time.Now()
	p := &Progress{
		reg:   reg,
		w:     w,
		every: every,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		start: now,
		prev:  reg.Snapshot(),
		prevT: now,
	}
	go p.loop()
	return p
}

// Stop halts the heartbeat after one final summary line. Safe on nil and
// idempotent.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.stop) })
	<-p.done
}

func (p *Progress) loop() {
	defer close(p.done)
	t := time.NewTicker(p.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.emit()
		case <-p.stop:
			p.emit()
			return
		}
	}
}

func (p *Progress) emit() {
	now := time.Now()
	snap := p.reg.Snapshot()
	dt := now.Sub(p.prevT).Seconds()
	if dt <= 0 {
		dt = 1e-9
	}
	rate := float64(snap[MConflicts]-p.prev[MConflicts]) / dt

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	var b strings.Builder
	fmt.Fprintf(&b, "[progress %s] depth=%d solves=%s clauses=%s vars=%s conflicts=%s (%s/s)",
		time.Since(p.start).Round(time.Second),
		snap[MDepth],
		human(snap[MSolves]),
		human(snap[MSolverClauses]),
		human(snap[MSolverVars]),
		human(snap[MConflicts]),
		human(int64(rate)))
	if emm := snap[MEMMAddrClauses] + snap[MEMMReadDataClauses] + snap[MEMMInitClauses]; emm > 0 {
		fmt.Fprintf(&b, " emm=%s (memo %s)", human(emm), human(snap[MEMMMemoHits]))
	}
	if snap[MStrashHits] > 0 {
		fmt.Fprintf(&b, " strash=%s", human(snap[MStrashHits]))
	}
	if snap[MPropsResolved] > 0 {
		fmt.Fprintf(&b, " props=%d", snap[MPropsResolved])
	}
	if snap[MPBALatchReasons] > 0 {
		fmt.Fprintf(&b, " |LR|=%d core=%d", snap[MPBALatchReasons], snap[MPBACoreSize])
	}
	fmt.Fprintf(&b, " heap=%dMB", ms.HeapAlloc>>20)
	fmt.Fprintln(p.w, b.String())

	p.prev, p.prevT = snap, now
}

// human renders a count with k/M suffixes for log lines.
func human(v int64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.0fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
