package verilog

import (
	"math/rand"
	"strings"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/sim"
)

// harness wraps an elaborated netlist with name-based input driving.
type harness struct {
	t   *testing.T
	n   *aig.Netlist
	s   *sim.Simulator
	in  map[string][]aig.NodeID // input name -> bit nodes (LSB first)
	cur map[aig.NodeID]bool
}

func newHarness(t *testing.T, src, top string) *harness {
	t.Helper()
	n, err := ElaborateString(src, top)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	h := &harness{t: t, n: n, s: sim.New(n), in: map[string][]aig.NodeID{}, cur: map[aig.NodeID]bool{}}
	for _, id := range n.Inputs {
		name := n.InputName(id)
		base := name
		if i := strings.IndexByte(name, '['); i >= 0 {
			base = name[:i]
		}
		h.in[base] = append(h.in[base], id)
	}
	return h
}

func (h *harness) set(name string, val uint64) {
	ids, ok := h.in[name]
	if !ok {
		h.t.Fatalf("no input %q (have %v)", name, h.in)
	}
	for i, id := range ids {
		h.cur[id] = val>>uint(i)&1 == 1
	}
}

func (h *harness) step() sim.StepResult { return h.s.Step(h.cur) }

// latch reads a register value by its base name.
func (h *harness) latch(name string) uint64 {
	var bits []aig.Lit
	for _, l := range h.n.Latches {
		base := l.Name
		if i := strings.IndexByte(base, '['); i >= 0 {
			base = base[:i]
		}
		if base == name {
			bits = append(bits, aig.MkLit(l.Node, false))
		}
	}
	if len(bits) == 0 {
		h.t.Fatalf("no latch %q", name)
	}
	h.s.Begin(h.cur)
	return h.s.EvalVec(bits)
}

func TestCounterModule(t *testing.T) {
	src := `
module counter(input clk, input en, input rst);
  reg [3:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 4'd0;
    else if (en) cnt <= cnt + 4'd1;
  end
  assert(cnt != 4'd9, "never9");
endmodule`
	h := newHarness(t, src, "counter")
	h.set("en", 1)
	h.set("rst", 0)
	for i := 1; i <= 5; i++ {
		h.step()
		if got := h.latch("cnt"); got != uint64(i) {
			t.Fatalf("cycle %d: cnt=%d", i, got)
		}
	}
	h.set("rst", 1)
	h.step()
	if got := h.latch("cnt"); got != 0 {
		t.Fatalf("reset failed: %d", got)
	}
	// The assertion must be falsifiable at depth 9.
	n, _ := ElaborateString(src, "counter")
	r := bmc.Check(n, 0, bmc.Options{MaxDepth: 12, ValidateWitness: true})
	if r.Kind != bmc.KindCE || r.Depth != 9 {
		t.Fatalf("assert verdict wrong: %v", r)
	}
}

func TestOperatorsAgainstGo(t *testing.T) {
	checks := []struct {
		expr string
		fn   func(a, b uint64) uint64
	}{
		{"a + b", func(a, b uint64) uint64 { return (a + b) & 0xff }},
		{"a - b", func(a, b uint64) uint64 { return (a - b) & 0xff }},
		{"a & b", func(a, b uint64) uint64 { return a & b }},
		{"a | b", func(a, b uint64) uint64 { return a | b }},
		{"a ^ b", func(a, b uint64) uint64 { return a ^ b }},
		{"~a", func(a, b uint64) uint64 { return ^a & 0xff }},
		{"a * b", func(a, b uint64) uint64 { return (a * b) & 0xff }},
		{"{8{a < b}}", func(a, b uint64) uint64 {
			if a < b {
				return 0xff
			}
			return 0
		}},
		{"{8{a >= b}}", func(a, b uint64) uint64 {
			if a >= b {
				return 0xff
			}
			return 0
		}},
		{"a << 2", func(a, b uint64) uint64 { return a << 2 & 0xff }},
		{"a >> (b & 8'd7)", func(a, b uint64) uint64 { return a >> (b & 7) }},
		{"(a < b) ? a : b", func(a, b uint64) uint64 {
			if a < b {
				return a
			}
			return b
		}},
		{"{8{^a}}", func(a, b uint64) uint64 {
			x := a ^ a>>4
			x ^= x >> 2
			x ^= x >> 1
			if x&1 == 1 {
				return 0xff
			}
			return 0
		}},
		{"{a[3:0], b[7:4]}", func(a, b uint64) uint64 { return a&0xf<<4 | b>>4&0xf }},
	}
	rng := rand.New(rand.NewSource(8))
	for _, c := range checks {
		src := `
module t(input [7:0] a, input [7:0] b, input [7:0] expect);
  wire [7:0] val = ` + c.expr + `;
  wire ok = val == expect;
  reg seen;
  always @(posedge a) seen <= ok;
endmodule`
		h := newHarness(t, src, "t")
		for i := 0; i < 50; i++ {
			av, bv := rng.Uint64()&0xff, rng.Uint64()&0xff
			h.set("a", av)
			h.set("b", bv)
			h.set("expect", c.fn(av, bv))
			h.step()
			if h.latch("seen") != 1 {
				t.Fatalf("%s wrong for a=%d b=%d (want %d)", c.expr, av, bv, c.fn(av, bv))
			}
		}
	}
}

func TestCombAlwaysWithCase(t *testing.T) {
	src := `
module alu(input clk, input [1:0] op, input [3:0] a, input [3:0] b);
  reg [3:0] y;
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a ^ b;
    endcase
  end
  reg [3:0] out;
  always @(posedge clk) out <= y;
endmodule`
	h := newHarness(t, src, "alu")
	cases := []func(a, b uint64) uint64{
		func(a, b uint64) uint64 { return (a + b) & 0xf },
		func(a, b uint64) uint64 { return (a - b) & 0xf },
		func(a, b uint64) uint64 { return a & b },
		func(a, b uint64) uint64 { return a ^ b },
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 80; i++ {
		op := uint64(rng.Intn(4))
		av, bv := rng.Uint64()&0xf, rng.Uint64()&0xf
		h.set("op", op)
		h.set("a", av)
		h.set("b", bv)
		h.step()
		if got := h.latch("out"); got != cases[op](av, bv) {
			t.Fatalf("op=%d a=%d b=%d: out=%d want %d", op, av, bv, got, cases[op](av, bv))
		}
	}
}

func TestMemoryInference(t *testing.T) {
	src := `
module ram(input clk, input we, input [2:0] wa, input [7:0] wd, input [2:0] ra);
  (* init = "zero" *) reg [7:0] mem [7:0];
  always @(posedge clk) begin
    if (we) mem[wa] <= wd;
  end
  reg [7:0] rd;
  always @(posedge clk) rd <= mem[ra];
endmodule`
	n, err := ElaborateString(src, "ram")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Memories) != 1 {
		t.Fatalf("memory not inferred")
	}
	mem := n.Memories[0]
	if mem.AW != 3 || mem.DW != 8 || mem.Init != aig.MemZero {
		t.Fatalf("memory geometry wrong: AW=%d DW=%d init=%v", mem.AW, mem.DW, mem.Init)
	}
	if len(mem.Writes) != 1 || len(mem.Reads) != 1 {
		t.Fatalf("ports wrong")
	}
	h := newHarness(t, src, "ram")
	h.set("we", 1)
	h.set("wa", 5)
	h.set("wd", 0xAB)
	h.set("ra", 5)
	h.step() // write committed
	h.set("we", 0)
	h.step() // rd loads mem[5]
	if got := h.latch("rd"); got != 0xAB {
		t.Fatalf("rd=%#x want 0xAB", got)
	}
}

func TestParametersAndInstance(t *testing.T) {
	src := `
module addsub #(parameter W = 4, parameter SUB = 0) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
  assign y = SUB ? a - b : a + b;
endmodule

module top(input clk, input [7:0] a, input [7:0] b);
  wire [7:0] s;
  wire [7:0] d;
  addsub #(.W(8)) u_add (.a(a), .b(b), .y(s));
  addsub #(.W(8), .SUB(1)) u_sub (.a(a), .b(b), .y(d));
  reg [7:0] sum, dif;
  always @(posedge clk) begin
    sum <= s;
    dif <= d;
  end
endmodule`
	h := newHarness(t, src, "top")
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		av, bv := rng.Uint64()&0xff, rng.Uint64()&0xff
		h.set("a", av)
		h.set("b", bv)
		h.step()
		if got := h.latch("sum"); got != (av+bv)&0xff {
			t.Fatalf("sum wrong")
		}
		if got := h.latch("dif"); got != (av-bv)&0xff {
			t.Fatalf("dif wrong")
		}
	}
}

func TestAssumeConstrainsBMC(t *testing.T) {
	src := `
module c(input clk, input x);
  reg r;
  always @(posedge clk) if (x) r <= 1'b1;
  assume(!x);
  assert(!r, "stays0");
endmodule`
	n, err := ElaborateString(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	r := bmc.Check(n, 0, bmc.BMC1(10))
	if r.Kind != bmc.KindProof {
		t.Fatalf("assumed design must be provable: %v", r)
	}
}

func TestPartAndBitAssign(t *testing.T) {
	src := `
module p(input clk, input [3:0] nib, input [1:0] idx, input bitv);
  reg [7:0] r;
  always @(posedge clk) begin
    r[7:4] <= nib;
    r[idx] <= bitv;
  end
endmodule`
	h := newHarness(t, src, "p")
	h.set("nib", 0xA)
	h.set("idx", 2)
	h.set("bitv", 1)
	h.step()
	if got := h.latch("r"); got != 0xA4 {
		t.Fatalf("r=%#x want 0xA4", got)
	}
}

func TestElaborationErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"multidriver", `module m(input a); wire w; assign w = a; assign w = !a; endmodule`},
		{"undriven", `module m(input clk); wire w; reg r; always @(posedge clk) r <= w; endmodule`},
		{"comb-incomplete", `module m(input clk, input c, input x); reg y; always @(*) begin if (c) y = x; end reg o; always @(posedge clk) o <= y; endmodule`},
		{"comb-loop", `module m(input clk, input a); wire x; wire y; assign x = y; assign y = x & a; reg r; always @(posedge clk) r <= x; endmodule`},
		{"blocking-in-ff", `module m(input clk); reg r; always @(posedge clk) r = 1'b1; endmodule`},
		{"unknown-module", `module m(input a); foo u(.x(a)); endmodule`},
		{"unknown-top", `module m(input a); endmodule`},
		{"assign-to-reg", `module m(input a); reg r; assign r = a; endmodule`},
		{"mem-no-index", `module m(input clk, input [1:0] x); reg [3:0] mem [3:0]; reg [3:0] r; always @(posedge clk) r <= mem + 1; endmodule`},
		{"double-clocked", `module m(input clk); reg r; always @(posedge clk) r <= 1'b0; always @(posedge clk) r <= 1'b1; endmodule`},
	}
	for _, c := range cases {
		top := "m"
		if c.name == "unknown-top" {
			top = "nonexistent"
		}
		if _, err := ElaborateString(c.src, top); err == nil {
			t.Fatalf("%s: expected elaboration error", c.name)
		}
	}
}

func TestParseErrorsVerilog(t *testing.T) {
	for _, bad := range []string{
		``,
		`module`,
		`module m(input a);`,
		`module m(input a); wire w = ; endmodule`,
		`module m(input a); always @(negedge a) ; endmodule`,
		`module m(input a); assign w 3; endmodule`,
		`module m(input [4'bzz01:0] a); endmodule`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("source %q must fail to parse", bad)
		}
	}
}

func TestNumberFormats(t *testing.T) {
	src := `
module n(input clk);
  reg [15:0] r;
  always @(posedge clk) r <= 16'hBEEF;
  reg [7:0] b;
  always @(posedge clk) b <= 8'b1010_0101;
  reg [7:0] d;
  always @(posedge clk) d <= 'd42;
  reg [7:0] o;
  always @(posedge clk) o <= 8'o17;
endmodule`
	h := newHarness(t, src, "n")
	h.step()
	if h.latch("r") != 0xBEEF || h.latch("b") != 0xA5 || h.latch("d") != 42 || h.latch("o") != 15 {
		t.Fatalf("literals wrong: %x %x %d %d", h.latch("r"), h.latch("b"), h.latch("d"), h.latch("o"))
	}
}

func TestRegInitializer(t *testing.T) {
	src := `
module i(input clk);
  reg [3:0] r = 4'd9;
  always @(posedge clk) r <= r;
  (* init = "arbitrary" *) reg [3:0] x;
  always @(posedge clk) x <= x;
endmodule`
	n, err := ElaborateString(src, "i")
	if err != nil {
		t.Fatal(err)
	}
	inits := map[string]aig.Init{}
	for _, l := range n.Latches {
		base := l.Name
		if j := strings.IndexByte(base, '['); j >= 0 {
			base = base[:j]
		}
		inits[base+l.Name[strings.IndexByte(l.Name, '['):]] = l.Init
	}
	h := newHarness(t, src, "i")
	if h.latch("r") != 9 {
		t.Fatalf("initializer lost: %d", h.latch("r"))
	}
	sawX := false
	for _, l := range n.Latches {
		if strings.HasPrefix(l.Name, "x[") && l.Init == aig.InitX {
			sawX = true
		}
	}
	if !sawX {
		t.Fatalf("arbitrary attribute ignored")
	}
}

func TestNonAnsiPorts(t *testing.T) {
	src := `
module old(clk, a, y);
  input clk;
  input [3:0] a;
  output [3:0] y;
  assign y = a + 4'd1;
  reg [3:0] r;
  always @(posedge clk) r <= y;
endmodule`
	h := newHarness(t, src, "old")
	h.set("a", 6)
	h.step()
	if h.latch("r") != 7 {
		t.Fatalf("non-ANSI ports wrong: %d", h.latch("r"))
	}
}

func TestCaseWithMultipleLabels(t *testing.T) {
	src := `
module ml(input clk, input [2:0] x);
  reg hit;
  always @(posedge clk) begin
    case (x)
      3'd1, 3'd3, 3'd5, 3'd7: hit <= 1'b1;
      default: hit <= 1'b0;
    endcase
  end
endmodule`
	h := newHarness(t, src, "ml")
	for v := uint64(0); v < 8; v++ {
		h.set("x", v)
		h.step()
		want := uint64(0)
		if v%2 == 1 {
			want = 1
		}
		if got := h.latch("hit"); got != want {
			t.Fatalf("x=%d: hit=%d want %d", v, got, want)
		}
	}
}

func TestCasePriorityFirstArmWins(t *testing.T) {
	// Overlapping labels: the first matching arm must win.
	src := `
module pr(input clk, input [1:0] x);
  reg [1:0] y;
  always @(posedge clk) begin
    case (x)
      2'd1: y <= 2'd1;
      2'd1: y <= 2'd2;  // dead arm
      default: y <= 2'd3;
    endcase
  end
endmodule`
	h := newHarness(t, src, "pr")
	h.set("x", 1)
	h.step()
	if got := h.latch("y"); got != 1 {
		t.Fatalf("first arm must win: got %d", got)
	}
}

func TestUnconnectedChildInputBecomesFree(t *testing.T) {
	src := `
module child(input [3:0] a, output [3:0] y);
  assign y = a;
endmodule
module top(input clk);
  wire [3:0] w;
  child u(.y(w));
  reg [3:0] r;
  always @(posedge clk) r <= w;
endmodule`
	n, err := ElaborateString(src, "top")
	if err != nil {
		t.Fatal(err)
	}
	// The dangling child input becomes 4 free primary inputs (plus clk).
	if got := len(n.Inputs); got != 5 {
		t.Fatalf("inputs=%d want 5", got)
	}
}

func TestReductionAndRepeatWithParams(t *testing.T) {
	src := `
module rp #(parameter W = 5) (input clk, input [W-1:0] a);
  wire allones = &a;
  wire [W-1:0] splat = {W{allones}};
  reg [W-1:0] r;
  always @(posedge clk) r <= splat;
endmodule`
	h := newHarness(t, src, "rp")
	h.set("a", 31)
	h.step()
	if got := h.latch("r"); got != 31 {
		t.Fatalf("splat wrong: %d", got)
	}
	h.set("a", 30)
	h.step()
	if got := h.latch("r"); got != 0 {
		t.Fatalf("splat of 0 wrong: %d", got)
	}
}

func TestLocalparamAndParamOverride(t *testing.T) {
	src := `
module lp #(parameter N = 2) (input clk);
  localparam DOUBLE = N * 2;
  reg [7:0] r;
  always @(posedge clk) r <= DOUBLE;
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ElaborateWithParams(f, "lp", map[string]uint64{"N": 5})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(n)
	s.Step(nil)
	s.Begin(nil)
	var bits []aig.Lit
	for _, l := range n.Latches {
		bits = append(bits, aig.MkLit(l.Node, false))
	}
	if got := s.EvalVec(bits); got != 10 {
		t.Fatalf("localparam with override wrong: %d", got)
	}
}

func TestDeepHierarchy(t *testing.T) {
	src := `
module leaf(input [3:0] a, output [3:0] y);
  assign y = a + 4'd1;
endmodule
module mid(input [3:0] a, output [3:0] y);
  wire [3:0] t;
  leaf u1(.a(a), .y(t));
  leaf u2(.a(t), .y(y));
endmodule
module top(input clk, input [3:0] a);
  wire [3:0] y;
  mid m(.a(a), .y(y));
  reg [3:0] r;
  always @(posedge clk) r <= y;
endmodule`
	h := newHarness(t, src, "top")
	h.set("a", 5)
	h.step()
	if got := h.latch("r"); got != 7 {
		t.Fatalf("hierarchy result %d want 7", got)
	}
}

func TestRecursiveInstantiationRejected(t *testing.T) {
	src := `
module loop(input a);
  loop u(.a(a));
endmodule`
	if _, err := ElaborateString(src, "loop"); err == nil {
		t.Fatalf("recursive instantiation must be rejected")
	}
}

func TestDivModConstantOnly(t *testing.T) {
	src := `
module dm(input clk);
  localparam Q = 17 / 5;
  localparam R = 17 % 5;
  reg [7:0] q, r;
  always @(posedge clk) begin
    q <= Q;
    r <= R;
  end
endmodule`
	h := newHarness(t, src, "dm")
	h.step()
	if h.latch("q") != 3 || h.latch("r") != 2 {
		t.Fatalf("const div/mod wrong: %d %d", h.latch("q"), h.latch("r"))
	}
	// Non-constant division must be rejected.
	bad := `
module dm2(input clk, input [3:0] a, input [3:0] b);
  reg [3:0] r;
  always @(posedge clk) r <= a / b;
endmodule`
	if _, err := ElaborateString(bad, "dm2"); err == nil {
		t.Fatalf("non-constant division must be rejected")
	}
}

func TestVariableBitSelectRead(t *testing.T) {
	src := `
module vb(input clk, input [7:0] data, input [2:0] idx);
  reg bitr;
  always @(posedge clk) bitr <= data[idx];
endmodule`
	h := newHarness(t, src, "vb")
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 50; i++ {
		dv := rng.Uint64() & 0xff
		iv := rng.Uint64() & 7
		h.set("data", dv)
		h.set("idx", iv)
		h.step()
		if got := h.latch("bitr"); got != dv>>iv&1 {
			t.Fatalf("data[%d] of %#x: got %d", iv, dv, got)
		}
	}
}

func TestMultipleMemoriesInOneModule(t *testing.T) {
	src := `
module mm(input clk, input we, input [1:0] a, input [3:0] d);
  (* init = "zero" *) reg [3:0] m1 [3:0];
  (* init = "zero" *) reg [3:0] m2 [3:0];
  always @(posedge clk) begin
    if (we) begin
      m1[a] <= d;
      m2[a] <= ~d;
    end
  end
  reg [3:0] r1, r2;
  always @(posedge clk) begin
    r1 <= m1[a];
    r2 <= m2[a];
  end
endmodule`
	n, err := ElaborateString(src, "mm")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Memories) != 2 {
		t.Fatalf("expected 2 memories, got %d", len(n.Memories))
	}
	h := newHarness(t, src, "mm")
	h.set("we", 1)
	h.set("a", 2)
	h.set("d", 5)
	h.step() // write
	h.step() // read back
	if h.latch("r1") != 5 || h.latch("r2") != 10 {
		t.Fatalf("dual-memory readback wrong: %d %d", h.latch("r1"), h.latch("r2"))
	}
}
