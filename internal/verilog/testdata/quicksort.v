// Iterative quicksort machine, as in the DATE'05 EMM paper's case study
// ("We implemented a quick sort algorithm using Verilog HDL. ... We
// implemented the array as a memory module ... the stack (for recursive
// function calls) also as a memory module").
//
// Lomuto partitioning; the left partition is processed immediately and the
// right partition is pushed onto the recursion stack. The array has
// arbitrary initial contents. After sorting, a checker reads back elements
// 0 and 1.
//
// Properties:
//   P1 "sorted01":   at CHECKED, arr[0] <= arr[1].
//   P2 "stack-disc": right after a pop, control is back at PCHECK with a
//                    well-formed range (lo <= hi <= N-1).
module quicksort #(parameter N = 3, parameter AW = 3, parameter DW = 4, parameter SW = 3)
                  (input clk);

  localparam S_INIT     = 0;
  localparam S_PCHECK   = 1;
  localparam S_PINIT    = 2;
  localparam S_PLOOP    = 3;
  localparam S_SWAPRD   = 4;
  localparam S_SWAPWR   = 5;
  localparam S_FINRD    = 6;
  localparam S_FINWR    = 7;
  localparam S_RECURSE  = 8;
  localparam S_POPCHECK = 9;
  localparam S_POP      = 10;
  localparam S_CHECK0   = 11;
  localparam S_CHECK1   = 12;
  localparam S_CHECKED  = 13;

  // The array under sort: arbitrary initial contents (the default).
  reg [DW-1:0] arr [(1<<AW)-1:0];
  // The recursion stack: {hi, lo} pairs.
  reg [2*AW-1:0] stk [(1<<SW)-1:0];

  reg [3:0]    state;
  reg [3:0]    prev;
  reg [AW-1:0] lo, hi, i, j, p;
  reg [DW-1:0] pivot, tmp, chkA, chkB;
  reg [SW:0]   sp;

  // Single shared read port for the array, addressed by state.
  reg [AW-1:0] raddr;
  always @(*) begin
    case (state)
      S_PINIT:  raddr = hi;
      S_PLOOP:  raddr = j;
      S_SWAPRD: raddr = i;
      S_FINRD:  raddr = i;
      S_CHECK1: raddr = 1'b1;
      default:  raddr = {AW{1'b0}};
    endcase
  end
  wire [DW-1:0] rdata = arr[raddr];

  // Stack read port (top of stack).
  wire [SW-1:0]   spTop = sp[SW-1:0] - 1'b1;
  wire [2*AW-1:0] srd   = stk[spTop];

  always @(posedge clk) begin
    prev <= state;
    case (state)
      S_INIT: begin
        lo    <= {AW{1'b0}};
        hi    <= N - 1;
        state <= S_PCHECK;
      end
      S_PCHECK: state <= (lo < hi) ? S_PINIT : S_POPCHECK;
      S_PINIT: begin
        pivot <= rdata;
        i     <= lo;
        j     <= lo;
        state <= S_PLOOP;
      end
      S_PLOOP: begin
        if (j == hi)
          state <= S_FINRD;
        else if (rdata <= pivot) begin
          tmp   <= rdata;
          state <= S_SWAPRD;
        end else
          j <= j + 1'b1;
      end
      S_SWAPRD: begin
        arr[j] <= rdata;          // arr[j] <- arr[i]
        state  <= S_SWAPWR;
      end
      S_SWAPWR: begin
        arr[i] <= tmp;            // arr[i] <- old arr[j]
        i      <= i + 1'b1;
        j      <= j + 1'b1;
        state  <= S_PLOOP;
      end
      S_FINRD: begin
        arr[hi] <= rdata;         // arr[hi] <- arr[i]
        state   <= S_FINWR;
      end
      S_FINWR: begin
        arr[i] <= pivot;          // arr[i] <- pivot
        p      <= i;
        state  <= S_RECURSE;
      end
      S_RECURSE: begin
        if (p < hi) begin         // push the right partition
          stk[sp[SW-1:0]] <= {hi, p + 1'b1};
          sp              <= sp + 1'b1;
        end
        if (lo < p) begin         // descend into the left partition
          hi    <= p - 1'b1;
          state <= S_PCHECK;
        end else
          state <= S_POPCHECK;
      end
      S_POPCHECK: state <= (sp == 0) ? S_CHECK0 : S_POP;
      S_POP: begin
        lo    <= srd[AW-1:0];
        hi    <= srd[2*AW-1:AW];
        sp    <= sp - 1'b1;
        state <= S_PCHECK;
      end
      S_CHECK0: begin
        chkA  <= rdata;           // arr[0]
        state <= S_CHECK1;
      end
      S_CHECK1: begin
        chkB  <= rdata;           // arr[1]
        state <= S_CHECKED;
      end
      default: state <= state;    // CHECKED: terminal
    endcase
  end

  assert(state != S_CHECKED || chkA <= chkB, "P1-sorted01");
  assert(prev != S_POP || (state == S_PCHECK && lo <= hi && hi <= N - 1),
         "P2-stack-discipline");
endmodule
