package verilog

// The abstract syntax tree for the supported subset.

// SourceFile is a collection of modules.
type SourceFile struct {
	Modules []*Module
}

// Module is one module declaration.
type Module struct {
	Name   string
	Ports  []*Decl // ANSI-style port declarations, in order
	Params []*Param
	Items  []Item
	Line   int
}

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	DirNone PortDir = iota
	DirInput
	DirOutput
)

// Decl declares a wire, reg, or memory.
type Decl struct {
	Dir     PortDir
	IsReg   bool
	Name    string
	MSB     Expr // nil for scalar
	LSB     Expr
	AMSB    Expr // memory address range (nil unless array)
	ALSB    Expr
	Init    Expr   // optional "= const" initializer (regs)
	MemAttr string // "" | "zero" | "arbitrary" from (* init = "..." *)
	Line    int
}

// Param is a parameter or localparam.
type Param struct {
	Name  string
	Value Expr
	Local bool
	Line  int
}

// Item is a module body item.
type Item interface{ itemNode() }

// Assign is a continuous assignment.
type Assign struct {
	LHS  *LValue
	RHS  Expr
	Line int
}

// AlwaysFF is "always @(posedge clk) stmt".
type AlwaysFF struct {
	Clock string
	Body  Stmt
	Line  int
}

// AlwaysComb is "always @(*) stmt".
type AlwaysComb struct {
	Body Stmt
	Line int
}

// AssertItem is a module-level immediate assertion (a safety property).
type AssertItem struct {
	Cond Expr
	Name string
	Line int
}

// AssumeItem is a module-level assumption (environment constraint).
type AssumeItem struct {
	Cond Expr
	Line int
}

// Instance is a module instantiation.
type Instance struct {
	ModuleName string
	Name       string
	ParamOver  []Connection // #( .N(5) ) or positional
	Conns      []Connection
	Line       int
}

// Connection is one port or parameter connection.
type Connection struct {
	Name string // "" for positional
	Expr Expr   // nil for unconnected
}

func (*Assign) itemNode()     {}
func (*AlwaysFF) itemNode()   {}
func (*AlwaysComb) itemNode() {}
func (*AssertItem) itemNode() {}
func (*AssumeItem) itemNode() {}
func (*Instance) itemNode()   {}
func (*Decl) itemNode()       {}
func (*Param) itemNode()      {}

// Stmt is a procedural statement.
type Stmt interface{ stmtNode() }

// Block is begin/end.
type Block struct {
	Stmts []Stmt
}

// NBAssign is a non-blocking assignment (clocked processes).
type NBAssign struct {
	LHS  *LValue
	RHS  Expr
	Line int
}

// BAssign is a blocking assignment (combinational processes).
type BAssign struct {
	LHS  *LValue
	RHS  Expr
	Line int
}

// If is if/else.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// Case is case/endcase. Each arm may have several label expressions.
type Case struct {
	Subject Expr
	Arms    []CaseArm
	Default Stmt // may be nil
	Line    int
}

// CaseArm is one labeled arm.
type CaseArm struct {
	Labels []Expr
	Body   Stmt
}

// NullStmt is ";".
type NullStmt struct{}

func (*Block) stmtNode()    {}
func (*NBAssign) stmtNode() {}
func (*BAssign) stmtNode()  {}
func (*If) stmtNode()       {}
func (*Case) stmtNode()     {}
func (*NullStmt) stmtNode() {}

// LValue is an assignment target: name, name[idx] (bit or memory word), or
// name[msb:lsb].
type LValue struct {
	Name string
	// Index is non-nil for "name[Index]"; for memories this selects the
	// word, for vectors the bit.
	Index Expr
	// MSB/LSB are non-nil for a part select "name[MSB:LSB]".
	MSB, LSB Expr
	Line     int
}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Ident references a net, variable, or parameter.
type Ident struct {
	Name string
	Line int
}

// Number is a literal; Width 0 means unsized.
type Number struct {
	Value uint64
	Width int
	Line  int
}

// Unary is a prefix operator: ~ ! - & | ^ (reductions).
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is an infix operator.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
	Line             int
}

// Index is x[i] — bit select or memory read.
type Index struct {
	X    Expr // must be an Ident in this subset
	I    Expr
	Line int
}

// Slice is x[msb:lsb].
type Slice struct {
	X        Expr // must be an Ident
	MSB, LSB Expr
	Line     int
}

// Concat is {a, b, ...} (first element in the MSBs, per Verilog).
type Concat struct {
	Parts []Expr
	Line  int
}

// Repeat is {n{x}}.
type Repeat struct {
	Count Expr
	X     Expr
	Line  int
}

func (*Ident) exprNode()   {}
func (*Number) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Ternary) exprNode() {}
func (*Index) exprNode()   {}
func (*Slice) exprNode()   {}
func (*Concat) exprNode()  {}
func (*Repeat) exprNode()  {}
