package verilog

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// evalFF elaborates a clocked process: non-blocking assignments become
// per-bit next-state muxes (later statements override earlier ones, as the
// scheduling semantics demand), and assignments to memory words become
// write ports in statement order (so the eq. 4 chain's higher-port-wins
// tie-break coincides with "last non-blocking assignment wins").
func (e *elaborator) evalFF(sc *scope, blk *AlwaysFF) error {
	next := make(map[string]rtl.Vec)
	if err := e.walkFF(sc, blk.Body, aig.True, next); err != nil {
		return err
	}
	for name, v := range next {
		nn := sc.nets[name]
		if nn.ffDriven {
			return fmt.Errorf("verilog: %q assigned from multiple clocked processes", name)
		}
		nn.ffDriven = true
		nn.reg.SetNext(v)
	}
	return nil
}

func (e *elaborator) walkFF(sc *scope, s Stmt, cond aig.Lit, next map[string]rtl.Vec) error {
	m := e.m
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			if err := e.walkFF(sc, sub, cond, next); err != nil {
				return err
			}
		}
		return nil
	case *NullStmt:
		return nil
	case *BAssign:
		return fmt.Errorf("line %d: blocking assignment in a clocked process (use <=)", st.Line)
	case *NBAssign:
		return e.ffAssign(sc, st, cond, next)
	case *If:
		c, err := e.eval(sc, st.Cond)
		if err != nil {
			return err
		}
		cb := m.NonZero(c)
		if err := e.walkFF(sc, st.Then, m.N.And(cond, cb), next); err != nil {
			return err
		}
		if st.Else != nil {
			return e.walkFF(sc, st.Else, m.N.And(cond, cb.Not()), next)
		}
		return nil
	case *Case:
		subj, err := e.eval(sc, st.Subject)
		if err != nil {
			return err
		}
		prevMatch := aig.False
		for _, arm := range st.Arms {
			armHit := aig.False
			for _, lab := range arm.Labels {
				lv, err := e.eval(sc, lab)
				if err != nil {
					return err
				}
				w := maxInt(len(subj), len(lv))
				armHit = m.N.Or(armHit, m.Eq(adaptWidth(m, subj, w), adaptWidth(m, lv, w)))
			}
			take := m.N.Ands(cond, armHit, prevMatch.Not())
			if err := e.walkFF(sc, arm.Body, take, next); err != nil {
				return err
			}
			prevMatch = m.N.Or(prevMatch, armHit)
		}
		if st.Default != nil {
			return e.walkFF(sc, st.Default, m.N.And(cond, prevMatch.Not()), next)
		}
		return nil
	}
	return fmt.Errorf("verilog: unsupported statement in clocked process")
}

// ffAssign applies one non-blocking assignment under a path condition.
func (e *elaborator) ffAssign(sc *scope, st *NBAssign, cond aig.Lit, next map[string]rtl.Vec) error {
	m := e.m
	// Memory word write.
	if mem := sc.mems[st.LHS.Name]; mem != nil {
		if st.LHS.Index == nil {
			return fmt.Errorf("line %d: memory %q assigned without an index", st.Line, st.LHS.Name)
		}
		addr, err := e.eval(sc, st.LHS.Index)
		if err != nil {
			return err
		}
		data, err := e.eval(sc, st.RHS)
		if err != nil {
			return err
		}
		mem.mem.Write(adaptWidth(m, addr, mem.aw),
			adaptWidth(m, data, mem.decl.width(e, sc)), cond)
		return nil
	}
	nn := sc.nets[st.LHS.Name]
	if nn == nil {
		return fmt.Errorf("line %d: assignment to undeclared %q", st.Line, st.LHS.Name)
	}
	if nn.reg == nil {
		return fmt.Errorf("line %d: %q is not a clocked reg", st.Line, st.LHS.Name)
	}
	cur, ok := next[st.LHS.Name]
	if !ok {
		cur = append(rtl.Vec(nil), nn.reg.Q...)
	}
	rhs, err := e.eval(sc, st.RHS)
	if err != nil {
		return err
	}
	switch {
	case st.LHS.MSB != nil:
		msb, err := e.constEval(sc, st.LHS.MSB)
		if err != nil {
			return err
		}
		lsb, err := e.constEval(sc, st.LHS.LSB)
		if err != nil {
			return err
		}
		lo, hi := int(lsb)-nn.lsb, int(msb)-nn.lsb
		if lo < 0 || hi >= len(cur) || lo > hi {
			return fmt.Errorf("line %d: part select [%d:%d] out of range", st.Line, msb, lsb)
		}
		rhs = adaptWidth(m, rhs, hi-lo+1)
		for i := lo; i <= hi; i++ {
			cur[i] = m.N.Mux(cond, rhs[i-lo], cur[i])
		}
	case st.LHS.Index != nil:
		if ci, cerr := e.constEval(sc, st.LHS.Index); cerr == nil {
			bit := int(ci) - nn.lsb
			if bit < 0 || bit >= len(cur) {
				return fmt.Errorf("line %d: bit index %d out of range", st.Line, ci)
			}
			cur[bit] = m.N.Mux(cond, adaptWidth(m, rhs, 1)[0], cur[bit])
		} else {
			idx, err := e.eval(sc, st.LHS.Index)
			if err != nil {
				return err
			}
			if nn.lsb != 0 {
				idx = m.Sub(idx, m.Const(len(idx), uint64(nn.lsb)))
			}
			bitv := adaptWidth(m, rhs, 1)[0]
			for i := range cur {
				if len(idx) < 64 && uint64(i) >= 1<<uint(len(idx)) {
					break // unreachable by this index width
				}
				hit := m.N.And(cond, m.EqConst(idx, uint64(i)))
				cur[i] = m.N.Mux(hit, bitv, cur[i])
			}
		}
	default:
		rhs = adaptWidth(m, rhs, len(cur))
		for i := range cur {
			cur[i] = m.N.Mux(cond, rhs[i], cur[i])
		}
	}
	next[st.LHS.Name] = cur
	return nil
}

// width is a small helper on Decl reading the elaborated width.
func (d *Decl) width(e *elaborator, sc *scope) int {
	w, _, err := e.declWidth(sc, d)
	if err != nil {
		return 1
	}
	return w
}

// evalComb symbolically executes a combinational process with blocking
// assignments, returning the final value environment. Each driven target
// must be assigned on every control path (no latch inference).
func (e *elaborator) evalComb(sc *scope, blk *AlwaysComb) (map[string]rtl.Vec, error) {
	env := &evalEnv{
		vals:    make(map[string]rtl.Vec),
		targets: make(map[string]bool),
	}
	for _, t := range stmtTargets(blk.Body) {
		env.targets[t] = true
	}
	if err := e.walkComb(sc, blk.Body, env); err != nil {
		return nil, err
	}
	return env.vals, nil
}

func (e *elaborator) walkComb(sc *scope, s Stmt, env *evalEnv) error {
	m := e.m
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			if err := e.walkComb(sc, sub, env); err != nil {
				return err
			}
		}
		return nil
	case *NullStmt:
		return nil
	case *NBAssign:
		return fmt.Errorf("line %d: non-blocking assignment in always@(*) (use =)", st.Line)
	case *BAssign:
		nn := sc.nets[st.LHS.Name]
		if nn == nil {
			return fmt.Errorf("line %d: assignment to undeclared %q", st.Line, st.LHS.Name)
		}
		if st.LHS.Index != nil || st.LHS.MSB != nil {
			return fmt.Errorf("line %d: partial assignment in always@(*) is not supported", st.Line)
		}
		rhs, err := e.evalCtx(sc, st.RHS, env)
		if err != nil {
			return err
		}
		env.vals[st.LHS.Name] = adaptWidth(m, rhs, nn.width)
		return nil
	case *If:
		c, err := e.evalCtx(sc, st.Cond, env)
		if err != nil {
			return err
		}
		cb := m.NonZero(c)
		thenEnv := env.clone()
		if err := e.walkComb(sc, st.Then, thenEnv); err != nil {
			return err
		}
		elseEnv := env.clone()
		if st.Else != nil {
			if err := e.walkComb(sc, st.Else, elseEnv); err != nil {
				return err
			}
		}
		mergeEnv(m, env, cb, thenEnv, elseEnv)
		return nil
	case *Case:
		subj, err := e.evalCtx(sc, st.Subject, env)
		if err != nil {
			return err
		}
		// Lower the case to a chain of ifs over cloned environments.
		prevMatch := aig.False
		branchEnvs := make([]*evalEnv, 0, len(st.Arms)+1)
		branchConds := make([]aig.Lit, 0, len(st.Arms))
		for _, arm := range st.Arms {
			armHit := aig.False
			for _, lab := range arm.Labels {
				lv, err := e.evalCtx(sc, lab, env)
				if err != nil {
					return err
				}
				w := maxInt(len(subj), len(lv))
				armHit = m.N.Or(armHit, m.Eq(adaptWidth(m, subj, w), adaptWidth(m, lv, w)))
			}
			take := m.N.And(armHit, prevMatch.Not())
			prevMatch = m.N.Or(prevMatch, armHit)
			be := env.clone()
			if err := e.walkComb(sc, arm.Body, be); err != nil {
				return err
			}
			branchEnvs = append(branchEnvs, be)
			branchConds = append(branchConds, take)
		}
		defEnv := env.clone()
		if st.Default != nil {
			if err := e.walkComb(sc, st.Default, defEnv); err != nil {
				return err
			}
		}
		// Merge from the default upward so earlier arms take priority.
		acc := defEnv
		for i := len(branchEnvs) - 1; i >= 0; i-- {
			merged := env.clone()
			mergeEnv(m, merged, branchConds[i], branchEnvs[i], acc)
			acc = merged
		}
		env.vals = acc.vals
		return nil
	}
	return fmt.Errorf("verilog: unsupported statement in always@(*)")
}

func (env *evalEnv) clone() *evalEnv {
	out := &evalEnv{vals: make(map[string]rtl.Vec, len(env.vals)), targets: env.targets}
	for k, v := range env.vals {
		out.vals[k] = v
	}
	return out
}

// mergeEnv merges two branch environments under a condition into dst:
// values assigned in both (or backed by a pre-branch value) mux together;
// values assigned on only one path with no prior value are dropped, which
// later surfaces as an incomplete-assignment error if the target is read
// or drives a net.
func mergeEnv(m *rtl.Module, dst *evalEnv, cond aig.Lit, thenEnv, elseEnv *evalEnv) {
	names := make(map[string]bool)
	for k := range thenEnv.vals {
		names[k] = true
	}
	for k := range elseEnv.vals {
		names[k] = true
	}
	for k := range names {
		tv, tok := thenEnv.vals[k]
		ev, eok := elseEnv.vals[k]
		switch {
		case tok && eok:
			w := maxInt(len(tv), len(ev))
			dst.vals[k] = m.MuxV(cond, adaptWidth(m, tv, w), adaptWidth(m, ev, w))
		case tok:
			if prev, ok := dst.vals[k]; ok {
				dst.vals[k] = m.MuxV(cond, adaptWidth(m, tv, len(prev)), prev)
			} else {
				delete(dst.vals, k)
			}
		case eok:
			if prev, ok := dst.vals[k]; ok {
				dst.vals[k] = m.MuxV(cond, prev, adaptWidth(m, ev, len(prev)))
			} else {
				delete(dst.vals, k)
			}
		}
	}
}
