package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a source file containing one or more modules.
func Parse(src string) (*SourceFile, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	file := &SourceFile{}
	for !p.at(tokEOF, "") {
		m, err := p.module()
		if err != nil {
			return nil, err
		}
		file.Modules = append(file.Modules, m)
	}
	if len(file.Modules) == 0 {
		return nil, fmt.Errorf("verilog: no modules found")
	}
	return file, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.cur(); p.pos++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("<%d>", k)
	}
	return t, fmt.Errorf("line %d: expected %q, found %q", t.line, want, t.text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: "+format, append([]interface{}{p.cur().line}, args...)...)
}

// module parses one module declaration.
func (p *parser) module() (*Module, error) {
	t, err := p.expect(tokIdent, "module")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name.text, Line: t.line}

	// Optional parameter port list: #(parameter N = 3, ...)
	if p.accept(tokPunct, "#") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		for {
			p.accept(tokIdent, "parameter")
			pn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &Param{Name: pn.text, Value: val, Line: pn.line})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}

	// Port list.
	if p.accept(tokPunct, "(") {
		if !p.accept(tokPunct, ")") {
			lastDir, lastReg := DirNone, false
			for {
				d, err := p.portDecl(&lastDir, &lastReg)
				if err != nil {
					return nil, err
				}
				m.Ports = append(m.Ports, d)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}

	// Body items until endmodule.
	for !p.accept(tokIdent, "endmodule") {
		if p.at(tokEOF, "") {
			return nil, p.errf("missing endmodule for %q", m.Name)
		}
		items, err := p.item()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	return m, nil
}

// portDecl parses one ANSI port entry; bare identifiers inherit the
// previous direction/reg-ness (Verilog list semantics).
func (p *parser) portDecl(lastDir *PortDir, lastReg *bool) (*Decl, error) {
	d := &Decl{Line: p.cur().line}
	switch {
	case p.accept(tokIdent, "input"):
		d.Dir = DirInput
		*lastReg = false
	case p.accept(tokIdent, "output"):
		d.Dir = DirOutput
		*lastReg = false
	default:
		d.Dir = *lastDir
		d.IsReg = *lastReg
		// Bare identifier (non-ANSI or inherited).
		nm, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d.Name = nm.text
		return d, nil
	}
	*lastDir = d.Dir
	if p.accept(tokIdent, "reg") || p.accept(tokIdent, "wire") {
		d.IsReg = p.toks[p.pos-1].text == "reg"
		*lastReg = d.IsReg
	}
	if err := p.optRange(&d.MSB, &d.LSB); err != nil {
		return nil, err
	}
	nm, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d.Name = nm.text
	return d, nil
}

// optRange parses an optional [msb:lsb].
func (p *parser) optRange(msb, lsb *Expr) error {
	if !p.accept(tokPunct, "[") {
		return nil
	}
	hi, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return err
	}
	lo, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return err
	}
	*msb, *lsb = hi, lo
	return nil
}

// item parses one module body item (declarations may declare several
// names, hence the slice).
func (p *parser) item() ([]Item, error) {
	// Attribute instance (only "init" is interpreted).
	attr := ""
	if p.accept(tokPunct, "(*") {
		an, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		av, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "*)"); err != nil {
			return nil, err
		}
		if an.text == "init" {
			attr = av.text
		}
	}

	t := p.cur()
	switch {
	case p.at(tokIdent, "input") || p.at(tokIdent, "output") ||
		p.at(tokIdent, "wire") || p.at(tokIdent, "reg"):
		return p.declItem(attr)
	case p.accept(tokIdent, "parameter") || p.accept(tokIdent, "localparam"):
		local := p.toks[p.pos-1].text == "localparam"
		var out []Item
		for {
			nm, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			out = append(out, &Param{Name: nm.text, Value: val, Local: local, Line: nm.line})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return out, nil
	case p.accept(tokIdent, "assign"):
		lhs, err := p.lvalue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return []Item{&Assign{LHS: lhs, RHS: rhs, Line: t.line}}, nil
	case p.accept(tokIdent, "always"):
		return p.alwaysItem(t.line)
	case p.accept(tokIdent, "assert"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		name := ""
		if p.accept(tokPunct, ",") {
			s, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			name = s.text
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return []Item{&AssertItem{Cond: cond, Name: name, Line: t.line}}, nil
	case p.accept(tokIdent, "assume"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return []Item{&AssumeItem{Cond: cond, Line: t.line}}, nil
	case t.kind == tokIdent:
		// Module instantiation: modname [#(...)] instname ( ... );
		return p.instanceItem()
	}
	return nil, p.errf("unexpected token %q in module body", t.text)
}

func (p *parser) declItem(attr string) ([]Item, error) {
	proto := &Decl{Line: p.cur().line, MemAttr: attr}
	if p.accept(tokIdent, "input") {
		proto.Dir = DirInput
	} else if p.accept(tokIdent, "output") {
		proto.Dir = DirOutput
	}
	if p.accept(tokIdent, "reg") {
		proto.IsReg = true
	} else {
		p.accept(tokIdent, "wire")
	}
	if err := p.optRange(&proto.MSB, &proto.LSB); err != nil {
		return nil, err
	}
	var out []Item
	for {
		nm, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := *proto
		d.Name = nm.text
		d.Line = nm.line
		// Optional memory dimension.
		if err := p.optRange(&d.AMSB, &d.ALSB); err != nil {
			return nil, err
		}
		// Optional initializer.
		if p.accept(tokPunct, "=") {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		out = append(out, &d)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) alwaysItem(line int) ([]Item, error) {
	if _, err := p.expect(tokPunct, "@"); err != nil {
		return nil, err
	}
	// "@(*)" lexes as "(*" ")" — the attribute-open token — while
	// "@( * )" lexes as "(" "*" ")"; accept both spellings.
	star := p.accept(tokPunct, "(*")
	if !star {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		star = p.accept(tokPunct, "*")
	}
	if star {
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return []Item{&AlwaysComb{Body: body, Line: line}}, nil
	}
	if _, err := p.expect(tokIdent, "posedge"); err != nil {
		return nil, err
	}
	clk, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Item{&AlwaysFF{Clock: clk.text, Body: body, Line: line}}, nil
}

func (p *parser) instanceItem() ([]Item, error) {
	mod, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	inst := &Instance{ModuleName: mod.text, Line: mod.line}
	if p.accept(tokPunct, "#") {
		conns, err := p.connList()
		if err != nil {
			return nil, err
		}
		inst.ParamOver = conns
	}
	nm, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	inst.Name = nm.text
	conns, err := p.connList()
	if err != nil {
		return nil, err
	}
	inst.Conns = conns
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return []Item{inst}, nil
}

func (p *parser) connList() ([]Connection, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var out []Connection
	if p.accept(tokPunct, ")") {
		return out, nil
	}
	for {
		var c Connection
		if p.accept(tokPunct, ".") {
			nm, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			c.Name = nm.text
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			if !p.at(tokPunct, ")") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Expr = e
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Expr = e
		}
		out = append(out, c)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

// stmt parses a procedural statement.
func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.accept(tokIdent, "begin"):
		b := &Block{}
		for !p.accept(tokIdent, "end") {
			if p.at(tokEOF, "") {
				return nil, p.errf("missing end")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			b.Stmts = append(b.Stmts, s)
		}
		return b, nil
	case p.accept(tokIdent, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		node := &If{Cond: cond, Then: then, Line: t.line}
		if p.accept(tokIdent, "else") {
			els, err := p.stmt()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
		return node, nil
	case p.accept(tokIdent, "case") || p.accept(tokIdent, "casez"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		subj, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		node := &Case{Subject: subj, Line: t.line}
		for !p.accept(tokIdent, "endcase") {
			if p.at(tokEOF, "") {
				return nil, p.errf("missing endcase")
			}
			if p.accept(tokIdent, "default") {
				p.accept(tokPunct, ":")
				body, err := p.stmt()
				if err != nil {
					return nil, err
				}
				node.Default = body
				continue
			}
			var labels []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				labels = append(labels, e)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ":"); err != nil {
				return nil, err
			}
			body, err := p.stmt()
			if err != nil {
				return nil, err
			}
			node.Arms = append(node.Arms, CaseArm{Labels: labels, Body: body})
		}
		return node, nil
	case p.accept(tokPunct, ";"):
		return &NullStmt{}, nil
	default:
		lhs, err := p.lvalue()
		if err != nil {
			return nil, err
		}
		nonBlocking := false
		if p.accept(tokPunct, "<=") {
			nonBlocking = true
		} else if !p.accept(tokPunct, "=") {
			return nil, p.errf("expected assignment operator")
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if nonBlocking {
			return &NBAssign{LHS: lhs, RHS: rhs, Line: t.line}, nil
		}
		return &BAssign{LHS: lhs, RHS: rhs, Line: t.line}, nil
	}
}

// lvalue parses an assignment target.
func (p *parser) lvalue() (*LValue, error) {
	nm, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	lv := &LValue{Name: nm.text, Line: nm.line}
	if p.accept(tokPunct, "[") {
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.accept(tokPunct, ":") {
			lo, err := p.expr()
			if err != nil {
				return nil, err
			}
			lv.MSB, lv.LSB = first, lo
		} else {
			lv.Index = first
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	return lv, nil
}

// --- expressions (precedence climbing) ---

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) {
	e, err := p.binExpr(1)
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "?") {
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		els, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Ternary{Cond: e, Then: then, Else: els}, nil
	}
	return e, nil
}

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "~", "!", "-", "&", "|", "^":
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.text, X: x, Line: t.line}, nil
		}
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return parseNumber(t)
	case t.kind == tokIdent:
		p.next()
		var e Expr = &Ident{Name: t.text, Line: t.line}
		for p.accept(tokPunct, "[") {
			first, err := p.expr()
			if err != nil {
				return nil, err
			}
			if p.accept(tokPunct, ":") {
				lo, err := p.expr()
				if err != nil {
					return nil, err
				}
				e = &Slice{X: e, MSB: first, LSB: lo, Line: t.line}
			} else {
				e = &Index{X: e, I: first, Line: t.line}
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
		}
		return e, nil
	case p.accept(tokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept(tokPunct, "{"):
		// Concatenation or replication.
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.accept(tokPunct, "{") {
			inner, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "}"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "}"); err != nil {
				return nil, err
			}
			return &Repeat{Count: first, X: inner, Line: t.line}, nil
		}
		c := &Concat{Parts: []Expr{first}, Line: t.line}
		for p.accept(tokPunct, ",") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
		}
		if _, err := p.expect(tokPunct, "}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

// parseNumber decodes Verilog literals: 12, 8'hFF, 4'b10_10, 'd9.
func parseNumber(t token) (Expr, error) {
	text := strings.ReplaceAll(t.text, "_", "")
	quote := strings.IndexByte(text, '\'')
	if quote < 0 {
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q", t.line, t.text)
		}
		return &Number{Value: v, Width: 0, Line: t.line}, nil
	}
	width := 0
	if quote > 0 {
		w, err := strconv.Atoi(text[:quote])
		if err != nil || w <= 0 || w > 64 {
			return nil, fmt.Errorf("line %d: bad width in %q", t.line, t.text)
		}
		width = w
	}
	if quote+1 >= len(text) {
		return nil, fmt.Errorf("line %d: truncated literal %q", t.line, t.text)
	}
	base := 10
	switch text[quote+1] {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	}
	digits := text[quote+2:]
	if strings.ContainsAny(digits, "xXzZ") {
		return nil, fmt.Errorf("line %d: x/z literals are not supported (%q)", t.line, t.text)
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return nil, fmt.Errorf("line %d: bad literal %q", t.line, t.text)
	}
	if width > 0 && width < 64 {
		v &= 1<<uint(width) - 1
	}
	return &Number{Value: v, Width: width, Line: t.line}, nil
}
