// Package verilog is a frontend for a synthesizable Verilog subset,
// elaborating HDL text into the library's word-level netlists — the entry
// path the paper itself used ("We implemented a quick sort algorithm using
// Verilog HDL"). Supported constructs:
//
//   - module declarations with ANSI port lists, wire/reg declarations with
//     ranges, parameters and localparams;
//   - memory arrays ("reg [7:0] mem [0:1023];"), inferred as embedded
//     memory modules; an optional attribute "(* init = \"zero\" *)" (or
//     "arbitrary", the default) selects the initial-state model;
//   - continuous assignments;
//   - clocked processes "always @(posedge clk)" with non-blocking
//     assignments, if/else, case/casez with default, and begin/end blocks;
//   - combinational processes "always @(*)" with blocking assignments
//     (complete assignment required — inferred latches are an error);
//   - module instantiation (positional or named connections, parameter
//     overrides), elaborated by inlining;
//   - immediate "assert(expr);" / "assume(expr);" module items defining
//     safety properties and environment constraints;
//   - expressions: logical/bitwise/arithmetic/comparison operators,
//     bit and part selects, memory indexing, concatenation, replication,
//     reduction operators, the conditional operator, sized and unsized
//     constants.
//
// Width semantics are simplified relative to IEEE 1364: operands of binary
// operators are zero-extended to the wider width, assignments truncate or
// zero-extend to the target, and shift amounts must be constant.
package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // possibly sized: 8'hFF, 4'b1010, 12, 'd9
	tokPunct  // operators and punctuation
	tokString
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// punctuation, longest first so maximal munch works.
var puncts = []string{
	"<<<", ">>>",
	"<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "->",
	"(*", "*)",
	"(", ")", "[", "]", "{", "}", ";", ",", ":", "?", "=",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "@", "#", ".",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("line %d: unterminated block comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		case c == '"':
			end := l.pos + 1
			for end < len(l.src) && l.src[end] != '"' {
				if l.src[end] == '\n' {
					return nil, fmt.Errorf("line %d: unterminated string", l.line)
				}
				end++
			}
			if end >= len(l.src) {
				return nil, fmt.Errorf("line %d: unterminated string", l.line)
			}
			l.emit(tokString, l.src[l.pos+1:end])
			l.pos = end + 1
		case isIdentStart(rune(c)):
			end := l.pos
			for end < len(l.src) && isIdentChar(rune(l.src[end])) {
				end++
			}
			l.emit(tokIdent, l.src[l.pos:end])
			l.pos = end
		case unicode.IsDigit(rune(c)) || c == '\'':
			tok, err := l.lexNumber()
			if err != nil {
				return nil, err
			}
			l.emit(tokNumber, tok)
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(l.src[l.pos:], p) {
					l.emit(tokPunct, p)
					l.pos += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("line %d: unexpected character %q", l.line, c)
			}
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

// lexNumber consumes [size]'[base]digits or a plain decimal, including
// digits separated by underscores.
func (l *lexer) lexNumber() (string, error) {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '\'' {
		l.pos++
		if l.pos >= len(l.src) {
			return "", fmt.Errorf("line %d: truncated based literal", l.line)
		}
		base := l.src[l.pos]
		switch base {
		case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
			l.pos++
		default:
			return "", fmt.Errorf("line %d: bad number base %q", l.line, base)
		}
		for l.pos < len(l.src) && (isHexDigit(l.src[l.pos]) || l.src[l.pos] == '_' ||
			l.src[l.pos] == 'x' || l.src[l.pos] == 'X' || l.src[l.pos] == 'z' || l.src[l.pos] == 'Z') {
			l.pos++
		}
	}
	return l.src[start:l.pos], nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$' || r == '\\'
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}
