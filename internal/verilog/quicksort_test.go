package verilog

import (
	"math/rand"
	"os"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/designs"
	"emmver/internal/sim"
)

func loadQuicksort(t *testing.T, params map[string]uint64) *aig.Netlist {
	t.Helper()
	src, err := os.ReadFile("testdata/quicksort.v")
	if err != nil {
		t.Fatal(err)
	}
	file, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	n, err := ElaborateWithParams(file, "quicksort", params)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// stateBits finds the state register bus.
func stateBits(n *aig.Netlist) []aig.Lit {
	var bits []aig.Lit
	for _, l := range n.Latches {
		if len(l.Name) >= 6 && l.Name[:6] == "state[" {
			bits = append(bits, aig.MkLit(l.Node, false))
		}
	}
	return bits
}

// TestVerilogQuicksortSorts elaborates the HDL and simulates concrete
// sorts against the Go oracle.
func TestVerilogQuicksortSorts(t *testing.T) {
	const checked = 13
	n := loadQuicksort(t, nil) // N=3, AW=3, DW=4
	st := stateBits(n)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		s := sim.New(n)
		in := make([]uint64, 3)
		for i := range in {
			in[i] = rng.Uint64() & 0xf
			s.SetMemWord(0, i, in[i]) // arr is the first declared memory
		}
		done := false
		for c := 0; c < 2000; c++ {
			s.Begin(nil)
			if s.EvalVec(st) == checked {
				done = true
				break
			}
			s.Step(nil)
		}
		if !done {
			t.Fatalf("trial %d: did not finish", trial)
		}
		want := designs.ReferenceSort(in)
		for i := range want {
			if got := s.MemWord(0, i); got != want[i] {
				t.Fatalf("trial %d: input %v: arr[%d]=%d want %d", trial, in, i, got, want[i])
			}
		}
	}
}

// TestVerilogQuicksortAgreesWithGoDesign cross-checks the HDL machine
// against the hand-built rtl machine cycle by cycle (same inputs: none —
// both are autonomous; compare sorted results and cycle counts).
func TestVerilogQuicksortAgreesWithGoDesign(t *testing.T) {
	cfg := designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3}
	rng := rand.New(rand.NewSource(3))
	n := loadQuicksort(t, nil)
	st := stateBits(n)
	for trial := 0; trial < 10; trial++ {
		in := make([]uint64, 3)
		for i := range in {
			in[i] = rng.Uint64() & 0xf
		}
		q := designs.NewQuickSort(cfg)
		goSorted, goCycles, err := q.SimulateSort(in, 2000)
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(n)
		for i, v := range in {
			s.SetMemWord(0, i, v)
		}
		vCycles := -1
		for c := 0; c < 2000; c++ {
			s.Begin(nil)
			if s.EvalVec(st) == 13 {
				vCycles = c
				break
			}
			s.Step(nil)
		}
		if vCycles < 0 {
			t.Fatalf("verilog machine did not finish")
		}
		for i := range goSorted {
			if s.MemWord(0, i) != goSorted[i] {
				t.Fatalf("results differ for %v", in)
			}
		}
		if vCycles != goCycles {
			t.Fatalf("cycle counts differ: verilog %d vs go %d", vCycles, goCycles)
		}
	}
}

// TestVerilogQuicksortProofs proves P1 and P2 on the elaborated HDL with
// EMM — the paper's actual methodology end to end.
func TestVerilogQuicksortProofs(t *testing.T) {
	n := loadQuicksort(t, map[string]uint64{"N": 3, "AW": 2, "DW": 3, "SW": 2})
	if len(n.Memories) != 2 {
		t.Fatalf("expected arr and stk memories, got %d", len(n.Memories))
	}
	for pi, p := range n.Props {
		r := bmc.Check(n, pi, bmc.BMC3(150))
		if r.Kind != bmc.KindProof {
			t.Fatalf("property %q: expected proof, got %v", p.Name, r)
		}
	}
}

// TestVerilogQuicksortPBADropsArray runs the Table 2 flow on the HDL
// version: P2's proof obligation must shed the array memory.
func TestVerilogQuicksortPBADropsArray(t *testing.T) {
	n := loadQuicksort(t, map[string]uint64{"N": 3, "AW": 2, "DW": 3, "SW": 2})
	p2 := -1
	for pi, p := range n.Props {
		if p.Name == "P2-stack-discipline" {
			p2 = pi
		}
	}
	if p2 < 0 {
		t.Fatalf("P2 not found")
	}
	res := bmc.ProveWithPBA(n, p2, bmc.Options{MaxDepth: 150, UseEMM: true, StabilityDepth: 8})
	if res.Kind() != bmc.KindProof {
		t.Fatalf("expected proof, got %v", res.Kind())
	}
	if res.Abs.MemEnabled[0] {
		t.Fatalf("array memory should be abstracted: %s", res.Abs)
	}
	if !res.Abs.MemEnabled[1] {
		t.Fatalf("stack memory must be kept: %s", res.Abs)
	}
}
