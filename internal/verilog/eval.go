package verilog

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// constEval evaluates a compile-time constant expression (numbers,
// parameters, arithmetic).
func (e *elaborator) constEval(sc *scope, x Expr) (uint64, error) {
	switch v := x.(type) {
	case *Number:
		return v.Value, nil
	case *Ident:
		if p, ok := sc.params[v.Name]; ok {
			return p, nil
		}
		return 0, fmt.Errorf("line %d: %q is not a constant", v.Line, v.Name)
	case *Unary:
		a, err := e.constEval(sc, v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -a, nil
		case "~":
			return ^a, nil
		case "!":
			if a == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("line %d: operator %q not allowed in constants", v.Line, v.Op)
	case *Binary:
		a, err := e.constEval(sc, v.L)
		if err != nil {
			return 0, err
		}
		b, err := e.constEval(sc, v.R)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("line %d: constant division by zero", v.Line)
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, fmt.Errorf("line %d: constant modulo by zero", v.Line)
			}
			return a % b, nil
		case "<<":
			return a << (b & 63), nil
		case ">>":
			return a >> (b & 63), nil
		case "==":
			return b2u(a == b), nil
		case "!=":
			return b2u(a != b), nil
		case "<":
			return b2u(a < b), nil
		case "<=":
			return b2u(a <= b), nil
		case ">":
			return b2u(a > b), nil
		case ">=":
			return b2u(a >= b), nil
		case "&":
			return a & b, nil
		case "|":
			return a | b, nil
		case "^":
			return a ^ b, nil
		case "&&":
			return b2u(a != 0 && b != 0), nil
		case "||":
			return b2u(a != 0 || b != 0), nil
		}
		return 0, fmt.Errorf("line %d: operator %q not allowed in constants", v.Line, v.Op)
	case *Ternary:
		c, err := e.constEval(sc, v.Cond)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return e.constEval(sc, v.Then)
		}
		return e.constEval(sc, v.Else)
	}
	return 0, fmt.Errorf("verilog: expression is not constant")
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// evalEnv carries the blocking-assignment environment of a combinational
// process (nil outside of one).
type evalEnv struct {
	vals    map[string]rtl.Vec
	targets map[string]bool
}

// eval evaluates an expression outside any procedural context.
func (e *elaborator) eval(sc *scope, x Expr) (rtl.Vec, error) {
	return e.evalCtx(sc, x, nil)
}

func (e *elaborator) evalCtx(sc *scope, x Expr, env *evalEnv) (rtl.Vec, error) {
	m := e.m
	switch v := x.(type) {
	case *Number:
		w := v.Width
		if w == 0 {
			w = 32
			// Shrink plain constants minimally if huge; 32 matches the
			// Verilog default.
		}
		return m.Const(w, v.Value), nil
	case *Ident:
		if p, ok := sc.params[v.Name]; ok {
			return m.Const(32, p), nil
		}
		if env != nil {
			if val, ok := env.vals[v.Name]; ok {
				return val, nil
			}
			if env.targets[v.Name] {
				return nil, fmt.Errorf("line %d: %q read before assignment in always@(*)", v.Line, v.Name)
			}
		}
		nn := sc.nets[v.Name]
		if nn == nil {
			if sc.mems[v.Name] != nil {
				return nil, fmt.Errorf("line %d: memory %q used without an index", v.Line, v.Name)
			}
			return nil, fmt.Errorf("line %d: undeclared identifier %q", v.Line, v.Name)
		}
		return e.netValue(nn)
	case *Unary:
		a, err := e.evalCtx(sc, v.X, env)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "~":
			return m.NotV(a), nil
		case "!":
			return rtl.Vec{m.IsZero(a)}, nil
		case "-":
			return m.Sub(m.Const(len(a), 0), a), nil
		case "&":
			out := aig.True
			for _, b := range a {
				out = m.N.And(out, b)
			}
			return rtl.Vec{out}, nil
		case "|":
			return rtl.Vec{m.NonZero(a)}, nil
		case "^":
			out := aig.False
			for _, b := range a {
				out = m.N.Xor(out, b)
			}
			return rtl.Vec{out}, nil
		}
		return nil, fmt.Errorf("line %d: unsupported unary %q", v.Line, v.Op)
	case *Binary:
		return e.evalBinary(sc, v, env)
	case *Ternary:
		c, err := e.evalCtx(sc, v.Cond, env)
		if err != nil {
			return nil, err
		}
		a, err := e.evalCtx(sc, v.Then, env)
		if err != nil {
			return nil, err
		}
		b, err := e.evalCtx(sc, v.Else, env)
		if err != nil {
			return nil, err
		}
		w := maxInt(len(a), len(b))
		return m.MuxV(m.NonZero(c), adaptWidth(m, a, w), adaptWidth(m, b, w)), nil
	case *Index:
		id, ok := v.X.(*Ident)
		if !ok {
			return nil, fmt.Errorf("line %d: only plain names can be indexed", v.Line)
		}
		if mem := sc.mems[id.Name]; mem != nil {
			addr, err := e.evalCtx(sc, v.I, env)
			if err != nil {
				return nil, err
			}
			return mem.mem.Read(adaptWidth(m, addr, mem.aw), aig.True), nil
		}
		base, err := e.evalCtx(sc, id, env)
		if err != nil {
			return nil, err
		}
		nn := sc.nets[id.Name]
		lsbOff := 0
		if nn != nil {
			lsbOff = nn.lsb
		}
		if ci, cerr := e.constEval(sc, v.I); cerr == nil {
			bit := int(ci) - lsbOff
			if bit < 0 || bit >= len(base) {
				return nil, fmt.Errorf("line %d: bit index %d out of range for %q", v.Line, ci, id.Name)
			}
			return rtl.Vec{base[bit]}, nil
		}
		idx, err := e.evalCtx(sc, v.I, env)
		if err != nil {
			return nil, err
		}
		if lsbOff != 0 {
			idx = m.Sub(idx, m.Const(len(idx), uint64(lsbOff)))
		}
		return rtl.Vec{m.BitSelect(base, idx)}, nil
	case *Slice:
		id, ok := v.X.(*Ident)
		if !ok {
			return nil, fmt.Errorf("line %d: only plain names can be sliced", v.Line)
		}
		base, err := e.evalCtx(sc, id, env)
		if err != nil {
			return nil, err
		}
		msb, err := e.constEval(sc, v.MSB)
		if err != nil {
			return nil, err
		}
		lsb, err := e.constEval(sc, v.LSB)
		if err != nil {
			return nil, err
		}
		nn := sc.nets[id.Name]
		off := 0
		if nn != nil {
			off = nn.lsb
		}
		lo, hi := int(lsb)-off, int(msb)-off
		if lo < 0 || hi >= len(base) || lo > hi {
			return nil, fmt.Errorf("line %d: slice [%d:%d] out of range for %q", v.Line, msb, lsb, id.Name)
		}
		return m.Slice(base, lo, hi+1), nil
	case *Concat:
		// Verilog: first part is the most significant.
		var out rtl.Vec
		for i := len(v.Parts) - 1; i >= 0; i-- {
			p, err := e.evalCtx(sc, v.Parts[i], env)
			if err != nil {
				return nil, err
			}
			out = append(out, p...)
		}
		return out, nil
	case *Repeat:
		count, err := e.constEval(sc, v.Count)
		if err != nil {
			return nil, err
		}
		if count == 0 || count > 64 {
			return nil, fmt.Errorf("line %d: bad replication count %d", v.Line, count)
		}
		p, err := e.evalCtx(sc, v.X, env)
		if err != nil {
			return nil, err
		}
		var out rtl.Vec
		for i := uint64(0); i < count; i++ {
			out = append(out, p...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("verilog: unsupported expression")
}

func (e *elaborator) evalBinary(sc *scope, v *Binary, env *evalEnv) (rtl.Vec, error) {
	m := e.m
	a, err := e.evalCtx(sc, v.L, env)
	if err != nil {
		return nil, err
	}
	// Shifts: constant or variable amount.
	if v.Op == "<<" || v.Op == ">>" {
		if k, cerr := e.constEval(sc, v.R); cerr == nil {
			if v.Op == "<<" {
				return m.ShlConst(a, int(k)%64), nil
			}
			return m.ShrConst(a, int(k)%64), nil
		}
		sh, err := e.evalCtx(sc, v.R, env)
		if err != nil {
			return nil, err
		}
		if v.Op == "<<" {
			return m.ShlV(a, sh), nil
		}
		return m.ShrV(a, sh), nil
	}
	b, err := e.evalCtx(sc, v.R, env)
	if err != nil {
		return nil, err
	}
	w := maxInt(len(a), len(b))
	aw := adaptWidth(m, a, w)
	bw := adaptWidth(m, b, w)
	switch v.Op {
	case "+":
		return m.Add(aw, bw), nil
	case "-":
		return m.Sub(aw, bw), nil
	case "*":
		return m.Mul(aw, bw), nil
	case "/", "%":
		la, ea := e.constEval(sc, v.L)
		lb, eb := e.constEval(sc, v.R)
		if ea != nil || eb != nil {
			return nil, fmt.Errorf("line %d: %q requires constant operands", v.Line, v.Op)
		}
		if lb == 0 {
			return nil, fmt.Errorf("line %d: division by zero", v.Line)
		}
		if v.Op == "/" {
			return m.Const(w, la/lb), nil
		}
		return m.Const(w, la%lb), nil
	case "&":
		return m.AndV(aw, bw), nil
	case "|":
		return m.OrV(aw, bw), nil
	case "^":
		return m.XorV(aw, bw), nil
	case "==":
		return rtl.Vec{m.Eq(aw, bw)}, nil
	case "!=":
		return rtl.Vec{m.Ne(aw, bw)}, nil
	case "<":
		return rtl.Vec{m.Ult(aw, bw)}, nil
	case "<=":
		return rtl.Vec{m.Ule(aw, bw)}, nil
	case ">":
		return rtl.Vec{m.Ugt(aw, bw)}, nil
	case ">=":
		return rtl.Vec{m.Uge(aw, bw)}, nil
	case "&&":
		return rtl.Vec{m.N.And(m.NonZero(a), m.NonZero(b))}, nil
	case "||":
		return rtl.Vec{m.N.Or(m.NonZero(a), m.NonZero(b))}, nil
	}
	return nil, fmt.Errorf("line %d: unsupported operator %q", v.Line, v.Op)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
