package verilog

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// Elaborate compiles the given top module (and everything it instantiates)
// into a word-level netlist. The top module's input ports become primary
// inputs; assert/assume items become safety properties and environment
// constraints.
func Elaborate(file *SourceFile, top string) (*aig.Netlist, error) {
	mods := make(map[string]*Module)
	for _, m := range file.Modules {
		if mods[m.Name] != nil {
			return nil, fmt.Errorf("verilog: duplicate module %q", m.Name)
		}
		mods[m.Name] = m
	}
	tm := mods[top]
	if tm == nil {
		return nil, fmt.Errorf("verilog: top module %q not found", top)
	}
	e := &elaborator{
		m:    rtl.NewModule(top),
		mods: mods,
	}
	sc, err := e.declareScope(tm, "", nil, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := e.finalize(sc); err != nil {
		return nil, err
	}
	return e.m.N, nil
}

// ElaborateString parses and elaborates in one step.
func ElaborateString(src, top string) (*aig.Netlist, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Elaborate(f, top)
}

// ElaborateWithParams elaborates the top module with parameter overrides,
// like a tool-level defparam.
func ElaborateWithParams(file *SourceFile, top string, params map[string]uint64) (*aig.Netlist, error) {
	mods := make(map[string]*Module)
	for _, m := range file.Modules {
		if mods[m.Name] != nil {
			return nil, fmt.Errorf("verilog: duplicate module %q", m.Name)
		}
		mods[m.Name] = m
	}
	tm := mods[top]
	if tm == nil {
		return nil, fmt.Errorf("verilog: top module %q not found", top)
	}
	e := &elaborator{m: rtl.NewModule(top), mods: mods}
	sc, err := e.declareScope(tm, "", params, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := e.finalize(sc); err != nil {
		return nil, err
	}
	return e.m.N, nil
}

type elaborator struct {
	m     *rtl.Module
	mods  map[string]*Module
	depth int
}

// net is one named signal in a scope.
type net struct {
	decl  *Decl
	width int
	lsb   int
	// reg is non-nil for clocked registers.
	reg *rtl.Reg
	// For wires: the resolver computes the driven value on demand.
	resolve  func() (rtl.Vec, error)
	value    rtl.Vec
	resolved bool
	visiting bool
	// drivers counts continuous/comb/output drivers for multi-driver
	// detection.
	drivers int
	// ffDriven marks a register already claimed by a clocked process.
	ffDriven bool
}

// memory is an inferred memory array.
type memory struct {
	decl *Decl
	mem  *rtl.Mem
	aw   int
}

// scope is one elaborated module instance.
type scope struct {
	mod    *Module
	prefix string // hierarchical name prefix ("" for top)
	params map[string]uint64
	nets   map[string]*net
	mems   map[string]*memory

	ffs      []*AlwaysFF
	asserts  []*AssertItem
	assumes  []*AssumeItem
	children []*scope
	regs     []*rtl.Reg
}

func (s *scope) qualify(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "." + name
}

// declareScope performs pass 1: declarations, parameters, wires with their
// resolvers, memories, and recursive instance declaration. portBind maps
// input-port names to value thunks supplied by the parent; outBind
// collects output-port nets for the parent to wire up.
func (e *elaborator) declareScope(mod *Module, prefix string, paramOver map[string]uint64, portBind map[string]func() (rtl.Vec, error), depth int) (*scope, error) {
	if depth > 32 {
		return nil, fmt.Errorf("verilog: instantiation too deep (recursive module %q?)", mod.Name)
	}
	sc := &scope{
		mod:    mod,
		prefix: prefix,
		params: make(map[string]uint64),
		nets:   make(map[string]*net),
		mems:   make(map[string]*memory),
	}

	// Parameters: header order, overridable.
	for _, p := range mod.Params {
		v, err := e.constEval(sc, p.Value)
		if err != nil {
			return nil, err
		}
		if ov, ok := paramOver[p.Name]; ok {
			v = ov
		}
		sc.params[p.Name] = v
	}

	// Collect all declarations: ports then body.
	var decls []*Decl
	decls = append(decls, mod.Ports...)
	for _, it := range mod.Items {
		switch d := it.(type) {
		case *Decl:
			decls = append(decls, d)
		case *Param:
			v, err := e.constEval(sc, d.Value)
			if err != nil {
				return nil, err
			}
			if !d.Local {
				if ov, ok := paramOver[d.Name]; ok {
					v = ov
				}
			}
			if _, dup := sc.params[d.Name]; dup {
				return nil, fmt.Errorf("line %d: duplicate parameter %q", d.Line, d.Name)
			}
			sc.params[d.Name] = v
		}
	}

	// Merge port-list entries with matching body declarations (non-ANSI
	// style: "module m(a); input [3:0] a; ...").
	declByName := make(map[string]*Decl)
	var declOrder []*Decl
	for _, d := range decls {
		if prev, ok := declByName[d.Name]; ok {
			// Merge direction/reg/range from whichever side has them.
			if prev.Dir == DirNone {
				prev.Dir = d.Dir
			}
			prev.IsReg = prev.IsReg || d.IsReg
			if prev.MSB == nil {
				prev.MSB, prev.LSB = d.MSB, d.LSB
			}
			if prev.AMSB == nil {
				prev.AMSB, prev.ALSB = d.AMSB, d.ALSB
			}
			if prev.Init == nil {
				prev.Init = d.Init
			}
			if prev.MemAttr == "" {
				prev.MemAttr = d.MemAttr
			}
			continue
		}
		declByName[d.Name] = d
		declOrder = append(declOrder, d)
	}

	// Create nets, registers, memories, in declaration order (so input,
	// latch, and memory indices are deterministic and follow the source).
	for _, d := range declOrder {
		width, lsb, err := e.declWidth(sc, d)
		if err != nil {
			return nil, err
		}
		if d.AMSB != nil {
			// Memory array.
			if !d.IsReg {
				return nil, fmt.Errorf("line %d: memory %q must be a reg", d.Line, d.Name)
			}
			alsb, err := e.constEval(sc, d.ALSB)
			if err != nil {
				return nil, err
			}
			amsb, err := e.constEval(sc, d.AMSB)
			if err != nil {
				return nil, err
			}
			if alsb != 0 || amsb < 1 {
				return nil, fmt.Errorf("line %d: memory %q must use a [N:0] address range", d.Line, d.Name)
			}
			aw := 0
			for uint64(1)<<uint(aw) < amsb+1 {
				aw++
			}
			init := aig.MemArbitrary
			if d.MemAttr == "zero" {
				init = aig.MemZero
			}
			sc.mems[d.Name] = &memory{
				decl: d,
				mem:  e.m.Memory(sc.qualify(d.Name), aw, width, init),
				aw:   aw,
			}
			continue
		}
		nn := &net{decl: d, width: width, lsb: lsb}
		sc.nets[d.Name] = nn
		if d.Dir == DirInput && prefix == "" {
			v := e.m.Input(d.Name, width)
			nn.value = v
			nn.resolved = true
			nn.drivers++
			continue
		}
		if d.Dir == DirInput {
			bind := portBind[d.Name]
			if bind == nil {
				// Unconnected child input: free primary input.
				qual := sc.qualify(d.Name)
				w := width
				bind = func() (rtl.Vec, error) { return e.m.Input(qual, w), nil }
			}
			w := width
			nn.resolve = func() (rtl.Vec, error) {
				v, err := bind()
				if err != nil {
					return nil, err
				}
				return adaptWidth(e.m, v, w), nil
			}
			nn.drivers++
			continue
		}
		if d.IsReg {
			// Register or comb-driven variable: decided by which kind of
			// process drives it (pass 1.5 below). Clocked by default.
			continue
		}
		if d.Init != nil {
			// "wire w = expr;" is an implicit continuous assignment.
			rhs := d.Init
			w := width
			nn.drivers++
			nn.resolve = func() (rtl.Vec, error) {
				v, err := e.eval(sc, rhs)
				if err != nil {
					return nil, err
				}
				return adaptWidth(e.m, v, w), nil
			}
		}
	}

	// Classify reg drivers: regs assigned in AlwaysFF become registers;
	// regs assigned in AlwaysComb become combinational nets.
	ffTargets := make(map[string]bool)
	combOwner := make(map[string]*AlwaysComb)
	for _, it := range mod.Items {
		switch blk := it.(type) {
		case *AlwaysFF:
			sc.ffs = append(sc.ffs, blk)
			for _, t := range stmtTargets(blk.Body) {
				ffTargets[t] = true
			}
		case *AlwaysComb:
			for _, t := range stmtTargets(blk.Body) {
				if own, ok := combOwner[t]; ok && own != blk {
					return nil, fmt.Errorf("line %d: %q driven by multiple always@(*) blocks", blk.Line, t)
				}
				combOwner[t] = blk
			}
		}
	}
	for _, d := range declOrder {
		nn := sc.nets[d.Name]
		if nn == nil || !d.IsReg || d.AMSB != nil || d.Dir == DirInput {
			continue
		}
		name := d.Name
		if ffTargets[name] && combOwner[name] != nil {
			return nil, fmt.Errorf("verilog: %q driven by both clocked and combinational processes", name)
		}
		if blk, ok := combOwner[name]; ok {
			nn.drivers++
			blkCopy := blk
			nm := name
			nn.resolve = func() (rtl.Vec, error) {
				env, err := e.evalComb(sc, blkCopy)
				if err != nil {
					return nil, err
				}
				v, ok := env[nm]
				if !ok {
					return nil, fmt.Errorf("verilog: %q not assigned on all paths of always@(*)", nm)
				}
				return v, nil
			}
			continue
		}
		// Clocked register (also covers never-assigned regs, which then
		// just hold their initial value).
		var init uint64
		if d.Init != nil {
			v, err := e.constEval(sc, d.Init)
			if err != nil {
				return nil, err
			}
			init = v
		}
		if d.MemAttr == "arbitrary" {
			nn.reg = e.m.RegisterX(sc.qualify(name), nn.width)
		} else {
			nn.reg = e.m.Register(sc.qualify(name), nn.width, init)
		}
		sc.regs = append(sc.regs, nn.reg)
		nn.value = nn.reg.Q
		nn.resolved = true
		nn.drivers++
	}

	// Continuous assignments drive wires.
	for _, it := range mod.Items {
		switch a := it.(type) {
		case *Assign:
			nn := sc.nets[a.LHS.Name]
			if nn == nil {
				return nil, fmt.Errorf("line %d: assign to undeclared %q", a.Line, a.LHS.Name)
			}
			if nn.decl.IsReg {
				return nil, fmt.Errorf("line %d: assign to reg %q", a.Line, a.LHS.Name)
			}
			if a.LHS.Index != nil || a.LHS.MSB != nil {
				return nil, fmt.Errorf("line %d: partial continuous assignment to %q is not supported", a.Line, a.LHS.Name)
			}
			nn.drivers++
			if nn.drivers > 1 {
				return nil, fmt.Errorf("line %d: %q has multiple drivers", a.Line, a.LHS.Name)
			}
			rhs := a.RHS
			w := nn.width
			nn.resolve = func() (rtl.Vec, error) {
				v, err := e.eval(sc, rhs)
				if err != nil {
					return nil, err
				}
				return adaptWidth(e.m, v, w), nil
			}
		case *AssertItem:
			sc.asserts = append(sc.asserts, a)
		case *AssumeItem:
			sc.assumes = append(sc.assumes, a)
		}
	}

	// Instances.
	for _, it := range mod.Items {
		inst, ok := it.(*Instance)
		if !ok {
			continue
		}
		child := e.mods[inst.ModuleName]
		if child == nil {
			return nil, fmt.Errorf("line %d: unknown module %q", inst.Line, inst.ModuleName)
		}
		// Parameter overrides.
		over := make(map[string]uint64)
		for i, c := range inst.ParamOver {
			name := c.Name
			if name == "" {
				if i >= len(child.Params) {
					return nil, fmt.Errorf("line %d: too many parameter overrides", inst.Line)
				}
				name = child.Params[i].Name
			}
			v, err := e.constEval(sc, c.Expr)
			if err != nil {
				return nil, err
			}
			over[name] = v
		}
		// Port connections.
		conns := make(map[string]Expr)
		for i, c := range inst.Conns {
			name := c.Name
			if name == "" {
				if i >= len(child.Ports) {
					return nil, fmt.Errorf("line %d: too many port connections", inst.Line)
				}
				name = child.Ports[i].Name
			}
			if c.Expr != nil {
				conns[name] = c.Expr
			}
		}
		bind := make(map[string]func() (rtl.Vec, error))
		for _, port := range child.Ports {
			if port.Dir != DirInput {
				continue
			}
			expr, ok := conns[port.Name]
			if !ok {
				continue
			}
			ex := expr
			bind[port.Name] = func() (rtl.Vec, error) { return e.eval(sc, ex) }
		}
		childPrefix := inst.Name
		if prefix != "" {
			childPrefix = prefix + "." + inst.Name
		}
		csc, err := e.declareScope(child, childPrefix, over, bind, depth+1)
		if err != nil {
			return nil, err
		}
		sc.children = append(sc.children, csc)
		// Output ports drive parent wires.
		for _, port := range child.Ports {
			if port.Dir != DirOutput {
				continue
			}
			expr, ok := conns[port.Name]
			if !ok {
				continue
			}
			id, ok := expr.(*Ident)
			if !ok {
				return nil, fmt.Errorf("line %d: output port %q must connect to a plain net", inst.Line, port.Name)
			}
			pn := sc.nets[id.Name]
			if pn == nil {
				return nil, fmt.Errorf("line %d: output connects to undeclared %q", inst.Line, id.Name)
			}
			pn.drivers++
			if pn.drivers > 1 {
				return nil, fmt.Errorf("line %d: %q has multiple drivers", inst.Line, id.Name)
			}
			cn := csc.nets[port.Name]
			w := pn.width
			pn.resolve = func() (rtl.Vec, error) {
				v, err := e.netValue(cn)
				if err != nil {
					return nil, err
				}
				return adaptWidth(e.m, v, w), nil
			}
		}
	}
	return sc, nil
}

// finalize performs pass 2 over a scope tree: clocked processes, asserts,
// assumptions.
func (e *elaborator) finalize(sc *scope) error {
	for _, ff := range sc.ffs {
		if clk := sc.nets[ff.Clock]; clk == nil {
			return fmt.Errorf("line %d: undeclared clock %q", ff.Line, ff.Clock)
		}
		if err := e.evalFF(sc, ff); err != nil {
			return err
		}
	}
	for _, a := range sc.asserts {
		v, err := e.eval(sc, a.Cond)
		if err != nil {
			return err
		}
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("%s_assert_L%d", sc.qualify(sc.mod.Name), a.Line)
		} else if sc.prefix != "" {
			name = sc.prefix + "." + name
		}
		e.m.AssertAlways(name, e.m.NonZero(v))
	}
	for _, a := range sc.assumes {
		v, err := e.eval(sc, a.Cond)
		if err != nil {
			return err
		}
		e.m.Assume(e.m.NonZero(v))
	}
	for _, c := range sc.children {
		if err := e.finalize(c); err != nil {
			return err
		}
	}
	e.m.Done(sc.regs...)
	return nil
}

// netValue resolves a net's driven value, detecting combinational loops.
func (e *elaborator) netValue(n *net) (rtl.Vec, error) {
	if n.resolved {
		return n.value, nil
	}
	if n.visiting {
		return nil, fmt.Errorf("verilog: combinational loop through %q", n.decl.Name)
	}
	if n.resolve == nil {
		return nil, fmt.Errorf("verilog: %q is never driven", n.decl.Name)
	}
	n.visiting = true
	v, err := n.resolve()
	n.visiting = false
	if err != nil {
		return nil, err
	}
	n.value = v
	n.resolved = true
	return v, nil
}

// declWidth computes a declaration's width and LSB offset.
func (e *elaborator) declWidth(sc *scope, d *Decl) (int, int, error) {
	if d.MSB == nil {
		return 1, 0, nil
	}
	msb, err := e.constEval(sc, d.MSB)
	if err != nil {
		return 0, 0, err
	}
	lsb, err := e.constEval(sc, d.LSB)
	if err != nil {
		return 0, 0, err
	}
	if lsb > msb || msb-lsb+1 > 64 {
		return 0, 0, fmt.Errorf("line %d: bad range [%d:%d] on %q", d.Line, msb, lsb, d.Name)
	}
	return int(msb-lsb) + 1, int(lsb), nil
}

// stmtTargets lists the names assigned anywhere in a statement.
func stmtTargets(s Stmt) []string {
	var out []string
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				walk(sub)
			}
		case *NBAssign:
			out = append(out, st.LHS.Name)
		case *BAssign:
			out = append(out, st.LHS.Name)
		case *If:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *Case:
			for _, arm := range st.Arms {
				walk(arm.Body)
			}
			if st.Default != nil {
				walk(st.Default)
			}
		}
	}
	walk(s)
	return out
}

func adaptWidth(m *rtl.Module, v rtl.Vec, w int) rtl.Vec {
	if len(v) == w {
		return v
	}
	if len(v) > w {
		return m.Truncate(v, w)
	}
	return m.ZeroExtend(v, w)
}
