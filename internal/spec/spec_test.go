package spec

import (
	"encoding/json"
	"flag"
	"testing"
	"time"

	"emmver/internal/pass"
	"emmver/internal/sat"
)

// Every engine's Spec must survive Spec → Options → Spec unchanged
// (modulo canonicalization): the converters are the API contract that
// CLIs, server, and cache speak one schema. Each engine is exercised with
// every performance knob its registry row declares — the capability
// resolver rejects the rest (TestCapabilityResolver covers those).
func TestOptionsRoundTrip(t *testing.T) {
	for _, info := range Engines() {
		s := Default()
		s.Engine = info.Name
		s.Depth = 42
		s.Timeout = Duration(90 * time.Second)
		s.Jobs = 3
		s.Restart = "luby"
		s.NoSimplify = true
		s.Share = info.Has(CapShare)
		s.Cube = info.Has(CapCube)
		s.Lazy = info.Has(CapLazy)
		s.ShareCap = 128
		s.ShareLBD = 4
		s.ShareSize = 12
		opt, err := s.Options()
		if err != nil {
			t.Fatalf("%s: Options: %v", info.Name, err)
		}
		back := FromOptions(opt)
		if back != s.Canonical() {
			t.Errorf("%s: round trip drifted:\n  in:  %+v\n  out: %+v", info.Name, s.Canonical(), back)
		}
	}
}

func TestOptionsEngineMapping(t *testing.T) {
	cases := []struct {
		engine                              string
		useEMM, proofs, portfolio, wantsPBA bool
	}{
		{EngineBMC1, false, true, false, false},
		{EngineBMC2, true, false, false, false},
		{EngineBMC3, true, true, false, false},
		{EnginePortfolio, true, true, true, false},
		{EnginePBA, true, false, false, true},
		{EngineKInd, true, true, false, false},
	}
	for _, c := range cases {
		s := Spec{Engine: c.engine, Depth: 10}
		opt, err := s.Options()
		if err != nil {
			t.Fatalf("%s: %v", c.engine, err)
		}
		if opt.UseEMM != c.useEMM || opt.Proofs != c.proofs || opt.Portfolio != c.portfolio {
			t.Errorf("%s: got UseEMM=%v Proofs=%v Portfolio=%v", c.engine, opt.UseEMM, opt.Proofs, opt.Portfolio)
		}
		if c.wantsPBA && opt.StabilityDepth == 0 {
			t.Errorf("%s: StabilityDepth not set", c.engine)
		}
		if opt.MaxDepth != 10 {
			t.Errorf("%s: MaxDepth %d", c.engine, opt.MaxDepth)
		}
		if opt.KInduction != (c.engine == EngineKInd) {
			t.Errorf("%s: KInduction=%v", c.engine, opt.KInduction)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	for _, s := range []Spec{
		{Engine: "bdd"},
		{Restart: "geometric"},
		{Passes: "coi,nosuchpass"},
		{V: Version + 1},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad spec", s)
		}
		if _, err := s.Options(); err == nil {
			t.Errorf("Options(%+v) accepted a bad spec", s)
		}
	}
}

// Permuted-but-isomorphic JSON documents — fields in any order, defaults
// spelled out or omitted, pass-spec aliases — must canonicalize to the
// same keys.
func TestCanonicalKeyPermutationInvariant(t *testing.T) {
	docs := []string{
		`{"engine":"bmc3","depth":24,"timeout":"5m","restart":"ema","passes":"coi,sweep,ports,dedup"}`,
		`{"passes":" coi , sweep , ports , dedup ","depth":24,"engine":"BMC3"}`,
		`{"depth":24}`,                          // engine and passes defaulted
		`{"v":1,"engine":"bmc3","depth":24}`,    // version explicit
		`{"depth":24,"timeout":"30s","jobs":8}`, // performance knobs differ
		`{"depth":24,"restart":"luby","no_simplify":true,"share":true,"cube":true,"share_cap":64}`,
	}
	var want string
	for i, doc := range docs {
		var s Spec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		key := s.CanonicalKey()
		if i == 0 {
			want = key
			continue
		}
		if key != want {
			t.Errorf("doc %d canonical key %s != doc 0 key %s\ndoc: %s", i, key, want, doc)
		}
	}
}

func TestCanonicalKeyDistinguishesSemantics(t *testing.T) {
	base := Spec{Engine: EngineBMC3, Depth: 24}
	deeper := base
	deeper.Depth = 25
	otherEngine := base
	otherEngine.Engine = EngineBMC2
	noPasses := base
	noPasses.Passes = pass.SpecNone
	keys := map[string]string{
		"base":       base.CanonicalKey(),
		"deeper":     deeper.CanonicalKey(),
		"bmc2":       otherEngine.CanonicalKey(),
		"passes-off": noPasses.CanonicalKey(),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s share a canonical key", name, prev)
		}
		seen[k] = name
	}
	// FamilyKey folds depth away but keeps engine and passes distinct.
	if base.FamilyKey() != deeper.FamilyKey() {
		t.Error("family key must not depend on depth")
	}
	if base.FamilyKey() == otherEngine.FamilyKey() || base.FamilyKey() == noPasses.FamilyKey() {
		t.Error("family key must depend on engine and passes")
	}
}

// Lazy is a performance field: it changes how the verdict is found, never
// which verdict — so both cache keys must be byte-identical with it on and
// off, and the knob must round-trip through bmc.Options.
func TestLazyIsCacheTransparent(t *testing.T) {
	base := Spec{Engine: EngineBMC2, Depth: 24}
	lazy := base
	lazy.Lazy = true
	if base.FamilyKey() != lazy.FamilyKey() {
		t.Error("family key must not depend on -lazy")
	}
	if base.CanonicalKey() != lazy.CanonicalKey() {
		t.Error("canonical key must not depend on -lazy")
	}
	opt, err := lazy.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !opt.LazyEMM {
		t.Error("spec Lazy did not reach Options.LazyEMM")
	}
	if rt := FromOptions(opt); !rt.Lazy {
		t.Error("Options.LazyEMM did not round-trip to spec Lazy")
	}
}

func TestCanonicalNormalizesAliases(t *testing.T) {
	a := Spec{Passes: "off"}.Canonical()
	b := Spec{Passes: pass.SpecNone}.Canonical()
	if a != b {
		t.Errorf("off and none diverge: %+v vs %+v", a, b)
	}
	if got := (Spec{}).Canonical().Passes; got != pass.SpecDefault {
		t.Errorf("empty passes canonicalized to %q, want %q", got, pass.SpecDefault)
	}
	if got := (Spec{}).Canonical().Engine; got != EngineBMC3 {
		t.Errorf("empty engine canonicalized to %q", got)
	}
}

// The flag surface is derived from the schema: every tagged field
// registers, defaults match the seed Spec, and parsing writes back into
// the same struct the Options path reads.
func TestRegisterFlagsDerivesFromSchema(t *testing.T) {
	s := Default()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	RegisterFlags(fs, &s)
	for _, name := range FlagNames() {
		if fs.Lookup(name) == nil {
			t.Errorf("schema flag -%s not registered", name)
		}
	}
	if fs.Lookup("engine").DefValue != EngineBMC3 {
		t.Errorf("engine default %q", fs.Lookup("engine").DefValue)
	}
	err := fs.Parse([]string{
		"-engine", "bmc2", "-depth", "17", "-timeout", "90s",
		"-restart", "luby", "-no-simplify", "-share", "-cube", "-lazy",
		"-share-cap", "99", "-share-lbd", "3", "-share-size", "9",
		"-jobs", "2", "-passes", "coi,dedup",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		V: Version, Engine: "bmc2", Depth: 17, Timeout: Duration(90 * time.Second),
		Jobs: 2, Passes: "coi,dedup", Restart: "luby", NoSimplify: true,
		Share: true, Cube: true, Lazy: true, ShareCap: 99, ShareLBD: 3, ShareSize: 9,
	}
	if s != want {
		t.Errorf("parsed spec %+v, want %+v", s, want)
	}
	opt, err := s.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.MaxDepth != 17 || opt.Restart != sat.RestartLuby || !opt.UseEMM || opt.Proofs {
		t.Errorf("flags did not flow into Options: %+v", opt)
	}
}

func TestRegisterFlagsSkip(t *testing.T) {
	s := Default()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	RegisterFlags(fs, &s, "engine", "depth")
	if fs.Lookup("engine") != nil || fs.Lookup("depth") != nil {
		t.Error("skipped flags were registered")
	}
	if fs.Lookup("passes") == nil {
		t.Error("unskipped flag missing")
	}
}

func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Spec{Timeout: Duration(90 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if time.Duration(s.Timeout) != 90*time.Second {
		t.Errorf("timeout round trip: %v", s.Timeout)
	}
	var s2 Spec
	if err := json.Unmarshal([]byte(`{"timeout":1500000000}`), &s2); err != nil {
		t.Fatal(err)
	}
	if time.Duration(s2.Timeout) != 1500*time.Millisecond {
		t.Errorf("integer nanoseconds: %v", s2.Timeout)
	}
}
