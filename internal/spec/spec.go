// Package spec defines the serializable, versioned verification request
// schema shared by every surface that configures an engine run: the
// command-line tools (flags are derived from Spec field tags, see
// RegisterFlags), the emmserved job server (requests carry a Spec as plain
// JSON), and the content-addressed verdict cache (CanonicalKey /
// FamilyKey). A Spec captures exactly the knobs a remote caller may turn —
// engine choice, depth, compile passes, restart mode, and the cooperative
// solving tunables — and converts to and from bmc.Options with
// Spec.Options and FromOptions, so there is one schema instead of three
// ad-hoc flag/builder surfaces.
//
// The zero Spec is valid and means "defaults": Canonical normalizes it to
// the explicit default values, and every consumer compares canonicalized
// specs, so a request that spells a default out and one that omits it are
// the same request.
package spec

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/pass"
	"emmver/internal/sat"
)

// Version is the current schema version. A Spec with Version 0 (unset) is
// read as the current version; consumers reject anything newer.
const Version = 1

// Engine names. PBA is the two-phase prove-with-abstraction flow;
// Portfolio is BMC-3 with the per-depth forward/backward lane race (same
// verdicts, racing solvers); KInd is EMM k-induction (the bmc3 termination
// machinery with a strengthened induction hypothesis — unbounded proofs).
// The registry in registry.go describes each engine and its capability set.
const (
	EngineBMC1      = "bmc1"
	EngineBMC2      = "bmc2"
	EngineBMC3      = "bmc3"
	EnginePBA       = "pba"
	EnginePortfolio = "portfolio"
	EngineKInd      = "kind"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("30s", "5m") and accepts either a string or integer nanoseconds when
// unmarshaling. It also implements flag.Value, so Spec fields of this type
// register as -flag=5m style duration flags.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "5m30s" strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("spec: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("spec: duration must be a string or integer nanoseconds")
	}
	*d = Duration(ns)
	return nil
}

// String implements flag.Value.
func (d *Duration) String() string {
	if d == nil {
		return "0s"
	}
	return time.Duration(*d).String()
}

// Set implements flag.Value.
func (d *Duration) Set(s string) error {
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Spec is one verification request: which engine, how deep, under which
// compile pipeline and solver configuration. It is a plain JSON document —
// no builders, no unexported state — and the single source of truth for
// the engine flags every CLI registers (the flag name and help text live
// in the field tags; RegisterFlags walks them).
//
// Fields are split into two groups. The semantic fields (Engine, Depth,
// Passes) select *what* is verified and participate in CanonicalKey /
// FamilyKey, the verdict-cache keys. The performance fields (Timeout,
// Jobs, Restart, NoSimplify, Share, Cube, Lazy, Share*) only change how
// fast the same verdict arrives — the repo's equivalence suites pin verdict parity
// across all of them — so two requests differing only there are cache-equal.
type Spec struct {
	// V is the schema version (0 reads as the current Version).
	V int `json:"v,omitempty"`
	// Engine selects the algorithm; valid names come from the engine
	// registry (registry.go). The usage tag here is a fallback —
	// RegisterFlags renders the real help text from the registry so the
	// CLI surface lists exactly the engines this build has.
	Engine string `json:"engine,omitempty" flag:"engine" usage:"verification engine (see registry)"`
	// Depth is the maximum analysis depth (bmc.Options.MaxDepth).
	Depth int `json:"depth,omitempty" flag:"depth" usage:"maximum analysis depth"`
	// Timeout bounds the wall clock of one run (0 = none).
	Timeout Duration `json:"timeout,omitempty" flag:"timeout" usage:"wall-clock budget (0 = none)"`
	// Jobs bounds worker fan-out (0 = NumCPU, 1 = sequential).
	Jobs int `json:"jobs,omitempty" flag:"jobs" usage:"worker count for parallel runs (0 = all CPUs, 1 = sequential)"`
	// Passes is the static compile pipeline spec ("" = default pipeline,
	// "none" = off, or an explicit comma-separated pass list).
	Passes string `json:"passes,omitempty" flag:"passes" usage:"static compile pipeline: comma-separated passes (default pipeline when empty), or none"`
	// Restart selects the solver restart strategy: "ema" or "luby".
	Restart string `json:"restart,omitempty" flag:"restart" usage:"solver restart strategy: luby or ema (adaptive)"`
	// NoSimplify disables between-depth inprocessing.
	NoSimplify bool `json:"no_simplify,omitempty" flag:"no-simplify" usage:"disable between-depth inprocessing (subsumption + variable elimination)"`
	// Share connects fleet workers through the learnt-clause sharing bus.
	Share bool `json:"share,omitempty" flag:"share" usage:"share learnt clauses between fleet workers (multi-worker runs; off under PBA or environment constraints)"`
	// Cube partitions single-property search over EMM address comparators.
	Cube bool `json:"cube,omitempty" flag:"cube" usage:"cube-and-conquer: split the search over EMM address comparators across the fleet (needs jobs > 1)"`
	// Lazy instantiates read-over-write axioms on demand on the CE path.
	Lazy bool `json:"lazy,omitempty" flag:"lazy" usage:"demand-driven EMM: start the CE query with read data unconstrained and instantiate forwarding axioms only when a model violates memory semantics (ignored under pba/cube)"`
	// ShareCap overrides the per-worker clause ring capacity (0 = default).
	ShareCap int `json:"share_cap,omitempty" flag:"share-cap" usage:"clause-sharing ring capacity per worker (0 = default 4096)"`
	// ShareLBD overrides the clause-export glue filter (0 = default).
	ShareLBD int `json:"share_lbd,omitempty" flag:"share-lbd" usage:"export learnt clauses of glue <= this (0 = default 6; binaries always export)"`
	// ShareSize overrides the clause-export size filter (0 = default).
	ShareSize int `json:"share_size,omitempty" flag:"share-size" usage:"export learnt clauses of at most this many literals (0 = default 30)"`
}

// Default returns the canonical default request: BMC-3 to depth 100 under
// a five-minute budget, default pipeline, adaptive restarts, all CPUs.
func Default() Spec {
	return Spec{
		V:       Version,
		Engine:  EngineBMC3,
		Depth:   100,
		Timeout: Duration(5 * time.Minute),
		Restart: "ema",
	}
}

// Canonical returns s with every defaulted field made explicit and every
// alias collapsed: the version stamped, the engine lowercased (empty →
// bmc3), the pass spec resolved ("" → the default pipeline, "off" →
// "none", whitespace trimmed), the restart mode defaulted, and negative
// counts clamped to 0. Two specs that mean the same request canonicalize
// to the same value; CanonicalKey and FamilyKey hash this form.
func (s Spec) Canonical() Spec {
	c := s
	c.V = Version
	c.Engine = strings.ToLower(strings.TrimSpace(c.Engine))
	if c.Engine == "" {
		c.Engine = EngineBMC3
	}
	c.Passes = canonicalPasses(c.Passes)
	c.Restart = strings.ToLower(strings.TrimSpace(c.Restart))
	if c.Restart == "" {
		c.Restart = "ema"
	}
	if c.Depth < 0 {
		c.Depth = 0
	}
	if c.Jobs < 0 {
		c.Jobs = 0
	}
	if c.Timeout < 0 {
		c.Timeout = 0
	}
	for _, p := range []*int{&c.ShareCap, &c.ShareLBD, &c.ShareSize} {
		if *p < 0 {
			*p = 0
		}
	}
	return c
}

// canonicalPasses resolves a pass spec to its explicit normal form: the
// default pipeline spelled out, "off" collapsed to "none", list items
// trimmed. Invalid specs are returned trimmed as-is — Validate reports
// them; canonicalization must not mask the error.
func canonicalPasses(spec string) string {
	spec = strings.TrimSpace(spec)
	switch spec {
	case "":
		return pass.SpecDefault
	case pass.SpecNone, "off":
		return pass.SpecNone
	}
	if err := pass.ValidSpec(spec); err != nil {
		return spec
	}
	parts := strings.Split(spec, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

// Validate reports the first problem with s, or nil. Options calls it; the
// server calls it before accepting a job. Beyond field-level checks, it
// runs the central capability resolver: every performance knob the spec
// turns on must be declared supported by the selected engine's registry
// row, or the combination is rejected with a typed *CapabilityError —
// never silently ignored.
func (s Spec) Validate() error {
	if s.V < 0 || s.V > Version {
		return fmt.Errorf("spec: unsupported schema version %d (this build speaks <= %d)", s.V, Version)
	}
	c := s.Canonical()
	info, ok := LookupEngine(c.Engine)
	if !ok {
		return fmt.Errorf("spec: unknown engine %q (want %s)", c.Engine, strings.Join(EngineNames(), ", "))
	}
	if _, err := sat.ParseRestartMode(c.Restart); err != nil {
		return err
	}
	if err := pass.ValidSpec(c.Passes); err != nil {
		return err
	}
	return checkCapabilities(c, info)
}

// Options converts the spec into the engine configuration it denotes.
// This is the one Spec → bmc.Options path: CLIs, the server, and tests all
// route through it, so "engine=bmc3, depth=24" means the same Options
// everywhere. The mapping is netlist-independent — UseEMM is set whenever
// the engine calls for it and the engine itself ignores it on memory-free
// models.
func (s Spec) Options() (bmc.Options, error) {
	if err := s.Validate(); err != nil {
		return bmc.Options{}, err
	}
	c := s.Canonical()
	restart, err := sat.ParseRestartMode(c.Restart)
	if err != nil {
		return bmc.Options{}, err
	}
	opt := bmc.Options{
		MaxDepth:   c.Depth,
		Timeout:    time.Duration(c.Timeout),
		Jobs:       c.Jobs,
		Passes:     c.Passes,
		Restart:    restart,
		NoSimplify: c.NoSimplify,
		Share:      c.Share,
		Cube:       c.Cube,
		LazyEMM:    c.Lazy,
		ShareCap:   c.ShareCap,
		ShareLBD:   c.ShareLBD,
		ShareSize:  c.ShareSize,
	}
	switch c.Engine {
	case EngineBMC1:
		opt.Proofs = true
	case EngineBMC2:
		opt.UseEMM = true
	case EngineBMC3:
		opt.UseEMM = true
		opt.Proofs = true
	case EnginePBA:
		opt.UseEMM = true
		opt.StabilityDepth = 10
	case EnginePortfolio:
		opt.UseEMM = true
		opt.Proofs = true
		opt.Portfolio = true
	case EngineKInd:
		opt.UseEMM = true
		opt.Proofs = true
		opt.KInduction = true
	}
	return opt, nil
}

// FromOptions is the inverse converter: it reads the engine choice and the
// spec-visible knobs back out of a bmc.Options. Fields Options cannot
// express in a Spec (abstractions, ablation switches, observability) are
// dropped; round-tripping Default().Options() through FromOptions yields
// the canonical default spec again (see the round-trip test).
func FromOptions(o bmc.Options) Spec {
	s := Spec{
		V:          Version,
		Depth:      o.MaxDepth,
		Timeout:    Duration(o.Timeout),
		Jobs:       o.Jobs,
		Passes:     o.Passes,
		NoSimplify: o.NoSimplify,
		Share:      o.Share,
		Cube:       o.Cube,
		Lazy:       o.LazyEMM,
		ShareCap:   o.ShareCap,
		ShareLBD:   o.ShareLBD,
		ShareSize:  o.ShareSize,
	}
	if o.Restart == sat.RestartLuby {
		s.Restart = "luby"
	} else {
		s.Restart = "ema"
	}
	switch {
	case o.PBA && !o.Proofs, o.StabilityDepth > 0 && !o.Proofs:
		s.Engine = EnginePBA
	case o.UseEMM && o.Proofs && o.KInduction:
		s.Engine = EngineKInd
	case o.UseEMM && o.Proofs && o.Portfolio:
		s.Engine = EnginePortfolio
	case o.UseEMM && o.Proofs:
		s.Engine = EngineBMC3
	case o.UseEMM:
		s.Engine = EngineBMC2
	default:
		s.Engine = EngineBMC1
	}
	return s.Canonical()
}

// FamilyKey hashes the depth-independent semantic content of the spec —
// the engine and the compile pipeline. Two requests with the same
// FamilyKey over the same compiled netlist are the *same verification
// problem at different depths*: a cached NO_CE at depth k answers any
// request up to k outright and warm-starts deeper ones from k+1. The
// performance fields (Timeout, Jobs, Restart, NoSimplify, Share/Cube/Lazy
// and the sharing tunables) are deliberately excluded: the engine
// equivalence suites pin that they never change verdicts, only wall-clock.
func (s Spec) FamilyKey() string {
	return hashKey(s.familyContent())
}

// CanonicalKey hashes the full semantic content — FamilyKey plus the
// depth — and is the exact-match verdict-cache key: equal CanonicalKey
// (plus equal netlist key) means the cached verdict answers the request
// verbatim.
func (s Spec) CanonicalKey() string {
	c := s.Canonical()
	return hashKey(s.familyContent() + fmt.Sprintf("|depth=%d", c.Depth))
}

func (s Spec) familyContent() string {
	c := s.Canonical()
	return fmt.Sprintf("emmver-spec-v%d|engine=%s|passes=%s", Version, c.Engine, c.Passes)
}

// ProblemKey hashes the engine- and depth-independent content of the spec —
// only the compile pipeline. Two requests with the same ProblemKey over the
// same compiled netlist ask about the *same property of the same model*,
// just with different engines or bounds. The verdict cache uses it for the
// one verdict kind that transfers across both dimensions: a PROOF states
// the property holds at every depth, so a k-induction proof answers later
// bmc1/bmc3/portfolio requests at any bound. CE and NO_CE verdicts stay on
// FamilyKey — an engine without termination checks legitimately reports
// NO_CE where a proving engine reports PROOF, and the cache must not blur
// that observable difference.
func (s Spec) ProblemKey() string {
	c := s.Canonical()
	return hashKey(fmt.Sprintf("emmver-spec-problem-v%d|passes=%s", Version, c.Passes))
}

func hashKey(content string) string {
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:])
}

// WarmEligible reports whether the engine behind s supports warm-started
// runs (bmc.Options.StartDepth, registry capability CapWarm): the
// single-engine BMC flows and k-induction do; the two-phase PBA flow
// re-derives its abstraction from depth 0 and does not.
func (s Spec) WarmEligible() bool {
	info, ok := LookupEngine(s.Canonical().Engine)
	return ok && info.Has(CapWarm)
}

// RunCtx executes the request against property prop of n — the one
// engine-dispatch path shared by the facade, the CLIs' remote mode, and
// the job server. startDepth > 0 warm-starts the BMC loop (the caller
// asserts depths below it are known counter-example-free, e.g. from a
// cached shallower verdict); it is ignored by the PBA flow. For EnginePBA
// the returned Result is the final proof phase when one ran, otherwise the
// phase-1 result — the same collapse emmv performs.
func (s Spec) RunCtx(ctx context.Context, n *aig.Netlist, prop int, startDepth int, extend func(*bmc.Options)) (*bmc.Result, error) {
	opt, err := s.Options()
	if err != nil {
		return nil, err
	}
	if extend != nil {
		extend(&opt)
	}
	if s.Canonical().Engine == EnginePBA {
		res := bmc.ProveWithPBACtx(ctx, n, prop, opt)
		if res.Proof != nil {
			return res.Proof, nil
		}
		return res.Phase1, nil
	}
	if startDepth > 0 && s.WarmEligible() {
		opt.StartDepth = startDepth
	}
	return bmc.CheckCtx(ctx, n, prop, opt), nil
}
