package spec

import (
	"errors"
	"flag"
	"strings"
	"testing"
)

// The capability resolver contract: for every engine and every subset of
// the performance knobs, the spec is either honored in full — Options
// succeeds and each requested knob reaches its Options field — or rejected
// with a descriptive *CapabilityError naming the engine and the first
// offending knob. No combination may be silently ignored.
func TestCapabilityResolver(t *testing.T) {
	for _, info := range Engines() {
		for mask := 0; mask < 8; mask++ {
			s := Default()
			s.Engine = info.Name
			s.Lazy = mask&1 != 0
			s.Share = mask&2 != 0
			s.Cube = mask&4 != 0
			wantReject := s.Lazy && !info.Has(CapLazy) ||
				s.Share && !info.Has(CapShare) ||
				s.Cube && !info.Has(CapCube)
			opt, err := s.Options()
			if wantReject {
				if err == nil {
					t.Errorf("%s lazy=%v share=%v cube=%v: unsupported knob accepted",
						info.Name, s.Lazy, s.Share, s.Cube)
					continue
				}
				var ce *CapabilityError
				if !errors.As(err, &ce) {
					t.Errorf("%s: rejection is not a *CapabilityError: %v", info.Name, err)
					continue
				}
				if ce.Engine != info.Name || ce.Knob == "" || ce.Reason == "" {
					t.Errorf("%s: undescriptive CapabilityError: %+v", info.Name, ce)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s lazy=%v share=%v cube=%v: supported combination rejected: %v",
					info.Name, s.Lazy, s.Share, s.Cube, err)
				continue
			}
			// Honored means the knob actually reaches the engine options.
			if opt.LazyEMM != s.Lazy || opt.Share != s.Share || opt.Cube != s.Cube {
				t.Errorf("%s: knobs dropped on the floor: spec lazy=%v share=%v cube=%v, opt lazy=%v share=%v cube=%v",
					info.Name, s.Lazy, s.Share, s.Cube, opt.LazyEMM, opt.Share, opt.Cube)
			}
		}
	}
}

// The distributed-fleet dimension goes through the same registry: engines
// without CapDist get the typed error, the rest pass.
func TestDistCapable(t *testing.T) {
	for _, info := range Engines() {
		s := Default()
		s.Engine = info.Name
		err := s.DistCapable()
		if info.Has(CapDist) {
			if err != nil {
				t.Errorf("%s: DistCapable rejected a dist-capable engine: %v", info.Name, err)
			}
			continue
		}
		var ce *CapabilityError
		if !errors.As(err, &ce) || ce.Knob != "dist" || ce.Engine != info.Name {
			t.Errorf("%s: want *CapabilityError{Knob: dist}, got %v", info.Name, err)
		}
	}
}

// Unknown engines must fail Validate with the full registry listed, and
// every registered engine must validate and canonicalize to itself.
func TestRegistryValidation(t *testing.T) {
	s := Spec{Engine: "bdd"}
	err := s.Validate()
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	for _, name := range EngineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-engine error does not list %s: %v", name, err)
		}
	}
	for _, name := range EngineNames() {
		s := Spec{Engine: name}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if got := s.Canonical().Engine; got != name {
			t.Errorf("%s canonicalized to %q", name, got)
		}
	}
}

// The -engine usage string is generated from the registry — one source of
// truth. The drift test pins that every registered engine (and nothing
// else shaped like an engine list) appears in the flag's help text.
func TestEngineUsageDerivedFromRegistry(t *testing.T) {
	s := Default()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	RegisterFlags(fs, &s)
	usage := fs.Lookup("engine").Usage
	if usage != EngineUsage() {
		t.Errorf("-engine usage diverged from EngineUsage():\n  flag: %s\n  reg:  %s", usage, EngineUsage())
	}
	for _, info := range Engines() {
		if !strings.Contains(usage, info.Name+" (") {
			t.Errorf("-engine usage missing registry engine %s: %s", info.Name, usage)
		}
		if info.Summary == "" {
			t.Errorf("engine %s has no summary", info.Name)
		}
	}
}

// Every engine must declare a coherent capability set: warm-start
// eligibility and the proof index both read the registry, so the bits new
// rows declare are load-bearing.
func TestRegistryCoherence(t *testing.T) {
	for _, info := range Engines() {
		s := Spec{Engine: info.Name}
		if got := s.WarmEligible(); got != info.Has(CapWarm) {
			t.Errorf("%s: WarmEligible=%v, registry CapWarm=%v", info.Name, got, info.Has(CapWarm))
		}
	}
	// Lazy needs an EMM-constrained CE path; an engine claiming CapLazy
	// without EMM would silently no-op the knob at the engine layer.
	for _, name := range []string{EngineBMC2, EngineBMC3, EnginePortfolio, EngineKInd} {
		info, ok := LookupEngine(name)
		if !ok || !info.Has(CapLazy) {
			t.Errorf("%s: expected CapLazy", name)
		}
	}
	if info, _ := LookupEngine(EngineBMC1); info.Has(CapLazy) || info.Has(CapCube) {
		t.Error("bmc1 has no EMM constraints; CapLazy/CapCube must be off")
	}
	if info, _ := LookupEngine(EnginePBA); info.Has(CapShare) || info.Has(CapLazy) {
		t.Error("pba proof tracing excludes share/lazy")
	}
}
