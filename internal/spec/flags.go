package spec

import (
	"flag"
	"fmt"
	"reflect"
	"strings"

	"emmver/internal/pass"
)

// RegisterFlags declares one command-line flag per tagged Spec field on
// fs, bound directly into *s, with *s's current values as the defaults.
// The flag name and help text come from the field's `flag:"..."` and
// `usage:"..."` tags, so the CLIs cannot drift from the schema: adding a
// knob to Spec adds it — with identical spelling, type, and semantics —
// to every tool that calls this. Names in skip are left unregistered (for
// tools whose workload fixes the engine or depth).
//
// The -passes usage line is completed with the live pass registry at call
// time, and the -engine usage line with the engine registry, so the help
// text always lists exactly the passes and engines this build has.
func RegisterFlags(fs *flag.FlagSet, s *Spec, skip ...string) {
	skipped := make(map[string]bool, len(skip))
	for _, name := range skip {
		skipped[name] = true
	}
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		name := f.Tag.Get("flag")
		if name == "" || skipped[name] {
			continue
		}
		usage := f.Tag.Get("usage")
		switch name {
		case "passes":
			usage = fmt.Sprintf("static compile pipeline: comma-separated passes from %s (default %q), or none",
				strings.Join(pass.Names(), ","), pass.SpecDefault)
		case "engine":
			usage = EngineUsage()
		}
		switch p := v.Field(i).Addr().Interface().(type) {
		case *string:
			fs.StringVar(p, name, *p, usage)
		case *int:
			fs.IntVar(p, name, *p, usage)
		case *bool:
			fs.BoolVar(p, name, *p, usage)
		case *Duration:
			fs.Var(p, name, usage)
		default:
			panic(fmt.Sprintf("spec: field %s has unregistrable flag type %s", f.Name, f.Type))
		}
	}
}

// FlagNames lists the flag names the schema declares, in field order —
// the drift test compares this against what a FlagSet actually carries.
func FlagNames(skip ...string) []string {
	skipped := make(map[string]bool, len(skip))
	for _, name := range skip {
		skipped[name] = true
	}
	var out []string
	t := reflect.TypeOf(Spec{})
	for i := 0; i < t.NumField(); i++ {
		if name := t.Field(i).Tag.Get("flag"); name != "" && !skipped[name] {
			out = append(out, name)
		}
	}
	return out
}
