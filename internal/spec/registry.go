package spec

import (
	"fmt"
	"strings"
)

// Capability is one orthogonal engine feature a performance knob may
// require. Every engine declares the set it supports in the registry below;
// Validate checks each requested knob against that set and rejects the
// combination with a *CapabilityError instead of silently ignoring the
// knob. This replaces the eligibility gates that used to be scattered
// through the engine code (lazy vs pba/cube/dist, share vs pba, ...): there
// is exactly one table, and a spec that passes Validate is honored in full.
type Capability uint32

const (
	// CapLazy: the engine's counter-example path can run the demand-driven
	// EMM axiom instantiation (-lazy).
	CapLazy Capability = 1 << iota
	// CapShare: the engine's solvers can attach to the learnt-clause
	// sharing bus (-share).
	CapShare
	// CapCube: the engine's counter-example check can be partitioned over
	// EMM address comparators (-cube).
	CapCube
	// CapDist: the engine can broker or join a cross-process fleet
	// (-listen/-connect).
	CapDist
	// CapWarm: the engine honors warm-started deepening
	// (bmc.Options.StartDepth), so a cached NO_CE frontier can resume it.
	CapWarm
	// CapProof: the engine can return PROOF verdicts (termination checks),
	// so its results feed the engine-independent proof index of the
	// verdict cache.
	CapProof
)

// Has reports whether c includes want.
func (c Capability) Has(want Capability) bool { return c&want == want }

// EngineInfo is one registry entry: the engine's canonical name, the short
// summary rendered into the -engine usage string, and its capability set.
type EngineInfo struct {
	Name    string
	Summary string
	Caps    Capability
}

// Has reports whether the engine supports the capability.
func (e EngineInfo) Has(c Capability) bool { return e.Caps.Has(c) }

// engineRegistry is the single source of truth for which engines exist,
// what each one is, and which performance knobs it supports. Validate, the
// -engine usage string, WarmEligible, and the serve-layer proof index all
// derive from it; adding an engine means adding exactly one row here plus
// its Options mapping.
var engineRegistry = []EngineInfo{
	{EngineBMC1, "plain BMC + induction proofs (Fig. 1)",
		CapShare | CapDist | CapWarm | CapProof},
	{EngineBMC2, "EMM falsification (Fig. 2)",
		CapLazy | CapShare | CapCube | CapDist | CapWarm},
	{EngineBMC3, "EMM + induction proofs (Fig. 3)",
		CapLazy | CapShare | CapCube | CapDist | CapWarm | CapProof},
	{EnginePBA, "two-phase prove-with-abstraction",
		CapProof},
	{EnginePortfolio, "bmc3 with per-depth forward/backward lane racing",
		CapLazy | CapShare | CapCube | CapDist | CapWarm | CapProof},
	{EngineKInd, "EMM k-induction: unbounded proofs via strengthened simple-path induction",
		CapLazy | CapShare | CapWarm | CapProof},
}

// Engines returns the registry rows in canonical order.
func Engines() []EngineInfo {
	out := make([]EngineInfo, len(engineRegistry))
	copy(out, engineRegistry)
	return out
}

// EngineNames lists the registered engine names in canonical order.
func EngineNames() []string {
	out := make([]string, len(engineRegistry))
	for i, e := range engineRegistry {
		out[i] = e.Name
	}
	return out
}

// LookupEngine resolves a canonical engine name against the registry.
func LookupEngine(name string) (EngineInfo, bool) {
	for _, e := range engineRegistry {
		if e.Name == name {
			return e, true
		}
	}
	return EngineInfo{}, false
}

// EngineUsage renders the -engine flag's help text from the registry, so
// the CLI surface cannot drift from the engines this build actually has.
func EngineUsage() string {
	var b strings.Builder
	b.WriteString("verification engine: ")
	for i, e := range engineRegistry {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s (%s)", e.Name, e.Summary)
	}
	return b.String()
}

// CapabilityError reports a knob the selected engine does not support. It
// is a typed rejection: callers (CLIs, the job server) surface Reason
// verbatim, and the capability-sweep test asserts every unsupported
// (engine, knob) pair returns one of these rather than silently dropping
// the knob.
type CapabilityError struct {
	// Engine is the canonical engine name.
	Engine string
	// Knob is the flag-spelled name of the rejected option ("lazy",
	// "share", "cube", "dist").
	Knob string
	// Reason says why the combination is unsupported.
	Reason string
}

// Error implements error.
func (e *CapabilityError) Error() string {
	return fmt.Sprintf("spec: -%s is not supported by engine %s: %s", e.Knob, e.Engine, e.Reason)
}

// knobReasons explains each capability rejection in engine-independent
// terms; the engine name in the error locates the offending row.
var knobReasons = map[string]string{
	"lazy":  "demand-driven EMM instantiates read-over-write axioms on the counter-example path; this engine has no lazy-capable CE solver (no EMM constraints, or proof tracing attributes relevance to eagerly tagged clauses)",
	"share": "the learnt-clause sharing bus relocates lemmas between workers; under PBA proof tracing an imported clause would corrupt latch-reason attribution",
	"cube":  "cube-and-conquer partitions the search over EMM address comparators; this engine either builds no EMM comparators or runs a flow the cube depth loop does not implement",
	"dist":  "the distributed fleet brokers cubes and clauses between processes; this engine's flow is not wired into the cross-process depth loop",
}

// checkCapabilities validates every requested knob of the canonical spec c
// against the engine's declared capability set. It is the one central
// resolver: a nil return means every knob in c is honored end to end.
func checkCapabilities(c Spec, info EngineInfo) error {
	type req struct {
		on   bool
		knob string
		cap  Capability
	}
	for _, r := range []req{
		{c.Lazy, "lazy", CapLazy},
		{c.Share, "share", CapShare},
		{c.Cube, "cube", CapCube},
	} {
		if r.on && !info.Has(r.cap) {
			return &CapabilityError{Engine: info.Name, Knob: r.knob, Reason: knobReasons[r.knob]}
		}
	}
	return nil
}

// DistCapable reports whether the engine named by s can join or broker a
// distributed fleet; callers get the same typed error the other knobs
// produce. Netlist-dependent conditions (environment constraints) remain
// runtime checks in bmc.DistEligible — this covers the engine dimension.
func (s Spec) DistCapable() error {
	c := s.Canonical()
	info, ok := LookupEngine(c.Engine)
	if !ok {
		return fmt.Errorf("spec: unknown engine %q (want %s)", c.Engine, strings.Join(EngineNames(), ", "))
	}
	if !info.Has(CapDist) {
		return &CapabilityError{Engine: info.Name, Knob: "dist", Reason: knobReasons["dist"]}
	}
	return nil
}
