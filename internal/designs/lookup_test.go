package designs

import (
	"math/rand"
	"testing"

	"emmver/internal/bmc"
	"emmver/internal/sim"
)

// tinyLookup keeps the memory small enough for exhaustive engines.
func tinyLookup() LookupConfig {
	return LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3}
}

func TestLookupResponsesStayZeroInSimulation(t *testing.T) {
	l := NewLookup(tinyLookup())
	s := sim.New(l.M.N)
	rng := rand.New(rand.NewSource(3))
	for c := 0; c < 500; c++ {
		res := s.Step(s.RandomInputs(rng))
		for pi, ok := range res.PropOK {
			if !ok {
				t.Fatalf("cycle %d: property %d violated in simulation", c, pi)
			}
		}
	}
	// The table must still be all zero.
	for a := 0; a < 8; a++ {
		if s.MemWord(0, a) != 0 {
			t.Fatalf("table written despite dead write path")
		}
	}
}

func TestLookupSpuriousCEUnderFullAbstraction(t *testing.T) {
	cfg := tinyLookup()
	l := NewLookup(cfg)
	for _, p := range l.ReachIndices[:2] {
		r := bmc.Check(l.Netlist(), p, bmc.Options{MaxDepth: 20})
		if r.Kind != bmc.KindCE {
			t.Fatalf("prop %d: full abstraction must give a spurious CE, got %v", p, r)
		}
		if r.Depth != cfg.Latency+1 {
			t.Fatalf("prop %d: spurious CE at depth %d, want %d", p, r.Depth, cfg.Latency+1)
		}
		if err := r.Witness.Replay(l.Netlist(), p); err == nil {
			t.Fatalf("prop %d: spurious CE unexpectedly replays", p)
		}
	}
}

func TestLookupDefaultSpuriousDepthIsSeven(t *testing.T) {
	// With the Industry-II latency of 6, spurious witnesses appear at
	// depth 7 — the depth the paper reports.
	cfg := tinyLookup()
	cfg.Latency = 6
	l := NewLookup(cfg)
	r := bmc.Check(l.Netlist(), l.ReachIndices[0], bmc.Options{MaxDepth: 20})
	if r.Kind != bmc.KindCE || r.Depth != 7 {
		t.Fatalf("expected spurious CE at depth 7, got %v", r)
	}
}

func TestLookupEMMFindsNoWitness(t *testing.T) {
	l := NewLookup(tinyLookup())
	for _, p := range l.ReachIndices {
		r := bmc.Check(l.Netlist(), p, bmc.Options{MaxDepth: 25, UseEMM: true})
		if r.Kind == bmc.KindCE {
			t.Fatalf("prop %d: EMM must find no witness, got %v", p, r)
		}
	}
}

func TestLookupInvariantBackwardInductionDepth2(t *testing.T) {
	l := NewLookup(tinyLookup())
	// The compile pipeline's constant sweep discharges the invariant
	// structurally (depth 0); pin it off to observe the 2-induction the
	// design is built to need.
	r := bmc.Check(l.Netlist(), l.InvariantIndex, bmc.BMC3(10).WithPasses("none"))
	if r.Kind != bmc.KindProof || r.ProofSide != "backward" || r.Depth != 2 {
		t.Fatalf("invariant must be proved by backward induction at depth 2, got %v (%s)", r, r.ProofSide)
	}
}

func TestLookupRDZeroAbstractionProvesAll(t *testing.T) {
	l := NewLookup(tinyLookup())
	constrained := l.WithRDZeroConstraint()
	for _, p := range l.ReachIndices {
		r := bmc.Check(constrained, p, bmc.Options{MaxDepth: 20, Proofs: true})
		if r.Kind != bmc.KindProof {
			t.Fatalf("prop %d: RD=0 abstraction must prove, got %v", p, r)
		}
		if r.Stats.Elapsed.Seconds() > 10 {
			t.Fatalf("prop %d: proof too slow", p)
		}
	}
}

func TestLookupRDZeroWithPBA(t *testing.T) {
	// The paper's final step: PBA on the RD=0-constrained model shrinks
	// it further, then the proof goes through on the reduced model.
	l := NewLookup(tinyLookup())
	constrained := l.WithRDZeroConstraint()
	p := l.ReachIndices[0]
	res := bmc.ProveWithPBA(constrained, p, bmc.Options{MaxDepth: 30, StabilityDepth: 5})
	if res.Kind() != bmc.KindProof {
		t.Fatalf("PBA flow must prove, got %v", res.Kind())
	}
	if res.Abs != nil && res.Abs.KeptLatches >= res.Abs.KeptLatches+len(res.Abs.FreeLatches) {
		t.Fatalf("no latch reduction: %s", res.Abs)
	}
}

func TestLookupEMMAloneCannotProve(t *testing.T) {
	// Mirrors the paper's observation that BMC with EMM alone could not
	// prove the reachability properties: the backward induction window
	// starts in an arbitrary state where unwritten reads are arbitrary,
	// and the input-driven pipelines give the design an astronomically
	// large forward diameter. The flow that works is the invariant +
	// RD=0 abstraction (see TestLookupRDZeroAbstractionProvesAll).
	l := NewLookup(tinyLookup())
	r := bmc.Check(l.Netlist(), l.ReachIndices[0], bmc.BMC3(40))
	if r.Kind != bmc.KindNoCE {
		t.Fatalf("expected NO_CE at the bound, got %v", r)
	}
}

func TestDefaultLookupMatchesIndustryII(t *testing.T) {
	cfg := DefaultLookup()
	if cfg.AW != 12 || cfg.DW != 32 || cfg.NumProps != 8 {
		t.Fatalf("default config diverges from Industry II: %+v", cfg)
	}
	l := NewLookup(cfg)
	n := l.Netlist()
	if len(n.Memories) != 1 {
		t.Fatalf("one memory expected")
	}
	if len(n.Memories[0].Reads) != 3 || len(n.Memories[0].Writes) != 1 {
		t.Fatalf("Industry II has 3 read ports and 1 write port")
	}
}
