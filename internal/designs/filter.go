package designs

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// ImageFilterConfig parameterizes the low-pass image filter standing in
// for the paper's "Industry Design I" (a low-pass image filter with two
// AW=10/DW=8 single-read/single-write-port memories, zero-initialized, and
// 216 reachability properties).
type ImageFilterConfig struct {
	// LineWidth is the number of pixels per scan line (bounds witness
	// depths: the filter output becomes fully live after two lines).
	LineWidth int
	// AW/DW are the line-buffer memory geometry (paper: 10 and 8).
	AW, DW int
	// NumProps is the number of "output == v" reachability properties
	// (paper: 216).
	NumProps int
}

// DefaultImageFilter returns the Industry-I-shaped configuration.
func DefaultImageFilter() ImageFilterConfig {
	return ImageFilterConfig{LineWidth: 24, AW: 10, DW: 8, NumProps: 216}
}

// ImageFilter is the built design.
type ImageFilter struct {
	Cfg ImageFilterConfig
	M   *rtl.Module
	Out rtl.Vec // filter output bus
	// MaxOutput is the largest value the output can take
	// (3·(2^DW - 1) / 4), so properties "out == v" for v > MaxOutput are
	// the unreachable (provable) ones.
	MaxOutput uint64
}

// NewImageFilter builds a streaming 3-tap vertical low-pass filter: pixels
// arrive one per cycle; two line-buffer memories hold the two previous
// scan lines; once the pipeline is primed the output is
// (above2 + above1 + current) / 4 — a classic smoothing kernel whose
// output can never exceed 3·255/4 = 191 for 8-bit pixels.
//
// Reachability properties "output == v" for v = 0..NumProps-1 mirror the
// 216 properties of Industry I: values ≤ MaxOutput have witnesses (of
// depth roughly two scan lines), values above it are unreachable and are
// proved by induction.
func NewImageFilter(cfg ImageFilterConfig) *ImageFilter {
	if cfg.LineWidth < 2 || cfg.LineWidth >= 1<<uint(cfg.AW) {
		panic(fmt.Sprintf("designs: line width %d out of range for AW=%d", cfg.LineWidth, cfg.AW))
	}
	m := rtl.NewModule("imagefilter")

	pixel := m.Input("pixel", cfg.DW)
	valid := m.InputBit("valid")

	// Column counter walks each scan line.
	col := m.Register("col", cfg.AW, 0)
	atEnd := m.EqConst(col.Q, uint64(cfg.LineWidth-1))
	col.Update(m.N.And(valid, atEnd.Not()), m.Inc(col.Q))
	col.Update(m.N.And(valid, atEnd), m.Const(cfg.AW, 0))

	// Two line buffers, both zero-initialized like Industry I.
	line1 := m.Memory("line1", cfg.AW, cfg.DW, aig.MemZero) // previous line
	line2 := m.Memory("line2", cfg.AW, cfg.DW, aig.MemZero) // line before that

	above1 := line1.Read(col.Q, valid) // pixel one line up
	above2 := line2.Read(col.Q, valid) // pixel two lines up
	line2.Write(col.Q, above1, valid)  // shift: line1 → line2
	line1.Write(col.Q, pixel, valid)   // store current line

	// Row counter tracks pipeline priming (output live from row 2 on).
	row := m.Register("row", 4, 0)
	rowSat := m.EqConst(row.Q, 15)
	row.Update(m.N.Ands(valid, atEnd, rowSat.Not()), m.Inc(row.Q))
	primed := m.Uge(row.Q, m.Const(4, 2))

	// out = (above2 + above1 + pixel) / 4, computed at full precision
	// then truncated — max 3·(2^DW-1)/4.
	ext := cfg.DW + 2
	sum := m.Add(m.ZeroExtend(above2, ext), m.ZeroExtend(above1, ext))
	sum = m.Add(sum, m.ZeroExtend(pixel, ext))
	quarter := m.ShrConst(sum, 2)
	outFull := m.MuxV(m.N.And(valid, primed), quarter, m.Const(ext, 0))
	out := m.Truncate(outFull, cfg.DW)

	outReg := m.Register("out", cfg.DW, 0)
	outReg.SetNext(out)
	m.Done(col, row, outReg)

	f := &ImageFilter{
		Cfg:       cfg,
		M:         m,
		Out:       outReg.Q,
		MaxOutput: 3 * ((1 << uint(cfg.DW)) - 1) / 4,
	}
	for v := 0; v < cfg.NumProps; v++ {
		m.AssertAlways(fmt.Sprintf("out-ne-%d", v),
			m.EqConst(outReg.Q, uint64(v)).Not())
	}
	return f
}

// Netlist returns the underlying netlist.
func (f *ImageFilter) Netlist() *aig.Netlist { return f.M.N }

// PropIndices returns all property indices.
func (f *ImageFilter) PropIndices() []int {
	out := make([]int, f.Cfg.NumProps)
	for i := range out {
		out[i] = i
	}
	return out
}

// ExpectedReachable reports whether property v (out == v) has a witness.
func (f *ImageFilter) ExpectedReachable(v int) bool {
	return uint64(v) <= f.MaxOutput
}
