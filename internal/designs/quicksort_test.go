package designs

import (
	"math/rand"
	"testing"

	"emmver/internal/bmc"
	"emmver/internal/expmem"
)

// tinyQS is a configuration small enough for the explicit baseline.
func tinyQS(n int) QuickSortConfig {
	return QuickSortConfig{N: n, ArrayAW: 2, DataW: 3, StackAW: 2}
}

func TestQuickSortSimulatesCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, cfg := range []QuickSortConfig{
		tinyQS(2), tinyQS(3), tinyQS(4),
		{N: 5, ArrayAW: 3, DataW: 4, StackAW: 3},
		{N: 7, ArrayAW: 3, DataW: 8, StackAW: 3},
	} {
		q := NewQuickSort(cfg)
		for trial := 0; trial < 20; trial++ {
			in := make([]uint64, cfg.N)
			mask := uint64(1)<<uint(cfg.DataW) - 1
			for i := range in {
				in[i] = rng.Uint64() & mask
			}
			got, cycles, err := q.SimulateSort(in, 5000)
			if err != nil {
				t.Fatalf("cfg %+v input %v: %v", cfg, in, err)
			}
			want := ReferenceSort(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cfg %+v input %v: got %v want %v", cfg, in, got, want)
				}
			}
			if cycles < cfg.N {
				t.Fatalf("suspiciously fast sort: %d cycles", cycles)
			}
			// A fresh simulation run requires a fresh design state;
			// rebuild for the next trial.
			q = NewQuickSort(cfg)
		}
	}
}

func TestQuickSortHandlesDuplicatesAndSorted(t *testing.T) {
	cfg := tinyQS(4)
	for _, in := range [][]uint64{
		{0, 0, 0, 0},
		{1, 1, 2, 2},
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{7, 7, 7, 0},
	} {
		q := NewQuickSort(cfg)
		got, _, err := q.SimulateSort(in, 5000)
		if err != nil {
			t.Fatalf("input %v: %v", in, err)
		}
		want := ReferenceSort(in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("input %v: got %v want %v", in, got, want)
			}
		}
	}
}

func TestQuickSortBuggySimulation(t *testing.T) {
	cfg := tinyQS(3)
	cfg.Buggy = true
	q := NewQuickSort(cfg)
	got, _, err := q.SimulateSort([]uint64{1, 5, 3}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] <= got[1] {
		t.Fatalf("buggy machine unexpectedly sorted ascending: %v", got)
	}
}

func TestQuickSortCyclesGrowWithN(t *testing.T) {
	cycles := func(n int) int {
		cfg := QuickSortConfig{N: n, ArrayAW: 3, DataW: 4, StackAW: 3}
		q := NewQuickSort(cfg)
		in := make([]uint64, n)
		for i := range in {
			in[i] = uint64(n - i)
		}
		_, c, err := q.SimulateSort(in, 5000)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c3, c5, c7 := cycles(3), cycles(5), cycles(7)
	if !(c3 < c5 && c5 < c7) {
		t.Fatalf("cycle counts must grow with N: %d %d %d", c3, c5, c7)
	}
}

func TestQuickSortP1ProofEMM(t *testing.T) {
	q := NewQuickSort(tinyQS(3))
	r := bmc.Check(q.Netlist(), q.P1Index, bmc.BMC3(120))
	if r.Kind != bmc.KindProof {
		t.Fatalf("P1 must be proved, got %v", r)
	}
	if r.Depth < 3 {
		t.Fatalf("proof depth suspiciously small: %d", r.Depth)
	}
}

func TestQuickSortP2ProofEMM(t *testing.T) {
	q := NewQuickSort(tinyQS(3))
	r := bmc.Check(q.Netlist(), q.P2Index, bmc.BMC3(120))
	if r.Kind != bmc.KindProof {
		t.Fatalf("P2 must be proved, got %v", r)
	}
}

func TestQuickSortP1ProofExplicit(t *testing.T) {
	q := NewQuickSort(tinyQS(2))
	exp, _, err := expmem.Expand(q.Netlist())
	if err != nil {
		t.Fatal(err)
	}
	r := bmc.Check(exp, q.P1Index, bmc.BMC1(60))
	if r.Kind != bmc.KindProof {
		t.Fatalf("explicit P1 must be proved, got %v", r)
	}
}

func TestQuickSortBuggyP1CounterExample(t *testing.T) {
	cfg := tinyQS(3)
	cfg.Buggy = true
	q := NewQuickSort(cfg)
	r := bmc.Check(q.Netlist(), q.P1Index, bmc.Options{
		MaxDepth: 80, UseEMM: true, ValidateWitness: true,
	})
	if r.Kind != bmc.KindCE {
		t.Fatalf("buggy P1 must have a counter-example, got %v", r)
	}
}

func TestQuickSortPBADropsArrayForP2(t *testing.T) {
	q := NewQuickSort(tinyQS(3))
	opt := bmc.Options{MaxDepth: 120, UseEMM: true, StabilityDepth: 8}
	res := bmc.ProveWithPBA(q.Netlist(), q.P2Index, opt)
	if res.Kind() != bmc.KindProof {
		t.Fatalf("P2 must be proved through PBA, got %v (phase1 %v)", res.Kind(), res.Phase1)
	}
	if res.Abs == nil {
		t.Fatalf("no abstraction")
	}
	// Memory 0 is the array: P2 does not depend on it.
	if res.Abs.MemEnabled[0] {
		t.Fatalf("array memory should be abstracted away for P2: %s", res.Abs)
	}
	// Memory 1 is the stack: P2 depends on it.
	if !res.Abs.MemEnabled[1] {
		t.Fatalf("stack memory must be kept for P2: %s", res.Abs)
	}
	if res.Abs.KeptLatches >= res.Abs.KeptLatches+len(res.Abs.FreeLatches) {
		t.Fatalf("no latch reduction")
	}
}

func TestQuickSortConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("N too large must panic")
		}
	}()
	NewQuickSort(QuickSortConfig{N: 100, ArrayAW: 2, DataW: 2, StackAW: 2})
}

func TestDefaultQuickSortMatchesPaper(t *testing.T) {
	cfg := DefaultQuickSort(4)
	if cfg.ArrayAW != 10 || cfg.DataW != 32 || cfg.StackAW != 10 || cfg.N != 4 {
		t.Fatalf("default config diverges from the paper: %+v", cfg)
	}
	q := NewQuickSort(cfg)
	st := q.Netlist().Stats()
	// The paper reports ~200 latches (excluding memory registers).
	if st.Latches < 100 || st.Latches > 400 {
		t.Fatalf("latch count %d far from the paper's ~200", st.Latches)
	}
	if st.Memories != 2 {
		t.Fatalf("expected 2 memories")
	}
}
