// Package designs contains the paper's case-study workloads, written in
// the rtl design-entry layer:
//
//   - QuickSort: the §5 quicksort machine — an iterative quicksort FSM
//     over an arbitrary-initialized array memory with an explicit
//     recursion-stack memory, carrying the paper's P1 (sortedness) and P2
//     (stack/control discipline) properties. Drives Tables 1 and 2.
//   - ImageFilter: a streaming low-pass filter with two line-buffer
//     memories and many reachability properties, standing in for the
//     proprietary "Industry I" design.
//   - Lookup: a multi-port lookup engine with a dead write path, standing
//     in for "Industry II" (one memory, 1 write + 3 read ports, the
//     G(WE=0 ∨ WD=0) invariant, and RD=0 abstraction).
package designs

import (
	"fmt"
	"sort"

	"emmver/internal/aig"
	"emmver/internal/rtl"
	"emmver/internal/sim"
)

// QuickSort FSM states.
const (
	QsInit uint64 = iota
	QsPCheck
	QsPInit
	QsPLoop
	QsSwapRd
	QsSwapWr
	QsFinRd
	QsFinWr
	QsRecurse
	QsPopCheck
	QsPop
	QsCheck0
	QsCheck1
	QsChecked
)

// QuickSortConfig parameterizes the quicksort machine. The paper uses
// N ∈ {3,4,5} over an AW=10, DW=32 array and an AW=10, DW=24 stack.
type QuickSortConfig struct {
	N       int // number of elements to sort (≥ 2)
	ArrayAW int // array address width (paper: 10)
	DataW   int // element width (paper: 32)
	StackAW int // stack address width (paper: 10)
	// Buggy inverts the partition comparison, producing a machine that
	// "sorts" descending — P1 then has real counter-examples, exercising
	// the falsification side of EMM (the use case of the earlier CAV'04
	// paper this one extends).
	Buggy bool
}

// DefaultQuickSort returns the paper's configuration for a given N.
func DefaultQuickSort(n int) QuickSortConfig {
	return QuickSortConfig{N: n, ArrayAW: 10, DataW: 32, StackAW: 10}
}

// QuickSort is the built design with handles for tests and experiments.
type QuickSort struct {
	Cfg    QuickSortConfig
	M      *rtl.Module
	State  *rtl.FSM
	ChkA   *rtl.Reg
	ChkB   *rtl.Reg
	SP     *rtl.Reg
	Lo, Hi *rtl.Reg
	// P1Index and P2Index are the property positions in the netlist.
	P1Index, P2Index int
}

// NewQuickSort builds the quicksort machine.
//
// The algorithm is the standard iterative Lomuto-partition quicksort: the
// left partition is processed immediately (hi ← p-1) and the right
// partition (p+1, hi) is pushed on the stack, matching the paper's
// "recursively called first on the left partition and next on the right".
// The array memory has an arbitrary initial state ("the array is allowed
// to have arbitrary values to begin with"); so does the stack.
//
// Properties:
//
//	P1 ("sorted01"): once the checker has read back elements 0 and 1 after
//	    sorting, arr[0] ≤ arr[1]. Depends on the array and the stack.
//	P2 ("stack-discipline"): immediately after a pop, control is
//	    partitioning the popped range, and that range is well-formed
//	    (lo ≤ hi ≤ N-1). Depends only on the stack and control — the
//	    array contents are irrelevant, which is what EMM+PBA discovers in
//	    Table 2.
func NewQuickSort(cfg QuickSortConfig) *QuickSort {
	if cfg.N < 2 || cfg.N > 1<<uint(cfg.ArrayAW) {
		panic(fmt.Sprintf("designs: quicksort N=%d out of range for AW=%d", cfg.N, cfg.ArrayAW))
	}
	pw := cfg.ArrayAW // pointer (index) width
	if 2*pw > 64 {
		panic("designs: pointer width too large")
	}
	spw := cfg.StackAW + 1 // stack pointer counts up to 2^StackAW
	m := rtl.NewModule(fmt.Sprintf("quicksort_n%d", cfg.N))

	arr := m.Memory("arr", cfg.ArrayAW, cfg.DataW, aig.MemArbitrary)
	// Stack entries hold {lo, hi}; the paper's DW=24 stack comfortably
	// fits two 10-bit pointers.
	stackDW := 2 * pw
	stk := m.Memory("stack", cfg.StackAW, stackDW, aig.MemArbitrary)

	st := m.NewFSM("state", 4, QsInit)
	lo := m.Register("lo", pw, 0)
	hi := m.Register("hi", pw, 0)
	iReg := m.Register("i", pw, 0)
	jReg := m.Register("j", pw, 0)
	pReg := m.Register("p", pw, 0)
	pivot := m.Register("pivot", cfg.DataW, 0)
	tmp := m.Register("tmp", cfg.DataW, 0)
	chkA := m.Register("chkA", cfg.DataW, 0)
	chkB := m.Register("chkB", cfg.DataW, 0)
	sp := m.Register("sp", spw, 0)
	prev := m.Register("prev", 4, QsInit)
	prev.SetNext(st.State())

	in := st.In

	// --- array read port: address muxed by state ---
	raddr := m.Const(cfg.ArrayAW, 0) // CHECK0 reads address 0
	raddr = m.MuxV(in(QsPInit), hi.Q, raddr)
	raddr = m.MuxV(in(QsPLoop), jReg.Q, raddr)
	raddr = m.MuxV(in(QsSwapRd), iReg.Q, raddr)
	raddr = m.MuxV(in(QsFinRd), iReg.Q, raddr)
	raddr = m.MuxV(in(QsCheck1), m.Const(cfg.ArrayAW, 1), raddr)
	re := m.N.Ors(in(QsPInit), in(QsPLoop), in(QsSwapRd), in(QsFinRd), in(QsCheck0), in(QsCheck1))
	rd := arr.Read(raddr, re)

	// --- array write port ---
	waddr := m.MuxV(in(QsSwapRd), jReg.Q, iReg.Q) // SwapRd writes arr[j]
	waddr = m.MuxV(in(QsFinRd), hi.Q, waddr)      // FinRd writes arr[hi]
	wdata := m.MuxV(in(QsFinWr), pivot.Q, m.MuxV(in(QsSwapWr), tmp.Q, rd))
	we := m.N.Ors(in(QsSwapRd), in(QsSwapWr), in(QsFinRd), in(QsFinWr))
	arr.Write(waddr, wdata, we)

	// --- stack ports ---
	pPlus1 := m.Inc(pReg.Q)
	pushData := m.Concat(pPlus1, hi.Q) // {lo: p+1, hi}
	pushNow := m.N.And(in(QsRecurse), m.Ult(pReg.Q, hi.Q))
	stk.Write(m.Truncate(sp.Q, cfg.StackAW), pushData, pushNow)
	spMinus1 := m.Dec(sp.Q)
	srd := stk.Read(m.Truncate(spMinus1, cfg.StackAW), in(QsPop))
	poppedLo := m.Slice(srd, 0, pw)
	poppedHi := m.Slice(srd, pw, 2*pw)

	// --- transitions and datapath updates ---
	nm1 := m.Const(pw, uint64(cfg.N-1))

	// Init: lo←0, hi←N-1.
	st.GotoAlways(QsInit, QsPCheck)
	lo.Update(in(QsInit), m.Const(pw, 0))
	hi.Update(in(QsInit), nm1)

	// PCheck: partition if the range has ≥ 2 elements.
	needPart := m.Ult(lo.Q, hi.Q)
	st.Goto(QsPCheck, needPart, QsPInit)
	st.Goto(QsPCheck, needPart.Not(), QsPopCheck)

	// PInit: pivot ← arr[hi]; i ← lo; j ← lo.
	pivot.Update(in(QsPInit), rd)
	iReg.Update(in(QsPInit), lo.Q)
	jReg.Update(in(QsPInit), lo.Q)
	st.GotoAlways(QsPInit, QsPLoop)

	// PLoop: scan j over [lo, hi).
	jAtEnd := m.Eq(jReg.Q, hi.Q)
	small := m.Ule(rd, pivot.Q) // arr[j] ≤ pivot
	if cfg.Buggy {
		small = m.Ugt(rd, pivot.Q) // inverted comparison: sorts descending
	}
	st.Goto(QsPLoop, jAtEnd, QsFinRd)
	advance := m.N.Ands(in(QsPLoop), jAtEnd.Not(), small.Not())
	jReg.Update(advance, m.Inc(jReg.Q)) // skip large element
	st.Goto(QsPLoop, m.N.And(jAtEnd.Not(), small), QsSwapRd)
	tmp.Update(m.N.And(in(QsPLoop), m.N.And(jAtEnd.Not(), small)), rd) // tmp ← arr[j]

	// SwapRd: arr[j] ← arr[i] (write happens this cycle via wdata=rd).
	st.GotoAlways(QsSwapRd, QsSwapWr)

	// SwapWr: arr[i] ← tmp; i++; j++; continue scanning.
	iReg.Update(in(QsSwapWr), m.Inc(iReg.Q))
	jReg.Update(in(QsSwapWr), m.Inc(jReg.Q))
	st.GotoAlways(QsSwapWr, QsPLoop)

	// FinRd: arr[hi] ← arr[i] (write this cycle); FinWr: arr[i] ← pivot.
	st.GotoAlways(QsFinRd, QsFinWr)
	pReg.Update(in(QsFinWr), iReg.Q)
	st.GotoAlways(QsFinWr, QsRecurse)

	// Recurse: push right partition if nonempty; descend left if
	// nonempty, else pop.
	leftNonempty := m.Ult(lo.Q, pReg.Q) // p > lo
	hi.Update(m.N.And(in(QsRecurse), leftNonempty), m.Dec(pReg.Q))
	sp.Update(pushNow, m.Inc(sp.Q))
	st.Goto(QsRecurse, leftNonempty, QsPCheck)
	st.Goto(QsRecurse, leftNonempty.Not(), QsPopCheck)

	// PopCheck: done when the stack is empty.
	empty := m.IsZero(sp.Q)
	st.Goto(QsPopCheck, empty, QsCheck0)
	st.Goto(QsPopCheck, empty.Not(), QsPop)

	// Pop: {lo, hi} ← stack[sp-1]; sp--.
	lo.Update(in(QsPop), poppedLo)
	hi.Update(in(QsPop), poppedHi)
	sp.Update(in(QsPop), spMinus1)
	st.GotoAlways(QsPop, QsPCheck)

	// Checker: read arr[0] then arr[1].
	chkA.Update(in(QsCheck0), rd)
	st.GotoAlways(QsCheck0, QsCheck1)
	chkB.Update(in(QsCheck1), rd)
	st.GotoAlways(QsCheck1, QsChecked)
	// Checked: terminal self-loop (no Goto).

	m.Done(st.Reg, lo, hi, iReg, jReg, pReg, pivot, tmp, chkA, chkB, sp, prev)

	q := &QuickSort{
		Cfg: cfg, M: m, State: st,
		ChkA: chkA, ChkB: chkB, SP: sp, Lo: lo, Hi: hi,
	}

	// P1: the sorted prefix check.
	p1 := m.N.Implies(in(QsChecked), m.Ule(chkA.Q, chkB.Q))
	q.P1Index = len(m.N.Props)
	m.AssertAlways("P1-sorted01", p1)

	// P2: stack/control discipline after a pop.
	afterPop := m.EqConst(prev.Q, QsPop)
	wellFormed := m.N.Ands(
		st.In(QsPCheck),   // control returned to partitioning
		m.Ule(lo.Q, hi.Q), // popped range is well-formed
		m.Ule(hi.Q, nm1),  // and within the array
	)
	q.P2Index = len(m.N.Props)
	m.AssertAlways("P2-stack-discipline", m.N.Implies(afterPop, wellFormed))

	return q
}

// Netlist returns the underlying netlist.
func (q *QuickSort) Netlist() *aig.Netlist { return q.M.N }

// SimulateSort runs the design on a concrete input array via the
// cycle-accurate simulator and returns the array contents once the FSM
// reaches the Checked state (plus the cycle count). Used by tests to
// confirm the machine actually sorts.
func (q *QuickSort) SimulateSort(input []uint64, maxCycles int) ([]uint64, int, error) {
	if len(input) != q.Cfg.N {
		return nil, 0, fmt.Errorf("designs: input length %d != N=%d", len(input), q.Cfg.N)
	}
	s := sim.New(q.M.N)
	for i, v := range input {
		s.SetMemWord(0, i, v)
	}
	for c := 0; c < maxCycles; c++ {
		s.Begin(nil)
		if s.EvalVec(q.State.State()) == QsChecked {
			out := make([]uint64, q.Cfg.N)
			for i := range out {
				out[i] = s.MemWord(0, i)
			}
			return out, c, nil
		}
		s.Step(nil)
	}
	return nil, 0, fmt.Errorf("designs: quicksort did not finish in %d cycles", maxCycles)
}

// ReferenceSort returns a sorted copy (the software oracle).
func ReferenceSort(in []uint64) []uint64 {
	out := append([]uint64(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
