package designs

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/sim"
)

// tinyFilter keeps the line short so witnesses stay shallow.
func tinyFilter() ImageFilterConfig {
	return ImageFilterConfig{LineWidth: 3, AW: 3, DW: 4, NumProps: 16}
}

// streamImage feeds pixels row-major and collects the output after each
// cycle.
func streamImage(f *ImageFilter, img [][]uint64) []uint64 {
	s := sim.New(f.M.N)
	var outs []uint64
	valid := f.M.N.Inputs // resolved below by name
	_ = valid
	var validID aig.NodeID
	var pixelIDs []aig.NodeID
	for _, id := range f.M.N.Inputs {
		name := f.M.N.InputName(id)
		if name == "valid" {
			validID = id
		}
		if len(name) >= 5 && name[:5] == "pixel" {
			pixelIDs = append(pixelIDs, id)
		}
	}
	for _, row := range img {
		for _, px := range row {
			in := map[aig.NodeID]bool{validID: true}
			for b, id := range pixelIDs {
				in[id] = px>>uint(b)&1 == 1
			}
			s.Step(in)
			s.Begin(nil)
			outs = append(outs, s.EvalVec(f.Out))
		}
	}
	return outs
}

func TestFilterComputesSmoothing(t *testing.T) {
	cfg := tinyFilter()
	f := NewImageFilter(cfg)
	w := cfg.LineWidth
	img := [][]uint64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
		{10, 11, 12},
	}
	outs := streamImage(f, img)
	// Output at cycle t reflects the pixel consumed at cycle t-1 (one
	// register of latency). For a pixel at row r ≥ 2, col c, the output
	// is (img[r-2][c] + img[r-1][c] + img[r][c]) / 4.
	for r := 2; r < len(img); r++ {
		for c := 0; c < w; c++ {
			cycle := r*w + c // output registered one cycle after input r*w+c
			want := (img[r-2][c] + img[r-1][c] + img[r][c]) / 4
			if outs[cycle] != want {
				t.Fatalf("row %d col %d: out=%d want %d (all %v)", r, c, outs[cycle], want, outs)
			}
		}
	}
}

func TestFilterOutputZeroWhileUnprimed(t *testing.T) {
	cfg := tinyFilter()
	f := NewImageFilter(cfg)
	img := [][]uint64{{15, 15, 15}, {15, 15, 15}}
	outs := streamImage(f, img)
	for i, o := range outs {
		if o != 0 {
			t.Fatalf("cycle %d: output %d before priming", i, o)
		}
	}
}

func TestFilterMaxOutput(t *testing.T) {
	f := NewImageFilter(tinyFilter())
	if f.MaxOutput != 11 { // 3·15/4
		t.Fatalf("MaxOutput=%d want 11", f.MaxOutput)
	}
	if !f.ExpectedReachable(11) || f.ExpectedReachable(12) {
		t.Fatalf("reachability prediction wrong")
	}
}

func TestFilterReachabilitySplit(t *testing.T) {
	cfg := tinyFilter()
	f := NewImageFilter(cfg)
	res := bmc.CheckMany(f.Netlist(), f.PropIndices(), bmc.Options{
		MaxDepth:        40,
		UseEMM:          true,
		Proofs:          true,
		ValidateWitness: true,
	})
	for v := 0; v < cfg.NumProps; v++ {
		r := res.Results[v]
		if f.ExpectedReachable(v) {
			if r.Kind != bmc.KindCE {
				t.Fatalf("out==%d should be reachable, got %v", v, r)
			}
		} else if r.Kind != bmc.KindProof {
			t.Fatalf("out==%d should be proved unreachable, got %v", v, r)
		}
	}
	// High output values need the pipeline primed: depth ≥ 2 lines.
	if res.MaxWitnessDepth < 2*cfg.LineWidth {
		t.Fatalf("max witness depth %d suspiciously shallow", res.MaxWitnessDepth)
	}
	counts := res.Counts()
	if counts[bmc.KindCE] != int(f.MaxOutput)+1 {
		t.Fatalf("CE count %d want %d", counts[bmc.KindCE], f.MaxOutput+1)
	}
}

func TestFilterUnreachableProofIsByInduction(t *testing.T) {
	cfg := tinyFilter()
	f := NewImageFilter(cfg)
	// out == 13 > MaxOutput: backward induction should prove at depth 1
	// (the output register's next value is combinationally bounded).
	r := bmc.Check(f.Netlist(), 13, bmc.BMC3(10))
	if r.Kind != bmc.KindProof || r.ProofSide != "backward" {
		t.Fatalf("expected backward induction proof, got %v (%s)", r, r.ProofSide)
	}
	if r.Depth > 2 {
		t.Fatalf("induction depth too deep: %d", r.Depth)
	}
}

func TestFilterRandomStreamStaysBounded(t *testing.T) {
	cfg := tinyFilter()
	f := NewImageFilter(cfg)
	s := sim.New(f.M.N)
	rng := rand.New(rand.NewSource(9))
	for c := 0; c < 300; c++ {
		in := s.RandomInputs(rng)
		s.Step(in)
		s.Begin(nil)
		if got := s.EvalVec(f.Out); got > f.MaxOutput {
			t.Fatalf("cycle %d: output %d exceeds bound %d", c, got, f.MaxOutput)
		}
	}
}

func TestDefaultFilterMatchesIndustryI(t *testing.T) {
	cfg := DefaultImageFilter()
	if cfg.AW != 10 || cfg.DW != 8 || cfg.NumProps != 216 {
		t.Fatalf("default config diverges from Industry I: %+v", cfg)
	}
	f := NewImageFilter(cfg)
	st := f.Netlist().Stats()
	if st.Memories != 2 {
		t.Fatalf("Industry I has two memories")
	}
	if f.MaxOutput != 191 {
		t.Fatalf("8-bit smoothing bound must be 191, got %d", f.MaxOutput)
	}
	if len(f.Netlist().Props) != 216 {
		t.Fatalf("expected 216 properties")
	}
}
