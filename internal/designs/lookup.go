package designs

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// LookupConfig parameterizes the multi-port lookup engine standing in for
// the paper's "Industry Design II": one memory with AW=12, DW=32, 1 write
// port and 3 read ports, zero-initialized, 8 reachability properties, and
// a latent bug — the write path is dead, so the memory never leaves its
// initial (all-zero) state and every read returns 0.
type LookupConfig struct {
	AW, DW int
	// NumProps is the number of reachability properties (paper: 8).
	NumProps int
	// Latency is the request-pipeline depth; spurious witnesses under
	// full memory abstraction appear at Latency+1 (paper: depth 7).
	Latency int
}

// DefaultLookup returns the Industry-II-shaped configuration.
func DefaultLookup() LookupConfig {
	return LookupConfig{AW: 12, DW: 32, NumProps: 8, Latency: 6}
}

// Lookup is the built design.
type Lookup struct {
	Cfg LookupConfig
	M   *rtl.Module
	// InvariantIndex is the property index of G(WE=0 ∨ WD=0), the
	// invariant the paper proves by backward induction at depth 2.
	InvariantIndex int
	// ReachIndices are the reachability properties.
	ReachIndices []int
}

// NewLookup builds the engine. Three request channels pipeline their
// addresses for Latency cycles before the table lookup commits into a
// sticky response register. A table-update channel drives the write port,
// but the write strobe requires a privilege flag sampled one cycle late —
// and a (buggy) watchdog clears the privilege flag every cycle, so no
// write ever fires and the zero-initialized table stays all-zero.
//
// Consequences, mirroring the Industry II narrative:
//
//   - fully abstracting the memory (no EMM) yields spurious witnesses for
//     every reachability property at depth Latency+1;
//   - with EMM no witness exists at any depth;
//   - the invariant G(WE=0 ∨ WD=0) is provable by backward induction at
//     depth 2 (the privilege pipeline is 2 flops deep);
//   - given the invariant, the memory can be dropped entirely with an
//     RD=0 environment constraint (WithRDZeroConstraint), after which
//     plain BMC-1 with PBA proves all properties.
func NewLookup(cfg LookupConfig) *Lookup {
	if cfg.Latency < 1 {
		panic("designs: lookup latency must be ≥ 1")
	}
	m := rtl.NewModule("lookup")

	table := m.Memory("table", cfg.AW, cfg.DW, aig.MemZero)

	// Dead write path: the write strobe needs last cycle's privilege,
	// but the watchdog unconditionally clears the privilege flag (the
	// latent bug), so privD1 is 0 from cycle 2 on — and it starts 0.
	updReq := m.InputBit("upd_req")
	updAddr := m.Input("upd_addr", cfg.AW)
	updData := m.Input("upd_data", cfg.DW)
	priv := m.BitReg("priv", false)
	priv.SetNext(rtl.Vec{aig.False}) // watchdog: cleared every cycle
	privD1 := m.BitReg("priv_d1", false)
	privD1.SetNext(rtl.Vec{priv.Bit()})
	accept := m.N.And(updReq, privD1.Bit())
	table.Write(updAddr, updData, accept)

	regs := []*rtl.Reg{priv, privD1}

	// Three lookup channels with a Latency-deep request pipeline.
	var resp []*rtl.Reg
	for ch := 0; ch < 3; ch++ {
		req := m.InputBit(fmt.Sprintf("req%d", ch))
		addr := m.Input(fmt.Sprintf("addr%d", ch), cfg.AW)
		v := req
		a := addr
		for st := 0; st < cfg.Latency; st++ {
			vr := m.BitReg(fmt.Sprintf("v%d_%d", ch, st), false)
			vr.SetNext(rtl.Vec{v})
			ar := m.Register(fmt.Sprintf("a%d_%d", ch, st), cfg.AW, 0)
			ar.Update(v, a)
			regs = append(regs, vr, ar)
			v, a = vr.Bit(), ar.Q
		}
		rd := table.Read(a, v)
		r := m.Register(fmt.Sprintf("resp%d", ch), cfg.DW, 0)
		// Responses accumulate looked-up words (OR) so any nonzero read
		// becomes sticky and observable.
		r.Update(v, m.OrV(r.Q, rd))
		resp = append(resp, r)
		regs = append(regs, r)
	}
	m.Done(regs...)

	l := &Lookup{Cfg: cfg, M: m}

	// The paper's invariant: G(WE=0 ∨ WD=0).
	l.InvariantIndex = len(m.N.Props)
	m.AssertAlways("G(we=0 or wd=0)", m.N.Or(accept.Not(), m.IsZero(updData)))

	// Reachability properties: selected response bits can become 1.
	for p := 0; p < cfg.NumProps; p++ {
		ch := p % 3
		bit := (p * 7) % cfg.DW
		l.ReachIndices = append(l.ReachIndices, len(m.N.Props))
		m.AssertAlways(fmt.Sprintf("resp%d-bit%d-stays0", ch, bit),
			resp[ch].Q[bit].Not())
	}
	return l
}

// Netlist returns the underlying netlist.
func (l *Lookup) Netlist() *aig.Netlist { return l.M.N }

// WithRDZeroConstraint returns a fresh copy of the design in which the
// memory's read data is constrained to zero — the abstraction the paper
// applies after proving the invariant ("we abstracted out the memory, but
// applied this constraint to the input read data signals"). Callers then
// verify this netlist without EMM: the memory contributes nothing beyond
// the constrained read nets.
func (l *Lookup) WithRDZeroConstraint() *aig.Netlist {
	n := NewLookup(l.Cfg)
	net := n.M.N
	for _, rp := range net.Memories[0].Reads {
		for _, d := range rp.DataLits() {
			net.AddConstraint(d.Not())
		}
	}
	return net
}
