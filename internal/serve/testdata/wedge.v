// The k-induction wedge: a zero-initialized ROM (no write port) whose
// read address comes from the TOP bits of a free-running counter, with
// the property that the registered read data stays zero. The counter
// keeps the recurrence diameter at 2^12, far past any bounded run, and
// arbitrary-initial-state modeling keeps the plain induction step SAT —
// so BMC-3 exhausts its bound undecided. k-induction's write-free-init
// retention ("a memory nobody writes keeps its declared contents") closes
// the induction step immediately. The CI kind smoke requires PROOF here
// and NO_CE from bmc3 at the same bound.
module wedge(input clk);
  (* init = "zero" *) reg [3:0] rom [15:0];
  reg [11:0] cnt;
  always @(posedge clk) cnt <= cnt + 12'd1;
  reg [3:0] r;
  always @(posedge clk) r <= rom[cnt[11:8]];
  assert(r == 4'd0, "rom_reads_zero");
endmodule
