// The growth design in Verilog: one embedded memory with two read
// ports sharing an address bus — the shape the EMM comparator
// memoization and the serving cache are exercised against. The
// assertion (both reads of one address agree) holds; the CI serving
// smoke submits this file twice through `emmv -remote` and requires
// the second verdict to come from the cache.
module growth(input clk, input [3:0] addr, input [7:0] wd, input we);
  (* init = "zero" *) reg [7:0] mem [15:0];
  always @(posedge clk) if (we) mem[addr] <= wd;
  reg [7:0] r0, r1;
  always @(posedge clk) r0 <= mem[addr];
  always @(posedge clk) r1 <= mem[addr];
  assert(r0 == r1, "shared_addr_reads_agree");
endmodule
