package serve

import (
	"sync"

	"emmver/internal/bmc"
	"emmver/internal/spec"
)

// Verdict is the serializable outcome of one verification run, the value
// the cache stores and the server returns.
type Verdict struct {
	Kind      string       `json:"kind"` // NO_CE, CE, PROOF, STABLE, TIMEOUT
	Depth     int          `json:"depth"`
	ProofSide string       `json:"proof_side,omitempty"`
	Witness   *bmc.Witness `json:"witness,omitempty"`
	ElapsedMS int64        `json:"elapsed_ms"`
	// SourceKey identifies the submission whose node coordinates the
	// witness uses; the cache strips the witness when serving a request
	// with a different source.
	SourceKey string `json:"-"`
}

func verdictOf(r *bmc.Result, sourceKey string) *Verdict {
	return &Verdict{
		Kind:      r.Kind.String(),
		Depth:     r.Depth,
		ProofSide: r.ProofSide,
		Witness:   r.Witness,
		ElapsedMS: r.Stats.Elapsed.Milliseconds(),
		SourceKey: sourceKey,
	}
}

// Hit is a cache answer: the verdict plus how it was derived.
type Hit struct {
	Verdict *Verdict
	// Exact is true when the cached verdict answers the request outright
	// (no solver work). False means the verdict is a shallower NO_CE
	// frontier: run the engine, warm-started from WarmFrom.
	Exact bool
	// WarmFrom is the depth a non-exact hit may start checking at (the
	// frontier + 1); 0 on exact hits and cold misses.
	WarmFrom int
}

// family accumulates everything known about one verification problem —
// one (structural netlist, engine, passes) triple — across all depths.
type family struct {
	proof *Verdict // PROOF holds at every depth
	ce    *Verdict // shallowest counter-example; answers any depth >= it
	noCE  *Verdict // deepest counter-example-free frontier
	used  int64    // LRU clock tick of the last touch
}

// proofEntry is one engine-independent proof index record.
type proofEntry struct {
	v    *Verdict
	used int64
}

// Cache is the content-addressed verdict store. All methods are safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	families map[string]*family
	// proofs is the engine-independent proof index: a PROOF verdict states
	// a truth about the problem (netlist + passes), not about the engine
	// that found it, so it is stored a second time under the engine-free
	// ProblemID and answers submissions from *any* engine at any depth —
	// a k-induction proof short-circuits every later BMC-3 or BMC-1
	// request on the same design. CE and NO_CE entries stay per-family:
	// a frontier is only meaningful to the engine flow that produced it.
	proofs map[string]*proofEntry
	cap    int
	clock  int64

	hits   int64 // exact answers served without solver work
	warm   int64 // answers that warm-started a run
	misses int64
	stores int64
}

// NewCache returns a cache bounded to at most cap families (<= 0 selects
// the default 1024); the least-recently-touched family is evicted first.
func NewCache(cap int) *Cache {
	if cap <= 0 {
		cap = 1024
	}
	return &Cache{
		families: make(map[string]*family),
		proofs:   make(map[string]*proofEntry),
		cap:      cap,
	}
}

// FamilyID combines the structural netlist hash with the request's
// depth-independent semantic fields into the cache bucket key.
func FamilyID(netlistKey string, s spec.Spec) string {
	return netlistKey + ":" + s.FamilyKey()
}

// ProblemID is the engine-independent bucket key for the proof index: the
// structural netlist hash plus only the fields that change what is being
// asked (spec.ProblemKey — passes, not engine or depth).
func ProblemID(netlistKey string, s spec.Spec) string {
	return netlistKey + ":" + s.ProblemKey()
}

// Lookup consults the cache for a request at the given depth. A decisive
// entry (PROOF anywhere — found by this engine or any other — CE at
// <= depth, NO_CE frontier at >= depth) returns an exact hit; a shallower
// NO_CE frontier returns a non-exact hit carrying the warm-start depth;
// otherwise nil. Witnesses are only included when sourceKey matches the
// run that produced them — verdicts transfer across isomorphic
// submissions, node coordinates do not.
func (c *Cache) Lookup(familyID, problemID string, depth int, sourceKey string) *Hit {
	return c.lookup(familyID, problemID, depth, sourceKey, true)
}

// Peek is Lookup without touching the hit/miss counters — the worker's
// pre-solve re-check uses it so one request is accounted exactly once.
func (c *Cache) Peek(familyID, problemID string, depth int, sourceKey string) *Hit {
	return c.lookup(familyID, problemID, depth, sourceKey, false)
}

func (c *Cache) lookup(familyID, problemID string, depth int, sourceKey string, count bool) *Hit {
	c.mu.Lock()
	defer c.mu.Unlock()
	tally := func(p *int64) {
		if count {
			*p++
		}
	}
	// The proof index answers first: an unbounded proof holds for every
	// engine and every depth, so it beats whatever the requesting engine's
	// own family knows.
	if pe := c.proofs[problemID]; pe != nil {
		c.clock++
		pe.used = c.clock
		tally(&c.hits)
		return &Hit{Verdict: stripForeignWitness(pe.v, sourceKey), Exact: true}
	}
	f := c.families[familyID]
	if f == nil {
		tally(&c.misses)
		return nil
	}
	c.clock++
	f.used = c.clock
	switch {
	case f.proof != nil:
		tally(&c.hits)
		return &Hit{Verdict: stripForeignWitness(f.proof, sourceKey), Exact: true}
	case f.ce != nil && f.ce.Depth <= depth:
		tally(&c.hits)
		return &Hit{Verdict: stripForeignWitness(f.ce, sourceKey), Exact: true}
	case f.noCE != nil && f.noCE.Depth >= depth:
		tally(&c.hits)
		v := *f.noCE
		v.Depth = depth // the frontier covers the shallower request
		return &Hit{Verdict: &v, Exact: true}
	case f.noCE != nil:
		tally(&c.warm)
		return &Hit{Verdict: f.noCE, WarmFrom: f.noCE.Depth + 1}
	}
	tally(&c.misses)
	return nil
}

// Store records a completed run's verdict under its family. Timeouts and
// PBA-stable stops are not cached — they answer nothing about other
// budgets. NO_CE entries only advance the frontier; CE entries keep the
// shallowest counter-example (deeper re-discoveries add nothing). A PROOF
// is additionally published to the engine-independent proof index under
// problemID, where it answers future submissions from every engine.
func (c *Cache) Store(familyID, problemID string, v *Verdict) {
	if v == nil || v.Kind == "TIMEOUT" || v.Kind == "STABLE" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.families[familyID]
	if f == nil {
		f = &family{}
		c.families[familyID] = f
		c.evictLocked()
	}
	c.clock++
	f.used = c.clock
	c.stores++
	switch v.Kind {
	case "PROOF":
		f.proof = v
		c.proofs[problemID] = &proofEntry{v: v, used: c.clock}
		c.evictProofsLocked()
	case "CE":
		if f.ce == nil || v.Depth < f.ce.Depth {
			f.ce = v
		}
	case "NO_CE":
		if f.noCE == nil || v.Depth > f.noCE.Depth {
			f.noCE = v
		}
	}
}

func (c *Cache) evictLocked() {
	for len(c.families) > c.cap {
		var oldest string
		var min int64 = 1<<63 - 1
		for id, f := range c.families {
			if f.used < min {
				min, oldest = f.used, id
			}
		}
		delete(c.families, oldest)
	}
}

// evictProofsLocked bounds the proof index by the same capacity and LRU
// clock as the family map (it grows at most one entry per PROOF store, so
// in practice it stays far smaller).
func (c *Cache) evictProofsLocked() {
	for len(c.proofs) > c.cap {
		var oldest string
		var min int64 = 1<<63 - 1
		for id, pe := range c.proofs {
			if pe.used < min {
				min, oldest = pe.used, id
			}
		}
		delete(c.proofs, oldest)
	}
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Families int   `json:"families"`
	Hits     int64 `json:"hits"`
	WarmHits int64 `json:"warm_hits"`
	Misses   int64 `json:"misses"`
	Stores   int64 `json:"stores"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Families: len(c.families),
		Hits:     c.hits,
		WarmHits: c.warm,
		Misses:   c.misses,
		Stores:   c.stores,
	}
}

func stripForeignWitness(v *Verdict, sourceKey string) *Verdict {
	if v.Witness == nil || v.SourceKey == sourceKey {
		return v
	}
	out := *v
	out.Witness = nil
	return &out
}
