package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Client speaks the job-server API over TCP or a unix socket. The address
// grammar matches the CLIs' -listen/-connect flags: "unix:/path",
// "tcp:host:port", a bare path (unix), or host:port (tcp).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at addr. No connection is
// made until the first request.
func NewClient(addr string) *Client {
	network, target := splitNetAddr(addr)
	hc := &http.Client{}
	base := "http://" + target
	if network == "unix" {
		// The URL host is a placeholder; every connection dials the socket.
		base = "http://emmserved"
		hc.Transport = &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", target)
			},
		}
	}
	return &Client{base: base, hc: hc}
}

func splitNetAddr(s string) (network, addr string) {
	switch {
	case strings.HasPrefix(s, "unix:"):
		return "unix", s[len("unix:"):]
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", s[len("tcp:"):]
	case strings.Contains(s, "/"):
		return "unix", s
	default:
		return "tcp", s
	}
}

// Submit posts a job. With wait, the call blocks until the verdict is in
// (or the context ends server-side).
func (c *Client) Submit(req Request, wait bool) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := c.base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := c.hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	return decodeStatus(resp)
}

// Job fetches a job's status; with wait it blocks until done.
func (c *Client) Job(id string, wait bool) (*JobStatus, error) {
	url := c.base + "/v1/jobs/" + id
	if wait {
		url += "?wait=1"
	}
	resp, err := c.hc.Get(url)
	if err != nil {
		return nil, err
	}
	return decodeStatus(resp)
}

// Events copies the job's live JSONL progress stream to w until the job
// finishes.
func (c *Client) Events(id string, w io.Writer) error {
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: %s", resp.Status)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Stats fetches the server's cache and queue counters.
func (c *Client) Stats() (map[string]json.RawMessage, error) {
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthy probes /healthz until ok or the deadline passes — the handshake
// CLIs use after forking a server.
func (c *Client) Healthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := c.hc.Get(c.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not healthy after %s: %w", timeout, err)
			}
			return fmt.Errorf("server not healthy after %s", timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func decodeStatus(resp *http.Response) (*JobStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
