// Package serve is the verification-as-a-service layer: a long-running
// job server that accepts netlists over HTTP/JSON, runs them through the
// engines on a bounded worker pool, streams live progress as JSONL, and
// memoizes verdicts in a content-addressed cache.
//
// The cache is keyed by *meaning*, not by bytes: a submission is parsed,
// run through the static compile pipeline its request names, and the
// resulting netlist is hashed structurally (names excluded) together with
// the request's semantic fields (engine, passes — spec.FamilyKey). Two
// submissions that differ in formatting, signal names, or structure the
// pipeline removes land on the same cache family; verdicts flow between
// them. Within a family the depth dimension is exploited monotonically: a
// PROOF answers every depth, a counter-example at depth d answers every
// depth >= d, and a NO_CE frontier at depth k answers shallower requests
// outright and warm-starts deeper ones from k+1 (bmc.Options.StartDepth).
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"emmver/internal/aig"
)

// SourceKey identifies the submission as written: the format, elaboration
// parameters, property index, and the raw source bytes. Witnesses are
// expressed in the source netlist's node coordinates, so a cached witness
// is only returned to requests with a matching SourceKey; the verdict
// itself flows on the structural keys below.
func SourceKey(format, top string, prop int, src []byte) string {
	h := sha256.New()
	h.Write([]byte("emmver-source-v1|" + format + "|" + top + "|"))
	writeInt(h, prop)
	h.Write(src)
	return hex.EncodeToString(h.Sum(nil))
}

// NetlistKey is the canonical structural hash of a compiled netlist with
// respect to one property: every node (kind and fanins), the input and
// latch declarations, the full memory geometry (ports, initialization,
// image), the environment constraints, and the property literal. Names do
// not participate — renaming signals cannot miss the cache — and neither
// do other properties of the same design, so two designs sharing the
// logic cone of the submitted property hash equal after the compile
// pipeline prunes the rest.
func NetlistKey(n *aig.Netlist, props []int) string {
	h := sha256.New()
	h.Write([]byte("emmver-netlist-v1"))
	writeInt(h, n.NumNodes())
	for id := 0; id < n.NumNodes(); id++ {
		nd := n.NodeAt(aig.NodeID(id))
		writeInt(h, int(nd.Kind), int(nd.F0), int(nd.F1))
	}
	writeInt(h, len(n.Inputs))
	for _, id := range n.Inputs {
		writeInt(h, int(id))
	}
	writeInt(h, len(n.Latches))
	for _, l := range n.Latches {
		writeInt(h, int(l.Node), int(l.Next), int(l.Init))
	}
	writeInt(h, len(n.Memories))
	for _, m := range n.Memories {
		writeInt(h, m.AW, m.DW, int(m.Init))
		if m.Init == aig.MemImage {
			writeInt(h, len(m.Image))
			for _, w := range m.Image {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], w)
				h.Write(b[:])
			}
		}
		writeInt(h, len(m.Writes))
		for _, wp := range m.Writes {
			writeLits(h, wp.Addr)
			writeLits(h, wp.Data)
			writeInt(h, int(wp.En))
		}
		writeInt(h, len(m.Reads))
		for _, rp := range m.Reads {
			writeLits(h, rp.Addr)
			writeInt(h, int(rp.En))
			writeInt(h, len(rp.Data))
			for _, d := range rp.Data {
				writeInt(h, int(d))
			}
		}
	}
	writeInt(h, len(n.Constraints))
	for _, c := range n.Constraints {
		writeInt(h, int(c))
	}
	writeInt(h, len(props))
	for _, pi := range props {
		writeInt(h, int(n.Props[pi].OK))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeInt(h hash.Hash, vs ...int) {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
		h.Write(b[:])
	}
}

func writeLits(h hash.Hash, ls []aig.Lit) {
	writeInt(h, len(ls))
	for _, l := range ls {
		writeInt(h, int(l))
	}
}
