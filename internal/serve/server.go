package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"emmver/internal/aig"
	"emmver/internal/aiger"
	"emmver/internal/bmc"
	"emmver/internal/btor2"
	"emmver/internal/obs"
	"emmver/internal/pass"
	"emmver/internal/spec"
	"emmver/internal/verilog"
)

// Request is one verification submission: a netlist in any of the
// supported source formats plus the request Spec. Binary formats (AIGER's
// binary mode) travel in SourceB64; everything else fits in Source.
type Request struct {
	Format    string            `json:"format"`               // verilog, btor2, or aiger
	Source    string            `json:"source,omitempty"`     // source text
	SourceB64 string            `json:"source_b64,omitempty"` // base64 alternative for binary formats
	Top       string            `json:"top,omitempty"`        // verilog top module (default: last)
	Params    map[string]uint64 `json:"params,omitempty"`     // verilog parameter overrides
	Prop      int               `json:"prop"`                 // property index within the design
	Spec      spec.Spec         `json:"spec"`                 // engine configuration
}

// JobStatus is the wire representation of a job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // queued, running, done, failed
	// Cached is true when the verdict came from the cache with no solver
	// work at all.
	Cached bool `json:"cached"`
	// WarmStart is the depth the run's per-depth checks began at (0 =
	// cold) when a shallower cached frontier pre-answered the prefix.
	WarmStart int      `json:"warm_start,omitempty"`
	Verdict   *Verdict `json:"verdict,omitempty"`
	Error     string   `json:"error,omitempty"`
	// Key is the exact content-addressed identity (netlist × spec × depth);
	// Family is the depth-independent bucket verdicts transfer within.
	Key    string `json:"key"`
	Family string `json:"family"`
}

// Config parameterizes a Server.
type Config struct {
	// Workers bounds the solving pool (0 = NumCPU via par.Jobs semantics
	// downstream; each job additionally fans out per its own Spec.Jobs).
	Workers int
	// CacheCap bounds the verdict cache (families; 0 = default 1024).
	CacheCap int
	// QueueDepth bounds the backlog (0 = default 256); submissions beyond
	// it are rejected with 503.
	QueueDepth int
	// Obs receives server-lifecycle events (job accepted/finished).
	Obs *obs.Observer
}

type job struct {
	id        string
	req       Request
	netlist   *aig.Netlist
	depth     int
	familyID  string
	problemID string
	key       string
	sourceKey string
	log       *eventLog
	done      chan struct{}

	mu        sync.Mutex
	state     string
	cached    bool
	warmStart int
	verdict   *Verdict
	err       string
}

// Server is the verification job server. Create with New, expose with
// Handler or Serve, stop with Shutdown.
type Server struct {
	cfg   Config
	cache *Cache
	queue chan *job

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	byKey  map[string]*job // in-flight dedup: key+sourceKey → newest job
	seq    int
	closed bool
}

// New starts a server's worker pool and returns it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		cache:  NewCache(cfg.CacheCap),
		queue:  make(chan *job, cfg.QueueDepth),
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
		byKey:  make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Cache exposes the verdict cache (tests and the stats endpoint).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Shutdown stops accepting jobs, cancels running ones, and waits for the
// pool to drain.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	close(s.queue)
	s.wg.Wait()
}

// Handler returns the HTTP API:
//
//	POST /v1/jobs            submit (Request JSON; ?wait=1 blocks until done)
//	GET  /v1/jobs/{id}       job status (?wait=1 blocks until done)
//	GET  /v1/jobs/{id}/events  live JSONL progress stream (NDJSON)
//	GET  /v1/stats           cache + queue counters
//	GET  /healthz            liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Serve runs the HTTP API on l until Shutdown (or a listener error).
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	go func() {
		<-s.ctx.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	err := srv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, status, err := s.submit(req)
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.done:
		case <-r.Context().Done():
		case <-s.ctx.Done():
		}
	}
	writeJSON(w, j.status())
}

// submit validates, keys, and either answers from cache or enqueues.
func (s *Server) submit(req Request) (*job, int, error) {
	if err := req.Spec.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}
	raw, err := req.sourceBytes()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	n, err := parseNetlist(req.Format, raw, req.Top, req.Params)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("parse %s: %w", req.Format, err)
	}
	if req.Prop < 0 || req.Prop >= len(n.Props) {
		return nil, http.StatusBadRequest,
			fmt.Errorf("property %d out of range (design has %d)", req.Prop, len(n.Props))
	}
	canon := req.Spec.Canonical()
	// The compile pipeline is deterministic, so hashing its output here
	// and letting the engine recompile identically later keeps the key
	// honest without threading compiled state through the queue.
	compiled, err := pass.Compile(n, []int{req.Prop}, pass.Options{Spec: canon.Passes})
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	netKey := NetlistKey(compiled.N, compiled.Props)
	famID := FamilyID(netKey, req.Spec)
	probID := ProblemID(netKey, req.Spec)
	srcKey := SourceKey(req.Format, req.Top, req.Prop, raw)
	key := famID + fmt.Sprintf(":d%d", canon.Depth)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server shutting down")
	}
	// Identical in-flight submission (same content, same source): attach
	// to the running job instead of queuing a duplicate. Completed jobs
	// are not reused — their verdicts are served through the cache below,
	// which keeps the hit accounting honest.
	if prev := s.byKey[key+":"+srcKey]; prev != nil {
		if st := prev.status(); st.State == "queued" || st.State == "running" {
			s.mu.Unlock()
			return prev, http.StatusOK, nil
		}
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%d", s.seq),
		req:       req,
		netlist:   n,
		depth:     canon.Depth,
		familyID:  famID,
		problemID: probID,
		key:       key,
		sourceKey: srcKey,
		log:       newEventLog(),
		done:      make(chan struct{}),
		state:     "queued",
	}
	s.jobs[j.id] = j
	s.byKey[key+":"+srcKey] = j
	s.mu.Unlock()
	s.cfg.Obs.Point("serve.submit", obs.F("job", j.id), obs.F("family", famID[:16]))

	if hit := s.cache.Lookup(famID, probID, canon.Depth, srcKey); hit != nil && hit.Exact {
		j.finish(hit.Verdict, true, 0, "")
		return j, http.StatusOK, nil
	}
	select {
	case s.queue <- j:
	default:
		j.finish(nil, false, 0, "queue full")
		s.mu.Lock()
		delete(s.byKey, key+":"+srcKey)
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("queue full (%d jobs)", s.cfg.QueueDepth)
	}
	return j, http.StatusAccepted, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	switch sub {
	case "":
		if r.URL.Query().Get("wait") == "1" {
			select {
			case <-j.done:
			case <-r.Context().Done():
			case <-s.ctx.Done():
			}
		}
		writeJSON(w, j.status())
	case "events":
		s.streamEvents(w, r, j)
	default:
		http.Error(w, "unknown subresource", http.StatusNotFound)
	}
}

// streamEvents tails the job's JSONL log as NDJSON until the job is done
// or the client hangs up.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	off := 0
	for {
		chunk, next, done := j.log.Next(off)
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		off = next
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"cache":   s.cache.Stats(),
		"jobs":    jobs,
		"queued":  len(s.queue),
		"workers": s.cfg.Workers,
	})
}

func (s *Server) worker(slot int) {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(slot, j)
	}
}

func (s *Server) run(slot int, j *job) {
	j.setState("running")
	// A duplicate may have populated the cache between submit and now.
	// Peek: this request was already accounted at submit time.
	warmFrom := 0
	if hit := s.cache.Peek(j.familyID, j.problemID, j.depth, j.sourceKey); hit != nil {
		if hit.Exact {
			j.finish(hit.Verdict, true, 0, "")
			return
		}
		if j.req.Spec.WarmEligible() {
			warmFrom = hit.WarmFrom
		}
	}
	ob := newJobObserver(j.log)
	sp := ob.Span("serve.job",
		obs.F("job", j.id), obs.F("worker", slot),
		obs.F("engine", j.req.Spec.Canonical().Engine),
		obs.F("depth", j.depth), obs.F("warm_from", warmFrom))
	res, err := j.req.Spec.RunCtx(s.ctx, j.netlist, j.req.Prop, warmFrom, func(o *bmc.Options) {
		o.Obs = ob
		o.ValidateWitness = true
	})
	sp.End()
	j.log.CloseLog()
	if err != nil {
		j.finish(nil, false, warmFrom, err.Error())
		return
	}
	v := verdictOf(res, j.sourceKey)
	s.cache.Store(j.familyID, j.problemID, v)
	j.finish(v, false, warmFrom, "")
	s.cfg.Obs.Point("serve.done", obs.F("job", j.id), obs.F("kind", v.Kind))
}

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

func (j *job) finish(v *Verdict, cached bool, warm int, errMsg string) {
	j.mu.Lock()
	if j.state == "done" || j.state == "failed" {
		j.mu.Unlock()
		return
	}
	j.verdict = v
	j.cached = cached
	j.warmStart = warm
	if errMsg != "" {
		j.state = "failed"
		j.err = errMsg
	} else {
		j.state = "done"
	}
	j.mu.Unlock()
	j.log.CloseLog()
	close(j.done)
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.id,
		State:     j.state,
		Cached:    j.cached,
		WarmStart: j.warmStart,
		Verdict:   j.verdict,
		Error:     j.err,
		Key:       j.key,
		Family:    j.familyID,
	}
}

func (r *Request) sourceBytes() ([]byte, error) {
	switch {
	case r.Source != "" && r.SourceB64 != "":
		return nil, fmt.Errorf("source and source_b64 are mutually exclusive")
	case r.SourceB64 != "":
		return base64.StdEncoding.DecodeString(r.SourceB64)
	case r.Source != "":
		return []byte(r.Source), nil
	}
	return nil, fmt.Errorf("empty source")
}

func parseNetlist(format string, src []byte, top string, params map[string]uint64) (*aig.Netlist, error) {
	switch strings.ToLower(format) {
	case "verilog":
		file, err := verilog.Parse(string(src))
		if err != nil {
			return nil, err
		}
		if top == "" && len(file.Modules) > 0 {
			top = file.Modules[len(file.Modules)-1].Name
		}
		return verilog.ElaborateWithParams(file, top, params)
	case "btor2":
		return btor2.Read(bytes.NewReader(src))
	case "aiger":
		return aiger.Read(bytes.NewReader(src))
	default:
		return nil, fmt.Errorf("unknown format %q (want verilog, btor2, or aiger)", format)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
