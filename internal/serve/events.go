package serve

import (
	"sync"

	"emmver/internal/obs"
)

// eventLog is a grow-only byte log of JSONL event lines with blocking
// tail semantics: writers append, readers snapshot from an offset and can
// wait for more. One log backs each job's /events stream.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Write implements io.Writer for the JSONL encoder.
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	l.buf = append(l.buf, p...)
	l.mu.Unlock()
	l.cond.Broadcast()
	return len(p), nil
}

// CloseLog marks the stream complete and wakes all tailing readers.
func (l *eventLog) CloseLog() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Next returns the bytes past from, blocking until data arrives or the
// log closes. The second result is the new offset; done reports that no
// further data will come.
func (l *eventLog) Next(from int) (chunk []byte, next int, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.buf) <= from && !l.closed {
		l.cond.Wait()
	}
	if from > len(l.buf) {
		from = len(l.buf)
	}
	chunk = append([]byte(nil), l.buf[from:]...)
	return chunk, from + len(chunk), l.closed && from+len(chunk) == len(l.buf)
}

// flushSink adapts the obs JSONL encoder to the event log with per-event
// flushing, so /events subscribers see progress live instead of in 64 KiB
// buffered bursts.
type flushSink struct{ j *obs.JSONL }

func newJobObserver(l *eventLog) *obs.Observer {
	return obs.New(obs.NewRegistry(), flushSink{j: obs.NewJSONL(l)})
}

func (s flushSink) Emit(e obs.Event) {
	s.j.Emit(e)
	s.j.Flush()
}
