package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"emmver/internal/btor2"
	"emmver/internal/exp"
	"emmver/internal/pass"
	"emmver/internal/rtl"
	"emmver/internal/spec"
)

// counterSrc is falsifiable at depth 9 (CE) — the witness-bearing design.
const counterSrc = `
module counter(input clk, input en, input rst);
  reg [3:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 4'd0;
    else if (en) cnt <= cnt + 4'd1;
  end
  assert(cnt != 4'd9, "never9");
endmodule`

// counterRenamedSrc is the same circuit with every identifier renamed:
// structurally isomorphic, byte-wise different.
const counterRenamedSrc = `
module z(input clk, input go, input clr);
  reg [3:0] k;
  always @(posedge clk) begin
    if (clr) k <= 4'd0;
    else if (go) k <= k + 4'd1;
  end
  assert(k != 4'd9, "p");
endmodule`

// growthBTOR2 serializes the §S2 shared-address design (NO_CE-valid
// read-consistency property) at small widths as BTOR2 text.
func growthBTOR2(t *testing.T, decoys int) string {
	t.Helper()
	cfg := exp.DefaultGrowthSolve()
	cfg.AW, cfg.DW = 3, 4
	cfg.Decoys = decoys
	var buf bytes.Buffer
	if err := btor2.Write(&buf, exp.GrowthSolveNetlist(cfg)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func testServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := New(Config{Workers: 2})
	t.Cleanup(s.Shutdown)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.Listener.Addr().String())
}

func submitWait(t *testing.T, c *Client, req Request) *JobStatus {
	t.Helper()
	st, err := c.Submit(req, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job %s state %s (error %q)", st.ID, st.State, st.Error)
	}
	return st
}

func growthReq(t *testing.T, depth, decoys int) Request {
	return Request{
		Format: "btor2",
		Source: growthBTOR2(t, decoys),
		Prop:   0,
		Spec:   spec.Spec{Engine: spec.EngineBMC2, Depth: depth},
	}
}

// A byte-identical resubmission must be answered from the cache with the
// same verdict and no solver work.
func TestDuplicateSubmissionCacheHit(t *testing.T) {
	s, c := testServer(t)
	first := submitWait(t, c, growthReq(t, 8, 0))
	if first.Cached || first.Verdict == nil || first.Verdict.Kind != "NO_CE" {
		t.Fatalf("first run: cached=%v verdict=%+v", first.Cached, first.Verdict)
	}
	second := submitWait(t, c, growthReq(t, 8, 0))
	if !second.Cached {
		t.Fatalf("duplicate was re-solved: %+v", second)
	}
	if second.Verdict.Kind != first.Verdict.Kind || second.Verdict.Depth != first.Verdict.Depth {
		t.Fatalf("cached verdict drifted: first %+v, second %+v", first.Verdict, second.Verdict)
	}
	if st := s.CacheStats(); st.Hits < 1 {
		t.Fatalf("no cache hit recorded: %+v", st)
	}
}

// A deeper resubmission of a NO_CE family must warm-start from the cached
// frontier instead of re-checking the shallow prefix.
func TestDeeperResubmissionWarmStarts(t *testing.T) {
	s, c := testServer(t)
	shallow := submitWait(t, c, growthReq(t, 6, 0))
	if shallow.Verdict.Kind != "NO_CE" || shallow.Verdict.Depth != 6 {
		t.Fatalf("shallow: %+v", shallow.Verdict)
	}
	deep := submitWait(t, c, growthReq(t, 12, 0))
	if deep.Cached {
		t.Fatalf("deeper request must solve, not hit: %+v", deep)
	}
	if deep.WarmStart != 7 {
		t.Fatalf("warm start %d, want 7 (frontier 6 + 1)", deep.WarmStart)
	}
	if deep.Verdict.Kind != "NO_CE" || deep.Verdict.Depth != 12 {
		t.Fatalf("deep verdict: %+v", deep.Verdict)
	}
	if st := s.CacheStats(); st.WarmHits < 1 {
		t.Fatalf("no warm hit recorded: %+v", st)
	}
	// And a shallower request is now answered outright at its own depth.
	mid := submitWait(t, c, growthReq(t, 9, 0))
	if !mid.Cached || mid.Verdict.Kind != "NO_CE" || mid.Verdict.Depth != 9 {
		t.Fatalf("mid-depth after frontier 12: %+v", mid)
	}
}

// A near-duplicate — the same problem salted with structure the compile
// pipeline removes — lands on the same family and hits.
func TestNearDuplicateHitsAfterPasses(t *testing.T) {
	_, c := testServer(t)
	clean := submitWait(t, c, growthReq(t, 8, 0))
	salted := submitWait(t, c, growthReq(t, 8, 2))
	if clean.Family != salted.Family {
		t.Fatalf("families diverge:\n clean:  %s\n salted: %s", clean.Family, salted.Family)
	}
	if !salted.Cached || salted.Verdict.Kind != clean.Verdict.Kind {
		t.Fatalf("near-duplicate missed: %+v", salted)
	}
}

// Verdicts transfer across isomorphic-but-renamed submissions; witnesses
// (which live in source node coordinates) do not.
func TestRenamedDesignSharesVerdictNotWitness(t *testing.T) {
	_, c := testServer(t)
	req := Request{Format: "verilog", Source: counterSrc, Prop: 0,
		Spec: spec.Spec{Engine: spec.EngineBMC3, Depth: 15}}
	first := submitWait(t, c, req)
	if first.Verdict.Kind != "CE" || first.Verdict.Depth != 9 || first.Verdict.Witness == nil {
		t.Fatalf("counter CE: %+v", first.Verdict)
	}
	// Same bytes → witness replays, so it is served.
	again := submitWait(t, c, req)
	if !again.Cached || again.Verdict.Witness == nil {
		t.Fatalf("identical resubmission lost its witness: %+v", again)
	}
	// Renamed bytes → same family, verdict served, witness withheld.
	renamed := submitWait(t, c, Request{Format: "verilog", Source: counterRenamedSrc, Prop: 0,
		Spec: spec.Spec{Engine: spec.EngineBMC3, Depth: 15}})
	if renamed.Family != first.Family {
		t.Fatalf("renamed design missed the family:\n %s\n %s", first.Family, renamed.Family)
	}
	if !renamed.Cached || renamed.Verdict.Kind != "CE" || renamed.Verdict.Depth != 9 {
		t.Fatalf("renamed verdict: cached=%v %+v", renamed.Cached, renamed.Verdict)
	}
	if renamed.Verdict.Witness != nil {
		t.Fatal("witness crossed a source-key boundary")
	}
}

// A cached CE at depth d answers any request with depth >= d; a shallower
// request must not be served the deep counter-example.
func TestCEDepthSemantics(t *testing.T) {
	_, c := testServer(t)
	req := Request{Format: "verilog", Source: counterSrc, Prop: 0,
		Spec: spec.Spec{Engine: spec.EngineBMC3, Depth: 15}}
	if st := submitWait(t, c, req); st.Verdict.Kind != "CE" {
		t.Fatalf("seed: %+v", st.Verdict)
	}
	deeper := req
	deeper.Spec.Depth = 40
	if st := submitWait(t, c, deeper); !st.Cached || st.Verdict.Kind != "CE" || st.Verdict.Depth != 9 {
		t.Fatalf("deeper request after CE: %+v", st)
	}
	shallow := req
	shallow.Spec.Depth = 5
	st := submitWait(t, c, shallow)
	if st.Cached || st.Verdict.Kind != "NO_CE" {
		t.Fatalf("depth-5 request: cached=%v %+v (CE at 9 must not answer depth 5)", st.Cached, st.Verdict)
	}
}

// The events endpoint streams the job's JSONL progress.
func TestEventsStream(t *testing.T) {
	_, c := testServer(t)
	st := submitWait(t, c, growthReq(t, 6, 0))
	var buf bytes.Buffer
	if err := c.Events(st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serve.job") {
		t.Fatalf("event stream missing the job span:\n%s", buf.String())
	}
}

// Structural canonicalization of the netlist half of the cache key:
// renamings hash equal, semantic differences hash apart.
func TestNetlistKeyCanonicalization(t *testing.T) {
	build := func(memName, cntName string, aw int) *rtl.Module {
		m := rtl.NewModule("m")
		mem := m.Memory(memName, aw, 4, 1) // aig.MemArbitrary
		c := m.Register(cntName, aw, 0)
		c.SetNext(m.Inc(c.Q))
		rd := mem.Read(c.Q, m.InputBit("re"))
		m.AssertAlways("p", m.EqConst(rd, 0).Not())
		m.Done(c)
		return m
	}
	key := func(m *rtl.Module) string {
		cc, err := pass.Compile(m.N, []int{0}, pass.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return NetlistKey(cc.N, cc.Props)
	}
	a := key(build("mem", "cnt", 3))
	b := key(build("storage", "k", 3))
	if a != b {
		t.Error("renamed design changed the structural key")
	}
	if a == key(build("mem", "cnt", 4)) {
		t.Error("different memory geometry collided")
	}

	// Spec half: depth changes the exact key but not the family; engine
	// changes both (covered in internal/spec, re-checked here end to end).
	s6 := spec.Spec{Engine: spec.EngineBMC2, Depth: 6}
	s9 := spec.Spec{Engine: spec.EngineBMC2, Depth: 9}
	if FamilyID(a, s6) != FamilyID(a, s9) {
		t.Error("depth leaked into the family key")
	}
	if FamilyID(a, s6) == FamilyID(a, spec.Spec{Engine: spec.EngineBMC3, Depth: 6}) {
		t.Error("engine did not separate families")
	}
}
