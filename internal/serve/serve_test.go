package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"emmver/internal/btor2"
	"emmver/internal/exp"
	"emmver/internal/pass"
	"emmver/internal/rtl"
	"emmver/internal/spec"
)

// counterSrc is falsifiable at depth 9 (CE) — the witness-bearing design.
const counterSrc = `
module counter(input clk, input en, input rst);
  reg [3:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 4'd0;
    else if (en) cnt <= cnt + 4'd1;
  end
  assert(cnt != 4'd9, "never9");
endmodule`

// counterRenamedSrc is the same circuit with every identifier renamed:
// structurally isomorphic, byte-wise different.
const counterRenamedSrc = `
module z(input clk, input go, input clr);
  reg [3:0] k;
  always @(posedge clk) begin
    if (clr) k <= 4'd0;
    else if (go) k <= k + 4'd1;
  end
  assert(k != 4'd9, "p");
endmodule`

// growthBTOR2 serializes the §S2 shared-address design (NO_CE-valid
// read-consistency property) at small widths as BTOR2 text.
func growthBTOR2(t *testing.T, decoys int) string {
	t.Helper()
	cfg := exp.DefaultGrowthSolve()
	cfg.AW, cfg.DW = 3, 4
	cfg.Decoys = decoys
	var buf bytes.Buffer
	if err := btor2.Write(&buf, exp.GrowthSolveNetlist(cfg)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func testServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := New(Config{Workers: 2})
	t.Cleanup(s.Shutdown)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.Listener.Addr().String())
}

func submitWait(t *testing.T, c *Client, req Request) *JobStatus {
	t.Helper()
	st, err := c.Submit(req, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job %s state %s (error %q)", st.ID, st.State, st.Error)
	}
	return st
}

func growthReq(t *testing.T, depth, decoys int) Request {
	return Request{
		Format: "btor2",
		Source: growthBTOR2(t, decoys),
		Prop:   0,
		Spec:   spec.Spec{Engine: spec.EngineBMC2, Depth: depth},
	}
}

// A byte-identical resubmission must be answered from the cache with the
// same verdict and no solver work.
func TestDuplicateSubmissionCacheHit(t *testing.T) {
	s, c := testServer(t)
	first := submitWait(t, c, growthReq(t, 8, 0))
	if first.Cached || first.Verdict == nil || first.Verdict.Kind != "NO_CE" {
		t.Fatalf("first run: cached=%v verdict=%+v", first.Cached, first.Verdict)
	}
	second := submitWait(t, c, growthReq(t, 8, 0))
	if !second.Cached {
		t.Fatalf("duplicate was re-solved: %+v", second)
	}
	if second.Verdict.Kind != first.Verdict.Kind || second.Verdict.Depth != first.Verdict.Depth {
		t.Fatalf("cached verdict drifted: first %+v, second %+v", first.Verdict, second.Verdict)
	}
	if st := s.CacheStats(); st.Hits < 1 {
		t.Fatalf("no cache hit recorded: %+v", st)
	}
}

// A deeper resubmission of a NO_CE family must warm-start from the cached
// frontier instead of re-checking the shallow prefix.
func TestDeeperResubmissionWarmStarts(t *testing.T) {
	s, c := testServer(t)
	shallow := submitWait(t, c, growthReq(t, 6, 0))
	if shallow.Verdict.Kind != "NO_CE" || shallow.Verdict.Depth != 6 {
		t.Fatalf("shallow: %+v", shallow.Verdict)
	}
	deep := submitWait(t, c, growthReq(t, 12, 0))
	if deep.Cached {
		t.Fatalf("deeper request must solve, not hit: %+v", deep)
	}
	if deep.WarmStart != 7 {
		t.Fatalf("warm start %d, want 7 (frontier 6 + 1)", deep.WarmStart)
	}
	if deep.Verdict.Kind != "NO_CE" || deep.Verdict.Depth != 12 {
		t.Fatalf("deep verdict: %+v", deep.Verdict)
	}
	if st := s.CacheStats(); st.WarmHits < 1 {
		t.Fatalf("no warm hit recorded: %+v", st)
	}
	// And a shallower request is now answered outright at its own depth.
	mid := submitWait(t, c, growthReq(t, 9, 0))
	if !mid.Cached || mid.Verdict.Kind != "NO_CE" || mid.Verdict.Depth != 9 {
		t.Fatalf("mid-depth after frontier 12: %+v", mid)
	}
}

// A near-duplicate — the same problem salted with structure the compile
// pipeline removes — lands on the same family and hits.
func TestNearDuplicateHitsAfterPasses(t *testing.T) {
	_, c := testServer(t)
	clean := submitWait(t, c, growthReq(t, 8, 0))
	salted := submitWait(t, c, growthReq(t, 8, 2))
	if clean.Family != salted.Family {
		t.Fatalf("families diverge:\n clean:  %s\n salted: %s", clean.Family, salted.Family)
	}
	if !salted.Cached || salted.Verdict.Kind != clean.Verdict.Kind {
		t.Fatalf("near-duplicate missed: %+v", salted)
	}
}

// Verdicts transfer across isomorphic-but-renamed submissions; witnesses
// (which live in source node coordinates) do not.
func TestRenamedDesignSharesVerdictNotWitness(t *testing.T) {
	_, c := testServer(t)
	req := Request{Format: "verilog", Source: counterSrc, Prop: 0,
		Spec: spec.Spec{Engine: spec.EngineBMC3, Depth: 15}}
	first := submitWait(t, c, req)
	if first.Verdict.Kind != "CE" || first.Verdict.Depth != 9 || first.Verdict.Witness == nil {
		t.Fatalf("counter CE: %+v", first.Verdict)
	}
	// Same bytes → witness replays, so it is served.
	again := submitWait(t, c, req)
	if !again.Cached || again.Verdict.Witness == nil {
		t.Fatalf("identical resubmission lost its witness: %+v", again)
	}
	// Renamed bytes → same family, verdict served, witness withheld.
	renamed := submitWait(t, c, Request{Format: "verilog", Source: counterRenamedSrc, Prop: 0,
		Spec: spec.Spec{Engine: spec.EngineBMC3, Depth: 15}})
	if renamed.Family != first.Family {
		t.Fatalf("renamed design missed the family:\n %s\n %s", first.Family, renamed.Family)
	}
	if !renamed.Cached || renamed.Verdict.Kind != "CE" || renamed.Verdict.Depth != 9 {
		t.Fatalf("renamed verdict: cached=%v %+v", renamed.Cached, renamed.Verdict)
	}
	if renamed.Verdict.Witness != nil {
		t.Fatal("witness crossed a source-key boundary")
	}
}

// A cached CE at depth d answers any request with depth >= d; a shallower
// request must not be served the deep counter-example.
func TestCEDepthSemantics(t *testing.T) {
	_, c := testServer(t)
	req := Request{Format: "verilog", Source: counterSrc, Prop: 0,
		Spec: spec.Spec{Engine: spec.EngineBMC3, Depth: 15}}
	if st := submitWait(t, c, req); st.Verdict.Kind != "CE" {
		t.Fatalf("seed: %+v", st.Verdict)
	}
	deeper := req
	deeper.Spec.Depth = 40
	if st := submitWait(t, c, deeper); !st.Cached || st.Verdict.Kind != "CE" || st.Verdict.Depth != 9 {
		t.Fatalf("deeper request after CE: %+v", st)
	}
	shallow := req
	shallow.Spec.Depth = 5
	st := submitWait(t, c, shallow)
	if st.Cached || st.Verdict.Kind != "NO_CE" {
		t.Fatalf("depth-5 request: cached=%v %+v (CE at 9 must not answer depth 5)", st.Cached, st.Verdict)
	}
}

// wedgeBTOR2 serializes the k-induction wedge: a zero-init ROM read at an
// address taken from the counter's top bits, with the property that
// enabled reads return zero. BMC-3 cannot bound it (the counter pushes the
// recurrence diameter to 2^12), kind proves it at depth 0 via retained
// write-free init.
func wedgeBTOR2(t *testing.T) string {
	t.Helper()
	m := rtl.NewModule("wedge")
	mem := m.Memory("rom", 4, 4, 0) // aig.MemZero
	cnt := m.Register("cnt", 12, 0)
	cnt.SetNext(m.Inc(cnt.Q))
	re := m.InputBit("re")
	rd := mem.Read(cnt.Q[8:], re)
	bad := m.N.And(re, m.NonZero(rd))
	m.AssertAlways("rom-reads-zero", bad.Not())
	m.Done(cnt)
	var buf bytes.Buffer
	if err := btor2.Write(&buf, m.N); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// A PROOF is engine-independent: once kind proves the wedge unboundedly,
// the cached proof answers later submissions from *any* engine at *any*
// depth — even engines that could never have produced it — while the
// per-engine families stay separate.
func TestProofServedAcrossEngines(t *testing.T) {
	s, c := testServer(t)
	src := wedgeBTOR2(t)
	req := func(engine string, depth int) Request {
		return Request{Format: "btor2", Source: src, Prop: 0,
			Spec: spec.Spec{Engine: engine, Depth: depth}}
	}
	proof := submitWait(t, c, req(spec.EngineKInd, 10))
	if proof.Cached || proof.Verdict.Kind != "PROOF" || proof.Verdict.Depth != 0 {
		t.Fatalf("kind on the wedge: cached=%v %+v, want fresh PROOF depth=0", proof.Cached, proof.Verdict)
	}
	for _, engine := range []string{spec.EngineBMC3, spec.EngineBMC1, spec.EngineKInd} {
		got := submitWait(t, c, req(engine, 25))
		if !got.Cached || got.Verdict.Kind != "PROOF" {
			t.Fatalf("%s after kind proof: cached=%v %+v, want cached PROOF", engine, got.Cached, got.Verdict)
		}
		if engine != spec.EngineKInd && got.Family == proof.Family {
			t.Fatalf("%s shares kind's family — proof transfer must cross families, not blur them", engine)
		}
	}
	if st := s.CacheStats(); st.Hits < 3 {
		t.Fatalf("proof serves not accounted as hits: %+v", st)
	}
}

// A cached NO_CE frontier warm-starts a deeper kind request's base case,
// same as the plain BMC engines: kind declares CapWarm and its checks are
// monotone in k.
func TestKIndDeepeningWarmStarts(t *testing.T) {
	_, c := testServer(t)
	// The counter design's CE sits at depth 9 and neither induction check
	// closes (an arbitrary state can hold cnt=9), so below depth 9 kind
	// honestly reports a NO_CE frontier.
	req := func(depth int) Request {
		return Request{Format: "verilog", Source: counterSrc, Prop: 0,
			Spec: spec.Spec{Engine: spec.EngineKInd, Depth: depth}}
	}
	shallow := submitWait(t, c, req(5))
	if shallow.Verdict.Kind != "NO_CE" || shallow.Verdict.Depth != 5 {
		t.Fatalf("shallow kind run: %+v", shallow.Verdict)
	}
	deep := submitWait(t, c, req(8))
	if deep.Cached || deep.WarmStart != 6 {
		t.Fatalf("deep kind run: cached=%v warm=%d, want fresh run warm-started at 6", deep.Cached, deep.WarmStart)
	}
	if deep.Verdict.Kind != "NO_CE" || deep.Verdict.Depth != 8 {
		t.Fatalf("deep kind verdict: %+v", deep.Verdict)
	}
	// Deepening past the frontier into the violation: the warm-started base
	// case finds the depth-9 counter-example.
	ce := submitWait(t, c, req(12))
	if ce.Cached || ce.WarmStart != 9 || ce.Verdict.Kind != "CE" || ce.Verdict.Depth != 9 {
		t.Fatalf("kind past the frontier: cached=%v warm=%d %+v, want CE depth=9 from warm start 9",
			ce.Cached, ce.WarmStart, ce.Verdict)
	}
}

// CE and NO_CE verdicts must NOT cross engines: only a PROOF states an
// engine-independent truth. A bmc2 NO_CE frontier stays invisible to bmc3.
func TestOnlyProofsCrossEngines(t *testing.T) {
	_, c := testServer(t)
	if st := submitWait(t, c, growthReq(t, 8, 0)); st.Verdict.Kind != "NO_CE" {
		t.Fatalf("bmc2 seed: %+v", st.Verdict)
	}
	other := Request{Format: "btor2", Source: growthBTOR2(t, 0), Prop: 0,
		Spec: spec.Spec{Engine: spec.EngineBMC3, Depth: 8}}
	if st := submitWait(t, c, other); st.Cached {
		t.Fatalf("bmc2 NO_CE leaked into a bmc3 request: %+v", st)
	}
}

// The events endpoint streams the job's JSONL progress.
func TestEventsStream(t *testing.T) {
	_, c := testServer(t)
	st := submitWait(t, c, growthReq(t, 6, 0))
	var buf bytes.Buffer
	if err := c.Events(st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serve.job") {
		t.Fatalf("event stream missing the job span:\n%s", buf.String())
	}
}

// Structural canonicalization of the netlist half of the cache key:
// renamings hash equal, semantic differences hash apart.
func TestNetlistKeyCanonicalization(t *testing.T) {
	build := func(memName, cntName string, aw int) *rtl.Module {
		m := rtl.NewModule("m")
		mem := m.Memory(memName, aw, 4, 1) // aig.MemArbitrary
		c := m.Register(cntName, aw, 0)
		c.SetNext(m.Inc(c.Q))
		rd := mem.Read(c.Q, m.InputBit("re"))
		m.AssertAlways("p", m.EqConst(rd, 0).Not())
		m.Done(c)
		return m
	}
	key := func(m *rtl.Module) string {
		cc, err := pass.Compile(m.N, []int{0}, pass.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return NetlistKey(cc.N, cc.Props)
	}
	a := key(build("mem", "cnt", 3))
	b := key(build("storage", "k", 3))
	if a != b {
		t.Error("renamed design changed the structural key")
	}
	if a == key(build("mem", "cnt", 4)) {
		t.Error("different memory geometry collided")
	}

	// Spec half: depth changes the exact key but not the family; engine
	// changes both (covered in internal/spec, re-checked here end to end).
	s6 := spec.Spec{Engine: spec.EngineBMC2, Depth: 6}
	s9 := spec.Spec{Engine: spec.EngineBMC2, Depth: 9}
	if FamilyID(a, s6) != FamilyID(a, s9) {
		t.Error("depth leaked into the family key")
	}
	if FamilyID(a, s6) == FamilyID(a, spec.Spec{Engine: spec.EngineBMC3, Depth: 6}) {
		t.Error("engine did not separate families")
	}
}
