package sim

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

func TestLatchInitAndStep(t *testing.T) {
	m := rtl.NewModule("t")
	q := m.Register("q", 2, 2)
	q.SetNext(m.Inc(q.Q))
	m.Done(q)
	s := New(m.N)
	s.Begin(nil)
	if got := s.EvalVec(q.Q); got != 2 {
		t.Fatalf("init %d want 2", got)
	}
	s.Step(nil)
	s.Begin(nil)
	if got := s.EvalVec(q.Q); got != 3 {
		t.Fatalf("after step %d want 3", got)
	}
	if s.Cycle() != 1 {
		t.Fatalf("cycle count wrong")
	}
}

func TestSetLatchOverride(t *testing.T) {
	m := rtl.NewModule("t")
	q := m.RegisterX("q", 1)
	q.SetNext(q.Q)
	m.Done(q)
	s := New(m.N)
	s.SetLatch(q.Q[0].Node(), true)
	if !s.LatchValue(q.Q[0].Node()) {
		t.Fatalf("SetLatch lost")
	}
	s.Begin(nil)
	if !s.Eval(q.Q[0]) {
		t.Fatalf("override not visible")
	}
}

func TestMemoryReadWriteCommitOrder(t *testing.T) {
	m := rtl.NewModule("t")
	mem := m.Memory("mem", 2, 4, aig.MemZero)
	we := m.InputBit("we")
	addr := m.Input("a", 2)
	data := m.Input("d", 4)
	mem.Write(addr, data, we)
	rd := mem.Read(addr, aig.True)
	s := New(m.N)
	in := map[aig.NodeID]bool{we.Node(): true}
	for i, l := range addr {
		in[l.Node()] = 1>>uint(i)&1 == 1
	}
	for i, l := range data {
		in[l.Node()] = 7>>uint(i)&1 == 1
	}
	s.Begin(in)
	if s.EvalVec(rd) != 0 {
		t.Fatalf("async read must see pre-write contents")
	}
	s.Step(in)
	if s.MemWord(0, 1) != 7 {
		t.Fatalf("write not committed")
	}
	s.Begin(in)
	if s.EvalVec(rd) != 7 {
		t.Fatalf("read after commit wrong")
	}
}

func TestSetMemWordAndImage(t *testing.T) {
	m := rtl.NewModule("t")
	mem := m.Memory("rom", 2, 4, aig.MemImage)
	mem.Mod.Image = []uint64{3, 1, 4, 1}
	raddr := m.Input("ra", 2)
	rd := mem.Read(raddr, aig.True)
	s := New(m.N)
	for a := 0; a < 4; a++ {
		in := map[aig.NodeID]bool{}
		for i, l := range raddr {
			in[l.Node()] = a>>uint(i)&1 == 1
		}
		s.Begin(in)
		if got := s.EvalVec(rd); got != mem.Mod.Image[a] {
			t.Fatalf("rom[%d]=%d want %d", a, got, mem.Mod.Image[a])
		}
	}
	s.SetMemWord(0, 2, 9)
	in := map[aig.NodeID]bool{raddr[1].Node(): true}
	s.Begin(in)
	if got := s.EvalVec(rd); got != 9 {
		t.Fatalf("SetMemWord not visible: %d", got)
	}
}

func TestPropertiesAndConstraints(t *testing.T) {
	m := rtl.NewModule("t")
	x := m.InputBit("x")
	m.AssertAlways("px", x)
	m.Assume(x.Not())
	s := New(m.N)
	res := s.Step(map[aig.NodeID]bool{x.Node(): true})
	if !res.PropOK[0] {
		t.Fatalf("property should hold when x=1")
	}
	if res.ConstraintsOK {
		t.Fatalf("constraint ¬x violated when x=1")
	}
	res = s.Step(map[aig.NodeID]bool{x.Node(): false})
	if res.PropOK[0] || !res.ConstraintsOK {
		t.Fatalf("wrong evaluation when x=0")
	}
}

func TestRandomInputsCoverAllInputs(t *testing.T) {
	m := rtl.NewModule("t")
	m.Input("a", 4)
	m.InputBit("b")
	s := New(m.N)
	in := s.RandomInputs(rand.New(rand.NewSource(1)))
	if len(in) != 5 {
		t.Fatalf("expected 5 inputs, got %d", len(in))
	}
}

func TestRandomizeState(t *testing.T) {
	m := rtl.NewModule("t")
	q := m.Register("q", 8, 0)
	q.SetNext(q.Q)
	m.Done(q)
	mem := m.Memory("mem", 3, 8, aig.MemZero)
	mem.Read(m.Input("ra", 3), aig.True)
	s := New(m.N)
	s.RandomizeState(rand.New(rand.NewSource(7)))
	any := false
	for a := 0; a < 8; a++ {
		if s.MemWord(0, a) != 0 {
			any = true
		}
	}
	s.Begin(nil)
	if s.EvalVec(q.Q) != 0 && !any {
		t.Fatalf("randomize changed nothing")
	}
	for a := 0; a < 8; a++ {
		if s.MemWord(0, a) > 0xff {
			t.Fatalf("randomized word exceeds DW mask")
		}
	}
}

func TestWriteRaceLastPortWins(t *testing.T) {
	m := rtl.NewModule("t")
	mem := m.Memory("mem", 1, 4, aig.MemZero)
	addr := m.Const(1, 0)
	mem.Write(addr, m.Const(4, 5), aig.True)
	mem.Write(addr, m.Const(4, 9), aig.True)
	s := New(m.N)
	s.Step(nil)
	if got := s.MemWord(0, 0); got != 9 {
		t.Fatalf("race: got %d want 9 (higher port wins)", got)
	}
}
