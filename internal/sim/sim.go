// Package sim is a cycle-accurate interpreter for aig netlists with
// concrete memory arrays. It serves two purposes:
//
//   - replaying BMC counter-examples on the un-abstracted design, so every
//     witness produced through EMM constraints is validated against real
//     memory semantics;
//   - randomized simulation in tests, cross-checking the symbolic engines.
//
// Memory semantics follow §2.3 of the paper: reads are asynchronous (data
// valid in the cycle the address is presented with the enable active), and
// writes become visible to reads in the following cycle.
package sim

import (
	"fmt"
	"math/rand"

	"emmver/internal/aig"
)

// Simulator holds the mutable state of one simulation run.
type Simulator struct {
	n       *aig.Netlist
	latches map[aig.NodeID]bool
	mems    []memState

	// per-cycle scratch
	vals   map[aig.NodeID]bool
	inputs map[aig.NodeID]bool

	cycle int
}

type memState struct {
	mem   *aig.Memory
	words []uint64
}

// New builds a simulator with latches at their reset values (InitX latches
// start at 0 unless overridden with SetLatch), zero/image memories at their
// declared contents, and arbitrary-init memories at 0 unless overridden
// with SetMemWord.
func New(n *aig.Netlist) *Simulator {
	s := &Simulator{
		n:       n,
		latches: make(map[aig.NodeID]bool),
	}
	for _, l := range n.Latches {
		s.latches[l.Node] = l.Init == aig.Init1
	}
	for _, m := range n.Memories {
		ms := memState{mem: m, words: make([]uint64, m.Words())}
		if m.Init == aig.MemImage {
			copy(ms.words, m.Image)
		}
		s.mems = append(s.mems, ms)
	}
	return s
}

// Cycle returns the number of completed Step calls.
func (s *Simulator) Cycle() int { return s.cycle }

// SetLatch overrides a latch's current value (e.g. to replay an InitX
// witness).
func (s *Simulator) SetLatch(id aig.NodeID, v bool) { s.latches[id] = v }

// LatchValue returns the current value of a latch node.
func (s *Simulator) LatchValue(id aig.NodeID) bool { return s.latches[id] }

// SetMemWord overrides a memory word (e.g. to install an arbitrary-init
// witness image).
func (s *Simulator) SetMemWord(memIndex int, addr int, word uint64) {
	s.mems[memIndex].words[addr] = word
}

// MemWord reads a memory word directly (bypassing ports).
func (s *Simulator) MemWord(memIndex int, addr int) uint64 {
	return s.mems[memIndex].words[addr]
}

// Eval computes the current-cycle value of a literal given the input values
// installed by the ongoing Step (or Begin) call.
func (s *Simulator) Eval(l aig.Lit) bool {
	v := s.evalNode(l.Node())
	if l.Inverted() {
		return !v
	}
	return v
}

func (s *Simulator) evalNode(id aig.NodeID) bool {
	if v, ok := s.vals[id]; ok {
		return v
	}
	node := s.n.NodeAt(id)
	var v bool
	switch node.Kind {
	case aig.KConst:
		v = false
	case aig.KInput:
		v = s.inputs[id]
	case aig.KLatch:
		v = s.latches[id]
	case aig.KAnd:
		v = s.Eval(node.F0) && s.Eval(node.F1)
	case aig.KMemRead:
		v = s.evalMemRead(id)
	default:
		panic(fmt.Sprintf("sim: unknown node kind %v", node.Kind))
	}
	s.vals[id] = v
	return v
}

func (s *Simulator) evalMemRead(id aig.NodeID) bool {
	for mi := range s.mems {
		ms := &s.mems[mi]
		for _, rp := range ms.mem.Reads {
			for bit, dn := range rp.Data {
				if dn != id {
					continue
				}
				addr := s.evalVec(rp.Addr)
				word := ms.words[addr]
				return word>>uint(bit)&1 == 1
			}
		}
	}
	panic("sim: memread node not found in any port")
}

func (s *Simulator) evalVec(v []aig.Lit) uint64 {
	var out uint64
	for i, l := range v {
		if s.Eval(l) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// EvalVec returns the numeric value of a bus in the current cycle.
func (s *Simulator) EvalVec(v []aig.Lit) uint64 { return s.evalVec(v) }

// Begin installs input values and clears combinational memoization without
// advancing the clock, so Eval can inspect combinational functions of the
// current state and inputs.
func (s *Simulator) Begin(inputs map[aig.NodeID]bool) {
	s.vals = make(map[aig.NodeID]bool, s.n.NumNodes())
	s.inputs = inputs
}

// StepResult reports per-cycle observations.
type StepResult struct {
	PropOK        []bool // one per netlist property
	ConstraintsOK bool   // all environment constraints held
}

// Step advances the design one clock cycle with the given input values
// (missing inputs default to false). It evaluates all properties and
// constraints, applies memory writes, and updates latches.
func (s *Simulator) Step(inputs map[aig.NodeID]bool) StepResult {
	s.vals = make(map[aig.NodeID]bool, s.n.NumNodes())
	s.inputs = inputs

	var res StepResult
	for _, p := range s.n.Props {
		res.PropOK = append(res.PropOK, s.Eval(p.OK))
	}
	res.ConstraintsOK = true
	for _, c := range s.n.Constraints {
		if !s.Eval(c) {
			res.ConstraintsOK = false
		}
	}

	// Evaluate next-state and write effects before committing anything.
	nextLatch := make(map[aig.NodeID]bool, len(s.n.Latches))
	for _, l := range s.n.Latches {
		nextLatch[l.Node] = s.Eval(l.Next)
	}
	type pendingWrite struct {
		mi   int
		addr uint64
		data uint64
	}
	var writes []pendingWrite
	for mi := range s.mems {
		for _, wp := range s.mems[mi].mem.Writes {
			if s.Eval(wp.En) {
				writes = append(writes, pendingWrite{
					mi:   mi,
					addr: s.evalVec(wp.Addr),
					data: s.evalVec(wp.Data),
				})
			}
		}
	}

	// Commit.
	for id, v := range nextLatch {
		s.latches[id] = v
	}
	for _, w := range writes {
		s.mems[w.mi].words[w.addr] = w.data
	}
	s.cycle++
	return res
}

// RandomInputs draws a full input assignment from rng.
func (s *Simulator) RandomInputs(rng *rand.Rand) map[aig.NodeID]bool {
	in := make(map[aig.NodeID]bool, len(s.n.Inputs))
	for _, id := range s.n.Inputs {
		in[id] = rng.Intn(2) == 1
	}
	return in
}

// RandomizeState draws random latch values and memory contents, used by
// property tests that must explore from arbitrary states.
func (s *Simulator) RandomizeState(rng *rand.Rand) {
	for _, l := range s.n.Latches {
		s.latches[l.Node] = rng.Intn(2) == 1
	}
	for mi := range s.mems {
		mask := uint64(1)<<uint(s.mems[mi].mem.DW) - 1
		if s.mems[mi].mem.DW == 64 {
			mask = ^uint64(0)
		}
		for a := range s.mems[mi].words {
			s.mems[mi].words[a] = rng.Uint64() & mask
		}
	}
}
