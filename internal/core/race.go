package core

import (
	"fmt"

	"emmver/internal/aig"
)

// AddRaceProperties implements the extension the paper mentions in §4.1
// ("We can easily extend our approach to check for data races"): EMM's
// multi-port semantics assume a memory location is updated through at most
// one write port per cycle, so for every memory with two or more write
// ports this adds one safety property per write-port pair asserting
//
//	¬(WE_i ∧ WE_j ∧ Addr_i = Addr_j)
//
// in every cycle. The returned indices identify the new properties; a
// counter-example is a concrete cycle in which two ports race on the same
// location (where eq. 4's chain would otherwise silently apply its
// tie-break).
func AddRaceProperties(n *aig.Netlist) []int {
	var props []int
	for _, m := range n.Memories {
		for i := 0; i < len(m.Writes); i++ {
			for j := i + 1; j < len(m.Writes); j++ {
				wi, wj := m.Writes[i], m.Writes[j]
				eq := aig.True
				for b := range wi.Addr {
					eq = n.And(eq, n.Xor(wi.Addr[b], wj.Addr[b]).Not())
				}
				race := n.And(n.And(wi.En, wj.En), eq)
				props = append(props, len(n.Props))
				n.AddProperty(
					fmt.Sprintf("no-race-%s-w%d-w%d", m.Name, i, j),
					race.Not(),
				)
			}
		}
	}
	return props
}
