package core

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
	"emmver/internal/sat"
	"emmver/internal/unroll"
)

// memHarness is a memory whose ports are driven directly by primary inputs,
// so tests can script arbitrary access sequences through SAT assumptions.
type memHarness struct {
	m     *rtl.Module
	u     *unroll.Unroller
	s     *sat.Solver
	g     *Generator
	we    []aig.Lit // write enable per write port
	waddr []rtl.Vec
	wdata []rtl.Vec
	re    []aig.Lit
	raddr []rtl.Vec
	rdata []rtl.Vec
}

func newMemHarness(t *testing.T, aw, dw, nw, nr int, init aig.MemInit, forceArb bool) *memHarness {
	t.Helper()
	m := rtl.NewModule("mh")
	mem := m.Memory("mem", aw, dw, init)
	h := &memHarness{m: m}
	for w := 0; w < nw; w++ {
		we := m.InputBit("we")
		wa := m.Input("wa", aw)
		wd := m.Input("wd", dw)
		mem.Write(wa, wd, we)
		h.we = append(h.we, we)
		h.waddr = append(h.waddr, wa)
		h.wdata = append(h.wdata, wd)
	}
	for r := 0; r < nr; r++ {
		re := m.InputBit("re")
		ra := m.Input("ra", aw)
		rd := mem.Read(ra, re)
		h.re = append(h.re, re)
		h.raddr = append(h.raddr, ra)
		h.rdata = append(h.rdata, rd)
	}
	h.s = sat.New()
	h.u = unroll.New(m.N, h.s, unroll.Initialized)
	h.g = NewGenerator(h.u, forceArb)
	return h
}

// assume pins a design bus to a value at a frame.
func (h *memHarness) assumeVec(v rtl.Vec, frame int, val uint64) []sat.Lit {
	var out []sat.Lit
	for i, l := range v {
		out = append(out, h.u.Lit(l, frame).XorSign(val>>uint(i)&1 == 0))
	}
	return out
}

func (h *memHarness) assumeBit(l aig.Lit, frame int, val bool) sat.Lit {
	return h.u.Lit(l, frame).XorSign(!val)
}

// write scripts a write on port w at the given frame.
func (h *memHarness) write(w, frame int, addr, data uint64) []sat.Lit {
	as := []sat.Lit{h.assumeBit(h.we[w], frame, true)}
	as = append(as, h.assumeVec(h.waddr[w], frame, addr)...)
	as = append(as, h.assumeVec(h.wdata[w], frame, data)...)
	return as
}

// noWrite disables all write ports at a frame.
func (h *memHarness) noWrite(frame int) []sat.Lit {
	var as []sat.Lit
	for w := range h.we {
		as = append(as, h.assumeBit(h.we[w], frame, false))
	}
	return as
}

// read scripts a read on port r at a frame.
func (h *memHarness) read(r, frame int, addr uint64) []sat.Lit {
	as := []sat.Lit{h.assumeBit(h.re[r], frame, true)}
	as = append(as, h.assumeVec(h.raddr[r], frame, addr)...)
	return as
}

// rdEquals returns assumptions forcing the read data of port r at frame to
// equal (or differ from, when negate) a value.
func (h *memHarness) rdEquals(r, frame int, val uint64) []sat.Lit {
	return h.assumeVec(h.rdata[r], frame, val)
}

func TestForwardingBasic(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	h.g.AddUpTo(2)
	var as []sat.Lit
	as = append(as, h.write(0, 0, 5, 9)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.noWrite(2)...)
	as = append(as, h.read(0, 2, 5)...)
	// Read must return 9.
	if got := h.s.Solve(append(as, h.rdEquals(0, 2, 9)...)...); got != sat.Sat {
		t.Fatalf("read of written value must be SAT, got %v", got)
	}
	for wrong := uint64(0); wrong < 16; wrong++ {
		if wrong == 9 {
			continue
		}
		if got := h.s.Solve(append(as, h.rdEquals(0, 2, wrong)...)...); got != sat.Unsat {
			t.Fatalf("read of wrong value %d must be UNSAT", wrong)
		}
	}
}

func TestMostRecentWriteWins(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	h.g.AddUpTo(3)
	var as []sat.Lit
	as = append(as, h.write(0, 0, 2, 7)...)
	as = append(as, h.write(0, 1, 2, 11)...)
	as = append(as, h.noWrite(2)...)
	as = append(as, h.noWrite(3)...)
	as = append(as, h.read(0, 3, 2)...)
	if got := h.s.Solve(append(as, h.rdEquals(0, 3, 11)...)...); got != sat.Sat {
		t.Fatalf("most recent write must be readable")
	}
	if got := h.s.Solve(append(as, h.rdEquals(0, 3, 7)...)...); got != sat.Unsat {
		t.Fatalf("stale write must not be readable")
	}
}

func TestSameCycleWriteNotVisible(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	h.g.AddUpTo(1)
	var as []sat.Lit
	as = append(as, h.write(0, 0, 4, 3)...)
	as = append(as, h.write(0, 1, 4, 12)...)
	as = append(as, h.read(0, 1, 4)...)
	// At frame 1 the frame-1 write is not yet visible: must read 3.
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 3)...)...); got != sat.Sat {
		t.Fatalf("same-cycle write must not be forwarded")
	}
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 12)...)...); got != sat.Unsat {
		t.Fatalf("same-cycle write must not be visible")
	}
}

func TestZeroInitRead(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	h.g.AddUpTo(1)
	var as []sat.Lit
	as = append(as, h.noWrite(0)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.read(0, 1, 6)...)
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 0)...)...); got != sat.Sat {
		t.Fatalf("unwritten zero-init read must be 0")
	}
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 5)...)...); got != sat.Unsat {
		t.Fatalf("unwritten zero-init read must not be nonzero")
	}
}

func TestZeroInitOverwritten(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	h.g.AddUpTo(1)
	var as []sat.Lit
	as = append(as, h.write(0, 0, 6, 15)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.read(0, 1, 6)...)
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 0)...)...); got != sat.Unsat {
		t.Fatalf("overwritten location must not read 0")
	}
}

func TestArbitraryInitConsistency(t *testing.T) {
	// Two reads of the same never-written address must agree (eq. 6).
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemArbitrary, false)
	h.g.AddUpTo(2)
	var as []sat.Lit
	as = append(as, h.noWrite(0)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.noWrite(2)...)
	as = append(as, h.read(0, 0, 3)...)
	as = append(as, h.read(0, 2, 3)...)
	// They can both be 7.
	both := append(append([]sat.Lit{}, as...), h.rdEquals(0, 0, 7)...)
	both = append(both, h.rdEquals(0, 2, 7)...)
	if got := h.s.Solve(both...); got != sat.Sat {
		t.Fatalf("consistent arbitrary reads must be SAT")
	}
	// They cannot differ.
	diff := append(append([]sat.Lit{}, as...), h.rdEquals(0, 0, 7)...)
	diff = append(diff, h.rdEquals(0, 2, 8)...)
	if got := h.s.Solve(diff...); got != sat.Unsat {
		t.Fatalf("inconsistent arbitrary reads must be UNSAT (eq. 6)")
	}
}

func TestArbitraryInitDistinctAddressesFree(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemArbitrary, false)
	h.g.AddUpTo(1)
	var as []sat.Lit
	as = append(as, h.noWrite(0)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.read(0, 0, 3)...)
	as = append(as, h.read(0, 1, 4)...)
	as = append(as, h.rdEquals(0, 0, 7)...)
	as = append(as, h.rdEquals(0, 1, 8)...)
	if got := h.s.Solve(as...); got != sat.Sat {
		t.Fatalf("reads of distinct unwritten addresses may differ")
	}
}

func TestArbitraryInitOverriddenByWrite(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemArbitrary, false)
	h.g.AddUpTo(2)
	var as []sat.Lit
	as = append(as, h.read(0, 0, 3)...)
	as = append(as, h.rdEquals(0, 0, 9)...) // initial value at 3 seen as 9
	as = append(as, h.noWrite(0)...)
	as = append(as, h.write(0, 1, 3, 4)...)
	as = append(as, h.noWrite(2)...)
	as = append(as, h.read(0, 2, 3)...)
	if got := h.s.Solve(append(as, h.rdEquals(0, 2, 4)...)...); got != sat.Sat {
		t.Fatalf("write must override arbitrary init")
	}
	if got := h.s.Solve(append(as, h.rdEquals(0, 2, 9)...)...); got != sat.Unsat {
		t.Fatalf("stale init value must not be readable after write")
	}
}

func TestMultiReadPortsShareInit(t *testing.T) {
	// Cross-port eq. 6: port 0 and port 1 reading the same unwritten
	// address at different depths must agree.
	h := newMemHarness(t, 3, 4, 1, 2, aig.MemArbitrary, false)
	h.g.AddUpTo(1)
	var as []sat.Lit
	as = append(as, h.noWrite(0)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.read(0, 0, 5)...)
	as = append(as, h.read(1, 1, 5)...)
	as = append(as, h.rdEquals(0, 0, 3)...)
	as = append(as, h.rdEquals(1, 1, 12)...)
	if got := h.s.Solve(as...); got != sat.Unsat {
		t.Fatalf("cross-port init reads of same address must agree")
	}
}

func TestMultiWritePortForwarding(t *testing.T) {
	h := newMemHarness(t, 3, 4, 2, 1, aig.MemZero, false)
	h.g.AddUpTo(2)
	var as []sat.Lit
	// Port 0 writes addr 1, port 1 writes addr 2, same cycle.
	as = append(as, h.write(0, 0, 1, 10)...)
	as = append(as, h.write(1, 0, 2, 13)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.noWrite(2)...)
	as = append(as, h.read(0, 1, 1)...)
	as = append(as, h.read(0, 2, 2)...)
	ok := append(append([]sat.Lit{}, as...), h.rdEquals(0, 1, 10)...)
	ok = append(ok, h.rdEquals(0, 2, 13)...)
	if got := h.s.Solve(ok...); got != sat.Sat {
		t.Fatalf("both write ports must forward")
	}
	bad := append(append([]sat.Lit{}, as...), h.rdEquals(0, 1, 13)...)
	if got := h.s.Solve(bad...); got != sat.Unsat {
		t.Fatalf("port data must not cross addresses")
	}
}

func TestSameCycleWritePriority(t *testing.T) {
	// Both ports write the same address in the same cycle; eq. 4's chain
	// gives the higher port index priority. (The paper assumes no data
	// races; this pins the tie-break our explicit model must match.)
	h := newMemHarness(t, 3, 4, 2, 1, aig.MemZero, false)
	h.g.AddUpTo(1)
	var as []sat.Lit
	as = append(as, h.write(0, 0, 3, 5)...)
	as = append(as, h.write(1, 0, 3, 9)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.read(0, 1, 3)...)
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 9)...)...); got != sat.Sat {
		t.Fatalf("higher write port must win the race")
	}
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 5)...)...); got != sat.Unsat {
		t.Fatalf("lower write port must lose the race")
	}
}

func TestReadDisabledIsFree(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	h.g.AddUpTo(1)
	var as []sat.Lit
	as = append(as, h.noWrite(0)...)
	as = append(as, h.noWrite(1)...)
	// RE low: data unconstrained.
	as = append(as, h.assumeBit(h.re[0], 1, false))
	as = append(as, h.assumeVec(h.raddr[0], 1, 6)...)
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 5)...)...); got != sat.Sat {
		t.Fatalf("disabled read must be unconstrained")
	}
}

func TestDisabledMemorySkipsConstraints(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	h.g.SetMemoryEnabled(0, false)
	h.g.AddUpTo(2)
	if h.g.Sizes().Clauses() != 0 {
		t.Fatalf("disabled memory must add no constraints")
	}
	var as []sat.Lit
	as = append(as, h.noWrite(0)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.read(0, 1, 6)...)
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 5)...)...); got != sat.Sat {
		t.Fatalf("disabled memory leaves reads free")
	}
}

func TestDisabledWritePortExcludedFromChain(t *testing.T) {
	h := newMemHarness(t, 3, 4, 2, 1, aig.MemZero, false)
	h.g.SetWritePortEnabled(0, 1, false)
	h.g.AddUpTo(1)
	var as []sat.Lit
	// Port 1 writes, but it is abstracted out of the chain: the read sees
	// the location as unwritten (zero).
	as = append(as, h.assumeBit(h.we[0], 0, false))
	as = append(as, h.write(1, 0, 3, 9)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.read(0, 1, 3)...)
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 0)...)...); got != sat.Sat {
		t.Fatalf("abstracted write port must not forward")
	}
}

func TestAbstractionAfterFramesPanics(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	h.g.AddUpTo(0)
	defer func() {
		if recover() == nil {
			t.Fatalf("late abstraction must panic")
		}
	}()
	h.g.SetMemoryEnabled(0, false)
}

func TestImageInitRejected(t *testing.T) {
	m := rtl.NewModule("t")
	m.Memory("rom", 2, 4, aig.MemImage)
	s := sat.New()
	u := unroll.New(m.N, s, unroll.Initialized)
	defer func() {
		if recover() == nil {
			t.Fatalf("image-initialized memory must be rejected by EMM")
		}
	}()
	NewGenerator(u, false)
}

// TestSizesMatchPaperFormulas checks the §4.1 closed forms: at depth k a
// read port against W write ports costs (4m+1)kW address clauses, 3kW
// gates, and 2nkW+2n+1 read-data clauses (with a symbolic initial word).
func TestSizesMatchPaperFormulas(t *testing.T) {
	for _, cfg := range []struct{ aw, dw, nw, nr, depth int }{
		{4, 8, 1, 1, 5},
		{5, 6, 2, 1, 4},
		{3, 4, 2, 3, 4},
		{10, 32, 1, 1, 6},
	} {
		h := newMemHarness(t, cfg.aw, cfg.dw, cfg.nw, cfg.nr, aig.MemArbitrary, false)
		h.g.AddUpTo(cfg.depth)
		sz := h.g.Sizes()
		m64, n64 := cfg.aw, cfg.dw
		sumK := 0
		for k := 0; k <= cfg.depth; k++ {
			sumK += k
		}
		wantAddr := (4*m64 + 1) * sumK * cfg.nw * cfg.nr
		wantGates := 3 * sumK * cfg.nw * cfg.nr
		wantRD := (2*n64*sumK*cfg.nw + (2*n64+1)*(cfg.depth+1)) * cfg.nr
		if sz.AddrClauses != wantAddr {
			t.Errorf("cfg %+v: addr clauses %d want %d", cfg, sz.AddrClauses, wantAddr)
		}
		if sz.Gates != wantGates {
			t.Errorf("cfg %+v: gates %d want %d", cfg, sz.Gates, wantGates)
		}
		if sz.ReadDataClauses != wantRD {
			t.Errorf("cfg %+v: read-data clauses %d want %d", cfg, sz.ReadDataClauses, wantRD)
		}
		// eq. 6 pairs: all unordered pairs of read events across depths
		// and ports: C((depth+1)·R, 2).
		ev := (cfg.depth + 1) * cfg.nr
		wantPairs := ev * (ev - 1) / 2
		if sz.InitPairs != wantPairs {
			t.Errorf("cfg %+v: init pairs %d want %d", cfg, sz.InitPairs, wantPairs)
		}
		if sz.String() == "" {
			t.Errorf("empty sizes string")
		}
	}
}

// TestQuadraticGrowth confirms the constraint count grows quadratically
// with depth (the paper's headline complexity claim).
func TestQuadraticGrowth(t *testing.T) {
	clausesAt := func(depth int) int {
		h := newMemHarness(t, 4, 8, 1, 1, aig.MemZero, false)
		h.g.AddUpTo(depth)
		return h.g.Sizes().Clauses()
	}
	c10, c20, c40 := clausesAt(10), clausesAt(20), clausesAt(40)
	r1 := float64(c20) / float64(c10)
	r2 := float64(c40) / float64(c20)
	// Quadratic: doubling depth should ~4x the count.
	if r1 < 3 || r1 > 5 || r2 < 3 || r2 > 5 {
		t.Fatalf("growth not quadratic: %d %d %d (ratios %.2f %.2f)", c10, c20, c40, r1, r2)
	}
}

func TestForceArbitraryOverridesZeroInit(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, true)
	h.g.AddUpTo(1)
	var as []sat.Lit
	as = append(as, h.noWrite(0)...)
	as = append(as, h.noWrite(1)...)
	as = append(as, h.read(0, 1, 6)...)
	// With forced arbitrary init, the unwritten read is NOT pinned to 0.
	if got := h.s.Solve(append(as, h.rdEquals(0, 1, 5)...)...); got != sat.Sat {
		t.Fatalf("forced arbitrary init must free unwritten reads")
	}
}

func TestGeneratorFramesAccounting(t *testing.T) {
	h := newMemHarness(t, 3, 4, 1, 1, aig.MemZero, false)
	if h.g.Frames() != 0 {
		t.Fatalf("fresh generator has frames")
	}
	h.g.AddUpTo(4)
	if h.g.Frames() != 5 {
		t.Fatalf("expected 5 frames processed, got %d", h.g.Frames())
	}
	// Idempotent.
	h.g.AddUpTo(3)
	if h.g.Frames() != 5 {
		t.Fatalf("AddUpTo must not regress")
	}
}

// TestNoExclusivityEquivalence: the direct eq. 1 encoding and the eq. 4
// chain encoding must agree on every forced read value.
func TestNoExclusivityEquivalence(t *testing.T) {
	script := func(h *memHarness) []sat.Lit {
		var as []sat.Lit
		as = append(as, h.write(0, 0, 2, 7)...)
		as = append(as, h.write(1, 1, 2, 11)...) // port 1 overwrites at frame 1
		as = append(as, h.assumeBit(h.we[0], 1, false))
		as = append(as, h.assumeBit(h.we[1], 0, false))
		as = append(as, h.noWrite(2)...)
		as = append(as, h.read(0, 2, 2)...)
		return as
	}
	for _, disable := range []bool{false, true} {
		h := newMemHarness(t, 3, 4, 2, 1, aig.MemZero, false)
		if disable {
			h.g.DisableExclusivity()
		}
		h.g.AddUpTo(2)
		as := script(h)
		if got := h.s.Solve(append(as, h.rdEquals(0, 2, 11)...)...); got != sat.Sat {
			t.Fatalf("disable=%v: most recent write must be readable", disable)
		}
		if got := h.s.Solve(append(as, h.rdEquals(0, 2, 7)...)...); got != sat.Unsat {
			t.Fatalf("disable=%v: stale write must not be readable", disable)
		}
		if got := h.s.Solve(append(as, h.rdEquals(0, 2, 0)...)...); got != sat.Unsat {
			t.Fatalf("disable=%v: overwritten init must not be readable", disable)
		}
	}
}

// TestNoExclusivityRandomAgreement fuzzes both encodings against each
// other on random scripted traffic.
func TestNoExclusivityRandomAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for iter := 0; iter < 25; iter++ {
		aw, dw := 1+rng.Intn(2), 1+rng.Intn(3)
		depth := 2 + rng.Intn(4)
		init := aig.MemZero
		if rng.Intn(2) == 0 {
			init = aig.MemArbitrary
		}
		h1 := newMemHarness(t, aw, dw, 1, 1, init, false)
		h2 := newMemHarness(t, aw, dw, 1, 1, init, false)
		h2.g.DisableExclusivity()
		h1.g.AddUpTo(depth)
		h2.g.AddUpTo(depth)
		amask := uint64(1)<<uint(aw) - 1
		dmask := uint64(1)<<uint(dw) - 1
		var as1, as2 []sat.Lit
		for f := 0; f <= depth; f++ {
			we := rng.Intn(2) == 1
			wa, wd := rng.Uint64()&amask, rng.Uint64()&dmask
			ra := rng.Uint64() & amask
			as1 = append(as1, h1.assumeBit(h1.we[0], f, we))
			as2 = append(as2, h2.assumeBit(h2.we[0], f, we))
			as1 = append(as1, h1.assumeVec(h1.waddr[0], f, wa)...)
			as2 = append(as2, h2.assumeVec(h2.waddr[0], f, wa)...)
			as1 = append(as1, h1.assumeVec(h1.wdata[0], f, wd)...)
			as2 = append(as2, h2.assumeVec(h2.wdata[0], f, wd)...)
			as1 = append(as1, h1.read(0, f, ra)...)
			as2 = append(as2, h2.read(0, f, ra)...)
		}
		for v := uint64(0); v <= dmask; v++ {
			r1 := h1.s.Solve(append(as1, h1.rdEquals(0, depth, v)...)...)
			r2 := h2.s.Solve(append(as2, h2.rdEquals(0, depth, v)...)...)
			if r1 != r2 {
				t.Fatalf("iter %d value %d: chain=%v direct=%v", iter, v, r1, r2)
			}
		}
	}
}
