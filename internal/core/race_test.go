package core

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
	"emmver/internal/sat"
	"emmver/internal/unroll"
)

func TestAddRacePropertiesCount(t *testing.T) {
	m := rtl.NewModule("t")
	mem := m.Memory("mem", 3, 4, aig.MemZero)
	for w := 0; w < 3; w++ {
		mem.Write(m.Input("wa", 3), m.Input("wd", 4), m.InputBit("we"))
	}
	single := m.Memory("single", 3, 4, aig.MemZero)
	single.Write(m.Input("sa", 3), m.Input("sd", 4), m.InputBit("swe"))
	props := AddRaceProperties(m.N)
	if len(props) != 3 { // C(3,2) pairs; the 1-write memory adds none
		t.Fatalf("expected 3 race properties, got %d", len(props))
	}
	for _, p := range props {
		if m.N.Props[p].Name == "" {
			t.Fatalf("unnamed race property")
		}
	}
}

func TestRaceDetectedWhenPortsCollide(t *testing.T) {
	// Two input-driven write ports can trivially race.
	m := rtl.NewModule("t")
	mem := m.Memory("mem", 2, 2, aig.MemZero)
	mem.Write(m.Input("wa0", 2), m.Input("wd0", 2), m.InputBit("we0"))
	mem.Write(m.Input("wa1", 2), m.Input("wd1", 2), m.InputBit("we1"))
	props := AddRaceProperties(m.N)
	s := sat.New()
	u := unroll.New(m.N, s, unroll.Initialized)
	if got := s.Solve(u.PropertyLit(props[0], 0).Not()); got != sat.Sat {
		t.Fatalf("race must be reachable, got %v", got)
	}
}

func TestNoRaceWhenPortsAreExclusive(t *testing.T) {
	// Port enables are complementary: no cycle can race.
	m := rtl.NewModule("t")
	mem := m.Memory("mem", 2, 2, aig.MemZero)
	sel := m.InputBit("sel")
	addr := m.Input("wa", 2)
	data := m.Input("wd", 2)
	mem.Write(addr, data, sel)
	mem.Write(addr, data, sel.Not())
	props := AddRaceProperties(m.N)
	s := sat.New()
	u := unroll.New(m.N, s, unroll.Initialized)
	for f := 0; f < 4; f++ {
		if got := s.Solve(u.PropertyLit(props[0], f).Not()); got != sat.Unsat {
			t.Fatalf("frame %d: exclusive ports cannot race, got %v", f, got)
		}
	}
}

func TestNoRaceWhenAddressesDisjoint(t *testing.T) {
	// Same enable but provably different addresses (LSB differs).
	m := rtl.NewModule("t")
	mem := m.Memory("mem", 2, 2, aig.MemZero)
	hi := m.Input("hi", 1)
	mem.Write(m.Concat(rtl.Vec{aig.False}, hi), m.Input("d0", 2), aig.True)
	mem.Write(m.Concat(rtl.Vec{aig.True}, hi), m.Input("d1", 2), aig.True)
	props := AddRaceProperties(m.N)
	s := sat.New()
	u := unroll.New(m.N, s, unroll.Initialized)
	if got := s.Solve(u.PropertyLit(props[0], 0).Not()); got != sat.Unsat {
		t.Fatalf("disjoint addresses cannot race, got %v", got)
	}
}
