package core

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/sat"
)

// TestRandomTrafficAgainstOracle drives random read/write scripts through
// the EMM constraints and checks every forced read value against a plain
// Go map playing the role of the memory (the property-based heart of the
// package: for any access sequence, EMM forwarding must agree with a real
// memory).
func TestRandomTrafficAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20050307))
	for iter := 0; iter < 60; iter++ {
		aw := 1 + rng.Intn(3)
		dw := 1 + rng.Intn(4)
		nw := 1 + rng.Intn(2)
		nr := 1 + rng.Intn(2)
		init := aig.MemZero
		if rng.Intn(2) == 0 {
			init = aig.MemArbitrary
		}
		depth := 2 + rng.Intn(5)
		h := newMemHarness(t, aw, dw, nw, nr, init, false)
		h.g.AddUpTo(depth)

		// Script the traffic.
		type wr struct {
			frame, port int
			addr, data  uint64
			en          bool
		}
		type rd struct {
			frame, port int
			addr        uint64
			en          bool
		}
		var writes []wr
		var reads []rd
		var assumps []sat.Lit
		amask := uint64(1)<<uint(aw) - 1
		dmask := uint64(1)<<uint(dw) - 1
		for f := 0; f <= depth; f++ {
			for w := 0; w < nw; w++ {
				ev := wr{frame: f, port: w, addr: rng.Uint64() & amask,
					data: rng.Uint64() & dmask, en: rng.Intn(2) == 1}
				writes = append(writes, ev)
				assumps = append(assumps, h.assumeBit(h.we[w], f, ev.en))
				assumps = append(assumps, h.assumeVec(h.waddr[w], f, ev.addr)...)
				assumps = append(assumps, h.assumeVec(h.wdata[w], f, ev.data)...)
			}
			for r := 0; r < nr; r++ {
				ev := rd{frame: f, port: r, addr: rng.Uint64() & amask, en: rng.Intn(2) == 1}
				reads = append(reads, ev)
				assumps = append(assumps, h.assumeBit(h.re[r], f, ev.en))
				assumps = append(assumps, h.assumeVec(h.raddr[r], f, ev.addr)...)
			}
		}
		if got := h.s.Solve(assumps...); got != sat.Sat {
			t.Fatalf("iter %d: scripted traffic must be satisfiable", iter)
		}

		// Oracle: replay the script on a Go map.
		mem := map[uint64]uint64{}
		written := map[uint64]bool{}
		initVal := func(a uint64) (uint64, bool) {
			if v, ok := mem[a]; ok {
				return v, true
			}
			if init == aig.MemZero {
				return 0, true
			}
			return 0, false // arbitrary: unconstrained
		}
		for f := 0; f <= depth; f++ {
			// Reads see pre-write contents of this frame.
			for _, ev := range reads {
				if ev.frame != f || !ev.en {
					continue
				}
				var got uint64
				for i, l := range h.rdata[ev.port] {
					if h.s.LitValue(h.u.Lit(l, f)) == sat.True {
						got |= 1 << uint(i)
					}
				}
				want, fixed := initVal(ev.addr)
				if fixed && got != want {
					t.Fatalf("iter %d frame %d port %d addr %d: model reads %d, oracle %d (written=%v)",
						iter, f, ev.port, ev.addr, got, want, written[ev.addr])
				}
				if !fixed {
					// Arbitrary-init location: pin the model's choice so
					// later reads must agree (eq. 6).
					mem[ev.addr] = got
				}
			}
			// Apply this frame's writes (higher port index wins races).
			for _, ev := range writes {
				if ev.frame != f || !ev.en {
					continue
				}
				mem[ev.addr] = ev.data
				written[ev.addr] = true
			}
		}
	}
}

// TestReadEventsShapeProperty checks the §4.2 bookkeeping: after k frames
// every enabled port has exactly k+1 read events with well-formed fields.
func TestReadEventsShapeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		nr := 1 + rng.Intn(3)
		depth := rng.Intn(6)
		h := newMemHarness(t, 2, 2, 1, nr, aig.MemArbitrary, false)
		h.g.AddUpTo(depth)
		for r := 0; r < nr; r++ {
			evs := h.g.ReadEvents(0, r)
			if len(evs) != depth+1 {
				t.Fatalf("port %d: %d events, want %d", r, len(evs), depth+1)
			}
			for k, ev := range evs {
				if ev.Frame != k || len(ev.Addr) != 2 || len(ev.RD) != 2 {
					t.Fatalf("malformed event %+v", ev)
				}
			}
		}
	}
}
