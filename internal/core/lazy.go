// Lazy EMM: demand-driven instantiation of the read-over-write forwarding
// constraints (boolector-style "lemmas on demand", specialized to the
// paper's eq. 3–5/eq. 6 encoding).
//
// In eager mode the generator emits, at every depth k, the full forwarding
// chain of every enabled read against every enabled earlier write — the
// ((4m+2n+1)kW + 2n+1)·R clauses of §4.1, quadratic in depth. Under
// EnableLazy, AddUpTo only materializes the memory *interface* literals
// (write/read enables, addresses, data words) and leaves read data
// unconstrained. The BMC engine's counter-example loop then alternates
// solving with RefineLazy: the oracle replays the interface trace of the
// solver's model under the true memory semantics of §2.3 (reads observe
// the most recent earlier write to their address; unwritten locations show
// the initial state) and, for each read whose data disagrees, instantiates
// exactly the forwarding levels up to the culprit write — the same
// comparator + exclusivity-chain + eq. 5 clauses the eager encoding would
// have built for that (read, write) pair, with the chain suspended so a
// later round can resume it.
//
// Soundness: dropping clauses weakens the formula, so an UNSAT answer on
// the relaxation implies UNSAT of the full encoding — NO_CE verdicts are
// sound immediately. A SAT model is only reported after RefineLazy accepts
// it, i.e. after its interface trace is a genuine execution of the memory
// semantics, which is exactly what the full encoding enforces. Progress:
// every instantiated prefix is the exact eager encoding of its levels
// (full Tseitin gates, biconditional comparators), so a violation's
// culprit level always lies at or beyond the read's current frontier, and
// each refinement round strictly grows the instantiated set, which is
// bounded by the finite eager encoding — the loop terminates.
package core

import (
	"emmver/internal/aig"
	"emmver/internal/sat"
)

// lazyWrite caches the CNF literals of one enabled write port at one
// frame — the granularity at which forwarding levels are instantiated and
// the oracle decodes the write trace.
type lazyWrite struct {
	we   sat.Lit
	addr []sat.Lit
	data []sat.Lit
}

// lazyRead is one enabled read event under lazy mode. Levels count
// candidate forwarding sources most-recent-first (frames descending, write
// ports descending within a frame — the priority order of eq. 4's chain);
// level is the instantiation frontier: levels below it carry the exact
// eager constraints, levels at or beyond it are unconstrained.
type lazyRead struct {
	id       int
	mi, r, k int
	re       sat.Lit
	addr     []sat.Lit
	rd       []sat.Lit
	// ps is the suspended exclusivity-chain literal: after `level`
	// instantiated levels it equals RE ∧ ¬s_0 ∧ … ∧ ¬s_{level-1}.
	ps       sat.Lit
	level    int
	matches  []sat.Lit // S_t of the instantiated levels, for the validity clause
	complete bool
	vword    []sat.Lit // symbolic initial word, set at completion (arbitrary init)
}

// EnableLazy switches the generator to demand-driven constraint emission.
// Must be called before the first frame; incompatible with the direct
// eq. 1 encoding (the refinement machinery suspends and resumes the
// exclusivity chains). The caller owns the refinement loop: after every
// satisfiable solve it must call RefineLazy and re-solve until the model
// is accepted (see package comment).
func (g *Generator) EnableLazy() {
	g.mustBeFresh()
	if g.noExclusivity {
		panic("core: lazy EMM requires the exclusivity-chain encoding")
	}
	g.lazy = true
}

// Lazy reports whether demand-driven emission is active.
func (g *Generator) Lazy() bool { return g.lazy }

// lazyAddFrame is addFrame under lazy mode: it builds (and thereby
// freezes) the frame-k memory interface literals so the oracle can decode
// them from any model, registers the frame's read events as pending, and
// emits no forwarding constraints at all.
func (g *Generator) lazyAddFrame(k int) {
	u := g.u
	for mi, mg := range g.mems {
		if !g.memEnabled[mi] {
			continue
		}
		var ws []lazyWrite
		for w, wp := range mg.m.Writes {
			if !g.writeEnabled[mi][w] {
				continue
			}
			ws = append(ws, lazyWrite{
				we:   u.Lit(wp.En, k),
				addr: u.VecLits(wp.Addr, k),
				data: u.VecLits(wp.Data, k),
			})
		}
		mg.wpc = len(ws)
		mg.lwrites = append(mg.lwrites, ws)
		for r, rp := range mg.m.Reads {
			if !g.readEnabled[mi][r] {
				continue
			}
			rdata := make([]sat.Lit, mg.m.DW)
			for bit, dn := range rp.Data {
				rdata[bit] = u.Lit(aig.MkLit(dn, false), k)
			}
			re := u.Lit(rp.En, k)
			mg.lazyReads = append(mg.lazyReads, &lazyRead{
				id: len(mg.lazyReads),
				mi: mi, r: r, k: k,
				re:   re,
				addr: u.VecLits(rp.Addr, k),
				rd:   rdata,
				ps:   re,
			})
			g.sizes.LazyReads++
		}
	}
}

// lazyLevels is the number of forwarding levels read lr can see: one per
// enabled write port per earlier frame.
func (mg *memGen) lazyLevels(lr *lazyRead) int { return lr.k * mg.wpc }

// lazyWriteAt maps level t (0 = most recent) of a read at frame k to its
// write event, following the eager priority order: frames descending,
// write ports descending within a frame.
func (mg *memGen) lazyWriteAt(k, t int) *lazyWrite {
	frame := k - 1 - t/mg.wpc
	idx := mg.wpc - 1 - t%mg.wpc
	return &mg.lwrites[frame][idx]
}

// lazyExtendTo instantiates forwarding levels lr.level..level: the address
// comparator (memoized like the eager path), the match gate s = E ∧ WE,
// the exclusivity-chain step S = s ∧ ps / ps' = ¬s ∧ ps of eq. 4, and the
// eq. 5 read-data clauses against the matched write. The result is exactly
// the eager encoding of those levels, with the chain left suspended at the
// new frontier.
func (g *Generator) lazyExtendTo(lr *lazyRead, level int) {
	u := g.u
	mg := g.mems[lr.mi]
	tag := g.tagEMM(lr.k, lr.mi, lr.r)
	for lr.level <= level {
		wv := mg.lazyWriteAt(lr.k, lr.level)
		e := g.addrEqual(wv.addr, lr.addr, tag)
		s := u.MkAndAux(e, wv.we, tag)
		g.sizes.Gates++
		bigS := u.MkAndAux(s, lr.ps, tag)
		lr.ps = u.MkAndAux(s.Not(), lr.ps, tag)
		g.sizes.Gates += 2
		for bit := range lr.rd {
			g.addClause(tag, bigS.Not(), lr.rd[bit].Not(), wv.data[bit])
			g.addClause(tag, bigS.Not(), lr.rd[bit], wv.data[bit].Not())
			g.sizes.ReadDataClauses += 2
		}
		// Unlike the eager path, the validity clause and further chain
		// steps are emitted in later rounds, possibly after inprocessing
		// ran in between: the match and the suspended chain literal must
		// survive elimination.
		u.Freeze(bigS)
		lr.matches = append(lr.matches, bigS)
		lr.level++
		g.sizes.LazyAxioms++
	}
	u.Freeze(lr.ps)
}

// lazyComplete drives lr to its full per-read eager constraint set: every
// remaining forwarding level, the initial-state tail (a fresh symbolic
// word V with N → RD = V for arbitrary init, N → RD = 0 for zero init),
// and the read validity clause of §3. The eq. 6 cross-read consistency
// pairs stay demand-driven even after completion: the oracle instantiates
// them per disagreeing address group (lazyPair), because the eager
// all-pairs set is the quadratic bulk of the encoding and almost all of it
// is irrelevant to any one query.
func (g *Generator) lazyComplete(lr *lazyRead) {
	if lr.complete {
		return
	}
	u := g.u
	mg := g.mems[lr.mi]
	if n := mg.lazyLevels(lr); n > 0 {
		g.lazyExtendTo(lr, n-1)
	} else {
		u.Freeze(lr.ps)
	}
	tag := g.tagEMM(lr.k, lr.mi, lr.r)
	itag := g.tagInit(lr.k, lr.mi, lr.r)
	arbitrary := g.forceArb || mg.m.Init == aig.MemArbitrary
	if arbitrary {
		lr.vword = make([]sat.Lit, mg.m.DW)
		for bit := range lr.vword {
			v := u.FreshVar()
			u.Freeze(v) // future eq. 6 pairs compare against V
			g.sizes.AuxVars++
			lr.vword[bit] = v
			g.addClause(itag, lr.ps.Not(), lr.rd[bit].Not(), v)
			g.addClause(itag, lr.ps.Not(), lr.rd[bit], v.Not())
			g.sizes.ReadDataClauses += 2
		}
	} else {
		for bit := range lr.rd {
			g.addClause(itag, lr.ps.Not(), lr.rd[bit].Not())
			g.sizes.ReadDataClauses++
		}
	}
	valid := make([]sat.Lit, 0, len(lr.matches)+2)
	valid = append(valid, lr.re.Not(), lr.ps)
	valid = append(valid, lr.matches...)
	g.addClause(tag, valid...)
	g.sizes.ReadDataClauses++
	lr.complete = true
	g.sizes.LazyCompleted++
}

// lazyPair instantiates the eq. 6 consistency constraint between two
// completed arbitrary-init reads — (RA = RA' ∧ N ∧ N') → V = V' — unless
// that pair was already emitted. Pairs force equality only between their
// two endpoints, but within one same-address group a chain of adjacent
// pairs propagates it transitively, so the oracle never needs the eager
// all-pairs set.
func (g *Generator) lazyPair(mg *memGen, a, b *lazyRead) bool {
	if a.id > b.id {
		a, b = b, a
	}
	key := [2]int{a.id, b.id}
	if mg.pairSeen[key] {
		return false
	}
	if mg.pairSeen == nil {
		mg.pairSeen = make(map[[2]int]bool)
	}
	mg.pairSeen[key] = true
	g.addInitPair(g.tagInit(a.k, a.mi, a.r), a.addr, a.ps, a.vword, b.addr, b.ps, b.vword)
	g.sizes.LazyAxioms++
	return true
}

// litTrue reads l's value in the solver's current model (Undef counts as
// false — only unreferenced free variables can be undefined, and every
// interface literal the oracle decodes is frozen).
func (g *Generator) litTrue(l sat.Lit) bool { return g.u.S.LitValue(l) == sat.True }

// modelVec decodes a literal vector (LSB first) from the current model.
func (g *Generator) modelVec(lits []sat.Lit) uint64 {
	var out uint64
	for i, l := range lits {
		if g.litTrue(l) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// lazyHit scans lr's forwarding levels most-recent-first under the current
// model and returns the first level whose write fired at address raddr,
// with the written word; (-1, 0) when no in-window write hit.
func (g *Generator) lazyHit(mg *memGen, lr *lazyRead, raddr uint64) (int, uint64) {
	for t, n := 0, mg.lazyLevels(lr); t < n; t++ {
		wv := mg.lazyWriteAt(lr.k, t)
		if g.litTrue(wv.we) && g.modelVec(wv.addr) == raddr {
			return t, g.modelVec(wv.data)
		}
	}
	return -1, 0
}

// RefineLazy validates the solver's current satisfying model against the
// true memory semantics of §2.3 and instantiates exactly the violated
// read-over-write axioms. It returns the number of violations repaired: 0
// means the model's interface trace is a genuine memory execution and the
// SAT answer stands; otherwise the caller must re-solve (incrementally —
// only clauses were added) and validate again.
func (g *Generator) RefineLazy() int {
	if !g.lazy {
		return 0
	}
	viol := 0
	for mi, mg := range g.mems {
		if !g.memEnabled[mi] {
			continue
		}
		viol += g.refineMem(mg)
	}
	return viol
}

func (g *Generator) refineMem(mg *memGen) int {
	viol := 0
	arbitrary := g.forceArb || mg.m.Init == aig.MemArbitrary
	// For arbitrary init, unwritten reads of one address must agree (the
	// semantics eq. 6 enforces); group them by model address.
	type group struct {
		val      uint64
		disagree bool
		members  []*lazyRead
	}
	var groups map[uint64]*group
	for _, lr := range mg.lazyReads {
		if !g.litTrue(lr.re) {
			continue
		}
		raddr := g.modelVec(lr.addr)
		rd := g.modelVec(lr.rd)
		if hit, wd := g.lazyHit(mg, lr, raddr); hit >= 0 {
			if rd == wd {
				continue
			}
			if hit < lr.level {
				// The instantiated prefix is the exact eager encoding of
				// these levels; a model cannot disagree with it.
				panic("core: lazy model violates an instantiated forwarding axiom")
			}
			g.lazyExtendTo(lr, hit)
			viol++
			continue
		}
		// No in-window write hit lr's address: the read observes the
		// initial state.
		if !arbitrary {
			if rd != 0 {
				if lr.complete {
					panic("core: lazy model violates a zero-init axiom")
				}
				g.lazyComplete(lr)
				viol++
			}
			continue
		}
		if g.eq6Disabled {
			// Without eq. 6 the eager encoding gives every unwritten read
			// its own unconstrained fresh word: any value is admissible.
			continue
		}
		if groups == nil {
			groups = make(map[uint64]*group)
		}
		gr := groups[raddr]
		if gr == nil {
			groups[raddr] = &group{val: rd}
			gr = groups[raddr]
		} else if gr.val != rd {
			gr.disagree = true
		}
		gr.members = append(gr.members, lr)
	}
	for _, gr := range groups {
		if !gr.disagree {
			continue
		}
		// Complete every member (symbolic word + validity) and chain the
		// group with adjacent eq. 6 pairs: all members are unwritten at one
		// address in this model, so the chain forces their words — hence
		// their read data — equal in the next one. If nothing new could be
		// emitted, the constraints already in force rule this model out,
		// and a "violation" would mean the instantiation is not the exact
		// eager encoding it claims to be.
		progress := false
		for _, lr := range gr.members {
			if !lr.complete {
				g.lazyComplete(lr)
				progress = true
			}
		}
		for i := 0; i+1 < len(gr.members); i++ {
			if g.lazyPair(mg, gr.members[i], gr.members[i+1]) {
				progress = true
			}
		}
		if !progress {
			panic("core: lazy model violates an eq. 6 consistency axiom")
		}
		viol++
	}
	return viol
}

// LazyMemInit decodes, from the current (oracle-validated) model, the
// arbitrary-initial-memory words a counter-example depends on — the lazy
// counterpart of the witness extractor's ReadEvents scan: every enabled
// read at frame <= depth that saw no in-window write pins the initial word
// at its address. Only meaningful right after RefineLazy returned 0.
func (g *Generator) LazyMemInit(depth int) []map[int]uint64 {
	out := make([]map[int]uint64, len(g.mems))
	for mi, mg := range g.mems {
		words := make(map[int]uint64)
		if g.memEnabled[mi] {
			for _, lr := range mg.lazyReads {
				if lr.k > depth || !g.litTrue(lr.re) {
					continue
				}
				raddr := g.modelVec(lr.addr)
				if hit, _ := g.lazyHit(mg, lr, raddr); hit >= 0 {
					continue
				}
				words[int(raddr)] = g.modelVec(lr.rd)
			}
		}
		out[mi] = words
	}
	return out
}
