// Package core implements Efficient Memory Modeling (EMM) — the paper's
// primary contribution. Instead of expanding each embedded memory into
// 2^AW × DW latches, the memory array is removed and, at every BMC analysis
// depth, CNF constraints over the retained memory interface signals enforce
// the data-forwarding semantics:
//
//	data read at depth k through read port r equals the data written at
//	depth j through write port w iff the addresses match, WE was active at
//	j, RE is active at k, and no intervening write hit the same address
//	(eq. 3 of the paper),
//
// using exclusive valid-read signal chains (eq. 4–5) in the hybrid
// clause/gate representation of §3, generalized to multiple memories with
// multiple read and write ports (§4.1). Arbitrary initial memory state is
// modeled precisely with fresh symbolic words plus the consistency
// constraints of eq. 6 (§4.2), which is what makes the model exact and
// therefore usable for the UNSAT (proof) side of SAT-based induction.
package core

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/obs"
	"emmver/internal/sat"
	"emmver/internal/unroll"
)

// Sizes tallies the EMM constraints emitted so far, split the way the paper
// reports them (§3, §4.1): CNF clauses for address comparison and read-data
// forwarding, 2-input gates for the exclusivity chains, and — separately —
// the arbitrary-initial-state machinery of §4.2.
type Sizes struct {
	AddrClauses     int // (4m+1)·kW·R per memory at depth k
	ReadDataClauses int // (2n·kW + 2n + 1)·R per memory at depth k
	Gates           int // 3·kW·R per memory at depth k
	InitPairs       int // eq. 6 pair constraints
	InitClauses     int // clauses emitted for eq. 6 pairs
	AuxVars         int
	// CompMemoHits counts address comparators answered from the
	// memoization cache instead of being re-encoded. A hit emits no
	// clauses and bumps no per-kind counter, so the other fields keep
	// matching the paper's formulas for the comparators actually built.
	CompMemoHits int
	// Lazy-EMM refinement accounting (EnableLazy runs only; zero in eager
	// mode). The clause/gate counters above keep tallying what is actually
	// emitted, so Clauses() reports the reduced on-demand constraint set.
	LazyReads     int // interface read events tracked by the lazy skeleton
	LazyAxioms    int // forwarding levels (read × write pairs) instantiated on demand
	LazyCompleted int // reads driven to their full chain + initial-state tail
}

// Clauses returns the paper's headline clause count (address comparison +
// read data), excluding the arbitrary-init machinery which the paper counts
// separately.
func (s Sizes) Clauses() int { return s.AddrClauses + s.ReadDataClauses }

// String renders the tally.
func (s Sizes) String() string {
	return fmt.Sprintf("%d clauses (%d addr, %d readdata), %d gates, %d init pairs (%d clauses)",
		s.Clauses(), s.AddrClauses, s.ReadDataClauses, s.Gates, s.InitPairs, s.InitClauses)
}

// Generator emits EMM constraints into an unroller, one analysis depth at a
// time (the EMM_Constraints procedure of Fig. 2/Fig. 3).
type Generator struct {
	u *unroll.Unroller

	// ForceArbitraryInit treats every memory as arbitrary-initialized,
	// regardless of its declared init. Required when the underlying
	// unrolling window does not start at the design's initial state (the
	// backward/induction-step checks): reads of locations not written
	// inside the window must then be arbitrary-but-consistent rather than
	// the declared reset contents.
	forceArb bool

	// retainWriteFreeInit keeps the declared initial contents of memories
	// with no write ports even under forceArb (see RetainWriteFreeInit).
	retainWriteFreeInit bool

	memEnabled   []bool
	readEnabled  [][]bool
	writeEnabled [][]bool

	// eq6Disabled suppresses the cross-read consistency constraints of
	// §4.2. Exists to demonstrate (and regression-test) the paper's claim
	// that fresh variables alone over-approximate the initial state and
	// can break proofs.
	eq6Disabled bool

	// noExclusivity replaces the S/PS exclusive valid-read chains of
	// eq. 4 with a direct clause translation of the forwarding semantics
	// (eq. 1/eq. 3): each read-data clause then carries the whole
	// "no intervening write" disjunction instead of a single chain
	// literal. Semantically equivalent, but the SAT solver loses the
	// immediate exclusivity propagation the paper highlights — the
	// ablation BenchmarkAblationExclusivity measures the difference.
	noExclusivity bool

	// noCompMemo disables comparator memoization (A/B measurement and
	// equivalence tests only).
	noCompMemo bool

	// lazy switches AddUpTo to interface-only skeleton emission; the
	// forwarding constraints are then instantiated on demand by the
	// RefineLazy oracle (see lazy.go).
	lazy bool

	// compMemo maps a normalized pair of address literal vectors to the E
	// literal of the comparator already encoded for it. The same physical
	// address buses recur across depths and read ports (every eq. 6 pair
	// re-compares read addresses, and a shared address bus makes the
	// forwarding comparators of later reads identical to earlier ones), so
	// depth k+1 only pays for its genuinely new frontier pairs.
	compMemo map[string]sat.Lit

	// OnComparator, when set, is invoked for every address comparator
	// actually encoded (memo hits excluded), with its E literal and the two
	// address vectors. The clause-sharing bridge uses it to give comparators
	// a fleet-wide canonical identity; the cube splitter uses the creation
	// order (see TrackComparators) as its split-variable sequence.
	OnComparator func(e sat.Lit, a, b []sat.Lit)

	// TrackComparators records every encoded comparator's E literal in
	// creation order (CompLits) and freezes it even when memoization is off,
	// so the cube splitter can assume comparator polarities across depths.
	TrackComparators bool
	compLits         []sat.Lit

	mems   []*memGen
	frames int // next depth to process

	sizes Sizes

	// Observability (AttachObs): emm.generate spans per processed depth
	// and per-constraint-family registry counters, published as deltas at
	// each depth so the live totals track Sizes exactly.
	obs      *obs.Observer
	obsAddr  *obs.Counter
	obsRD    *obs.Counter
	obsGates *obs.Counter
	obsIPair *obs.Counter
	obsICl   *obs.Counter
	obsMemo  *obs.Counter
	obsPub   Sizes
}

type memGen struct {
	m     *aig.Memory
	reads []*readGen

	// Lazy-mode state (EnableLazy): per-frame enabled write interface
	// literals, the tracked read events, and the eq. 6 pairs already
	// instantiated (keyed by read id). wpc is the (static) enabled
	// write-port count, the stride of the level ↔ (frame, port) mapping.
	lwrites   [][]lazyWrite
	lazyReads []*lazyRead
	pairSeen  map[[2]int]bool
	wpc       int
}

// readGen caches, per processed depth k, the signals needed by later depths
// for the eq. 6 cross-read consistency constraints.
type readGen struct {
	re   []sat.Lit   // RE_{k,r}
	addr [][]sat.Lit // RA_{k,r}
	n    []sat.Lit   // N_{k,r} = PS_{0,k,0,r}: read hit no in-window write
	v    [][]sat.Lit // V_{k,r}: symbolic initial word (arbitrary init only)
	rd   [][]sat.Lit // RD_{k,r}
}

// ReadEvent describes one read port at one processed depth, exposing the
// CNF literals a witness decoder needs: whether the read was enabled and
// hit no in-window write (N), its address, and its data.
type ReadEvent struct {
	Frame int
	Re    sat.Lit
	Addr  []sat.Lit
	N     sat.Lit
	RD    []sat.Lit
}

// ReadEvents lists the processed read events of read port r of memory mi.
// Ports excluded from modeling have no events.
func (g *Generator) ReadEvents(mi, r int) []ReadEvent {
	rg := g.mems[mi].reads[r]
	out := make([]ReadEvent, len(rg.n))
	for k := range rg.n {
		out[k] = ReadEvent{Frame: k, Re: rg.re[k], Addr: rg.addr[k], N: rg.n[k], RD: rg.rd[k]}
	}
	return out
}

// NewGenerator builds an EMM generator over u. When forceArbitraryInit is
// set, declared zero-initialization is ignored (see ForceArbitraryInit).
func NewGenerator(u *unroll.Unroller, forceArbitraryInit bool) *Generator {
	g := &Generator{u: u, forceArb: forceArbitraryInit}
	for _, m := range u.N.Memories {
		if m.Init == aig.MemImage {
			panic("core: EMM does not support image-initialized memories; use the explicit model")
		}
		g.mems = append(g.mems, &memGen{m: m, reads: makeReadGens(len(m.Reads))})
		g.memEnabled = append(g.memEnabled, true)
		g.readEnabled = append(g.readEnabled, trueSlice(len(m.Reads)))
		g.writeEnabled = append(g.writeEnabled, trueSlice(len(m.Writes)))
	}
	return g
}

func makeReadGens(n int) []*readGen {
	out := make([]*readGen, n)
	for i := range out {
		out[i] = &readGen{}
	}
	return out
}

func trueSlice(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

// SetMemoryEnabled includes or excludes an entire memory module from
// constraint generation (the §4.3 memory-module abstraction). Must be
// called before any frame is processed.
func (g *Generator) SetMemoryEnabled(mi int, on bool) {
	g.mustBeFresh()
	g.memEnabled[mi] = on
}

// SetReadPortEnabled includes or excludes one read port (its read data
// stays a free variable when excluded).
func (g *Generator) SetReadPortEnabled(mi, r int, on bool) {
	g.mustBeFresh()
	g.readEnabled[mi][r] = on
}

// SetWritePortEnabled includes or excludes one write port from every
// forwarding chain.
func (g *Generator) SetWritePortEnabled(mi, w int, on bool) {
	g.mustBeFresh()
	g.writeEnabled[mi][w] = on
}

// DisableInitConsistency suppresses the eq. 6 constraints (§4.2). The
// resulting model over-approximates arbitrary initial memory state: sound
// for falsification, but proofs that depend on read-read consistency fail.
func (g *Generator) DisableInitConsistency() {
	g.mustBeFresh()
	g.eq6Disabled = true
}

// DisableExclusivity switches to the direct eq. 1/eq. 3 clause encoding
// without the exclusive valid-read chains (see noExclusivity).
func (g *Generator) DisableExclusivity() {
	g.mustBeFresh()
	if g.lazy {
		panic("core: lazy EMM requires the exclusivity-chain encoding")
	}
	g.noExclusivity = true
}

// DisableComparatorMemo turns off address-comparator memoization, so every
// comparator is re-encoded even for a previously seen pair of address
// vectors. The encoding is then exactly the paper's per-depth formula count;
// used by the equivalence tests and before/after measurements, and by the
// BMC engine whenever proof-based abstraction is tracking cores — a
// memoized comparator keeps its first creator's TagEMM tag, which would
// misattribute core membership across read events.
func (g *Generator) DisableComparatorMemo() {
	g.mustBeFresh()
	g.noCompMemo = true
}

// RetainWriteFreeInit keeps the declared initial contents of write-free
// memories under ForceArbitraryInit: a memory with zero write ports never
// changes, so "its contents equal the declared init" is an invariant of
// every reachable state, and an induction-step window (which otherwise must
// treat all memories as arbitrary per §4.2) may soundly assume it. This is
// the k-induction engine's strengthening: it turns ROM-like lookup designs
// — unprovable under fully arbitrary backward windows at any bound — into
// depth-0 induction proofs. Memories declared MemArbitrary keep their
// fresh-variable modeling; only a declared (zero) init is retained, and
// only when the compiled netlist carries no write port for the memory.
func (g *Generator) RetainWriteFreeInit() {
	g.mustBeFresh()
	g.retainWriteFreeInit = true
}

func (g *Generator) mustBeFresh() {
	if g.frames != 0 {
		panic("core: abstraction choices must be made before AddFrame")
	}
}

// AttachObs binds the generator to an observer: AddUpTo then emits one
// emm.generate span per processed depth and publishes per-constraint-family
// counter deltas (emm.addr_clauses, emm.readdata_clauses, emm.gates,
// emm.init_pairs, emm.init_clauses, emm.memo_hits) into the registry.
func (g *Generator) AttachObs(o *obs.Observer) {
	g.obs = o
	reg := o.Registry()
	if reg == nil {
		return
	}
	g.obsAddr = reg.Counter(obs.MEMMAddrClauses)
	g.obsRD = reg.Counter(obs.MEMMReadDataClauses)
	g.obsGates = reg.Counter(obs.MEMMGates)
	g.obsIPair = reg.Counter(obs.MEMMInitPairs)
	g.obsICl = reg.Counter(obs.MEMMInitClauses)
	g.obsMemo = reg.Counter(obs.MEMMMemoHits)
}

func (g *Generator) publishObs() {
	if g.obsAddr == nil {
		return
	}
	cur := g.sizes
	g.obsAddr.Add(int64(cur.AddrClauses - g.obsPub.AddrClauses))
	g.obsRD.Add(int64(cur.ReadDataClauses - g.obsPub.ReadDataClauses))
	g.obsGates.Add(int64(cur.Gates - g.obsPub.Gates))
	g.obsIPair.Add(int64(cur.InitPairs - g.obsPub.InitPairs))
	g.obsICl.Add(int64(cur.InitClauses - g.obsPub.InitClauses))
	g.obsMemo.Add(int64(cur.CompMemoHits - g.obsPub.CompMemoHits))
	g.obsPub = cur
}

// Sizes returns the cumulative constraint tally.
func (g *Generator) Sizes() Sizes { return g.sizes }

// Frames returns the number of processed depths.
func (g *Generator) Frames() int { return g.frames }

// AddUpTo processes depths g.Frames() .. k (inclusive), the incremental
// "C_i = C_{i-1} ∪ EMM_Constraints(i)" update of Fig. 2/Fig. 3.
func (g *Generator) AddUpTo(k int) {
	for g.frames <= k {
		sp := g.obs.Span("emm.generate",
			obs.F("depth", g.frames), obs.F("arb_init", g.forceArb),
			obs.F("lazy", g.lazy))
		before := g.sizes
		if g.lazy {
			g.lazyAddFrame(g.frames)
		} else {
			g.addFrame(g.frames)
		}
		g.publishObs()
		sp.End(
			obs.F("clauses", g.sizes.Clauses()-before.Clauses()),
			obs.F("init_clauses", g.sizes.InitClauses-before.InitClauses),
			obs.F("gates", g.sizes.Gates-before.Gates),
			obs.F("memo_hits", g.sizes.CompMemoHits-before.CompMemoHits))
		g.frames++
	}
}

func (g *Generator) addFrame(k int) {
	for mi, mg := range g.mems {
		if !g.memEnabled[mi] {
			continue
		}
		for r := range mg.m.Reads {
			if !g.readEnabled[mi][r] {
				continue
			}
			g.addReadConstraints(mi, mg, r, k)
		}
	}
}

func (g *Generator) tagEMM(k, mi, r int) unroll.Tag {
	return unroll.MkTag(unroll.TagEMM, k, mi<<8|r)
}

func (g *Generator) tagInit(k, mi, r int) unroll.Tag {
	return unroll.MkTag(unroll.TagEMMInit, k, mi<<8|r)
}

// addReadConstraints emits the forwarding constraints for read port r of
// memory mi at depth k: address comparisons against every enabled write
// port at every earlier depth, the exclusivity chain of eq. 4, the read
// data constraints of eq. 5, and the initial-state handling.
func (g *Generator) addReadConstraints(mi int, mg *memGen, r int, k int) {
	u := g.u
	m := mg.m
	rp := m.Reads[r]
	rg := mg.reads[r]
	tag := g.tagEMM(k, mi, r)

	re := u.Lit(rp.En, k)
	raddr := u.VecLits(rp.Addr, k)
	rdata := make([]sat.Lit, m.DW)
	for bit, dn := range rp.Data {
		rdata[bit] = u.Lit(aig.MkLit(dn, false), k)
	}

	// Per-(depth, write port) match signals s_{i,k,w,r} = E ∧ WE, most
	// recent writes first (the priority order of eq. 4's chain).
	type match struct {
		s  sat.Lit // s (direct mode) or S (chain mode)
		wd []sat.Lit
	}
	var matches []match
	var rawS []sat.Lit
	ps := re
	for i := k - 1; i >= 0; i-- {
		for w := len(m.Writes) - 1; w >= 0; w-- {
			if !g.writeEnabled[mi][w] {
				continue
			}
			wp := m.Writes[w]
			waddr := u.VecLits(wp.Addr, i)
			we := u.Lit(wp.En, i)
			e := g.addrEqual(waddr, raddr, tag)
			s := u.MkAndAux(e, we, tag)
			g.sizes.Gates++
			if g.noExclusivity {
				// Direct eq. 1/eq. 3 translation, no chain.
				rawS = append(rawS, s)
				matches = append(matches, match{s: s, wd: u.VecLits(wp.Data, i)})
				continue
			}
			// Exclusivity chain (eq. 4): S = s ∧ ps (1 gate),
			// PS' = ¬s ∧ ps (1 gate): with s, the 3kW gates of §4.1.
			bigS := u.MkAndAux(s, ps, tag)
			ps = u.MkAndAux(s.Not(), ps, tag)
			g.sizes.Gates += 2
			matches = append(matches, match{s: bigS, wd: u.VecLits(wp.Data, i)})
		}
	}
	if g.noExclusivity {
		// N_{k,r} = RE ∧ no match (still needed for init handling).
		for _, s := range rawS {
			ps = u.MkAndAux(s.Not(), ps, tag)
		}
	}

	// Read data forwarding.
	if g.noExclusivity {
		// (RE ∧ s_t ∧ ¬s_0 ∧ … ∧ ¬s_{t-1}) → RD = WD_t, with the whole
		// "no more recent match" disjunction inlined per clause.
		for t, mt := range matches {
			base := make([]sat.Lit, 0, t+4)
			base = append(base, re.Not(), mt.s.Not())
			for u2 := 0; u2 < t; u2++ {
				base = append(base, matches[u2].s)
			}
			for bit := range rdata {
				g.addClause(tag, append(append([]sat.Lit(nil), base...), rdata[bit].Not(), mt.wd[bit])...)
				g.addClause(tag, append(append([]sat.Lit(nil), base...), rdata[bit], mt.wd[bit].Not())...)
				g.sizes.ReadDataClauses += 2
			}
		}
	} else {
		// eq. 5: S_{i,k,w,r} → RD_{k,r} = WD_{i,w}.
		for _, mt := range matches {
			for bit := range rdata {
				g.addClause(tag, mt.s.Not(), rdata[bit].Not(), mt.wd[bit])
				g.addClause(tag, mt.s.Not(), rdata[bit], mt.wd[bit].Not())
				g.sizes.ReadDataClauses += 2
			}
		}
	}

	// Initial-state read: ps is now PS_{0,k,0,r} = N_{k,r}.
	itag := g.tagInit(k, mi, r)
	retained := g.retainWriteFreeInit && len(m.Writes) == 0
	arbitrary := (g.forceArb && !retained) || m.Init == aig.MemArbitrary
	var vword []sat.Lit
	if arbitrary {
		// N → RD = V with a fresh symbolic word V_{k,r} (§4.2).
		vword = make([]sat.Lit, m.DW)
		for bit := range vword {
			vword[bit] = u.FreshVar()
			// Every future read event compares against this symbolic word
			// through eq. 6, so it must survive inprocessing.
			u.Freeze(vword[bit])
			g.sizes.AuxVars++
			g.addClause(itag, ps.Not(), rdata[bit].Not(), vword[bit])
			g.addClause(itag, ps.Not(), rdata[bit], vword[bit].Not())
			g.sizes.ReadDataClauses += 2
		}
	} else {
		// Zero-initialized memory: N → RD = 0 (n clauses instead of the
		// paper's 2n for a symbolic initial word).
		for bit := range rdata {
			g.addClause(itag, ps.Not(), rdata[bit].Not())
			g.sizes.ReadDataClauses++
		}
	}

	// Validity of the read (the "(!REk + S-1 + … + Sk-1)" clause of §3).
	valid := make([]sat.Lit, 0, len(matches)+2)
	valid = append(valid, re.Not(), ps)
	for _, mt := range matches {
		valid = append(valid, mt.s)
	}
	g.addClause(tag, valid...)
	g.sizes.ReadDataClauses++

	// Cross-read consistency for arbitrary initial state (eq. 6): for
	// every earlier read event (j, q) with a symbolic word, equal
	// addresses + both unwritten ⇒ equal words.
	if arbitrary && !g.eq6Disabled {
		for q, oth := range mg.reads {
			for j := range oth.n {
				if q == r && j == k {
					continue
				}
				if oth.v == nil || oth.v[j] == nil {
					continue
				}
				g.addInitPair(itag, raddr, ps, vword, oth.addr[j], oth.n[j], oth.v[j])
			}
		}
	}

	// Record this read event for future eq. 6 pairs. The N literal joins
	// the cross-depth EMM interface here (re/raddr/rdata are frame values,
	// already frozen by the unroller; ps may be a bare chain gate when
	// structural hashing is off, so it is frozen explicitly).
	rg.re = append(rg.re, re)
	rg.addr = append(rg.addr, raddr)
	rg.n = append(rg.n, ps)
	g.u.Freeze(ps)
	rg.rd = append(rg.rd, rdata)
	if arbitrary {
		rg.v = append(rg.v, vword)
	} else {
		rg.v = append(rg.v, nil)
	}
}

// addInitPair emits one eq. 6 constraint:
// (RA=RA' ∧ N ∧ N') → V = V'.
func (g *Generator) addInitPair(tag unroll.Tag, ra []sat.Lit, n sat.Lit, v []sat.Lit, ra2 []sat.Lit, n2 sat.Lit, v2 []sat.Lit) {
	e := g.addrEqualCounted(ra, ra2, tag, &g.sizes.InitClauses)
	cond := g.u.MkAndAux(e, n, tag)
	cond = g.u.MkAndAux(cond, n2, tag)
	for bit := range v {
		g.addClause(tag, cond.Not(), v[bit].Not(), v2[bit])
		g.addClause(tag, cond.Not(), v[bit], v2[bit].Not())
		g.sizes.InitClauses += 2
	}
	g.sizes.InitPairs++
}

// addrEqual emits the hybrid address-comparison encoding of §3 — per bit i,
// E→(a_i=b_i) and (a_i=b_i)→e_i (4 clauses), plus (∧e_i)→E (1 clause) —
// 4m+1 clauses total, and returns E.
func (g *Generator) addrEqual(a, b []sat.Lit, tag unroll.Tag) sat.Lit {
	return g.addrEqualCounted(a, b, tag, &g.sizes.AddrClauses)
}

func (g *Generator) addrEqualCounted(a, b []sat.Lit, tag unroll.Tag, counter *int) sat.Lit {
	var key string
	if !g.noCompMemo {
		key = compKey(a, b)
		if e, ok := g.compMemo[key]; ok {
			// The comparator for this pair of address vectors already
			// exists: reuse its E literal. Nothing is emitted, so the
			// per-kind counters keep tracking clauses actually added.
			g.sizes.CompMemoHits++
			return e
		}
	}
	e := g.buildAddrEqual(a, b, tag, counter)
	if !g.noCompMemo {
		if g.compMemo == nil {
			g.compMemo = make(map[string]sat.Lit)
		}
		g.compMemo[key] = e
		g.u.Freeze(e) // memo entries are served at later depths
	}
	if g.TrackComparators {
		g.compLits = append(g.compLits, e)
		g.u.Freeze(e) // assumed across depths by the cube splitter
	}
	if g.OnComparator != nil {
		g.OnComparator(e, a, b)
	}
	return e
}

// CompLits returns the E literals of every comparator encoded so far, in
// creation order. The order is a pure function of the netlist and the depth
// sequence, so lockstep workers over the same model see identical prefixes —
// the property the cube splitter's index-based cubes rely on. Requires
// TrackComparators; the returned slice is owned by the generator.
func (g *Generator) CompLits() []sat.Lit { return g.compLits }

// compKey encodes a normalized (order-independent: equality is symmetric)
// pair of literal vectors as a map key.
func compKey(a, b []sat.Lit) string {
	// Order the two vectors lexicographically so (a,b) and (b,a) collide.
	if litVecLess(b, a) {
		a, b = b, a
	}
	buf := make([]byte, 0, 8*(len(a)+len(b))+1)
	for _, l := range a {
		buf = appendLit(buf, l)
	}
	buf = append(buf, '|')
	for _, l := range b {
		buf = appendLit(buf, l)
	}
	return string(buf)
}

func litVecLess(a, b []sat.Lit) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func appendLit(buf []byte, l sat.Lit) []byte {
	x := uint32(l)
	return append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

// buildAddrEqual emits a fresh comparator (see addrEqual for the encoding).
func (g *Generator) buildAddrEqual(a, b []sat.Lit, tag unroll.Tag, counter *int) sat.Lit {
	u := g.u
	e := u.FreshVar()
	g.sizes.AuxVars++
	last := make([]sat.Lit, 0, len(a)+1)
	for i := range a {
		ei := u.FreshVar()
		g.sizes.AuxVars++
		// E → (a_i = b_i)
		g.addClause(tag, e.Not(), a[i].Not(), b[i])
		g.addClause(tag, e.Not(), a[i], b[i].Not())
		// (a_i = b_i) → e_i
		g.addClause(tag, a[i].Not(), b[i].Not(), ei)
		g.addClause(tag, a[i], b[i], ei)
		*counter += 4
		last = append(last, ei.Not())
	}
	last = append(last, e)
	g.addClause(tag, last...)
	*counter++
	return e
}

func (g *Generator) addClause(tag unroll.Tag, lits ...sat.Lit) {
	g.u.S.AddClauseTagged(int64(tag), lits)
	g.u.ClausesAdded++
}
