// Package sharenet extends the cooperative solving fleet across OS
// processes: the learnt-clause bus (internal/share) and the cube queue
// (internal/bmc) speak length-prefixed binary frames over a TCP or unix
// socket. A Broker owns the fleet — it fans published clauses out to every
// other worker (the socket analogue of the self-skipping ring cursors),
// holds the authoritative comparator intern table, leases cubes with
// deadline-based reassignment when a worker dies, and turns the first
// decisive answer into a fleet-wide finish exactly as the in-process
// cube engine's first-wins decide does. A Client is one worker process's
// endpoint.
//
// The wire format carries share.Clause literals verbatim: the canonical
// coding built by the BMC bridge is machine-independent by construction
// (frame codes are (node, time) coordinates, comparator codes are
// broker-interned), so no per-host translation happens here.
package sharenet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame types.
const (
	fHello     byte = iota + 1 // c→b: version, maxDepth, proofs
	fWelcome                   // b→c: workerID, fleet size
	fClause                    // both: busID, lbd, lits
	fInternReq                 // c→b: busID, seq, key
	fInternRep                 // b→c: seq, id
	fWorkReq                   // c→b: depth, nComp
	fWorkResp                  // b→c: kind, depth, signs
	fResult                    // c→b: kind, depth, signs
	fVerdict                   // both: kind, depth, side
	fHeartbeat                 // both: keepalive, no payload
	fGoodbye                   // c→b: orderly leave, no payload
)

// protocolVersion guards against mixed-build fleets: a Hello with a
// different version is rejected at accept time.
const protocolVersion = 1

// maxFramePayload bounds a single frame. The largest legitimate payload is
// a clause (tens of literals) or an intern key (a few hundred bytes); a
// megabyte rejects corrupt length prefixes before they turn into huge
// allocations.
const maxFramePayload = 1 << 20

// WorkResp kinds.
const (
	WorkLease   byte = 1 // solve the cube in Signs at Depth
	WorkAdvance byte = 2 // depth complete fleet-wide; move to Depth
	WorkFinish  byte = 3 // run decided; stop
)

// Result kinds.
const (
	ResultUnsat byte = 1 // cube refuted
	ResultSplit byte = 2 // budget exceeded; broker enqueues the two children
)

// Verdict kinds. These mirror bmc.ResultKind without importing it (the
// dependency runs the other way).
const (
	VerdictCE      byte = 1
	VerdictNoCE    byte = 2
	VerdictProof   byte = 3
	VerdictTimeout byte = 4
)

// Verdict is the fleet-wide decisive answer. The counter-example witness
// itself never crosses the wire — it stays with the worker that found it;
// peers learn only the kind and depth.
type Verdict struct {
	Kind  byte
	Depth int
	Side  string // proof side ("forward"/"backward") for VerdictProof
}

// WorkResp is the broker's answer to a work request.
type WorkResp struct {
	Kind  byte
	Depth int
	Signs string // cube polarities, '0'/'1' per comparator index, for WorkLease
}

// frame is the decoded wire unit: one fat struct rather than a type per
// frame keeps the codec flat; only the fields of the given typ are
// meaningful.
type frame struct {
	typ byte

	version  int // fHello
	maxDepth int
	proofs   bool

	workerID int // fWelcome
	workers  int

	busID byte // fClause, fInternReq
	lbd   int
	lits  []uint64

	seq uint64 // fInternReq, fInternRep
	key string
	id  uint64

	depth int  // fWorkReq, fWorkResp, fResult, fVerdict
	nComp int  // fWorkReq
	kind  byte // fWorkResp, fResult, fVerdict
	signs string
	side  string // fVerdict
}

var errFrameTruncated = errors.New("sharenet: truncated frame")

// appendFrame encodes f after dst (length prefix included).
func appendFrame(dst []byte, f *frame) []byte {
	p := make([]byte, 0, 64)
	p = append(p, f.typ)
	switch f.typ {
	case fHello:
		p = putUvarint(p, uint64(f.version))
		p = putUvarint(p, uint64(f.maxDepth))
		p = putBool(p, f.proofs)
	case fWelcome:
		p = putUvarint(p, uint64(f.workerID))
		p = putUvarint(p, uint64(f.workers))
	case fClause:
		p = append(p, f.busID)
		p = putUvarint(p, uint64(f.lbd))
		p = putUvarint(p, uint64(len(f.lits)))
		for _, l := range f.lits {
			p = putUvarint(p, l)
		}
	case fInternReq:
		p = append(p, f.busID)
		p = putUvarint(p, f.seq)
		p = putString(p, f.key)
	case fInternRep:
		p = putUvarint(p, f.seq)
		p = putUvarint(p, f.id)
	case fWorkReq:
		p = putUvarint(p, uint64(f.depth))
		p = putUvarint(p, uint64(f.nComp))
	case fWorkResp, fResult:
		p = append(p, f.kind)
		p = putUvarint(p, uint64(f.depth))
		p = putString(p, f.signs)
	case fVerdict:
		p = append(p, f.kind)
		p = putUvarint(p, uint64(f.depth))
		p = putString(p, f.side)
	case fHeartbeat, fGoodbye:
		// no payload
	default:
		panic(fmt.Sprintf("sharenet: encoding unknown frame type %d", f.typ))
	}
	dst = putUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

// parseFrame decodes one payload (the length prefix already stripped by the
// transport read loop). Truncated, oversized, or otherwise corrupt payloads
// return an error — never a panic — so a misbehaving peer cannot take the
// process down.
func parseFrame(p []byte) (*frame, error) {
	if len(p) == 0 {
		return nil, errFrameTruncated
	}
	r := reader{buf: p[1:]}
	f := &frame{typ: p[0]}
	var err error
	switch f.typ {
	case fHello:
		f.version, err = r.intField(err)
		f.maxDepth, err = r.intField(err)
		f.proofs, err = r.boolField(err)
	case fWelcome:
		f.workerID, err = r.intField(err)
		f.workers, err = r.intField(err)
	case fClause:
		f.busID, err = r.byteField(err)
		f.lbd, err = r.intField(err)
		var n int
		n, err = r.intField(err)
		if err == nil && n > maxFramePayload/2 {
			return nil, fmt.Errorf("sharenet: clause of %d literals rejected", n)
		}
		if err == nil {
			f.lits = make([]uint64, n)
			for i := range f.lits {
				f.lits[i], err = r.uvarintField(err)
			}
		}
	case fInternReq:
		f.busID, err = r.byteField(err)
		f.seq, err = r.uvarintField(err)
		f.key, err = r.stringField(err)
	case fInternRep:
		f.seq, err = r.uvarintField(err)
		f.id, err = r.uvarintField(err)
	case fWorkReq:
		f.depth, err = r.intField(err)
		f.nComp, err = r.intField(err)
	case fWorkResp, fResult:
		f.kind, err = r.byteField(err)
		f.depth, err = r.intField(err)
		f.signs, err = r.stringField(err)
	case fVerdict:
		f.kind, err = r.byteField(err)
		f.depth, err = r.intField(err)
		f.side, err = r.stringField(err)
	case fHeartbeat, fGoodbye:
		// no payload
	default:
		return nil, fmt.Errorf("sharenet: unknown frame type %d", f.typ)
	}
	if err != nil {
		return nil, err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("sharenet: %d trailing bytes after frame type %d", len(r.buf)-r.off, f.typ)
	}
	return f, nil
}

func putUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func putBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func putString(dst []byte, s string) []byte {
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// reader walks a payload with sticky-error field accessors, so the decode
// switch reads as a flat field list.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errFrameTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) uvarintField(err error) (uint64, error) {
	if err != nil {
		return 0, err
	}
	return r.uvarint()
}

func (r *reader) intField(err error) (int, error) {
	v, err := r.uvarintField(err)
	if err != nil {
		return 0, err
	}
	if v > uint64(maxFramePayload) {
		return 0, fmt.Errorf("sharenet: integer field %d out of range", v)
	}
	return int(v), nil
}

func (r *reader) byteField(err error) (byte, error) {
	if err != nil {
		return 0, err
	}
	if r.off >= len(r.buf) {
		return 0, errFrameTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) boolField(err error) (bool, error) {
	b, err := r.byteField(err)
	return b != 0, err
}

func (r *reader) stringField(err error) (string, error) {
	n, err := r.intField(err)
	if err != nil {
		return "", err
	}
	if r.off+n > len(r.buf) {
		return "", errFrameTruncated
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}
