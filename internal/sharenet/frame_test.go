package sharenet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// randFrame builds a random frame of a random type, exercising every field
// the codec carries.
func randFrame(rng *rand.Rand) *frame {
	letters := func(n int) string {
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	signs := func() string {
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte('0' + rng.Intn(2))
		}
		return string(b)
	}
	switch 1 + byte(rng.Intn(int(fGoodbye))) {
	case fHello:
		return &frame{typ: fHello, version: rng.Intn(10), maxDepth: rng.Intn(1000), proofs: rng.Intn(2) == 0}
	case fWelcome:
		return &frame{typ: fWelcome, workerID: rng.Intn(64), workers: 1 + rng.Intn(64)}
	case fClause:
		lits := make([]uint64, rng.Intn(40))
		for i := range lits {
			lits[i] = rng.Uint64() >> uint(rng.Intn(64)) // mix of small and huge codes
		}
		return &frame{typ: fClause, busID: byte(rng.Intn(2)), lbd: rng.Intn(30), lits: lits}
	case fInternReq:
		return &frame{typ: fInternReq, busID: byte(rng.Intn(2)), seq: rng.Uint64() >> 16, key: letters(200)}
	case fInternRep:
		return &frame{typ: fInternRep, seq: rng.Uint64() >> 16, id: rng.Uint64() >> 12}
	case fWorkReq:
		return &frame{typ: fWorkReq, depth: rng.Intn(500), nComp: rng.Intn(10000)}
	case fWorkResp:
		return &frame{typ: fWorkResp, kind: 1 + byte(rng.Intn(3)), depth: rng.Intn(500), signs: signs()}
	case fResult:
		return &frame{typ: fResult, kind: 1 + byte(rng.Intn(2)), depth: rng.Intn(500), signs: signs()}
	case fVerdict:
		return &frame{typ: fVerdict, kind: 1 + byte(rng.Intn(4)), depth: rng.Intn(500), side: letters(10)}
	case fHeartbeat:
		return &frame{typ: fHeartbeat}
	default:
		return &frame{typ: fGoodbye}
	}
}

// TestFrameRoundTripFuzz encodes random frames and decodes them through the
// real transport read path, requiring byte-exact field recovery.
func TestFrameRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var wire []byte
	var sent []*frame
	for i := 0; i < 2000; i++ {
		f := randFrame(rng)
		sent = append(sent, f)
		wire = appendFrame(wire, f)
	}
	r := bytes.NewReader(wire)
	for i, want := range sent {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d (type %d): %v", i, want.typ, err)
		}
		// Normalize: empty slices decode as nil or empty interchangeably.
		if len(want.lits) == 0 {
			want.lits, got.lits = nil, got.lits[:0:0]
			if len(got.lits) == 0 {
				got.lits = nil
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left on the wire", r.Len())
	}
}

// TestFrameRejectsTruncated feeds every proper prefix of a valid stream to
// the decoder: all must error, none may panic.
func TestFrameRejectsTruncated(t *testing.T) {
	f := &frame{typ: fClause, busID: 1, lbd: 4, lits: []uint64{1, 99, 1 << 53}}
	wire := appendFrame(nil, f)
	for n := 0; n < len(wire); n++ {
		if _, err := readFrame(bytes.NewReader(wire[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(wire))
		}
	}
}

// TestFrameRejectsOversized checks the length-prefix bound: a frame
// claiming more than maxFramePayload bytes is refused before allocation.
func TestFrameRejectsOversized(t *testing.T) {
	wire := putUvarint(nil, maxFramePayload+1)
	wire = append(wire, make([]byte, 64)...) // some bytes, far fewer than claimed
	if _, err := readFrame(bytes.NewReader(wire)); err == nil {
		t.Fatalf("oversized frame accepted")
	}
	// A clause whose literal count would exceed the payload bound is also
	// rejected even when the outer frame length lies about it.
	p := []byte{fClause, 0 /* busID */, 3 /* lbd */}
	p = putUvarint(p, maxFramePayload) // absurd literal count
	if _, err := parseFrame(p); err == nil {
		t.Fatalf("clause with absurd literal count accepted")
	}
}

// TestFrameRejectsCorrupt checks unknown types, trailing garbage, and
// random byte soup: always an error, never a panic.
func TestFrameRejectsCorrupt(t *testing.T) {
	if _, err := parseFrame([]byte{0xEE, 1, 2, 3}); err == nil {
		t.Fatalf("unknown frame type accepted")
	}
	if _, err := parseFrame(nil); err == nil {
		t.Fatalf("empty payload accepted")
	}
	valid := appendFrame(nil, &frame{typ: fWorkReq, depth: 3, nComp: 9})
	corrupt := append(valid[:len(valid)-1], valid[len(valid)-1], 0xFF)
	corrupt[0]++ // length now claims one extra byte: trailing garbage
	if _, err := readFrame(bytes.NewReader(corrupt)); err == nil {
		t.Fatalf("frame with trailing bytes accepted")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		p := make([]byte, rng.Intn(40))
		rng.Read(p)
		parseFrame(p) // must not panic; error or (luckily) a frame both fine
	}
}
