package sharenet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"emmver/internal/obs"
	"emmver/internal/share"
)

// ClientOptions configures Dial.
type ClientOptions struct {
	// MaxDepth and Proofs describe this worker's run; the broker takes the
	// fleet MaxDepth as the max over hellos and enables the proof gate when
	// worker 0 runs proofs.
	MaxDepth int
	Proofs   bool
	// DialTimeout bounds the retry loop waiting for the broker to come up
	// (0 = default 10s). Retries are counted as sharenet.reconnects.
	DialTimeout time.Duration
	Heartbeat   time.Duration
	PeerTO      time.Duration
	Obs         *obs.Observer
}

// ErrLinkDown reports a dead transport: operations that need the broker
// fail with it instead of hanging.
var ErrLinkDown = errors.New("sharenet: link to broker is down")

// Client is one worker process's endpoint on the fleet. It uplinks up to
// two share buses (forward/backward), answers the bus's Intern calls with
// broker round trips, and runs the cube work loop's socket half.
type Client struct {
	nc   net.Conn
	opts ClientOptions

	workerID int
	workers  int

	wmu  sync.Mutex
	wbuf []byte

	sent       *obs.Counter
	received   *obs.Counter
	reconnects *obs.Counter

	pendMu  sync.Mutex
	pending map[uint64]chan uint64
	seq     atomic.Uint64

	busMu sync.Mutex
	buses [2]*share.Bus
	outs  [2]*share.Outbox

	workCh chan WorkResp

	vmu       sync.Mutex
	verdict   Verdict
	hasVerd   bool
	onVerdict func(Verdict)

	down     chan struct{} // closed when the transport dies
	downOnce sync.Once
	decided  chan struct{} // closed when a verdict arrives
	decOnce  sync.Once
	wg       sync.WaitGroup
}

// Dial connects to a broker, retrying with backoff until DialTimeout (so a
// -connect worker can start before its -listen peer), performs the hello
// handshake, and starts the receive, heartbeat, and bus-flush loops.
func Dial(network, addr string, opts ClientOptions) (*Client, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = defaultHeartbeat
	}
	if opts.PeerTO <= 0 {
		opts.PeerTO = defaultPeerTO
	}
	reg := opts.Obs.Registry()
	reconnects := reg.Counter(obs.MNetReconnects)
	deadline := time.Now().Add(opts.DialTimeout)
	backoff := 20 * time.Millisecond
	var nc net.Conn
	var err error
	for {
		nc, err = net.DialTimeout(network, addr, opts.DialTimeout)
		if err == nil {
			break
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("sharenet: dial %s %s: %w", network, addr, err)
		}
		reconnects.Add(1)
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
	c := &Client{
		nc:         nc,
		opts:       opts,
		sent:       reg.Counter(obs.MNetSent),
		received:   reg.Counter(obs.MNetReceived),
		reconnects: reconnects,
		pending:    make(map[uint64]chan uint64),
		workCh:     make(chan WorkResp, 4),
		down:       make(chan struct{}),
		decided:    make(chan struct{}),
	}
	if err := c.write(&frame{typ: fHello, version: protocolVersion, maxDepth: opts.MaxDepth, proofs: opts.Proofs}); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetReadDeadline(time.Now().Add(opts.PeerTO))
	welcome, err := readFrame(nc)
	if err != nil || welcome.typ != fWelcome {
		nc.Close()
		if err == nil {
			err = errors.New("sharenet: broker did not welcome")
		}
		return nil, err
	}
	c.workerID = welcome.workerID
	c.workers = welcome.workers
	c.wg.Add(3)
	go c.recvLoop()
	go c.heartbeatLoop()
	go c.flushLoop()
	return c, nil
}

// WorkerID is this process's broker-assigned fleet index (0 runs proofs).
func (c *Client) WorkerID() int { return c.workerID }

// Workers is the configured fleet size.
func (c *Client) Workers() int { return c.workers }

// Down is closed when the transport dies.
func (c *Client) Down() <-chan struct{} { return c.down }

// AttachBus uplinks a share bus (busID 0 = forward, 1 = backward): its
// Intern becomes a broker round trip with local caching, locally published
// clauses are flushed to the broker, and broker-relayed clauses land on the
// bus's remote ring. Call before the first depth is unrolled.
func (c *Client) AttachBus(busID int, b *share.Bus) {
	if busID < 0 || busID > 1 || b == nil {
		return
	}
	c.busMu.Lock()
	c.buses[busID] = b
	c.outs[busID] = b.Outbox()
	c.busMu.Unlock()
	id := byte(busID)
	b.SetInterner(func(key string) (uint64, bool) { return c.intern(id, key) })
}

// OnVerdict registers fn to run (once, from the receive loop) when the
// fleet verdict arrives; workers use it to cancel their run context so
// in-flight solves stop at the next interrupt poll.
func (c *Client) OnVerdict(fn func(Verdict)) {
	c.vmu.Lock()
	c.onVerdict = fn
	v, has := c.verdict, c.hasVerd
	c.vmu.Unlock()
	if has && fn != nil {
		fn(v)
	}
}

// Verdict returns the fleet verdict, if one has arrived.
func (c *Client) Verdict() (Verdict, bool) {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	return c.verdict, c.hasVerd
}

// RequestWork asks the broker for a cube at depth (nComp comparators are
// splittable there) and blocks for the response. A fleet verdict arriving
// while parked surfaces as a WorkFinish.
func (c *Client) RequestWork(depth, nComp int) (WorkResp, error) {
	if err := c.write(&frame{typ: fWorkReq, depth: depth, nComp: nComp}); err != nil {
		return WorkResp{}, err
	}
	select {
	case r := <-c.workCh:
		return r, nil
	case <-c.decided:
		return WorkResp{Kind: WorkFinish, Depth: depth}, nil
	case <-c.down:
		return WorkResp{}, ErrLinkDown
	}
}

// SendResult reports a leased cube as refuted (split=false) or asks the
// broker to enqueue its two children (split=true).
func (c *Client) SendResult(depth int, signs string, split bool) error {
	kind := ResultUnsat
	if split {
		kind = ResultSplit
	}
	return c.write(&frame{typ: fResult, kind: kind, depth: depth, signs: signs})
}

// SendVerdict reports a decisive answer. First verdict wins at the broker.
func (c *Client) SendVerdict(v Verdict) error {
	return c.write(&frame{typ: fVerdict, kind: v.Kind, depth: v.Depth, side: v.Side})
}

// Close leaves the fleet (best-effort goodbye) and stops the loops.
func (c *Client) Close() error {
	c.write(&frame{typ: fGoodbye})
	c.markDown()
	err := c.nc.Close()
	c.wg.Wait()
	return err
}

// Kill severs the link immediately — no goodbye, no waiting for the loops
// to drain. It simulates a worker crash (the death tests use it): the
// broker notices through the broken socket and requeues this worker's
// leases.
func (c *Client) Kill() {
	c.markDown()
	c.nc.Close()
}

func (c *Client) markDown() {
	c.downOnce.Do(func() {
		close(c.down)
		c.pendMu.Lock()
		for seq, ch := range c.pending {
			close(ch)
			delete(c.pending, seq)
		}
		c.pendMu.Unlock()
	})
}

// write encodes and sends one frame (serialized: net.Conn writes from
// multiple goroutines must not interleave).
func (c *Client) write(f *frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	select {
	case <-c.down:
		return ErrLinkDown
	default:
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.opts.PeerTO))
	c.wbuf = appendFrame(c.wbuf[:0], f)
	if _, err := c.nc.Write(c.wbuf); err != nil {
		c.markDown()
		return err
	}
	c.sent.Add(1)
	return nil
}

// intern is the share.Bus interner: one request/reply round trip per novel
// key (the bus caches the answer). ok=false only ever means the transport
// is dead — the bus then coins a private id, which is sound precisely
// because a downed link exports nothing (the flush loop exits before any
// clause carrying the private code could reach the wire, where a peer
// holding its own n-th private id for a different key would decode it as
// the wrong comparator). A reply that misses the silence threshold is
// therefore treated as link death, never as a soft failure.
func (c *Client) intern(busID byte, key string) (uint64, bool) {
	seq := c.seq.Add(1)
	ch := make(chan uint64, 1)
	c.pendMu.Lock()
	c.pending[seq] = ch
	c.pendMu.Unlock()
	if err := c.write(&frame{typ: fInternReq, busID: busID, seq: seq, key: key}); err != nil {
		c.pendMu.Lock()
		delete(c.pending, seq)
		c.pendMu.Unlock()
		return 0, false
	}
	select {
	case id, ok := <-ch:
		return id, ok
	case <-c.down:
		return 0, false
	case <-time.After(c.opts.PeerTO):
		c.pendMu.Lock()
		delete(c.pending, seq)
		c.pendMu.Unlock()
		// Sever the socket too (not just the down flag): the broker then
		// notices the break and requeues this worker's leases instead of
		// waiting out the heartbeat lapse.
		c.markDown()
		c.nc.Close()
		return 0, false
	}
}

func (c *Client) recvLoop() {
	defer c.wg.Done()
	defer c.markDown()
	for {
		c.nc.SetReadDeadline(time.Now().Add(c.opts.PeerTO))
		f, err := readFrame(c.nc)
		if err != nil {
			return
		}
		c.received.Add(1)
		switch f.typ {
		case fHeartbeat:
			// deadline already refreshed
		case fClause:
			c.busMu.Lock()
			b := c.buses[f.busID&1]
			c.busMu.Unlock()
			if b != nil {
				b.PushRemote(&share.Clause{Lits: f.lits, LBD: f.lbd})
			}
		case fInternRep:
			c.pendMu.Lock()
			if ch, ok := c.pending[f.seq]; ok {
				delete(c.pending, f.seq)
				ch <- f.id
			}
			c.pendMu.Unlock()
		case fWorkResp:
			r := WorkResp{Kind: f.kind, Depth: f.depth, Signs: f.signs}
			select {
			case c.workCh <- r:
			default:
				// Only finish responses can coincide with an undelivered
				// earlier response; the decided channel carries that signal.
			}
		case fVerdict:
			c.vmu.Lock()
			first := !c.hasVerd
			if first {
				c.verdict = Verdict{Kind: f.kind, Depth: f.depth, Side: f.side}
				c.hasVerd = true
			}
			fn := c.onVerdict
			v := c.verdict
			c.vmu.Unlock()
			if first {
				c.decOnce.Do(func() { close(c.decided) })
				if fn != nil {
					fn(v)
				}
			}
		default:
			return
		}
	}
}

func (c *Client) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.down:
			return
		case <-t.C:
			if c.write(&frame{typ: fHeartbeat}) != nil {
				return
			}
		}
	}
}

// flushLoop forwards locally published clauses to the broker every few
// milliseconds — latency well under a restart interval, batching well above
// per-clause syscall cost.
func (c *Client) flushLoop() {
	defer c.wg.Done()
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.down:
			return
		case <-t.C:
			c.flushOnce()
		}
	}
}

func (c *Client) flushOnce() {
	for id := 0; id < 2; id++ {
		c.busMu.Lock()
		out := c.outs[id]
		c.busMu.Unlock()
		if out == nil {
			continue
		}
		bid := byte(id)
		out.Drain(func(cl *share.Clause) {
			c.write(&frame{typ: fClause, busID: bid, lbd: cl.LBD, lits: cl.Lits})
		})
	}
}
