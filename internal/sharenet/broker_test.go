package sharenet

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"emmver/internal/share"
)

// pair starts a broker for two workers on a unix socket and dials both.
func pair(t *testing.T, bopts BrokerOptions) (*Broker, *Client, *Client) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "fleet.sock")
	bopts.Workers = 2
	b, err := Listen("unix", sock, bopts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	copts := ClientOptions{MaxDepth: bopts.Workers} // overwritten below
	copts.MaxDepth = 0
	a, err := Dial("unix", sock, copts)
	if err != nil {
		t.Fatalf("Dial a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	c, err := Dial("unix", sock, copts)
	if err != nil {
		t.Fatalf("Dial c: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if a.WorkerID() == c.WorkerID() {
		t.Fatalf("both clients got worker id %d", a.WorkerID())
	}
	return b, a, c
}

// TestInternAuthority: both workers interning the same key get the same
// fleet-wide id; distinct keys get distinct dense ids; the bus cache means
// one round trip per key.
func TestInternAuthority(t *testing.T) {
	_, a, c := pair(t, BrokerOptions{})
	busA, busC := share.NewBus(1, 8), share.NewBus(1, 8)
	a.AttachBus(0, busA)
	c.AttachBus(0, busC)
	k1a := busA.Intern("cmp:x=y")
	k1c := busC.Intern("cmp:x=y")
	if k1a != k1c {
		t.Fatalf("same key interned to %d and %d", k1a, k1c)
	}
	k2 := busA.Intern("cmp:p=q")
	if k2 == k1a {
		t.Fatalf("distinct keys share id %d", k2)
	}
	if k1a >= 1<<40 || k2 >= 1<<40 {
		t.Fatalf("broker ids %d, %d reached the private fallback namespace", k1a, k2)
	}
	// The backward bus has its own table: ids restart from 0.
	busAb := share.NewBus(1, 8)
	a.AttachBus(1, busAb)
	if id := busAb.Intern("cmp:backward"); id != 0 {
		t.Fatalf("backward bus first id = %d, want 0", id)
	}
}

// TestClauseRelay: a clause published on one worker's bus reaches the
// peer's bus through the broker, and is not echoed back to the sender.
func TestClauseRelay(t *testing.T) {
	_, a, c := pair(t, BrokerOptions{})
	busA, busC := share.NewBus(1, 64), share.NewBus(1, 64)
	a.AttachBus(0, busA)
	c.AttachBus(0, busC)
	busA.Publish(0, &share.Clause{Lits: []uint64{3, 5, 1 << 52}, LBD: 2})

	inC := busC.Inbox(0)
	var got []*share.Clause
	deadline := time.Now().Add(5 * time.Second)
	for len(got) == 0 && time.Now().Before(deadline) {
		inC.Drain(func(cl *share.Clause) { got = append(got, cl) })
		time.Sleep(5 * time.Millisecond)
	}
	if len(got) != 1 {
		t.Fatalf("peer received %d clauses, want 1", len(got))
	}
	if got[0].LBD != 2 || len(got[0].Lits) != 3 || got[0].Lits[2] != 1<<52 {
		t.Fatalf("clause mangled in transit: %+v", got[0])
	}
	// The sender's own inbox must not see an echo (its inbox skips its own
	// ring, and the broker never relays back to the source).
	time.Sleep(50 * time.Millisecond)
	inA := busA.Inbox(0)
	echoes := 0
	inA.Drain(func(*share.Clause) { echoes++ })
	if echoes != 0 {
		t.Fatalf("sender received %d echoed clauses", echoes)
	}
}

// drainCubes pulls work for one client until advance/finish, reporting
// every leased cube UNSAT. Returns the terminal response. Runs on worker
// goroutines, so failures use Errorf (a zero WorkResp fails the caller's
// kind check).
func drainCubes(t *testing.T, c *Client, depth, nComp int) WorkResp {
	t.Helper()
	for {
		resp, err := c.RequestWork(depth, nComp)
		if err != nil {
			t.Errorf("worker %d RequestWork: %v", c.WorkerID(), err)
			return WorkResp{}
		}
		if resp.Kind != WorkLease {
			return resp
		}
		if err := c.SendResult(depth, resp.Signs, false); err != nil {
			t.Errorf("worker %d SendResult: %v", c.WorkerID(), err)
			return WorkResp{}
		}
	}
}

// TestCubeProtocolCompletes: two workers drain the seeded cubes of the only
// depth; the broker concludes NO_CE and finishes both.
func TestCubeProtocolCompletes(t *testing.T) {
	b, a, c := pair(t, BrokerOptions{})
	done := make(chan WorkResp, 2)
	go func() { done <- drainCubes(t, a, 0, 3) }()
	go func() { done <- drainCubes(t, c, 0, 3) }()
	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			if r.Kind != WorkFinish {
				t.Fatalf("terminal response kind %d, want finish", r.Kind)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("fleet did not finish")
		}
	}
	v, ok := b.Verdict()
	if !ok || v.Kind != VerdictNoCE || v.Depth != 0 {
		t.Fatalf("broker verdict = %+v (ok=%v), want NoCE at depth 0", v, ok)
	}
	if va, ok := a.Verdict(); !ok || va.Kind != VerdictNoCE {
		t.Fatalf("worker a verdict = %+v (ok=%v)", va, ok)
	}
}

// TestCubeSplitRefines: a split result turns one cube into two children,
// both of which must then be leased and refuted before the fleet finishes.
func TestCubeSplitRefines(t *testing.T) {
	_, a, c := pair(t, BrokerOptions{})
	go drainCubes(t, c, 0, 4)
	seen := map[string]bool{}
	split := false
	for {
		resp, err := a.RequestWork(0, 4)
		if err != nil {
			t.Fatalf("RequestWork: %v", err)
		}
		if resp.Kind == WorkFinish {
			break
		}
		if resp.Kind != WorkLease {
			t.Fatalf("unexpected response kind %d", resp.Kind)
		}
		seen[resp.Signs] = true
		if !split {
			split = true
			a.SendResult(0, resp.Signs, true) // children signs+"0", signs+"1"
		} else {
			a.SendResult(0, resp.Signs, false)
		}
	}
	// At least one child cube (length > seed width 2) must have been solved
	// by someone; with worker c refuting blindly we can only check that our
	// own split produced deeper cubes somewhere in the fleet — the broker
	// finishing at all proves the children were retired.
	if !split {
		t.Fatalf("never got a cube to split")
	}
}

// TestVerdictCancelsFleet: one worker reports a counter-example; the peer's
// OnVerdict fires and its next work request finishes.
func TestVerdictCancelsFleet(t *testing.T) {
	b, a, c := pair(t, BrokerOptions{})
	fired := make(chan Verdict, 1)
	c.OnVerdict(func(v Verdict) { fired <- v })
	if err := a.SendVerdict(Verdict{Kind: VerdictCE, Depth: 0}); err != nil {
		t.Fatalf("SendVerdict: %v", err)
	}
	select {
	case v := <-fired:
		if v.Kind != VerdictCE {
			t.Fatalf("peer verdict kind %d, want CE", v.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("peer OnVerdict never fired")
	}
	resp, err := c.RequestWork(0, 2)
	if err != nil || resp.Kind != WorkFinish {
		t.Fatalf("post-verdict RequestWork = %+v, %v; want finish", resp, err)
	}
	if v, ok := b.Verdict(); !ok || v.Kind != VerdictCE {
		t.Fatalf("broker verdict = %+v (ok=%v)", v, ok)
	}
}

// TestLeaseReassignedAfterWorkerDeath is the satellite's death test: a
// worker leases a cube and dies without answering; the broker requeues the
// cube (disconnect-triggered, no TTL wait) and the survivor still drives
// the run to the correct NO_CE verdict. The dead worker held the fleet's
// worker-0 slot, so this also covers the proof-gate release on death.
func TestLeaseReassignedAfterWorkerDeath(t *testing.T) {
	b, a, c := pair(t, BrokerOptions{LeaseTTL: time.Hour}) // TTL can't save us; only death handling can
	// Worker a takes a lease and dies holding it.
	resp, err := a.RequestWork(0, 1) // nComp 1 → seed width 1 → cubes "0","1"
	if err != nil || resp.Kind != WorkLease {
		t.Fatalf("initial lease = %+v, %v", resp, err)
	}
	heldByA := resp.Signs
	a.nc.Close() // simulated kill -9: no goodbye, no result

	// The survivor must eventually be leased the dead worker's cube and
	// complete the depth.
	sawOrphan := false
	for {
		resp, err := c.RequestWork(0, 1)
		if err != nil {
			t.Fatalf("survivor RequestWork: %v", err)
		}
		if resp.Kind == WorkFinish {
			break
		}
		if resp.Kind != WorkLease {
			t.Fatalf("survivor got response kind %d", resp.Kind)
		}
		if resp.Signs == heldByA {
			sawOrphan = true
		}
		c.SendResult(0, resp.Signs, false)
	}
	if !sawOrphan {
		t.Fatalf("dead worker's cube %q never re-leased", heldByA)
	}
	if v, ok := b.Verdict(); !ok || v.Kind != VerdictNoCE {
		t.Fatalf("fleet verdict after death = %+v (ok=%v), want NoCE", v, ok)
	}
}

// TestLeaseExpiryRequeues: a lease whose TTL passes is reassigned even
// though the holder is still connected (it might be wedged, not dead).
func TestLeaseExpiryRequeues(t *testing.T) {
	_, a, c := pair(t, BrokerOptions{LeaseTTL: 100 * time.Millisecond})
	resp, err := a.RequestWork(0, 1)
	if err != nil || resp.Kind != WorkLease {
		t.Fatalf("initial lease = %+v, %v", resp, err)
	}
	wedged := resp.Signs // a never answers, but stays connected
	seen := map[string]bool{}
	for {
		resp, err := c.RequestWork(0, 1)
		if err != nil {
			t.Fatalf("RequestWork: %v", err)
		}
		if resp.Kind == WorkFinish {
			break
		}
		seen[resp.Signs] = true
		c.SendResult(0, resp.Signs, false)
	}
	if !seen[wedged] {
		t.Fatalf("expired lease %q never reassigned (saw %v)", wedged, seen)
	}
}

// TestInternTimeoutSeversLink: an intern round trip that misses PeerTO must
// kill the whole link, not just fail softly. A worker whose bus coins
// private ids while its transport keeps flushing would put private
// comparator codes on the wire, where a peer holding the same private base
// for a different key would decode them as the wrong comparator. The fake
// broker keeps the link warm with heartbeats but never answers the intern
// request, isolating the timeout path from ordinary silence detection.
func TestInternTimeoutSeversLink(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "fake.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if f, err := readFrame(nc); err != nil || f.typ != fHello {
			return
		}
		nc.Write(appendFrame(nil, &frame{typ: fWelcome, workerID: 0, workers: 1}))
		hb := appendFrame(nil, &frame{typ: fHeartbeat})
		go func() {
			for {
				if _, err := nc.Write(hb); err != nil {
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
		}()
		for {
			if _, err := readFrame(nc); err != nil {
				return
			}
		}
	}()
	cl, err := Dial("unix", sock, ClientOptions{PeerTO: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	bus := share.NewBus(1, 8)
	cl.AttachBus(0, bus)
	if id := bus.Intern("cmp:unanswered"); id < share.PrivateInternBase {
		t.Fatalf("timed-out intern returned broker-namespace id %d", id)
	}
	select {
	case <-cl.Down():
	case <-time.After(5 * time.Second):
		t.Fatalf("intern timeout did not sever the link")
	}
}

// TestWorkerDeathBeforeFleetAssemblyAborts: the start gate never opens once
// a worker dies pre-assembly (joined is never decremented and the dead slot
// is never refilled), so the broker must abort the run rather than park the
// survivors' work requests forever.
func TestWorkerDeathBeforeFleetAssemblyAborts(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "fleet.sock")
	b, err := Listen("unix", sock, BrokerOptions{Workers: 3})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer b.Close()
	a, err := Dial("unix", sock, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial a: %v", err)
	}
	defer a.Close()
	c, err := Dial("unix", sock, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial c: %v", err)
	}
	defer c.Close()
	done := make(chan WorkResp, 1)
	go func() {
		r, err := a.RequestWork(0, 2) // parks: 2 of 3 workers joined
		if err != nil {
			t.Errorf("RequestWork: %v", err)
		}
		done <- r
	}()
	time.Sleep(50 * time.Millisecond) // let the request park behind the gate
	c.Kill()                          // crash before the third worker ever joins
	select {
	case r := <-done:
		if r.Kind != WorkFinish {
			t.Fatalf("survivor got response kind %d, want finish", r.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("parked request hung after pre-assembly worker death")
	}
	if v, ok := b.Verdict(); !ok || v.Kind != VerdictTimeout {
		t.Fatalf("broker verdict = %+v (ok=%v), want timeout abort", v, ok)
	}
}

// TestLateParentUnsatPrunesRequeuedChildren reproduces the reassignment
// interleaving where a lease expires, the cube is re-leased, the original
// holder's late split re-enqueues the children, and the new holder then
// refutes the parent. The parent itself is no longer tracked at that point,
// but its UNSAT subsumes the whole subtree — dropping it as stale would
// leave the fleet re-solving pruned work.
func TestLateParentUnsatPrunesRequeuedChildren(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "fleet.sock")
	b, err := Listen("unix", sock, BrokerOptions{Workers: 2})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer b.Close()
	b.mu.Lock()
	b.seeded = true
	b.nComp = 2
	b.queue = []string{"1"} // sibling keeps the depth open
	b.leases["0"] = &lease{expires: time.Now().Add(time.Hour)}
	b.mu.Unlock()

	b.handleResult(ResultSplit, 0, "0") // original holder's late split
	b.mu.Lock()
	qlen := len(b.queue)
	b.mu.Unlock()
	if qlen != 3 {
		t.Fatalf("split enqueued %d cubes, want 3 (sibling + two children)", qlen)
	}

	b.handleResult(ResultUnsat, 0, "0") // new holder refutes the parent
	b.mu.Lock()
	queue := append([]string(nil), b.queue...)
	b.mu.Unlock()
	if len(queue) != 1 || queue[0] != "1" {
		t.Fatalf("late parent UNSAT left descendants queued: %v", queue)
	}
}

// TestDeadTransportInternFallsBack: Intern on a bus whose client link died
// coins private ids instead of hanging or panicking.
func TestDeadTransportInternFallsBack(t *testing.T) {
	b, a, _ := pair(t, BrokerOptions{})
	bus := share.NewBus(1, 8)
	a.AttachBus(0, bus)
	b.Close() // broker gone
	done := make(chan uint64, 1)
	go func() { done <- bus.Intern("cmp:orphan") }()
	select {
	case id := <-done:
		if id < 1<<40 {
			t.Fatalf("dead-transport intern returned broker-namespace id %d", id)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("intern hung on dead transport")
	}
}
