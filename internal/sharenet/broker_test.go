package sharenet

import (
	"path/filepath"
	"testing"
	"time"

	"emmver/internal/share"
)

// pair starts a broker for two workers on a unix socket and dials both.
func pair(t *testing.T, bopts BrokerOptions) (*Broker, *Client, *Client) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "fleet.sock")
	bopts.Workers = 2
	b, err := Listen("unix", sock, bopts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	copts := ClientOptions{MaxDepth: bopts.Workers} // overwritten below
	copts.MaxDepth = 0
	a, err := Dial("unix", sock, copts)
	if err != nil {
		t.Fatalf("Dial a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	c, err := Dial("unix", sock, copts)
	if err != nil {
		t.Fatalf("Dial c: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if a.WorkerID() == c.WorkerID() {
		t.Fatalf("both clients got worker id %d", a.WorkerID())
	}
	return b, a, c
}

// TestInternAuthority: both workers interning the same key get the same
// fleet-wide id; distinct keys get distinct dense ids; the bus cache means
// one round trip per key.
func TestInternAuthority(t *testing.T) {
	_, a, c := pair(t, BrokerOptions{})
	busA, busC := share.NewBus(1, 8), share.NewBus(1, 8)
	a.AttachBus(0, busA)
	c.AttachBus(0, busC)
	k1a := busA.Intern("cmp:x=y")
	k1c := busC.Intern("cmp:x=y")
	if k1a != k1c {
		t.Fatalf("same key interned to %d and %d", k1a, k1c)
	}
	k2 := busA.Intern("cmp:p=q")
	if k2 == k1a {
		t.Fatalf("distinct keys share id %d", k2)
	}
	if k1a >= 1<<40 || k2 >= 1<<40 {
		t.Fatalf("broker ids %d, %d reached the private fallback namespace", k1a, k2)
	}
	// The backward bus has its own table: ids restart from 0.
	busAb := share.NewBus(1, 8)
	a.AttachBus(1, busAb)
	if id := busAb.Intern("cmp:backward"); id != 0 {
		t.Fatalf("backward bus first id = %d, want 0", id)
	}
}

// TestClauseRelay: a clause published on one worker's bus reaches the
// peer's bus through the broker, and is not echoed back to the sender.
func TestClauseRelay(t *testing.T) {
	_, a, c := pair(t, BrokerOptions{})
	busA, busC := share.NewBus(1, 64), share.NewBus(1, 64)
	a.AttachBus(0, busA)
	c.AttachBus(0, busC)
	busA.Publish(0, &share.Clause{Lits: []uint64{3, 5, 1 << 52}, LBD: 2})

	inC := busC.Inbox(0)
	var got []*share.Clause
	deadline := time.Now().Add(5 * time.Second)
	for len(got) == 0 && time.Now().Before(deadline) {
		inC.Drain(func(cl *share.Clause) { got = append(got, cl) })
		time.Sleep(5 * time.Millisecond)
	}
	if len(got) != 1 {
		t.Fatalf("peer received %d clauses, want 1", len(got))
	}
	if got[0].LBD != 2 || len(got[0].Lits) != 3 || got[0].Lits[2] != 1<<52 {
		t.Fatalf("clause mangled in transit: %+v", got[0])
	}
	// The sender's own inbox must not see an echo (its inbox skips its own
	// ring, and the broker never relays back to the source).
	time.Sleep(50 * time.Millisecond)
	inA := busA.Inbox(0)
	echoes := 0
	inA.Drain(func(*share.Clause) { echoes++ })
	if echoes != 0 {
		t.Fatalf("sender received %d echoed clauses", echoes)
	}
}

// drainCubes pulls work for one client until advance/finish, reporting
// every leased cube UNSAT. Returns the terminal response. Runs on worker
// goroutines, so failures use Errorf (a zero WorkResp fails the caller's
// kind check).
func drainCubes(t *testing.T, c *Client, depth, nComp int) WorkResp {
	t.Helper()
	for {
		resp, err := c.RequestWork(depth, nComp)
		if err != nil {
			t.Errorf("worker %d RequestWork: %v", c.WorkerID(), err)
			return WorkResp{}
		}
		if resp.Kind != WorkLease {
			return resp
		}
		if err := c.SendResult(depth, resp.Signs, false); err != nil {
			t.Errorf("worker %d SendResult: %v", c.WorkerID(), err)
			return WorkResp{}
		}
	}
}

// TestCubeProtocolCompletes: two workers drain the seeded cubes of the only
// depth; the broker concludes NO_CE and finishes both.
func TestCubeProtocolCompletes(t *testing.T) {
	b, a, c := pair(t, BrokerOptions{})
	done := make(chan WorkResp, 2)
	go func() { done <- drainCubes(t, a, 0, 3) }()
	go func() { done <- drainCubes(t, c, 0, 3) }()
	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			if r.Kind != WorkFinish {
				t.Fatalf("terminal response kind %d, want finish", r.Kind)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("fleet did not finish")
		}
	}
	v, ok := b.Verdict()
	if !ok || v.Kind != VerdictNoCE || v.Depth != 0 {
		t.Fatalf("broker verdict = %+v (ok=%v), want NoCE at depth 0", v, ok)
	}
	if va, ok := a.Verdict(); !ok || va.Kind != VerdictNoCE {
		t.Fatalf("worker a verdict = %+v (ok=%v)", va, ok)
	}
}

// TestCubeSplitRefines: a split result turns one cube into two children,
// both of which must then be leased and refuted before the fleet finishes.
func TestCubeSplitRefines(t *testing.T) {
	_, a, c := pair(t, BrokerOptions{})
	go drainCubes(t, c, 0, 4)
	seen := map[string]bool{}
	split := false
	for {
		resp, err := a.RequestWork(0, 4)
		if err != nil {
			t.Fatalf("RequestWork: %v", err)
		}
		if resp.Kind == WorkFinish {
			break
		}
		if resp.Kind != WorkLease {
			t.Fatalf("unexpected response kind %d", resp.Kind)
		}
		seen[resp.Signs] = true
		if !split {
			split = true
			a.SendResult(0, resp.Signs, true) // children signs+"0", signs+"1"
		} else {
			a.SendResult(0, resp.Signs, false)
		}
	}
	// At least one child cube (length > seed width 2) must have been solved
	// by someone; with worker c refuting blindly we can only check that our
	// own split produced deeper cubes somewhere in the fleet — the broker
	// finishing at all proves the children were retired.
	if !split {
		t.Fatalf("never got a cube to split")
	}
}

// TestVerdictCancelsFleet: one worker reports a counter-example; the peer's
// OnVerdict fires and its next work request finishes.
func TestVerdictCancelsFleet(t *testing.T) {
	b, a, c := pair(t, BrokerOptions{})
	fired := make(chan Verdict, 1)
	c.OnVerdict(func(v Verdict) { fired <- v })
	if err := a.SendVerdict(Verdict{Kind: VerdictCE, Depth: 0}); err != nil {
		t.Fatalf("SendVerdict: %v", err)
	}
	select {
	case v := <-fired:
		if v.Kind != VerdictCE {
			t.Fatalf("peer verdict kind %d, want CE", v.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("peer OnVerdict never fired")
	}
	resp, err := c.RequestWork(0, 2)
	if err != nil || resp.Kind != WorkFinish {
		t.Fatalf("post-verdict RequestWork = %+v, %v; want finish", resp, err)
	}
	if v, ok := b.Verdict(); !ok || v.Kind != VerdictCE {
		t.Fatalf("broker verdict = %+v (ok=%v)", v, ok)
	}
}

// TestLeaseReassignedAfterWorkerDeath is the satellite's death test: a
// worker leases a cube and dies without answering; the broker requeues the
// cube (disconnect-triggered, no TTL wait) and the survivor still drives
// the run to the correct NO_CE verdict. The dead worker held the fleet's
// worker-0 slot, so this also covers the proof-gate release on death.
func TestLeaseReassignedAfterWorkerDeath(t *testing.T) {
	b, a, c := pair(t, BrokerOptions{LeaseTTL: time.Hour}) // TTL can't save us; only death handling can
	// Worker a takes a lease and dies holding it.
	resp, err := a.RequestWork(0, 1) // nComp 1 → seed width 1 → cubes "0","1"
	if err != nil || resp.Kind != WorkLease {
		t.Fatalf("initial lease = %+v, %v", resp, err)
	}
	heldByA := resp.Signs
	a.nc.Close() // simulated kill -9: no goodbye, no result

	// The survivor must eventually be leased the dead worker's cube and
	// complete the depth.
	sawOrphan := false
	for {
		resp, err := c.RequestWork(0, 1)
		if err != nil {
			t.Fatalf("survivor RequestWork: %v", err)
		}
		if resp.Kind == WorkFinish {
			break
		}
		if resp.Kind != WorkLease {
			t.Fatalf("survivor got response kind %d", resp.Kind)
		}
		if resp.Signs == heldByA {
			sawOrphan = true
		}
		c.SendResult(0, resp.Signs, false)
	}
	if !sawOrphan {
		t.Fatalf("dead worker's cube %q never re-leased", heldByA)
	}
	if v, ok := b.Verdict(); !ok || v.Kind != VerdictNoCE {
		t.Fatalf("fleet verdict after death = %+v (ok=%v), want NoCE", v, ok)
	}
}

// TestLeaseExpiryRequeues: a lease whose TTL passes is reassigned even
// though the holder is still connected (it might be wedged, not dead).
func TestLeaseExpiryRequeues(t *testing.T) {
	_, a, c := pair(t, BrokerOptions{LeaseTTL: 100 * time.Millisecond})
	resp, err := a.RequestWork(0, 1)
	if err != nil || resp.Kind != WorkLease {
		t.Fatalf("initial lease = %+v, %v", resp, err)
	}
	wedged := resp.Signs // a never answers, but stays connected
	seen := map[string]bool{}
	for {
		resp, err := c.RequestWork(0, 1)
		if err != nil {
			t.Fatalf("RequestWork: %v", err)
		}
		if resp.Kind == WorkFinish {
			break
		}
		seen[resp.Signs] = true
		c.SendResult(0, resp.Signs, false)
	}
	if !seen[wedged] {
		t.Fatalf("expired lease %q never reassigned (saw %v)", wedged, seen)
	}
}

// TestDeadTransportInternFallsBack: Intern on a bus whose client link died
// coins private ids instead of hanging or panicking.
func TestDeadTransportInternFallsBack(t *testing.T) {
	b, a, _ := pair(t, BrokerOptions{})
	bus := share.NewBus(1, 8)
	a.AttachBus(0, bus)
	b.Close() // broker gone
	done := make(chan uint64, 1)
	go func() { done <- bus.Intern("cmp:orphan") }()
	select {
	case id := <-done:
		if id < 1<<40 {
			t.Fatalf("dead-transport intern returned broker-namespace id %d", id)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("intern hung on dead transport")
	}
}
