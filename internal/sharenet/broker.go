package sharenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"emmver/internal/obs"
)

// Timing defaults. Tests shrink these through BrokerOptions/ClientOptions;
// production runs leave them alone.
const (
	defaultHeartbeat = 1 * time.Second
	defaultPeerTO    = 5 * time.Second  // read deadline: a silent peer is dead
	defaultLeaseTTL  = 30 * time.Second // cube lease before reassignment
)

// cubeMaxInitialWidth mirrors the in-process splitter's cap on the seed
// split (2^w cubes over the first w comparators).
const cubeMaxInitialWidth = 10

// BrokerOptions configures Listen.
type BrokerOptions struct {
	// Workers is the fleet size: work requests are parked until this many
	// processes said hello, and the seed cube width is derived from it.
	Workers int
	// LeaseTTL bounds how long a leased cube may stay unresolved before the
	// broker hands it to someone else (0 = default 30s). Reassignment is
	// safe — results are deterministic facts, duplicates are idempotent.
	LeaseTTL  time.Duration
	Heartbeat time.Duration // keepalive period (0 = default 1s)
	PeerTO    time.Duration // silence threshold before a peer is declared dead
	Obs       *obs.Observer
}

// Broker is the fleet hub: clause fan-out, intern authority, cube leasing,
// verdict broadcast. One per distributed run.
type Broker struct {
	ln   net.Listener
	opts BrokerOptions
	obs  *obs.Observer

	sent     *obs.Counter
	received *obs.Counter
	dropped  *obs.Counter

	mu     sync.Mutex
	conns  map[int]*brokerConn
	nextID int
	joined int // hellos ever seen (never decremented: the seed width and
	// the start gate use the configured fleet size, not the survivor count)
	maxDepth int
	closed   bool

	// Intern authority: one table per bus (0 = forward, 1 = backward).
	interns [2]map[string]uint64

	// Cube state for the current depth.
	depth    int
	seeded   bool
	nComp    int
	queue    []string          // LIFO of sign strings
	leases   map[string]*lease // outstanding cubes
	parked   []*parkedReq
	proofsOn bool // a live worker 0 runs termination proofs; gates advance
	proofTop int  // highest depth worker 0 has requested work at
	done     bool
	verdict  Verdict

	wg       sync.WaitGroup
	finished chan struct{} // closed when a verdict lands or the fleet empties
	finOnce  sync.Once
}

type lease struct {
	conn    *brokerConn
	expires time.Time
}

type parkedReq struct {
	conn  *brokerConn
	depth int
	nComp int
}

// brokerConn is one accepted worker link. Control frames (work responses,
// intern replies, verdicts) go through ctrl and must be delivered; clause
// frames go through relay and are dropped when the peer is slow — the same
// lossy contract as the in-process rings.
type brokerConn struct {
	id     int
	nc     net.Conn
	ctrl   chan *frame
	relay  chan *frame
	dead   chan struct{}
	deadMu sync.Once
	proofs bool
}

func (c *brokerConn) kill() { c.deadMu.Do(func() { close(c.dead) }) }

// send queues a control frame, blocking until queued or the conn dies.
func (c *brokerConn) send(f *frame) {
	select {
	case c.ctrl <- f:
	case <-c.dead:
	}
}

// Listen starts a broker on network ("tcp" or "unix") and address.
func Listen(network, addr string, opts BrokerOptions) (*Broker, error) {
	if opts.Workers < 1 {
		return nil, errors.New("sharenet: broker needs at least one worker")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseTTL
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = defaultHeartbeat
	}
	if opts.PeerTO <= 0 {
		opts.PeerTO = defaultPeerTO
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	reg := opts.Obs.Registry()
	b := &Broker{
		ln:       ln,
		opts:     opts,
		obs:      opts.Obs,
		sent:     reg.Counter(obs.MNetSent),
		received: reg.Counter(obs.MNetReceived),
		dropped:  reg.Counter(obs.MNetDropped),
		conns:    make(map[int]*brokerConn),
		leases:   make(map[string]*lease),
		nComp:    -1,
		proofTop: -1,
		finished: make(chan struct{}),
	}
	b.interns[0] = make(map[string]uint64)
	b.interns[1] = make(map[string]uint64)
	b.wg.Add(2)
	go b.acceptLoop()
	go b.sweepLeases()
	return b, nil
}

// Addr returns the listening address (useful with ":0" TCP listeners).
func (b *Broker) Addr() net.Addr { return b.ln.Addr() }

// Done is closed when the run decided or every worker left.
func (b *Broker) Done() <-chan struct{} { return b.finished }

// Verdict returns the fleet verdict once Done is closed.
func (b *Broker) Verdict() (Verdict, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.verdict, b.done
}

// Wait blocks until the run finishes or d elapses. Listen-mode CLIs call it
// before Close so remote peers receive the finish frames.
func (b *Broker) Wait(d time.Duration) bool {
	select {
	case <-b.finished:
		return true
	case <-time.After(d):
		return false
	}
}

// Close tears the broker down: the listener stops, every link is severed.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conns := make([]*brokerConn, 0, len(b.conns))
	for _, c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	err := b.ln.Close()
	for _, c := range conns {
		c.kill()
		c.nc.Close()
	}
	b.finOnce.Do(func() { close(b.finished) })
	b.wg.Wait()
	return err
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		nc, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serve(nc)
	}
}

// sweepLeases requeues cubes whose lease deadline passed — the holder is
// slow or dying; a duplicate solve is wasted work, never wrong.
func (b *Broker) sweepLeases() {
	defer b.wg.Done()
	t := time.NewTicker(b.opts.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-b.finished:
			return
		case now := <-t.C:
			b.mu.Lock()
			requeued := false
			for signs, l := range b.leases {
				if now.After(l.expires) {
					delete(b.leases, signs)
					b.queue = append(b.queue, signs)
					requeued = true
				}
			}
			var out []outMsg
			if requeued {
				out = b.wakeLocked()
			}
			b.mu.Unlock()
			b.deliver(out)
		}
	}
}

// serve owns one worker link: handshake, writer goroutine, read loop.
func (b *Broker) serve(nc net.Conn) {
	defer b.wg.Done()
	nc.SetReadDeadline(time.Now().Add(b.opts.PeerTO))
	hello, err := readFrame(nc)
	if err != nil || hello.typ != fHello || hello.version != protocolVersion {
		nc.Close()
		return
	}
	c := &brokerConn{
		nc:     nc,
		ctrl:   make(chan *frame, 64),
		relay:  make(chan *frame, 1024),
		dead:   make(chan struct{}),
		proofs: hello.proofs,
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		nc.Close()
		return
	}
	c.id = b.nextID
	b.nextID++
	b.conns[c.id] = c
	b.joined++
	if hello.maxDepth > b.maxDepth {
		b.maxDepth = hello.maxDepth
	}
	if c.id == 0 && c.proofs {
		b.proofsOn = true
	}
	var out []outMsg
	if b.joined == b.opts.Workers {
		out = b.wakeLocked() // fleet complete: release the start gate
	}
	b.mu.Unlock()

	c.send(&frame{typ: fWelcome, workerID: c.id, workers: b.opts.Workers})
	b.deliver(out)

	b.wg.Add(1)
	go b.writeLoop(c)
	b.readLoop(c)
	b.dropConn(c)
}

// writeLoop drains the conn's queues and keeps the link warm with
// heartbeats. Control frames get strict priority: a Go select picks ready
// cases uniformly at random, so before each (and instead of any) relay
// write the ctrl queue is polled and emptied — under clause-relay backlog,
// intern replies and work responses must not share bandwidth 50/50 with
// lossy traffic, or intern round trips stretch toward the PeerTO timeout
// that severs the link.
func (b *Broker) writeLoop(c *brokerConn) {
	defer b.wg.Done()
	hb := time.NewTicker(b.opts.Heartbeat)
	defer hb.Stop()
	var buf []byte
	write := func(f *frame) bool {
		c.nc.SetWriteDeadline(time.Now().Add(b.opts.PeerTO))
		buf = appendFrame(buf[:0], f)
		if _, err := c.nc.Write(buf); err != nil {
			c.kill()
			return false
		}
		b.sent.Add(1)
		return true
	}
	// drainCtrl empties the control queue without blocking; returns false
	// only on a write failure.
	drainCtrl := func() bool {
		for {
			select {
			case f := <-c.ctrl:
				if !write(f) {
					return false
				}
			default:
				return true
			}
		}
	}
	for {
		select {
		case <-c.dead:
			return
		case f := <-c.ctrl:
			if !write(f) {
				return
			}
		case f := <-c.relay:
			if !drainCtrl() {
				return
			}
			if !write(f) {
				return
			}
		case <-hb.C:
			if !write(&frame{typ: fHeartbeat}) {
				return
			}
		}
	}
}

func (b *Broker) readLoop(c *brokerConn) {
	for {
		c.nc.SetReadDeadline(time.Now().Add(b.opts.PeerTO))
		f, err := readFrame(c.nc)
		if err != nil {
			return
		}
		b.received.Add(1)
		switch f.typ {
		case fHeartbeat:
			// deadline already refreshed
		case fGoodbye:
			return
		case fClause:
			b.relayClause(c, f)
		case fInternReq:
			c.send(&frame{typ: fInternRep, seq: f.seq, id: b.intern(f.busID, f.key)})
		case fWorkReq:
			b.handleWorkReq(c, f.depth, f.nComp)
		case fResult:
			b.handleResult(f.kind, f.depth, f.signs)
		case fVerdict:
			b.handleVerdict(Verdict{Kind: f.kind, Depth: f.depth, Side: f.side})
		default:
			return // corrupt or future frame: sever rather than guess
		}
	}
}

// relayClause fans a published clause out to every other worker,
// non-blocking: a slow peer loses the clause (counted), never stalls the
// fleet — the socket analogue of ring overrun.
func (b *Broker) relayClause(from *brokerConn, f *frame) {
	b.mu.Lock()
	peers := make([]*brokerConn, 0, len(b.conns))
	for _, c := range b.conns {
		if c != from {
			peers = append(peers, c)
		}
	}
	b.mu.Unlock()
	for _, c := range peers {
		select {
		case c.relay <- f:
		case <-c.dead:
		default:
			b.dropped.Add(1)
		}
	}
}

// intern assigns (or recalls) the fleet-wide id of a comparator key. Ids
// are dense from 0 per bus, matching the in-process table's contract.
func (b *Broker) intern(busID byte, key string) uint64 {
	if busID > 1 {
		busID = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.interns[busID]
	if id, ok := m[key]; ok {
		return id
	}
	id := uint64(len(m))
	m[key] = id
	return id
}

// outMsg pairs a frame with its destination; state transitions collect
// them under the lock and deliver after release (send blocks on a full
// control queue, and blocking under b.mu would freeze the fleet).
type outMsg struct {
	conn *brokerConn
	f    *frame
}

func (b *Broker) deliver(out []outMsg) {
	for _, m := range out {
		m.conn.send(m.f)
	}
}

// handleWorkReq is the cube protocol's hot path; see respondLocked for the
// state machine.
func (b *Broker) handleWorkReq(c *brokerConn, depth, nComp int) {
	b.mu.Lock()
	if c.id == 0 && depth > b.proofTop {
		// Worker 0 requests work at a depth only after its termination
		// proofs there came back inconclusive — this is the advance gate.
		b.proofTop = depth
	}
	out := b.respondLocked(c, depth, nComp)
	b.mu.Unlock()
	b.deliver(out)
}

// respondLocked answers one work request, parking it when nothing can be
// said yet. Callers hold b.mu.
func (b *Broker) respondLocked(c *brokerConn, depth, nComp int) []outMsg {
	if b.done {
		return []outMsg{
			{c, &frame{typ: fVerdict, kind: b.verdict.Kind, depth: b.verdict.Depth, side: b.verdict.Side}},
			{c, &frame{typ: fWorkResp, kind: WorkFinish, depth: depth}},
		}
	}
	if depth < b.depth {
		// The fleet moved on while this worker was solving; it catches up
		// one depth per request, unrolling frames as it goes.
		return []outMsg{{c, &frame{typ: fWorkResp, kind: WorkAdvance, depth: depth + 1}}}
	}
	if depth > b.depth || b.joined < b.opts.Workers {
		// Ahead of the fleet (the seeder has not reached this depth) or the
		// start gate is still closed: park until the state catches up.
		b.parked = append(b.parked, &parkedReq{conn: c, depth: depth, nComp: nComp})
		return nil
	}
	if nComp >= 0 && (b.nComp < 0 || nComp < b.nComp) {
		b.nComp = nComp
	}
	if !b.seeded {
		if b.nComp < 0 {
			// No request at this depth has reported a comparator count yet;
			// cannot derive the seed width.
			b.parked = append(b.parked, &parkedReq{conn: c, depth: depth, nComp: nComp})
			return nil
		}
		b.seedLocked()
	}
	if n := len(b.queue); n > 0 {
		signs := b.queue[n-1]
		b.queue = b.queue[:n-1]
		b.leases[signs] = &lease{conn: c, expires: time.Now().Add(b.opts.LeaseTTL)}
		return []outMsg{{c, &frame{typ: fWorkResp, kind: WorkLease, depth: b.depth, signs: signs}}}
	}
	if len(b.leases) == 0 {
		// Depth drained under us: advance (or finish) and answer from the
		// new state.
		if out := b.completeDepthLocked(); out != nil {
			return append(out, b.respondLocked(c, depth, -1)...)
		}
	}
	// Cubes are outstanding elsewhere; wait for a split or a requeue.
	b.parked = append(b.parked, &parkedReq{conn: c, depth: depth})
	return nil
}

// seedLocked fills the queue with the 2^w exhaustive seed cubes, w derived
// from the configured fleet size exactly as the in-process splitter derives
// it from the worker count.
func (b *Broker) seedLocked() {
	w := 0
	for (1<<w) < 2*b.opts.Workers && w < b.nComp && w < cubeMaxInitialWidth {
		w++
	}
	for m := 0; m < 1<<w; m++ {
		signs := make([]byte, w)
		for k := range signs {
			signs[k] = '0'
			if m&(1<<k) != 0 {
				signs[k] = '1'
			}
		}
		b.queue = append(b.queue, string(signs))
	}
	b.seeded = true
}

// completeDepthLocked fires when the current depth has no queued or leased
// cubes left (every cube UNSAT — exhaustive partition, so no CE at this
// depth). Gated on the proof worker having cleared the depth, which keeps
// verdict parity with the sequential engine: a termination proof at depth i
// must win before the fleet can conclude NO_CE by exhausting MaxDepth.
// Returns nil when the gate is closed, else the woken responses.
func (b *Broker) completeDepthLocked() []outMsg {
	if !b.seeded || len(b.queue) > 0 || len(b.leases) > 0 {
		return nil
	}
	if b.proofsOn && b.proofTop < b.depth {
		// Worker 0 has not requested work at this depth yet, so its
		// termination proofs here are still running; a proof must get the
		// chance to win before the fleet concludes past this depth.
		return nil
	}
	if b.depth >= b.maxDepth {
		return b.finishLocked(Verdict{Kind: VerdictNoCE, Depth: b.maxDepth})
	}
	b.depth++
	b.seeded = false
	b.nComp = -1
	return b.wakeLocked()
}

// wakeLocked re-answers every parked request against the current state.
func (b *Broker) wakeLocked() []outMsg {
	parked := b.parked
	b.parked = nil
	var out []outMsg
	for _, p := range parked {
		select {
		case <-p.conn.dead:
			continue
		default:
		}
		out = append(out, b.respondLocked(p.conn, p.depth, p.nComp)...)
	}
	return out
}

// finishLocked records the fleet verdict and broadcasts it; idempotent
// (first verdict wins, exactly like the in-process decide).
func (b *Broker) finishLocked(v Verdict) []outMsg {
	if b.done {
		return nil
	}
	b.done = true
	b.verdict = v
	var out []outMsg
	for _, c := range b.conns {
		out = append(out,
			outMsg{c, &frame{typ: fVerdict, kind: v.Kind, depth: v.Depth, side: v.Side}},
			outMsg{c, &frame{typ: fWorkResp, kind: WorkFinish, depth: b.depth}})
	}
	b.parked = nil
	b.finOnce.Do(func() { close(b.finished) })
	return out
}

// handleResult retires (or splits) a cube. Results are deterministic facts
// about the formula, so duplicates — a lease that expired and was solved
// twice — are ignored harmlessly; an UNSAT additionally prunes any queued
// or leased descendants a concurrent split may have produced. An UNSAT for
// a cube that is itself no longer tracked still prunes: when an expired
// lease was reassigned and the original holder's late split re-enqueued
// the children, the new holder's refutation of the parent subsumes that
// whole subtree (sub-cubes of an UNSAT cube are UNSAT), and dropping it as
// stale would leave the fleet re-solving pruned work.
func (b *Broker) handleResult(kind byte, depth int, signs string) {
	b.mu.Lock()
	if b.done || depth != b.depth {
		b.mu.Unlock()
		return
	}
	_, leased := b.leases[signs]
	queued := -1
	for i, q := range b.queue {
		if q == signs {
			queued = i
			break
		}
	}
	if !leased && queued < 0 && kind != ResultUnsat {
		b.mu.Unlock()
		return // stale: already resolved (or pruned) through another path
	}
	delete(b.leases, signs)
	if queued >= 0 {
		b.queue = append(b.queue[:queued], b.queue[queued+1:]...)
	}
	switch kind {
	case ResultUnsat:
		b.pruneDescendantsLocked(signs)
	case ResultSplit:
		b.queue = append(b.queue, signs+"0", signs+"1")
	default:
		b.mu.Unlock()
		return
	}
	var out []outMsg
	if o := b.completeDepthLocked(); o != nil {
		out = o
	} else if kind == ResultSplit {
		out = b.wakeLocked()
	}
	b.mu.Unlock()
	b.deliver(out)
}

// pruneDescendantsLocked removes every cube refined from signs: the parent
// being UNSAT subsumes all of them.
func (b *Broker) pruneDescendantsLocked(signs string) {
	kept := b.queue[:0]
	for _, q := range b.queue {
		if len(q) > len(signs) && q[:len(signs)] == signs {
			continue
		}
		kept = append(kept, q)
	}
	b.queue = kept
	for q := range b.leases {
		if len(q) > len(signs) && q[:len(signs)] == signs {
			delete(b.leases, q)
		}
	}
}

func (b *Broker) handleVerdict(v Verdict) {
	b.mu.Lock()
	out := b.finishLocked(v)
	b.mu.Unlock()
	b.deliver(out)
}

// dropConn severs a worker: its leases are requeued immediately (no TTL
// wait), and if it was the proof worker the advance gate opens — the
// survivors can still conclude soundly, they just lose termination proofs.
// A death before the fleet ever assembled instead aborts the run: the
// start gate (joined < Workers) would otherwise hold the survivors' parked
// requests forever, since a dead worker is never replaced.
func (b *Broker) dropConn(c *brokerConn) {
	c.kill()
	c.nc.Close()
	b.mu.Lock()
	delete(b.conns, c.id)
	for signs, l := range b.leases {
		if l.conn == c {
			delete(b.leases, signs)
			b.queue = append(b.queue, signs)
		}
	}
	kept := b.parked[:0]
	for _, p := range b.parked {
		if p.conn != c {
			kept = append(kept, p)
		}
	}
	b.parked = kept
	if c.id == 0 {
		b.proofsOn = false
	}
	var out []outMsg
	if !b.done && b.joined < b.opts.Workers {
		out = b.finishLocked(Verdict{Kind: VerdictTimeout, Depth: 0})
	} else if len(b.conns) > 0 {
		out = b.wakeLocked()
	} else if !b.done {
		// Whole fleet gone without a verdict: unblock Wait.
		b.finOnce.Do(func() { close(b.finished) })
	}
	b.mu.Unlock()
	b.deliver(out)
}

// readFrame reads one length-prefixed frame off r (byte-at-a-time for the
// varint prefix, then one ReadFull for the payload).
func readFrame(r io.Reader) (*frame, error) {
	var hdr [binary.MaxVarintLen64]byte
	n := 0
	for {
		if n == len(hdr) {
			return nil, errors.New("sharenet: length prefix too long")
		}
		if _, err := io.ReadFull(r, hdr[n:n+1]); err != nil {
			return nil, err
		}
		n++
		if hdr[n-1] < 0x80 {
			break
		}
	}
	size, used := binary.Uvarint(hdr[:n])
	if used <= 0 {
		return nil, errFrameTruncated
	}
	if size > maxFramePayload {
		return nil, fmt.Errorf("sharenet: frame of %d bytes rejected (max %d)", size, maxFramePayload)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return parseFrame(payload)
}
