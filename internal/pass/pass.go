package pass

import (
	"fmt"
	"strings"

	"emmver/internal/aig"
	"emmver/internal/obs"
)

// SpecDefault is the pipeline every engine runs when no spec is given:
// cone-of-influence first (cheap, big wins), constant sweep (unlocks more
// cone), port pruning (§4.3's structural criterion), and a final dedup
// rebuild.
const SpecDefault = "coi,sweep,ports,dedup"

// SpecNone disables the pipeline: Compile returns the source netlist
// untouched with an identity mapping.
const SpecNone = "none"

// Options configures a Compile run.
type Options struct {
	// Spec is a comma-separated pass list ("coi,sweep,ports,dedup"),
	// empty for SpecDefault, or "none"/"off" to disable the pipeline.
	Spec string
	// Obs receives one span per pass (pass.<name>) with before/after
	// node/latch/memory-port counters, plus pass.* registry totals. Nil
	// costs nothing.
	Obs *obs.Observer
}

// Counts is a size snapshot of a netlist, taken before and after each
// pass.
type Counts struct {
	Nodes    int
	Ands     int
	Inputs   int
	Latches  int
	Mems     int
	MemPorts int // read + write ports across all memories
}

// CountsOf snapshots n's sizes.
func CountsOf(n *aig.Netlist) Counts {
	c := Counts{
		Nodes:   n.NumNodes(),
		Ands:    n.NumAnds(),
		Inputs:  len(n.Inputs),
		Latches: len(n.Latches),
		Mems:    len(n.Memories),
	}
	for _, m := range n.Memories {
		c.MemPorts += len(m.Reads) + len(m.Writes)
	}
	return c
}

// Delta records one pass's effect.
type Delta struct {
	Pass          string
	Before, After Counts
}

func (d Delta) String() string {
	return fmt.Sprintf("%s: %d→%d nodes, %d→%d latches, %d→%d mem ports",
		d.Pass, d.Before.Nodes, d.After.Nodes,
		d.Before.Latches, d.After.Latches,
		d.Before.MemPorts, d.After.MemPorts)
}

// Compiled is the result of running the pipeline: the reduced netlist, the
// property indices into it (renumbered from the requested source indices),
// and the composed Mapping back to the source netlist.
type Compiled struct {
	N       *aig.Netlist
	Props   []int
	Map     *Mapping
	Applied []string
	Deltas  []Delta
}

// Summary renders the whole-pipeline reduction in one line, or "" when
// the pipeline ran no passes or removed nothing.
func (c *Compiled) Summary() string {
	if len(c.Deltas) == 0 {
		return ""
	}
	b, a := c.Deltas[0].Before, c.Deltas[len(c.Deltas)-1].After
	if b == a {
		return ""
	}
	return fmt.Sprintf("passes [%s]: %d→%d nodes, %d→%d latches, %d→%d mems, %d→%d mem ports",
		strings.Join(c.Applied, ","),
		b.Nodes, a.Nodes, b.Latches, a.Latches, b.Mems, a.Mems, b.MemPorts, a.MemPorts)
}

type namedPass struct {
	name string
	fn   passFunc
}

var registry = []namedPass{
	{"coi", coiPass},
	{"sweep", sweepPass},
	{"ports", portsPass},
	{"dedup", dedupPass},
}

// Names lists the available pass names in default-pipeline order.
func Names() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.name
	}
	return out
}

// parseSpec resolves a spec string to a pass list. "" means SpecDefault;
// "none" or "off" means no passes; otherwise a comma-separated subset of
// Names(), run in the given order (repeats allowed).
func parseSpec(spec string) ([]namedPass, error) {
	spec = strings.TrimSpace(spec)
	switch spec {
	case "":
		spec = SpecDefault
	case SpecNone, "off":
		return nil, nil
	}
	var out []namedPass
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, p := range registry {
			if p.name == name {
				out = append(out, p)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("pass: unknown pass %q (available: %s)", name, strings.Join(Names(), ","))
		}
	}
	return out, nil
}

// ValidSpec reports whether spec parses; CLIs use it to reject bad -passes
// values before any engine runs.
func ValidSpec(spec string) error {
	_, err := parseSpec(spec)
	return err
}

// Compile runs the pipeline selected by opt.Spec over n for the given
// property indices and returns the compiled netlist plus the mapping back
// to n. With the pipeline disabled (or nothing to do) the returned netlist
// is n itself and the mapping is the identity — but Props is always the
// compiled-coordinate property list callers must use from here on.
func Compile(n *aig.Netlist, props []int, opt Options) (*Compiled, error) {
	passes, err := parseSpec(opt.Spec)
	if err != nil {
		return nil, err
	}
	for _, pi := range props {
		if pi < 0 || pi >= len(n.Props) {
			return nil, fmt.Errorf("pass: property index %d out of range (netlist has %d)", pi, len(n.Props))
		}
	}
	res := &Compiled{N: n, Props: append([]int(nil), props...), Map: Identity()}
	if len(passes) == 0 {
		return res, nil
	}

	before := CountsOf(n)
	sp := opt.Obs.Span("pass.compile",
		obs.F("spec", specString(passes)),
		obs.F("props", len(props)),
		obs.F("nodes", before.Nodes),
		obs.F("latches", before.Latches),
		obs.F("mem_ports", before.MemPorts))
	for _, p := range passes {
		pb := CountsOf(res.N)
		psp := opt.Obs.Span("pass."+p.name,
			obs.F("nodes", pb.Nodes),
			obs.F("latches", pb.Latches),
			obs.F("mems", pb.Mems),
			obs.F("mem_ports", pb.MemPorts))
		nn, mp, nprops := p.fn(res.N, res.Props)
		pa := CountsOf(nn)
		psp.End(
			obs.F("nodes", pa.Nodes),
			obs.F("latches", pa.Latches),
			obs.F("mems", pa.Mems),
			obs.F("mem_ports", pa.MemPorts))
		res.N, res.Props = nn, nprops
		res.Map = res.Map.Then(mp)
		res.Applied = append(res.Applied, p.name)
		res.Deltas = append(res.Deltas, Delta{Pass: p.name, Before: pb, After: pa})
	}
	after := CountsOf(res.N)
	sp.End(
		obs.F("nodes", after.Nodes),
		obs.F("latches", after.Latches),
		obs.F("mem_ports", after.MemPorts))
	opt.Obs.Counter(obs.MPassRuns).Add(1)
	opt.Obs.Counter(obs.MPassNodesRemoved).Add(int64(max0(before.Nodes - after.Nodes)))
	opt.Obs.Counter(obs.MPassLatchesRemoved).Add(int64(max0(before.Latches - after.Latches)))
	opt.Obs.Counter(obs.MPassMemsRemoved).Add(int64(max0(before.Mems - after.Mems)))
	opt.Obs.Counter(obs.MPassMemPortsRemoved).Add(int64(max0(before.MemPorts - after.MemPorts)))
	return res, nil
}

func specString(passes []namedPass) string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.name
	}
	return strings.Join(names, ",")
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}
