package pass

import "emmver/internal/aig"

// A passFunc reduces a netlist. props are indices into n.Props; the
// returned props index the returned netlist (rebuilds emit only the
// selected properties, renumbered from 0). A pass that finds nothing to do
// returns its inputs unchanged with an identity mapping.
type passFunc func(n *aig.Netlist, props []int) (*aig.Netlist, *Mapping, []int)

func identityProps(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// coiPass is the classic cone-of-influence reduction: drop every input,
// latch, gate, and memory module the selected properties (plus all
// constraints) cannot depend on. Memory-granular — a reached memory keeps
// all its ports; portsPass refines that.
func coiPass(n *aig.Netlist, props []int) (*aig.Netlist, *Mapping, []int) {
	out, rm := aig.ExtractCone(n, props)
	return out, fromRebuild(rm), identityProps(len(props))
}

// sweepPass finds latches that provably hold their reset value forever
// (Next re-evaluates to the init value assuming the latch itself and every
// previously proven latch are at their init values — sound by induction),
// substitutes them with constants, and then sweeps everything that is
// dangling after the substitution: gates, inputs, latches, and memories
// outside the substituted cone of the properties and constraints.
func sweepPass(n *aig.Netlist, props []int) (*aig.Netlist, *Mapping, []int) {
	sub := findConstLatches(n)
	needNode, needMem := substCone(n, props, sub)
	if len(sub) == 0 && nothingDropped(n, props, needNode, needMem) {
		return n, Identity(), props
	}
	out, rm := aig.Rebuild(n, aig.RebuildSpec{
		KeepInput:  func(id aig.NodeID) bool { return needNode[id] },
		KeepLatch:  func(i int) bool { return needNode[n.Latches[i].Node] },
		LatchConst: sub,
		KeepMem:    func(mi int) bool { return needMem[mi] },
		Props:      props,
	})
	return out, fromRebuild(rm), identityProps(len(props))
}

// findConstLatches returns an inductive constant substitution: latch node
// -> constant literal, for latches whose next-state function evaluates to
// their (binary) reset value under the substitution found so far plus the
// latch's own value at reset.
func findConstLatches(n *aig.Netlist) map[aig.NodeID]aig.Lit {
	sub := make(map[aig.NodeID]aig.Lit)
	for changed := true; changed; {
		changed = false
		for _, l := range n.Latches {
			if _, done := sub[l.Node]; done || l.Init == aig.InitX {
				continue
			}
			want := l.Init == aig.Init1
			if v, ok := evalConst(n, l.Next, sub, l.Node, want); ok && v == want {
				sub[l.Node] = aig.False.XorInv(want)
				changed = true
			}
		}
	}
	return sub
}

// tv is a three-valued truth value for partial evaluation.
type tv int8

const (
	unknown tv = iota
	falseV
	trueV
)

// litVal applies a literal's complement bit to a node's truth value.
func litVal(v tv, inv bool) tv {
	if !inv || v == unknown {
		return v
	}
	return falseV + trueV - v
}

// evalConst partially evaluates lit under the constant substitution, with
// the latch `self` assumed to hold selfVal. Returns (value, known).
func evalConst(n *aig.Netlist, lit aig.Lit, sub map[aig.NodeID]aig.Lit, self aig.NodeID, selfVal bool) (bool, bool) {
	memo := make(map[aig.NodeID]tv)
	var nodeVal func(id aig.NodeID) tv
	nodeVal = func(id aig.NodeID) tv {
		if v, ok := memo[id]; ok {
			return v
		}
		var v tv
		switch {
		case id == 0:
			v = falseV
		case id == self:
			v = falseV
			if selfVal {
				v = trueV
			}
		default:
			if c, ok := sub[id]; ok {
				v = falseV
				if c == aig.True {
					v = trueV
				}
				break
			}
			node := n.NodeAt(id)
			if node.Kind != aig.KAnd {
				v = unknown
				break
			}
			a := litVal(nodeVal(node.F0.Node()), node.F0.Inverted())
			if a == falseV {
				v = falseV
				break
			}
			b := litVal(nodeVal(node.F1.Node()), node.F1.Inverted())
			switch {
			case b == falseV:
				v = falseV
			case a == trueV && b == trueV:
				v = trueV
			default:
				v = unknown
			}
		}
		memo[id] = v
		return v
	}
	v := litVal(nodeVal(lit.Node()), lit.Inverted())
	switch v {
	case falseV:
		return false, true
	case trueV:
		return true, true
	}
	return false, false
}

// substCone is the cone-of-influence fixpoint with a constant substitution
// applied: substituted latches contribute nothing, so logic that only fed
// them becomes dangling and is swept. Memory-granular, like ExtractCone.
func substCone(n *aig.Netlist, props []int, sub map[aig.NodeID]aig.Lit) (needNode []bool, needMem []bool) {
	needNode = make([]bool, n.NumNodes())
	needMem = make([]bool, len(n.Memories))

	memOfRead := make(map[aig.NodeID]int)
	for mi, m := range n.Memories {
		for _, rp := range m.Reads {
			for _, dn := range rp.Data {
				memOfRead[dn] = mi
			}
		}
	}

	var stack []aig.NodeID
	push := func(l aig.Lit) {
		id := l.Node()
		if _, constant := sub[id]; constant {
			return
		}
		if !needNode[id] {
			needNode[id] = true
			stack = append(stack, id)
		}
	}
	for _, pi := range props {
		push(n.Props[pi].OK)
	}
	for _, c := range n.Constraints {
		push(c)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := n.NodeAt(id)
		switch node.Kind {
		case aig.KAnd:
			push(node.F0)
			push(node.F1)
		case aig.KLatch:
			push(n.LatchOf(id).Next)
		case aig.KMemRead:
			mi := memOfRead[id]
			if needMem[mi] {
				continue
			}
			needMem[mi] = true
			m := n.Memories[mi]
			for _, rp := range m.Reads {
				for _, a := range rp.Addr {
					push(a)
				}
				push(rp.En)
				for _, dn := range rp.Data {
					needNode[dn] = true
				}
			}
			for _, wp := range m.Writes {
				for _, a := range wp.Addr {
					push(a)
				}
				for _, d := range wp.Data {
					push(d)
				}
				push(wp.En)
			}
		}
	}
	return needNode, needMem
}

// portsPass prunes at port granularity, the structural form of §4.3's
// criterion: starting from the selected properties and all constraints,
// only the read ports actually reached keep their address/enable cones; a
// reached memory pulls in its write ports' nets except ports whose enable
// is constant false (which can never forward data); memories with no live
// read port are dropped whole, along with every latch and input that was
// only feeding pruned ports.
func portsPass(n *aig.Netlist, props []int) (*aig.Netlist, *Mapping, []int) {
	needNode := make([]bool, n.NumNodes())
	readLive := make([][]bool, len(n.Memories))
	memSeen := make([]bool, len(n.Memories))
	for mi, m := range n.Memories {
		readLive[mi] = make([]bool, len(m.Reads))
	}

	memOfRead := make(map[aig.NodeID][2]int)
	for mi, m := range n.Memories {
		for ri, rp := range m.Reads {
			for _, dn := range rp.Data {
				memOfRead[dn] = [2]int{mi, ri}
			}
		}
	}

	var stack []aig.NodeID
	push := func(l aig.Lit) {
		id := l.Node()
		if !needNode[id] {
			needNode[id] = true
			stack = append(stack, id)
		}
	}
	for _, pi := range props {
		push(n.Props[pi].OK)
	}
	for _, c := range n.Constraints {
		push(c)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := n.NodeAt(id)
		switch node.Kind {
		case aig.KAnd:
			push(node.F0)
			push(node.F1)
		case aig.KLatch:
			push(n.LatchOf(id).Next)
		case aig.KMemRead:
			mr := memOfRead[id]
			mi, ri := mr[0], mr[1]
			m := n.Memories[mi]
			if !readLive[mi][ri] {
				readLive[mi][ri] = true
				rp := m.Reads[ri]
				for _, a := range rp.Addr {
					push(a)
				}
				push(rp.En)
			}
			if !memSeen[mi] {
				memSeen[mi] = true
				for _, wp := range m.Writes {
					if wp.En == aig.False {
						continue
					}
					for _, a := range wp.Addr {
						push(a)
					}
					for _, d := range wp.Data {
						push(d)
					}
					push(wp.En)
				}
			}
		}
	}

	keepMem := make([]bool, len(n.Memories))
	dropped := false
	for mi := range n.Memories {
		for _, live := range readLive[mi] {
			keepMem[mi] = keepMem[mi] || live
		}
		if !keepMem[mi] {
			dropped = true
			continue
		}
		for _, live := range readLive[mi] {
			dropped = dropped || !live
		}
		for _, wp := range n.Memories[mi].Writes {
			dropped = dropped || wp.En == aig.False
		}
	}
	if !dropped && nothingDropped(n, props, needNode, keepMem) {
		return n, Identity(), props
	}

	out, rm := aig.Rebuild(n, aig.RebuildSpec{
		KeepInput: func(id aig.NodeID) bool { return needNode[id] },
		KeepLatch: func(i int) bool { return needNode[n.Latches[i].Node] },
		KeepMem:   func(mi int) bool { return keepMem[mi] },
		KeepRead:  func(mi, ri int) bool { return readLive[mi][ri] },
		KeepWrite: func(mi, wi int) bool { return n.Memories[mi].Writes[wi].En != aig.False },
		Props:     props,
	})
	return out, fromRebuild(rm), identityProps(len(props))
}

// dedupPass rebuilds the netlist through And()'s structural hashing and
// constant folding, merging duplicate gates the frontends may have
// introduced. It keeps every input, latch, memory, and port.
func dedupPass(n *aig.Netlist, props []int) (*aig.Netlist, *Mapping, []int) {
	out, rm := aig.Rebuild(n, aig.RebuildSpec{Props: props})
	return out, fromRebuild(rm), identityProps(len(props))
}

// nothingDropped reports whether the need sets keep every input, latch,
// and memory, and the props selection is the full property list in order.
func nothingDropped(n *aig.Netlist, props []int, needNode []bool, needMem []bool) bool {
	if len(props) != len(n.Props) {
		return false
	}
	for i, pi := range props {
		if pi != i {
			return false
		}
	}
	for _, id := range n.Inputs {
		if !needNode[id] {
			return false
		}
	}
	for _, l := range n.Latches {
		if !needNode[l.Node] {
			return false
		}
	}
	for _, need := range needMem {
		if !need {
			return false
		}
	}
	return true
}
