// Package pass is the static compile pipeline that runs in front of every
// verification engine: a sequence of netlist-to-netlist reductions over
// aig.Netlist — cone-of-influence extraction, inductive constant sweeping,
// memory-port pruning (§4.3's structural criterion), and structural dedup —
// each of which returns a composable Mapping so counter-example witnesses
// and PBA latch-reason sets found on the compiled netlist translate back to
// the source netlist's node ids, latch indices, and port indices.
package pass

import "emmver/internal/aig"

// Mapping relates a compiled netlist to the source netlist it was derived
// from, in both directions. A Mapping from Identity() (or a nil *Mapping)
// is the identity relation; Then composes two mappings across a pipeline.
type Mapping struct {
	identity bool

	// source node id -> compiled node id, and the inverse.
	inTo, inFrom map[aig.NodeID]aig.NodeID
	laTo, laFrom map[aig.NodeID]aig.NodeID

	// laIdxFrom[ci] = source latch index of compiled latch ci;
	// laIdxTo[si] = compiled latch index of source latch si, or -1.
	laIdxFrom, laIdxTo []int

	// memFrom[cmi] = source memory index; memTo[smi] = compiled or -1.
	memFrom, memTo []int

	// readFrom[cmi][cri] = source read-port index (within the source
	// memory memFrom[cmi]); readTo[smi][sri] = compiled or -1. Write
	// ports are analogous.
	readFrom, readTo   [][]int
	writeFrom, writeTo [][]int
}

// Identity returns the identity mapping (compiled netlist == source).
func Identity() *Mapping { return &Mapping{identity: true} }

// IsIdentity reports whether the mapping is the identity relation. A nil
// receiver counts as identity.
func (m *Mapping) IsIdentity() bool { return m == nil || m.identity }

// fromRebuild converts a single aig.Rebuild step's RebuildMap into a
// Mapping.
func fromRebuild(rm *aig.RebuildMap) *Mapping {
	m := &Mapping{
		inTo:      rm.Input,
		laTo:      rm.Latch,
		inFrom:    make(map[aig.NodeID]aig.NodeID, len(rm.Input)),
		laFrom:    make(map[aig.NodeID]aig.NodeID, len(rm.Latch)),
		laIdxFrom: rm.LatchIndex,
		laIdxTo:   rm.LatchOf,
		memFrom:   rm.Mem,
		memTo:     rm.MemOf,
		readFrom:  rm.Read,
		readTo:    rm.ReadOf,
		writeFrom: rm.Write,
		writeTo:   rm.WriteOf,
	}
	for s, c := range rm.Input {
		m.inFrom[c] = s
	}
	for s, c := range rm.Latch {
		m.laFrom[c] = s
	}
	return m
}

// Then composes m (source -> mid) with next (mid -> compiled) into a
// single source -> compiled mapping.
func (m *Mapping) Then(next *Mapping) *Mapping {
	if m.IsIdentity() {
		return next
	}
	if next.IsIdentity() {
		return m
	}
	out := &Mapping{
		inTo:   make(map[aig.NodeID]aig.NodeID),
		inFrom: make(map[aig.NodeID]aig.NodeID),
		laTo:   make(map[aig.NodeID]aig.NodeID),
		laFrom: make(map[aig.NodeID]aig.NodeID),
	}
	for s, mid := range m.inTo {
		if c, ok := next.inTo[mid]; ok {
			out.inTo[s] = c
			out.inFrom[c] = s
		}
	}
	for s, mid := range m.laTo {
		if c, ok := next.laTo[mid]; ok {
			out.laTo[s] = c
			out.laFrom[c] = s
		}
	}
	out.laIdxFrom = make([]int, len(next.laIdxFrom))
	for ci, midI := range next.laIdxFrom {
		out.laIdxFrom[ci] = m.laIdxFrom[midI]
	}
	out.laIdxTo = make([]int, len(m.laIdxTo))
	for si, midI := range m.laIdxTo {
		out.laIdxTo[si] = -1
		if midI >= 0 {
			out.laIdxTo[si] = next.laIdxTo[midI]
		}
	}
	out.memFrom = make([]int, len(next.memFrom))
	out.readFrom = make([][]int, len(next.memFrom))
	out.writeFrom = make([][]int, len(next.memFrom))
	for cmi, midMi := range next.memFrom {
		out.memFrom[cmi] = m.memFrom[midMi]
		out.readFrom[cmi] = composePorts(m.readFrom[midMi], next.readFrom[cmi])
		out.writeFrom[cmi] = composePorts(m.writeFrom[midMi], next.writeFrom[cmi])
	}
	out.memTo = make([]int, len(m.memTo))
	out.readTo = make([][]int, len(m.memTo))
	out.writeTo = make([][]int, len(m.memTo))
	for smi, midMi := range m.memTo {
		out.memTo[smi] = -1
		out.readTo[smi] = constSlice(len(m.readTo[smi]), -1)
		out.writeTo[smi] = constSlice(len(m.writeTo[smi]), -1)
		if midMi < 0 {
			continue
		}
		cmi := next.memTo[midMi]
		out.memTo[smi] = cmi
		if cmi < 0 {
			continue
		}
		for sri, midRi := range m.readTo[smi] {
			if midRi >= 0 {
				out.readTo[smi][sri] = next.readTo[midMi][midRi]
			}
		}
		for swi, midWi := range m.writeTo[smi] {
			if midWi >= 0 {
				out.writeTo[smi][swi] = next.writeTo[midMi][midWi]
			}
		}
	}
	return out
}

// composePorts maps compiled-port indices through mid-port indices to
// source-port indices: from1 is mid->source, from2 is compiled->mid.
func composePorts(from1, from2 []int) []int {
	out := make([]int, len(from2))
	for ci, midI := range from2 {
		out[ci] = from1[midI]
	}
	return out
}

func constSlice(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// SourceInput translates a compiled primary-input node id back to the
// source netlist's node id.
func (m *Mapping) SourceInput(id aig.NodeID) (aig.NodeID, bool) {
	if m.IsIdentity() {
		return id, true
	}
	s, ok := m.inFrom[id]
	return s, ok
}

// SourceLatch translates a compiled latch node id back to the source
// netlist's node id.
func (m *Mapping) SourceLatch(id aig.NodeID) (aig.NodeID, bool) {
	if m.IsIdentity() {
		return id, true
	}
	s, ok := m.laFrom[id]
	return s, ok
}

// SourceLatchIndex translates a compiled latch index to the source latch
// index.
func (m *Mapping) SourceLatchIndex(i int) int {
	if m.IsIdentity() {
		return i
	}
	return m.laIdxFrom[i]
}

// SourceMem translates a compiled memory index to the source memory index.
func (m *Mapping) SourceMem(mi int) int {
	if m.IsIdentity() {
		return mi
	}
	return m.memFrom[mi]
}

// SourceRead translates (compiled memory, compiled read port) to the
// source read-port index within SourceMem(mi).
func (m *Mapping) SourceRead(mi, ri int) int {
	if m.IsIdentity() {
		return ri
	}
	return m.readFrom[mi][ri]
}

// SourceWrite translates (compiled memory, compiled write port) to the
// source write-port index within SourceMem(mi).
func (m *Mapping) SourceWrite(mi, wi int) int {
	if m.IsIdentity() {
		return wi
	}
	return m.writeFrom[mi][wi]
}

// CompiledLatch translates a source latch node id to the compiled node id.
// ok is false when the pipeline removed (or constant-folded) the latch.
func (m *Mapping) CompiledLatch(id aig.NodeID) (aig.NodeID, bool) {
	if m.IsIdentity() {
		return id, true
	}
	c, ok := m.laTo[id]
	return c, ok
}

// CompiledMem translates a source memory index to the compiled index, or
// -1 when the memory was pruned.
func (m *Mapping) CompiledMem(mi int) int {
	if m.IsIdentity() {
		return mi
	}
	if mi >= len(m.memTo) {
		return -1
	}
	return m.memTo[mi]
}

// CompiledRead translates (source memory, source read port) to the
// compiled read-port index, or -1 when pruned.
func (m *Mapping) CompiledRead(mi, ri int) int {
	if m.IsIdentity() {
		return ri
	}
	if mi >= len(m.readTo) || ri >= len(m.readTo[mi]) {
		return -1
	}
	return m.readTo[mi][ri]
}

// CompiledWrite translates (source memory, source write port) to the
// compiled write-port index, or -1 when pruned.
func (m *Mapping) CompiledWrite(mi, wi int) int {
	if m.IsIdentity() {
		return wi
	}
	if mi >= len(m.writeTo) || wi >= len(m.writeTo[mi]) {
		return -1
	}
	return m.writeTo[mi][wi]
}
