package pass

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/obs"
	"emmver/internal/rtl"
)

// fixture: a design with a relevant counter, a junk free-running counter,
// an inductively constant flag gating a second memory's write, and two
// memories — one read by the property, one completely dead.
func fixture() *rtl.Module {
	m := rtl.NewModule("fix")
	junk := m.Register("junk", 6, 0)
	junk.SetNext(m.Inc(junk.Q))

	flag := m.BitReg("flag", false)
	flag.SetNext(rtl.Vec{flag.Bit()}) // holds 0 forever: inductively constant

	memA := m.Memory("memA", 3, 4, aig.MemArbitrary)
	addr := m.Input("a", 3)
	memA.Write(addr, m.Input("wd", 4), m.InputBit("we"))
	rd := memA.Read(addr, m.InputBit("re"))

	memB := m.Memory("memB", 3, 4, aig.MemArbitrary)
	memB.Write(m.Input("ba", 3), m.Input("bd", 4), flag.Bit()) // gated by constant-0 flag
	memB.Read(m.Input("bra", 3), m.InputBit("bre"))

	c := m.Register("cnt", 3, 0)
	c.SetNext(m.Inc(c.Q))
	m.Done(junk, flag, c)
	m.AssertAlways("p", m.N.And(m.EqConst(c.Q, 7), m.EqConst(rd, 15)).Not())
	return m
}

func TestSpecValidation(t *testing.T) {
	for _, good := range []string{"", "none", "off", "coi", "coi,sweep,ports,dedup", " coi , dedup "} {
		if err := ValidSpec(good); err != nil {
			t.Errorf("ValidSpec(%q) = %v, want nil", good, err)
		}
	}
	for _, bad := range []string{"nope", "coi,bogus"} {
		if err := ValidSpec(bad); err == nil {
			t.Errorf("ValidSpec(%q) = nil, want error", bad)
		}
	}
}

func TestCompileDisabledIsIdentity(t *testing.T) {
	m := fixture()
	c, err := Compile(m.N, []int{0}, Options{Spec: SpecNone})
	if err != nil {
		t.Fatal(err)
	}
	if c.N != m.N {
		t.Fatalf("disabled pipeline must return the source netlist")
	}
	if !c.Map.IsIdentity() {
		t.Fatalf("disabled pipeline must return the identity mapping")
	}
	if len(c.Props) != 1 || c.Props[0] != 0 {
		t.Fatalf("props %v", c.Props)
	}
}

func TestCompileBadSpecOrProp(t *testing.T) {
	m := fixture()
	if _, err := Compile(m.N, []int{0}, Options{Spec: "bogus"}); err == nil {
		t.Fatalf("bad spec must error")
	}
	if _, err := Compile(m.N, []int{99}, Options{}); err == nil {
		t.Fatalf("out-of-range property must error")
	}
}

func TestCoiDropsJunkAndDeadMemory(t *testing.T) {
	m := fixture()
	c, err := Compile(m.N, []int{0}, Options{Spec: "coi"})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range c.N.Latches {
		if l.Name[:4] == "junk" {
			t.Errorf("junk latch %q survived COI", l.Name)
		}
	}
	if len(c.N.Memories) != 1 || c.N.Memories[0].Name != "memA" {
		t.Fatalf("COI must keep exactly memA, got %d memories", len(c.N.Memories))
	}
	if c.Map.SourceMem(0) != 0 {
		t.Fatalf("memA source index = %d, want 0", c.Map.SourceMem(0))
	}
}

func TestSweepFoldsConstantFlag(t *testing.T) {
	m := fixture()
	c, err := Compile(m.N, []int{0}, Options{Spec: "sweep"})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range c.N.Latches {
		if l.Name == "flag" {
			t.Errorf("inductively constant flag survived sweep")
		}
	}
}

func TestPortsDropsDisabledWriteAndDeadReads(t *testing.T) {
	m := fixture()
	// sweep first so memB's write enable becomes constant false; ports
	// then drops that write port, and memB entirely (its read is outside
	// the property cone).
	c, err := Compile(m.N, []int{0}, Options{Spec: "sweep,ports"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.N.Memories) != 1 || c.N.Memories[0].Name != "memA" {
		t.Fatalf("ports must keep exactly memA, got %d memories", len(c.N.Memories))
	}
	mem := c.N.Memories[0]
	if len(mem.Reads) != 1 || len(mem.Writes) != 1 {
		t.Fatalf("memA ports: %d reads %d writes, want 1/1", len(mem.Reads), len(mem.Writes))
	}
	if c.Map.SourceRead(0, 0) != 0 || c.Map.SourceWrite(0, 0) != 0 {
		t.Fatalf("port back-map wrong: read->%d write->%d", c.Map.SourceRead(0, 0), c.Map.SourceWrite(0, 0))
	}
}

func TestMappingComposesAcrossPipeline(t *testing.T) {
	m := fixture()
	c, err := Compile(m.N, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Applied) != 4 || len(c.Deltas) != 4 {
		t.Fatalf("expected 4 applied passes, got %v", c.Applied)
	}
	// Every compiled latch must round-trip to a source latch with the
	// same name.
	for ci, l := range c.N.Latches {
		si := c.Map.SourceLatchIndex(ci)
		if si < 0 || si >= len(m.N.Latches) {
			t.Fatalf("latch %d maps to out-of-range source index %d", ci, si)
		}
		if m.N.Latches[si].Name != l.Name {
			t.Errorf("latch %d (%q) maps to source %d (%q)", ci, l.Name, si, m.N.Latches[si].Name)
		}
		cid, ok := c.Map.CompiledLatch(m.N.Latches[si].Node)
		if !ok || cid != l.Node {
			t.Errorf("CompiledLatch round-trip failed for %q", l.Name)
		}
	}
	// Dropped latches must report no compiled counterpart.
	for si, l := range m.N.Latches {
		if l.Name[:4] != "junk" && l.Name != "flag" {
			continue
		}
		if _, ok := c.Map.CompiledLatch(l.Node); ok {
			t.Errorf("dropped latch %q still has a compiled counterpart", l.Name)
		}
		_ = si
	}
	if c.Map.CompiledMem(1) != -1 {
		t.Errorf("dead memB must map to -1, got %d", c.Map.CompiledMem(1))
	}
}

func TestCompilePublishesCounters(t *testing.T) {
	m := fixture()
	reg := obs.NewRegistry()
	ob := obs.New(reg, nil)
	if _, err := Compile(m.N, []int{0}, Options{Obs: ob}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap[obs.MPassRuns] != 1 {
		t.Errorf("pass.runs = %d, want 1", snap[obs.MPassRuns])
	}
	if snap[obs.MPassLatchesRemoved] == 0 {
		t.Errorf("pass.latches_removed = 0, want > 0 (junk + flag dropped)")
	}
	if snap[obs.MPassMemPortsRemoved] == 0 {
		t.Errorf("pass.mem_ports_removed = 0, want > 0 (memB ports dropped)")
	}
}
