// Package cliobs wires the observability flags shared by the command-line
// tools — -trace (JSONL span journal), -progress (live heartbeat line),
// -pprof (metrics + profiling endpoint) — into an obs.Observer ready to
// hang on bmc.Options.Obs or exp.Config.Obs.
package cliobs

import (
	"flag"
	"fmt"
	"os"
	"time"

	"emmver/internal/obs"
)

// Flags holds the parsed observability flag values.
type Flags struct {
	Trace    *string
	Progress *time.Duration
	Pprof    *string
}

// Register declares -trace, -progress and -pprof on the default flag set;
// call it before flag.Parse.
func Register() *Flags {
	return &Flags{
		Trace:    flag.String("trace", "", "write a JSONL span/metrics trace journal to this file"),
		Progress: flag.Duration("progress", 0, "print a live progress line to stderr at this interval (e.g. 5s; 0 = off)"),
		Pprof:    flag.String("pprof", "", "serve /metrics and /debug/pprof on this address (e.g. :6060)"),
	}
}

// Setup builds the observer the parsed flags ask for, starting the
// progress reporter and debug server as requested. The returned stop
// function halts the reporter and flushes/closes the trace journal; run it
// before the process exits. When no observability flag was given the
// observer is nil (costing the engines nothing) and stop is a no-op.
func (f *Flags) Setup() (*obs.Observer, func()) {
	var journal *obs.JSONL
	if *f.Trace != "" {
		file, err := os.Create(*f.Trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		journal = obs.NewJSONL(file)
	}
	if journal == nil && *f.Progress <= 0 && *f.Pprof == "" {
		return nil, func() {}
	}
	reg := obs.NewRegistry()
	var sink obs.Sink
	if journal != nil {
		sink = journal
	}
	o := obs.New(reg, sink)
	prog := obs.StartProgress(reg, os.Stderr, *f.Progress)
	if *f.Pprof != "" {
		obs.StartDebugServer(*f.Pprof, reg, os.Stderr)
	}
	return o, func() {
		prog.Stop()
		if journal != nil {
			if err := journal.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "trace journal: %v\n", err)
			}
		}
	}
}
