package cliobs

import (
	"flag"
	"strings"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/pass"
	"emmver/internal/sat"
)

// EngineFlags bundles the solver and compile-pipeline flags shared by all
// verification CLIs — -restart, -no-simplify, -passes, -no-passes, -share,
// -cube — so every frontend exposes the same knobs with the same semantics
// and default values.
type EngineFlags struct {
	Restart    *string
	NoSimplify *bool
	Passes     *string
	NoPasses   *bool
	Share      *bool
	Cube       *bool
}

// RegisterEngine declares the shared engine flags on the default flag set;
// call it before flag.Parse.
func RegisterEngine() *EngineFlags {
	return &EngineFlags{
		Restart: flag.String("restart", "ema", "solver restart strategy: luby or ema (adaptive)"),
		NoSimplify: flag.Bool("no-simplify", false,
			"disable between-depth inprocessing (subsumption + variable elimination)"),
		Passes: flag.String("passes", "",
			"static compile pipeline: comma-separated passes from "+
				strings.Join(pass.Names(), ",")+" (default \""+pass.SpecDefault+"\"), or none"),
		NoPasses: flag.Bool("no-passes", false, "disable the static compile pipeline (same as -passes=none)"),
		Share: flag.Bool("share", false,
			"share learnt clauses between fleet workers (multi-worker runs; off under PBA or environment constraints)"),
		Cube: flag.Bool("cube", false,
			"cube-and-conquer: split the search over EMM address comparators across the fleet (needs -jobs > 1)"),
	}
}

// Spec resolves -passes/-no-passes to the pipeline spec string for
// bmc.Options.Passes / pass.Options.Spec.
func (f *EngineFlags) Spec() string {
	if *f.NoPasses {
		return pass.SpecNone
	}
	return *f.Passes
}

// DescribeCompile runs the static pipeline once over n for the given
// property set and returns a one-line reduction summary, or "" when the
// pipeline is disabled, invalid, or removes nothing. Engines re-run the
// pipeline internally; this exists only so CLIs can report what it will
// do before the (much longer) solve starts.
func DescribeCompile(n *aig.Netlist, props []int, spec string) string {
	c, err := pass.Compile(n, props, pass.Options{Spec: spec})
	if err != nil {
		return ""
	}
	return c.Summary()
}

// Values validates the parsed flags and returns the raw engine knobs, for
// callers that thread them into non-bmc config structs (e.g. exp.Config).
// The error is user-facing (bad -restart or -passes value).
func (f *EngineFlags) Values() (mode sat.RestartMode, noSimplify bool, spec string, err error) {
	mode, err = sat.ParseRestartMode(*f.Restart)
	if err != nil {
		return mode, false, "", err
	}
	spec = f.Spec()
	if err := pass.ValidSpec(spec); err != nil {
		return mode, false, "", err
	}
	return mode, *f.NoSimplify, spec, nil
}

// ShareCube returns the cooperative-solving flag values, for callers that
// thread them into non-bmc config structs (e.g. exp.Config).
func (f *EngineFlags) ShareCube() (share, cube bool) {
	return *f.Share, *f.Cube
}

// Apply validates the parsed flag values and copies them onto opt.
func (f *EngineFlags) Apply(opt bmc.Options) (bmc.Options, error) {
	mode, noSimplify, spec, err := f.Values()
	if err != nil {
		return opt, err
	}
	opt.Restart = mode
	opt.NoSimplify = noSimplify
	opt.Passes = spec
	opt.Share = *f.Share
	opt.Cube = *f.Cube
	return opt, nil
}
