package cliobs

import (
	"errors"
	"flag"
	"strings"
	"time"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/pass"
	"emmver/internal/sat"
	"emmver/internal/sharenet"
)

// EngineFlags bundles the solver and compile-pipeline flags shared by all
// verification CLIs — -restart, -no-simplify, -passes, -no-passes, -share,
// -cube, the sharing tunables, and the distributed-fleet endpoints — so
// every frontend exposes the same knobs with the same semantics and default
// values.
type EngineFlags struct {
	Restart    *string
	NoSimplify *bool
	Passes     *string
	NoPasses   *bool
	Share      *bool
	Cube       *bool
	ShareCap   *int
	ShareLBD   *int
	ShareSize  *int
	Listen     *string
	Connect    *string
	Workers    *int
}

// RegisterEngine declares the shared engine flags on the default flag set;
// call it before flag.Parse.
func RegisterEngine() *EngineFlags {
	return &EngineFlags{
		Restart: flag.String("restart", "ema", "solver restart strategy: luby or ema (adaptive)"),
		NoSimplify: flag.Bool("no-simplify", false,
			"disable between-depth inprocessing (subsumption + variable elimination)"),
		Passes: flag.String("passes", "",
			"static compile pipeline: comma-separated passes from "+
				strings.Join(pass.Names(), ",")+" (default \""+pass.SpecDefault+"\"), or none"),
		NoPasses: flag.Bool("no-passes", false, "disable the static compile pipeline (same as -passes=none)"),
		Share: flag.Bool("share", false,
			"share learnt clauses between fleet workers (multi-worker runs; off under PBA or environment constraints)"),
		Cube: flag.Bool("cube", false,
			"cube-and-conquer: split the search over EMM address comparators across the fleet (needs -jobs > 1)"),
		ShareCap: flag.Int("share-cap", 0,
			"clause-sharing ring capacity per worker (0 = default 4096)"),
		ShareLBD: flag.Int("share-lbd", 0,
			"export learnt clauses of glue <= this (0 = default 6; binaries always export)"),
		ShareSize: flag.Int("share-size", 0,
			"export learnt clauses of at most this many literals (0 = default 30)"),
		Listen: flag.String("listen", "",
			"broker a distributed fleet on this address (unix:/path, tcp:host:port, or a socket path) and solve as worker 0"),
		Connect: flag.String("connect", "",
			"join a distributed fleet brokered at this address"),
		Workers: flag.Int("workers", 2,
			"fleet size for -listen, including this process"),
	}
}

// Spec resolves -passes/-no-passes to the pipeline spec string for
// bmc.Options.Passes / pass.Options.Spec.
func (f *EngineFlags) Spec() string {
	if *f.NoPasses {
		return pass.SpecNone
	}
	return *f.Passes
}

// DescribeCompile runs the static pipeline once over n for the given
// property set and returns a one-line reduction summary, or "" when the
// pipeline is disabled, invalid, or removes nothing. Engines re-run the
// pipeline internally; this exists only so CLIs can report what it will
// do before the (much longer) solve starts.
func DescribeCompile(n *aig.Netlist, props []int, spec string) string {
	c, err := pass.Compile(n, props, pass.Options{Spec: spec})
	if err != nil {
		return ""
	}
	return c.Summary()
}

// Values validates the parsed flags and returns the raw engine knobs, for
// callers that thread them into non-bmc config structs (e.g. exp.Config).
// The error is user-facing (bad -restart or -passes value).
func (f *EngineFlags) Values() (mode sat.RestartMode, noSimplify bool, spec string, err error) {
	mode, err = sat.ParseRestartMode(*f.Restart)
	if err != nil {
		return mode, false, "", err
	}
	spec = f.Spec()
	if err := pass.ValidSpec(spec); err != nil {
		return mode, false, "", err
	}
	return mode, *f.NoSimplify, spec, nil
}

// ShareCube returns the cooperative-solving flag values, for callers that
// thread them into non-bmc config structs (e.g. exp.Config).
func (f *EngineFlags) ShareCube() (share, cube bool) {
	return *f.Share, *f.Cube
}

// Apply validates the parsed flag values and copies them onto opt.
func (f *EngineFlags) Apply(opt bmc.Options) (bmc.Options, error) {
	mode, noSimplify, spec, err := f.Values()
	if err != nil {
		return opt, err
	}
	opt.Restart = mode
	opt.NoSimplify = noSimplify
	opt.Passes = spec
	opt.Share = *f.Share
	opt.Cube = *f.Cube
	opt.ShareCap = *f.ShareCap
	opt.ShareLBD = *f.ShareLBD
	opt.ShareSize = *f.ShareSize
	return opt, nil
}

// DistActive reports whether the command line selected a distributed role
// (-listen or -connect).
func (f *EngineFlags) DistActive() bool {
	return *f.Listen != "" || *f.Connect != ""
}

// ParseNetAddr splits a -listen/-connect value into the (network, address)
// pair net.Listen/net.Dial expect: an explicit "unix:" or "tcp:" prefix
// wins, a value containing a path separator is a unix socket, anything else
// is a TCP host:port.
func ParseNetAddr(s string) (network, addr string) {
	switch {
	case strings.HasPrefix(s, "unix:"):
		return "unix", s[len("unix:"):]
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", s[len("tcp:"):]
	case strings.Contains(s, "/"):
		return "unix", s
	default:
		return "tcp", s
	}
}

// RunDist executes property prop of n as this process's share of a
// cross-process fleet. With -listen it starts the broker, then dials it and
// solves as a regular worker (broker-assigned slot 0 runs the termination
// proofs); with -connect it just joins. The result mirrors bmc.CheckDist:
// only the worker whose engine found the counter-example holds a witness.
func (f *EngineFlags) RunDist(n *aig.Netlist, prop int, opt bmc.Options) (*bmc.Result, error) {
	if *f.Listen != "" && *f.Connect != "" {
		return nil, errors.New("-listen and -connect are mutually exclusive")
	}
	endpoint := *f.Listen
	if endpoint == "" {
		endpoint = *f.Connect
	}
	network, addr := ParseNetAddr(endpoint)
	var br *sharenet.Broker
	if *f.Listen != "" {
		if *f.Workers < 1 {
			return nil, errors.New("-listen needs -workers >= 1")
		}
		var err error
		br, err = sharenet.Listen(network, addr, sharenet.BrokerOptions{Workers: *f.Workers, Obs: opt.Obs})
		if err != nil {
			return nil, err
		}
	}
	maxDepth, proofs := bmc.DistWorkerHello(opt)
	cl, err := sharenet.Dial(network, addr, sharenet.ClientOptions{MaxDepth: maxDepth, Proofs: proofs, Obs: opt.Obs})
	if err != nil {
		if br != nil {
			br.Close()
		}
		return nil, err
	}
	r, rerr := bmc.CheckDist(n, prop, opt, cl)
	cl.Close()
	if br != nil {
		// The fleet verdict is broadcast when Done closes; the short grace
		// lets remote workers drain their finish frames before the broker
		// severs the links.
		br.Wait(10 * time.Second)
		time.Sleep(250 * time.Millisecond)
		br.Close()
	}
	return r, rerr
}
