package cliobs

import (
	"errors"
	"flag"
	"strings"
	"time"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/pass"
	"emmver/internal/sat"
	"emmver/internal/sharenet"
	"emmver/internal/spec"
)

// EngineFlags bundles the engine flags shared by all verification CLIs.
// Every knob a request can carry — -engine, -depth, -timeout, -jobs,
// -passes, -restart, -no-simplify, -share, -cube, and the sharing
// tunables — is derived from the internal/spec.Spec field tags via
// spec.RegisterFlags, so the tools expose exactly the schema the emmserved
// job server and the verdict cache speak and cannot drift from it. Only
// the knobs outside the request schema are declared here: -no-passes (a
// CLI convenience alias for -passes=none) and the distributed-fleet
// endpoints (-listen, -connect, -workers).
type EngineFlags struct {
	// Spec accumulates the parsed schema flags; after flag.Parse it is the
	// verification request the command line describes.
	Spec spec.Spec

	NoPasses *bool
	Listen   *string
	Connect  *string
	Workers  *int
}

// RegisterEngine declares the shared engine flags on the default flag set
// with the schema's default request (BMC-3, depth 100, 5m budget); call it
// before flag.Parse.
func RegisterEngine() *EngineFlags {
	return RegisterEngineFor(spec.Default())
}

// RegisterEngineFor is RegisterEngine with a caller-chosen seed request
// (its field values become the flag defaults) and an optional list of
// schema flags to leave unregistered, for tools whose workload fixes the
// engine or depth.
func RegisterEngineFor(def spec.Spec, skip ...string) *EngineFlags {
	f := &EngineFlags{Spec: def}
	spec.RegisterFlags(flag.CommandLine, &f.Spec, skip...)
	f.NoPasses = flag.Bool("no-passes", false, "disable the static compile pipeline (same as -passes=none)")
	f.Listen = flag.String("listen", "",
		"broker a distributed fleet on this address (unix:/path, tcp:host:port, or a socket path) and solve as worker 0")
	f.Connect = flag.String("connect", "",
		"join a distributed fleet brokered at this address")
	f.Workers = flag.Int("workers", 2,
		"fleet size for -listen, including this process")
	return f
}

// Request resolves the convenience aliases (-no-passes) into the parsed
// Spec and returns the resulting request. Call it after flag.Parse; it is
// the value to submit to a remote server or convert with Spec.Options.
func (f *EngineFlags) Request() spec.Spec {
	s := f.Spec
	if f.NoPasses != nil && *f.NoPasses {
		s.Passes = pass.SpecNone
	}
	return s
}

// PassSpec resolves -passes/-no-passes to the pipeline spec string for
// bmc.Options.Passes / pass.Options.Spec.
func (f *EngineFlags) PassSpec() string {
	return f.Request().Canonical().Passes
}

// DescribeCompile runs the static pipeline once over n for the given
// property set and returns a one-line reduction summary, or "" when the
// pipeline is disabled, invalid, or removes nothing. Engines re-run the
// pipeline internally; this exists only so CLIs can report what it will
// do before the (much longer) solve starts.
func DescribeCompile(n *aig.Netlist, props []int, spec string) string {
	c, err := pass.Compile(n, props, pass.Options{Spec: spec})
	if err != nil {
		return ""
	}
	return c.Summary()
}

// Values validates the parsed flags and returns the raw engine knobs, for
// callers that thread them into non-bmc config structs (e.g. exp.Config).
// The error is user-facing (bad -restart or -passes value).
func (f *EngineFlags) Values() (mode sat.RestartMode, noSimplify bool, passSpec string, err error) {
	s := f.Request().Canonical()
	mode, err = sat.ParseRestartMode(s.Restart)
	if err != nil {
		return mode, false, "", err
	}
	if err := pass.ValidSpec(s.Passes); err != nil {
		return mode, false, "", err
	}
	return mode, s.NoSimplify, s.Passes, nil
}

// ShareCube returns the cooperative-solving flag values, for callers that
// thread them into non-bmc config structs (e.g. exp.Config).
func (f *EngineFlags) ShareCube() (share, cube bool) {
	return f.Spec.Share, f.Spec.Cube
}

// Options converts the parsed request into the engine configuration it
// denotes, via the one Spec → bmc.Options path. The error is user-facing
// (unknown -engine, bad -restart or -passes value).
func (f *EngineFlags) Options() (bmc.Options, error) {
	return f.Request().Options()
}

// DistActive reports whether the command line selected a distributed role
// (-listen or -connect).
func (f *EngineFlags) DistActive() bool {
	return *f.Listen != "" || *f.Connect != ""
}

// ParseNetAddr splits a -listen/-connect value into the (network, address)
// pair net.Listen/net.Dial expect: an explicit "unix:" or "tcp:" prefix
// wins, a value containing a path separator is a unix socket, anything else
// is a TCP host:port.
func ParseNetAddr(s string) (network, addr string) {
	switch {
	case strings.HasPrefix(s, "unix:"):
		return "unix", s[len("unix:"):]
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", s[len("tcp:"):]
	case strings.Contains(s, "/"):
		return "unix", s
	default:
		return "tcp", s
	}
}

// RunDist executes property prop of n as this process's share of a
// cross-process fleet. With -listen it starts the broker, then dials it and
// solves as a regular worker (broker-assigned slot 0 runs the termination
// proofs); with -connect it just joins. The result mirrors bmc.CheckDist:
// only the worker whose engine found the counter-example holds a witness.
func (f *EngineFlags) RunDist(n *aig.Netlist, prop int, opt bmc.Options) (*bmc.Result, error) {
	if *f.Listen != "" && *f.Connect != "" {
		return nil, errors.New("-listen and -connect are mutually exclusive")
	}
	// The engine dimension of the dist knob goes through the capability
	// registry like every other knob; netlist-dependent conditions stay in
	// bmc.DistEligible, checked when the worker joins.
	if err := f.Request().DistCapable(); err != nil {
		return nil, err
	}
	endpoint := *f.Listen
	if endpoint == "" {
		endpoint = *f.Connect
	}
	network, addr := ParseNetAddr(endpoint)
	var br *sharenet.Broker
	if *f.Listen != "" {
		if *f.Workers < 1 {
			return nil, errors.New("-listen needs -workers >= 1")
		}
		var err error
		br, err = sharenet.Listen(network, addr, sharenet.BrokerOptions{Workers: *f.Workers, Obs: opt.Obs})
		if err != nil {
			return nil, err
		}
	}
	maxDepth, proofs := bmc.DistWorkerHello(opt)
	cl, err := sharenet.Dial(network, addr, sharenet.ClientOptions{MaxDepth: maxDepth, Proofs: proofs, Obs: opt.Obs})
	if err != nil {
		if br != nil {
			br.Close()
		}
		return nil, err
	}
	r, rerr := bmc.CheckDist(n, prop, opt, cl)
	cl.Close()
	if br != nil {
		// The fleet verdict is broadcast when Done closes; the short grace
		// lets remote workers drain their finish frames before the broker
		// severs the links.
		br.Wait(10 * time.Second)
		time.Sleep(250 * time.Millisecond)
		br.Close()
	}
	return r, rerr
}
