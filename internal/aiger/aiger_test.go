package aiger

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/expmem"
	"emmver/internal/rtl"
	"emmver/internal/sim"
)

// randomNetlist builds a random memory-free sequential design.
func randomNetlist(rng *rand.Rand) *rtl.Module {
	m := rtl.NewModule("rand")
	nIn := 1 + rng.Intn(3)
	var ins []aig.Lit
	for i := 0; i < nIn; i++ {
		ins = append(ins, m.InputBit("in"))
	}
	nReg := 1 + rng.Intn(3)
	var regs []*rtl.Reg
	var sigs []aig.Lit
	sigs = append(sigs, ins...)
	for i := 0; i < nReg; i++ {
		init := rng.Intn(3)
		var r *rtl.Reg
		if init == 2 {
			r = m.RegisterX("r", 1)
		} else {
			r = m.BitReg("r", init == 1)
		}
		regs = append(regs, r)
		sigs = append(sigs, r.Bit())
	}
	pick := func() aig.Lit {
		l := sigs[rng.Intn(len(sigs))]
		if rng.Intn(2) == 1 {
			l = l.Not()
		}
		return l
	}
	for d := 0; d < 5+rng.Intn(10); d++ {
		sigs = append(sigs, m.N.And(pick(), pick()))
	}
	for _, r := range regs {
		r.SetNext(rtl.Vec{pick()})
	}
	m.Done(regs...)
	m.AssertAlways("p0", pick())
	m.AssertAlways("p1", pick())
	if rng.Intn(2) == 1 {
		m.Assume(pick())
	}
	return m
}

// equalBehavior cross-simulates two netlists with identical inputs
// (matched positionally) and compares property values.
func equalBehavior(t *testing.T, a, b *aig.Netlist, seed int64, cycles int) {
	t.Helper()
	if len(a.Inputs) != len(b.Inputs) || len(a.Props) != len(b.Props) {
		t.Fatalf("interface mismatch: %d/%d inputs, %d/%d props",
			len(a.Inputs), len(b.Inputs), len(a.Props), len(b.Props))
	}
	sa, sb := sim.New(a), sim.New(b)
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < cycles; c++ {
		ia := make(map[aig.NodeID]bool)
		ib := make(map[aig.NodeID]bool)
		for i := range a.Inputs {
			v := rng.Intn(2) == 1
			ia[a.Inputs[i]] = v
			ib[b.Inputs[i]] = v
		}
		ra := sa.Step(ia)
		rb := sb.Step(ib)
		for p := range ra.PropOK {
			if ra.PropOK[p] != rb.PropOK[p] {
				t.Fatalf("cycle %d prop %d: %v vs %v", c, p, ra.PropOK[p], rb.PropOK[p])
			}
		}
		if ra.ConstraintsOK != rb.ConstraintsOK {
			t.Fatalf("cycle %d: constraint mismatch", c)
		}
	}
}

func TestRoundtripASCII(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 40; iter++ {
		m := randomNetlist(rng)
		var buf bytes.Buffer
		if err := Write(&buf, m.N, false); err != nil {
			t.Fatalf("iter %d: write: %v", iter, err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: read: %v\n%s", iter, err, buf.String())
		}
		equalBehavior(t, m.N, back, int64(iter), 30)
	}
}

func TestRoundtripBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		m := randomNetlist(rng)
		var buf bytes.Buffer
		if err := Write(&buf, m.N, true); err != nil {
			t.Fatalf("iter %d: write: %v", iter, err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: read: %v", iter, err)
		}
		equalBehavior(t, m.N, back, int64(iter), 30)
	}
}

func TestRoundtripPreservesVerdicts(t *testing.T) {
	// A counter design whose property verdicts must survive the
	// roundtrip through both formats.
	build := func() *rtl.Module {
		m := rtl.NewModule("c")
		c := m.Register("c", 3, 0)
		wrap := m.EqConst(c.Q, 4)
		c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
		m.Done(c)
		m.AssertAlways("ne3", m.EqConst(c.Q, 3).Not()) // CE at 3
		m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not()) // provable
		return m
	}
	for _, binary := range []bool{false, true} {
		var buf bytes.Buffer
		if err := Write(&buf, build().N, binary); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if r := bmc.Check(back, 0, bmc.BMC1(20)); r.Kind != bmc.KindCE || r.Depth != 3 {
			t.Fatalf("binary=%v: prop0 got %v", binary, r)
		}
		if r := bmc.Check(back, 1, bmc.BMC1(20)); r.Kind != bmc.KindProof {
			t.Fatalf("binary=%v: prop1 got %v", binary, r)
		}
	}
}

func TestWriteRejectsMemories(t *testing.T) {
	m := rtl.NewModule("mem")
	mem := m.Memory("mem", 2, 2, aig.MemZero)
	mem.Read(m.Input("ra", 2), aig.True)
	var buf bytes.Buffer
	if err := Write(&buf, m.N, false); err == nil {
		t.Fatalf("memories must be rejected")
	}
	// After expansion it must serialize.
	exp, _, err := expmem.Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, exp, false); err != nil {
		t.Fatal(err)
	}
}

func TestReadKnownASCII(t *testing.T) {
	// A hand-written toggle flip-flop with bad state "latch is 1".
	src := "aag 1 0 1 0 0 1\n2 3 0\n2\n"
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Latches) != 1 || len(n.Props) != 1 {
		t.Fatalf("structure wrong")
	}
	// The latch toggles from 0: bad (latch=1) reachable at depth 1.
	r := bmc.Check(n, 0, bmc.Options{MaxDepth: 4})
	if r.Kind != bmc.KindCE || r.Depth != 1 {
		t.Fatalf("toggle verdict wrong: %v", r)
	}
}

func TestReadOutputsAsProperties(t *testing.T) {
	// AIGER 1.0 style: outputs only, no B section.
	src := "aag 1 1 0 1 0\n2\n2\n"
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Props) != 1 {
		t.Fatalf("output must become a property")
	}
	r := bmc.Check(n, 0, bmc.Options{MaxDepth: 2})
	if r.Kind != bmc.KindCE || r.Depth != 0 {
		t.Fatalf("input-driven bad state must fire at depth 0: %v", r)
	}
}

func TestReadErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"xyz 1 2 3 4 5\n",
		"aag 0 1 0 0 0\n",           // M < I
		"aag 1 0 1 0 0\n2 99\n",     // next literal out of range
		"aag 2 1 0 0 1\n2\n4 4 2\n", // AND uses itself
		"aag 1 1 0 0 0\n3\n",        // negated input
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q must fail", bad)
		}
	}
}

func TestLatchResetVariants(t *testing.T) {
	// Three latches: reset 0, reset 1, uninitialized (lit = itself).
	src := "aag 3 0 3 0 0 1\n2 2 0\n4 4 1\n6 6 6\n4\n"
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Latches[0].Init != aig.Init0 || n.Latches[1].Init != aig.Init1 || n.Latches[2].Init != aig.InitX {
		t.Fatalf("resets wrong: %v %v %v", n.Latches[0].Init, n.Latches[1].Init, n.Latches[2].Init)
	}
}

func TestSymbolsSurviveWrite(t *testing.T) {
	m := rtl.NewModule("sym")
	m.InputBit("clk_enable")
	r := m.BitReg("flag", false)
	r.SetNext(rtl.Vec{aig.False})
	m.Done(r)
	m.AssertAlways("safe", aig.True)
	var buf bytes.Buffer
	if err := Write(&buf, m.N, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"i0 clk_enable", "l0 flag", "b0 safe"} {
		if !strings.Contains(out, want) {
			t.Fatalf("symbol %q missing from:\n%s", want, out)
		}
	}
}
