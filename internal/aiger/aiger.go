// Package aiger reads and writes the AIGER and-inverter-graph interchange
// format (both the ASCII "aag" and binary "aig" variants, including the
// AIGER 1.9 reset values, bad-state properties, and invariant
// constraints), bridging this library to standard hardware model-checking
// benchmarks and tools.
//
// AIGER has no notion of embedded memory modules: netlists containing
// memories must be expanded (package expmem) before writing. On reading,
// bad-state literals (B section, or plain outputs as a fallback, per
// HWMCC convention) become safety properties "¬bad holds always".
package aiger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"emmver/internal/aig"
)

// Write emits the netlist in ASCII (binary=false) or binary AIGER.
func Write(w io.Writer, n *aig.Netlist, binary bool) error {
	if len(n.Memories) > 0 {
		return fmt.Errorf("aiger: netlist has %d memory modules; expand them first", len(n.Memories))
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	// Assign AIGER variable indices: inputs, then latches, then ands
	// (binary AIGER requires exactly this order).
	varOf := make(map[aig.NodeID]uint32) // node -> aiger variable index
	next := uint32(1)
	for _, id := range n.Inputs {
		varOf[id] = next
		next++
	}
	for _, l := range n.Latches {
		varOf[l.Node] = next
		next++
	}
	// Collect AND nodes in topological (id) order.
	var ands []aig.NodeID
	for id := aig.NodeID(1); id < aig.NodeID(n.NumNodes()); id++ {
		if n.NodeAt(id).Kind == aig.KAnd {
			varOf[id] = next
			next++
			ands = append(ands, id)
		}
	}
	lit := func(l aig.Lit) uint32 {
		id := l.Node()
		var base uint32
		if id != 0 {
			v, ok := varOf[id]
			if !ok {
				panic(fmt.Sprintf("aiger: unmapped node %d (%v)", id, n.NodeAt(id).Kind))
			}
			base = 2 * v
		}
		if l.Inverted() {
			base |= 1
		}
		return base
	}

	m := next - 1
	format := "aag"
	if binary {
		format = "aig"
	}
	fmt.Fprintf(bw, "%s %d %d %d 0 %d %d %d\n",
		format, m, len(n.Inputs), len(n.Latches), len(ands), len(n.Props), len(n.Constraints))

	if !binary {
		for _, id := range n.Inputs {
			fmt.Fprintf(bw, "%d\n", 2*varOf[id])
		}
	}
	for _, l := range n.Latches {
		reset := "0"
		switch l.Init {
		case aig.Init1:
			reset = "1"
		case aig.InitX:
			reset = fmt.Sprintf("%d", 2*varOf[l.Node]) // lit = itself: uninitialized
		}
		if binary {
			fmt.Fprintf(bw, "%d %s\n", lit(l.Next), reset)
		} else {
			fmt.Fprintf(bw, "%d %d %s\n", 2*varOf[l.Node], lit(l.Next), reset)
		}
	}
	for _, p := range n.Props {
		fmt.Fprintf(bw, "%d\n", lit(p.OK.Not())) // bad-state literal
	}
	for _, c := range n.Constraints {
		fmt.Fprintf(bw, "%d\n", lit(c))
	}
	if binary {
		for _, id := range ands {
			node := n.NodeAt(id)
			lhs := 2 * varOf[id]
			r0, r1 := lit(node.F0), lit(node.F1)
			if r0 < r1 {
				r0, r1 = r1, r0
			}
			writeDelta(bw, lhs-r0)
			writeDelta(bw, r0-r1)
		}
	} else {
		for _, id := range ands {
			node := n.NodeAt(id)
			r0, r1 := lit(node.F0), lit(node.F1)
			if r0 < r1 {
				r0, r1 = r1, r0
			}
			fmt.Fprintf(bw, "%d %d %d\n", 2*varOf[id], r0, r1)
		}
	}
	// Symbol table.
	for i, id := range n.Inputs {
		if name := n.InputName(id); name != "" {
			fmt.Fprintf(bw, "i%d %s\n", i, name)
		}
	}
	for i, l := range n.Latches {
		if l.Name != "" {
			fmt.Fprintf(bw, "l%d %s\n", i, l.Name)
		}
	}
	for i, p := range n.Props {
		if p.Name != "" {
			fmt.Fprintf(bw, "b%d %s\n", i, p.Name)
		}
	}
	fmt.Fprintf(bw, "c\nwritten by emmver\n")
	return bw.Flush()
}

func writeDelta(w *bufio.Writer, d uint32) {
	for d >= 0x80 {
		w.WriteByte(byte(d&0x7f | 0x80))
		d >>= 7
	}
	w.WriteByte(byte(d))
}

// Read parses an AIGER file (ASCII or binary, auto-detected) into a
// netlist.
func Read(r io.Reader) (*aig.Netlist, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("aiger: reading header: %v", err)
	}
	fields := strings.Fields(header)
	if len(fields) < 6 {
		return nil, fmt.Errorf("aiger: short header %q", header)
	}
	binary := false
	switch fields[0] {
	case "aag":
	case "aig":
		binary = true
	default:
		return nil, fmt.Errorf("aiger: unknown format %q", fields[0])
	}
	nums := make([]int, len(fields)-1)
	for i, f := range fields[1:] {
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", f)
		}
		nums[i] = v
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	nBad, nConstr := 0, 0
	if len(nums) > 5 {
		nBad = nums[5]
	}
	if len(nums) > 6 {
		nConstr = nums[6]
	}
	if maxVar < nIn+nLatch+nAnd {
		return nil, fmt.Errorf("aiger: inconsistent header (M=%d < I+L+A=%d)", maxVar, nIn+nLatch+nAnd)
	}

	p := &reader{br: br, binary: binary}
	net := aig.New("aiger")
	// litOf maps an AIGER literal to a netlist literal once all vars are
	// defined; we first record raw structure.
	varLit := make([]aig.Lit, maxVar+1) // aiger var -> netlist literal
	defined := make([]bool, maxVar+1)
	varLit[0] = aig.False
	defined[0] = true

	var inputIdx []uint32
	if binary {
		for i := 0; i < nIn; i++ {
			inputIdx = append(inputIdx, uint32(i+1))
		}
	} else {
		for i := 0; i < nIn; i++ {
			l, err := p.readUint()
			if err != nil {
				return nil, err
			}
			if l&1 != 0 || l == 0 {
				return nil, fmt.Errorf("aiger: invalid input literal %d", l)
			}
			inputIdx = append(inputIdx, l/2)
		}
	}
	for _, v := range inputIdx {
		if int(v) > maxVar || defined[v] {
			return nil, fmt.Errorf("aiger: bad input variable %d", v)
		}
		varLit[v] = net.NewInput("")
		defined[v] = true
	}

	type latchRec struct {
		v     uint32
		next  uint32
		reset uint32
		hasR  bool
	}
	var latches []latchRec
	for i := 0; i < nLatch; i++ {
		var rec latchRec
		if binary {
			rec.v = uint32(nIn + i + 1)
		} else {
			l, err := p.readUint()
			if err != nil {
				return nil, err
			}
			rec.v = l / 2
		}
		nx, err := p.readUint()
		if err != nil {
			return nil, err
		}
		rec.next = nx
		if rst, ok, err := p.tryReadUintSameLine(); err != nil {
			return nil, err
		} else if ok {
			rec.reset = rst
			rec.hasR = true
		}
		if err := p.endLine(); err != nil {
			return nil, err
		}
		latches = append(latches, rec)
	}
	for _, rec := range latches {
		init := aig.Init0
		if rec.hasR {
			switch {
			case rec.reset == 1:
				init = aig.Init1
			case rec.reset == 0:
				init = aig.Init0
			case rec.reset == 2*rec.v:
				init = aig.InitX
			default:
				return nil, fmt.Errorf("aiger: unsupported reset literal %d", rec.reset)
			}
		}
		if int(rec.v) > maxVar || defined[rec.v] {
			return nil, fmt.Errorf("aiger: bad latch variable %d", rec.v)
		}
		varLit[rec.v] = net.NewLatch("", init)
		defined[rec.v] = true
	}

	var outs, bads, constrs []uint32
	readList := func(k int) ([]uint32, error) {
		var out []uint32
		for i := 0; i < k; i++ {
			l, err := p.readUint()
			if err != nil {
				return nil, err
			}
			if err := p.endLine(); err != nil {
				return nil, err
			}
			out = append(out, l)
		}
		return out, nil
	}
	if outs, err = readList(nOut); err != nil {
		return nil, err
	}
	if bads, err = readList(nBad); err != nil {
		return nil, err
	}
	if constrs, err = readList(nConstr); err != nil {
		return nil, err
	}

	// AND gates.
	type andRec struct{ lhs, r0, r1 uint32 }
	var andsR []andRec
	if binary {
		lhs := uint32(2 * (nIn + nLatch))
		for i := 0; i < nAnd; i++ {
			lhs += 2
			d0, err := p.readDelta()
			if err != nil {
				return nil, err
			}
			d1, err := p.readDelta()
			if err != nil {
				return nil, err
			}
			r0 := lhs - d0
			r1 := r0 - d1
			andsR = append(andsR, andRec{lhs: lhs, r0: r0, r1: r1})
		}
	} else {
		for i := 0; i < nAnd; i++ {
			lhs, err := p.readUint()
			if err != nil {
				return nil, err
			}
			r0, err := p.readUint()
			if err != nil {
				return nil, err
			}
			r1, err := p.readUint()
			if err != nil {
				return nil, err
			}
			if err := p.endLine(); err != nil {
				return nil, err
			}
			andsR = append(andsR, andRec{lhs: lhs, r0: r0, r1: r1})
		}
	}
	resolve := func(l uint32) (aig.Lit, error) {
		v := l / 2
		if v > uint32(maxVar) {
			return 0, fmt.Errorf("aiger: literal %d out of range", l)
		}
		if !defined[v] {
			return 0, fmt.Errorf("aiger: literal %d used before definition", l)
		}
		return varLit[v].XorInv(l&1 == 1), nil
	}
	for _, a := range andsR {
		if a.lhs&1 != 0 {
			return nil, fmt.Errorf("aiger: negated AND lhs %d", a.lhs)
		}
		f0, err := resolve(a.r0)
		if err != nil {
			return nil, err
		}
		f1, err := resolve(a.r1)
		if err != nil {
			return nil, err
		}
		if int(a.lhs/2) > maxVar || defined[a.lhs/2] {
			return nil, fmt.Errorf("aiger: bad AND variable %d", a.lhs/2)
		}
		varLit[a.lhs/2] = net.And(f0, f1)
		defined[a.lhs/2] = true
	}

	// Wire latch next-state functions.
	for _, rec := range latches {
		nx, err := resolve(rec.next)
		if err != nil {
			return nil, err
		}
		net.SetNext(varLit[rec.v], nx)
	}
	// Properties: explicit bad literals, else plain outputs (HWMCC'08
	// convention).
	propLits := bads
	if len(propLits) == 0 {
		propLits = outs
	}
	for i, b := range propLits {
		bl, err := resolve(b)
		if err != nil {
			return nil, err
		}
		net.AddProperty(fmt.Sprintf("bad%d", i), bl.Not())
	}
	for _, c := range constrs {
		cl, err := resolve(c)
		if err != nil {
			return nil, err
		}
		net.AddConstraint(cl)
	}

	// Symbol table (optional): currently names are informational only.
	return net, nil
}

type reader struct {
	br     *bufio.Reader
	binary bool
}

// readUint reads a decimal literal, skipping leading whitespace/newlines.
func (p *reader) readUint() (uint32, error) {
	// Skip whitespace including newlines.
	for {
		b, err := p.br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("aiger: unexpected EOF")
		}
		if b == ' ' || b == '\n' || b == '\r' || b == '\t' {
			continue
		}
		p.br.UnreadByte()
		break
	}
	var v uint64
	got := false
	for {
		b, err := p.br.ReadByte()
		if err != nil {
			if got {
				return uint32(v), nil
			}
			return 0, fmt.Errorf("aiger: unexpected EOF")
		}
		if b < '0' || b > '9' {
			p.br.UnreadByte()
			if !got {
				return 0, fmt.Errorf("aiger: expected number, found %q", b)
			}
			return uint32(v), nil
		}
		v = v*10 + uint64(b-'0')
		if v > 1<<32 {
			return 0, fmt.Errorf("aiger: number too large")
		}
		got = true
	}
}

// tryReadUintSameLine reads a number only if one appears before the next
// newline (used for optional reset values).
func (p *reader) tryReadUintSameLine() (uint32, bool, error) {
	for {
		b, err := p.br.ReadByte()
		if err != nil {
			return 0, false, nil
		}
		switch b {
		case ' ', '\t':
			continue
		case '\n', '\r':
			p.br.UnreadByte()
			return 0, false, nil
		default:
			p.br.UnreadByte()
			v, err := p.readUint()
			return v, err == nil, err
		}
	}
}

// endLine consumes up to and including the next newline.
func (p *reader) endLine() error {
	for {
		b, err := p.br.ReadByte()
		if err != nil {
			return nil // EOF acts as line end
		}
		if b == '\n' {
			return nil
		}
		if b != ' ' && b != '\r' && b != '\t' {
			return fmt.Errorf("aiger: trailing garbage %q", b)
		}
	}
}

// readDelta decodes the binary-AIGER variable-length delta encoding.
func (p *reader) readDelta() (uint32, error) {
	var v uint32
	shift := uint(0)
	for {
		b, err := p.br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("aiger: unexpected EOF in delta")
		}
		v |= uint32(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift > 28 {
			return 0, fmt.Errorf("aiger: delta too large")
		}
	}
}
