package bmc

import (
	"context"
	"time"

	"emmver/internal/aig"
	"emmver/internal/obs"
	"emmver/internal/sat"
)

// ManyResult reports the per-property outcomes of a CheckMany run plus the
// shared statistics, mirroring how the Industry I case study reports "206
// witnesses in 400s, 10 induction proofs in <1s".
type ManyResult struct {
	Results []*Result // one per property, indexed like props
	Stats   Stats
	// MaxWitnessDepth is the deepest counter-example found.
	MaxWitnessDepth int
	// DepthStats holds the shared engine's per-depth deltas
	// (Options.CollectDepthStats, sequential CheckMany only — the parallel
	// engines interleave depths across workers, so there is no single
	// meaningful per-depth table for them).
	DepthStats []DepthStat
}

// Counts tallies outcomes by kind.
func (m *ManyResult) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, r := range m.Results {
		out[r.Kind]++
	}
	return out
}

// CheckMany verifies many reachability properties of one design while
// sharing a single incremental unrolling (and EMM constraint set) across
// all of them. At each depth it runs, per unresolved property, the
// counter-example check; with Proofs enabled it also runs the
// property-independent forward termination check once per depth (which,
// when UNSAT, proves every remaining property at once) and a per-property
// backward induction check.
func CheckMany(n *aig.Netlist, props []int, opt Options) *ManyResult {
	return CheckManyCtx(context.Background(), n, props, opt)
}

// CheckManyCtx is CheckMany under a cancellation context; see CheckCtx.
// The static compile pipeline runs once for the whole property set, so its
// cost is shared the same way the unrolling is.
func CheckManyCtx(ctx context.Context, n *aig.Netlist, props []int, opt Options) *ManyResult {
	c := compileModel(n, props, &opt)
	out := checkManyCompiled(ctx, c.n, c.props, opt)
	for pi := range out.Results {
		out.Results[pi] = c.finish(out.Results[pi], c.srcProps[pi], opt)
	}
	return out
}

func checkManyCompiled(ctx context.Context, n *aig.Netlist, props []int, opt Options) *ManyResult {
	e := newEngine(ctx, n, props[0], opt)
	out := &ManyResult{Results: make([]*Result, len(props))}
	unresolved := len(props)
	finishAll := func(kind Kind, depth int, side string) {
		for pi := range props {
			if out.Results[pi] == nil {
				out.Results[pi] = &Result{Kind: kind, Prop: props[pi], Depth: depth, ProofSide: side}
				e.obsResolved(kind)
			}
		}
		unresolved = 0
	}

	start := time.Now()
	for i := 0; i <= opt.MaxDepth && unresolved > 0; i++ {
		if e.timedOut() {
			finishAll(KindTimeout, max(i-1, 0), "")
			break
		}
		sp := e.obs.Span("bmc.depth", obs.F("depth", i), obs.F("unresolved", unresolved))
		endDepth := func() {
			e.publishObs(i)
			sp.End(obs.F("emm_clauses", e.emmClausesCum()),
				obs.F("clauses", e.fs.NumClauses()),
				obs.F("unresolved", unresolved))
		}
		e.prepareDepth(i)

		if opt.Proofs {
			// Forward termination is property-independent.
			switch e.forwardCheck(i) {
			case sat.Unsat:
				finishAll(KindProof, i, "forward")
			case sat.Unknown:
				finishAll(KindTimeout, i, "")
			}
			if unresolved == 0 {
				endDepth()
				break
			}
		}

		for pi, p := range props {
			if out.Results[pi] != nil {
				continue
			}
			if e.timedOut() {
				out.Results[pi] = &Result{Kind: KindTimeout, Prop: p, Depth: i}
				continue
			}
			if opt.Proofs {
				if e.backwardCheck(p, i) == sat.Unsat {
					out.Results[pi] = &Result{Kind: KindProof, Prop: p, Depth: i, ProofSide: "backward"}
					unresolved--
					e.obsResolved(KindProof)
					e.logf("prop %d: backward proof at depth %d", p, i)
					continue
				}
			}
			switch e.ceCheck(p, i) {
			case sat.Sat:
				e.prop = p
				w := e.extractWitness(i)
				e.validateWitness(w, p)
				out.Results[pi] = &Result{Kind: KindCE, Prop: p, Depth: i, Witness: w}
				unresolved--
				e.obsResolved(KindCE)
				if i > out.MaxWitnessDepth {
					out.MaxWitnessDepth = i
				}
				e.logf("prop %d: counter-example at depth %d", p, i)
			case sat.Unknown:
				out.Results[pi] = &Result{Kind: KindTimeout, Prop: p, Depth: i}
				unresolved--
			}
		}
		if opt.CollectDepthStats {
			e.collectDepthStat(i)
		}
		endDepth()
		if unresolved > 0 {
			e.simplifyStep(i)
		}
	}
	for pi, p := range props {
		if out.Results[pi] == nil {
			out.Results[pi] = &Result{Kind: KindNoCE, Prop: p, Depth: opt.MaxDepth}
			e.obsResolved(KindNoCE)
		}
	}
	r := e.finish(&Result{})
	out.Stats = r.Stats
	out.Stats.Elapsed = time.Since(start)
	out.DepthStats = r.DepthStats
	return out
}
