package bmc

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// chainDesign builds K counters where only counter 0 matters for the
// property; iterative abstraction should shrink the model to it.
func chainDesign(extra int) *rtl.Module {
	m := rtl.NewModule("chain")
	c := m.Register("c0", 3, 0)
	wrap := m.EqConst(c.Q, 4)
	c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
	regs := []*rtl.Reg{c}
	for i := 0; i < extra; i++ {
		r := m.Register("junk", 6, 0)
		r.SetNext(m.Inc(r.Q))
		regs = append(regs, r)
	}
	m.Done(regs...)
	m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not())
	return m
}

func TestIterativeAbstractionProves(t *testing.T) {
	m := chainDesign(4)
	res := IterativeAbstraction(m.N, 0, Options{MaxDepth: 60, StabilityDepth: 5}, 4)
	if res.Kind() != KindProof {
		t.Fatalf("expected proof, got %v", res.Kind())
	}
	if res.Abs == nil || res.Abs.KeptLatches > 3 {
		t.Fatalf("abstraction kept too much: %v", res.Abs)
	}
	if len(res.Rounds) == 0 {
		t.Fatalf("no rounds recorded")
	}
	// Rounds must be non-increasing.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i] > res.Rounds[i-1] {
			t.Fatalf("latch reasons grew across rounds: %v", res.Rounds)
		}
	}
}

func TestIterativeAbstractionRealCE(t *testing.T) {
	// The counter hits 3 at depth 3: a real counter-example.
	m2 := rtl.NewModule("ce")
	c := m2.Register("c", 3, 0)
	c.SetNext(m2.Inc(c.Q))
	m2.Done(c)
	m2.AssertAlways("ne3", m2.EqConst(c.Q, 3).Not())
	res := IterativeAbstraction(m2.N, 0, Options{MaxDepth: 20, StabilityDepth: 5, ValidateWitness: true}, 3)
	if res.Kind() != KindCE {
		t.Fatalf("expected real CE, got %v", res.Kind())
	}
	if res.Phase1.Depth != 3 {
		t.Fatalf("CE at depth %d, want 3", res.Phase1.Depth)
	}
}

func TestIterativeAbstractionWithMemory(t *testing.T) {
	// The quicksort-P2 pattern in miniature: property ignores the memory.
	m := rtl.NewModule("mem")
	c := m.Register("c", 3, 0)
	wrap := m.EqConst(c.Q, 4)
	c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
	junk := m.Register("jc", 4, 0)
	junk.SetNext(m.Inc(junk.Q))
	mem := m.Memory("junkmem", 2, 4, aig.MemZero)
	mem.Write(m.Slice(junk.Q, 0, 2), junk.Q, aig.True)
	sink := m.Register("sink", 4, 0)
	sink.SetNext(mem.Read(m.Slice(junk.Q, 1, 3), aig.True))
	m.Done(c, junk, sink)
	m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not())
	res := IterativeAbstraction(m.N, 0, Options{MaxDepth: 60, UseEMM: true, StabilityDepth: 5}, 3)
	if res.Kind() != KindProof {
		t.Fatalf("expected proof, got %v", res.Kind())
	}
	if res.Abs.MemEnabled[0] {
		t.Fatalf("irrelevant memory must be dropped")
	}
}
