package bmc

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

func TestMinimizeClearsIrrelevantInputs(t *testing.T) {
	// The property only cares about `trigger`; `noise` is a free input
	// the SAT model may set arbitrarily.
	m := rtl.NewModule("min")
	trigger := m.InputBit("trigger")
	noise := m.Input("noise", 8)
	_ = noise
	flag := m.BitReg("flag", false)
	flag.UpdateBit(trigger, aig.True)
	m.Done(flag)
	m.AssertAlways("never", flag.Bit().Not())

	r := Check(m.N, 0, Options{MaxDepth: 6, ValidateWitness: true})
	if r.Kind != KindCE {
		t.Fatalf("expected CE")
	}
	r.Witness.Minimize(m.N, 0)
	// After minimization the witness must still replay...
	if err := r.Witness.Replay(m.N, 0); err != nil {
		t.Fatalf("minimized witness broken: %v", err)
	}
	// ...and all noise bits must be cleared everywhere.
	for f, in := range r.Witness.Inputs {
		for _, l := range noise {
			if in[l.Node()] {
				t.Fatalf("frame %d: noise bit still set after minimization", f)
			}
		}
	}
}

func TestMinimizeKeepsEssentialMemoryWords(t *testing.T) {
	// The failure needs mem[2] == 5: minimization must keep that word
	// but may drop any other pinned words.
	m := rtl.NewModule("minmem")
	mem := m.Memory("mem", 2, 3, aig.MemArbitrary)
	rd := mem.Read(m.Const(2, 2), aig.True)
	other := mem.Read(m.Input("ra", 2), aig.True)
	acc := m.Register("acc", 3, 0)
	acc.SetNext(m.OrV(acc.Q, other)) // consume the other port too
	m.Done(acc)
	m.AssertAlways("ne5", m.EqConst(rd, 5).Not())

	r := Check(m.N, 0, Options{MaxDepth: 4, UseEMM: true, ValidateWitness: true})
	if r.Kind != KindCE {
		t.Fatalf("expected CE")
	}
	r.Witness.Minimize(m.N, 0)
	if err := r.Witness.Replay(m.N, 0); err != nil {
		t.Fatalf("minimized witness broken: %v", err)
	}
	if r.Witness.MemInit[0][2] != 5 {
		t.Fatalf("essential memory word lost: %v", r.Witness.MemInit[0])
	}
}

func TestMinimizeRejectsInvalidWitness(t *testing.T) {
	m := rtl.NewModule("ok")
	x := m.InputBit("x")
	m.AssertAlways("tauto", m.N.Or(x, x.Not()))
	w := &Witness{Length: 0, Inputs: []map[aig.NodeID]bool{{x.Node(): true}}}
	if got := w.Minimize(m.N, 0); got != 0 {
		t.Fatalf("minimizing a non-witness must be a no-op")
	}
}

// TestCOIEquivalentVerdicts: BMC on the cone-of-influence reduction gives
// the same verdicts as on the full design.
func TestCOIEquivalentVerdicts(t *testing.T) {
	m := rtl.NewModule("coi")
	c := m.Register("c", 3, 0)
	wrap := m.EqConst(c.Q, 4)
	c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
	junk := m.Register("junk", 16, 0)
	junk.SetNext(m.Inc(junk.Q))
	mem := m.Memory("junkmem", 3, 8, aig.MemZero)
	mem.Write(m.Slice(junk.Q, 0, 3), m.Slice(junk.Q, 0, 8), aig.True)
	sink := m.Register("sink", 8, 0)
	sink.SetNext(mem.Read(m.Slice(junk.Q, 2, 5), aig.True))
	m.Done(c, junk, sink)
	m.AssertAlways("ne3", m.EqConst(c.Q, 3).Not()) // CE at 3
	m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not()) // provable

	for prop, want := range map[int]Kind{0: KindCE, 1: KindProof} {
		reduced, _ := aig.ExtractCone(m.N, []int{prop})
		if len(reduced.Memories) != 0 {
			t.Fatalf("junk memory must leave the cone")
		}
		if len(reduced.Latches) != 3 {
			t.Fatalf("cone kept %d latches, want 3", len(reduced.Latches))
		}
		full := Check(m.N, prop, BMC3(20))
		red := Check(reduced, 0, BMC1(20))
		if full.Kind != want || red.Kind != want {
			t.Fatalf("prop %d: full=%v reduced=%v want %v", prop, full.Kind, red.Kind, want)
		}
		if full.Kind == KindCE && full.Depth != red.Depth {
			t.Fatalf("CE depth differs: %d vs %d", full.Depth, red.Depth)
		}
	}
}
