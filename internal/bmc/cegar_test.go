package bmc

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

func TestCEGARProvesWithSmallModel(t *testing.T) {
	// Relevant mod-5 counter + lots of irrelevant state: CEGAR should
	// prove without ever refining past the counter.
	m := rtl.NewModule("c")
	c := m.Register("c", 3, 0)
	wrap := m.EqConst(c.Q, 4)
	c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
	regs := []*rtl.Reg{c}
	for i := 0; i < 5; i++ {
		j := m.Register("junk", 8, 0)
		j.SetNext(m.Inc(j.Q))
		regs = append(regs, j)
	}
	m.Done(regs...)
	m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not())
	res := CEGAR(m.N, 0, Options{MaxDepth: 40}, 10)
	if res.Final.Kind != KindProof {
		t.Fatalf("expected proof, got %v", res.Final)
	}
	if res.KeptLatches > 3 {
		t.Fatalf("CEGAR kept %d latches; the property needs only 3", res.KeptLatches)
	}
}

func TestCEGARFindsRealCE(t *testing.T) {
	m := rtl.NewModule("c")
	c := m.Register("c", 3, 0)
	c.SetNext(m.Inc(c.Q))
	m.Done(c)
	m.AssertAlways("ne5", m.EqConst(c.Q, 5).Not())
	res := CEGAR(m.N, 0, Options{MaxDepth: 20, ValidateWitness: true}, 10)
	if res.Final.Kind != KindCE || res.Final.Depth != 5 {
		t.Fatalf("expected real CE at 5, got %v", res.Final)
	}
}

func TestCEGARRefinesThroughDependencies(t *testing.T) {
	// The property reads r2; r2 depends on r1; r1 on an input. The
	// initial abstraction (support of the property) keeps only r2;
	// refinement must pull in r1 before the proof goes through.
	m := rtl.NewModule("chain")
	x := m.InputBit("x")
	r1 := m.BitReg("r1", false)
	r1.UpdateBit(aig.True, m.N.And(x, x.Not())) // always 0, via logic
	r2 := m.BitReg("r2", false)
	r2.UpdateBit(aig.True, r1.Bit())
	m.Done(r1, r2)
	m.AssertAlways("r2zero", r2.Bit().Not())
	// Pin the compile pipeline off: constant sweep would prove r1 and r2
	// constant outright, leaving no dependency chain to refine through.
	res := CEGAR(m.N, 0, Options{MaxDepth: 20, Passes: "none"}, 10)
	if res.Final.Kind != KindProof {
		t.Fatalf("expected proof, got %v", res.Final)
	}
	if res.Rounds < 2 {
		t.Fatalf("expected at least one refinement round, got %d", res.Rounds)
	}
}

func TestCEGARWithMemoryDesign(t *testing.T) {
	// The quicksort-P2-style pattern: CEGAR on an EMM design.
	m := rtl.NewModule("mem")
	c := m.Register("c", 3, 0)
	wrap := m.EqConst(c.Q, 4)
	c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
	jc := m.Register("jc", 4, 0)
	jc.SetNext(m.Inc(jc.Q))
	mem := m.Memory("junkmem", 2, 4, aig.MemZero)
	mem.Write(m.Slice(jc.Q, 0, 2), jc.Q, aig.True)
	sink := m.Register("sink", 4, 0)
	sink.SetNext(mem.Read(m.Slice(jc.Q, 1, 3), aig.True))
	m.Done(c, jc, sink)
	m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not())
	res := CEGAR(m.N, 0, Options{MaxDepth: 40, UseEMM: true}, 10)
	if res.Final.Kind != KindProof {
		t.Fatalf("expected proof, got %v", res.Final)
	}
}
