package bmc

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"emmver/internal/aig"
	"emmver/internal/obs"
	"emmver/internal/par"
	"emmver/internal/sat"
	"emmver/internal/share"
)

// CheckManyParallel verifies many reachability properties of one design
// concurrently: a pool of jobs workers (jobs <= 0 selects NumCPU) pulls
// properties off a shared queue, and each worker owns a private
// unrolling/solver engine against the shared read-only netlist. Workers
// cooperate through the forward-termination oracle: the forward check is
// property-independent and its UNSAT answer is upward-closed in depth, so
// the first worker to hit UNSAT publishes that depth and every other worker
// reaching it resolves its property instantly as a forward proof — the
// paper's "10 induction proofs in < 1 s" effect, now paid for once.
//
// Outcomes are deterministic: every per-property verdict (Kind, Depth,
// ProofSide) equals what the sequential CheckMany computes, because SAT
// answers are semantic and at most one verdict class can fire per depth.
// Only timeout placement and witness input values (which always replay) may
// vary between runs.
func CheckManyParallel(n *aig.Netlist, props []int, opt Options, jobs int) *ManyResult {
	return CheckManyParallelCtx(context.Background(), n, props, opt, jobs)
}

// CheckManyParallelCtx is CheckManyParallel under a cancellation context.
// Options.Timeout is converted into a deadline on the shared context so the
// whole fleet stops at the same wall-clock instant.
func CheckManyParallelCtx(ctx context.Context, n *aig.Netlist, props []int, opt Options, jobs int) *ManyResult {
	start := time.Now()
	out := &ManyResult{Results: make([]*Result, len(props))}
	if len(props) == 0 {
		return out
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
		opt.Timeout = 0
	}
	// Compile once before the fleet spawns: every worker engine unrolls
	// the same reduced netlist, and results are back-mapped after the
	// fan-in below.
	c := compileModel(n, props, &opt)
	n, props = c.n, c.props
	jobs = par.Jobs(jobs)
	if opt.Cube && len(props) == 1 && jobs > 1 && shareEligible(n, opt) {
		// A single property leaves the property-fleet idle; hand the whole
		// worker budget to the cube-and-conquer splitter instead.
		r := checkCubed(ctx, n, props[0], opt, jobs)
		out.Stats = r.Stats
		out.Results[0] = c.finish(r, c.srcProps[0], opt)
		if r.Kind == KindCE {
			out.MaxWitnessDepth = r.Depth
		}
		return out
	}
	if jobs > len(props) {
		jobs = len(props)
	}
	if jobs > 1 {
		opt.Log = par.SyncWriter(opt.Log)
	}

	// The sharing bus connects the workers' solvers when the run is
	// eligible (no PBA tracing, no environment constraints): lemmas over
	// frame values and EMM comparators transfer between workers even when
	// they are solving different properties, because the shared clause
	// database is property-independent. Forward and backward windows get
	// separate buses (different execution sets).
	var fwd, bwd *share.Bus
	if opt.Share && jobs > 1 && shareEligible(n, opt) {
		fwd = share.NewBus(jobs, ringCapacity(opt))
		if opt.Proofs {
			bwd = share.NewBus(jobs, ringCapacity(opt))
		}
	}

	// Reusing one engine per worker across properties is a conservative
	// extension only when the design asserts no environment constraints:
	// everything else the engine adds (Tseitin definitions, EMM clauses,
	// loop-free-path structure) is total and property-independent, whereas
	// asserted constraint units would leak between properties if the
	// per-property runs were meant to differ. No design in this repo hits
	// the fallback, but correctness must not depend on that.
	reuse := len(n.Constraints) == 0

	engines := make([]*engine, jobs)
	workerStats := make([]Stats, jobs)
	var fwdUnsat atomic.Int64
	fwdUnsat.Store(math.MaxInt64)

	par.ForEachObs(ctx, opt.Obs, "bmc.prop", jobs, len(props), func(ctx context.Context, w, pi int) {
		e := engines[w]
		if e == nil || !reuse {
			if e != nil {
				workerStats[w].Add(e.snapshotStats())
			}
			// Each worker's engine carries a derived observer tagged with
			// the worker index, so every span it emits (depth steps, solver
			// calls) is attributable to its worker goroutine in the journal.
			wopt := opt
			wopt.Obs = opt.Obs.With(obs.F("worker", w))
			e = newEngine(ctx, n, props[pi], wopt)
			attachShare(e, fwd, bwd, w)
			engines[w] = e
		}
		out.Results[pi] = e.runProp(props[pi], &fwdUnsat)
	})

	for w, e := range engines {
		if e != nil {
			workerStats[w].Add(e.snapshotStats())
		}
		out.Stats.Add(workerStats[w])
	}
	addBusStats(&out.Stats, fwd, bwd)
	if fwd != nil {
		publishCoopObs(opt.Obs, &out.Stats)
	}
	out.Stats.Elapsed = time.Since(start)
	for pi, p := range props {
		r := out.Results[pi]
		if r == nil {
			// The run was cancelled before this property was dispensed.
			r = &Result{Kind: KindTimeout, Prop: p, Depth: 0}
			out.Results[pi] = r
		}
		if r.Kind == KindCE && r.Depth > out.MaxWitnessDepth {
			out.MaxWitnessDepth = r.Depth
		}
	}
	for pi := range out.Results {
		out.Results[pi] = c.finish(out.Results[pi], c.srcProps[pi], opt)
	}
	return out
}

// runProp runs the sequential per-depth check order for property p on e,
// consulting the fleet-shared forward-termination oracle. The result
// carries this property's wall time; the solver-level counters are
// aggregated per worker instead (ManyResult.Stats).
func (e *engine) runProp(p int, fwdUnsat *atomic.Int64) *Result {
	t0 := time.Now()
	r := e.runPropLoop(p, fwdUnsat)
	r.Stats.Elapsed = time.Since(t0)
	return r
}

func (e *engine) runPropLoop(p int, fwdUnsat *atomic.Int64) *Result {
	e.prop = p
	for i := 0; i <= e.opt.MaxDepth; i++ {
		if e.timedOut() {
			return &Result{Kind: KindTimeout, Prop: p, Depth: max(i-1, 0)}
		}
		sp := e.obs.Span("bmc.depth", obs.F("depth", i), obs.F("prop", p))
		e.prepareDepth(i)
		r := e.propDepthStep(p, i, fwdUnsat)
		e.publishObs(i)
		sp.End(obs.F("emm_clauses", e.emmClausesCum()),
			obs.F("clauses", e.fs.NumClauses()),
			obs.F("decided", r != nil))
		if r != nil {
			e.obsResolved(r.Kind)
			return r
		}
		e.simplifyStep(i)
	}
	e.obsResolved(KindNoCE)
	return &Result{Kind: KindNoCE, Prop: p, Depth: e.opt.MaxDepth}
}

// propDepthStep runs the depth-i check order for property p against the
// fleet-shared forward oracle, returning a decisive Result or nil.
func (e *engine) propDepthStep(p, i int, fwdUnsat *atomic.Int64) *Result {
	if e.opt.Proofs {
		switch e.oracleForwardCheck(i, fwdUnsat) {
		case sat.Unsat:
			e.logf("prop %d: forward proof at depth %d", p, i)
			return &Result{Kind: KindProof, Prop: p, Depth: i, ProofSide: "forward"}
		case sat.Unknown:
			return &Result{Kind: KindTimeout, Prop: p, Depth: i}
		}
		switch e.backwardCheck(p, i) {
		case sat.Unsat:
			e.logf("prop %d: backward proof at depth %d", p, i)
			return &Result{Kind: KindProof, Prop: p, Depth: i, ProofSide: "backward"}
		case sat.Unknown:
			return &Result{Kind: KindTimeout, Prop: p, Depth: i}
		}
	}
	switch e.ceCheck(p, i) {
	case sat.Sat:
		w := e.extractWitness(i)
		e.validateWitness(w, p)
		e.logf("prop %d: counter-example at depth %d", p, i)
		return &Result{Kind: KindCE, Prop: p, Depth: i, Witness: w}
	case sat.Unknown:
		return &Result{Kind: KindTimeout, Prop: p, Depth: i}
	}
	return nil
}

// oracleForwardCheck answers the forward termination check at depth i,
// short-circuiting through the shared oracle and the per-engine SAT memo.
// A worker can only still be running at depth i if its depths < i were all
// SAT, so the first published UNSAT depth is the true first-UNSAT depth and
// any worker reaching it may resolve without a solver call; conversely
// depths below it are known SAT.
func (e *engine) oracleForwardCheck(i int, fwdUnsat *atomic.Int64) sat.Status {
	if fwdUnsat != nil && int64(i) >= fwdUnsat.Load() {
		return sat.Unsat
	}
	if i <= e.fwdSatDepth {
		return sat.Sat
	}
	st := e.forwardCheck(i)
	switch st {
	case sat.Sat:
		e.fwdSatDepth = i
	case sat.Unsat:
		if fwdUnsat != nil {
			casMin(fwdUnsat, int64(i))
		}
	}
	return st
}

// casMin lowers a to v unless a already holds something smaller.
func casMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
