package bmc

import (
	"io"
	"time"

	"emmver/internal/obs"
	"emmver/internal/sat"
)

// The builders below are value-receiver copies: each returns a new Options
// with one knob turned, so call chains read like configuration sentences —
//
//	opt := bmc.Options{MaxDepth: 40, UseEMM: true}.
//		WithTimeout(30 * time.Second).
//		WithJobs(8).
//		WithTrace(journal)
//
// Every builder is exactly equivalent to setting the corresponding struct
// field directly; they exist so callers composing Options incrementally
// (facades, CLIs, experiment drivers) never mutate a shared value.
//
// Deprecated: for everything a remote caller could ask for — engine,
// depth, timeout, passes, restart, the cooperative-solving tunables — new
// code should build an internal/spec.Spec (a plain serializable struct)
// and convert once through Spec.Options(), the single schema the CLIs,
// the emmserved job server, and the verdict cache all share. The builders
// remain as thin aliases so existing callers and examples keep compiling;
// only the knobs a Spec cannot express (observability handles, witness
// validation, ablation switches) still warrant direct field access.

// WithTimeout returns a copy of o whose wall-clock budget is d.
// Equivalent field: Options.Timeout.
func (o Options) WithTimeout(d time.Duration) Options {
	o.Timeout = d
	return o
}

// WithJobs returns a copy of o whose fan-out worker count is n (0 selects
// runtime.NumCPU, 1 forces the sequential shared-unrolling engine).
// Equivalent field: Options.Jobs.
func (o Options) WithJobs(n int) Options {
	o.Jobs = n
	return o
}

// WithTrace returns a copy of o observed through a fresh registry plus the
// given trace sink: spans and points flow to sink, metrics accumulate in
// the new registry (reachable via o.Obs.Registry()). A nil sink still
// attaches the metrics registry. Equivalent field: Options.Obs set to
// obs.New(obs.NewRegistry(), sink).
func (o Options) WithTrace(sink obs.Sink) Options {
	o.Obs = obs.New(obs.NewRegistry(), sink)
	return o
}

// WithObserver returns a copy of o observed by ob, for callers that manage
// their own registry/sink pairing (e.g. several runs aggregating into one
// registry). Equivalent field: Options.Obs.
func (o Options) WithObserver(ob *obs.Observer) Options {
	o.Obs = ob
	return o
}

// WithLog returns a copy of o that narrates per-depth outcomes to w.
// Equivalent field: Options.Log.
func (o Options) WithLog(w io.Writer) Options {
	o.Log = w
	return o
}

// WithRestart returns a copy of o whose solvers restart per m
// (sat.RestartEMA or sat.RestartLuby). Equivalent field: Options.Restart.
func (o Options) WithRestart(m sat.RestartMode) Options {
	o.Restart = m
	return o
}

// WithSimplify returns a copy of o with the between-depth inprocessing
// pass switched on or off. Equivalent field: Options.NoSimplify = !on.
func (o Options) WithSimplify(on bool) Options {
	o.NoSimplify = !on
	return o
}

// WithShare returns a copy of o with the fleet's learnt-clause sharing bus
// switched on or off. Equivalent field: Options.Share.
func (o Options) WithShare(on bool) Options {
	o.Share = on
	return o
}

// WithCube returns a copy of o with EMM-aware cube-and-conquer switched on
// or off. Equivalent field: Options.Cube.
func (o Options) WithCube(on bool) Options {
	o.Cube = on
	return o
}

// WithLazy returns a copy of o with demand-driven EMM axiom instantiation
// on the counter-example path switched on or off. Equivalent field:
// Options.LazyEMM.
func (o Options) WithLazy(on bool) Options {
	o.LazyEMM = on
	return o
}

// WithShareCap returns a copy of o whose per-worker clause ring holds n
// entries (0 restores the default 4096). Equivalent field: Options.ShareCap.
func (o Options) WithShareCap(n int) Options {
	o.ShareCap = n
	return o
}

// WithShareFilter returns a copy of o whose solvers export learnt clauses
// of glue <= lbd (or binary) and at most size literals; 0 keeps the
// respective default (6 / 30). Equivalent fields: Options.ShareLBD,
// Options.ShareSize.
func (o Options) WithShareFilter(lbd, size int) Options {
	o.ShareLBD, o.ShareSize = lbd, size
	return o
}

// WithPasses returns a copy of o whose static compile pipeline is spec:
// "" for the default pipeline, pass.SpecNone ("none") to disable it, or an
// explicit comma-separated pass list such as "coi,dedup". Equivalent
// field: Options.Passes.
func (o Options) WithPasses(spec string) Options {
	o.Passes = spec
	return o
}
