package bmc

import "emmver/internal/aig"

// Minimize greedily simplifies a counter-example in place: input bits are
// cleared to 0, unconstrained initial-latch values are cleared, and pinned
// arbitrary-init memory words are dropped, as long as the concrete replay
// still violates the property. It returns the number of simplifications
// applied. Minimized witnesses are much easier to read in waveforms: only
// the signals that actually drive the failure stay asserted.
func (w *Witness) Minimize(n *aig.Netlist, prop int) int {
	stillFails := func() bool { return w.Replay(n, prop) == nil }
	if !stillFails() {
		return 0 // not a valid witness; leave untouched
	}
	changed := 0
	// Clear asserted inputs frame by frame.
	for f := range w.Inputs {
		for id, v := range w.Inputs[f] {
			if !v {
				continue
			}
			w.Inputs[f][id] = false
			if stillFails() {
				changed++
			} else {
				w.Inputs[f][id] = true
			}
		}
	}
	// Clear unconstrained initial latch values.
	for id, v := range w.InitLatches {
		if !v {
			continue
		}
		w.InitLatches[id] = false
		if stillFails() {
			changed++
		} else {
			w.InitLatches[id] = true
		}
	}
	// Drop pinned memory words (the replay then sees 0 there).
	for mi := range w.MemInit {
		for addr, word := range w.MemInit[mi] {
			if word == 0 {
				continue
			}
			delete(w.MemInit[mi], addr)
			if stillFails() {
				changed++
			} else {
				w.MemInit[mi][addr] = word
			}
		}
	}
	return changed
}
