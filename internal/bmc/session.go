// The Session layer: incremental solver lifecycles. It owns what the
// solvers *do* between depths — solver construction and configuration,
// interrupt/deadline arming (including the portfolio lanes' re-arming),
// the between-depth inprocessing schedule, and statistics aggregation
// across however many solvers the Model built. The Model layer (model.go)
// decides what formula each solver holds; the Strategy layer (strategy.go)
// decides which queries to issue.

package bmc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"emmver/internal/core"
	"emmver/internal/obs"
	"emmver/internal/sat"
)

// newSolver creates one solver configured from the session-level options:
// restart strategy, clause-export filter, observability attachment, and
// the engine's interrupt budget (wall-clock deadline + run context).
func (e *engine) newSolver() *sat.Solver {
	s := sat.New()
	s.Restart = e.opt.Restart
	s.ShareLBD, s.ShareMaxLits = e.opt.ShareLBD, e.opt.ShareSize
	s.AttachObs(e.opt.Obs)
	e.installInterrupt(s)
	return s
}

// installInterrupt points s's interrupt hook at the engine-level budget:
// the wall-clock deadline and the run context.
func (e *engine) installInterrupt(s *sat.Solver) {
	if e.deadline.IsZero() && e.ctx.Done() == nil {
		s.Interrupt = nil
		return
	}
	s.Interrupt = e.timedOut
}

// armSolver retargets s's interrupt hook at a portfolio-lane context for
// the duration of one lane, returning the restore function.
func (e *engine) armSolver(s *sat.Solver, ctx context.Context) func() {
	s.Interrupt = func() bool { return ctx.Err() != nil || e.deadlinePassed() }
	return func() { e.installInterrupt(s) }
}

func (e *engine) deadlinePassed() bool {
	return !e.deadline.IsZero() && time.Now().After(e.deadline)
}

func (e *engine) timedOut() bool {
	return e.ctx.Err() != nil || e.deadlinePassed()
}

// solve wraps a SAT call with accounting.
func (e *engine) solve(s *sat.Solver, assumps ...sat.Lit) sat.Status {
	e.solveCalls.Add(1)
	return s.Solve(assumps...)
}

// lazySolver returns the dedicated CE-path solver when the lazy proof
// split is active, nil otherwise (cs then aliases fs).
func (e *engine) lazySolver() *sat.Solver {
	if e.cs != e.fs {
		return e.cs
	}
	return nil
}

// simplifyMinConflicts gates between-depth inprocessing on search effort: a
// pass only runs once the solvers have logged this many new conflicts since
// the previous pass, plus one conflict per simplifyClausesPerConfl clauses
// (a pass rebuilds the occurrence lists, so its cost grows with the
// formula while its payoff grows with the search). Vars rather than consts
// so the equivalence tests can force every pass on designs too small to
// clear the bar.
var (
	simplifyMinConflicts    int64 = 500
	simplifyClausesPerConfl       = int64(50)
)

// simplifyStep runs the between-depth inprocessing pass on both solvers
// after depth i failed to decide the property. The frame frontier, EMM
// interface signals, and every strash/memo-cached literal are frozen by the
// unroller and generator, so elimination only consumes depth-local
// auxiliaries that no later depth can mention. Skipped under NoSimplify and
// under PBA (clause rewriting would invalidate the proof log); the solver's
// ErrTracingActive guard backstops the latter. Also skipped until the
// solvers have accumulated simplifyMinConflicts of new search effort since
// the last pass: on easy per-depth instances the occurrence-list rebuild
// costs more than the search it would save.
func (e *engine) simplifyStep(i int) {
	if e.opt.NoSimplify || e.opt.PBA {
		return
	}
	confl := e.fs.Stats().Conflicts
	clauses := int64(e.fs.NumClauses())
	for _, o := range []*sat.Solver{e.bs, e.lazySolver()} {
		if o != nil {
			confl += o.Stats().Conflicts
			clauses += int64(o.NumClauses())
		}
	}
	need := simplifyMinConflicts
	if simplifyClausesPerConfl > 0 {
		need += clauses / simplifyClausesPerConfl
	}
	if confl-e.lastSimpConfl < need {
		return
	}
	e.lastSimpConfl = confl
	sp := e.obs.Span("bmc.simplify", obs.F("depth", i), obs.F("prop", e.prop))
	for _, s := range []*sat.Solver{e.fs, e.bs, e.lazySolver()} {
		if s == nil {
			continue
		}
		if err := s.Simplify(); err != nil && !errors.Is(err, sat.ErrTracingActive) {
			panic(fmt.Sprintf("bmc: inprocessing failed: %v", err))
		}
	}
	st := e.fs.Stats()
	sub, str, elim := st.SubsumedClauses, st.StrengthenedClauses, st.EliminatedVars
	for _, o := range []*sat.Solver{e.bs, e.lazySolver()} {
		if o != nil {
			ost := o.Stats()
			sub += ost.SubsumedClauses
			str += ost.StrengthenedClauses
			elim += ost.EliminatedVars
		}
	}
	sp.End(obs.F("subsumed", sub), obs.F("strengthened", str),
		obs.F("eliminated_vars", elim))
}

// snapshotStats materializes the engine's cumulative statistics.
func (e *engine) snapshotStats() Stats {
	s := e.stats
	s.SolveCalls = int(e.solveCalls.Load())
	s.Elapsed = time.Since(e.start)
	s.Clauses = e.fs.NumClauses()
	s.Vars = e.fs.NumVars()
	fst := e.fs.Stats()
	s.Conflicts = fst.Conflicts
	s.Restarts = fst.Restarts
	s.RestartsLuby = fst.RestartsLuby
	s.RestartsEMA = fst.RestartsEMA
	s.Simplifies = fst.Simplifies
	s.SubsumedClauses = fst.SubsumedClauses
	s.StrengthenedClauses = fst.StrengthenedClauses
	s.EliminatedVars = fst.EliminatedVars
	for _, o := range []*sat.Solver{e.bs, e.lazySolver()} {
		if o == nil {
			continue
		}
		s.Clauses += o.NumClauses()
		s.Vars += o.NumVars()
		ost := o.Stats()
		s.Conflicts += ost.Conflicts
		s.Restarts += ost.Restarts
		s.RestartsLuby += ost.RestartsLuby
		s.RestartsEMA += ost.RestartsEMA
		s.Simplifies += ost.Simplifies
		s.SubsumedClauses += ost.SubsumedClauses
		s.StrengthenedClauses += ost.StrengthenedClauses
		s.EliminatedVars += ost.EliminatedVars
	}
	// Under LazyEMM the EMM tally reports the CE path's generator (cg ==
	// fg unless the proof split is active): that is the constraint set the
	// lazy mode reduces, and the figure the A/B harness compares against
	// an eager run.
	if e.cg != nil {
		s.EMM = e.cg.Sizes()
	}
	s.LazyRounds = e.lazyRounds
	s.LazySpurious = e.lazySpurious
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.PeakHeapMB = float64(ms.HeapAlloc) / (1 << 20)
	return s
}

// depthMark snapshots the cumulative counters at the end of a depth, so the
// next depth's DepthStat can be computed as a delta.
type depthMark struct {
	clauses, vars, emmClauses, strashHits, memoHits, solves int
	props, confl, decs                                      int64
	at                                                      time.Time
}

// depthCumulative reads the counters DepthStat deltas are computed from.
func (e *engine) depthCumulative() depthMark {
	m := depthMark{at: time.Now()}
	m.clauses = e.fs.NumClauses()
	m.vars = e.fs.NumVars()
	m.strashHits = e.fu.StrashHits
	fst := e.fs.Stats()
	m.props, m.confl, m.decs = fst.Propagations, fst.Conflicts, fst.Decisions
	if e.bs != nil {
		m.clauses += e.bs.NumClauses()
		m.vars += e.bs.NumVars()
		m.strashHits += e.bu.StrashHits
		bst := e.bs.Stats()
		m.props += bst.Propagations
		m.confl += bst.Conflicts
		m.decs += bst.Decisions
	}
	gens := []*core.Generator{e.fg, e.bg}
	if e.cg != e.fg {
		gens = append(gens, e.cg)
	}
	for _, g := range gens {
		if g != nil {
			sz := g.Sizes()
			m.emmClauses += sz.Clauses() + sz.InitClauses
			m.memoHits += sz.CompMemoHits
		}
	}
	if e.cs != e.fs {
		m.clauses += e.cs.NumClauses()
		m.vars += e.cs.NumVars()
		m.strashHits += e.cu.StrashHits
		cst := e.cs.Stats()
		m.props += cst.Propagations
		m.confl += cst.Conflicts
		m.decs += cst.Decisions
	}
	m.solves = int(e.solveCalls.Load())
	return m
}

// collectDepthStat appends the delta since the previous depth.
func (e *engine) collectDepthStat(i int) {
	cur := e.depthCumulative()
	prev := e.mark
	if prev.at.IsZero() {
		prev.at = e.start
	}
	e.depthStats = append(e.depthStats, DepthStat{
		Depth:        i,
		Clauses:      cur.clauses - prev.clauses,
		Vars:         cur.vars - prev.vars,
		EMMClauses:   cur.emmClauses - prev.emmClauses,
		StrashHits:   cur.strashHits - prev.strashHits,
		CompMemoHits: cur.memoHits - prev.memoHits,
		Propagations: cur.props - prev.props,
		Conflicts:    cur.confl - prev.confl,
		Decisions:    cur.decs - prev.decs,
		Solves:       cur.solves - prev.solves,
		Elapsed:      cur.at.Sub(prev.at),
	})
	e.mark = cur
}
