package bmc

import (
	"reflect"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// counterNetlist is a closed design (no primary inputs) whose property
// "count != limit" fails exactly at depth == limit, with a unique
// counter-example: every witness frame is forced, so a warm-started run
// must reproduce the cold run's witness bit for bit.
func counterNetlist(width int, limit uint64) *aig.Netlist {
	m := rtl.NewModule("warm-counter")
	c := m.Register("count", width, 0)
	c.SetNext(m.Inc(c.Q))
	m.AssertAlways("not-limit", m.EqConst(c.Q, limit).Not())
	m.Done(c)
	return m.N
}

// memCENetlist embeds a memory so the warm start also exercises the EMM
// constraint build-up below the start depth: an arbitrary-init memory is
// read at a counter-driven address, and the property claims the read word
// is never all-ones once the counter passed a threshold — falsified by
// choosing all-ones initial contents at the right address.
func memCENetlist() *aig.Netlist {
	m := rtl.NewModule("warm-mem")
	mem := m.Memory("mem", 3, 4, aig.MemArbitrary)
	c := m.Register("count", 3, 0)
	c.SetNext(m.Inc(c.Q))
	rd := mem.Read(c.Q, aig.True)
	allOnes := m.EqConst(rd, 15)
	past := m.EqConst(c.Q, 5)
	m.AssertAlways("no-ones-at-5", m.N.And(allOnes, past).Not())
	m.Done(c)
	return m.N
}

func checkWarmParity(t *testing.T, n *aig.Netlist, opt Options, start int, wantFrames bool) {
	t.Helper()
	cold := Check(n, 0, opt)
	warm := opt
	warm.StartDepth = start
	wr := Check(n, 0, warm)
	if cold.Kind != wr.Kind || cold.Depth != wr.Depth {
		t.Fatalf("verdict parity broken: cold %s depth=%d, warm(start=%d) %s depth=%d",
			cold.Kind, cold.Depth, start, wr.Kind, wr.Depth)
	}
	if (cold.Witness == nil) != (wr.Witness == nil) {
		t.Fatalf("witness presence differs: cold=%v warm=%v", cold.Witness != nil, wr.Witness != nil)
	}
	if cold.Witness == nil {
		return
	}
	if cold.Witness.Length != wr.Witness.Length {
		t.Fatalf("witness length differs: cold=%d warm=%d", cold.Witness.Length, wr.Witness.Length)
	}
	if wantFrames && !reflect.DeepEqual(cold.Witness, wr.Witness) {
		t.Fatalf("witness frames differ:\n cold: %+v\n warm: %+v", cold.Witness, wr.Witness)
	}
	// Whatever the frames, both witnesses must replay on the concrete
	// design.
	for name, w := range map[string]*Witness{"cold": cold.Witness, "warm": wr.Witness} {
		if err := w.Replay(n, 0); err != nil {
			t.Fatalf("%s witness does not replay: %v", name, err)
		}
	}
}

// A warm-started falsification run must report the identical verdict,
// depth, and (on this fully forced design) identical witness frames as a
// cold run.
func TestWarmStartIdenticalVerdictAndWitness(t *testing.T) {
	n := counterNetlist(4, 6)
	for _, opt := range []Options{BMC1(12), BMC2(12)} {
		for _, start := range []int{1, 3, 6} {
			checkWarmParity(t, n, opt, start, true)
		}
	}
}

// Warm start over an EMM design: the CE sits at depth 5; starting the
// checks at 3 must find the same violation depth and a valid witness.
func TestWarmStartEMMCounterExample(t *testing.T) {
	n := memCENetlist()
	opt := BMC2(10)
	opt.ValidateWitness = true
	checkWarmParity(t, n, opt, 3, false)
	// Warm-starting exactly at the CE depth still finds it.
	checkWarmParity(t, n, opt, 5, false)
}

// A valid property stays NO_CE under warm start, and a provable one is
// still proved: skipping shallow checks may only defer where the proof
// fires — to the warm frontier at the latest — never change the verdict.
func TestWarmStartNoCEAndProofParity(t *testing.T) {
	// Valid shared-address read-consistency shape (growth): NO_CE.
	m := rtl.NewModule("warm-valid")
	mem := m.Memory("mem", 3, 4, aig.MemArbitrary)
	addr := m.Input("a", 3)
	mem.Write(addr, m.Input("wd", 4), m.InputBit("we"))
	re0, re1 := m.InputBit("re0"), m.InputBit("re1")
	rd0 := mem.Read(addr, re0)
	rd1 := mem.Read(addr, re1)
	m.AssertAlways("consistent", m.N.Implies(m.N.And(re0, re1), m.Eq(rd0, rd1)))
	m.Done()
	checkWarmParity(t, m.N, BMC2(8), 4, false)

	// Closed counter that saturates at 9: the bound is inductive, so the
	// cold proof fires at depth 1 and the warm run defers it to its start
	// depth — the earliest depth it is allowed to check.
	p := rtl.NewModule("warm-proof")
	c := p.Register("count", 4, 0)
	sat9 := p.EqConst(c.Q, 9)
	c.SetNext(p.MuxV(sat9, c.Q, p.Inc(c.Q)))
	p.AssertAlways("bounded", p.Ule(c.Q, p.Const(4, 9)))
	p.Done(c)
	cold := Check(p.N, 0, BMC1(20))
	warm := BMC1(20)
	warm.StartDepth = 3
	wr := Check(p.N, 0, warm)
	if cold.Kind != KindProof || wr.Kind != KindProof {
		t.Fatalf("expected proofs, got cold=%s warm=%s", cold.Kind, wr.Kind)
	}
	wantDepth := cold.Depth
	if warm.StartDepth > wantDepth {
		wantDepth = warm.StartDepth
	}
	if wr.Depth != wantDepth {
		t.Fatalf("warm proof at depth %d, want %d (cold %d, start %d)",
			wr.Depth, wantDepth, cold.Depth, warm.StartDepth)
	}
}

// k-induction under warm start, falsifiable side: StartDepth defers the
// base case, which must still land on the cold run's counter-example with
// a replaying witness (the proof side is covered by TestKIndWarmStart).
func TestWarmStartKIndBaseCase(t *testing.T) {
	n := memCENetlist()
	opt := KInd(10)
	opt.ValidateWitness = true
	checkWarmParity(t, n, opt, 3, false)
	checkWarmParity(t, n, opt, 5, false)
}

// The cube-and-conquer path honors StartDepth too.
func TestWarmStartCubed(t *testing.T) {
	n := memCENetlist()
	opt := BMC2(10)
	opt.Jobs = 2
	opt.Cube = true
	cold := Check(n, 0, opt)
	warm := opt
	warm.StartDepth = 3
	wr := Check(n, 0, warm)
	if cold.Kind != wr.Kind || cold.Depth != wr.Depth {
		t.Fatalf("cubed warm start parity: cold %s@%d warm %s@%d", cold.Kind, cold.Depth, wr.Kind, wr.Depth)
	}
}
