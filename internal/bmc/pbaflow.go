package bmc

import (
	"context"
	"time"

	"emmver/internal/aig"
	"emmver/internal/obs"
	"emmver/internal/pba"
)

// PBAResult is the outcome of the two-phase prove-with-abstraction flow
// used by Table 2: first collect a stable latch-reason set on the concrete
// model, then prove the property on the reduced model.
type PBAResult struct {
	// Phase1 is the concrete-model run that produced the abstraction (or
	// found a counter-example / timed out).
	Phase1 *Result
	// Abs is the reduced model (nil if phase 1 did not reach stability).
	Abs *pba.Abstraction
	// AbstractionTime is the wall-clock cost of phase 1.
	AbstractionTime time.Duration
	// Proof is the reduced-model run (nil if skipped).
	Proof *Result
}

// Kind summarizes the overall outcome.
func (r *PBAResult) Kind() Kind {
	if r.Phase1.Kind == KindCE || r.Phase1.Kind == KindTimeout {
		return r.Phase1.Kind
	}
	if r.Proof != nil {
		return r.Proof.Kind
	}
	return r.Phase1.Kind
}

// ProveWithPBA runs the §4.3 flow for one property: BMC with proof-based
// abstraction on the concrete model until the latch-reason set is stable
// for opt.StabilityDepth depths, then a full proof attempt (same EMM
// setting) on the abstract model. Counter-examples found in phase 1 are
// real (the model is concrete) and end the flow.
func ProveWithPBA(n *aig.Netlist, prop int, opt Options) *PBAResult {
	return ProveWithPBACtx(context.Background(), n, prop, opt)
}

// ProveWithPBACtx is ProveWithPBA under a cancellation context: ctx spans
// both phases, so cancelling it stops whichever phase is running. Each
// phase is wrapped in a "pba.phase" trace span carrying the phase name and
// its verdict.
func ProveWithPBACtx(ctx context.Context, n *aig.Netlist, prop int, opt Options) *PBAResult {
	p1opt := opt
	p1opt.PBA = true
	p1opt.Proofs = false // phase 1 only hunts CEs and collects reasons
	p1opt.StopAtStable = true
	if p1opt.StabilityDepth <= 0 {
		p1opt.StabilityDepth = 10
	}
	t0 := time.Now()
	sp := opt.Obs.Span("pba.phase", obs.F("phase", "abstract"), obs.F("prop", prop))
	phase1 := CheckCtx(ctx, n, prop, p1opt)
	res := &PBAResult{Phase1: phase1, AbstractionTime: time.Since(t0)}
	sp.End(obs.F("kind", phase1.Kind.String()),
		obs.F("depth", phase1.Depth),
		obs.F("lr", phase1.Tracker.Size()))
	if phase1.Kind != KindStable && phase1.Kind != KindNoCE {
		return res
	}
	res.Abs = phase1.Tracker.Abstract(n)

	p2opt := opt
	p2opt.PBA = false
	p2opt.Proofs = true
	p2opt.Abs = res.Abs
	p2opt.ValidateWitness = false // abstract-model traces may be spurious
	if opt.Timeout > 0 {
		// Give phase 2 whatever budget remains.
		p2opt.Timeout = opt.Timeout - res.AbstractionTime
		if p2opt.Timeout <= 0 {
			res.Proof = &Result{Kind: KindTimeout, Prop: prop}
			return res
		}
	}
	sp = opt.Obs.Span("pba.phase", obs.F("phase", "prove"), obs.F("prop", prop))
	res.Proof = CheckCtx(ctx, n, prop, p2opt)
	sp.End(obs.F("kind", res.Proof.Kind.String()), obs.F("depth", res.Proof.Depth))
	if res.Proof.Kind == KindCE {
		// A counter-example on the reduced model may be spurious (the
		// abstraction only preserves correctness up to the stability
		// depth). Fall back to the concrete model, as iterative
		// abstraction would.
		p3opt := opt
		p3opt.PBA = false
		p3opt.Proofs = true
		sp = opt.Obs.Span("pba.phase", obs.F("phase", "concrete-fallback"), obs.F("prop", prop))
		res.Proof = CheckCtx(ctx, n, prop, p3opt)
		sp.End(obs.F("kind", res.Proof.Kind.String()), obs.F("depth", res.Proof.Depth))
	}
	return res
}
