package bmc

import (
	"context"
	"strings"
	"testing"

	"emmver/internal/designs"
	"emmver/internal/expmem"
	"emmver/internal/rtl"
)

// The compile-pipeline equivalence suite: on the Table 1/Table 2 designs,
// every verdict must be identical with the static pass pipeline off, fully
// on, and under every individual pass. Counter-example depths are semantic
// (the shortest violation) and must match exactly; proof depths may only
// move EARLIER with passes on, because constant sweeping and cone
// reduction strengthen induction (fewer free latches in the window) but
// never weaken it. Every witness found on a compiled netlist must replay
// cleanly on the ORIGINAL netlist — that is the back-mapping contract.

// passSpecs is every pass combination the suite exercises, including
// all-off and the default full pipeline.
var passSpecs = []string{
	"none",
	"coi",
	"sweep",
	"ports",
	"dedup",
	"coi,sweep",
	"coi,ports",
	"sweep,ports,dedup",
	"coi,sweep,ports,dedup",
	"", // default spec
}

func assertPassEquiv(t *testing.T, name string, run func(opt Options) *Result, opt Options) {
	t.Helper()
	base := opt
	base.Passes = "none"
	off := run(base)
	for _, spec := range passSpecs[1:] {
		o := opt
		o.Passes = spec
		on := run(o)
		if on.Kind != off.Kind {
			t.Errorf("%s [passes=%q]: verdict %v vs %v with passes off", name, spec, on, off)
			continue
		}
		switch on.Kind {
		case KindCE, KindNoCE:
			if on.Depth != off.Depth {
				t.Errorf("%s [passes=%q]: depth %d vs %d with passes off", name, spec, on.Depth, off.Depth)
			}
		case KindProof:
			if on.Depth > off.Depth {
				t.Errorf("%s [passes=%q]: proof depth %d LATER than passes-off %d", name, spec, on.Depth, off.Depth)
			}
		}
		if (on.Witness == nil) != (off.Witness == nil) {
			t.Errorf("%s [passes=%q]: witness presence differs", name, spec)
		}
	}
}

func TestPassEquivalenceQuickSort(t *testing.T) {
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	n := q.Netlist()
	for _, tc := range []struct {
		name string
		prop int
		opt  Options
	}{
		{"bmc2-p1", q.P1Index, BMC2(8)},
		{"bmc3-p2", q.P2Index, BMC3(14)},
	} {
		tc.opt.ValidateWitness = true
		assertPassEquiv(t, "quicksort/"+tc.name, func(opt Options) *Result {
			return Check(n, tc.prop, opt)
		}, tc.opt)
	}
}

func TestPassEquivalenceImageFilter(t *testing.T) {
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 8})
	n := f.Netlist()
	for _, prop := range []int{0, 7} {
		opt := BMC2(3*4 + 10)
		opt.ValidateWitness = true
		assertPassEquiv(t, "filter", func(opt Options) *Result {
			return Check(n, prop, opt)
		}, opt)
	}
}

func TestPassEquivalenceLookup(t *testing.T) {
	l := designs.NewLookup(designs.LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3})
	n := l.Netlist()
	assertPassEquiv(t, "lookup/inv", func(opt Options) *Result {
		return Check(n, l.InvariantIndex, opt)
	}, BMC3(12))
}

func TestPassEquivalenceBMC1Explicit(t *testing.T) {
	// The Explicit Modeling baseline: memories expanded to latches BEFORE
	// verification; the pipeline then runs on the expanded netlist.
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 4})
	exp, _, err := expmem.Expand(f.Netlist())
	if err != nil {
		t.Fatal(err)
	}
	opt := BMC1(3*4 + 10)
	opt.ValidateWitness = true
	assertPassEquiv(t, "filter/bmc1-explicit", func(opt Options) *Result {
		return Check(exp, 0, opt)
	}, opt)
}

func TestPassEquivalenceCheckMany(t *testing.T) {
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 8})
	n := f.Netlist()
	props := make([]int, len(n.Props))
	for pi := range props {
		props[pi] = pi
	}
	opt := BMC2(3*4 + 10)
	opt.ValidateWitness = true
	off := CheckMany(n, props, opt.WithPasses("none"))
	for _, spec := range []string{"", "coi,sweep", "ports"} {
		on := CheckMany(n, props, opt.WithPasses(spec))
		for pi := range props {
			or, nr := off.Results[pi], on.Results[pi]
			if or.Kind != nr.Kind || or.Depth != nr.Depth {
				t.Errorf("prop %d [passes=%q]: %v vs %v with passes off", pi, spec, nr, or)
			}
			if nr.Prop != pi {
				t.Errorf("prop %d [passes=%q]: result Prop=%d not back-mapped", pi, spec, nr.Prop)
			}
		}
	}
	par := CheckManyParallel(n, props, opt, 2)
	for pi := range props {
		or, nr := off.Results[pi], par.Results[pi]
		if or.Kind != nr.Kind || or.Depth != nr.Depth {
			t.Errorf("prop %d [parallel]: %v vs %v with passes off", pi, nr, or)
		}
	}
}

// TestPassWitnessReplaysOnSource is the back-mapping contract stated
// directly: a SAT result found on the compiled netlist must replay on the
// source netlist under every pass combination, via the public Replay API
// (ValidateWitness already asserts this inside Check — here we re-check
// without it so a regression cannot hide behind the internal panic).
func TestPassWitnessReplaysOnSource(t *testing.T) {
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 8})
	n := f.Netlist()
	for _, spec := range passSpecs {
		for _, prop := range []int{0, 7} {
			r := Check(n, prop, BMC2(3*4+10).WithPasses(spec))
			if r.Kind != KindCE {
				t.Fatalf("passes=%q prop=%d: expected CE, got %v", spec, prop, r)
			}
			if err := r.Witness.Replay(n, prop); err != nil {
				t.Errorf("passes=%q prop=%d: replay on source netlist failed: %v", spec, prop, err)
			}
			if r.Witness.FormatFrame(n, 0) == "" {
				t.Errorf("passes=%q prop=%d: FormatFrame empty on source netlist", spec, prop)
			}
			if r.Prop != prop {
				t.Errorf("passes=%q: result Prop=%d, want %d", spec, r.Prop, prop)
			}
		}
	}
}

// TestPassPBALatchReasonsResolveToSourceNames: after the pipeline drops
// the junk latches declared ahead of the relevant counter, the compiled
// latch indices shift — the tracker the caller sees must nevertheless
// index the SOURCE netlist's latch list, so every latch reason resolves to
// a counter bit by name.
func TestPassPBALatchReasonsResolveToSourceNames(t *testing.T) {
	m := rtl.NewModule("pba-backmap")
	junk := m.Register("junk", 8, 0)
	junk.SetNext(m.Inc(junk.Q)) // free-running, outside the property cone
	c := m.Register("cnt", 3, 0)
	wrap := m.EqConst(c.Q, 4)
	c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
	m.Done(junk, c)
	m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not())

	for _, spec := range []string{"none", "coi", ""} {
		r := Check(m.N, 0, Options{MaxDepth: 5, PBA: true, Passes: spec})
		if r.Kind != KindNoCE {
			t.Fatalf("passes=%q: expected NO_CE, got %v", spec, r)
		}
		if r.Tracker == nil || r.Tracker.Size() == 0 {
			t.Fatalf("passes=%q: no latch reasons collected", spec)
		}
		for i := range r.Tracker.LR {
			if i < 0 || i >= len(m.N.Latches) {
				t.Fatalf("passes=%q: latch reason %d out of source range", spec, i)
			}
			name := m.N.Latches[i].Name
			if !strings.HasPrefix(name, "cnt") {
				t.Errorf("passes=%q: latch reason %d resolves to %q, want a cnt bit", spec, i, name)
			}
		}
	}
}

// TestPBADisablesClauseSharing pins the PBA/strash coupling documented on
// Options.PBA: while proof tracing is active, the engine must run with
// structural hashing, init folding, comparator memoization, and
// inprocessing off, because all four share or rewrite clauses across the
// tags PBA harvests relevance from. A plain run keeps them on.
func TestPBADisablesClauseSharing(t *testing.T) {
	l := designs.NewLookup(designs.LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3})
	n := l.Netlist()
	ctx := context.Background()

	pbaE := newEngine(ctx, n, l.InvariantIndex, Options{MaxDepth: 5, UseEMM: true, PBA: true})
	if !pbaE.fu.NoStrash {
		t.Errorf("PBA run must disable strash in the unroller")
	}
	if pbaE.fu.FoldInits {
		t.Errorf("PBA run must disable init folding")
	}

	plainE := newEngine(ctx, n, l.InvariantIndex, Options{MaxDepth: 5, UseEMM: true})
	if plainE.fu.NoStrash {
		t.Errorf("plain run must keep strash on")
	}
	if !plainE.fu.FoldInits {
		t.Errorf("plain run must keep init folding on")
	}
}
