package bmc

// The clause-sharing bridge connects one worker engine's solvers to the
// fleet bus (internal/share). Clauses cross worker boundaries in a
// canonical literal coding with two namespaces:
//
//   - frame codes (< compCanonBase), assigned by the unroller from the
//     (node, time-frame) coordinate of every cached frame value. A frame
//     code denotes "value of node id at frame t", which every worker builds
//     (or can decline to import) independently of its own CNF numbering.
//   - comparator codes (>= compCanonBase), assigned here: each EMM address
//     comparator E is keyed by the canonical codes of the two address
//     vectors it compares, interned fleet-wide on the bus, and registered
//     with the worker's unroller. A comparator is equivalent to the address
//     equality it encodes in every model, so two workers' comparators with
//     the same key denote the same signal even when comparator memoization
//     is off and one worker built duplicates.
//
// A clause with any literal outside both namespaces is dropped by the
// export filter; a clause whose codes the receiving worker has not built
// yet is dropped by the import filter. Both drops are counted as filtered —
// sharing is an optimization, so losing a clause is always safe.
//
// Soundness: exported clauses are consequences of the worker's clause
// database, which is a property-independent, total encoding of the design's
// unrolled executions (engines are only shared between properties when the
// design asserts no environment constraints, and the per-property parts —
// ¬P assumptions, cube assumptions — are assumptions, never clauses). Under
// the canonical decoding every worker's database describes the same
// executions, so a peer's lemma holds in the importer too. shareEligible
// gates the two cases that would break this: PBA proof tracing (imported
// clauses have no derivation in the trace; the solver also refuses imports
// while tracing as a backstop) and asserted environment constraints.
// Forward (initialized) and backward (free-initial-state) windows describe
// different execution sets, so they get separate buses.

import (
	"emmver/internal/core"
	"emmver/internal/sat"
	"emmver/internal/share"
	"emmver/internal/unroll"

	"emmver/internal/aig"
)

// compCanonBase is the first canonical base code of the comparator
// namespace. Frame bases are bounded by frames*nodes, far below 2^52.
const compCanonBase = uint64(1) << 52

// compPrivateBase is the first comparator base in the private intern
// range: ids the bus coined locally after its transport died. Such an id
// is meaningless to any other process (a peer's n-th private id names a
// different comparator), so clauses carrying one must never be exported,
// and an imported clause carrying one must be dropped — the exporter broke
// the invariant, and resolving the code through this worker's comps map
// would silently import a wrong lemma. The transport already stops
// flushing on intern failure; these two filters are the bridge's backstop.
const compPrivateBase = compCanonBase + share.PrivateInternBase

// shareEligible reports whether the fleet may share clauses (and split
// cubes) for this compiled model and option set; see the package comment
// above for why PBA and environment constraints disqualify a run.
func shareEligible(n *aig.Netlist, opt Options) bool {
	return !opt.PBA && len(n.Constraints) == 0
}

// shareBridge is one solver's endpoint: export filter, import decoder, and
// the comparator canonicalization hook. All state is confined to the
// owning worker's goroutine; only the bus itself is shared.
type shareBridge struct {
	bus   *share.Bus
	inbox *share.Inbox
	u     *unroll.Unroller
	self  int

	// comps resolves comparator-namespace codes to this worker's E
	// literals (first comparator built for a key wins; duplicates are
	// equivalent signals).
	comps map[uint64]sat.Lit

	outBuf []uint64
	inBuf  []sat.Lit
	keyBuf []byte
}

func newShareBridge(bus *share.Bus, u *unroll.Unroller, self int) *shareBridge {
	u.TrackCanon = true
	return &shareBridge{
		bus:   bus,
		inbox: bus.Inbox(self),
		u:     u,
		self:  self,
		comps: make(map[uint64]sat.Lit),
	}
}

// attachShare wires worker w's engine to the forward and backward buses.
// Must run right after newEngine, before any frame is unrolled.
func attachShare(e *engine, fwd, bwd *share.Bus, w int) {
	hook := func(b *shareBridge, s *sat.Solver, g *core.Generator) {
		if g != nil {
			g.OnComparator = b.onComparator
		}
		s.Export = b.export
		s.Import = b.runImport
	}
	if fwd != nil {
		hook(newShareBridge(fwd, e.fu, w), e.fs, e.fg)
	}
	if bwd != nil && e.bs != nil {
		hook(newShareBridge(bwd, e.bu, w), e.bs, e.bg)
	}
}

// onComparator gives a freshly encoded comparator its fleet-wide canonical
// identity. Comparators whose address vectors are not fully canonical
// (they contain depth-local auxiliary literals) stay private.
func (b *shareBridge) onComparator(e sat.Lit, a, bb []sat.Lit) {
	key, ok := b.canonKey(a, bb)
	if !ok {
		return
	}
	base := compCanonBase + b.bus.Intern(key)
	b.u.SetCanon(e, base)
	if _, dup := b.comps[base]; !dup {
		b.comps[base] = e
		b.u.Freeze(e) // imports may watch E after local search moved on
	}
}

// canonKey builds the order-normalized canonical key of an address-vector
// pair (equality is symmetric, so (a,b) and (b,a) must collide — same
// normalization as core.compKey, but over canonical codes).
func (b *shareBridge) canonKey(a, bb []sat.Lit) (string, bool) {
	ca, ok := b.codeVec(a, b.outBuf[:0])
	if !ok {
		return "", false
	}
	cb, ok := b.codeVec(bb, ca[len(ca):])
	if !ok {
		return "", false
	}
	if codeVecLess(cb, ca) {
		ca, cb = cb, ca
	}
	buf := b.keyBuf[:0]
	for _, c := range ca {
		buf = appendCode(buf, c)
	}
	buf = append(buf, '|')
	for _, c := range cb {
		buf = appendCode(buf, c)
	}
	b.keyBuf = buf[:0]
	return string(buf), true
}

func (b *shareBridge) codeVec(lits []sat.Lit, dst []uint64) ([]uint64, bool) {
	for _, l := range lits {
		c := b.u.CanonLit(l)
		if c == 0 {
			return nil, false
		}
		dst = append(dst, c)
	}
	return dst, true
}

func codeVecLess(a, b []uint64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func appendCode(buf []byte, c uint64) []byte {
	return append(buf,
		byte(c), byte(c>>8), byte(c>>16), byte(c>>24),
		byte(c>>32), byte(c>>40), byte(c>>48), byte(c>>56))
}

// export is the solver's Export hook: translate the learnt clause to
// canonical codes and publish it, or count it filtered when any literal
// has no canonical identity (depth-local auxiliaries) or carries a
// private-range comparator code (meaningless outside this process).
func (b *shareBridge) export(lits []sat.Lit, lbd int) {
	codes := b.outBuf[:0]
	for _, l := range lits {
		c := b.u.CanonLit(l)
		if c == 0 || c>>1 >= compPrivateBase {
			b.outBuf = codes[:0]
			b.bus.AddFiltered(1)
			return
		}
		codes = append(codes, c)
	}
	b.outBuf = codes[:0]
	b.bus.Publish(b.self, &share.Clause{Lits: append([]uint64(nil), codes...), LBD: lbd})
}

// runImport is the solver's Import hook: drain every peer's ring, decode
// each clause into local literals, and hand the decodable ones to the
// solver's importer. Clauses referencing signals this worker has not built
// (deeper frames, unseen comparators) are counted filtered and dropped.
func (b *shareBridge) runImport(add func(lits []sat.Lit, lbd int) bool) {
	var imported, filtered int64
	b.inbox.Drain(func(c *share.Clause) {
		lits := b.inBuf[:0]
		for _, code := range c.Lits {
			l, ok := b.decode(code)
			if !ok {
				b.inBuf = lits[:0]
				filtered++
				return
			}
			lits = append(lits, l)
		}
		b.inBuf = lits[:0]
		if add(lits, c.LBD) {
			imported++
		} else {
			filtered++
		}
	})
	if imported > 0 {
		b.bus.AddImported(imported)
	}
	if filtered > 0 {
		b.bus.AddFiltered(filtered)
	}
}

func (b *shareBridge) decode(code uint64) (sat.Lit, bool) {
	if base := code >> 1; base >= compCanonBase {
		if base >= compPrivateBase {
			// A private id is only meaningful in the process that coined it;
			// this worker's comps map may hold the same base for a different
			// comparator, so looking it up would import a wrong lemma.
			return sat.LitUndef, false
		}
		e, ok := b.comps[base]
		if !ok {
			return sat.LitUndef, false
		}
		return e.XorSign(code&1 == 1), true
	}
	return b.u.LocalLit(code)
}
