package bmc

import (
	"fmt"
	"testing"

	"emmver/internal/designs"
	"emmver/internal/expmem"
	"emmver/internal/sat"
)

// The inprocessing equivalence suite: Simplify only removes clauses implied
// by the rest of the database and only eliminates variables no future depth
// can mention (the unroller freezes the frame frontier, the EMM generator
// its interface signals), so every verdict, proof side, and witness depth
// must match a run with inprocessing off — under both restart schedules.

// assertInprocEquiv runs opt with inprocessing on (the default) and off and
// compares outcomes. Witnesses from the inprocessing run are additionally
// replayed on the concrete simulator (ValidateWitness), so a model corrupted
// by variable elimination fails loudly rather than just differing in length.
func assertInprocEquiv(t *testing.T, name string, run func(opt Options) *Result, opt Options) {
	t.Helper()
	// The case-study designs are small enough that the conflict gate would
	// skip most passes; force every pass so the equivalence check actually
	// exercises Simplify.
	defer func(mc, cd int64) {
		simplifyMinConflicts, simplifyClausesPerConfl = mc, cd
	}(simplifyMinConflicts, simplifyClausesPerConfl)
	simplifyMinConflicts, simplifyClausesPerConfl = 0, 0
	opt.ValidateWitness = true
	for _, mode := range []sat.RestartMode{sat.RestartEMA, sat.RestartLuby} {
		on := run(opt.WithRestart(mode))
		off := run(opt.WithRestart(mode).WithSimplify(false))
		tag := fmt.Sprintf("%s/%v", name, mode)
		if on.Kind != off.Kind || on.Depth != off.Depth || on.ProofSide != off.ProofSide {
			t.Errorf("%s: inprocessing %v (%s) vs off %v (%s)",
				tag, on, on.ProofSide, off, off.ProofSide)
		}
		if (on.Witness == nil) != (off.Witness == nil) {
			t.Errorf("%s: witness presence differs", tag)
		} else if on.Witness != nil && on.Witness.Length != off.Witness.Length {
			t.Errorf("%s: witness length %d vs %d", tag, on.Witness.Length, off.Witness.Length)
		}
		if off.Stats.Simplifies != 0 {
			t.Errorf("%s: WithSimplify(false) run still simplified %d times", tag, off.Stats.Simplifies)
		}
		if !opt.PBA && on.Depth > 0 && on.Stats.Simplifies == 0 {
			t.Errorf("%s: multi-depth run never ran the inprocessing pass", tag)
		}
	}
}

func TestInprocEquivalenceQuickSort(t *testing.T) {
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	n := q.Netlist()
	for _, tc := range []struct {
		name string
		prop int
		opt  Options
	}{
		{"bmc2-p1", q.P1Index, BMC2(8)},
		// Proofs without PBA: the backward solver participates in the
		// between-depth Simplify as well.
		{"proofs-p2", q.P2Index, Options{MaxDepth: 14, UseEMM: true, Proofs: true}},
	} {
		assertInprocEquiv(t, "quicksort/"+tc.name, func(opt Options) *Result {
			return Check(n, tc.prop, opt)
		}, tc.opt)
	}
}

func TestInprocEquivalenceImageFilter(t *testing.T) {
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 8})
	n := f.Netlist()
	for _, prop := range []int{0, 3, 7} {
		assertInprocEquiv(t, fmt.Sprintf("filter/p%d", prop), func(opt Options) *Result {
			return Check(n, prop, opt)
		}, BMC2(3*4+10))
	}
}

func TestInprocEquivalenceLookup(t *testing.T) {
	l := designs.NewLookup(designs.LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3})
	n := l.Netlist()
	assertInprocEquiv(t, "lookup/inv", func(opt Options) *Result {
		return Check(n, l.InvariantIndex, opt)
	}, Options{MaxDepth: 12, UseEMM: true, Proofs: true})
}

func TestInprocEquivalenceBMC1Explicit(t *testing.T) {
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 2, DataW: 3, StackAW: 2})
	n, _, err := expmem.Expand(q.Netlist())
	if err != nil {
		t.Fatal(err)
	}
	assertInprocEquiv(t, "quicksort/bmc1-explicit", func(opt Options) *Result {
		return Check(n, q.P2Index, opt)
	}, BMC1(10))
}

func TestInprocEquivalenceCheckMany(t *testing.T) {
	// The shared-unrolling multi-property loop has its own simplifyStep call
	// site (many.go); verdicts per property must be unaffected.
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 8})
	n := f.Netlist()
	props := []int{0, 2, 5, 7}
	opt := BMC2(3*4 + 10)
	opt.ValidateWitness = true
	on := CheckMany(n, props, opt)
	off := CheckMany(n, props, opt.WithSimplify(false))
	for pi := range props {
		a, b := on.Results[pi], off.Results[pi]
		if a.Kind != b.Kind || a.Depth != b.Depth {
			t.Errorf("prop %d: inprocessing %v vs off %v", props[pi], a, b)
		}
	}
}

// TestInprocPBASkipped pins satellite 1's contract: under PBA the engine
// skips inprocessing entirely, so the latch-reason set harvested from UNSAT
// cores is identical whether or not the caller left simplification enabled.
func TestInprocPBASkipped(t *testing.T) {
	l := designs.NewLookup(designs.LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3})
	n := l.Netlist()
	opt := BMC3(12)
	on := Check(n, l.InvariantIndex, opt)
	off := Check(n, l.InvariantIndex, opt.WithSimplify(false))
	if on.Stats.Simplifies != 0 || off.Stats.Simplifies != 0 {
		t.Fatalf("PBA run must never simplify (got %d / %d)",
			on.Stats.Simplifies, off.Stats.Simplifies)
	}
	if on.Tracker == nil || off.Tracker == nil {
		t.Fatal("PBA run returned no tracker")
	}
	a := fmt.Sprint(on.Tracker.Sorted())
	b := fmt.Sprint(off.Tracker.Sorted())
	if a != b {
		t.Fatalf("latch-reason sets differ under PBA: %s vs %s", a, b)
	}
	if on.Kind != off.Kind || on.Depth != off.Depth {
		t.Fatalf("PBA verdict differs: %v vs %v", on, off)
	}
}

// TestInprocTracingGuard drives the solver-level double guard directly: a
// solver with proof tracing on refuses Simplify with ErrTracingActive and
// leaves its clause database untouched.
func TestInprocTracingGuard(t *testing.T) {
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 2, DataW: 3, StackAW: 2})
	opt := BMC2(6)
	opt.PBA = true // tracing on, simplify skipped by the engine guard
	r := Check(q.Netlist(), q.P1Index, opt)
	if r.Stats.Simplifies != 0 || r.Stats.EliminatedVars != 0 {
		t.Fatalf("tracing run reported inprocessing work: %+v", r.Stats)
	}
}
