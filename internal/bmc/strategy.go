// The Strategy layer: the decision procedure that drives the per-depth
// checks over a prepared Model (model.go) and Session (session.go). Each
// strategy decides which solver queries to issue at depth k and how to
// interpret their answers; the surrounding loop (checkCompiled) owns frame
// extension, warm-start gating, inprocessing, and observability, so a
// strategy is exactly the paper-visible difference between engines.

package bmc

import (
	"context"

	"emmver/internal/sat"
)

// Strategy is one verification decision procedure. checkCompiled calls
// Step once per depth, in increasing order, after the Model has extended
// every window's unrolling and EMM constraints to k.
type Strategy interface {
	// Name labels the strategy in per-depth trace spans and logs.
	Name() string
	// Step runs the depth-k checks and returns (result, true) when the run
	// is decided, or (nil, false) to deepen. Cancellation is polled through
	// the Session's solver interrupt hooks; ctx is the run context those
	// hooks watch.
	Step(ctx context.Context, k int) (*Result, bool)
}

// strategyFor selects the Strategy the options ask for. The capability
// resolver in internal/spec guarantees specs only reach combinations
// listed here; Options-level callers get the closest sequential flow.
func (e *engine) strategyFor() Strategy {
	switch {
	case e.opt.KInduction && e.opt.Proofs:
		return &kindStrategy{e}
	case e.opt.Proofs && e.opt.Portfolio:
		return &portfolioStrategy{e}
	default:
		return &bmcStrategy{e}
	}
}

// bmcStrategy is the paper's sequential per-depth flow, shared by BMC-1,
// BMC-2, BMC-3, and PBA phase 1: forward termination, backward
// termination (when Proofs is on), then the counter-example check, with
// the PBA tracker fed after an UNSAT CE answer.
type bmcStrategy struct{ e *engine }

func (s *bmcStrategy) Name() string { return "bmc" }

func (s *bmcStrategy) Step(_ context.Context, k int) (*Result, bool) {
	e := s.e
	prop := e.prop
	if e.opt.Proofs {
		switch e.forwardCheck(k) {
		case sat.Unsat:
			e.logf("depth %d: forward termination", k)
			return &Result{Kind: KindProof, Depth: k, ProofSide: "forward"}, true
		case sat.Unknown:
			return &Result{Kind: KindTimeout, Depth: k}, true
		}
		switch e.backwardCheck(prop, k) {
		case sat.Unsat:
			e.logf("depth %d: backward termination", k)
			return &Result{Kind: KindProof, Depth: k, ProofSide: "backward"}, true
		case sat.Unknown:
			return &Result{Kind: KindTimeout, Depth: k}, true
		}
	}
	switch e.ceCheck(prop, k) {
	case sat.Sat:
		w := e.extractWitness(k)
		e.logf("depth %d: counter-example", k)
		e.validateWitness(w, prop)
		return &Result{Kind: KindCE, Depth: k, Witness: w}, true
	case sat.Unknown:
		return &Result{Kind: KindTimeout, Depth: k}, true
	}
	if e.opt.PBA {
		e.obsPBAUpdate(k)
		e.logf("depth %d: no CE, |LR|=%d (stable %d)", k, e.tracker.Size(), e.tracker.StableFor(k))
		if e.opt.StopAtStable && e.tracker.StableFor(k) >= e.opt.StabilityDepth {
			return &Result{Kind: KindStable, Depth: k}, true
		}
	} else {
		e.logf("depth %d: no CE", k)
	}
	return nil, false
}

// portfolioStrategy races the forward and backward windows as two lanes
// per depth (portfolio.go).
type portfolioStrategy struct{ e *engine }

func (s *portfolioStrategy) Name() string { return "portfolio" }

func (s *portfolioStrategy) Step(_ context.Context, k int) (*Result, bool) {
	r := s.e.depthStepPortfolio(k)
	return r, r != nil
}
