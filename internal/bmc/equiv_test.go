package bmc

import (
	"testing"

	"emmver/internal/designs"
	"emmver/internal/expmem"
)

// The strash/memoization equivalence suite: on the Table 1 design
// (quicksort) and the Table 2 stand-ins (image filter / Industry I, lookup
// engine / Industry II), every BMC-1/2/3 verdict and witness depth must be
// identical with the optimizations on (the default) and off — structural
// hashing and comparator memoization only share logically equal definitions,
// so they may change formula size but never answers.

// assertEquiv runs opt as-is and with both optimizations disabled, and
// compares the outcomes.
func assertEquiv(t *testing.T, name string, run func(opt Options) *Result, opt Options) {
	t.Helper()
	on := run(opt)
	off := opt
	off.DisableStrash = true
	off.DisableEMMMemo = true
	offR := run(off)
	if on.Kind != offR.Kind || on.Depth != offR.Depth || on.ProofSide != offR.ProofSide {
		t.Errorf("%s: optimized %v (%s) vs unoptimized %v (%s)",
			name, on, on.ProofSide, offR, offR.ProofSide)
	}
	if (on.Witness == nil) != (offR.Witness == nil) {
		t.Errorf("%s: witness presence differs", name)
	} else if on.Witness != nil && on.Witness.Length != offR.Witness.Length {
		t.Errorf("%s: witness length %d vs %d", name, on.Witness.Length, offR.Witness.Length)
	}
	// Sharing must never grow the EMM constraint set. (Solver-level clause
	// counts are not comparable across the two runs: level-0 clause
	// simplification depends on search history, which legitimately differs
	// once variable numbering changes.)
	onEMM := on.Stats.EMM.Clauses() + on.Stats.EMM.InitClauses
	offEMM := offR.Stats.EMM.Clauses() + offR.Stats.EMM.InitClauses
	if onEMM > offEMM {
		t.Errorf("%s: optimized run emitted MORE EMM clauses (%d) than unoptimized (%d)",
			name, onEMM, offEMM)
	}
}

func TestStrashEquivalenceQuickSort(t *testing.T) {
	// Table 1 design, reduced widths. P1 finds no CE in the bound; P2
	// (stack discipline) is provable.
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	n := q.Netlist()
	for _, tc := range []struct {
		name string
		prop int
		opt  Options
	}{
		{"bmc2-p1", q.P1Index, BMC2(8)},
		{"bmc3-p2", q.P2Index, BMC3(14)},
	} {
		tc.opt.ValidateWitness = true
		assertEquiv(t, "quicksort/"+tc.name, func(opt Options) *Result {
			return Check(n, tc.prop, opt)
		}, tc.opt)
	}
}

func TestStrashEquivalenceImageFilter(t *testing.T) {
	// Industry I stand-in: reachability properties with shallow witnesses.
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 8})
	n := f.Netlist()
	for _, prop := range []int{0, 3, 7} {
		opt := BMC2(3*4 + 10)
		opt.ValidateWitness = true
		assertEquiv(t, "filter", func(opt Options) *Result {
			return Check(n, prop, opt)
		}, opt)
	}
}

func TestStrashEquivalenceLookup(t *testing.T) {
	// Industry II stand-in: the invariant proves by induction over the EMM
	// model (BMC-3 exercises proofs + PBA + arbitrary init).
	l := designs.NewLookup(designs.LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3})
	n := l.Netlist()
	opt := BMC3(12)
	assertEquiv(t, "lookup/inv", func(opt Options) *Result {
		return Check(n, l.InvariantIndex, opt)
	}, opt)
}

func TestStrashEquivalenceBMC1Explicit(t *testing.T) {
	// BMC-1 runs on the memory-free explicit model (only strash matters
	// there; there are no EMM comparators).
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 2, DataW: 3, StackAW: 2})
	n, _, err := expmem.Expand(q.Netlist())
	if err != nil {
		t.Fatal(err)
	}
	opt := BMC1(10)
	assertEquiv(t, "quicksort/bmc1-explicit", func(opt Options) *Result {
		return Check(n, q.P2Index, opt)
	}, opt)
}
