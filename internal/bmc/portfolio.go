package bmc

import (
	"context"

	"emmver/internal/obs"
	"emmver/internal/par"
	"emmver/internal/sat"
)

// laneOutcome is what one portfolio lane reports for a depth: a decisive
// verdict, an interrupted (unknown) solver call, or — for the forward lane
// only — a completed UNSAT counter-example check.
type laneOutcome struct {
	res     *Result
	unknown bool
}

// depthStepPortfolio races the depth-i checks on the engine's two solvers:
// the forward lane owns fs (forward termination, then the counter-example
// check) and the backward lane owns bs (backward termination). The first
// decisive verdict cancels the other lane via the solver interrupt hook.
//
// Verdict classes cannot conflict across lanes: a counter-example at depth
// i is shortest (earlier depths already passed), hence loop-free with the
// property holding at frames 0..i-1, so it satisfies both termination
// queries — a CE excludes forward and backward UNSAT at the same depth.
// The only genuine tie is forward and backward both proving, which
// par.First breaks toward the forward lane, matching sequential order.
func (e *engine) depthStepPortfolio(i int) *Result {
	prop := e.prop
	fwdLane := func(ctx context.Context) (laneOutcome, bool) {
		sp := e.obs.Span("bmc.lane", obs.F("lane", "forward"), obs.F("depth", i))
		defer sp.End()
		defer e.armSolver(e.fs, ctx)()
		if cs := e.lazySolver(); cs != nil {
			// The forward lane also owns the CE check, which under the
			// lazy proof split runs on its own solver.
			defer e.armSolver(cs, ctx)()
		}
		switch e.forwardCheck(i) {
		case sat.Unsat:
			return laneOutcome{res: &Result{Kind: KindProof, Depth: i, ProofSide: "forward"}}, true
		case sat.Unknown:
			return laneOutcome{unknown: true}, false
		}
		switch e.ceCheck(prop, i) {
		case sat.Sat:
			// The model lives on fs, which this lane owns exclusively:
			// decode it before anything else can touch the solver.
			return laneOutcome{res: &Result{Kind: KindCE, Depth: i, Witness: e.extractWitness(i)}}, true
		case sat.Unknown:
			return laneOutcome{unknown: true}, false
		}
		if e.opt.PBA {
			// The UNSAT core is only valid until the next fs solve; the
			// tracker is touched by this lane alone.
			e.obsPBAUpdate(i)
		}
		return laneOutcome{}, false
	}
	bwdLane := func(ctx context.Context) (laneOutcome, bool) {
		sp := e.obs.Span("bmc.lane", obs.F("lane", "backward"), obs.F("depth", i))
		defer sp.End()
		defer e.armSolver(e.bs, ctx)()
		switch e.backwardCheck(prop, i) {
		case sat.Unsat:
			return laneOutcome{res: &Result{Kind: KindProof, Depth: i, ProofSide: "backward"}}, true
		case sat.Unknown:
			return laneOutcome{unknown: true}, false
		}
		return laneOutcome{}, false
	}

	win, outs := par.First(e.ctx, fwdLane, bwdLane)
	if win >= 0 {
		r := outs[win].res
		switch r.Kind {
		case KindProof:
			e.logf("depth %d: %s termination", i, r.ProofSide)
		case KindCE:
			e.logf("depth %d: counter-example", i)
			e.validateWitness(r.Witness, prop)
		}
		return r
	}
	if outs[0].unknown || outs[1].unknown {
		return &Result{Kind: KindTimeout, Depth: i}
	}
	// Both lanes ran to completion without a verdict — forward SAT, no CE,
	// backward SAT — exactly the sequential "no CE at this depth" outcome.
	if e.opt.PBA {
		e.logf("depth %d: no CE, |LR|=%d (stable %d)", i, e.tracker.Size(), e.tracker.StableFor(i))
		if e.opt.StopAtStable && e.tracker.StableFor(i) >= e.opt.StabilityDepth {
			return &Result{Kind: KindStable, Depth: i}
		}
	} else {
		e.logf("depth %d: no CE", i)
	}
	return nil
}
