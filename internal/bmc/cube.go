package bmc

// EMM-aware cube-and-conquer. The per-depth counter-example check is
// partitioned over the EMM address-comparator variables: a cube is a
// polarity assignment to a prefix of the comparators in creation order
// (creation order is a pure function of the netlist and the depth sequence,
// so lockstep workers agree on what "comparator k" means without any
// coordination), and the 2^w initial cubes over the first w comparators are
// an exhaustive case split of the search space. Each cube is solved under
// assumptions by a fleet worker pulling from a work-stealing queue; a cube
// that exceeds its conflict budget is split on the next comparator index
// into two children (still an exhaustive refinement), or — when the split
// variables are used up — re-solved without a budget.
//
// Why address comparators: on EMM-encoded designs the refutation of ¬P at
// each depth is dominated by address-match case analysis (the (4m+2n+1)kW·R
// comparator chains of the paper's §4.1). Fixing comparator polarities
// collapses the forwarding logic per cube, and — with the sharing bus on —
// the comparator-level lemmas one worker learns transfer to every other
// worker's cubes through their canonical identity.
//
// Verdict determinism: the cubes at each depth partition the assignment
// space, so "every cube UNSAT" equals the sequential UNSAT and "some cube
// SAT" yields a counter-example at the same (first) depth the sequential
// engine would report. Only which witness is found may vary, as in the
// existing portfolio.

import (
	"context"
	"sync"
	"time"

	"emmver/internal/aig"
	"emmver/internal/obs"
	"emmver/internal/par"
	"emmver/internal/sat"
	"emmver/internal/share"
)

// cubeConflictBudget is the per-cube conflict budget before a cube is
// refined by splitting. A variable so tests can force splits on tiny
// designs.
var cubeConflictBudget int64 = 2000

// cubeMaxInitialWidth caps the initial split width (2^w seed cubes).
const cubeMaxInitialWidth = 10

// shareRingCapacity is the default per-worker clause ring size
// (Options.ShareCap overrides); see share.Ring for why overrun is harmless.
const shareRingCapacity = 4096

// ringCapacity resolves the effective ring size for an option set.
func ringCapacity(opt Options) int {
	if opt.ShareCap > 0 {
		return opt.ShareCap
	}
	return shareRingCapacity
}

// cubeJob is one queue entry: comparator polarities for indices
// [0, len(signs)) plus the worker that produced it (-1 for seed cubes), so
// the queue can count work-stealing.
type cubeJob struct {
	signs []bool
	owner int
}

// cubeQueue is the depth-local work-stealing queue: a LIFO stack (children
// of a split are hot in their producer's clause database, and LIFO gets
// them — or a stealing peer — back onto a solver quickly) with an active
// count so consumers can tell "momentarily empty" from "all cubes
// resolved".
type cubeQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []cubeJob
	active int
	closed bool
	splits int64
	stolen int64
}

func newCubeQueue() *cubeQueue {
	q := &cubeQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// pop blocks until a cube is available (returning it and marking it
// active), every cube is resolved, or the queue is closed. The two latter
// cases return false.
func (q *cubeQueue) pop(self int) (cubeJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return cubeJob{}, false
		}
		if n := len(q.items); n > 0 {
			it := q.items[n-1]
			q.items = q.items[:n-1]
			q.active++
			if it.owner >= 0 && it.owner != self {
				q.stolen++
			}
			return it, true
		}
		if q.active == 0 {
			return cubeJob{}, false
		}
		q.cond.Wait()
	}
}

// push adds a cube produced by worker self.
func (q *cubeQueue) push(signs []bool, self int) {
	q.mu.Lock()
	q.items = append(q.items, cubeJob{signs: signs, owner: self})
	q.mu.Unlock()
	q.cond.Broadcast()
}

// split replaces the popped cube cb with its two children on the next
// comparator index and releases cb's active slot.
func (q *cubeQueue) split(cb cubeJob, self int) {
	lo := append(append([]bool(nil), cb.signs...), false)
	hi := append(append([]bool(nil), cb.signs...), true)
	q.mu.Lock()
	q.items = append(q.items, cubeJob{signs: lo, owner: self}, cubeJob{signs: hi, owner: self})
	q.active--
	q.splits++
	q.mu.Unlock()
	q.cond.Broadcast()
}

// done releases a popped cube's active slot (the cube was resolved).
func (q *cubeQueue) done() {
	q.mu.Lock()
	q.active--
	wake := q.active == 0 && len(q.items) == 0
	q.mu.Unlock()
	if wake {
		q.cond.Broadcast()
	}
}

// close wakes every blocked consumer and makes further pops fail; used for
// cancellation (a decisive answer or an expired budget).
func (q *cubeQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// checkCubed is the cube-and-conquer engine loop for one (compiled)
// property: a fleet of jobs worker engines advances depth in lockstep,
// termination proofs run sequentially on engine 0, and the counter-example
// check fans out over the cube queue. Callers have verified
// shareEligible and jobs > 1.
func checkCubed(ctx context.Context, n *aig.Netlist, prop int, opt Options, jobs int) *Result {
	// Cube-and-conquer splits the search over the deterministic eager
	// comparator creation order; demand-driven instantiation would make
	// that order model-dependent and diverge across workers. The spec
	// layer's capability resolver rejects lazy×cube before it gets here
	// (spec.CapCube vs CapLazy); this reset enforces the same invariant
	// for direct Options-level callers.
	opt.LazyEMM = false
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if opt.Timeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(runCtx, opt.Timeout)
		defer tcancel()
		opt.Timeout = 0
	}
	opt.Log = par.SyncWriter(opt.Log)

	var fwd, bwd *share.Bus
	if opt.Share {
		fwd = share.NewBus(jobs, ringCapacity(opt))
		if opt.Proofs {
			bwd = share.NewBus(jobs, ringCapacity(opt))
		}
	}
	engines := make([]*engine, jobs)
	for w := range engines {
		wopt := opt
		wopt.Obs = opt.Obs.With(obs.F("worker", w))
		e := newEngine(runCtx, n, prop, wopt)
		if e.fg != nil {
			e.fg.TrackComparators = true
		}
		attachShare(e, fwd, bwd, w)
		engines[w] = e
	}
	e0 := engines[0]
	var splits, stolen int64

	finish := func(r *Result) *Result {
		r.Prop = prop
		var st Stats
		for _, e := range engines {
			st.Add(e.snapshotStats())
		}
		st.Elapsed = time.Since(e0.start)
		st.CubeSplits, st.CubeStolen = splits, stolen
		addBusStats(&st, fwd, bwd)
		publishCoopObs(opt.Obs, &st)
		r.Stats = st
		r.DepthStats = e0.depthStats
		r.Tracker = e0.tracker
		return r
	}

	for i := 0; i <= opt.MaxDepth; i++ {
		if e0.timedOut() {
			return finish(&Result{Kind: KindTimeout, Depth: max(i-1, 0)})
		}
		sp := e0.obs.Span("bmc.depth", obs.F("depth", i), obs.F("prop", prop))
		for _, e := range engines {
			e.prepareDepth(i)
		}
		var r *Result
		if opt.Proofs && i >= opt.StartDepth {
			switch e0.forwardCheck(i) {
			case sat.Unsat:
				e0.logf("depth %d: forward termination", i)
				r = &Result{Kind: KindProof, Depth: i, ProofSide: "forward"}
			case sat.Unknown:
				r = &Result{Kind: KindTimeout, Depth: i}
			}
			if r == nil {
				switch e0.backwardCheck(prop, i) {
				case sat.Unsat:
					e0.logf("depth %d: backward termination", i)
					r = &Result{Kind: KindProof, Depth: i, ProofSide: "backward"}
				case sat.Unknown:
					r = &Result{Kind: KindTimeout, Depth: i}
				}
			}
		}
		if r == nil && i >= opt.StartDepth {
			// Depths below the warm-start frontier (Options.StartDepth) only
			// extend the unrollings; see checkCompiled.
			r = cubeCECheck(runCtx, cancel, engines, prop, i, &splits, &stolen)
		}
		for _, e := range engines {
			e.publishObs(i)
		}
		if opt.CollectDepthStats {
			e0.collectDepthStat(i)
		}
		sp.End(obs.F("emm_clauses", e0.emmClausesCum()),
			obs.F("clauses", e0.fs.NumClauses()),
			obs.F("decided", r != nil))
		if r != nil {
			e0.obsResolved(r.Kind)
			return finish(r)
		}
		for _, e := range engines {
			e.simplifyStep(i)
		}
	}
	e0.obsResolved(KindNoCE)
	return finish(&Result{Kind: KindNoCE, Depth: opt.MaxDepth})
}

// cubeCECheck fans the depth-i counter-example check out over the cube
// queue. Returns a decisive Result (CE or timeout), or nil when every cube
// is UNSAT (no CE at this depth). cancel tears the fleet down on the first
// decisive answer so in-flight cube solves stop at their next interrupt
// poll.
func cubeCECheck(ctx context.Context, cancel context.CancelFunc, engines []*engine, prop, depth int, splits, stolen *int64) *Result {
	jobs := len(engines)
	nComp := -1
	for _, e := range engines {
		c := 0
		if e.fg != nil {
			c = len(e.fg.CompLits())
		}
		if nComp < 0 || c < nComp {
			nComp = c
		}
	}
	w := 0
	for (1<<w) < 2*jobs && w < nComp && w < cubeMaxInitialWidth {
		w++
	}
	q := newCubeQueue()
	for m := 0; m < 1<<w; m++ {
		signs := make([]bool, w)
		for k := range signs {
			signs[k] = m&(1<<k) != 0
		}
		q.push(signs, -1)
	}
	stop := context.AfterFunc(ctx, q.close)
	defer stop()

	var out struct {
		mu sync.Mutex
		r  *Result
	}
	decide := func(r *Result) {
		out.mu.Lock()
		if out.r == nil {
			out.r = r
		}
		out.mu.Unlock()
		cancel()
	}
	par.ForEach(ctx, jobs, jobs, func(ctx context.Context, _, self int) {
		cubeWorker(ctx, engines[self], self, q, prop, depth, nComp, decide)
	})
	q.mu.Lock()
	*splits += q.splits
	*stolen += q.stolen
	q.mu.Unlock()
	return out.r
}

// cubeWorker pulls cubes until the queue drains or the run is decided.
func cubeWorker(ctx context.Context, e *engine, self int, q *cubeQueue, prop, depth, nComp int, decide func(*Result)) {
	for {
		cb, ok := q.pop(self)
		if !ok {
			return
		}
		st := e.solveCube(prop, depth, cb.signs, cubeConflictBudget)
		if st == sat.Unknown && !e.timedOut() {
			// Budget exceeded: refine by splitting, or solve to completion
			// when the split variables are exhausted.
			if len(cb.signs) < nComp {
				q.split(cb, self)
				continue
			}
			st = e.solveCube(prop, depth, cb.signs, 0)
		}
		switch st {
		case sat.Unsat:
			q.done()
		case sat.Sat:
			// Extract before anything else touches this engine's solver:
			// the model lives in the worker's own fs.
			wit := e.extractWitness(depth)
			e.validateWitness(wit, prop)
			e.logf("depth %d: counter-example (cube worker %d)", depth, self)
			decide(&Result{Kind: KindCE, Depth: depth, Witness: wit})
			q.done()
			return
		default:
			// Unknown with the run budget gone: either a genuine timeout or
			// a sibling's decisive answer cancelled us — decide() is
			// first-wins, so a stale timeout record loses to the real
			// verdict.
			decide(&Result{Kind: KindTimeout, Depth: depth})
			q.done()
			return
		}
	}
}

// solveCube runs the depth-i counter-example check under the cube's
// comparator assumptions with the given conflict budget (0 = none).
func (e *engine) solveCube(prop, depth int, signs []bool, budget int64) sat.Status {
	sp := e.obs.Span("solve.cube", obs.F("depth", depth), obs.F("width", len(signs)))
	var comp []sat.Lit
	if e.fg != nil {
		comp = e.fg.CompLits()
	}
	assumps := make([]sat.Lit, 0, len(signs)+1)
	assumps = append(assumps, e.fu.PropertyLit(prop, depth).Not())
	for k, neg := range signs {
		assumps = append(assumps, comp[k].XorSign(neg))
	}
	old := e.fs.ConflictBudget
	e.fs.ConflictBudget = budget
	st := e.solve(e.fs, assumps...)
	e.fs.ConflictBudget = old
	sp.End(obs.F("result", st.String()))
	return st
}

// addBusStats folds the buses' fleet-wide tallies into st.
func addBusStats(st *Stats, buses ...*share.Bus) {
	for _, b := range buses {
		if b == nil {
			continue
		}
		st.SharedExported += b.Exported()
		st.SharedImported += b.Imported()
		st.SharedFiltered += b.Filtered()
		st.SharedDropped += b.Dropped()
	}
}

// publishCoopObs mirrors the cooperative-solving tallies onto the metrics
// registry (no-op when detached).
func publishCoopObs(o *obs.Observer, st *Stats) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	reg.Counter(obs.MShareExported).Add(st.SharedExported)
	reg.Counter(obs.MShareImported).Add(st.SharedImported)
	reg.Counter(obs.MShareFiltered).Add(st.SharedFiltered)
	reg.Counter(obs.MShareDropped).Add(st.SharedDropped)
	reg.Counter(obs.MCubeSplits).Add(st.CubeSplits)
	reg.Counter(obs.MCubeStolen).Add(st.CubeStolen)
}
