package bmc

import (
	"fmt"
	"time"

	"emmver/internal/aig"
)

// InvariantResult is the outcome of ProveWithInvariant.
type InvariantResult struct {
	// InvariantProof is the proof of the helper invariant (nil if it
	// failed, in which case Main is nil too).
	InvariantProof *Result
	// Main is the main property's verdict under the proven invariant.
	Main    *Result
	Elapsed time.Duration
}

// Kind summarizes the overall outcome.
func (r *InvariantResult) Kind() Kind {
	if r.Main != nil {
		return r.Main.Kind
	}
	if r.InvariantProof != nil {
		return r.InvariantProof.Kind
	}
	return KindNoCE
}

// ProveWithInvariant generalizes the Industry II methodology (§5): first
// prove a helper invariant (there, G(WE=0 ∨ WD=0)) with the full engine,
// then assume it as an environment constraint in every cycle while
// checking the main property — often turning a non-inductive obligation
// into a trivial one. Both properties must belong to n. The flow is sound:
// the constraint is only assumed after its own unbounded proof succeeds.
//
// Note the asymmetry exploited here and in the paper: the invariant may
// need the memory semantics (EMM) to prove, while the main property,
// once the invariant is available, may not need the memory at all.
func ProveWithInvariant(n *aig.Netlist, mainProp, invariantProp int, opt Options) (*InvariantResult, error) {
	if mainProp == invariantProp {
		return nil, fmt.Errorf("bmc: main property and invariant must differ")
	}
	if invariantProp < 0 || invariantProp >= len(n.Props) {
		return nil, fmt.Errorf("bmc: invariant property %d out of range", invariantProp)
	}
	start := time.Now()
	res := &InvariantResult{}

	iOpt := opt
	iOpt.Proofs = true
	res.InvariantProof = Check(n, invariantProp, iOpt)
	if res.InvariantProof.Kind != KindProof {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Assume the proven invariant as a per-cycle constraint. Build on a
	// copy so the caller's netlist is untouched.
	constrained, propMap := cloneWithConstraint(n, n.Props[invariantProp].OK)
	mOpt := opt
	mOpt.Proofs = true
	res.Main = Check(constrained, propMap[mainProp], mOpt)
	res.Elapsed = time.Since(start)
	return res, nil
}

// cloneWithConstraint snapshots the netlist's constraint list, appends the
// invariant, and returns the same netlist plus an identity property map.
// The netlist graph is shared (it is immutable during checking); only the
// constraint slice is copied so the caller's view stays unchanged after
// verification completes.
func cloneWithConstraint(n *aig.Netlist, inv aig.Lit) (*aig.Netlist, map[int]int) {
	// Netlist is used read-only by the engines except for this slice;
	// restore it when done is unnecessary because we operate on a shallow
	// copy of the struct.
	copyN := *n
	copyN.Constraints = append(append([]aig.Lit(nil), n.Constraints...), inv)
	pm := make(map[int]int, len(n.Props))
	for i := range n.Props {
		pm[i] = i
	}
	return &copyN, pm
}
