package bmc

import (
	"math/rand"
	"testing"
	"time"

	"emmver/internal/aig"
	"emmver/internal/expmem"
	"emmver/internal/rtl"
)

// mod5Counter builds a counter cycling 0..4 with property "cnt != 6"
// (true; 6 is unreachable) and property "cnt != target" (false for
// target ≤ 4, violated first at depth target).
func mod5Counter(target uint64) *rtl.Module {
	m := rtl.NewModule("mod5")
	c := m.Register("cnt", 3, 0)
	wrap := m.EqConst(c.Q, 4)
	c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
	m.Done(c)
	m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not())
	m.AssertAlways("neTarget", m.EqConst(c.Q, target).Not())
	return m
}

func TestCounterexampleAtExactDepth(t *testing.T) {
	for target := uint64(0); target <= 4; target++ {
		m := mod5Counter(target)
		r := Check(m.N, 1, Options{MaxDepth: 10, ValidateWitness: true})
		if r.Kind != KindCE || r.Depth != int(target) {
			t.Fatalf("target %d: got %v", target, r)
		}
		if r.Witness == nil || r.Witness.Length != int(target) {
			t.Fatalf("target %d: bad witness", target)
		}
	}
}

func TestProofOnMod5Counter(t *testing.T) {
	m := mod5Counter(2)
	r := Check(m.N, 0, BMC1(20))
	if r.Kind != KindProof {
		t.Fatalf("expected proof, got %v", r)
	}
	// Backward induction catches this before the forward diameter (5).
	if r.Depth > 5 {
		t.Fatalf("proof too deep: %v", r)
	}
}

func TestForwardTerminationProof(t *testing.T) {
	// A +2 counter mod 8 starting at 0: the even orbit {0,2,4,6} is
	// reachable, the odd orbit {1,3,5,7} is not. "cnt != 5" cannot be
	// proved by backward induction at small depth (the odd orbit feeds 5
	// with loop-free all-good prefixes up to length 3), so the forward
	// termination check fires first, at the orbit size.
	m := rtl.NewModule("plus2")
	c := m.Register("cnt", 3, 0)
	c.SetNext(m.Add(c.Q, m.Const(3, 2)))
	m.Done(c)
	m.AssertAlways("ne5", m.EqConst(c.Q, 5).Not())
	// The compile pipeline would fold bit 0 of the +2 counter (it is
	// inductively constant) and prove the property structurally; pin it
	// off so the forward-termination machinery itself is exercised.
	r := Check(m.N, 0, BMC1(20).WithPasses("none"))
	if r.Kind != KindProof || r.ProofSide != "forward" || r.Depth != 4 {
		t.Fatalf("expected forward proof at depth 4, got %v side=%s", r, r.ProofSide)
	}
}

func TestBackwardInductionProof(t *testing.T) {
	// A sticky flag: once set it stays set; property "flag set -> stays
	// set next cycle" is encoded as prev-set implies set, which is
	// 1-inductive and needs no initial-state anchoring.
	m := rtl.NewModule("sticky")
	set := m.InputBit("set")
	flag := m.BitReg("flag", false)
	flag.UpdateBit(m.N.Or(flag.Bit(), set), aig.True)
	prev := m.BitReg("prev", false)
	prev.UpdateBit(aig.True, flag.Bit())
	m.Done(flag, prev)
	m.AssertAlways("monotone", m.N.Implies(prev.Bit(), flag.Bit()))
	r := Check(m.N, 0, BMC1(20))
	if r.Kind != KindProof || r.ProofSide != "backward" {
		t.Fatalf("expected backward proof, got %+v", r)
	}
	if r.Depth > 2 {
		t.Fatalf("induction depth too deep: %d", r.Depth)
	}
}

func TestNoCEBoundExhausted(t *testing.T) {
	m := mod5Counter(4)
	r := Check(m.N, 1, Options{MaxDepth: 2}) // CE is at depth 4
	if r.Kind != KindNoCE || r.Depth != 2 {
		t.Fatalf("expected NO_CE at bound, got %v", r)
	}
}

// memEcho: each cycle the input word is written to a fixed address and a
// register mirrors it; reading that address the next cycle must match the
// mirror. True property, needs memory semantics to prove.
func memEcho() *rtl.Module {
	m := rtl.NewModule("echo")
	mem := m.Memory("mem", 2, 3, aig.MemZero)
	d := m.Input("d", 3)
	addr := m.Const(2, 1)
	mem.Write(addr, d, aig.True)
	mirror := m.Register("mirror", 3, 0)
	mirror.SetNext(d)
	m.Done(mirror)
	rd := mem.Read(addr, aig.True)
	m.AssertAlways("echo", m.Eq(rd, mirror.Q))
	return m
}

func TestEMMProvesMemoryProperty(t *testing.T) {
	m := memEcho()
	r := Check(m.N, 0, BMC3(20))
	if r.Kind != KindProof {
		t.Fatalf("expected proof, got %v", r)
	}
}

func TestExplicitProvesSameProperty(t *testing.T) {
	m := memEcho()
	exp, _, err := expmem.Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	r := Check(exp, 0, BMC1(20))
	if r.Kind != KindProof {
		t.Fatalf("expected proof on explicit model, got %v", r)
	}
}

// memReach: input-driven writes and reads; the property "rd != 5" is
// violated once the environment writes 5 somewhere and reads it back.
func memReach() *rtl.Module {
	m := rtl.NewModule("reach")
	mem := m.Memory("mem", 2, 3, aig.MemZero)
	mem.Write(m.Input("wa", 2), m.Input("wd", 3), m.InputBit("we"))
	re := m.InputBit("re")
	rd := mem.Read(m.Input("ra", 2), re)
	seen := m.BitReg("seen", false)
	seen.UpdateBit(m.N.And(re, m.EqConst(rd, 5)), aig.True)
	m.Done(seen)
	m.AssertAlways("ne5", seen.Bit().Not())
	return m
}

func TestEMMvsExplicitAgreeOnReachability(t *testing.T) {
	m := memReach()
	emm := Check(m.N, 0, Options{MaxDepth: 6, UseEMM: true, ValidateWitness: true})
	exp, _, err := expmem.Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	expl := Check(exp, 0, Options{MaxDepth: 6})
	if emm.Kind != KindCE || expl.Kind != KindCE {
		t.Fatalf("both engines must find the CE: emm=%v explicit=%v", emm, expl)
	}
	if emm.Depth != expl.Depth {
		t.Fatalf("CE depth mismatch: emm=%d explicit=%d", emm.Depth, expl.Depth)
	}
}

// randomMemDesign builds a small scripted design mixing memory traffic and
// state, with a reachability property, for EMM/explicit agreement fuzzing.
func randomMemDesign(rng *rand.Rand) *rtl.Module {
	m := rtl.NewModule("fuzz")
	aw := 1 + rng.Intn(2)
	dw := 1 + rng.Intn(3)
	init := aig.MemZero
	if rng.Intn(2) == 0 {
		init = aig.MemArbitrary
	}
	mem := m.Memory("mem", aw, dw, init)
	nw := 1 + rng.Intn(2)
	for i := 0; i < nw; i++ {
		mem.Write(m.Input("wa", aw), m.Input("wd", dw), m.InputBit("we"))
	}
	re := m.InputBit("re")
	rd := mem.Read(m.Input("ra", aw), re)
	acc := m.Register("acc", dw, 0)
	// Accumulate read data only when the read is enabled.
	acc.Update(re, m.XorV(acc.Q, rd))
	m.Done(acc)
	target := rng.Uint64() & (1<<uint(dw) - 1)
	m.AssertAlways("reach", m.EqConst(acc.Q, target).Not())
	return m
}

func TestEMMvsExplicitAgreementFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	for iter := 0; iter < 25; iter++ {
		m := randomMemDesign(rng)
		emm := Check(m.N, 0, Options{MaxDepth: 5, UseEMM: true, ValidateWitness: true})
		exp, _, err := expmem.Expand(m.N)
		if err != nil {
			t.Fatal(err)
		}
		expl := Check(exp, 0, Options{MaxDepth: 5})
		if emm.Kind != expl.Kind || (emm.Kind == KindCE && emm.Depth != expl.Depth) {
			t.Fatalf("iter %d: disagreement emm=%v explicit=%v", iter, emm, expl)
		}
	}
}

// initConsistency: reads the same arbitrary-init address twice into two
// registers and asserts they match — true only with eq. 6.
func initConsistency() *rtl.Module {
	m := rtl.NewModule("initc")
	mem := m.Memory("mem", 2, 3, aig.MemArbitrary)
	st := m.NewFSM("st", 2, 0)
	st.GotoAlways(0, 1)
	st.GotoAlways(1, 2)
	rd := mem.Read(m.Const(2, 3), aig.True)
	a := m.Register("a", 3, 0)
	a.Update(st.In(0), rd)
	b := m.Register("b", 3, 0)
	b.Update(st.In(1), rd)
	m.Done(st.Reg, a, b)
	m.AssertAlways("consistent", m.N.Implies(st.In(2), m.Eq(a.Q, b.Q)))
	return m
}

func TestArbitraryInitProofNeedsEq6(t *testing.T) {
	m := initConsistency()
	with := Check(m.N, 0, BMC3(10))
	if with.Kind != KindProof {
		t.Fatalf("with eq6: expected proof, got %v", with)
	}
	opt := BMC3(10)
	opt.DisableEq6 = true
	without := Check(m.N, 0, opt)
	if without.Kind != KindCE {
		t.Fatalf("without eq6: expected spurious CE, got %v", without)
	}
	// The spurious trace must fail concrete replay.
	if err := without.Witness.Replay(m.N, 0); err == nil {
		t.Fatalf("spurious witness unexpectedly replays")
	}
	// And the explicit model agrees the property is true.
	exp, _, err := expmem.Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	expl := Check(exp, 0, BMC1(10))
	if expl.Kind != KindProof {
		t.Fatalf("explicit model: expected proof, got %v", expl)
	}
}

// lookupBug mimics the Industry II design: writes are dead (WE gated by
// false), reads land in a register; "register stays 0" is true but becomes
// spurious-CE if the memory is fully abstracted.
func lookupBug() *rtl.Module {
	m := rtl.NewModule("lookup")
	mem := m.Memory("mem", 3, 4, aig.MemZero)
	never := m.N.And(m.InputBit("x"), aig.False)
	mem.Write(m.Input("wa", 3), m.Input("wd", 4), never)
	re := m.InputBit("re")
	rd := mem.Read(m.Input("ra", 3), re)
	out := m.Register("out", 4, 0)
	out.Update(re, rd)
	m.Done(out)
	m.AssertAlways("zero", m.IsZero(out.Q))
	return m
}

func TestFullMemoryAbstractionIsSpurious(t *testing.T) {
	m := lookupBug()
	// No EMM: read data free, property falls over (spuriously).
	noEMM := Check(m.N, 0, Options{MaxDepth: 10})
	if noEMM.Kind != KindCE {
		t.Fatalf("full abstraction should produce a spurious CE, got %v", noEMM)
	}
	if err := noEMM.Witness.Replay(m.N, 0); err == nil {
		t.Fatalf("abstract CE should not replay concretely")
	}
	// With EMM: proof.
	emm := Check(m.N, 0, BMC3(20))
	if emm.Kind != KindProof {
		t.Fatalf("EMM should prove the property, got %v", emm)
	}
}

func TestWitnessMemInitExtraction(t *testing.T) {
	// Arbitrary-init memory; the property fails when address 2 holds 5
	// initially and is read out. The witness must pin that word.
	m := rtl.NewModule("winit")
	mem := m.Memory("mem", 2, 3, aig.MemArbitrary)
	rd := mem.Read(m.Const(2, 2), aig.True)
	m.AssertAlways("ne5", m.EqConst(rd, 5).Not())
	r := Check(m.N, 0, Options{MaxDepth: 3, UseEMM: true, ValidateWitness: true})
	if r.Kind != KindCE {
		t.Fatalf("expected CE, got %v", r)
	}
	if got := r.Witness.MemInit[0][2]; got != 5 {
		t.Fatalf("witness must pin mem[2]=5, got %d (map %v)", got, r.Witness.MemInit[0])
	}
}

func TestPBAFlowReducesAndProves(t *testing.T) {
	// Relevant: a mod-5 counter with an unreachable-value property.
	// Irrelevant: a second counter driving a memory that feeds a dangling
	// register.
	m := rtl.NewModule("pba")
	c1 := m.Register("c1", 3, 0)
	wrap := m.EqConst(c1.Q, 4)
	c1.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c1.Q)))
	c2 := m.Register("c2", 4, 0)
	c2.SetNext(m.Inc(c2.Q))
	mem := m.Memory("junk", 2, 4, aig.MemZero)
	mem.Write(m.Slice(c2.Q, 0, 2), c2.Q, aig.True)
	rd := mem.Read(m.Slice(c2.Q, 1, 3), aig.True)
	dangle := m.Register("dangle", 4, 0)
	dangle.SetNext(rd)
	m.Done(c1, c2, dangle)
	m.AssertAlways("ne6", m.EqConst(c1.Q, 6).Not())

	opt := Options{MaxDepth: 40, UseEMM: true, StabilityDepth: 5}
	res := ProveWithPBA(m.N, 0, opt)
	if res.Kind() != KindProof {
		t.Fatalf("expected proof, got %v (phase1=%v)", res.Kind(), res.Phase1)
	}
	if res.Abs == nil {
		t.Fatalf("no abstraction computed")
	}
	// The junk memory must have been abstracted away entirely.
	if res.Abs.MemEnabled[0] {
		t.Fatalf("irrelevant memory should be abstracted: %s", res.Abs)
	}
	// The kept-latch count must be well below the total.
	total := res.Abs.KeptLatches + len(res.Abs.FreeLatches)
	if res.Abs.KeptLatches >= total {
		t.Fatalf("no reduction: %s", res.Abs)
	}
	// c1's latches must be kept.
	for _, q := range c1.Q {
		if res.Abs.FreeLatches[q.Node()] {
			t.Fatalf("relevant latch freed")
		}
	}
}

func TestPBAPhase1FindsRealCE(t *testing.T) {
	m := mod5Counter(3)
	res := ProveWithPBA(m.N, 1, Options{MaxDepth: 20, StabilityDepth: 5})
	if res.Kind() != KindCE || res.Phase1.Depth != 3 {
		t.Fatalf("PBA flow must surface the real CE: %v", res.Phase1)
	}
}

func TestTimeout(t *testing.T) {
	// A design large enough not to finish in a microsecond.
	m := rtl.NewModule("slow")
	mem := m.Memory("mem", 6, 16, aig.MemZero)
	mem.Write(m.Input("wa", 6), m.Input("wd", 16), m.InputBit("we"))
	rd := mem.Read(m.Input("ra", 6), aig.True)
	acc := m.Register("acc", 16, 0)
	acc.SetNext(m.Add(acc.Q, rd))
	m.Done(acc)
	m.AssertAlways("p", m.EqConst(acc.Q, 0xBEEF).Not())
	exp, _, err := expmem.Expand(m.N)
	if err != nil {
		t.Fatal(err)
	}
	r := Check(exp, 0, Options{MaxDepth: 60, Timeout: time.Millisecond})
	if r.Kind != KindTimeout {
		t.Fatalf("expected timeout, got %v", r)
	}
}

func TestCheckMany(t *testing.T) {
	// Counter mod 8 with properties "cnt != k" for k = 0..9: CEs at depth
	// k for k ≤ 7, forward-termination proofs for 8 and 9.
	m := rtl.NewModule("many")
	c := m.Register("cnt", 4, 0)
	wrap := m.EqConst(c.Q, 7)
	c.SetNext(m.MuxV(wrap, m.Const(4, 0), m.Inc(c.Q)))
	m.Done(c)
	var props []int
	for k := 0; k <= 9; k++ {
		m.AssertAlways("ne", m.EqConst(c.Q, uint64(k)).Not())
		props = append(props, k)
	}
	res := CheckMany(m.N, props, Options{MaxDepth: 30, Proofs: true, ValidateWitness: true})
	for k := 0; k <= 7; k++ {
		r := res.Results[k]
		if r.Kind != KindCE || r.Depth != k {
			t.Fatalf("prop %d: got %v", k, r)
		}
	}
	for k := 8; k <= 9; k++ {
		if res.Results[k].Kind != KindProof {
			t.Fatalf("prop %d: expected proof, got %v", k, res.Results[k])
		}
	}
	if res.MaxWitnessDepth != 7 {
		t.Fatalf("max witness depth %d want 7", res.MaxWitnessDepth)
	}
	counts := res.Counts()
	if counts[KindCE] != 8 || counts[KindProof] != 2 {
		t.Fatalf("counts wrong: %v", counts)
	}
}

func TestCheckManyWithEMM(t *testing.T) {
	// Shared-unrolling variant over a memory design: two properties, one
	// reachable, one provable.
	m := rtl.NewModule("manymem")
	mem := m.Memory("mem", 2, 3, aig.MemZero)
	mem.Write(m.Input("wa", 2), m.Input("wd", 3), m.InputBit("we"))
	re := m.InputBit("re")
	rd := mem.Read(m.Input("ra", 2), re)
	got5 := m.BitReg("got5", false)
	got5.UpdateBit(m.N.And(re, m.EqConst(rd, 5)), aig.True)
	m.Done(got5)
	m.AssertAlways("ne5", got5.Bit().Not())               // reachable (CE)
	m.AssertAlways("tauto", m.N.Or(got5.Bit(), aig.True)) // trivially true
	res := CheckMany(m.N, []int{0, 1}, Options{MaxDepth: 8, UseEMM: true, Proofs: true, ValidateWitness: true})
	if res.Results[0].Kind != KindCE || res.Results[0].Depth != 2 {
		t.Fatalf("prop 0: expected CE at depth 2, got %v", res.Results[0])
	}
	if res.Results[1].Kind != KindProof {
		t.Fatalf("prop 1: expected proof, got %v", res.Results[1])
	}
}

// TestPureLatchLFPIsUnsound documents why the default LFP is memory-aware:
// with the paper's literal latch-only loop-free constraint, the forward
// termination check "proves" a property that is in fact violated (the
// violating trace needs the memory contents — which the latch state does
// not capture — to evolve first).
func TestPureLatchLFPIsUnsound(t *testing.T) {
	build := func() *rtl.Module {
		m := rtl.NewModule("lfptrap")
		mem := m.Memory("mem", 2, 3, aig.MemZero)
		mem.Write(m.Input("wa", 2), m.Input("wd", 3), m.InputBit("we"))
		re := m.InputBit("re")
		rd := mem.Read(m.Input("ra", 2), re)
		got5 := m.BitReg("got5", false)
		got5.UpdateBit(m.N.And(re, m.EqConst(rd, 5)), aig.True)
		m.Done(got5)
		m.AssertAlways("ne5", got5.Bit().Not())
		return m
	}
	// Ground truth via the explicit model: the property is violated.
	exp, _, err := expmem.Expand(build().N)
	if err != nil {
		t.Fatal(err)
	}
	if r := Check(exp, 0, Options{MaxDepth: 6}); r.Kind != KindCE {
		t.Fatalf("ground truth should be CE, got %v", r)
	}
	// Paper-literal LFP: bogus forward proof before the CE depth.
	lit := BMC3(6)
	lit.PureLatchLFP = true
	if r := Check(build().N, 0, lit); r.Kind != KindProof {
		t.Fatalf("expected the literal LFP to (unsoundly) prove, got %v", r)
	}
	// Memory-aware LFP (default): the real counter-example is found.
	if r := Check(build().N, 0, BMC3(6)); r.Kind != KindCE {
		t.Fatalf("memory-aware LFP must find the CE, got %v", r)
	}
}

func TestConstraintsInBMC(t *testing.T) {
	// An assumed environment constraint blocks the violation.
	m := rtl.NewModule("constr")
	x := m.InputBit("x")
	r := m.BitReg("r", false)
	r.UpdateBit(x, aig.True)
	m.Done(r)
	m.Assume(x.Not())
	m.AssertAlways("stays0", r.Bit().Not())
	res := Check(m.N, 0, BMC1(10))
	if res.Kind != KindProof {
		t.Fatalf("constraint should make the property provable, got %v", res)
	}
}

func TestResultStrings(t *testing.T) {
	for _, k := range []Kind{KindNoCE, KindCE, KindProof, KindStable, KindTimeout} {
		if k.String() == "?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	r := &Result{Kind: KindProof, ProofSide: "forward"}
	if r.String() == "" {
		t.Fatalf("empty result string")
	}
}

func TestStatsPopulated(t *testing.T) {
	m := memEcho()
	r := Check(m.N, 0, BMC3(15))
	if r.Stats.SolveCalls == 0 || r.Stats.Clauses == 0 || r.Stats.Vars == 0 {
		t.Fatalf("stats not populated: %+v", r.Stats)
	}
	if r.Stats.EMM.Clauses() == 0 {
		t.Fatalf("EMM sizes not recorded")
	}
}
