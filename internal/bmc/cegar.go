package bmc

import (
	"time"

	"emmver/internal/aig"
	"emmver/internal/pba"
)

// CEGARResult is the outcome of the counterexample-guided abstraction
// refinement loop.
type CEGARResult struct {
	// Final is the verdict (proof on an abstract model transfers to the
	// concrete design; counter-examples are concretized before being
	// reported).
	Final *Result
	// Rounds is the number of refinement iterations performed.
	Rounds int
	// KeptLatches is the final number of concrete latches.
	KeptLatches int
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
}

// CEGAR implements the refinement-based flow the paper's introduction
// contrasts with proof-based abstraction (its references [6–8]): start
// from a small abstract model — only the latches in the property's
// combinational support stay concrete — and model-check it. An abstract
// proof is sound (the abstraction over-approximates). An abstract
// counter-example at depth k is checked on the concrete model at the same
// depth: if concretely satisfiable it is a real counter-example;
// otherwise the refutation of the concretization identifies the latches
// to refine with, à la SAT-based refinement (Chauhan et al., FMCAD 2002).
//
// The paper's §1 point — "after every iterative refinement step the model
// size increases, making it increasingly difficult to verify" while PBA
// starts concrete and only shrinks — can be measured against ProveWithPBA
// on the same property (see BenchmarkAblationPBAvsCEGAR).
func CEGAR(n *aig.Netlist, prop int, opt Options, maxRounds int) *CEGARResult {
	start := time.Now()
	res := &CEGARResult{}
	if maxRounds < 1 {
		maxRounds = 16
	}

	// Initial abstraction: keep only the property's support latches.
	kept := map[int]bool{}
	latchIdx := map[aig.NodeID]int{}
	for i, l := range n.Latches {
		latchIdx[l.Node] = i
	}
	for id := range n.SupportLatches(n.Props[prop].OK) {
		kept[latchIdx[id]] = true
	}
	memUsed := map[[2]int]bool{}

	for round := 0; round < maxRounds; round++ {
		res.Rounds = round + 1
		tr := pba.NewTracker()
		for i := range kept {
			tr.LR[i] = true
		}
		for mp := range memUsed {
			tr.MemPortsUsed[mp] = true
		}
		abs := tr.Abstract(n)
		res.KeptLatches = abs.KeptLatches

		aOpt := opt
		aOpt.Abs = abs
		aOpt.Proofs = true
		aOpt.PBA = false
		aOpt.ValidateWitness = false
		r := Check(n, prop, aOpt)
		if r.Kind != KindCE {
			// Proof, bound exhausted, or timeout: transfers to (or ends
			// the analysis of) the concrete design.
			res.Final = r
			res.Elapsed = time.Since(start)
			return res
		}

		// Concretization check at the abstract CE's depth, with proof
		// tracing so a refutation tells us what to refine with.
		cOpt := opt
		cOpt.Abs = nil
		cOpt.Proofs = false
		cOpt.PBA = true
		cOpt.MaxDepth = r.Depth
		cOpt.ValidateWitness = opt.ValidateWitness
		cr := Check(n, prop, cOpt)
		if cr.Kind == KindCE {
			res.Final = cr // real counter-example
			res.Elapsed = time.Since(start)
			return res
		}
		if cr.Kind == KindTimeout {
			res.Final = cr
			res.Elapsed = time.Since(start)
			return res
		}
		// Spurious: refine with the latches (and memory ports) the
		// concrete refutation used.
		grew := false
		for i := range cr.Tracker.LR {
			if !kept[i] {
				kept[i] = true
				grew = true
			}
		}
		for mp := range cr.Tracker.MemPortsUsed {
			if !memUsed[mp] {
				memUsed[mp] = true
				grew = true
			}
		}
		if !grew {
			// No new reasons: fall back to the concrete model outright.
			fOpt := opt
			fOpt.Proofs = true
			res.Final = Check(n, prop, fOpt)
			res.Elapsed = time.Since(start)
			return res
		}
	}
	// Round budget exhausted: decide concretely.
	fOpt := opt
	fOpt.Proofs = true
	res.Final = Check(n, prop, fOpt)
	res.Elapsed = time.Since(start)
	return res
}
