package bmc

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/designs"
	"emmver/internal/rtl"
)

// The refactor-equivalence pin: every existing engine must produce
// byte-identical verdicts, depths, witnesses, and deterministic Stats
// counters across the case-study designs, compared against golden fixtures
// generated before the model/session/strategy extraction. Regenerate with
//
//	go test ./internal/bmc -run TestRefactorEquivalence -update-golden
//
// only when a change is *meant* to alter engine behavior.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/refactor_golden.json from the current engines")

// goldenRecord is one (design, engine) outcome. Wall-clock and heap fields
// are excluded; everything recorded is deterministic for a sequential
// single-threaded run. The portfolio engine races two lanes, so only its
// verdict and depth are pinned (Full=false).
type goldenRecord struct {
	Design string `json:"design"`
	Engine string `json:"engine"`
	Full   bool   `json:"full"`

	Kind      string `json:"kind"`
	Depth     int    `json:"depth"`
	ProofSide string `json:"proof_side,omitempty"`
	Witness   string `json:"witness,omitempty"`

	SolveCalls   int   `json:"solve_calls,omitempty"`
	Conflicts    int64 `json:"conflicts,omitempty"`
	Clauses      int   `json:"clauses,omitempty"`
	Vars         int   `json:"vars,omitempty"`
	Restarts     int64 `json:"restarts,omitempty"`
	RestartsLuby int64 `json:"restarts_luby,omitempty"`
	RestartsEMA  int64 `json:"restarts_ema,omitempty"`
	Simplifies   int64 `json:"simplifies,omitempty"`
	Subsumed     int64 `json:"subsumed,omitempty"`
	Strengthened int64 `json:"strengthened,omitempty"`
	Eliminated   int64 `json:"eliminated_vars,omitempty"`
	EMMClauses   int   `json:"emm_clauses,omitempty"`
}

// witnessDigest renders a Witness deterministically (maps sorted).
func witnessDigest(w *Witness) string {
	if w == nil {
		return ""
	}
	out := fmt.Sprintf("len=%d", w.Length)
	for f, in := range w.Inputs {
		ids := make([]int, 0, len(in))
		for id := range in {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		out += fmt.Sprintf("|f%d:", f)
		for _, id := range ids {
			v := 0
			if in[aig.NodeID(id)] {
				v = 1
			}
			out += fmt.Sprintf("%d=%d,", id, v)
		}
	}
	ids := make([]int, 0, len(w.InitLatches))
	for id := range w.InitLatches {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out += "|latches:"
	for _, id := range ids {
		v := 0
		if w.InitLatches[aig.NodeID(id)] {
			v = 1
		}
		out += fmt.Sprintf("%d=%d,", id, v)
	}
	for mi, words := range w.MemInit {
		addrs := make([]int, 0, len(words))
		for a := range words {
			addrs = append(addrs, a)
		}
		sort.Ints(addrs)
		out += fmt.Sprintf("|mem%d:", mi)
		for _, a := range addrs {
			out += fmt.Sprintf("%d=%d,", a, words[a])
		}
	}
	return out
}

// growthEquivNetlist is the §S2 shared-address shape (exp.GrowthSolveNetlist
// at reduced widths), rebuilt locally: the exp package imports bmc, so the
// test cannot import it back.
func growthEquivNetlist() *aig.Netlist {
	m := rtl.NewModule("growth-equiv")
	mem := m.Memory("mem", 6, 8, aig.MemArbitrary)
	addr := m.Input("a", 6)
	mem.Write(addr, m.Input("wd", 8), m.InputBit("we"))
	re0 := m.InputBit("re0")
	re1 := m.InputBit("re1")
	rd0 := mem.Read(addr, re0)
	rd1 := mem.Read(addr, re1)
	both := m.N.And(re0, re1)
	ok := m.N.And(both, m.Eq(rd0, rd1).Not()).Not()
	m.AssertAlways("shared-read-agree", ok)
	m.Done()
	return m.N
}

func equivDesigns() []struct {
	name  string
	n     *aig.Netlist
	prop  int
	depth int
} {
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 4, DataW: 8, StackAW: 4})
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 16})
	l := designs.NewLookup(designs.LookupConfig{AW: 4, DW: 6, NumProps: 8, Latency: 6})
	return []struct {
		name  string
		n     *aig.Netlist
		prop  int
		depth int
	}{
		{"quicksort-p1", q.Netlist(), q.P1Index, 10},
		{"filter-0", f.Netlist(), 0, 12},
		{"lookup-inv", l.Netlist(), l.InvariantIndex, 8},
		{"growth", growthEquivNetlist(), 0, 10},
	}
}

func runEquivEngine(t *testing.T, engine string, n *aig.Netlist, prop, depth int) (rec goldenRecord) {
	t.Helper()
	opt := Options{MaxDepth: depth}
	switch engine {
	case "bmc1":
		opt.Proofs = true
	case "bmc2":
		opt.UseEMM = true
	case "bmc3":
		opt.UseEMM = true
		opt.Proofs = true
	case "portfolio":
		opt.UseEMM = true
		opt.Proofs = true
		opt.Portfolio = true
	case "pba":
		opt.UseEMM = true
		opt.StabilityDepth = 10
		res := ProveWithPBA(n, prop, opt)
		r := res.Phase1
		if res.Proof != nil {
			r = res.Proof
		}
		return goldenRecord{
			Full: true, Kind: res.Kind().String(), Depth: r.Depth,
			ProofSide: r.ProofSide, Witness: witnessDigest(r.Witness),
			SolveCalls: r.Stats.SolveCalls, Conflicts: r.Stats.Conflicts,
			Clauses: r.Stats.Clauses, Vars: r.Stats.Vars,
			Restarts: r.Stats.Restarts, RestartsLuby: r.Stats.RestartsLuby,
			RestartsEMA: r.Stats.RestartsEMA, Simplifies: r.Stats.Simplifies,
			Subsumed: r.Stats.SubsumedClauses, Strengthened: r.Stats.StrengthenedClauses,
			Eliminated: r.Stats.EliminatedVars, EMMClauses: r.Stats.EMM.Clauses(),
		}
	default:
		t.Fatalf("unknown engine %s", engine)
	}
	r := Check(n, prop, opt)
	rec = goldenRecord{Kind: r.Kind.String(), Depth: r.Depth}
	if engine == "portfolio" {
		// Two racing lanes: verdict and depth are deterministic, the rest
		// (which lane answered, solver work split) is not.
		return rec
	}
	rec.Full = true
	rec.ProofSide = r.ProofSide
	rec.Witness = witnessDigest(r.Witness)
	rec.SolveCalls = r.Stats.SolveCalls
	rec.Conflicts = r.Stats.Conflicts
	rec.Clauses = r.Stats.Clauses
	rec.Vars = r.Stats.Vars
	rec.Restarts = r.Stats.Restarts
	rec.RestartsLuby = r.Stats.RestartsLuby
	rec.RestartsEMA = r.Stats.RestartsEMA
	rec.Simplifies = r.Stats.Simplifies
	rec.Subsumed = r.Stats.SubsumedClauses
	rec.Strengthened = r.Stats.StrengthenedClauses
	rec.Eliminated = r.Stats.EliminatedVars
	rec.EMMClauses = r.Stats.EMM.Clauses()
	return rec
}

func TestRefactorEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine sweep")
	}
	goldenPath := filepath.Join("testdata", "refactor_golden.json")
	var got []goldenRecord
	for _, d := range equivDesigns() {
		for _, engine := range []string{"bmc1", "bmc2", "bmc3", "portfolio", "pba"} {
			rec := runEquivEngine(t, engine, d.n, d.prop, d.depth)
			rec.Design, rec.Engine = d.name, engine
			got = append(got, rec)
		}
	}
	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records to %s", len(got), goldenPath)
		return
	}
	b, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixtures missing (run with -update-golden): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d records, run produced %d", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s/%s drifted:\n  want %+v\n  got  %+v",
				want[i].Design, want[i].Engine, want[i], got[i])
		}
	}
}
