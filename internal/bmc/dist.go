package bmc

// Distributed cube-and-conquer: this process runs ONE worker engine of a
// multi-process fleet, with the cube queue and clause bus of cube.go
// replaced by a sharenet broker. Depths advance in fleet-wide lockstep
// (the broker releases a depth only when every cube is refuted), the
// broker-assigned worker 0 runs the termination proofs its peers skip, and
// the first decisive answer — a SAT cube, a proof, a timeout — finishes
// everyone, exactly mirroring the in-process first-wins decide.
//
// Soundness is inherited wholesale: the cubes the broker leases are the
// same exhaustive comparator-prefix partition cubeCECheck seeds (the
// broker reuses the seed-width formula with the fleet size as the job
// count), a cube result is a deterministic fact about the shared formula
// (so lease reassignment after a worker death can at worst duplicate
// work), and clauses cross processes in the same canonical coding they
// cross goroutines in — the wire adds loss, never invention.

import (
	"context"
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/obs"
	"emmver/internal/sat"
	"emmver/internal/share"
	"emmver/internal/sharenet"
)

// DistEligible reports whether a run can join a distributed fleet: one
// property, no PBA tracing, no environment constraints — the same rules as
// in-process sharing/cubing, which the socket changes nothing about.
func DistEligible(n *aig.Netlist, opt Options) error {
	if opt.PBA {
		return fmt.Errorf("bmc: distributed solving excludes PBA (imported clauses have no proof derivation)")
	}
	if opt.LazyEMM {
		return fmt.Errorf("bmc: distributed solving excludes demand-driven EMM instantiation (cube leases and the broker's intern table assume the eager comparator order); drop -lazy")
	}
	if len(n.Constraints) > 0 {
		return fmt.Errorf("bmc: distributed solving excludes designs with environment constraints")
	}
	return nil
}

// CheckDist runs property prop of n as this process's share of a
// distributed fleet, pulling cubes from (and pushing lemmas through) the
// given client. Every process of the fleet must run the same netlist,
// property, and options. The returned result carries a witness only in the
// process whose engine found the counter-example; the others report the
// fleet verdict with a nil Witness.
func CheckDist(n *aig.Netlist, prop int, opt Options, cl *sharenet.Client) (*Result, error) {
	return CheckDistCtx(context.Background(), n, prop, opt, cl)
}

// CheckDistCtx is CheckDist under a cancellation context.
func CheckDistCtx(ctx context.Context, n *aig.Netlist, prop int, opt Options, cl *sharenet.Client) (*Result, error) {
	c := compileModel(n, []int{prop}, &opt)
	if err := DistEligible(c.n, opt); err != nil {
		return nil, err
	}
	r, err := checkDist(ctx, c.n, c.props[0], opt, cl)
	if err != nil {
		return nil, err
	}
	return c.finish(r, prop, opt), nil
}

// checkDist is the distributed engine loop on the compiled netlist.
func checkDist(ctx context.Context, n *aig.Netlist, prop int, opt Options, cl *sharenet.Client) (*Result, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if opt.Timeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(runCtx, opt.Timeout)
		defer tcancel()
		opt.Timeout = 0
	}
	// A fleet verdict (wherever it was found) interrupts this worker's
	// in-flight solve at its next poll.
	cl.OnVerdict(func(sharenet.Verdict) { cancel() })

	var fwd, bwd *share.Bus
	if opt.Share {
		fwd = share.NewBus(1, ringCapacity(opt))
		cl.AttachBus(0, fwd)
		if opt.Proofs {
			bwd = share.NewBus(1, ringCapacity(opt))
			cl.AttachBus(1, bwd)
		}
	}
	e := newEngine(runCtx, n, prop, opt)
	if e.fg != nil {
		e.fg.TrackComparators = true
	}
	attachShare(e, fwd, bwd, 0)
	self := cl.WorkerID()
	proofWorker := opt.Proofs && self == 0

	finish := func(r *Result) *Result {
		r.Prop = prop
		st := e.snapshotStats()
		addBusStats(&st, fwd, bwd)
		publishCoopObs(opt.Obs, &st)
		r.Stats = st
		r.DepthStats = e.depthStats
		r.Tracker = e.tracker
		return r
	}
	// remoteResult maps the fleet verdict onto a local Result once the
	// decisive answer happened (here or elsewhere).
	remoteResult := func(depth int) *Result {
		v, ok := cl.Verdict()
		if !ok {
			// Transport gone (or broker closed verdict-less): this worker
			// can only report how far it got.
			return &Result{Kind: KindTimeout, Depth: depth}
		}
		switch v.Kind {
		case sharenet.VerdictCE:
			return &Result{Kind: KindCE, Depth: v.Depth}
		case sharenet.VerdictNoCE:
			return &Result{Kind: KindNoCE, Depth: v.Depth}
		case sharenet.VerdictProof:
			return &Result{Kind: KindProof, Depth: v.Depth, ProofSide: v.Side}
		default:
			return &Result{Kind: KindTimeout, Depth: v.Depth}
		}
	}

	depth := 0
	for depth <= opt.MaxDepth {
		if e.timedOut() {
			if _, ok := cl.Verdict(); !ok {
				cl.SendVerdict(sharenet.Verdict{Kind: sharenet.VerdictTimeout, Depth: depth})
			}
			return finish(remoteResult(max(depth-1, 0))), nil
		}
		sp := e.obs.Span("bmc.depth", obs.F("depth", depth), obs.F("prop", prop))
		e.prepareDepth(depth)
		if proofWorker {
			// An Unknown from either check means this worker was interrupted
			// (fleet verdict or local timeout); the cube loop below notices
			// and reports, so proofs just fall through.
			var r *Result
			switch e.forwardCheck(depth) {
			case sat.Unsat:
				e.logf("depth %d: forward termination", depth)
				r = &Result{Kind: KindProof, Depth: depth, ProofSide: "forward"}
			case sat.Sat:
				if e.backwardCheck(prop, depth) == sat.Unsat {
					e.logf("depth %d: backward termination", depth)
					r = &Result{Kind: KindProof, Depth: depth, ProofSide: "backward"}
				}
			}
			if r != nil {
				cl.SendVerdict(sharenet.Verdict{Kind: sharenet.VerdictProof, Depth: depth, Side: r.ProofSide})
				sp.End(obs.F("decided", true))
				e.obsResolved(r.Kind)
				return finish(r), nil
			}
		}
		nComp := 0
		if e.fg != nil {
			nComp = len(e.fg.CompLits())
		}
		next, r, err := distCubeLoop(e, cl, prop, depth, nComp, remoteResult)
		e.publishObs(depth)
		if opt.CollectDepthStats {
			e.collectDepthStat(depth)
		}
		sp.End(obs.F("emm_clauses", e.emmClausesCum()),
			obs.F("clauses", e.fs.NumClauses()),
			obs.F("decided", r != nil))
		if err != nil {
			return nil, err
		}
		if r != nil {
			e.obsResolved(r.Kind)
			return finish(r), nil
		}
		e.simplifyStep(depth)
		depth = next
	}
	// The broker finishes the fleet at MaxDepth; falling out of the loop
	// means an advance raced the finish frame — the verdict tells the story.
	return finish(remoteResult(opt.MaxDepth)), nil
}

// distCubeLoop runs one depth's lease/solve/report cycle. It returns the
// next depth to prepare (on a fleet advance), or a decisive local Result.
func distCubeLoop(e *engine, cl *sharenet.Client, prop, depth, nComp int, remoteResult func(int) *Result) (int, *Result, error) {
	for {
		if _, ok := cl.Verdict(); ok {
			return 0, remoteResult(depth), nil
		}
		resp, err := cl.RequestWork(depth, nComp)
		if err != nil {
			return 0, nil, fmt.Errorf("bmc: fleet link lost at depth %d: %w", depth, err)
		}
		switch resp.Kind {
		case sharenet.WorkAdvance:
			if resp.Depth <= depth {
				return 0, nil, fmt.Errorf("bmc: broker advanced %d -> %d", depth, resp.Depth)
			}
			return resp.Depth, nil, nil
		case sharenet.WorkFinish:
			return 0, remoteResult(depth), nil
		case sharenet.WorkLease:
			signs, err := parseSigns(resp.Signs)
			if err != nil {
				return 0, nil, err
			}
			st := e.solveCube(prop, depth, signs, cubeConflictBudget)
			if st == sat.Unknown && !e.timedOut() {
				if len(signs) < nComp {
					if err := cl.SendResult(depth, resp.Signs, true); err != nil {
						return 0, nil, err
					}
					continue
				}
				st = e.solveCube(prop, depth, signs, 0)
			}
			switch st {
			case sat.Unsat:
				if err := cl.SendResult(depth, resp.Signs, false); err != nil {
					return 0, nil, err
				}
			case sat.Sat:
				// Extract before anything else touches this solver: the
				// model lives here, and only here — peers get the verdict.
				wit := e.extractWitness(depth)
				e.validateWitness(wit, prop)
				e.logf("depth %d: counter-example (distributed worker %d)", depth, cl.WorkerID())
				cl.SendVerdict(sharenet.Verdict{Kind: sharenet.VerdictCE, Depth: depth})
				return 0, &Result{Kind: KindCE, Depth: depth, Witness: wit}, nil
			default:
				// Interrupted: a fleet verdict cancelled us, or this
				// worker's own budget expired. First verdict wins.
				if _, ok := cl.Verdict(); !ok {
					cl.SendVerdict(sharenet.Verdict{Kind: sharenet.VerdictTimeout, Depth: depth})
				}
				return 0, remoteResult(depth), nil
			}
		default:
			return 0, nil, fmt.Errorf("bmc: unknown work response kind %d", resp.Kind)
		}
	}
}

// parseSigns decodes a broker cube key ('0'/'1' per comparator index).
func parseSigns(s string) ([]bool, error) {
	signs := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			signs[i] = true
		default:
			return nil, fmt.Errorf("bmc: corrupt cube key %q", s)
		}
	}
	return signs, nil
}

// DistWorkerHello builds the client hello for a CheckDist run: the broker
// learns the bound (for the NO_CE depth) and whether this worker would run
// termination proofs if assigned slot 0.
func DistWorkerHello(opt Options) (maxDepth int, proofs bool) {
	return opt.MaxDepth, opt.Proofs
}
