package bmc

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"emmver/internal/aig"
	"emmver/internal/designs"
	"emmver/internal/sharenet"
)

// runDistFleet spins up a loopback fleet — broker on a unix socket, workers
// CheckDist goroutines dialing it — and returns the per-worker results and
// errors (indexed by broker-assigned worker id). kill >= 0 severs that
// worker's link 25ms into its run, simulating a crash. A watchdog fails the
// test rather than letting a protocol bug hang the suite.
func runDistFleet(t *testing.T, n *aig.Netlist, prop int, opt Options, workers, kill int) ([]*Result, []error) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "fleet.sock")
	br, err := sharenet.Listen("unix", sock, sharenet.BrokerOptions{Workers: workers})
	if err != nil {
		t.Fatalf("broker: %v", err)
	}
	defer br.Close()

	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			maxDepth, proofs := DistWorkerHello(opt)
			cl, err := sharenet.Dial("unix", sock, sharenet.ClientOptions{MaxDepth: maxDepth, Proofs: proofs})
			if err != nil {
				errs[w] = err
				return
			}
			defer cl.Close()
			id := cl.WorkerID()
			if id == kill {
				timer := time.AfterFunc(25*time.Millisecond, cl.Kill)
				defer timer.Stop()
			}
			results[id], errs[id] = CheckDist(n, prop, opt, cl)
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("distributed fleet hung")
	}
	return results, errs
}

// assertDistParity checks every worker's result against the sequential
// baseline: identical Kind/Depth/ProofSide everywhere, and on a CE at least
// one worker (the finder) carries a witness of the baseline length while
// the others report the bare verdict.
func assertDistParity(t *testing.T, name string, base *Result, results []*Result, errs []error) {
	t.Helper()
	witnesses := 0
	for w, r := range results {
		if errs[w] != nil {
			t.Fatalf("%s: worker %d: %v", name, w, errs[w])
		}
		if r == nil {
			t.Fatalf("%s: worker %d returned no result", name, w)
		}
		if r.Kind != base.Kind || r.Depth != base.Depth || r.ProofSide != base.ProofSide {
			t.Fatalf("%s: worker %d got %v depth %d (%s), baseline %v depth %d (%s)",
				name, w, r.Kind, r.Depth, r.ProofSide, base.Kind, base.Depth, base.ProofSide)
		}
		if r.Witness != nil {
			witnesses++
			if base.Witness == nil {
				t.Fatalf("%s: worker %d produced a witness on a %v verdict", name, w, base.Kind)
			}
			if r.Witness.Length != base.Witness.Length {
				t.Fatalf("%s: worker %d witness length %d, baseline %d",
					name, w, r.Witness.Length, base.Witness.Length)
			}
		}
	}
	if base.Witness != nil && witnesses == 0 {
		t.Fatalf("%s: no worker carried the counter-example witness", name)
	}
}

// TestDistVerdictParity runs a two-process-shaped fleet (two engines over a
// real unix socket) on the CE, NO_CE, and proof workloads and checks every
// worker reports exactly the sequential verdict.
func TestDistVerdictParity(t *testing.T) {
	qs := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})

	cases := []struct {
		name string
		prop int
		opt  Options
	}{
		{"quicksort/ce", qs.P1Index, BMC2(8)},
		{"quicksort/no-ce", qs.P1Index, BMC2(3)},
		{"quicksort/proof", qs.P2Index, Options{MaxDepth: 14, UseEMM: true, Proofs: true}},
	}
	for _, tc := range cases {
		tc.opt.ValidateWitness = true
		tc.opt.Share = true
		base := Check(qs.Netlist(), tc.prop, tc.opt)
		results, errs := runDistFleet(t, qs.Netlist(), tc.prop, tc.opt, 2, -1)
		assertDistParity(t, tc.name, base, results, errs)
	}
}

// TestDistSplitParity forces the conflict budget down so leased cubes split
// at the broker, and checks the refined partition still reaches the
// sequential verdict.
func TestDistSplitParity(t *testing.T) {
	old := cubeConflictBudget
	cubeConflictBudget = 1
	defer func() { cubeConflictBudget = old }()

	qs := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	opt := BMC2(6)
	opt.ValidateWitness = true
	opt.Share = true
	base := Check(qs.Netlist(), qs.P1Index, opt)
	results, errs := runDistFleet(t, qs.Netlist(), qs.P1Index, opt, 2, -1)
	assertDistParity(t, "split-parity", base, results, errs)
}

// TestDistWorkerDeath kills one worker of three mid-solve and requires the
// survivors to neither hang nor change the verdict — the broker requeues the
// dead worker's leases on disconnect. The budget is forced down so the run
// is long enough for the kill to land mid-protocol.
func TestDistWorkerDeath(t *testing.T) {
	old := cubeConflictBudget
	cubeConflictBudget = 1
	defer func() { cubeConflictBudget = old }()

	qs := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	opt := BMC2(6)
	opt.ValidateWitness = true
	opt.Share = true
	base := Check(qs.Netlist(), qs.P1Index, opt)
	results, errs := runDistFleet(t, qs.Netlist(), qs.P1Index, opt, 3, 1)

	survivors := 0
	for w, r := range results {
		if w == 1 {
			// The killed worker may have finished before the kill landed or
			// died partway; either way it must not report a wrong verdict.
			if errs[w] == nil && r != nil && r.Kind != base.Kind && r.Kind != KindTimeout {
				t.Fatalf("killed worker reported %v, baseline %v", r.Kind, base.Kind)
			}
			continue
		}
		if errs[w] != nil {
			t.Fatalf("surviving worker %d: %v", w, errs[w])
		}
		if r == nil {
			t.Fatalf("surviving worker %d returned no result", w)
		}
		if r.Kind != base.Kind || r.Depth != base.Depth {
			t.Fatalf("surviving worker %d got %v depth %d, baseline %v depth %d",
				w, r.Kind, r.Depth, base.Kind, base.Depth)
		}
		survivors++
	}
	if survivors != 2 {
		t.Fatalf("expected 2 surviving workers, got %d", survivors)
	}
}

// TestDistEligibleGate pins the soundness gate: PBA runs and constrained
// designs must be rejected before any socket traffic happens.
func TestDistEligibleGate(t *testing.T) {
	qs := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	if _, err := CheckDist(qs.Netlist(), qs.P2Index, BMC3(4), nil); err == nil {
		t.Fatal("PBA run was not rejected")
	}

	counter := mod5Counter(3)
	constrained := *counter.N
	constrained.Constraints = []aig.Lit{aig.True}
	opt := Options{MaxDepth: 4}
	opt.Passes = "none" // keep the constraint from being swept before the gate
	if _, err := CheckDist(&constrained, 0, opt, nil); err == nil {
		t.Fatal("constrained design was not rejected")
	}
}
