package bmc

import (
	"testing"

	"emmver/internal/designs"
	"emmver/internal/sat"
	"emmver/internal/share"
	"emmver/internal/unroll"
)

// assertSameVerdict checks the deterministic result fields agree between a
// baseline run and a cooperative run (witness input values may differ —
// any satisfying assignment is a valid counter-example).
func assertSameVerdict(t *testing.T, name string, base, coop *Result) {
	t.Helper()
	if base.Kind != coop.Kind || base.Depth != coop.Depth || base.ProofSide != coop.ProofSide {
		t.Fatalf("%s: baseline %v (%s) vs cooperative %v (%s)",
			name, base, base.ProofSide, coop, coop.ProofSide)
	}
	if (base.Witness == nil) != (coop.Witness == nil) {
		t.Fatalf("%s: witness presence differs", name)
	}
	if base.Witness != nil && base.Witness.Length != coop.Witness.Length {
		t.Fatalf("%s: witness length %d vs %d", name, base.Witness.Length, coop.Witness.Length)
	}
}

// coopModes enumerates the cooperative configurations a verdict must be
// invariant under: cube-only, share-only (via the single-prop fleet
// delegation), and cube+share.
var coopModes = []struct {
	name        string
	share, cube bool
}{
	{"cube", false, true},
	{"share+cube", true, true},
}

// TestCoopVerdictDeterminism runs every workload the acceptance list names
// (quicksort, filter, lookup, memory-free BMC-1) under the cooperative
// modes and checks the verdicts match the sequential engine's. Run with
// -race in CI to exercise the bus under contention.
func TestCoopVerdictDeterminism(t *testing.T) {
	qs := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	fl := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 4})
	lk := designs.NewLookup(designs.LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3})
	counter := mod5Counter(3)

	cases := []struct {
		name string
		run  func(opt Options) *Result
		opt  Options
	}{
		{"quicksort/bmc2-p1", func(o Options) *Result { return Check(qs.Netlist(), qs.P1Index, o) }, BMC2(8)},
		{"quicksort/bmc3-p2", func(o Options) *Result { return Check(qs.Netlist(), qs.P2Index, o) }, Options{MaxDepth: 14, UseEMM: true, Proofs: true}},
		{"filter/p0", func(o Options) *Result { return Check(fl.Netlist(), fl.PropIndices()[0], o) }, BMC2(14)},
		{"lookup/p0", func(o Options) *Result { return Check(lk.Netlist(), lk.ReachIndices[0], o) }, BMC2(8)},
		{"bmc1/counter-ce", func(o Options) *Result { return Check(counter.N, 1, o) }, Options{MaxDepth: 10}},
		{"bmc1/counter-proof", func(o Options) *Result { return Check(counter.N, 0, o) }, Options{MaxDepth: 8, Proofs: true}},
	}
	for _, tc := range cases {
		tc.opt.ValidateWitness = true
		base := tc.run(tc.opt)
		for _, mode := range coopModes {
			opt := tc.opt.WithShare(mode.share).WithCube(mode.cube).WithJobs(4)
			coop := tc.run(opt)
			assertSameVerdict(t, tc.name+"/"+mode.name, base, coop)
		}
	}
}

// TestCoopSplitRefinement forces the conflict budget down so cubes split,
// and checks the refinement neither changes the verdict nor loses cubes.
func TestCoopSplitRefinement(t *testing.T) {
	old := cubeConflictBudget
	cubeConflictBudget = 1
	defer func() { cubeConflictBudget = old }()

	qs := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	opt := BMC2(6)
	opt.ValidateWitness = true
	base := Check(qs.Netlist(), qs.P1Index, opt)
	coop := Check(qs.Netlist(), qs.P1Index, opt.WithShare(true).WithCube(true).WithJobs(4))
	assertSameVerdict(t, "split-refinement", base, coop)
	if coop.Stats.CubeSplits == 0 {
		t.Errorf("budget=1 run recorded no cube splits")
	}
}

// TestShareFleetManyProps drives the multi-property fleet with the sharing
// bus on: verdicts must equal the sequential ones, and on an EMM workload
// with shared addresses the bus must actually carry clauses.
func TestShareFleetManyProps(t *testing.T) {
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 8})
	opt := Options{MaxDepth: 3*4 + 6, UseEMM: true, Proofs: true, ValidateWitness: true}
	seq := CheckMany(f.Netlist(), f.PropIndices(), opt)
	coop := CheckManyParallel(f.Netlist(), f.PropIndices(), opt.WithShare(true), 4)
	assertSameVerdicts(t, seq, coop)
	if coop.Stats.SharedExported == 0 {
		t.Errorf("sharing fleet exported no clauses")
	}
}

// TestShareIneligiblePBA pins the soundness gate: a PBA run must not share
// or cube even when asked to (imported clauses have no derivation in the
// proof trace, and cores must reflect the worker's own clauses only).
func TestShareIneligiblePBA(t *testing.T) {
	qs := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	opt := BMC3(10)
	opt.StopAtStable = true
	base := Check(qs.Netlist(), qs.P2Index, opt)
	coop := Check(qs.Netlist(), qs.P2Index, opt.WithShare(true).WithCube(true).WithJobs(4))
	assertSameVerdict(t, "pba-gate", base, coop)
	if coop.Stats.SharedExported != 0 || coop.Stats.CubeSplits != 0 {
		t.Errorf("PBA run used cooperative machinery: exported=%d splits=%d",
			coop.Stats.SharedExported, coop.Stats.CubeSplits)
	}
	if (base.Tracker == nil) != (coop.Tracker == nil) {
		t.Errorf("pba-gate: tracker presence differs")
	}
}

// TestShareBridgePrivateRangeGuards pins the bridge's backstop against
// private intern ids crossing a process boundary: a clause whose comparator
// code is in the private range (coined locally after the transport died)
// must not be exported, and an imported clause carrying one must be dropped
// even when this worker's comps map holds the same base — for its own,
// different, private comparator.
func TestShareBridgePrivateRangeGuards(t *testing.T) {
	n := mod5Counter(3).N
	s := sat.New()
	u := unroll.New(n, s, unroll.Initialized)
	bus := share.NewBus(1, 8)
	bus.SetInterner(func(string) (uint64, bool) { return 0, false }) // dead transport: every id is private
	b := newShareBridge(bus, u, 0)

	priv := sat.MkLit(s.NewVar(), false)
	privBase := compCanonBase + bus.Intern("cmp:orphan")
	if privBase < compPrivateBase {
		t.Fatalf("dead-transport intern produced base %d below the private range", privBase)
	}
	u.SetCanon(priv, privBase)
	b.comps[privBase] = priv

	pub := sat.MkLit(s.NewVar(), false)
	pubBase := compCanonBase + 5
	u.SetCanon(pub, pubBase)
	b.comps[pubBase] = pub

	b.export([]sat.Lit{priv}, 2)
	if got := bus.Exported(); got != 0 {
		t.Fatalf("clause with private comparator code was exported (%d)", got)
	}
	if got := bus.Filtered(); got != 1 {
		t.Fatalf("private-code export not counted filtered (%d)", got)
	}
	b.export([]sat.Lit{pub}, 2)
	if got := bus.Exported(); got != 1 {
		t.Fatalf("broker-coded clause was not exported (%d)", got)
	}

	if _, ok := b.decode(privBase << 1); ok {
		t.Fatalf("private-range comparator code decoded on import")
	}
	if l, ok := b.decode(pubBase << 1); !ok || l != pub {
		t.Fatalf("broker-range comparator code failed to decode (%v, %v)", l, ok)
	}
}
