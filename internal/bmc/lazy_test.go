package bmc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/designs"
	"emmver/internal/expmem"
	"emmver/internal/rtl"
)

// The lazy-EMM equivalence suite: demand-driven instantiation relaxes the
// counter-example query only, so every verdict, depth, proof side, and
// witness must match the eager encoding exactly — and the relaxation must
// never emit MORE EMM clauses than the eager run (on the CE path it should
// emit strictly fewer whenever any read-over-write axiom goes unneeded).

// assertLazyEquiv runs opt eagerly and with LazyEMM, and compares outcomes.
func assertLazyEquiv(t *testing.T, name string, run func(opt Options) *Result, opt Options) {
	t.Helper()
	eager := run(opt)
	lo := opt
	lo.LazyEMM = true
	lazy := run(lo)
	if eager.Kind != lazy.Kind || eager.Depth != lazy.Depth || eager.ProofSide != lazy.ProofSide {
		t.Errorf("%s: eager %v (%s) vs lazy %v (%s)",
			name, eager, eager.ProofSide, lazy, lazy.ProofSide)
	}
	if (eager.Witness == nil) != (lazy.Witness == nil) {
		t.Errorf("%s: witness presence differs", name)
	} else if eager.Witness != nil && eager.Witness.Length != lazy.Witness.Length {
		t.Errorf("%s: witness length %d vs %d", name, eager.Witness.Length, lazy.Witness.Length)
	}
	// Stats.EMM reports the CE-path generator in both modes; the lazy
	// relaxation instantiates a subset of the eager axioms.
	eagerEMM := eager.Stats.EMM.Clauses() + eager.Stats.EMM.InitClauses
	lazyEMM := lazy.Stats.EMM.Clauses() + lazy.Stats.EMM.InitClauses
	if lazyEMM > eagerEMM {
		t.Errorf("%s: lazy run emitted MORE EMM clauses (%d) than eager (%d)",
			name, lazyEMM, eagerEMM)
	}
	if lazy.Stats.LazyRounds < lazy.Stats.LazySpurious {
		t.Errorf("%s: %d spurious models but only %d refinement rounds",
			name, lazy.Stats.LazySpurious, lazy.Stats.LazyRounds)
	}
}

func TestLazyEquivalenceQuickSort(t *testing.T) {
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 3, DataW: 4, StackAW: 3})
	n := q.Netlist()
	for _, tc := range []struct {
		name string
		prop int
		opt  Options
	}{
		{"bmc2-p1", q.P1Index, BMC2(8)},
		// Proofs without PBA: the CE check moves to its own lazy solver
		// while the termination queries keep the full eager set.
		{"proofs-p2", q.P2Index, Options{MaxDepth: 14, UseEMM: true, Proofs: true}},
	} {
		tc.opt.ValidateWitness = true
		assertLazyEquiv(t, "quicksort/"+tc.name, func(opt Options) *Result {
			return Check(n, tc.prop, opt)
		}, tc.opt)
	}
}

func TestLazyEquivalenceImageFilter(t *testing.T) {
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 8})
	n := f.Netlist()
	for _, prop := range []int{0, 3, 7} {
		opt := BMC2(3*4 + 10)
		opt.ValidateWitness = true
		assertLazyEquiv(t, fmt.Sprintf("filter/p%d", prop), func(opt Options) *Result {
			return Check(n, prop, opt)
		}, opt)
	}
}

func TestLazyEquivalenceLookup(t *testing.T) {
	// Arbitrary-init memory under proofs: exercises the eq. 6 oracle
	// grouping and the proof-side solver split together.
	l := designs.NewLookup(designs.LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3})
	n := l.Netlist()
	opt := Options{MaxDepth: 12, UseEMM: true, Proofs: true}
	assertLazyEquiv(t, "lookup/inv", func(opt Options) *Result {
		return Check(n, l.InvariantIndex, opt)
	}, opt)
}

func TestLazyEquivalenceGrowthShape(t *testing.T) {
	// The §S2/§S7 shared-address shape at reduced widths: one write and two
	// reads on a single address bus, arbitrary init, valid property — every
	// depth is an UNSAT accepted straight from the relaxation.
	m := rtl.NewModule("growth")
	mem := m.Memory("mem", 4, 4, aig.MemArbitrary)
	addr := m.Input("a", 4)
	mem.Write(addr, m.Input("wd", 4), m.InputBit("we"))
	re0, re1 := m.InputBit("re0"), m.InputBit("re1")
	rd0, rd1 := mem.Read(addr, re0), mem.Read(addr, re1)
	both := m.N.And(re0, re1)
	m.AssertAlways("agree", m.N.And(both, m.Eq(rd0, rd1).Not()).Not())
	opt := BMC2(10)
	assertLazyEquiv(t, "growth", func(opt Options) *Result {
		return Check(m.N, 0, opt)
	}, opt)
}

func TestLazyWitnessMemInit(t *testing.T) {
	// The lazily-found CE must still pin the arbitrary-init word it read:
	// MemInit comes from the validated model via the semantic oracle, not
	// from eager ReadEvents.
	m := rtl.NewModule("winit")
	mem := m.Memory("mem", 2, 3, aig.MemArbitrary)
	rd := mem.Read(m.Const(2, 2), aig.True)
	m.AssertAlways("ne5", m.EqConst(rd, 5).Not())
	opt := Options{MaxDepth: 3, UseEMM: true, LazyEMM: true, ValidateWitness: true}
	r := Check(m.N, 0, opt)
	if r.Kind != KindCE {
		t.Fatalf("expected CE, got %v", r)
	}
	if r.Stats.LazyRounds == 0 {
		t.Fatalf("lazy engine reported no refinement rounds")
	}
	if got := r.Witness.MemInit[0][2]; got != 5 {
		t.Fatalf("witness must pin mem[2]=5, got %d (map %v)", got, r.Witness.MemInit[0])
	}
	if err := r.Witness.Replay(m.N, 0); err != nil {
		t.Fatalf("lazy witness does not replay: %v", err)
	}
}

func TestLazyWitnessReplayThroughMapping(t *testing.T) {
	// Decoy-salted source: the compile pipeline strips a free-running junk
	// counter, so the lazily-found witness crosses pass.Mapping on its way
	// back. It must replay and render on the ORIGINAL netlist.
	m := rtl.NewModule("salted")
	mem := m.Memory("mem", 3, 4, aig.MemZero)
	wa := m.Input("wa", 3)
	wd := m.Input("wd", 4)
	mem.Write(wa, wd, aig.True)
	ra := m.Input("ra", 3)
	rd := mem.Read(ra, aig.True)
	junk := m.Register("junk", 8, 0)
	junk.SetNext(m.Inc(junk.Q))
	m.Done(junk)
	m.AssertAlways("ne9", m.EqConst(rd, 9).Not())

	opt := Options{MaxDepth: 6, UseEMM: true, LazyEMM: true, ValidateWitness: true}
	r := Check(m.N, 0, opt)
	if r.Kind != KindCE {
		t.Fatalf("expected CE, got %v", r)
	}
	if err := r.Witness.Replay(m.N, 0); err != nil {
		t.Fatalf("witness does not replay on the source netlist: %v", err)
	}
	for f := 0; f <= r.Witness.Length; f++ {
		if s := r.Witness.FormatFrame(m.N, f); !strings.Contains(s, "wa[") || !strings.Contains(s, "ra[") {
			t.Fatalf("FormatFrame(%d) lost source input names: %q", f, s)
		}
	}
}

// randMemDesign builds a small random multi-port memory design: 1-2 write
// ports and two reads wired from a mix of inputs, counter slices, and
// constants, under one of three property shapes. Seeded, so every trial is
// reproducible from its index.
func randMemDesign(rng *rand.Rand) *rtl.Module {
	const aw, dw = 2, 3
	m := rtl.NewModule("fuzz")
	init := aig.MemZero
	if rng.Intn(2) == 1 {
		init = aig.MemArbitrary
	}
	mem := m.Memory("mem", aw, dw, init)
	cnt := m.Register("cnt", aw, 0)
	cnt.SetNext(m.Inc(cnt.Q))
	pick := func(name string, w int) rtl.Vec {
		switch rng.Intn(3) {
		case 0:
			return m.Input(name, w)
		case 1:
			if w <= len(cnt.Q) {
				return m.Truncate(cnt.Q, w)
			}
			return m.ZeroExtend(cnt.Q, w)
		default:
			return m.Const(w, uint64(rng.Intn(1<<w)))
		}
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		we := aig.True
		if rng.Intn(2) == 0 {
			we = m.InputBit(fmt.Sprintf("we%d", i))
		}
		mem.Write(pick(fmt.Sprintf("wa%d", i), aw), pick(fmt.Sprintf("wd%d", i), dw), we)
	}
	re := m.InputBit("re")
	ra0, ra1 := pick("ra0", aw), pick("ra1", aw)
	rd0, rd1 := mem.Read(ra0, re), mem.Read(ra1, re)
	m.Done(cnt)
	switch rng.Intn(3) {
	case 0:
		m.AssertAlways("agree", m.N.Implies(m.N.And(re, m.Eq(ra0, ra1)), m.Eq(rd0, rd1)))
	case 1:
		m.AssertAlways("nonmax", m.N.Implies(re, m.EqConst(rd0, 1<<dw-1).Not()))
	default:
		m.AssertAlways("ne", m.N.Implies(re, m.Ne(rd0, rd1)))
	}
	return m
}

func TestLazyDifferentialFuzz(t *testing.T) {
	// Differential oracle: on random multi-port designs, lazy EMM, eager
	// EMM, and the explicit-expansion baseline must agree on the verdict at
	// EVERY depth, not just the final one.
	const trials, maxDepth = 12, 5
	for seed := 0; seed < trials; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		m := randMemDesign(rng)
		exp, _, err := expmem.Expand(m.N)
		if err != nil {
			t.Fatalf("seed %d: expand: %v", seed, err)
		}
		for d := 0; d <= maxDepth; d++ {
			eager := Check(m.N, 0, Options{MaxDepth: d, UseEMM: true})
			lazy := Check(m.N, 0, Options{MaxDepth: d, UseEMM: true, LazyEMM: true})
			expl := Check(exp, 0, Options{MaxDepth: d})
			if eager.Kind != lazy.Kind || eager.Depth != lazy.Depth {
				t.Fatalf("seed %d depth %d: eager %v vs lazy %v", seed, d, eager, lazy)
			}
			if eager.Kind != expl.Kind || eager.Depth != expl.Depth {
				t.Fatalf("seed %d depth %d: EMM %v vs explicit %v", seed, d, eager, expl)
			}
			if lazy.Kind == KindCE {
				if err := lazy.Witness.Replay(m.N, 0); err != nil {
					t.Fatalf("seed %d depth %d: lazy witness replay: %v", seed, d, err)
				}
			}
		}
	}
}
