package bmc

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// wedgeNetlist is the design that separates kind from BMC-3: a zero-init
// ROM (no write ports) read at an address taken from the counter's top bits (so the full
// carry chain stays in the property's cone of influence), with the property
// that enabled reads return zero. The 16-bit counter in the property's
// cone of influence pushes the recurrence diameter to 2^16, far past any
// test bound, so BMC-3's forward check stays SAT; its backward check stays
// SAT too, because arbitrary-initial-state modeling lets the induction
// hypothesis read a nonzero word. kind's retained write-free init closes
// the induction step immediately.
func wedgeNetlist() *aig.Netlist {
	m := rtl.NewModule("wedge")
	mem := m.Memory("rom", 4, 4, aig.MemZero)
	cnt := m.Register("cnt", 16, 0)
	cnt.SetNext(m.Inc(cnt.Q))
	re := m.InputBit("re")
	rd := mem.Read(cnt.Q[12:], re)
	bad := m.N.And(re, m.NonZero(rd))
	m.AssertAlways("rom-reads-zero", bad.Not())
	m.Done(cnt)
	return m.N
}

// shiftWedgeNetlist needs genuine k-induction depth: y lags x by one
// cycle and x reloads from the ROM, so "y is zero" is not 1-inductive
// (an arbitrary state can hold x=1) but becomes inductive at k=2 once the
// induction path pins x to a retained-zero ROM read. The counter again
// keeps the diameter out of reach of the forward check.
func shiftWedgeNetlist() *aig.Netlist {
	m := rtl.NewModule("shift-wedge")
	mem := m.Memory("rom", 4, 1, aig.MemZero)
	cnt := m.Register("cnt", 12, 0)
	cnt.SetNext(m.Inc(cnt.Q))
	rd := mem.Read(cnt.Q[8:], aig.True)
	x := m.Register("x", 1, 0)
	x.SetNext(rd)
	y := m.Register("y", 1, 0)
	y.SetNext(x.Q)
	m.AssertAlways("y-zero", y.Bit().Not())
	m.Done(cnt, x, y)
	return m.N
}

// writableWedgeNetlist guards the retention soundness condition: the same
// zero-init memory, but with a live write port. Retention must NOT apply
// (the memory is written, so "contents ≡ init" is not invariant) — the
// property is falsifiable by writing 1 and reading it back, and a wrongly
// retained init would let the induction step claim a bogus proof at depth
// 0 before the base case reaches the depth-1 counter-example.
func writableWedgeNetlist() *aig.Netlist {
	m := rtl.NewModule("writable-wedge")
	mem := m.Memory("mem", 2, 2, aig.MemZero)
	waddr := m.Input("waddr", 2)
	we := m.InputBit("we")
	mem.Write(waddr, m.Const(2, 1), we)
	raddr := m.Input("raddr", 2)
	re := m.InputBit("re")
	rd := mem.Read(raddr, re)
	bad := m.N.And(re, m.NonZero(rd))
	m.AssertAlways("mem-reads-zero", bad.Not())
	m.Done()
	return m.N
}

// TestKIndProvesWhereBMC3CannotBound is the wedge: within the same depth
// budget, BMC-3 exhausts the bound undecided while kind proves at depth 0.
func TestKIndProvesWhereBMC3CannotBound(t *testing.T) {
	n := wedgeNetlist()
	opt3 := Options{MaxDepth: 20, UseEMM: true, Proofs: true}
	if r := Check(n, 0, opt3); r.Kind != KindNoCE {
		t.Fatalf("bmc3 on the wedge: %v, want NO_CE (bound exhausted)", r)
	}
	r := Check(n, 0, KInd(20))
	if r.Kind != KindProof || r.Depth != 0 || r.ProofSide != "backward" {
		t.Fatalf("kind on the wedge: %v (side %s), want PROOF depth=0 backward", r, r.ProofSide)
	}
}

// TestKIndNeedsInductionDepth pins that the P_0..P_{k-1} assumptions are
// live: the shift wedge is not 0- or 1-inductive, so the proof lands at
// exactly depth 2.
func TestKIndNeedsInductionDepth(t *testing.T) {
	n := shiftWedgeNetlist()
	r := Check(n, 0, KInd(20))
	if r.Kind != KindProof || r.Depth != 2 || r.ProofSide != "backward" {
		t.Fatalf("kind on the shift wedge: %v (side %s), want PROOF depth=2 backward", r, r.ProofSide)
	}
	if r3 := Check(n, 0, Options{MaxDepth: 20, UseEMM: true, Proofs: true}); r3.Kind != KindNoCE {
		t.Fatalf("bmc3 on the shift wedge: %v, want NO_CE", r3)
	}
}

// TestKIndRetentionRequiresWriteFree is the soundness guard: with a write
// port present the init must not be retained, so kind finds the genuine
// depth-1 counter-example instead of a bogus depth-0 proof.
func TestKIndRetentionRequiresWriteFree(t *testing.T) {
	opt := KInd(10)
	opt.ValidateWitness = true
	r := Check(writableWedgeNetlist(), 0, opt)
	if r.Kind != KindCE || r.Depth != 1 {
		t.Fatalf("kind on the writable wedge: %v, want CE depth=1", r)
	}
	if r.Witness == nil {
		t.Fatal("CE without witness")
	}
}

// TestKIndMatchesBMC3OnArbitraryInitMemory: on a design whose memory is
// MemArbitrary with a write port, retention is a no-op and kind must land
// on BMC-3's verdict at the same depth (the basis for the CI parity
// smoke on growth.v).
func TestKIndMatchesBMC3OnArbitraryInitMemory(t *testing.T) {
	n := growthEquivNetlist()
	r3 := Check(n, 0, Options{MaxDepth: 10, UseEMM: true, Proofs: true})
	rk := Check(n, 0, KInd(10))
	if rk.Kind != r3.Kind || rk.Depth != r3.Depth {
		t.Fatalf("kind %v vs bmc3 %v on arbitrary-init memory", rk, r3)
	}
}

// TestKIndWarmStart: both UNSAT checks are monotone in k, so a warm-started
// run must reach the same verdict with the proof reported at the frontier.
func TestKIndWarmStart(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    *aig.Netlist
	}{
		{"wedge", wedgeNetlist()},
		{"shift-wedge", shiftWedgeNetlist()},
	} {
		cold := Check(tc.n, 0, KInd(20))
		if cold.Kind != KindProof {
			t.Fatalf("%s: cold run %v", tc.name, cold)
		}
		opt := KInd(20)
		opt.StartDepth = 5
		warm := Check(tc.n, 0, opt)
		if warm.Kind != KindProof || warm.Depth != 5 {
			t.Fatalf("%s: warm run %v, want PROOF depth=5 (frontier above cold depth %d)",
				tc.name, warm, cold.Depth)
		}
	}
}
