// The k-induction engine (spec engine "kind"): temporal induction on the
// model/session/strategy seam. It reuses the Model's three windows and the
// Session's solvers unchanged — the strategy below is the whole engine,
// plus one Model-level strengthening (write-free-init retention on the
// backward window, see buildBackwardWindow).

package bmc

import (
	"context"

	"emmver/internal/sat"
)

// kindStrategy implements k-induction (temporal induction). At each k:
//
//  1. Base case — the plain counter-example check SAT(I ∧ ¬P_k ∧ C_k).
//     SAT falsifies the property with a replayable witness.
//  2. Recurrence-diameter check — SAT(I ∧ LFP_k ∧ C_k). UNSAT means no
//     loop-free initialized path of length k exists, so the base cases
//     already covered every reachable state: PROOF (forward).
//  3. Induction step — SAT(LFP_k ∧ P_0..P_{k-1} ∧ ¬P_k ∧ C_k) on the
//     arbitrary-initial-state backward window. UNSAT means a state
//     satisfying P for k steps cannot reach ¬P: together with the base
//     cases, PROOF (backward).
//
// The checks are BMC-3's, reordered base-first; what makes kind prove
// designs BMC-3 cannot is the induction step's strengthened memory model:
// the backward window retains declared initial contents for write-free
// memories instead of treating them as arbitrary (Options.KInduction).
// Both UNSAT checks are monotone in k — a satisfying assignment at k
// restricts (2) by prefix and (3) by suffix to one at k-1 — so skipping
// depths below a warm-start frontier never loses a proof: a warm-started
// run reproves at the frontier what a cold run proved below it.
type kindStrategy struct{ e *engine }

func (s *kindStrategy) Name() string { return "kind" }

func (s *kindStrategy) Step(_ context.Context, k int) (*Result, bool) {
	e := s.e
	prop := e.prop
	switch e.ceCheck(prop, k) {
	case sat.Sat:
		w := e.extractWitness(k)
		e.logf("depth %d: counter-example (base case)", k)
		e.validateWitness(w, prop)
		return &Result{Kind: KindCE, Depth: k, Witness: w}, true
	case sat.Unknown:
		return &Result{Kind: KindTimeout, Depth: k}, true
	}
	switch e.forwardCheck(k) {
	case sat.Unsat:
		e.logf("depth %d: forward termination", k)
		return &Result{Kind: KindProof, Depth: k, ProofSide: "forward"}, true
	case sat.Unknown:
		return &Result{Kind: KindTimeout, Depth: k}, true
	}
	switch e.backwardCheck(prop, k) {
	case sat.Unsat:
		e.logf("depth %d: induction step holds", k)
		return &Result{Kind: KindProof, Depth: k, ProofSide: "backward"}, true
	case sat.Unknown:
		return &Result{Kind: KindTimeout, Depth: k}, true
	}
	e.logf("depth %d: no CE, induction step fails", k)
	return nil, false
}
