// The Model layer: netlist → unrolled time frames, EMM constraints, and
// the frozen frame frontier. It owns what the formula *says* — the three
// solver windows (forward/backward/counter-example), structural hashing
// and comparator memoization, abstraction application, per-depth frame
// extension, and witness extraction back into source-netlist coordinates.
// The Session layer (session.go) owns the solvers those windows are built
// over; the Strategy layer (strategy.go) decides which checks to run on
// them at each depth.

package bmc

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/core"
	"emmver/internal/pba"
	"emmver/internal/sat"
	"emmver/internal/sim"
	"emmver/internal/unroll"
)

// buildForwardWindow constructs the forward window: the Initialized-mode
// unrolling with its EMM generator, over a fresh session solver. It hosts
// the forward termination check and (unless the lazy proof split moves
// them) the counter-example checks.
//
// Cross-tag sharing (strash, comparator memoization) reuses clauses
// emitted under the first requester's tag. That is sound for verdicts,
// but PBA harvests clause tags from UNSAT cores to decide relevance —
// a shared clause would implicate only its first creator, so the
// abstraction could silently drop latches or EMM events the proof
// needs. Like init folding, both caches are therefore off while cores
// are being tracked (phase 2 of the PBA flow runs without opt.PBA and
// keeps full sharing).
func (e *engine) buildForwardWindow() {
	opt, n := e.opt, e.n
	e.fs = e.newSolver()
	if opt.PBA {
		e.fs.EnableProofTracing()
		e.tracker = pba.NewTracker()
	}
	e.fu = unroll.New(n, e.fs, unroll.Initialized)
	e.fu.NoStrash = opt.DisableStrash || opt.PBA
	e.fu.FoldInits = !opt.PBA
	e.fu.MemAwareLFP = len(n.Memories) > 0 && !opt.PureLatchLFP
	e.fu.AttachObs(opt.Obs)
	e.applyAbstraction(e.fu)
	if opt.UseEMM && len(n.Memories) > 0 {
		e.fg = core.NewGenerator(e.fu, false)
		e.fg.AttachObs(opt.Obs)
		if opt.DisableEMMMemo || opt.PBA {
			e.fg.DisableComparatorMemo()
		}
		if opt.DisableEq6 {
			e.fg.DisableInitConsistency()
		}
		if opt.DisableExclusivity {
			e.fg.DisableExclusivity()
		}
		e.applyMemAbstraction(e.fg)
	}
}

// buildBackwardWindow constructs the backward (termination-proof) window:
// the Free-mode unrolling hosting the backward/induction-step check.
func (e *engine) buildBackwardWindow() {
	opt, n := e.opt, e.n
	e.bs = e.newSolver()
	e.bu = unroll.New(n, e.bs, unroll.Free)
	e.bu.NoStrash = opt.DisableStrash || opt.PBA
	e.bu.MemAwareLFP = len(n.Memories) > 0 && !opt.PureLatchLFP
	e.bu.AttachObs(opt.Obs)
	e.applyAbstraction(e.bu)
	if opt.UseEMM && len(n.Memories) > 0 {
		// The backward window starts in an arbitrary state, so every
		// memory must be treated as arbitrary-initialized (§4.2).
		e.bg = core.NewGenerator(e.bu, true)
		e.bg.AttachObs(opt.Obs)
		if opt.KInduction {
			// k-induction strengthening: a memory with no write ports never
			// changes, so "contents ≡ declared init" holds in every
			// reachable state and may be assumed by the induction step.
			e.bg.RetainWriteFreeInit()
		}
		if opt.DisableEMMMemo || opt.PBA {
			e.bg.DisableComparatorMemo()
		}
		if opt.DisableEq6 {
			e.bg.DisableInitConsistency()
		}
		if opt.DisableExclusivity {
			e.bg.DisableExclusivity()
		}
		e.applyMemAbstraction(e.bg)
	}
}

// buildCEWindow routes the counter-example path: it aliases the forward
// window unless lazy EMM splits it onto a dedicated third window.
func (e *engine) buildCEWindow() {
	opt, n := e.opt, e.n
	e.cs, e.cu, e.cg = e.fs, e.fu, e.fg
	if !opt.LazyEMM || e.fg == nil || opt.PBA || opt.DisableExclusivity {
		return
	}
	e.lazy = true
	if opt.Proofs {
		// Forward termination (SAT(I ∧ LFP ∧ C) — UNSAT proves) is only
		// sound against the full constraint set: a lazily weakened
		// formula could go UNSAT and claim a bogus proof. The CE checks
		// therefore move to their own lazily-constrained solver and
		// fs/bs keep the exact encoding for the termination queries.
		e.cs = e.newSolver()
		e.cu = unroll.New(n, e.cs, unroll.Initialized)
		e.cu.NoStrash = opt.DisableStrash
		e.cu.FoldInits = true
		e.cu.MemAwareLFP = e.fu.MemAwareLFP
		e.cu.AttachObs(opt.Obs)
		e.applyAbstraction(e.cu)
		e.cg = core.NewGenerator(e.cu, false)
		e.cg.AttachObs(opt.Obs)
		if opt.DisableEMMMemo {
			e.cg.DisableComparatorMemo()
		}
		if opt.DisableEq6 {
			e.cg.DisableInitConsistency()
		}
		e.applyMemAbstraction(e.cg)
	}
	e.cg.EnableLazy()
}

func (e *engine) applyAbstraction(u *unroll.Unroller) {
	if e.opt.Abs == nil {
		return
	}
	for id := range e.opt.Abs.FreeLatches {
		u.Abstracted[id] = true
	}
}

func (e *engine) applyMemAbstraction(g *core.Generator) {
	if e.opt.Abs == nil {
		return
	}
	for mi := range e.opt.Abs.MemEnabled {
		g.SetMemoryEnabled(mi, e.opt.Abs.MemEnabled[mi])
		for r, on := range e.opt.Abs.ReadEnabled[mi] {
			g.SetReadPortEnabled(mi, r, on)
		}
		for w, on := range e.opt.Abs.WriteEnabled[mi] {
			g.SetWritePortEnabled(mi, w, on)
		}
	}
}

// prepareDepth extends both unrollings and EMM constraints to depth i.
func (e *engine) prepareDepth(i int) {
	if e.fg != nil {
		e.fg.AddUpTo(i)
	}
	e.fu.AssertConstraints(i)
	if e.cu != e.fu {
		e.cg.AddUpTo(i)
		e.cu.AssertConstraints(i)
	}
	if e.bu != nil {
		if e.bg != nil {
			e.bg.AddUpTo(i)
		}
		e.bu.AssertConstraints(i)
	}
}

// publishObs flushes the per-depth observability deltas (the unrollers
// publish at depth boundaries; the solvers publish per Solve call and the
// EMM generators per frame on their own) and raises the depth high-water
// gauge. No-op without an attached registry.
func (e *engine) publishObs(i int) {
	e.fu.PublishObs()
	if e.bu != nil {
		e.bu.PublishObs()
	}
	if e.cu != e.fu {
		e.cu.PublishObs()
	}
	e.obsDepth.Max(int64(i))
}

// emmClausesCum is the cumulative EMM clause count of the counter-example
// window (Sizes().Clauses() + InitClauses; cg aliases the forward
// generator unless the lazy proof split is active), the figure per-depth
// trace events report so a journal can be reconciled against
// Result.Stats.EMM.
func (e *engine) emmClausesCum() int {
	if e.cg == nil {
		return 0
	}
	sz := e.cg.Sizes()
	return sz.Clauses() + sz.InitClauses
}

// extractWitness decodes the satisfying model (on the counter-example
// path's solver) into a replayable trace.
func (e *engine) extractWitness(depth int) *Witness {
	w := &Witness{Length: depth}
	for f := 0; f <= depth; f++ {
		in := make(map[aig.NodeID]bool)
		for _, id := range e.n.Inputs {
			if e.cu.Built(id, f) {
				in[id] = e.cu.ModelBit(aig.MkLit(id, false), f)
			}
		}
		w.Inputs = append(w.Inputs, in)
	}
	w.InitLatches = make(map[aig.NodeID]bool)
	for _, l := range e.n.Latches {
		if l.Init == aig.InitX && e.cu.Built(l.Node, 0) {
			w.InitLatches[l.Node] = e.cu.ModelBit(aig.MkLit(l.Node, false), 0)
		}
	}
	// Arbitrary-init memory contents: every enabled read that hit no
	// in-window write pins the initial word at its address.
	if e.cg != nil && e.cg.Lazy() {
		// The lazy generator has no per-frame N literals for pending
		// reads; the oracle re-derives "hit no in-window write" from the
		// just-validated model's interface trace instead.
		w.MemInit = e.cg.LazyMemInit(depth)
	} else if e.cg != nil {
		for mi, m := range e.n.Memories {
			words := make(map[int]uint64)
			for r := range m.Reads {
				for _, ev := range e.cg.ReadEvents(mi, r) {
					// A reused engine may have frames beyond this CE's depth
					// built; their read events are unconstrained here.
					if ev.Frame > depth {
						continue
					}
					if e.cs.LitValue(ev.Re) != sat.True || e.cs.LitValue(ev.N) != sat.True {
						continue
					}
					addr := decodeVec(e.cs, ev.Addr)
					words[int(addr)] = decodeVec(e.cs, ev.RD)
				}
			}
			w.MemInit = append(w.MemInit, words)
		}
	} else {
		for range e.n.Memories {
			w.MemInit = append(w.MemInit, map[int]uint64{})
		}
	}
	return w
}

func decodeVec(s *sat.Solver, lits []sat.Lit) uint64 {
	var out uint64
	for i, l := range lits {
		if s.LitValue(l) == sat.True {
			out |= 1 << uint(i)
		}
	}
	return out
}

// Witness is a counter-example trace: per-frame input values plus the
// initial values of unconstrained latches and arbitrary-init memory words
// the trace depends on.
type Witness struct {
	Length      int // the property is violated at this frame
	Inputs      []map[aig.NodeID]bool
	InitLatches map[aig.NodeID]bool
	MemInit     []map[int]uint64 // per memory: address -> initial word
}

// FormatFrame renders one frame's input assignment using the design's
// declared input names, for human-readable counter-example dumps.
func (w *Witness) FormatFrame(n *aig.Netlist, f int) string {
	if f < 0 || f >= len(w.Inputs) {
		return ""
	}
	out := ""
	for _, id := range n.Inputs {
		name := n.InputName(id)
		if name == "" {
			name = fmt.Sprintf("i%d", id)
		}
		v := 0
		if w.Inputs[f][id] {
			v = 1
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", name, v)
	}
	return out
}

// Replay simulates the witness on the concrete design (real memory
// arrays) and returns an error unless the property fails at frame Length
// with all environment constraints satisfied along the trace.
func (w *Witness) Replay(n *aig.Netlist, prop int) error {
	s := sim.New(n)
	for id, v := range w.InitLatches {
		s.SetLatch(id, v)
	}
	for mi, words := range w.MemInit {
		for addr, word := range words {
			s.SetMemWord(mi, addr, word)
		}
	}
	for f := 0; f <= w.Length; f++ {
		res := s.Step(w.Inputs[f])
		if !res.ConstraintsOK {
			return fmt.Errorf("constraints violated at frame %d", f)
		}
		if f == w.Length {
			if res.PropOK[prop] {
				return fmt.Errorf("property %d holds at frame %d; witness is spurious", prop, f)
			}
		}
	}
	return nil
}
