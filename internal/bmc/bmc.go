// Package bmc implements the paper's SAT-based model checking algorithms
// over aig netlists:
//
//   - BMC-1 (Fig. 1): plain BMC with forward/backward termination checks
//     (SAT-based induction proofs) and optional proof-based abstraction.
//     Used on memory-free models — in particular the Explicit Modeling
//     baseline produced by package expmem.
//   - BMC-2 (Fig. 2): BMC with EMM constraints, falsification only.
//   - BMC-3 (Fig. 3): BMC with EMM constraints, termination proofs (using
//     the precise arbitrary-initial-state modeling of §4.2) and PBA.
//   - k-induction ("kind"): BMC-3's checks reordered into temporal
//     induction, with the induction step strengthened by write-free-init
//     retention — the first engine able to prove properties whose
//     invariant depends on declared memory contents (engine_kind.go).
//
// The engine is layered (one struct, three responsibilities in three
// files): the Model (model.go) owns the unrolled time frames, EMM
// constraints, and witness extraction; the Session (session.go) owns the
// incremental solvers' lifecycles — construction, interrupts,
// inprocessing, statistics; the Strategy (strategy.go) is the per-depth
// decision procedure. All engines share the Model and Session and differ
// only in their Strategy plus Options-selected Model strengthenings;
// constructors with the paper's names pick the right combination.
package bmc

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"emmver/internal/aig"
	"emmver/internal/core"
	"emmver/internal/obs"
	"emmver/internal/par"
	"emmver/internal/pba"
	"emmver/internal/sat"
	"emmver/internal/unroll"
)

// Options configures a BMC run.
type Options struct {
	// MaxDepth is the bound n of Figs. 1–3.
	MaxDepth int
	// UseEMM adds the memory-modeling constraints (BMC-2/BMC-3). Without
	// it, memory read data stays entirely unconstrained — the "abstract
	// out the memory completely" configuration discussed in the Industry
	// II case study.
	UseEMM bool
	// Proofs enables the forward/backward termination checks.
	Proofs bool
	// PBA enables proof-tracing and latch-reason collection on the
	// counter-example checks.
	//
	// Proof tracing changes more than the solver: while cores are being
	// harvested, the engine also turns off structural hashing in the
	// unrollers, init-literal folding, comparator memoization, and the
	// between-depth inprocessing pass. All four optimizations share (or
	// rewrite) clauses across clause tags, and PBA attributes relevance by
	// tag — a shared clause would implicate only its first creator, so
	// the abstraction could silently drop latches or EMM events the proof
	// needs. This means a PBA run (BMC-3's phase 1) has deliberately
	// different performance characteristics from a plain BMC-2 run at the
	// same options; TestPBADisablesClauseSharing pins the coupling.
	PBA bool
	// StabilityDepth is the number of depths the latch-reason set must
	// stay unchanged before the abstraction is considered stable
	// (the paper uses 10 in Table 2).
	StabilityDepth int
	// StopAtStable ends the run (with KindStable) once the latch-reason
	// set has been stable for StabilityDepth depths.
	StopAtStable bool
	// Abs runs the check on a reduced model: latches in Abs.FreeLatches
	// become pseudo-primary inputs and disabled memories/ports get no EMM
	// constraints (§4.3).
	Abs *pba.Abstraction
	// Timeout bounds the wall-clock time of the whole run (0 = none).
	Timeout time.Duration
	// ValidateWitness replays counter-examples on the concrete-memory
	// simulator and fails loudly on divergence. Only meaningful on
	// unabstracted models.
	ValidateWitness bool
	// DisableEq6 drops the arbitrary-initial-state consistency
	// constraints (§4.2, eq. 6), demonstrating why proofs need them.
	DisableEq6 bool
	// DisableExclusivity switches EMM to the direct eq. 1 encoding
	// without the exclusive valid-read chains — the ablation for the
	// paper's claim that the chains speed up the SAT solver.
	DisableExclusivity bool
	// Portfolio runs the depth-level checks as a two-lane race when Proofs
	// is on: one goroutine owns the forward solver (forward termination,
	// then the counter-example check), the other owns the backward solver
	// (backward termination). The first decisive answer interrupts the
	// other lane. Verdicts are unchanged, but when forward and backward
	// termination both prove at the same depth the reported ProofSide may
	// differ from the sequential run's.
	Portfolio bool
	// CollectDepthStats records a DepthStat delta for every processed
	// depth in Result.DepthStats (the -stats CLI flag).
	CollectDepthStats bool
	// DisableStrash turns off structural hashing in the unrollers, and
	// DisableEMMMemo turns off EMM comparator memoization. Both exist for
	// A/B measurement and the equivalence tests; the optimizations are on
	// by default.
	DisableStrash  bool
	DisableEMMMemo bool
	// Restart selects the solvers' restart strategy: sat.RestartEMA (the
	// adaptive glue-driven default) or sat.RestartLuby (the classic
	// schedule). Equivalent builder: WithRestart.
	Restart sat.RestartMode
	// NoSimplify disables the between-depth inprocessing pass
	// (sat.Solver.Simplify: subsumption, clause strengthening, bounded
	// variable elimination over non-frozen auxiliaries). Inprocessing is
	// also skipped automatically whenever PBA proof tracing is active —
	// clause rewriting would invalidate resolution chains — with
	// sat.ErrTracingActive as the solver-level second guard. Equivalent
	// builder: WithSimplify.
	NoSimplify bool
	// PureLatchLFP uses the paper's literal loop-free-path constraint
	// (latch states pairwise distinct). The default strengthens state
	// equality with "and no write fired in between", which keeps the
	// forward-termination proof sound when memory contents evolve; see
	// EXPERIMENTS.md for a design where the literal check claims a bogus
	// proof.
	PureLatchLFP bool
	// Log, when non-nil, receives per-depth progress lines.
	Log io.Writer
	// Obs attaches the observability layer: every engine the run creates
	// publishes metrics into Obs's registry (solver conflicts, EMM clause
	// families, strash hits, ...) and — when a trace sink is attached —
	// emits typed start/end span events for each depth step, each
	// forward/backward/counter-example solver call, each EMM generation
	// step, and each portfolio lane. Nil (the default) costs nothing.
	// Equivalent builder: WithTrace / WithObserver.
	Obs *obs.Observer
	// Passes selects the static compile pipeline every public entry point
	// (Check/CheckCtx/CheckMany*/CheckManyParallel*) runs before the first
	// solver call: "" for the default pass.SpecDefault pipeline
	// (coi,sweep,ports,dedup), "none" to disable it, or an explicit
	// comma-separated pass list. Results are always reported in source
	// netlist coordinates — witnesses, latch reasons, and property indices
	// are translated back through the pipeline's mapping. Equivalent
	// builder: WithPasses.
	Passes string
	// Jobs is the worker count used by entry points that fan out across
	// properties or lanes (the facade's VerifyAll and the CLIs): 0 picks
	// runtime.NumCPU, 1 forces the sequential shared-unrolling engine, and
	// n > 1 bounds the fleet. Check itself ignores it — per-depth lane
	// racing stays opt-in via Portfolio. Equivalent builder: WithJobs.
	Jobs int
	// Share connects the fleet's solvers through the learnt-clause sharing
	// bus (internal/share): high-glue lemmas over frame values and EMM
	// comparators are relocated between workers through a canonical
	// (node, time-frame) literal coding. Effective only on multi-worker
	// entry points, and automatically disabled when PBA proof tracing is on
	// or the design asserts environment constraints (a peer's constraint
	// units would not be model-extension sound). Equivalent builder:
	// WithShare.
	Share bool
	// Cube partitions each depth's counter-example check over the EMM
	// address-comparator variables (cube-and-conquer): cubes are assumed
	// per-worker from a work-stealing queue and refined by further splitting
	// when a cube exceeds its conflict budget. Same eligibility rules as
	// Share. Equivalent builder: WithCube.
	Cube bool
	// ShareCap overrides the per-worker clause ring capacity (0 keeps the
	// default 4096). Larger rings tolerate burstier export rates before
	// overrun drops clauses (Stats.SharedDropped); smaller rings bound the
	// staleness of what a restart imports. Equivalent builder: WithShareCap.
	ShareCap int
	// ShareLBD and ShareSize override the solvers' clause-export filter
	// (0 keeps the defaults: glue <= 6 or binary, <= 30 literals). A
	// distributed fleet tightens them to trade socket traffic against lemma
	// reach. Equivalent builder: WithShareFilter.
	ShareLBD  int
	ShareSize int
	// LazyEMM switches the counter-example path to demand-driven EMM
	// constraint instantiation (core.Generator.EnableLazy): the CE query
	// starts with read data unconstrained, and a refinement loop validates
	// each SAT model against the true memory semantics, instantiating
	// exactly the violated read-over-write axioms before re-solving
	// incrementally. UNSAT answers on the relaxation are sound immediately
	// (clause removal preserves UNSAT), so with Proofs on, the forward and
	// backward termination checks keep the full eager constraint set on
	// their own solvers and only the CE search goes lazy (on a third
	// solver). Verdict-preserving by construction; a performance knob like
	// Share/Cube. Ignored under PBA (cores attribute relevance to eagerly
	// tagged clauses), under DisableExclusivity (the refinement machinery
	// suspends the eq. 4 chains), and on the cube-and-conquer and
	// distributed paths (both split the search over the deterministic
	// eager comparator creation order). Equivalent builder: WithLazy.
	LazyEMM bool
	// KInduction selects the k-induction strategy (temporal induction,
	// spec engine "kind"): at each depth k the base case (the plain
	// counter-example check) runs first, then the forward recurrence-
	// diameter check, then the induction step — the backward termination
	// check with its simple-path constraint, strengthened by retaining
	// declared initial contents for write-port-free memories
	// (core.Generator.RetainWriteFreeInit; sound because a memory nothing
	// ever writes keeps its declared contents in every reachable state).
	// The strengthening is what lets kind close proofs that BMC-3's
	// arbitrary-initial-state induction cannot reach at any bounded depth.
	// Requires Proofs and UseEMM; spec.Options sets all three.
	KInduction bool
	// StartDepth warm-starts the BMC loop: the unrolling and EMM
	// constraints are still built from frame 0 (they are cumulative), but
	// the per-depth solver checks — forward/backward termination and the
	// counter-example query — only begin at this depth. The caller asserts
	// that every depth below StartDepth is already known counter-example
	// free, e.g. from a cached verdict of an identical run at a shallower
	// bound; the emmserved verdict cache sets it when a resubmission asks
	// for a deeper bound than a stored NO_CE. Skipping a depth's checks
	// can never flip a verdict (each depth's queries are self-contained
	// assumptions), and because a NO_CE cache entry implies the skipped
	// termination checks were SAT, a warm-started run reaches the same
	// verdict at the same depth as a cold one. Honored by Check/CheckCtx
	// (including the cube-and-conquer path); the multi-property and
	// distributed entry points ignore it.
	StartDepth int
}

// Kind classifies a Result.
type Kind int

// Result kinds.
const (
	// KindNoCE: the bound was exhausted without finding a violation.
	KindNoCE Kind = iota
	// KindCE: a counter-example was found.
	KindCE
	// KindProof: a termination check proved the property.
	KindProof
	// KindStable: the run stopped because the PBA latch-reason set became
	// stable (StopAtStable).
	KindStable
	// KindTimeout: the time budget expired.
	KindTimeout
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNoCE:
		return "NO_CE"
	case KindCE:
		return "CE"
	case KindProof:
		return "PROOF"
	case KindStable:
		return "STABLE"
	case KindTimeout:
		return "TIMEOUT"
	}
	return "?"
}

// Stats aggregates run statistics, mirroring the paper's time/memory
// reporting.
type Stats struct {
	Elapsed    time.Duration
	SolveCalls int
	Clauses    int
	Vars       int
	Conflicts  int64
	PeakHeapMB float64
	EMM        core.Sizes
	// Restarts, split by trigger: Luby budget expiry vs the adaptive glue
	// EMA crossing its threshold (RestartsLuby + RestartsEMA = Restarts).
	Restarts     int64
	RestartsLuby int64
	RestartsEMA  int64
	// Between-depth inprocessing work (zero under PBA or NoSimplify).
	Simplifies          int64
	SubsumedClauses     int64
	StrengthenedClauses int64
	EliminatedVars      int64
	// Cooperative solving (zero unless Options.Share/Cube are on): bus and
	// cube-queue tallies, set once at fleet level after the workers join.
	SharedExported int64
	SharedImported int64
	SharedFiltered int64
	SharedDropped  int64
	CubeSplits     int64
	CubeStolen     int64
	// Lazy-EMM refinement (zero unless Options.LazyEMM was active): model
	// validations run by the semantic oracle and SAT models it rejected.
	// The instantiated-axiom count lives in EMM.LazyAxioms — under LazyEMM
	// the EMM tally reports the counter-example path's generator, which is
	// where the on-demand reduction shows.
	LazyRounds   int64
	LazySpurious int64
}

// Add accumulates o into s. The parallel engines use it to merge
// per-worker statistics after the workers have joined: counters sum, while
// the heap high-water mark and the EMM constraint tally (which every
// worker re-generates identically) take the maximum.
func (s *Stats) Add(o Stats) {
	s.SolveCalls += o.SolveCalls
	s.Clauses += o.Clauses
	s.Vars += o.Vars
	s.Conflicts += o.Conflicts
	s.Restarts += o.Restarts
	s.RestartsLuby += o.RestartsLuby
	s.RestartsEMA += o.RestartsEMA
	s.Simplifies += o.Simplifies
	s.SubsumedClauses += o.SubsumedClauses
	s.StrengthenedClauses += o.StrengthenedClauses
	s.EliminatedVars += o.EliminatedVars
	s.SharedExported += o.SharedExported
	s.SharedImported += o.SharedImported
	s.SharedFiltered += o.SharedFiltered
	s.SharedDropped += o.SharedDropped
	s.CubeSplits += o.CubeSplits
	s.CubeStolen += o.CubeStolen
	s.LazyRounds += o.LazyRounds
	s.LazySpurious += o.LazySpurious
	if o.PeakHeapMB > s.PeakHeapMB {
		s.PeakHeapMB = o.PeakHeapMB
	}
	if o.EMM.Clauses() > s.EMM.Clauses() {
		s.EMM = o.EMM
	}
}

// DepthStat is the per-depth delta of formula growth and solver work,
// recorded when Options.CollectDepthStats is on. Each field is the increase
// over the previous depth (so summing a column gives the run total).
type DepthStat struct {
	Depth        int
	Clauses      int   // solver clauses added this depth (both solvers)
	Vars         int   // solver variables added this depth
	EMMClauses   int   // EMM constraint clauses (incl. eq. 6) this depth
	StrashHits   int   // AND gates answered from the strash cache
	CompMemoHits int   // address comparators answered from the memo cache
	Propagations int64 // solver propagations spent on this depth's checks
	Conflicts    int64
	Decisions    int64
	Solves       int // SAT calls issued at this depth
	Elapsed      time.Duration
}

// String renders one table line.
func (d DepthStat) String() string {
	return fmt.Sprintf("depth %3d: +%d clauses +%d vars (emm +%d, strash %d, memo %d) | %d solves %d props %d confl %s",
		d.Depth, d.Clauses, d.Vars, d.EMMClauses, d.StrashHits, d.CompMemoHits,
		d.Solves, d.Propagations, d.Conflicts, d.Elapsed.Round(time.Millisecond))
}

// Result is the outcome of a Check run.
type Result struct {
	Kind  Kind
	Prop  int
	Depth int // CE depth, proof depth, stable depth, or last completed depth
	// ProofSide is "forward" or "backward" for KindProof.
	ProofSide string
	Witness   *Witness
	// Tracker carries the accumulated latch reasons when PBA was on.
	Tracker *pba.Tracker
	Stats   Stats
	// DepthStats holds per-depth deltas (Options.CollectDepthStats only).
	DepthStats []DepthStat
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s depth=%d t=%s", r.Kind, r.Depth, r.Stats.Elapsed.Round(time.Millisecond))
	if r.Kind == KindProof {
		s += " (" + r.ProofSide + ")"
	}
	return s
}

// BMC1 returns options for the plain algorithm of Fig. 1.
func BMC1(maxDepth int) Options {
	return Options{MaxDepth: maxDepth, Proofs: true}
}

// BMC2 returns options for the EMM falsification algorithm of Fig. 2.
func BMC2(maxDepth int) Options {
	return Options{MaxDepth: maxDepth, UseEMM: true}
}

// BMC3 returns options for the EMM + proofs + PBA algorithm of Fig. 3.
func BMC3(maxDepth int) Options {
	return Options{MaxDepth: maxDepth, UseEMM: true, Proofs: true, PBA: true, StabilityDepth: 10}
}

// KInd returns options for the EMM k-induction engine: BMC-3's checks
// reordered into temporal induction (base case first), with the induction
// step strengthened by write-free-init retention. See Options.KInduction.
func KInd(maxDepth int) Options {
	return Options{MaxDepth: maxDepth, UseEMM: true, Proofs: true, KInduction: true}
}

type engine struct {
	n    *aig.Netlist
	opt  Options
	prop int
	ctx  context.Context

	fs *sat.Solver
	fu *unroll.Unroller
	fg *core.Generator

	bs *sat.Solver
	bu *unroll.Unroller
	bg *core.Generator

	// The counter-example path's solver/unroller/generator. Aliases of
	// fs/fu/fg normally; a dedicated third triple when LazyEMM is active
	// together with Proofs, so the termination checks keep the full eager
	// constraint set while the CE search runs on the lazy relaxation.
	cs *sat.Solver
	cu *unroll.Unroller
	cg *core.Generator
	// lazy reports that the CE path runs the lazy-EMM refinement loop
	// (cg is in EnableLazy mode).
	lazy bool
	// Refinement tallies; only the CE-owning goroutine touches them.
	lazyRounds   int64
	lazySpurious int64

	tracker  *pba.Tracker
	start    time.Time
	deadline time.Time
	stats    Stats
	// fwdSatDepth memoizes the deepest depth whose (property-independent)
	// forward termination check is known SAT, so an engine reused across
	// properties never repeats it.
	fwdSatDepth int
	// solveCalls is kept apart from stats so that the two portfolio lanes
	// can bump it concurrently without a data race.
	solveCalls atomic.Int64

	depthStats []DepthStat
	mark       depthMark
	// lastSimpConfl is the cumulative conflict count (both solvers) at the
	// last inprocessing pass; simplifyStep skips until enough new search
	// effort has accumulated to pay for the occurrence-list rebuild.
	lastSimpConfl int64

	// Observability handle plus the gauges/counters the engine itself
	// maintains (the solvers/unrollers/generators publish their own).
	obs         *obs.Observer
	obsDepth    *obs.Gauge
	obsProps    *obs.Counter
	obsCoreSize *obs.Gauge
	obsLR       *obs.Gauge
	// Lazy-EMM refinement counters; obsLazyAxPub tracks the last published
	// cumulative axiom count so deltas can be pushed after each CE check.
	obsLazyRounds   *obs.Counter
	obsLazyAxioms   *obs.Counter
	obsLazySpurious *obs.Counter
	obsLazyAxPub    int
}

func newEngine(ctx context.Context, n *aig.Netlist, prop int, opt Options) *engine {
	e := &engine{n: n, opt: opt, prop: prop, ctx: ctx, start: time.Now(), fwdSatDepth: -1}
	if opt.Timeout > 0 {
		e.deadline = e.start.Add(opt.Timeout)
	}
	e.obs = opt.Obs
	if reg := opt.Obs.Registry(); reg != nil {
		e.obsDepth = reg.Gauge(obs.MDepth)
		e.obsProps = reg.Counter(obs.MPropsResolved)
		e.obsCoreSize = reg.Gauge(obs.MPBACoreSize)
		e.obsLR = reg.Gauge(obs.MPBALatchReasons)
		e.obsLazyRounds = reg.Counter(obs.MLazyRounds)
		e.obsLazyAxioms = reg.Counter(obs.MLazyAxioms)
		e.obsLazySpurious = reg.Counter(obs.MLazySpurious)
	}
	// Model construction (model.go): each window is an unrolling plus its
	// EMM generator over a fresh session solver (session.go).
	e.buildForwardWindow()
	if opt.Proofs {
		e.buildBackwardWindow()
	}
	e.buildCEWindow()
	return e
}

func (e *engine) logf(format string, args ...interface{}) {
	if e.opt.Log != nil {
		fmt.Fprintf(e.opt.Log, format+"\n", args...)
	}
}

func (e *engine) finish(r *Result) *Result {
	r.Prop = e.prop
	r.Stats = e.snapshotStats()
	r.Tracker = e.tracker
	r.DepthStats = e.depthStats
	return r
}

// obsResolved counts a decisive per-property verdict (anything but a
// timeout) on the fleet-wide properties-resolved counter.
func (e *engine) obsResolved(k Kind) {
	if k != KindTimeout {
		e.obsProps.Inc()
	}
}

// obsPBAUpdate feeds one depth's UNSAT core into the tracker and mirrors
// the abstraction state (core size, latch-reason set) onto the registry
// gauges plus a point event in the trace.
func (e *engine) obsPBAUpdate(i int) {
	core := e.fs.Core()
	e.tracker.Update(i, core)
	e.obsCoreSize.Set(int64(len(core)))
	e.obsLR.Set(int64(e.tracker.Size()))
	e.obs.Point("pba.update",
		obs.F("depth", i),
		obs.F("core", len(core)),
		obs.F("lr", e.tracker.Size()),
		obs.F("stable", e.tracker.StableFor(i)))
}

// forwardCheck runs the property-independent forward termination check at
// depth i: SAT(I ∧ LFP_i ∧ C_i).
func (e *engine) forwardCheck(i int) sat.Status {
	sp := e.obs.Span("solve.forward", obs.F("depth", i))
	st := e.solve(e.fs, e.fu.LoopFreeLit(i))
	sp.End(obs.F("result", st.String()))
	return st
}

// backwardCheck runs the backward termination (induction step) check for
// prop at depth i: SAT(LFP_i ∧ ¬P_i ∧ CP_i ∧ C_i).
func (e *engine) backwardCheck(prop, i int) sat.Status {
	sp := e.obs.Span("solve.backward", obs.F("depth", i), obs.F("prop", prop))
	assumps := []sat.Lit{e.bu.LoopFreeLit(i), e.bu.PropertyLit(prop, i).Not()}
	for j := 0; j < i; j++ {
		assumps = append(assumps, e.bu.PropertyLit(prop, j))
	}
	st := e.solve(e.bs, assumps...)
	sp.End(obs.F("result", st.String()))
	return st
}

// ceCheck runs the counter-example check for prop at depth i:
// SAT(I ∧ ¬P_i ∧ C_i). Under LazyEMM, C_i is the demand-instantiated
// relaxation and a SAT answer enters the refinement loop: the semantic
// oracle validates the model's memory-interface trace, instantiates the
// violated read-over-write axioms, and the query is re-solved
// incrementally until the model is genuine (SAT stands) or the
// strengthened relaxation runs out of models (UNSAT — sound a fortiori).
func (e *engine) ceCheck(prop, i int) sat.Status {
	sp := e.obs.Span("solve.ce", obs.F("depth", i), obs.F("prop", prop),
		obs.F("lazy", e.lazy))
	notP := e.cu.PropertyLit(prop, i).Not()
	st := e.solve(e.cs, notP)
	rounds := 0
	if e.lazy {
		for st == sat.Sat {
			rounds++
			e.lazyRounds++
			e.obsLazyRounds.Inc()
			viol := e.cg.RefineLazy()
			if viol == 0 {
				break
			}
			e.lazySpurious++
			e.obsLazySpurious.Inc()
			st = e.solve(e.cs, notP)
		}
		if ax := e.cg.Sizes().LazyAxioms; ax > e.obsLazyAxPub {
			e.obsLazyAxioms.Add(int64(ax - e.obsLazyAxPub))
			e.obsLazyAxPub = ax
		}
	}
	sp.End(obs.F("result", st.String()), obs.F("rounds", rounds))
	return st
}

// validateWitness replays w on the concrete-memory simulator when the run
// is configured to and fails loudly on divergence.
func (e *engine) validateWitness(w *Witness, prop int) {
	if e.opt.ValidateWitness && e.opt.Abs == nil {
		if err := w.Replay(e.n, prop); err != nil {
			panic(fmt.Sprintf("bmc: witness replay failed: %v", err))
		}
	}
}

// Check runs the configured algorithm for property prop of n.
func Check(n *aig.Netlist, prop int, opt Options) *Result {
	return CheckCtx(context.Background(), n, prop, opt)
}

// CheckCtx is Check under a cancellation context: when ctx is cancelled the
// run stops at the next solver poll and reports KindTimeout. The parallel
// engines use it to tear a whole fleet down as soon as its outcome is
// decided.
//
// Like every public entry point, CheckCtx first runs the static compile
// pipeline selected by Options.Passes and then translates the result back
// to n's coordinates.
func CheckCtx(ctx context.Context, n *aig.Netlist, prop int, opt Options) *Result {
	c := compileModel(n, []int{prop}, &opt)
	if jobs := par.Jobs(opt.Jobs); opt.Cube && jobs > 1 && shareEligible(c.n, opt) {
		return c.finish(checkCubed(ctx, c.n, c.props[0], opt, jobs), prop, opt)
	}
	return c.finish(checkCompiled(ctx, c.n, c.props[0], opt), prop, opt)
}

// checkCompiled is the engine loop proper, running directly on the netlist
// it is given (already compiled by the caller).
func checkCompiled(ctx context.Context, n *aig.Netlist, prop int, opt Options) *Result {
	e := newEngine(ctx, n, prop, opt)
	strat := e.strategyFor()
	for i := 0; i <= opt.MaxDepth; i++ {
		if e.timedOut() {
			return e.finish(&Result{Kind: KindTimeout, Depth: max(i-1, 0)})
		}
		sp := e.obs.Span("bmc.depth", obs.F("depth", i), obs.F("prop", prop),
			obs.F("strategy", strat.Name()))
		e.prepareDepth(i)
		var r *Result
		if i >= opt.StartDepth {
			// Below the warm-start frontier only the (cumulative) unrolling
			// and EMM constraints are built; the depth's checks are already
			// answered by the caller's cached shallower verdict.
			r, _ = strat.Step(ctx, i)
		}
		e.publishObs(i)
		if opt.CollectDepthStats {
			e.collectDepthStat(i)
		}
		sp.End(obs.F("emm_clauses", e.emmClausesCum()),
			obs.F("clauses", e.fs.NumClauses()),
			obs.F("decided", r != nil))
		if r != nil {
			e.obsResolved(r.Kind)
			return e.finish(r)
		}
		e.simplifyStep(i)
	}
	e.obsResolved(KindNoCE)
	return e.finish(&Result{Kind: KindNoCE, Depth: opt.MaxDepth})
}
