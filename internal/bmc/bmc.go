// Package bmc implements the paper's three SAT-based bounded model
// checking algorithms over aig netlists:
//
//   - BMC-1 (Fig. 1): plain BMC with forward/backward termination checks
//     (SAT-based induction proofs) and optional proof-based abstraction.
//     Used on memory-free models — in particular the Explicit Modeling
//     baseline produced by package expmem.
//   - BMC-2 (Fig. 2): BMC with EMM constraints, falsification only.
//   - BMC-3 (Fig. 3): BMC with EMM constraints, termination proofs (using
//     the precise arbitrary-initial-state modeling of §4.2) and PBA.
//
// All three share one engine parameterized by Options; constructors with
// the paper's names pick the right combination.
package bmc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"emmver/internal/aig"
	"emmver/internal/core"
	"emmver/internal/obs"
	"emmver/internal/par"
	"emmver/internal/pba"
	"emmver/internal/sat"
	"emmver/internal/sim"
	"emmver/internal/unroll"
)

// Options configures a BMC run.
type Options struct {
	// MaxDepth is the bound n of Figs. 1–3.
	MaxDepth int
	// UseEMM adds the memory-modeling constraints (BMC-2/BMC-3). Without
	// it, memory read data stays entirely unconstrained — the "abstract
	// out the memory completely" configuration discussed in the Industry
	// II case study.
	UseEMM bool
	// Proofs enables the forward/backward termination checks.
	Proofs bool
	// PBA enables proof-tracing and latch-reason collection on the
	// counter-example checks.
	//
	// Proof tracing changes more than the solver: while cores are being
	// harvested, the engine also turns off structural hashing in the
	// unrollers, init-literal folding, comparator memoization, and the
	// between-depth inprocessing pass. All four optimizations share (or
	// rewrite) clauses across clause tags, and PBA attributes relevance by
	// tag — a shared clause would implicate only its first creator, so
	// the abstraction could silently drop latches or EMM events the proof
	// needs. This means a PBA run (BMC-3's phase 1) has deliberately
	// different performance characteristics from a plain BMC-2 run at the
	// same options; TestPBADisablesClauseSharing pins the coupling.
	PBA bool
	// StabilityDepth is the number of depths the latch-reason set must
	// stay unchanged before the abstraction is considered stable
	// (the paper uses 10 in Table 2).
	StabilityDepth int
	// StopAtStable ends the run (with KindStable) once the latch-reason
	// set has been stable for StabilityDepth depths.
	StopAtStable bool
	// Abs runs the check on a reduced model: latches in Abs.FreeLatches
	// become pseudo-primary inputs and disabled memories/ports get no EMM
	// constraints (§4.3).
	Abs *pba.Abstraction
	// Timeout bounds the wall-clock time of the whole run (0 = none).
	Timeout time.Duration
	// ValidateWitness replays counter-examples on the concrete-memory
	// simulator and fails loudly on divergence. Only meaningful on
	// unabstracted models.
	ValidateWitness bool
	// DisableEq6 drops the arbitrary-initial-state consistency
	// constraints (§4.2, eq. 6), demonstrating why proofs need them.
	DisableEq6 bool
	// DisableExclusivity switches EMM to the direct eq. 1 encoding
	// without the exclusive valid-read chains — the ablation for the
	// paper's claim that the chains speed up the SAT solver.
	DisableExclusivity bool
	// Portfolio runs the depth-level checks as a two-lane race when Proofs
	// is on: one goroutine owns the forward solver (forward termination,
	// then the counter-example check), the other owns the backward solver
	// (backward termination). The first decisive answer interrupts the
	// other lane. Verdicts are unchanged, but when forward and backward
	// termination both prove at the same depth the reported ProofSide may
	// differ from the sequential run's.
	Portfolio bool
	// CollectDepthStats records a DepthStat delta for every processed
	// depth in Result.DepthStats (the -stats CLI flag).
	CollectDepthStats bool
	// DisableStrash turns off structural hashing in the unrollers, and
	// DisableEMMMemo turns off EMM comparator memoization. Both exist for
	// A/B measurement and the equivalence tests; the optimizations are on
	// by default.
	DisableStrash  bool
	DisableEMMMemo bool
	// Restart selects the solvers' restart strategy: sat.RestartEMA (the
	// adaptive glue-driven default) or sat.RestartLuby (the classic
	// schedule). Equivalent builder: WithRestart.
	Restart sat.RestartMode
	// NoSimplify disables the between-depth inprocessing pass
	// (sat.Solver.Simplify: subsumption, clause strengthening, bounded
	// variable elimination over non-frozen auxiliaries). Inprocessing is
	// also skipped automatically whenever PBA proof tracing is active —
	// clause rewriting would invalidate resolution chains — with
	// sat.ErrTracingActive as the solver-level second guard. Equivalent
	// builder: WithSimplify.
	NoSimplify bool
	// PureLatchLFP uses the paper's literal loop-free-path constraint
	// (latch states pairwise distinct). The default strengthens state
	// equality with "and no write fired in between", which keeps the
	// forward-termination proof sound when memory contents evolve; see
	// EXPERIMENTS.md for a design where the literal check claims a bogus
	// proof.
	PureLatchLFP bool
	// Log, when non-nil, receives per-depth progress lines.
	Log io.Writer
	// Obs attaches the observability layer: every engine the run creates
	// publishes metrics into Obs's registry (solver conflicts, EMM clause
	// families, strash hits, ...) and — when a trace sink is attached —
	// emits typed start/end span events for each depth step, each
	// forward/backward/counter-example solver call, each EMM generation
	// step, and each portfolio lane. Nil (the default) costs nothing.
	// Equivalent builder: WithTrace / WithObserver.
	Obs *obs.Observer
	// Passes selects the static compile pipeline every public entry point
	// (Check/CheckCtx/CheckMany*/CheckManyParallel*) runs before the first
	// solver call: "" for the default pass.SpecDefault pipeline
	// (coi,sweep,ports,dedup), "none" to disable it, or an explicit
	// comma-separated pass list. Results are always reported in source
	// netlist coordinates — witnesses, latch reasons, and property indices
	// are translated back through the pipeline's mapping. Equivalent
	// builder: WithPasses.
	Passes string
	// Jobs is the worker count used by entry points that fan out across
	// properties or lanes (the facade's VerifyAll and the CLIs): 0 picks
	// runtime.NumCPU, 1 forces the sequential shared-unrolling engine, and
	// n > 1 bounds the fleet. Check itself ignores it — per-depth lane
	// racing stays opt-in via Portfolio. Equivalent builder: WithJobs.
	Jobs int
	// Share connects the fleet's solvers through the learnt-clause sharing
	// bus (internal/share): high-glue lemmas over frame values and EMM
	// comparators are relocated between workers through a canonical
	// (node, time-frame) literal coding. Effective only on multi-worker
	// entry points, and automatically disabled when PBA proof tracing is on
	// or the design asserts environment constraints (a peer's constraint
	// units would not be model-extension sound). Equivalent builder:
	// WithShare.
	Share bool
	// Cube partitions each depth's counter-example check over the EMM
	// address-comparator variables (cube-and-conquer): cubes are assumed
	// per-worker from a work-stealing queue and refined by further splitting
	// when a cube exceeds its conflict budget. Same eligibility rules as
	// Share. Equivalent builder: WithCube.
	Cube bool
	// ShareCap overrides the per-worker clause ring capacity (0 keeps the
	// default 4096). Larger rings tolerate burstier export rates before
	// overrun drops clauses (Stats.SharedDropped); smaller rings bound the
	// staleness of what a restart imports. Equivalent builder: WithShareCap.
	ShareCap int
	// ShareLBD and ShareSize override the solvers' clause-export filter
	// (0 keeps the defaults: glue <= 6 or binary, <= 30 literals). A
	// distributed fleet tightens them to trade socket traffic against lemma
	// reach. Equivalent builder: WithShareFilter.
	ShareLBD  int
	ShareSize int
	// LazyEMM switches the counter-example path to demand-driven EMM
	// constraint instantiation (core.Generator.EnableLazy): the CE query
	// starts with read data unconstrained, and a refinement loop validates
	// each SAT model against the true memory semantics, instantiating
	// exactly the violated read-over-write axioms before re-solving
	// incrementally. UNSAT answers on the relaxation are sound immediately
	// (clause removal preserves UNSAT), so with Proofs on, the forward and
	// backward termination checks keep the full eager constraint set on
	// their own solvers and only the CE search goes lazy (on a third
	// solver). Verdict-preserving by construction; a performance knob like
	// Share/Cube. Ignored under PBA (cores attribute relevance to eagerly
	// tagged clauses), under DisableExclusivity (the refinement machinery
	// suspends the eq. 4 chains), and on the cube-and-conquer and
	// distributed paths (both split the search over the deterministic
	// eager comparator creation order). Equivalent builder: WithLazy.
	LazyEMM bool
	// StartDepth warm-starts the BMC loop: the unrolling and EMM
	// constraints are still built from frame 0 (they are cumulative), but
	// the per-depth solver checks — forward/backward termination and the
	// counter-example query — only begin at this depth. The caller asserts
	// that every depth below StartDepth is already known counter-example
	// free, e.g. from a cached verdict of an identical run at a shallower
	// bound; the emmserved verdict cache sets it when a resubmission asks
	// for a deeper bound than a stored NO_CE. Skipping a depth's checks
	// can never flip a verdict (each depth's queries are self-contained
	// assumptions), and because a NO_CE cache entry implies the skipped
	// termination checks were SAT, a warm-started run reaches the same
	// verdict at the same depth as a cold one. Honored by Check/CheckCtx
	// (including the cube-and-conquer path); the multi-property and
	// distributed entry points ignore it.
	StartDepth int
}

// Kind classifies a Result.
type Kind int

// Result kinds.
const (
	// KindNoCE: the bound was exhausted without finding a violation.
	KindNoCE Kind = iota
	// KindCE: a counter-example was found.
	KindCE
	// KindProof: a termination check proved the property.
	KindProof
	// KindStable: the run stopped because the PBA latch-reason set became
	// stable (StopAtStable).
	KindStable
	// KindTimeout: the time budget expired.
	KindTimeout
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNoCE:
		return "NO_CE"
	case KindCE:
		return "CE"
	case KindProof:
		return "PROOF"
	case KindStable:
		return "STABLE"
	case KindTimeout:
		return "TIMEOUT"
	}
	return "?"
}

// Stats aggregates run statistics, mirroring the paper's time/memory
// reporting.
type Stats struct {
	Elapsed    time.Duration
	SolveCalls int
	Clauses    int
	Vars       int
	Conflicts  int64
	PeakHeapMB float64
	EMM        core.Sizes
	// Restarts, split by trigger: Luby budget expiry vs the adaptive glue
	// EMA crossing its threshold (RestartsLuby + RestartsEMA = Restarts).
	Restarts     int64
	RestartsLuby int64
	RestartsEMA  int64
	// Between-depth inprocessing work (zero under PBA or NoSimplify).
	Simplifies          int64
	SubsumedClauses     int64
	StrengthenedClauses int64
	EliminatedVars      int64
	// Cooperative solving (zero unless Options.Share/Cube are on): bus and
	// cube-queue tallies, set once at fleet level after the workers join.
	SharedExported int64
	SharedImported int64
	SharedFiltered int64
	SharedDropped  int64
	CubeSplits     int64
	CubeStolen     int64
	// Lazy-EMM refinement (zero unless Options.LazyEMM was active): model
	// validations run by the semantic oracle and SAT models it rejected.
	// The instantiated-axiom count lives in EMM.LazyAxioms — under LazyEMM
	// the EMM tally reports the counter-example path's generator, which is
	// where the on-demand reduction shows.
	LazyRounds   int64
	LazySpurious int64
}

// Add accumulates o into s. The parallel engines use it to merge
// per-worker statistics after the workers have joined: counters sum, while
// the heap high-water mark and the EMM constraint tally (which every
// worker re-generates identically) take the maximum.
func (s *Stats) Add(o Stats) {
	s.SolveCalls += o.SolveCalls
	s.Clauses += o.Clauses
	s.Vars += o.Vars
	s.Conflicts += o.Conflicts
	s.Restarts += o.Restarts
	s.RestartsLuby += o.RestartsLuby
	s.RestartsEMA += o.RestartsEMA
	s.Simplifies += o.Simplifies
	s.SubsumedClauses += o.SubsumedClauses
	s.StrengthenedClauses += o.StrengthenedClauses
	s.EliminatedVars += o.EliminatedVars
	s.SharedExported += o.SharedExported
	s.SharedImported += o.SharedImported
	s.SharedFiltered += o.SharedFiltered
	s.SharedDropped += o.SharedDropped
	s.CubeSplits += o.CubeSplits
	s.CubeStolen += o.CubeStolen
	s.LazyRounds += o.LazyRounds
	s.LazySpurious += o.LazySpurious
	if o.PeakHeapMB > s.PeakHeapMB {
		s.PeakHeapMB = o.PeakHeapMB
	}
	if o.EMM.Clauses() > s.EMM.Clauses() {
		s.EMM = o.EMM
	}
}

// DepthStat is the per-depth delta of formula growth and solver work,
// recorded when Options.CollectDepthStats is on. Each field is the increase
// over the previous depth (so summing a column gives the run total).
type DepthStat struct {
	Depth        int
	Clauses      int   // solver clauses added this depth (both solvers)
	Vars         int   // solver variables added this depth
	EMMClauses   int   // EMM constraint clauses (incl. eq. 6) this depth
	StrashHits   int   // AND gates answered from the strash cache
	CompMemoHits int   // address comparators answered from the memo cache
	Propagations int64 // solver propagations spent on this depth's checks
	Conflicts    int64
	Decisions    int64
	Solves       int // SAT calls issued at this depth
	Elapsed      time.Duration
}

// String renders one table line.
func (d DepthStat) String() string {
	return fmt.Sprintf("depth %3d: +%d clauses +%d vars (emm +%d, strash %d, memo %d) | %d solves %d props %d confl %s",
		d.Depth, d.Clauses, d.Vars, d.EMMClauses, d.StrashHits, d.CompMemoHits,
		d.Solves, d.Propagations, d.Conflicts, d.Elapsed.Round(time.Millisecond))
}

// Result is the outcome of a Check run.
type Result struct {
	Kind  Kind
	Prop  int
	Depth int // CE depth, proof depth, stable depth, or last completed depth
	// ProofSide is "forward" or "backward" for KindProof.
	ProofSide string
	Witness   *Witness
	// Tracker carries the accumulated latch reasons when PBA was on.
	Tracker *pba.Tracker
	Stats   Stats
	// DepthStats holds per-depth deltas (Options.CollectDepthStats only).
	DepthStats []DepthStat
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s depth=%d t=%s", r.Kind, r.Depth, r.Stats.Elapsed.Round(time.Millisecond))
	if r.Kind == KindProof {
		s += " (" + r.ProofSide + ")"
	}
	return s
}

// BMC1 returns options for the plain algorithm of Fig. 1.
func BMC1(maxDepth int) Options {
	return Options{MaxDepth: maxDepth, Proofs: true}
}

// BMC2 returns options for the EMM falsification algorithm of Fig. 2.
func BMC2(maxDepth int) Options {
	return Options{MaxDepth: maxDepth, UseEMM: true}
}

// BMC3 returns options for the EMM + proofs + PBA algorithm of Fig. 3.
func BMC3(maxDepth int) Options {
	return Options{MaxDepth: maxDepth, UseEMM: true, Proofs: true, PBA: true, StabilityDepth: 10}
}

type engine struct {
	n    *aig.Netlist
	opt  Options
	prop int
	ctx  context.Context

	fs *sat.Solver
	fu *unroll.Unroller
	fg *core.Generator

	bs *sat.Solver
	bu *unroll.Unroller
	bg *core.Generator

	// The counter-example path's solver/unroller/generator. Aliases of
	// fs/fu/fg normally; a dedicated third triple when LazyEMM is active
	// together with Proofs, so the termination checks keep the full eager
	// constraint set while the CE search runs on the lazy relaxation.
	cs *sat.Solver
	cu *unroll.Unroller
	cg *core.Generator
	// lazy reports that the CE path runs the lazy-EMM refinement loop
	// (cg is in EnableLazy mode).
	lazy bool
	// Refinement tallies; only the CE-owning goroutine touches them.
	lazyRounds   int64
	lazySpurious int64

	tracker  *pba.Tracker
	start    time.Time
	deadline time.Time
	stats    Stats
	// fwdSatDepth memoizes the deepest depth whose (property-independent)
	// forward termination check is known SAT, so an engine reused across
	// properties never repeats it.
	fwdSatDepth int
	// solveCalls is kept apart from stats so that the two portfolio lanes
	// can bump it concurrently without a data race.
	solveCalls atomic.Int64

	depthStats []DepthStat
	mark       depthMark
	// lastSimpConfl is the cumulative conflict count (both solvers) at the
	// last inprocessing pass; simplifyStep skips until enough new search
	// effort has accumulated to pay for the occurrence-list rebuild.
	lastSimpConfl int64

	// Observability handle plus the gauges/counters the engine itself
	// maintains (the solvers/unrollers/generators publish their own).
	obs         *obs.Observer
	obsDepth    *obs.Gauge
	obsProps    *obs.Counter
	obsCoreSize *obs.Gauge
	obsLR       *obs.Gauge
	// Lazy-EMM refinement counters; obsLazyAxPub tracks the last published
	// cumulative axiom count so deltas can be pushed after each CE check.
	obsLazyRounds   *obs.Counter
	obsLazyAxioms   *obs.Counter
	obsLazySpurious *obs.Counter
	obsLazyAxPub    int
}

// depthMark snapshots the cumulative counters at the end of a depth, so the
// next depth's DepthStat can be computed as a delta.
type depthMark struct {
	clauses, vars, emmClauses, strashHits, memoHits, solves int
	props, confl, decs                                      int64
	at                                                      time.Time
}

func newEngine(ctx context.Context, n *aig.Netlist, prop int, opt Options) *engine {
	e := &engine{n: n, opt: opt, prop: prop, ctx: ctx, start: time.Now(), fwdSatDepth: -1}
	if opt.Timeout > 0 {
		e.deadline = e.start.Add(opt.Timeout)
	}
	e.obs = opt.Obs
	if reg := opt.Obs.Registry(); reg != nil {
		e.obsDepth = reg.Gauge(obs.MDepth)
		e.obsProps = reg.Counter(obs.MPropsResolved)
		e.obsCoreSize = reg.Gauge(obs.MPBACoreSize)
		e.obsLR = reg.Gauge(obs.MPBALatchReasons)
		e.obsLazyRounds = reg.Counter(obs.MLazyRounds)
		e.obsLazyAxioms = reg.Counter(obs.MLazyAxioms)
		e.obsLazySpurious = reg.Counter(obs.MLazySpurious)
	}
	e.fs = sat.New()
	e.fs.Restart = opt.Restart
	e.fs.ShareLBD, e.fs.ShareMaxLits = opt.ShareLBD, opt.ShareSize
	if opt.PBA {
		e.fs.EnableProofTracing()
		e.tracker = pba.NewTracker()
	}
	// Cross-tag sharing (strash, comparator memoization) reuses clauses
	// emitted under the first requester's tag. That is sound for verdicts,
	// but PBA harvests clause tags from UNSAT cores to decide relevance —
	// a shared clause would implicate only its first creator, so the
	// abstraction could silently drop latches or EMM events the proof
	// needs. Like init folding, both caches are therefore off while cores
	// are being tracked (phase 2 of the PBA flow runs without opt.PBA and
	// keeps full sharing).
	e.fs.AttachObs(opt.Obs)
	e.fu = unroll.New(n, e.fs, unroll.Initialized)
	e.fu.NoStrash = opt.DisableStrash || opt.PBA
	e.fu.FoldInits = !opt.PBA
	e.fu.MemAwareLFP = len(n.Memories) > 0 && !opt.PureLatchLFP
	e.fu.AttachObs(opt.Obs)
	e.applyAbstraction(e.fu)
	e.installInterrupt(e.fs)
	if opt.UseEMM && len(n.Memories) > 0 {
		e.fg = core.NewGenerator(e.fu, false)
		e.fg.AttachObs(opt.Obs)
		if opt.DisableEMMMemo || opt.PBA {
			e.fg.DisableComparatorMemo()
		}
		if opt.DisableEq6 {
			e.fg.DisableInitConsistency()
		}
		if opt.DisableExclusivity {
			e.fg.DisableExclusivity()
		}
		e.applyMemAbstraction(e.fg)
	}
	if opt.Proofs {
		e.bs = sat.New()
		e.bs.Restart = opt.Restart
		e.bs.ShareLBD, e.bs.ShareMaxLits = opt.ShareLBD, opt.ShareSize
		e.bs.AttachObs(opt.Obs)
		e.bu = unroll.New(n, e.bs, unroll.Free)
		e.bu.NoStrash = opt.DisableStrash || opt.PBA
		e.bu.MemAwareLFP = len(n.Memories) > 0 && !opt.PureLatchLFP
		e.bu.AttachObs(opt.Obs)
		e.applyAbstraction(e.bu)
		e.installInterrupt(e.bs)
		if opt.UseEMM && len(n.Memories) > 0 {
			// The backward window starts in an arbitrary state, so every
			// memory must be treated as arbitrary-initialized (§4.2).
			e.bg = core.NewGenerator(e.bu, true)
			e.bg.AttachObs(opt.Obs)
			if opt.DisableEMMMemo || opt.PBA {
				e.bg.DisableComparatorMemo()
			}
			if opt.DisableEq6 {
				e.bg.DisableInitConsistency()
			}
			if opt.DisableExclusivity {
				e.bg.DisableExclusivity()
			}
			e.applyMemAbstraction(e.bg)
		}
	}
	// The counter-example path: fs/fu/fg unless lazy EMM splits it off.
	e.cs, e.cu, e.cg = e.fs, e.fu, e.fg
	if opt.LazyEMM && e.fg != nil && !opt.PBA && !opt.DisableExclusivity {
		e.lazy = true
		if opt.Proofs {
			// Forward termination (SAT(I ∧ LFP ∧ C) — UNSAT proves) is only
			// sound against the full constraint set: a lazily weakened
			// formula could go UNSAT and claim a bogus proof. The CE checks
			// therefore move to their own lazily-constrained solver and
			// fs/bs keep the exact encoding for the termination queries.
			e.cs = sat.New()
			e.cs.Restart = opt.Restart
			e.cs.ShareLBD, e.cs.ShareMaxLits = opt.ShareLBD, opt.ShareSize
			e.cs.AttachObs(opt.Obs)
			e.cu = unroll.New(n, e.cs, unroll.Initialized)
			e.cu.NoStrash = opt.DisableStrash
			e.cu.FoldInits = true
			e.cu.MemAwareLFP = e.fu.MemAwareLFP
			e.cu.AttachObs(opt.Obs)
			e.applyAbstraction(e.cu)
			e.installInterrupt(e.cs)
			e.cg = core.NewGenerator(e.cu, false)
			e.cg.AttachObs(opt.Obs)
			if opt.DisableEMMMemo {
				e.cg.DisableComparatorMemo()
			}
			if opt.DisableEq6 {
				e.cg.DisableInitConsistency()
			}
			e.applyMemAbstraction(e.cg)
		}
		e.cg.EnableLazy()
	}
	return e
}

func (e *engine) applyAbstraction(u *unroll.Unroller) {
	if e.opt.Abs == nil {
		return
	}
	for id := range e.opt.Abs.FreeLatches {
		u.Abstracted[id] = true
	}
}

func (e *engine) applyMemAbstraction(g *core.Generator) {
	if e.opt.Abs == nil {
		return
	}
	for mi := range e.opt.Abs.MemEnabled {
		g.SetMemoryEnabled(mi, e.opt.Abs.MemEnabled[mi])
		for r, on := range e.opt.Abs.ReadEnabled[mi] {
			g.SetReadPortEnabled(mi, r, on)
		}
		for w, on := range e.opt.Abs.WriteEnabled[mi] {
			g.SetWritePortEnabled(mi, w, on)
		}
	}
}

// installInterrupt points s's interrupt hook at the engine-level budget:
// the wall-clock deadline and the run context.
func (e *engine) installInterrupt(s *sat.Solver) {
	if e.deadline.IsZero() && e.ctx.Done() == nil {
		s.Interrupt = nil
		return
	}
	s.Interrupt = e.timedOut
}

// armSolver retargets s's interrupt hook at a portfolio-lane context for
// the duration of one lane, returning the restore function.
func (e *engine) armSolver(s *sat.Solver, ctx context.Context) func() {
	s.Interrupt = func() bool { return ctx.Err() != nil || e.deadlinePassed() }
	return func() { e.installInterrupt(s) }
}

func (e *engine) deadlinePassed() bool {
	return !e.deadline.IsZero() && time.Now().After(e.deadline)
}

func (e *engine) timedOut() bool {
	return e.ctx.Err() != nil || e.deadlinePassed()
}

func (e *engine) logf(format string, args ...interface{}) {
	if e.opt.Log != nil {
		fmt.Fprintf(e.opt.Log, format+"\n", args...)
	}
}

// snapshotStats materializes the engine's cumulative statistics.
func (e *engine) snapshotStats() Stats {
	s := e.stats
	s.SolveCalls = int(e.solveCalls.Load())
	s.Elapsed = time.Since(e.start)
	s.Clauses = e.fs.NumClauses()
	s.Vars = e.fs.NumVars()
	fst := e.fs.Stats()
	s.Conflicts = fst.Conflicts
	s.Restarts = fst.Restarts
	s.RestartsLuby = fst.RestartsLuby
	s.RestartsEMA = fst.RestartsEMA
	s.Simplifies = fst.Simplifies
	s.SubsumedClauses = fst.SubsumedClauses
	s.StrengthenedClauses = fst.StrengthenedClauses
	s.EliminatedVars = fst.EliminatedVars
	for _, o := range []*sat.Solver{e.bs, e.lazySolver()} {
		if o == nil {
			continue
		}
		s.Clauses += o.NumClauses()
		s.Vars += o.NumVars()
		ost := o.Stats()
		s.Conflicts += ost.Conflicts
		s.Restarts += ost.Restarts
		s.RestartsLuby += ost.RestartsLuby
		s.RestartsEMA += ost.RestartsEMA
		s.Simplifies += ost.Simplifies
		s.SubsumedClauses += ost.SubsumedClauses
		s.StrengthenedClauses += ost.StrengthenedClauses
		s.EliminatedVars += ost.EliminatedVars
	}
	// Under LazyEMM the EMM tally reports the CE path's generator (cg ==
	// fg unless the proof split is active): that is the constraint set the
	// lazy mode reduces, and the figure the A/B harness compares against
	// an eager run.
	if e.cg != nil {
		s.EMM = e.cg.Sizes()
	}
	s.LazyRounds = e.lazyRounds
	s.LazySpurious = e.lazySpurious
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.PeakHeapMB = float64(ms.HeapAlloc) / (1 << 20)
	return s
}

func (e *engine) finish(r *Result) *Result {
	r.Prop = e.prop
	r.Stats = e.snapshotStats()
	r.Tracker = e.tracker
	r.DepthStats = e.depthStats
	return r
}

// depthCumulative reads the counters DepthStat deltas are computed from.
func (e *engine) depthCumulative() depthMark {
	m := depthMark{at: time.Now()}
	m.clauses = e.fs.NumClauses()
	m.vars = e.fs.NumVars()
	m.strashHits = e.fu.StrashHits
	fst := e.fs.Stats()
	m.props, m.confl, m.decs = fst.Propagations, fst.Conflicts, fst.Decisions
	if e.bs != nil {
		m.clauses += e.bs.NumClauses()
		m.vars += e.bs.NumVars()
		m.strashHits += e.bu.StrashHits
		bst := e.bs.Stats()
		m.props += bst.Propagations
		m.confl += bst.Conflicts
		m.decs += bst.Decisions
	}
	gens := []*core.Generator{e.fg, e.bg}
	if e.cg != e.fg {
		gens = append(gens, e.cg)
	}
	for _, g := range gens {
		if g != nil {
			sz := g.Sizes()
			m.emmClauses += sz.Clauses() + sz.InitClauses
			m.memoHits += sz.CompMemoHits
		}
	}
	if e.cs != e.fs {
		m.clauses += e.cs.NumClauses()
		m.vars += e.cs.NumVars()
		m.strashHits += e.cu.StrashHits
		cst := e.cs.Stats()
		m.props += cst.Propagations
		m.confl += cst.Conflicts
		m.decs += cst.Decisions
	}
	m.solves = int(e.solveCalls.Load())
	return m
}

// collectDepthStat appends the delta since the previous depth.
func (e *engine) collectDepthStat(i int) {
	cur := e.depthCumulative()
	prev := e.mark
	if prev.at.IsZero() {
		prev.at = e.start
	}
	e.depthStats = append(e.depthStats, DepthStat{
		Depth:        i,
		Clauses:      cur.clauses - prev.clauses,
		Vars:         cur.vars - prev.vars,
		EMMClauses:   cur.emmClauses - prev.emmClauses,
		StrashHits:   cur.strashHits - prev.strashHits,
		CompMemoHits: cur.memoHits - prev.memoHits,
		Propagations: cur.props - prev.props,
		Conflicts:    cur.confl - prev.confl,
		Decisions:    cur.decs - prev.decs,
		Solves:       cur.solves - prev.solves,
		Elapsed:      cur.at.Sub(prev.at),
	})
	e.mark = cur
}

// publishObs flushes the per-depth observability deltas (the unrollers
// publish at depth boundaries; the solvers publish per Solve call and the
// EMM generators per frame on their own) and raises the depth high-water
// gauge. No-op without an attached registry.
func (e *engine) publishObs(i int) {
	e.fu.PublishObs()
	if e.bu != nil {
		e.bu.PublishObs()
	}
	if e.cu != e.fu {
		e.cu.PublishObs()
	}
	e.obsDepth.Max(int64(i))
}

// lazySolver returns the dedicated CE-path solver when the lazy proof
// split is active, nil otherwise (cs then aliases fs).
func (e *engine) lazySolver() *sat.Solver {
	if e.cs != e.fs {
		return e.cs
	}
	return nil
}

// emmClausesCum is the cumulative EMM clause count of the counter-example
// window (Sizes().Clauses() + InitClauses; cg aliases the forward
// generator unless the lazy proof split is active), the figure per-depth
// trace events report so a journal can be reconciled against
// Result.Stats.EMM.
func (e *engine) emmClausesCum() int {
	if e.cg == nil {
		return 0
	}
	sz := e.cg.Sizes()
	return sz.Clauses() + sz.InitClauses
}

// obsResolved counts a decisive per-property verdict (anything but a
// timeout) on the fleet-wide properties-resolved counter.
func (e *engine) obsResolved(k Kind) {
	if k != KindTimeout {
		e.obsProps.Inc()
	}
}

// obsPBAUpdate feeds one depth's UNSAT core into the tracker and mirrors
// the abstraction state (core size, latch-reason set) onto the registry
// gauges plus a point event in the trace.
func (e *engine) obsPBAUpdate(i int) {
	core := e.fs.Core()
	e.tracker.Update(i, core)
	e.obsCoreSize.Set(int64(len(core)))
	e.obsLR.Set(int64(e.tracker.Size()))
	e.obs.Point("pba.update",
		obs.F("depth", i),
		obs.F("core", len(core)),
		obs.F("lr", e.tracker.Size()),
		obs.F("stable", e.tracker.StableFor(i)))
}

// prepareDepth extends both unrollings and EMM constraints to depth i.
func (e *engine) prepareDepth(i int) {
	if e.fg != nil {
		e.fg.AddUpTo(i)
	}
	e.fu.AssertConstraints(i)
	if e.cu != e.fu {
		e.cg.AddUpTo(i)
		e.cu.AssertConstraints(i)
	}
	if e.bu != nil {
		if e.bg != nil {
			e.bg.AddUpTo(i)
		}
		e.bu.AssertConstraints(i)
	}
}

// solve wraps a SAT call with accounting.
func (e *engine) solve(s *sat.Solver, assumps ...sat.Lit) sat.Status {
	e.solveCalls.Add(1)
	return s.Solve(assumps...)
}

// forwardCheck runs the property-independent forward termination check at
// depth i: SAT(I ∧ LFP_i ∧ C_i).
func (e *engine) forwardCheck(i int) sat.Status {
	sp := e.obs.Span("solve.forward", obs.F("depth", i))
	st := e.solve(e.fs, e.fu.LoopFreeLit(i))
	sp.End(obs.F("result", st.String()))
	return st
}

// backwardCheck runs the backward termination (induction step) check for
// prop at depth i: SAT(LFP_i ∧ ¬P_i ∧ CP_i ∧ C_i).
func (e *engine) backwardCheck(prop, i int) sat.Status {
	sp := e.obs.Span("solve.backward", obs.F("depth", i), obs.F("prop", prop))
	assumps := []sat.Lit{e.bu.LoopFreeLit(i), e.bu.PropertyLit(prop, i).Not()}
	for j := 0; j < i; j++ {
		assumps = append(assumps, e.bu.PropertyLit(prop, j))
	}
	st := e.solve(e.bs, assumps...)
	sp.End(obs.F("result", st.String()))
	return st
}

// ceCheck runs the counter-example check for prop at depth i:
// SAT(I ∧ ¬P_i ∧ C_i). Under LazyEMM, C_i is the demand-instantiated
// relaxation and a SAT answer enters the refinement loop: the semantic
// oracle validates the model's memory-interface trace, instantiates the
// violated read-over-write axioms, and the query is re-solved
// incrementally until the model is genuine (SAT stands) or the
// strengthened relaxation runs out of models (UNSAT — sound a fortiori).
func (e *engine) ceCheck(prop, i int) sat.Status {
	sp := e.obs.Span("solve.ce", obs.F("depth", i), obs.F("prop", prop),
		obs.F("lazy", e.lazy))
	notP := e.cu.PropertyLit(prop, i).Not()
	st := e.solve(e.cs, notP)
	rounds := 0
	if e.lazy {
		for st == sat.Sat {
			rounds++
			e.lazyRounds++
			e.obsLazyRounds.Inc()
			viol := e.cg.RefineLazy()
			if viol == 0 {
				break
			}
			e.lazySpurious++
			e.obsLazySpurious.Inc()
			st = e.solve(e.cs, notP)
		}
		if ax := e.cg.Sizes().LazyAxioms; ax > e.obsLazyAxPub {
			e.obsLazyAxioms.Add(int64(ax - e.obsLazyAxPub))
			e.obsLazyAxPub = ax
		}
	}
	sp.End(obs.F("result", st.String()), obs.F("rounds", rounds))
	return st
}

// validateWitness replays w on the concrete-memory simulator when the run
// is configured to and fails loudly on divergence.
func (e *engine) validateWitness(w *Witness, prop int) {
	if e.opt.ValidateWitness && e.opt.Abs == nil {
		if err := w.Replay(e.n, prop); err != nil {
			panic(fmt.Sprintf("bmc: witness replay failed: %v", err))
		}
	}
}

// Check runs the configured algorithm for property prop of n.
func Check(n *aig.Netlist, prop int, opt Options) *Result {
	return CheckCtx(context.Background(), n, prop, opt)
}

// CheckCtx is Check under a cancellation context: when ctx is cancelled the
// run stops at the next solver poll and reports KindTimeout. The parallel
// engines use it to tear a whole fleet down as soon as its outcome is
// decided.
//
// Like every public entry point, CheckCtx first runs the static compile
// pipeline selected by Options.Passes and then translates the result back
// to n's coordinates.
func CheckCtx(ctx context.Context, n *aig.Netlist, prop int, opt Options) *Result {
	c := compileModel(n, []int{prop}, &opt)
	if jobs := par.Jobs(opt.Jobs); opt.Cube && jobs > 1 && shareEligible(c.n, opt) {
		return c.finish(checkCubed(ctx, c.n, c.props[0], opt, jobs), prop, opt)
	}
	return c.finish(checkCompiled(ctx, c.n, c.props[0], opt), prop, opt)
}

// checkCompiled is the engine loop proper, running directly on the netlist
// it is given (already compiled by the caller).
func checkCompiled(ctx context.Context, n *aig.Netlist, prop int, opt Options) *Result {
	e := newEngine(ctx, n, prop, opt)
	for i := 0; i <= opt.MaxDepth; i++ {
		if e.timedOut() {
			return e.finish(&Result{Kind: KindTimeout, Depth: max(i-1, 0)})
		}
		sp := e.obs.Span("bmc.depth", obs.F("depth", i), obs.F("prop", prop))
		e.prepareDepth(i)
		var r *Result
		if i >= opt.StartDepth {
			// Below the warm-start frontier only the (cumulative) unrolling
			// and EMM constraints are built; the depth's checks are already
			// answered by the caller's cached shallower verdict.
			r = e.depthStep(i)
		}
		e.publishObs(i)
		if opt.CollectDepthStats {
			e.collectDepthStat(i)
		}
		sp.End(obs.F("emm_clauses", e.emmClausesCum()),
			obs.F("clauses", e.fs.NumClauses()),
			obs.F("decided", r != nil))
		if r != nil {
			e.obsResolved(r.Kind)
			return e.finish(r)
		}
		e.simplifyStep(i)
	}
	e.obsResolved(KindNoCE)
	return e.finish(&Result{Kind: KindNoCE, Depth: opt.MaxDepth})
}

// simplifyMinConflicts gates between-depth inprocessing on search effort: a
// pass only runs once the solvers have logged this many new conflicts since
// the previous pass, plus one conflict per simplifyClausesPerConfl clauses
// (a pass rebuilds the occurrence lists, so its cost grows with the
// formula while its payoff grows with the search). Vars rather than consts
// so the equivalence tests can force every pass on designs too small to
// clear the bar.
var (
	simplifyMinConflicts    int64 = 500
	simplifyClausesPerConfl       = int64(50)
)

// simplifyStep runs the between-depth inprocessing pass on both solvers
// after depth i failed to decide the property. The frame frontier, EMM
// interface signals, and every strash/memo-cached literal are frozen by the
// unroller and generator, so elimination only consumes depth-local
// auxiliaries that no later depth can mention. Skipped under NoSimplify and
// under PBA (clause rewriting would invalidate the proof log); the solver's
// ErrTracingActive guard backstops the latter. Also skipped until the
// solvers have accumulated simplifyMinConflicts of new search effort since
// the last pass: on easy per-depth instances the occurrence-list rebuild
// costs more than the search it would save.
func (e *engine) simplifyStep(i int) {
	if e.opt.NoSimplify || e.opt.PBA {
		return
	}
	confl := e.fs.Stats().Conflicts
	clauses := int64(e.fs.NumClauses())
	for _, o := range []*sat.Solver{e.bs, e.lazySolver()} {
		if o != nil {
			confl += o.Stats().Conflicts
			clauses += int64(o.NumClauses())
		}
	}
	need := simplifyMinConflicts
	if simplifyClausesPerConfl > 0 {
		need += clauses / simplifyClausesPerConfl
	}
	if confl-e.lastSimpConfl < need {
		return
	}
	e.lastSimpConfl = confl
	sp := e.obs.Span("bmc.simplify", obs.F("depth", i), obs.F("prop", e.prop))
	for _, s := range []*sat.Solver{e.fs, e.bs, e.lazySolver()} {
		if s == nil {
			continue
		}
		if err := s.Simplify(); err != nil && !errors.Is(err, sat.ErrTracingActive) {
			panic(fmt.Sprintf("bmc: inprocessing failed: %v", err))
		}
	}
	st := e.fs.Stats()
	sub, str, elim := st.SubsumedClauses, st.StrengthenedClauses, st.EliminatedVars
	for _, o := range []*sat.Solver{e.bs, e.lazySolver()} {
		if o != nil {
			ost := o.Stats()
			sub += ost.SubsumedClauses
			str += ost.StrengthenedClauses
			elim += ost.EliminatedVars
		}
	}
	sp.End(obs.F("subsumed", sub), obs.F("strengthened", str),
		obs.F("eliminated_vars", elim))
}

// depthStep runs the depth-i checks in the paper's order — forward
// termination, backward termination, counter-example — and returns a
// decisive Result, or nil to continue with the next depth. With
// Options.Portfolio the termination lanes race instead (portfolio.go).
func (e *engine) depthStep(i int) *Result {
	if e.opt.Proofs && e.opt.Portfolio {
		return e.depthStepPortfolio(i)
	}
	prop := e.prop
	if e.opt.Proofs {
		switch e.forwardCheck(i) {
		case sat.Unsat:
			e.logf("depth %d: forward termination", i)
			return &Result{Kind: KindProof, Depth: i, ProofSide: "forward"}
		case sat.Unknown:
			return &Result{Kind: KindTimeout, Depth: i}
		}
		switch e.backwardCheck(prop, i) {
		case sat.Unsat:
			e.logf("depth %d: backward termination", i)
			return &Result{Kind: KindProof, Depth: i, ProofSide: "backward"}
		case sat.Unknown:
			return &Result{Kind: KindTimeout, Depth: i}
		}
	}
	switch e.ceCheck(prop, i) {
	case sat.Sat:
		w := e.extractWitness(i)
		e.logf("depth %d: counter-example", i)
		e.validateWitness(w, prop)
		return &Result{Kind: KindCE, Depth: i, Witness: w}
	case sat.Unknown:
		return &Result{Kind: KindTimeout, Depth: i}
	}
	if e.opt.PBA {
		e.obsPBAUpdate(i)
		e.logf("depth %d: no CE, |LR|=%d (stable %d)", i, e.tracker.Size(), e.tracker.StableFor(i))
		if e.opt.StopAtStable && e.tracker.StableFor(i) >= e.opt.StabilityDepth {
			return &Result{Kind: KindStable, Depth: i}
		}
	} else {
		e.logf("depth %d: no CE", i)
	}
	return nil
}

// extractWitness decodes the satisfying model (on the counter-example
// path's solver) into a replayable trace.
func (e *engine) extractWitness(depth int) *Witness {
	w := &Witness{Length: depth}
	for f := 0; f <= depth; f++ {
		in := make(map[aig.NodeID]bool)
		for _, id := range e.n.Inputs {
			if e.cu.Built(id, f) {
				in[id] = e.cu.ModelBit(aig.MkLit(id, false), f)
			}
		}
		w.Inputs = append(w.Inputs, in)
	}
	w.InitLatches = make(map[aig.NodeID]bool)
	for _, l := range e.n.Latches {
		if l.Init == aig.InitX && e.cu.Built(l.Node, 0) {
			w.InitLatches[l.Node] = e.cu.ModelBit(aig.MkLit(l.Node, false), 0)
		}
	}
	// Arbitrary-init memory contents: every enabled read that hit no
	// in-window write pins the initial word at its address.
	if e.cg != nil && e.cg.Lazy() {
		// The lazy generator has no per-frame N literals for pending
		// reads; the oracle re-derives "hit no in-window write" from the
		// just-validated model's interface trace instead.
		w.MemInit = e.cg.LazyMemInit(depth)
	} else if e.cg != nil {
		for mi, m := range e.n.Memories {
			words := make(map[int]uint64)
			for r := range m.Reads {
				for _, ev := range e.cg.ReadEvents(mi, r) {
					// A reused engine may have frames beyond this CE's depth
					// built; their read events are unconstrained here.
					if ev.Frame > depth {
						continue
					}
					if e.cs.LitValue(ev.Re) != sat.True || e.cs.LitValue(ev.N) != sat.True {
						continue
					}
					addr := decodeVec(e.cs, ev.Addr)
					words[int(addr)] = decodeVec(e.cs, ev.RD)
				}
			}
			w.MemInit = append(w.MemInit, words)
		}
	} else {
		for range e.n.Memories {
			w.MemInit = append(w.MemInit, map[int]uint64{})
		}
	}
	return w
}

func decodeVec(s *sat.Solver, lits []sat.Lit) uint64 {
	var out uint64
	for i, l := range lits {
		if s.LitValue(l) == sat.True {
			out |= 1 << uint(i)
		}
	}
	return out
}

// Witness is a counter-example trace: per-frame input values plus the
// initial values of unconstrained latches and arbitrary-init memory words
// the trace depends on.
type Witness struct {
	Length      int // the property is violated at this frame
	Inputs      []map[aig.NodeID]bool
	InitLatches map[aig.NodeID]bool
	MemInit     []map[int]uint64 // per memory: address -> initial word
}

// FormatFrame renders one frame's input assignment using the design's
// declared input names, for human-readable counter-example dumps.
func (w *Witness) FormatFrame(n *aig.Netlist, f int) string {
	if f < 0 || f >= len(w.Inputs) {
		return ""
	}
	out := ""
	for _, id := range n.Inputs {
		name := n.InputName(id)
		if name == "" {
			name = fmt.Sprintf("i%d", id)
		}
		v := 0
		if w.Inputs[f][id] {
			v = 1
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", name, v)
	}
	return out
}

// Replay simulates the witness on the concrete design (real memory
// arrays) and returns an error unless the property fails at frame Length
// with all environment constraints satisfied along the trace.
func (w *Witness) Replay(n *aig.Netlist, prop int) error {
	s := sim.New(n)
	for id, v := range w.InitLatches {
		s.SetLatch(id, v)
	}
	for mi, words := range w.MemInit {
		for addr, word := range words {
			s.SetMemWord(mi, addr, word)
		}
	}
	for f := 0; f <= w.Length; f++ {
		res := s.Step(w.Inputs[f])
		if !res.ConstraintsOK {
			return fmt.Errorf("constraints violated at frame %d", f)
		}
		if f == w.Length {
			if res.PropOK[prop] {
				return fmt.Errorf("property %d holds at frame %d; witness is spurious", prop, f)
			}
		}
	}
	return nil
}
