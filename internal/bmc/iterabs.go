package bmc

import (
	"time"

	"emmver/internal/aig"
	"emmver/internal/pba"
)

// IterAbsResult is the outcome of iterative abstraction.
type IterAbsResult struct {
	// Rounds holds the latch-reason set size after each abstraction
	// round (round 0 runs on the concrete model).
	Rounds []int
	// Abs is the final reduced model.
	Abs *pba.Abstraction
	// Proof is the proof attempt on the final model (nil if a phase
	// ended early).
	Proof *Result
	// Phase1 is the last reason-collection run.
	Phase1 *Result
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
}

// Kind summarizes the overall outcome.
func (r *IterAbsResult) Kind() Kind {
	if r.Proof != nil {
		return r.Proof.Kind
	}
	if r.Phase1 != nil {
		return r.Phase1.Kind
	}
	return KindNoCE
}

// IterativeAbstraction implements the iterative-abstraction loop of the
// paper's reference [10] (Gupta et al., ICCAD 2003), which §2.2 describes:
// proof-based abstraction is applied repeatedly, each round running BMC
// with proof analysis on the previous round's reduced model, until the
// latch-reason set stops shrinking. The final reduced model is then
// handed to the prover. Each round only ever over-approximates, so a
// proof on the final model is sound for the concrete design; a
// counter-example found in round 0 is real, and later-round CEs trigger a
// concrete fallback exactly like ProveWithPBA.
func IterativeAbstraction(n *aig.Netlist, prop int, opt Options, maxRounds int) *IterAbsResult {
	start := time.Now()
	res := &IterAbsResult{}
	if maxRounds < 1 {
		maxRounds = 1
	}
	if opt.StabilityDepth <= 0 {
		opt.StabilityDepth = 10
	}

	var abs *pba.Abstraction
	prevSize := -1
	for round := 0; round < maxRounds; round++ {
		p1 := opt
		p1.PBA = true
		p1.Proofs = false
		p1.StopAtStable = true
		p1.Abs = abs
		p1.ValidateWitness = opt.ValidateWitness && abs == nil
		r := Check(n, prop, p1)
		res.Phase1 = r
		if r.Kind == KindCE && abs == nil {
			res.Elapsed = time.Since(start)
			return res // real counter-example
		}
		if r.Kind == KindTimeout {
			res.Elapsed = time.Since(start)
			return res
		}
		if r.Kind == KindCE {
			// Spurious CE on an abstract model: stop refining and fall
			// back to the previous abstraction for the proof attempt.
			break
		}
		size := r.Tracker.Size()
		res.Rounds = append(res.Rounds, size)
		abs = r.Tracker.Abstract(n)
		res.Abs = abs
		if prevSize >= 0 && size >= prevSize {
			break // no further shrinkage
		}
		prevSize = size
	}

	p2 := opt
	p2.PBA = false
	p2.Proofs = true
	p2.Abs = abs
	p2.ValidateWitness = false
	res.Proof = Check(n, prop, p2)
	if res.Proof.Kind == KindCE {
		// Possibly spurious: decide on the concrete model.
		p3 := opt
		p3.PBA = false
		p3.Proofs = true
		p3.Abs = nil
		res.Proof = Check(n, prop, p3)
	}
	res.Elapsed = time.Since(start)
	return res
}
