package bmc

import (
	"testing"

	"emmver/internal/aig"
	"emmver/internal/designs"
	"emmver/internal/rtl"
)

func TestProveWithInvariantBasic(t *testing.T) {
	// r2 mirrors r1; r1 stays 0 (gated by constant false). "r2 == 0" is
	// not 1-inductive on its own state, but with the invariant "r1 == 0"
	// assumed it becomes trivial.
	m := rtl.NewModule("inv")
	r1 := m.BitReg("r1", false)
	r1.UpdateBit(aig.True, m.N.And(m.InputBit("x"), aig.False))
	r2 := m.BitReg("r2", false)
	r2.UpdateBit(aig.True, r1.Bit())
	m.Done(r1, r2)
	m.AssertAlways("main-r2zero", r2.Bit().Not())
	m.AssertAlways("inv-r1zero", r1.Bit().Not())

	res, err := ProveWithInvariant(m.N, 0, 1, Options{MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantProof.Kind != KindProof {
		t.Fatalf("invariant not proved: %v", res.InvariantProof)
	}
	if res.Kind() != KindProof {
		t.Fatalf("main property not proved: %v", res.Main)
	}
	// The caller's netlist must be unchanged.
	if len(m.N.Constraints) != 0 {
		t.Fatalf("constraint leaked into the caller's netlist")
	}
}

func TestProveWithInvariantIndustryIIShape(t *testing.T) {
	// The Industry II pattern: a 2-flop dead privilege pipeline gates the
	// effective write strobe. The invariant "the strobe never fires" is
	// 2-inductive; the main property "the write counter stays zero" is
	// not inductive on its own (the counter can tick from an arbitrary
	// privilege state) but becomes 1-inductive once the invariant is
	// assumed.
	m := rtl.NewModule("iishape")
	req := m.InputBit("req")
	// A privilege flag that holds its value and is never set: "flag = 0"
	// is an easy inductive invariant, but it does not appear in the main
	// property's own induction hypothesis.
	flag := m.BitReg("flag", false)
	flag.SetNext(rtl.Vec{flag.Bit()})
	strobe := m.N.And(req, flag.Bit())
	count := m.Register("count", 4, 0)
	count.Update(strobe, m.Inc(count.Q))
	// A free-running tick defeats the forward termination check (the
	// state never repeats within a small bound), so the main property
	// genuinely needs induction — which fails without the invariant
	// (a window may start with flag = 1 and count about to tick).
	tick := m.Register("tick", 8, 0)
	tick.SetNext(m.Inc(tick.Q))
	m.Done(flag, count, tick)
	m.AssertAlways("main-count-zero", m.IsZero(count.Q))
	m.AssertAlways("inv-flag-clear", flag.Bit().Not())

	// Sanity: without the invariant the main property has no induction
	// proof within the bound (the input-driven counter defeats LFP).
	// Pipeline off: constant sweep proves flag (and then count) constant
	// and discharges the property structurally, which would defeat the
	// point of this sanity check.
	direct := Check(m.N, 0, BMC1(12).WithPasses("none"))
	if direct.Kind == KindProof {
		t.Fatalf("main property should not be provable directly here: %v", direct)
	}

	res, err := ProveWithInvariant(m.N, 0, 1, Options{MaxDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantProof.Kind != KindProof {
		t.Fatalf("invariant proof wrong: %v (%s)", res.InvariantProof, res.InvariantProof.ProofSide)
	}
	if res.Kind() != KindProof {
		t.Fatalf("main property not proved under the invariant: %v", res.Main)
	}
}

func TestProveWithInvariantLookupInvariantProves(t *testing.T) {
	// On the real lookup engine the helper invariant itself must go
	// through at depth 2 via this API (the main reachability properties
	// additionally need the RD=0 abstraction — tested in designs).
	l := designs.NewLookup(designs.LookupConfig{AW: 3, DW: 4, NumProps: 4, Latency: 3})
	res, err := ProveWithInvariant(l.Netlist(), l.ReachIndices[0], l.InvariantIndex,
		Options{MaxDepth: 30, UseEMM: true, Passes: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantProof.Kind != KindProof || res.InvariantProof.Depth != 2 {
		t.Fatalf("invariant proof wrong: %v", res.InvariantProof)
	}
	// The main property stays NO_CE at the bound: the invariant alone is
	// not enough without the RD=0 memory abstraction — faithfully
	// matching why the paper needed that extra step.
	if res.Main.Kind != KindNoCE {
		t.Fatalf("expected NO_CE for the main property, got %v", res.Main)
	}
}

func TestProveWithInvariantFailedInvariant(t *testing.T) {
	m := rtl.NewModule("bad")
	c := m.Register("c", 2, 0)
	c.SetNext(m.Inc(c.Q))
	m.Done(c)
	m.AssertAlways("main", aig.True)
	m.AssertAlways("inv-false", m.EqConst(c.Q, 3).Not()) // violated at 3
	res, err := ProveWithInvariant(m.N, 0, 1, Options{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantProof.Kind != KindCE {
		t.Fatalf("bogus invariant must be refuted: %v", res.InvariantProof)
	}
	if res.Main != nil {
		t.Fatalf("main must not run under an unproven invariant")
	}
	if res.Kind() != KindCE {
		t.Fatalf("overall kind must reflect the failed invariant")
	}
}

func TestProveWithInvariantArgErrors(t *testing.T) {
	m := rtl.NewModule("e")
	m.AssertAlways("p", aig.True)
	if _, err := ProveWithInvariant(m.N, 0, 0, Options{MaxDepth: 2}); err == nil {
		t.Fatalf("same property must error")
	}
	if _, err := ProveWithInvariant(m.N, 0, 7, Options{MaxDepth: 2}); err == nil {
		t.Fatalf("out-of-range invariant must error")
	}
}
