package bmc

import (
	"testing"
	"time"

	"emmver/internal/aig"
	"emmver/internal/designs"
	"emmver/internal/rtl"
)

// manyCounter builds the counter mod 8 with properties "cnt != k" for
// k = 0..9: CEs at depth k for k <= 7, forward proofs for 8 and 9.
func manyCounter() (*rtl.Module, []int) {
	m := rtl.NewModule("many")
	c := m.Register("cnt", 4, 0)
	wrap := m.EqConst(c.Q, 7)
	c.SetNext(m.MuxV(wrap, m.Const(4, 0), m.Inc(c.Q)))
	m.Done(c)
	var props []int
	for k := 0; k <= 9; k++ {
		m.AssertAlways("ne", m.EqConst(c.Q, uint64(k)).Not())
		props = append(props, k)
	}
	return m, props
}

// assertSameVerdicts checks that two runs agree on every deterministic
// field. Witness input values may legitimately differ between runs (any
// satisfying assignment is a valid counter-example), but the kind, depth,
// proof side, and witness length may not.
func assertSameVerdicts(t *testing.T, seq, par *ManyResult) {
	t.Helper()
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("result count: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i, s := range seq.Results {
		p := par.Results[i]
		if s.Kind != p.Kind || s.Prop != p.Prop || s.Depth != p.Depth || s.ProofSide != p.ProofSide {
			t.Fatalf("prop %d: sequential %v (%s) vs parallel %v (%s)", i, s, s.ProofSide, p, p.ProofSide)
		}
		if s.Kind == KindCE {
			if p.Witness == nil || p.Witness.Length != s.Witness.Length {
				t.Fatalf("prop %d: parallel witness missing or wrong length", i)
			}
		}
	}
	if seq.MaxWitnessDepth != par.MaxWitnessDepth {
		t.Fatalf("max witness depth: %d vs %d", seq.MaxWitnessDepth, par.MaxWitnessDepth)
	}
}

func TestCheckManyParallelMatchesSequential(t *testing.T) {
	m, props := manyCounter()
	opt := Options{MaxDepth: 30, Proofs: true, ValidateWitness: true}
	seq := CheckMany(m.N, props, opt)
	for _, jobs := range []int{1, 2, 4} {
		par := CheckManyParallel(m.N, props, opt, jobs)
		assertSameVerdicts(t, seq, par)
		if par.Stats.SolveCalls == 0 {
			t.Fatalf("jobs=%d: per-worker stats were not merged", jobs)
		}
	}
}

func TestCheckManyParallelDeterministicOnIndustryI(t *testing.T) {
	// The Industry I reduced design: 16 reachability properties, most with
	// witnesses, over a real memory (EMM constraints). The parallel engine
	// must produce the sequential verdicts, and two parallel runs must
	// agree with each other.
	f := designs.NewImageFilter(designs.ImageFilterConfig{LineWidth: 4, AW: 4, DW: 4, NumProps: 16})
	opt := Options{MaxDepth: 3*4 + 10, UseEMM: true, Proofs: true, ValidateWitness: true}
	seq := CheckMany(f.Netlist(), f.PropIndices(), opt)
	first := CheckManyParallel(f.Netlist(), f.PropIndices(), opt, 4)
	assertSameVerdicts(t, seq, first)
	second := CheckManyParallel(f.Netlist(), f.PropIndices(), opt, 4)
	assertSameVerdicts(t, first, second)
}

func TestCheckManyParallelCounts(t *testing.T) {
	m, props := manyCounter()
	// Proofs on, generous bound: 8 CEs (max depth 7) + 2 forward proofs.
	res := CheckManyParallel(m.N, props, Options{MaxDepth: 30, Proofs: true}, 3)
	counts := res.Counts()
	if counts[KindCE] != 8 || counts[KindProof] != 2 {
		t.Fatalf("counts wrong: %v", counts)
	}
	if res.MaxWitnessDepth != 7 {
		t.Fatalf("max witness depth %d want 7", res.MaxWitnessDepth)
	}
	// No proofs, tight bound: CEs for k <= 5, bound exhaustion above.
	res = CheckManyParallel(m.N, props, Options{MaxDepth: 5}, 3)
	counts = res.Counts()
	if counts[KindCE] != 6 || counts[KindNoCE] != 4 {
		t.Fatalf("bounded counts wrong: %v", counts)
	}
	if res.MaxWitnessDepth != 5 {
		t.Fatalf("bounded max witness depth %d want 5", res.MaxWitnessDepth)
	}
}

// slowDesign is large enough that no depth completes within a nanosecond
// budget.
func slowDesign() *rtl.Module {
	m := rtl.NewModule("slow")
	mem := m.Memory("mem", 6, 16, aig.MemZero)
	mem.Write(m.Input("wa", 6), m.Input("wd", 16), m.InputBit("we"))
	rd := mem.Read(m.Input("ra", 6), m.InputBit("re"))
	acc := m.Register("acc", 16, 0)
	acc.SetNext(m.Add(acc.Q, rd))
	m.Done(acc)
	m.AssertAlways("p", m.EqConst(acc.Q, 0xBEEF).Not())
	return m
}

func TestTimeoutBeforeDepthZeroClampsDepth(t *testing.T) {
	// A timeout that fires before depth 0 completes must not report the
	// nonsensical depth -1.
	m := slowDesign()
	opt := Options{MaxDepth: 60, UseEMM: true, Timeout: time.Nanosecond}
	r := Check(m.N, 0, opt)
	if r.Kind != KindTimeout {
		t.Fatalf("expected timeout, got %v", r)
	}
	if r.Depth < 0 {
		t.Fatalf("Check reported negative depth %d", r.Depth)
	}
	mr := CheckMany(m.N, []int{0}, opt)
	for _, rr := range mr.Results {
		if rr.Kind != KindTimeout || rr.Depth < 0 {
			t.Fatalf("CheckMany reported %v depth=%d", rr, rr.Depth)
		}
	}
	pr := CheckManyParallel(m.N, []int{0}, opt, 2)
	for _, rr := range pr.Results {
		if rr.Kind != KindTimeout || rr.Depth < 0 {
			t.Fatalf("CheckManyParallel reported %v depth=%d", rr, rr.Depth)
		}
	}
}

func TestPortfolioMatchesSequential(t *testing.T) {
	cases := []struct {
		name  string
		build func() *rtl.Module
		prop  int
		opt   Options
	}{
		{"backward-proof", func() *rtl.Module { return mod5Counter(2) }, 0, BMC1(20)},
		{"ce", func() *rtl.Module { return mod5Counter(3) }, 1, BMC1(20)},
		{"emm-proof", memEcho, 0, BMC3(20)},
		{"forward-proof", func() *rtl.Module {
			m := rtl.NewModule("plus2")
			c := m.Register("cnt", 3, 0)
			c.SetNext(m.Add(c.Q, m.Const(3, 2)))
			m.Done(c)
			m.AssertAlways("ne5", m.EqConst(c.Q, 5).Not())
			return m
		}, 0, BMC1(20)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := Check(tc.build().N, tc.prop, tc.opt)
			popt := tc.opt
			popt.Portfolio = true
			popt.ValidateWitness = true
			por := Check(tc.build().N, tc.prop, popt)
			// ProofSide may legitimately differ when both termination
			// checks prove at the same depth; Kind and Depth may not.
			if por.Kind != seq.Kind || por.Depth != seq.Depth {
				t.Fatalf("sequential %v vs portfolio %v", seq, por)
			}
			if seq.Kind == KindCE && por.Witness == nil {
				t.Fatalf("portfolio CE lost its witness")
			}
		})
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{SolveCalls: 2, Clauses: 10, Vars: 5, Conflicts: 3, PeakHeapMB: 7}
	b := Stats{SolveCalls: 1, Clauses: 4, Vars: 2, Conflicts: 1, PeakHeapMB: 9}
	a.Add(b)
	if a.SolveCalls != 3 || a.Clauses != 14 || a.Vars != 7 || a.Conflicts != 4 {
		t.Fatalf("counters wrong after Add: %+v", a)
	}
	if a.PeakHeapMB != 9 {
		t.Fatalf("peak heap should take the max, got %v", a.PeakHeapMB)
	}
}
