package bmc

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/pass"
	"emmver/internal/pba"
)

// compiled carries the output of the static pass pipeline together with
// everything needed to translate engine results back to the source
// netlist's coordinates. The public entry points (CheckCtx, CheckManyCtx,
// CheckManyParallelCtx) compile first, run the engines on the reduced
// netlist, and back-map before returning, so callers only ever see source
// property indices, source node ids in witnesses, and source latch indices
// in PBA trackers.
type compiled struct {
	n        *aig.Netlist
	props    []int
	mp       *pass.Mapping
	src      *aig.Netlist
	srcProps []int
}

// compileModel runs the pipeline selected by opt.Passes. It also rewrites
// opt.Abs into compiled coordinates in place (the caller passes its own
// Options copy). An invalid spec is a programmer error — the CLIs validate
// specs before any engine runs — so it panics rather than growing an error
// return on every Check signature.
func compileModel(n *aig.Netlist, props []int, opt *Options) compiled {
	res, err := pass.Compile(n, props, pass.Options{Spec: opt.Passes, Obs: opt.Obs})
	if err != nil {
		panic("bmc: " + err.Error())
	}
	c := compiled{n: res.N, props: res.Props, mp: res.Map, src: n, srcProps: props}
	if opt.Abs != nil && !res.Map.IsIdentity() {
		opt.Abs = mapAbsToCompiled(opt.Abs, res.N, res.Map)
	}
	return c
}

// finish translates one engine result from compiled to source coordinates.
func (c compiled) finish(r *Result, srcProp int, opt Options) *Result {
	r.Prop = srcProp
	if c.mp.IsIdentity() {
		return r
	}
	if r.Witness != nil {
		r.Witness = c.mapWitnessToSource(r.Witness)
		// The engine already replayed the compiled-coordinate witness; a
		// second replay on the source netlist validates the back-mapping
		// itself.
		if opt.ValidateWitness && opt.Abs == nil {
			if err := r.Witness.Replay(c.src, srcProp); err != nil {
				panic(fmt.Sprintf("bmc: back-mapped witness replay failed: %v", err))
			}
		}
	}
	if r.Tracker != nil {
		r.Tracker = r.Tracker.Remap(
			func(i int) int { return c.mp.SourceLatchIndex(i) },
			func(mi, ri int) (int, int) { return c.mp.SourceMem(mi), c.mp.SourceRead(mi, ri) },
		)
	}
	return r
}

// mapWitnessToSource rewrites a compiled-netlist witness into source node
// ids and memory indices. Inputs and latches the pipeline removed simply
// have no entry — the property cannot depend on them, and the simulator
// defaults absent inputs to false and absent initial latches to their
// reset value.
func (c compiled) mapWitnessToSource(w *Witness) *Witness {
	out := &Witness{Length: w.Length}
	for _, in := range w.Inputs {
		sin := make(map[aig.NodeID]bool, len(in))
		for id, v := range in {
			if sid, ok := c.mp.SourceInput(id); ok {
				sin[sid] = v
			}
		}
		out.Inputs = append(out.Inputs, sin)
	}
	out.InitLatches = make(map[aig.NodeID]bool, len(w.InitLatches))
	for id, v := range w.InitLatches {
		if sid, ok := c.mp.SourceLatch(id); ok {
			out.InitLatches[sid] = v
		}
	}
	out.MemInit = make([]map[int]uint64, len(c.src.Memories))
	for mi := range out.MemInit {
		out.MemInit[mi] = map[int]uint64{}
	}
	for cmi, words := range w.MemInit {
		out.MemInit[c.mp.SourceMem(cmi)] = words
	}
	return out
}

// mapAbsToCompiled translates an abstraction stated on the source netlist
// (the coordinate system all public results use) onto the compiled
// netlist cn. Latches and ports the pipeline pruned have no compiled
// counterpart and drop out of the abstraction.
func mapAbsToCompiled(a *pba.Abstraction, cn *aig.Netlist, mp *pass.Mapping) *pba.Abstraction {
	out := &pba.Abstraction{FreeLatches: make(map[aig.NodeID]bool, len(a.FreeLatches))}
	for id := range a.FreeLatches {
		if cid, ok := mp.CompiledLatch(id); ok {
			out.FreeLatches[cid] = true
		}
	}
	out.KeptLatches = len(cn.Latches) - len(out.FreeLatches)
	enabled := func(s []bool, i int) bool { return i < len(s) && s[i] }
	for cmi, m := range cn.Memories {
		smi := mp.SourceMem(cmi)
		out.MemEnabled = append(out.MemEnabled, enabled(a.MemEnabled, smi))
		reads := make([]bool, len(m.Reads))
		for cri := range reads {
			sri := mp.SourceRead(cmi, cri)
			reads[cri] = smi < len(a.ReadEnabled) && enabled(a.ReadEnabled[smi], sri)
		}
		out.ReadEnabled = append(out.ReadEnabled, reads)
		writes := make([]bool, len(m.Writes))
		for cwi := range writes {
			swi := mp.SourceWrite(cmi, cwi)
			writes[cwi] = smi < len(a.WriteEnabled) && enabled(a.WriteEnabled[smi], swi)
		}
		out.WriteEnabled = append(out.WriteEnabled, writes)
	}
	return out
}
