package unroll

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
	"emmver/internal/sat"
	"emmver/internal/sim"
)

// counterDesign builds a w-bit counter that increments when en holds.
func counterDesign(w int) (*rtl.Module, aig.Lit, *rtl.Reg) {
	m := rtl.NewModule("counter")
	en := m.InputBit("en")
	r := m.Register("cnt", w, 0)
	r.Update(en, m.Inc(r.Q))
	m.Done(r)
	return m, en, r
}

func TestTagPacking(t *testing.T) {
	tg := MkTag(TagLatchNext, 17, 12345)
	if tg.Kind() != TagLatchNext || tg.Frame() != 17 || tg.Index() != 12345 {
		t.Fatalf("tag roundtrip failed: %v", tg)
	}
	if tg.String() == "" {
		t.Fatalf("empty tag string")
	}
	for _, k := range []TagKind{TagGate, TagLatchNext, TagLatchInit, TagEMM, TagEMMInit, TagConstraint, TagLFP, TagAux} {
		if k.String() == "?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestTagRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-range frame must panic")
		}
	}()
	MkTag(TagGate, 1<<20, 0)
}

func TestConstLits(t *testing.T) {
	s := sat.New()
	m := rtl.NewModule("t")
	u := New(m.N, s, Initialized)
	if u.TrueLit() != u.FalseLit().Not() {
		t.Fatalf("const lits inconsistent")
	}
	if !u.IsConst(u.TrueLit()) || !u.IsConst(u.FalseLit()) {
		t.Fatalf("IsConst wrong")
	}
	// The constant must be pinned.
	if s.Solve(u.FalseLit()) != sat.Unsat {
		t.Fatalf("false literal must be unsatisfiable")
	}
	if s.Solve(u.TrueLit()) != sat.Sat {
		t.Fatalf("true literal must be satisfiable")
	}
}

// TestUnrollMatchesSimulator drives the same random inputs through the
// unrolled CNF (via assumptions) and the concrete simulator, comparing the
// counter value at every frame.
func TestUnrollMatchesSimulator(t *testing.T) {
	const w, depth = 4, 12
	m, en, r := counterDesign(w)
	s := sat.New()
	u := New(m.N, s, Initialized)

	rng := rand.New(rand.NewSource(3))
	var assumps []sat.Lit
	var envals []bool
	for f := 0; f < depth; f++ {
		ev := rng.Intn(2) == 1
		envals = append(envals, ev)
		assumps = append(assumps, u.Lit(en, f).XorSign(!ev))
		// Make sure the counter cone is unrolled at this frame.
		u.VecLits(r.Q, f)
	}
	if got := s.Solve(assumps...); got != sat.Sat {
		t.Fatalf("unrolled trace must be satisfiable, got %v", got)
	}
	simu := sim.New(m.N)
	for f := 0; f < depth; f++ {
		simu.Begin(nil)
		simVal := simu.EvalVec(r.Q)
		cnfVal := u.ModelVec(r.Q, f)
		if simVal != cnfVal {
			t.Fatalf("frame %d: sim=%d cnf=%d", f, simVal, cnfVal)
		}
		simu.Step(map[aig.NodeID]bool{en.Node(): envals[f]})
	}
}

func TestInitializedVsFreeMode(t *testing.T) {
	m, _, r := counterDesign(2)
	isThree := m.EqConst(r.Q, 3)
	m.N.AddProperty("not3", isThree.Not())

	// Initialized: counter starts at 0, so ¬P at frame 0 is UNSAT.
	s1 := sat.New()
	u1 := New(m.N, s1, Initialized)
	if got := s1.Solve(u1.PropertyLit(0, 0).Not()); got != sat.Unsat {
		t.Fatalf("initialized frame-0 violation must be UNSAT, got %v", got)
	}
	// Free: frame 0 is arbitrary, so the violation is reachable.
	s2 := sat.New()
	u2 := New(m.N, s2, Free)
	if got := s2.Solve(u2.PropertyLit(0, 0).Not()); got != sat.Sat {
		t.Fatalf("free frame-0 violation must be SAT, got %v", got)
	}
}

func TestFoldInitsEquivalence(t *testing.T) {
	m, en, r := counterDesign(3)
	three := m.EqConst(r.Q, 3)
	m.N.AddProperty("reach3", three.Not())
	_ = en
	for _, fold := range []bool{false, true} {
		s := sat.New()
		u := New(m.N, s, Initialized)
		u.FoldInits = fold
		// The counter can reach 3 first at frame 3.
		for f := 0; f <= 3; f++ {
			got := s.Solve(u.PropertyLit(0, f).Not())
			want := sat.Unsat
			if f == 3 {
				want = sat.Sat
			}
			if got != want {
				t.Fatalf("fold=%v frame %d: got %v want %v", fold, f, got, want)
			}
		}
	}
}

func TestLoopFreePath(t *testing.T) {
	m, en, _ := counterDesign(2) // 4 reachable states
	_ = en
	s := sat.New()
	u := New(m.N, s, Initialized)
	// Depths 0..3 visit up to 4 distinct states: loop-free paths exist.
	for d := 0; d <= 3; d++ {
		if got := s.Solve(u.LoopFreeLit(d)); got != sat.Sat {
			t.Fatalf("depth %d: expected SAT, got %v", d, got)
		}
	}
	// Depth 4 needs 5 distinct states out of 4: impossible.
	if got := s.Solve(u.LoopFreeLit(4)); got != sat.Unsat {
		t.Fatalf("depth 4: expected UNSAT (diameter reached)")
	}
}

func TestLoopFreePathFreeMode(t *testing.T) {
	m, _, _ := counterDesign(2)
	s := sat.New()
	u := New(m.N, s, Free)
	// From an arbitrary start, 4 distinct states still fit, 5 do not.
	if got := s.Solve(u.LoopFreeLit(3)); got != sat.Sat {
		t.Fatalf("depth 3 free: expected SAT, got %v", got)
	}
	if got := s.Solve(u.LoopFreeLit(4)); got != sat.Unsat {
		t.Fatalf("depth 4 free: expected UNSAT, got %v", got)
	}
}

func TestStatelessLoopFree(t *testing.T) {
	m := rtl.NewModule("comb")
	a := m.InputBit("a")
	m.N.AddProperty("p", a)
	s := sat.New()
	u := New(m.N, s, Initialized)
	if u.LoopFreeLit(0) != u.TrueLit() {
		t.Fatalf("stateless depth-0 LFP must be true")
	}
	if u.LoopFreeLit(1) != u.FalseLit() {
		t.Fatalf("stateless depth-1 LFP must be false")
	}
}

func TestAbstractedLatchIsFree(t *testing.T) {
	m, _, r := counterDesign(2)
	isThree := m.EqConst(r.Q, 3)
	m.N.AddProperty("not3", isThree.Not())
	s := sat.New()
	u := New(m.N, s, Initialized)
	for _, q := range r.Q {
		u.Abstracted[q.Node()] = true
	}
	// With the counter abstracted, the violation is immediate.
	if got := s.Solve(u.PropertyLit(0, 0).Not()); got != sat.Sat {
		t.Fatalf("abstracted latches must make frame-0 violation SAT")
	}
}

func TestCoreContainsLatchTags(t *testing.T) {
	m, en, r := counterDesign(2)
	_ = en
	isThree := m.EqConst(r.Q, 3)
	m.N.AddProperty("not3", isThree.Not())
	s := sat.New()
	s.EnableProofTracing()
	u := New(m.N, s, Initialized)
	// Frame-1 violation is UNSAT (counter can be at most 1).
	if got := s.Solve(u.PropertyLit(0, 1).Not()); got != sat.Unsat {
		t.Fatalf("expected UNSAT")
	}
	var sawLatch bool
	for _, raw := range s.Core() {
		tg := Tag(raw)
		if tg.Kind() == TagLatchNext || tg.Kind() == TagLatchInit {
			sawLatch = true
		}
	}
	if !sawLatch {
		t.Fatalf("core must mention latch clauses")
	}
}

func TestConstraintsRestrictBehavior(t *testing.T) {
	m, en, r := counterDesign(2)
	m.Assume(en.Not()) // counter never enabled
	nonzero := m.NonZero(r.Q)
	m.N.AddProperty("zero", nonzero.Not())
	s := sat.New()
	u := New(m.N, s, Initialized)
	for f := 0; f <= 4; f++ {
		u.AssertConstraints(f)
		if got := s.Solve(u.PropertyLit(0, f).Not()); got != sat.Unsat {
			t.Fatalf("frame %d: constrained counter must stay 0", f)
		}
	}
}

func TestMemReadNodesAreFree(t *testing.T) {
	m := rtl.NewModule("t")
	mem := m.Memory("ram", 2, 4, aig.MemZero)
	rd := mem.Read(m.Input("addr", 2), aig.True)
	m.N.AddProperty("rd0", m.IsZero(rd))
	s := sat.New()
	u := New(m.N, s, Initialized)
	// Without EMM constraints, read data is unconstrained: violation SAT.
	if got := s.Solve(u.PropertyLit(0, 0).Not()); got != sat.Sat {
		t.Fatalf("unconstrained read data must allow violation")
	}
}

func TestModelVecAndBit(t *testing.T) {
	m := rtl.NewModule("t")
	a := m.Input("a", 4)
	s := sat.New()
	u := New(m.N, s, Initialized)
	var assumps []sat.Lit
	want := uint64(0b1010)
	for i, l := range a {
		assumps = append(assumps, u.Lit(l, 0).XorSign(want>>uint(i)&1 == 0))
	}
	if s.Solve(assumps...) != sat.Sat {
		t.Fatalf("expected SAT")
	}
	if got := u.ModelVec(a, 0); got != want {
		t.Fatalf("ModelVec got %#x want %#x", got, want)
	}
	if u.ModelBit(a[1], 0) != true || u.ModelBit(a[0], 0) != false {
		t.Fatalf("ModelBit wrong")
	}
}

func TestFramesGrowLazily(t *testing.T) {
	m, en, _ := counterDesign(2)
	s := sat.New()
	u := New(m.N, s, Initialized)
	if u.Frames() != 0 {
		t.Fatalf("no frames should exist initially")
	}
	u.Lit(en, 5)
	if u.Frames() != 6 {
		t.Fatalf("expected 6 frames, got %d", u.Frames())
	}
}
