package unroll

import "fmt"

// TagKind classifies the provenance of a CNF clause, so that an UNSAT core
// (a set of clause tags) can be mapped back to design objects — in
// particular to latches, which drives the latch-based proof-based
// abstraction of §2.2/§4.3.
type TagKind int64

// Clause provenance kinds.
const (
	// TagGate marks Tseitin clauses of a combinational AND gate; index is
	// the aig node id.
	TagGate TagKind = iota + 1
	// TagLatchNext marks the clauses linking a latch variable at frame t to
	// its next-state function at frame t-1; index is the latch position in
	// Netlist.Latches.
	TagLatchNext
	// TagLatchInit marks frame-0 initial-value clauses of a latch.
	TagLatchInit
	// TagEMM marks memory-modeling (data forwarding) constraints; index
	// packs the memory index and read port.
	TagEMM
	// TagEMMInit marks arbitrary-initial-state constraints (eq. 6).
	TagEMMInit
	// TagConstraint marks environment-constraint clauses.
	TagConstraint
	// TagLFP marks loop-free-path constraint clauses.
	TagLFP
	// TagAux marks helper clauses with no design meaning.
	TagAux
)

// String names the kind.
func (k TagKind) String() string {
	switch k {
	case TagGate:
		return "gate"
	case TagLatchNext:
		return "latch"
	case TagLatchInit:
		return "latch-init"
	case TagEMM:
		return "emm"
	case TagEMMInit:
		return "emm-init"
	case TagConstraint:
		return "constraint"
	case TagLFP:
		return "lfp"
	case TagAux:
		return "aux"
	}
	return "?"
}

// Tag is a packed clause provenance: kind, time frame, and object index.
type Tag int64

const (
	tagKindShift  = 56
	tagFrameShift = 40
	tagFrameMask  = 0xFFFF
	tagIdxMask    = (1 << tagFrameShift) - 1
)

// MkTag packs a provenance tag.
func MkTag(kind TagKind, frame, idx int) Tag {
	if frame < 0 || frame > tagFrameMask {
		panic(fmt.Sprintf("unroll: frame %d out of tag range", frame))
	}
	if idx < 0 || int64(idx) > tagIdxMask {
		panic(fmt.Sprintf("unroll: index %d out of tag range", idx))
	}
	return Tag(int64(kind)<<tagKindShift | int64(frame)<<tagFrameShift | int64(idx))
}

// Kind extracts the provenance kind.
func (t Tag) Kind() TagKind { return TagKind(int64(t) >> tagKindShift) }

// Frame extracts the time frame.
func (t Tag) Frame() int { return int(int64(t) >> tagFrameShift & tagFrameMask) }

// Index extracts the object index.
func (t Tag) Index() int { return int(int64(t) & tagIdxMask) }

// String renders the tag for debugging.
func (t Tag) String() string {
	return fmt.Sprintf("%s@%d#%d", t.Kind(), t.Frame(), t.Index())
}
