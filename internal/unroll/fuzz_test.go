package unroll

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/rtl"
	"emmver/internal/sat"
	"emmver/internal/sim"
)

// randomSequential builds a random register-and-gates design and returns
// the module plus a probe bus covering all register bits.
func randomSequential(rng *rand.Rand) (*rtl.Module, rtl.Vec) {
	m := rtl.NewModule("fuzz")
	var sigs []aig.Lit
	for i := 0; i < 1+rng.Intn(4); i++ {
		sigs = append(sigs, m.InputBit("in"))
	}
	var regs []*rtl.Reg
	var probe rtl.Vec
	for i := 0; i < 1+rng.Intn(4); i++ {
		w := 1 + rng.Intn(3)
		r := m.Register("r", w, rng.Uint64())
		regs = append(regs, r)
		sigs = append(sigs, r.Q...)
		probe = append(probe, r.Q...)
	}
	pick := func() aig.Lit {
		l := sigs[rng.Intn(len(sigs))]
		if rng.Intn(2) == 1 {
			l = l.Not()
		}
		return l
	}
	for i := 0; i < 4+rng.Intn(16); i++ {
		var g aig.Lit
		switch rng.Intn(4) {
		case 0:
			g = m.N.And(pick(), pick())
		case 1:
			g = m.N.Or(pick(), pick())
		case 2:
			g = m.N.Xor(pick(), pick())
		default:
			g = m.N.Mux(pick(), pick(), pick())
		}
		sigs = append(sigs, g)
	}
	for _, r := range regs {
		next := make(rtl.Vec, len(r.Q))
		for i := range next {
			next[i] = pick()
		}
		r.SetNext(next)
	}
	m.Done(regs...)
	return m, probe
}

// TestUnrollFuzzAgainstSimulator drives random designs with random input
// traces through the CNF unrolling (via assumptions) and the interpreter,
// comparing every register bit at every frame.
func TestUnrollFuzzAgainstSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for iter := 0; iter < 40; iter++ {
		m, probe := randomSequential(rng)
		depth := 1 + rng.Intn(8)
		s := sat.New()
		u := New(m.N, s, Initialized)
		u.FoldInits = rng.Intn(2) == 1

		var assumps []sat.Lit
		trace := make([]map[aig.NodeID]bool, depth+1)
		for f := 0; f <= depth; f++ {
			trace[f] = map[aig.NodeID]bool{}
			for _, id := range m.N.Inputs {
				v := rng.Intn(2) == 1
				trace[f][id] = v
				assumps = append(assumps, u.Lit(aig.MkLit(id, false), f).XorSign(!v))
			}
			u.VecLits(probe, f)
		}
		if got := s.Solve(assumps...); got != sat.Sat {
			t.Fatalf("iter %d: forced trace must be SAT, got %v", iter, got)
		}
		simu := sim.New(m.N)
		for f := 0; f <= depth; f++ {
			simu.Begin(trace[f])
			want := simu.EvalVec(probe)
			got := u.ModelVec(probe, f)
			if want != got {
				t.Fatalf("iter %d frame %d: sim=%b cnf=%b", iter, f, want, got)
			}
			simu.Step(trace[f])
		}
	}
}

// TestFreeModeAdmitsAllStates: in Free mode, any latch valuation must be
// satisfiable at frame 0.
func TestFreeModeAdmitsAllStates(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	for iter := 0; iter < 20; iter++ {
		m, probe := randomSequential(rng)
		s := sat.New()
		u := New(m.N, s, Free)
		var assumps []sat.Lit
		for _, l := range probe {
			assumps = append(assumps, u.Lit(l, 0).XorSign(rng.Intn(2) == 1))
		}
		if got := s.Solve(assumps...); got != sat.Sat {
			t.Fatalf("iter %d: free frame-0 state must be unconstrained", iter)
		}
	}
}
