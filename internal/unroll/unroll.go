// Package unroll performs time-frame expansion of an aig netlist into the
// incremental SAT solver: each design literal at each analysis depth maps to
// a CNF literal, combinational gates are Tseitin-encoded on demand, latches
// are chained across frames through tagged interface clauses, and loop-free
// path (simple-path) constraints support the SAT-based induction proofs of
// BMC-1/BMC-3.
package unroll

import (
	"fmt"

	"emmver/internal/aig"
	"emmver/internal/obs"
	"emmver/internal/sat"
)

// Mode selects the interpretation of the first time frame.
type Mode int

// Unrolling modes.
const (
	// Initialized anchors frame 0 at the design's initial state: latches
	// take their declared reset values (InitX latches become free
	// variables). Used for the "I ∧ ..." SAT problems.
	Initialized Mode = iota
	// Free leaves frame-0 latches unconstrained. Used for the backward
	// (induction-step) SAT problems, which quantify over arbitrary
	// starting states.
	Free
)

// String names the mode.
func (m Mode) String() string {
	if m == Free {
		return "free"
	}
	return "initialized"
}

// Unroller expands a netlist over time frames into a SAT solver.
type Unroller struct {
	N    *aig.Netlist
	S    *sat.Solver
	Mode Mode

	// Abstracted marks latches replaced by pseudo-primary inputs (PBA
	// latch-based abstraction). Must be populated before any frame of the
	// latch is unrolled.
	Abstracted map[aig.NodeID]bool

	// FoldInits folds latch reset values into structural constants at
	// frame 0. This shrinks the formula but erases the initial-value
	// clauses from UNSAT cores, so it must stay false when the run feeds
	// proof-based abstraction.
	FoldInits bool

	// MemAwareLFP strengthens the loop-free-path constraint for designs
	// whose memories are NOT part of the latch state (EMM models): two
	// frames count as equal only if their latch states match AND no write
	// port fired in between (the memory provably did not change). The
	// paper's literal LFP compares latches only, which can declare bogus
	// "diameters" when behavior depends on evolving memory contents; see
	// EXPERIMENTS.md. Ignored when the netlist has no memories.
	MemAwareLFP bool

	frames []frame

	constFalse sat.Lit // a CNF literal fixed to false

	latchIdx map[aig.NodeID]int // node -> position in N.Latches

	lfp      []sat.Lit // lfp[i] = loop-free-path literal for window [0, i]
	writeAny []sat.Lit // per frame: some write port enabled

	// NoStrash disables the structural-hashing cache on AND gates. Only
	// used for A/B measurements and equivalence tests; hashing is sound
	// (gates are pure combinational definitions) and on by default.
	NoStrash bool

	// strash maps a normalized (a, b) input pair to the literal of the AND
	// gate already built for it, so repeated gates cost a map hit instead
	// of a fresh variable plus three clauses. Keys are normalized with
	// a ≤ b; constant and complement cases fold before the lookup.
	strash map[[2]sat.Lit]sat.Lit

	// StrashHits counts gate requests answered from the strash cache.
	StrashHits int

	// GatesBuilt counts AND gates actually Tseitin-encoded (strash hits
	// excluded), so GatesBuilt + StrashHits is the number of gate requests.
	GatesBuilt int

	// Clause/variable accounting.
	ClausesAdded int
	AuxVars      int

	// Observability (AttachObs): registry counters the unroller publishes
	// cumulative-tally deltas into on PublishObs. The per-gate counters
	// above stay plain ints on the build path; only the depth-boundary
	// publish touches atomics.
	obsGates   *obs.Counter
	obsStrash  *obs.Counter
	obsClauses *obs.Counter
	obsVars    *obs.Counter
	obsPub     struct{ gates, strash, clauses, vars int }

	// TrackCanon enables the per-variable canonical coding consumed by the
	// clause-sharing bridge (internal/bmc). When on, every frame value built
	// by nodeLit is tagged with a worker-independent code derived from its
	// (node, time-frame) coordinate, so a learnt clause over such variables
	// can be relocated into a peer solver's CNF numbering. Must be set
	// before the first frame is unrolled.
	TrackCanon bool

	// canon maps CNF variable -> canonical code (base<<1 | signbit), 0 when
	// the variable carries no canonical identity (depth-local auxiliaries).
	// First writer wins: a variable serving several (node, frame) roles
	// keeps its first coordinate, which is sound because any one coordinate
	// names the same CNF signal in every worker.
	canon []uint64
}

type frame struct {
	vals        []sat.Lit // node id -> CNF literal, -1 when not yet built
	constrained bool      // environment constraints asserted for this frame
}

// New creates an unroller feeding the given solver. The solver must be
// fresh (no variables allocated).
func New(n *aig.Netlist, s *sat.Solver, mode Mode) *Unroller {
	u := &Unroller{
		N:          n,
		S:          s,
		Mode:       mode,
		Abstracted: make(map[aig.NodeID]bool),
		latchIdx:   make(map[aig.NodeID]int),
	}
	cv := s.NewVar()
	u.constFalse = sat.NegLit(cv)
	s.AddClauseTagged(int64(MkTag(TagAux, 0, 0)), []sat.Lit{sat.PosLit(cv)})
	for i, l := range n.Latches {
		u.latchIdx[l.Node] = i
	}
	return u
}

// AttachObs binds the unroller to an observer's metrics registry under the
// canonical unroll.* names. Like the solver, several unrollers (forward,
// backward, fleet workers) attach to one registry and publish deltas.
func (u *Unroller) AttachObs(o *obs.Observer) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	u.obsGates = reg.Counter(obs.MUnrollGates)
	u.obsStrash = reg.Counter(obs.MStrashHits)
	u.obsClauses = reg.Counter(obs.MUnrollClauses)
	u.obsVars = reg.Counter(obs.MUnrollVars)
}

// PublishObs pushes the tally growth since the last publish into the
// attached registry (no-op when detached). The BMC engine calls it at
// depth boundaries.
func (u *Unroller) PublishObs() {
	if u.obsGates == nil {
		return
	}
	u.obsGates.Add(int64(u.GatesBuilt - u.obsPub.gates))
	u.obsStrash.Add(int64(u.StrashHits - u.obsPub.strash))
	u.obsClauses.Add(int64(u.ClausesAdded - u.obsPub.clauses))
	u.obsVars.Add(int64(u.AuxVars - u.obsPub.vars))
	u.obsPub.gates, u.obsPub.strash = u.GatesBuilt, u.StrashHits
	u.obsPub.clauses, u.obsPub.vars = u.ClausesAdded, u.AuxVars
}

// FalseLit returns the CNF literal fixed to false.
func (u *Unroller) FalseLit() sat.Lit { return u.constFalse }

// TrueLit returns the CNF literal fixed to true.
func (u *Unroller) TrueLit() sat.Lit { return u.constFalse.Not() }

// IsConst reports whether l is one of the two constant CNF literals.
func (u *Unroller) IsConst(l sat.Lit) bool {
	return l.Var() == u.constFalse.Var()
}

// Frames returns the number of frames touched so far.
func (u *Unroller) Frames() int { return len(u.frames) }

func (u *Unroller) frameAt(t int) *frame {
	for len(u.frames) <= t {
		f := frame{vals: make([]sat.Lit, u.N.NumNodes())}
		for i := range f.vals {
			f.vals[i] = sat.LitUndef
		}
		u.frames = append(u.frames, f)
	}
	return &u.frames[t]
}

func (u *Unroller) addClause(tag Tag, lits ...sat.Lit) {
	u.S.AddClauseTagged(int64(tag), lits)
	u.ClausesAdded++
}

// FreshVar allocates an auxiliary CNF variable.
func (u *Unroller) FreshVar() sat.Lit {
	u.AuxVars++
	return sat.PosLit(u.S.NewVar())
}

// Freeze marks l's variable as part of the cross-depth interface, exempting
// it from the solver's inprocessing elimination (sat.Solver.Freeze). The
// unroller freezes everything it caches for reuse across depths — frame
// values, structural-hash outputs, loop-free-path and write-activity
// literals — while purely depth-local auxiliaries (difference-vector and
// chain gates) stay eliminable. Clients building their own cross-depth
// signals (the EMM generator) use this same hook.
func (u *Unroller) Freeze(l sat.Lit) { u.S.Freeze(l.Var()) }

// Lit returns the CNF literal of design literal l at time frame t, building
// the needed logic on demand.
func (u *Unroller) Lit(l aig.Lit, t int) sat.Lit {
	v := u.nodeLit(l.Node(), t)
	if l.Inverted() {
		return v.Not()
	}
	return v
}

func (u *Unroller) nodeLit(id aig.NodeID, t int) sat.Lit {
	f := u.frameAt(t)
	if v := f.vals[id]; v != sat.LitUndef {
		return v
	}
	node := u.N.NodeAt(id)
	var v sat.Lit
	switch node.Kind {
	case aig.KConst:
		v = u.constFalse
	case aig.KInput, aig.KMemRead:
		v = u.FreshVar()
	case aig.KLatch:
		v = u.latchLit(id, t)
	case aig.KAnd:
		a := u.Lit(node.F0, t)
		b := u.Lit(node.F1, t)
		v = u.mkAnd(a, b, MkTag(TagGate, t, int(id)))
	default:
		panic(fmt.Sprintf("unroll: unknown node kind %v", node.Kind))
	}
	// Re-fetch the frame: building fanins may have grown u.frames. The
	// cached literal may be consulted at any later depth, so it is frozen
	// against elimination.
	u.frames[t].vals[id] = v
	u.Freeze(v)
	u.noteCanon(v, u.frameBase(id, t))
	return v
}

// frameBase is the canonical base code of node id at time frame t. Bases
// start at 1 so code 0 stays the "no identity" sentinel.
func (u *Unroller) frameBase(id aig.NodeID, t int) uint64 {
	return uint64(t)*uint64(u.N.NumNodes()) + uint64(id) + 1
}

// noteCanon records l's canonical identity (first writer wins).
func (u *Unroller) noteCanon(l sat.Lit, base uint64) {
	if !u.TrackCanon || u.IsConst(l) {
		return
	}
	v := int(l.Var())
	for len(u.canon) <= v {
		u.canon = append(u.canon, 0)
	}
	if u.canon[v] != 0 {
		return
	}
	code := base << 1
	if l.Sign() {
		code |= 1
	}
	u.canon[v] = code
}

// SetCanon assigns l a caller-chosen canonical base (the sharing bridge
// uses it to give EMM address comparators a fleet-interned identity outside
// the frame coordinate space). First writer wins, like noteCanon.
func (u *Unroller) SetCanon(l sat.Lit, base uint64) { u.noteCanon(l, base) }

// CanonLit returns l's canonical literal code, or 0 when l's variable has
// no canonical identity. The low bit is the sign relative to the canonical
// signal, so CanonLit(l.Not()) == CanonLit(l) ^ 1 for mapped l.
func (u *Unroller) CanonLit(l sat.Lit) uint64 {
	v := int(l.Var())
	if !u.TrackCanon || v >= len(u.canon) || u.canon[v] == 0 {
		return 0
	}
	code := u.canon[v]
	if l.Sign() {
		code ^= 1
	}
	return code
}

// LocalLit resolves a frame-coordinate canonical code to this unroller's
// CNF literal, reporting false when the coded (node, frame) value has not
// been built here (the import filter drops such clauses). Comparator-space
// codes are the bridge's business, not this decoder's.
func (u *Unroller) LocalLit(code uint64) (sat.Lit, bool) {
	base := code >> 1
	if base == 0 {
		return sat.LitUndef, false
	}
	idx := base - 1
	nn := uint64(u.N.NumNodes())
	t := idx / nn
	if t >= uint64(len(u.frames)) {
		return sat.LitUndef, false
	}
	l := u.frames[t].vals[idx%nn]
	if l == sat.LitUndef {
		return sat.LitUndef, false
	}
	return l.XorSign(code&1 == 1), true
}

func (u *Unroller) latchLit(id aig.NodeID, t int) sat.Lit {
	l := u.N.LatchOf(id)
	idx := u.latchIdx[id]
	if u.Abstracted[id] {
		return u.FreshVar() // pseudo-primary input at every frame
	}
	if t == 0 {
		if u.Mode == Free || l.Init == aig.InitX {
			return u.FreshVar()
		}
		if u.FoldInits {
			if l.Init == aig.Init0 {
				return u.constFalse
			}
			return u.constFalse.Not()
		}
		// A dedicated frame-0 variable pinned by a tagged unit clause, so
		// that proof cores can attribute initial values to their latch.
		v := u.FreshVar()
		lit := v
		if l.Init == aig.Init0 {
			lit = v.Not()
		}
		u.addClause(MkTag(TagLatchInit, 0, idx), lit)
		return v
	}
	next := u.Lit(l.Next, t-1)
	// A dedicated latch interface variable, tied to the next-state value
	// through clauses tagged with the latch index — these tags are what
	// latch-based proof abstraction harvests from UNSAT cores.
	v := u.FreshVar()
	tag := MkTag(TagLatchNext, t, idx)
	u.addClause(tag, v.Not(), next)
	u.addClause(tag, v, next.Not())
	return v
}

// mkAnd builds (and Tseitin-encodes) the conjunction of two CNF literals,
// with constant and structural folding. Repeated (a, b) pairs are answered
// from the strash cache: the same gate is never encoded twice, which keeps
// the CNF linear where the EMM constraints request structurally identical
// comparators at successive depths. The cached gate keeps its first
// creator's tag. That is sound for verdicts, but the EMM generator routes
// TagEMM-tagged gates through here, and proof-based abstraction decides
// relevance from the tags in UNSAT cores — so the BMC engine sets NoStrash
// whenever cores are being tracked (see newEngine).
func (u *Unroller) mkAnd(a, b sat.Lit, tag Tag) sat.Lit {
	cf, ct := u.constFalse, u.constFalse.Not()
	switch {
	case a == cf || b == cf:
		return cf
	case a == ct:
		return b
	case b == ct:
		return a
	case a == b:
		return a
	case a == b.Not():
		return cf
	}
	if !u.NoStrash {
		if a > b {
			a, b = b, a
		}
		key := [2]sat.Lit{a, b}
		if v, ok := u.strash[key]; ok {
			u.StrashHits++
			return v
		}
		v := u.FreshVar()
		u.GatesBuilt++
		u.addClause(tag, v.Not(), a)
		u.addClause(tag, v.Not(), b)
		u.addClause(tag, v, a.Not(), b.Not())
		if u.strash == nil {
			u.strash = make(map[[2]sat.Lit]sat.Lit)
		}
		u.strash[key] = v
		u.Freeze(v) // cache entries are served at later depths
		return v
	}
	v := u.FreshVar()
	u.GatesBuilt++
	u.addClause(tag, v.Not(), a)
	u.addClause(tag, v.Not(), b)
	u.addClause(tag, v, a.Not(), b.Not())
	return v
}

// MkAndAux is mkAnd with an auxiliary tag, for clients (EMM) that build
// helper gates.
func (u *Unroller) MkAndAux(a, b sat.Lit, tag Tag) sat.Lit { return u.mkAnd(a, b, tag) }

// MkOrAux builds a disjunction gate.
func (u *Unroller) MkOrAux(a, b sat.Lit, tag Tag) sat.Lit {
	return u.mkAnd(a.Not(), b.Not(), tag).Not()
}

// PropertyLit returns the CNF literal of property p at frame t.
func (u *Unroller) PropertyLit(p int, t int) sat.Lit {
	return u.Lit(u.N.Props[p].OK, t)
}

// AssertConstraints adds the netlist's environment constraints for frame t
// (idempotent per frame).
func (u *Unroller) AssertConstraints(t int) {
	f := u.frameAt(t)
	if f.constrained {
		return
	}
	f.constrained = true
	for _, c := range u.N.Constraints {
		lit := u.Lit(c, t)
		u.addClause(MkTag(TagConstraint, t, 0), lit)
	}
}

// stateVector returns the CNF literals of all non-abstracted latches at
// frame t (building them if needed).
func (u *Unroller) stateVector(t int) []sat.Lit {
	var out []sat.Lit
	for _, l := range u.N.Latches {
		if u.Abstracted[l.Node] {
			continue
		}
		out = append(out, u.nodeLit(l.Node, t))
	}
	return out
}

// LoopFreeLit returns a CNF literal that, when assumed, forces the states
// at frames 0..depth to be pairwise distinct (LFP_depth in the paper's
// BMC-1/BMC-3). Only the "assume positively" direction is encoded.
func (u *Unroller) LoopFreeLit(depth int) sat.Lit {
	if len(u.N.Latches) == 0 {
		// A stateless design: any two frames have equal (empty) state, so
		// no loop-free path of length ≥ 1 exists.
		if depth == 0 {
			return u.TrueLit()
		}
		return u.FalseLit()
	}
	for len(u.lfp) <= depth {
		i := len(u.lfp)
		tag := MkTag(TagLFP, i, 0)
		v := u.FreshVar()
		if i == 0 {
			// A single state is trivially loop-free.
			u.addClause(tag, v)
			u.lfp = append(u.lfp, v)
			u.Freeze(v)
			continue
		}
		// v -> lfp[i-1]
		u.addClause(tag, v.Not(), u.lfp[i-1])
		si := u.stateVector(i)
		for a := 0; a < i; a++ {
			sa := u.stateVector(a)
			d := u.neqVector(sa, si, tag)
			// v -> (states differ ∨ a write changed memory in between).
			cl := []sat.Lit{v.Not(), d}
			if u.MemAwareLFP {
				for j := a; j < i; j++ {
					cl = append(cl, u.writeAnyLit(j))
				}
			}
			u.addClause(tag, cl...)
		}
		u.lfp = append(u.lfp, v)
		u.Freeze(v) // assumed (and extended) at every later depth
	}
	return u.lfp[depth]
}

// writeAnyLit returns (building lazily) a literal that holds when any
// memory write port is enabled at frame t.
func (u *Unroller) writeAnyLit(t int) sat.Lit {
	for len(u.writeAny) <= t {
		f := len(u.writeAny)
		out := u.constFalse
		tag := MkTag(TagLFP, f, 1)
		for _, m := range u.N.Memories {
			for _, wp := range m.Writes {
				out = u.MkOrAux(out, u.Lit(wp.En, f), tag)
			}
		}
		u.writeAny = append(u.writeAny, out)
		u.Freeze(out) // referenced by every later LFP window
	}
	return u.writeAny[t]
}

// WriteActivity returns a literal that holds when any memory write port is
// enabled at frame t (False for memory-free designs).
func (u *Unroller) WriteActivity(t int) sat.Lit { return u.writeAnyLit(t) }

// neqVector builds d with d -> (xs != ys), one implication direction only.
func (u *Unroller) neqVector(xs, ys []sat.Lit, tag Tag) sat.Lit {
	if len(xs) != len(ys) {
		panic("unroll: state vector width mismatch")
	}
	d := u.FreshVar()
	// d -> (x1⊕y1) ∨ ... ∨ (xn⊕yn), via per-bit difference variables.
	cl := make([]sat.Lit, 0, len(xs)+1)
	cl = append(cl, d.Not())
	for i := range xs {
		x, y := xs[i], ys[i]
		xi := u.FreshVar()
		// xi -> x≠y
		u.addClause(tag, xi.Not(), x, y)
		u.addClause(tag, xi.Not(), x.Not(), y.Not())
		cl = append(cl, xi)
	}
	u.addClause(tag, cl...)
	return d
}

// Built reports whether node id has already been unrolled at frame t.
func (u *Unroller) Built(id aig.NodeID, t int) bool {
	return t < len(u.frames) && u.frames[t].vals[id] != sat.LitUndef
}

// InputLit returns the CNF literal of a primary input node at frame t.
func (u *Unroller) InputLit(id aig.NodeID, t int) sat.Lit { return u.nodeLit(id, t) }

// VecLits maps a design bus to CNF literals at frame t.
func (u *Unroller) VecLits(v []aig.Lit, t int) []sat.Lit {
	out := make([]sat.Lit, len(v))
	for i, l := range v {
		out[i] = u.Lit(l, t)
	}
	return out
}

// ModelVec decodes the solver model value of a design bus at frame t
// (0 for unassigned bits).
func (u *Unroller) ModelVec(v []aig.Lit, t int) uint64 {
	var out uint64
	for i, l := range v {
		if u.S.LitValue(u.Lit(l, t)) == sat.True {
			out |= 1 << uint(i)
		}
	}
	return out
}

// ModelBit decodes the model value of one design literal at frame t.
func (u *Unroller) ModelBit(l aig.Lit, t int) bool {
	return u.S.LitValue(u.Lit(l, t)) == sat.True
}
