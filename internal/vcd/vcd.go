// Package vcd writes counter-example traces as Value Change Dump files,
// the standard waveform interchange format, so that witnesses produced by
// the BMC engines can be inspected in any waveform viewer. Bit signals
// sharing a name with an index suffix ("addr[3]") are grouped into vector
// variables.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/sim"
)

// signal is one VCD variable: a named group of netlist bits (LSB first).
type signal struct {
	name string
	bits []aig.Lit
	id   string
	last string
}

// DumpWitness replays a witness on the concrete design and writes the
// resulting trace: all named inputs, all named latches, and a "prop_ok"
// flag for the property under check. One VCD time unit per clock cycle.
func DumpWitness(w io.Writer, n *aig.Netlist, wit *bmc.Witness, prop int) error {
	sigs := collectSignals(n)
	sigs = append(sigs, &signal{name: "prop_ok", bits: []aig.Lit{n.Props[prop].OK}})
	assignIDs(sigs)

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$version emmver counter-example (property %q) $end\n", n.Props[prop].Name)
	fmt.Fprintf(bw, "$timescale 1ns $end\n")
	fmt.Fprintf(bw, "$scope module %s $end\n", vcdName(n.Name))
	for _, s := range sigs {
		if len(s.bits) == 1 {
			fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", s.id, vcdName(s.name))
		} else {
			fmt.Fprintf(bw, "$var wire %d %s %s [%d:0] $end\n", len(s.bits), s.id, vcdName(s.name), len(s.bits)-1)
		}
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")

	simu := sim.New(n)
	for id, v := range wit.InitLatches {
		simu.SetLatch(id, v)
	}
	for mi, words := range wit.MemInit {
		for addr, word := range words {
			simu.SetMemWord(mi, addr, word)
		}
	}
	for f := 0; f <= wit.Length; f++ {
		simu.Begin(wit.Inputs[f])
		fmt.Fprintf(bw, "#%d\n", f)
		for _, s := range sigs {
			val := renderValue(simu, s)
			if val != s.last {
				if len(s.bits) == 1 {
					fmt.Fprintf(bw, "%s%s\n", val, s.id)
				} else {
					fmt.Fprintf(bw, "b%s %s\n", val, s.id)
				}
				s.last = val
			}
		}
		simu.Step(wit.Inputs[f])
	}
	fmt.Fprintf(bw, "#%d\n", wit.Length+1)
	return bw.Flush()
}

func renderValue(s *sim.Simulator, sig *signal) string {
	if len(sig.bits) == 1 {
		if s.Eval(sig.bits[0]) {
			return "1"
		}
		return "0"
	}
	out := make([]byte, len(sig.bits))
	for i, b := range sig.bits {
		c := byte('0')
		if s.Eval(b) {
			c = '1'
		}
		out[len(sig.bits)-1-i] = c // MSB first in VCD
	}
	return string(out)
}

// collectSignals groups named inputs and latches into vector signals.
func collectSignals(n *aig.Netlist) []*signal {
	type bitRef struct {
		idx int
		lit aig.Lit
	}
	groups := make(map[string][]bitRef)
	addBit := func(name string, lit aig.Lit) {
		base, idx := splitIndexed(name)
		groups[base] = append(groups[base], bitRef{idx: idx, lit: lit})
	}
	for _, id := range n.Inputs {
		if name := n.InputName(id); name != "" {
			addBit(name, aig.MkLit(id, false))
		}
	}
	for _, l := range n.Latches {
		if l.Name != "" {
			addBit(l.Name, aig.MkLit(l.Node, false))
		}
	}
	var names []string
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	var sigs []*signal
	for _, name := range names {
		refs := groups[name]
		sort.Slice(refs, func(i, j int) bool { return refs[i].idx < refs[j].idx })
		bits := make([]aig.Lit, len(refs))
		ok := true
		for i, r := range refs {
			if r.idx != i && !(len(refs) == 1 && r.idx == -1) {
				ok = false // sparse or duplicate indices: keep bits separate
				break
			}
			bits[i] = r.lit
		}
		if ok {
			sigs = append(sigs, &signal{name: name, bits: bits})
			continue
		}
		for _, r := range refs {
			sigs = append(sigs, &signal{
				name: fmt.Sprintf("%s_%d", name, r.idx),
				bits: []aig.Lit{r.lit},
			})
		}
	}
	return sigs
}

// splitIndexed parses "name[3]" into ("name", 3); plain names yield -1.
func splitIndexed(s string) (string, int) {
	if !strings.HasSuffix(s, "]") {
		return s, -1
	}
	open := strings.LastIndexByte(s, '[')
	if open < 0 {
		return s, -1
	}
	idx, err := strconv.Atoi(s[open+1 : len(s)-1])
	if err != nil || idx < 0 {
		return s, -1
	}
	return s[:open], idx
}

// assignIDs gives each signal a short printable VCD identifier.
func assignIDs(sigs []*signal) {
	for i, s := range sigs {
		s.id = idFor(i)
		s.last = "\x00" // force the first emission
	}
}

func idFor(i int) string {
	const first, count = 33, 94 // printable ASCII '!'..'~'
	var out []byte
	for {
		out = append(out, byte(first+i%count))
		i /= count
		if i == 0 {
			return string(out)
		}
		i--
	}
}

// vcdName sanitizes an identifier for VCD (no whitespace).
func vcdName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return '_'
		}
		return r
	}, s)
}
