package vcd

import (
	"bytes"
	"strings"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/rtl"
)

func TestSplitIndexed(t *testing.T) {
	cases := []struct {
		in   string
		base string
		idx  int
	}{
		{"cnt[3]", "cnt", 3},
		{"cnt[0]", "cnt", 0},
		{"plain", "plain", -1},
		{"weird]", "weird]", -1},
		{"neg[-1]", "neg[-1]", -1},
	}
	for _, c := range cases {
		b, i := splitIndexed(c.in)
		if b != c.base || i != c.idx {
			t.Fatalf("splitIndexed(%q) = %q,%d", c.in, b, i)
		}
	}
}

func TestIDFor(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := idFor(i)
		if id == "" || seen[id] {
			t.Fatalf("idFor(%d) = %q duplicate or empty", i, id)
		}
		seen[id] = true
		for j := 0; j < len(id); j++ {
			if id[j] < 33 || id[j] > 126 {
				t.Fatalf("unprintable id char")
			}
		}
	}
}

func TestDumpWitness(t *testing.T) {
	// Counter reaching 5: dump the CE and check the VCD structure.
	m := rtl.NewModule("dut")
	c := m.Register("cnt", 3, 0)
	en := m.InputBit("en")
	c.Update(en, m.Inc(c.Q))
	m.Done(c)
	m.AssertAlways("ne5", m.EqConst(c.Q, 5).Not())
	r := bmc.Check(m.N, 0, bmc.Options{MaxDepth: 10, ValidateWitness: true})
	if r.Kind != bmc.KindCE {
		t.Fatalf("expected CE, got %v", r)
	}
	var buf bytes.Buffer
	if err := DumpWitness(&buf, m.N, r.Witness, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$var wire 3 ", "cnt [2:0]", "$var wire 1 ", "en", "prop_ok",
		"$enddefinitions", "#0", "#5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in VCD:\n%s", want, out)
		}
	}
	// At the violation cycle the property flag must have dropped to 0;
	// the counter reaches binary 101.
	if !strings.Contains(out, "b101 ") {
		t.Fatalf("counter never showed 101:\n%s", out)
	}
}

func TestDumpWitnessWithMemoryInit(t *testing.T) {
	m := rtl.NewModule("dut")
	mem := m.Memory("mem", 2, 3, aig.MemArbitrary)
	rd := mem.Read(m.Const(2, 2), aig.True)
	m.AssertAlways("ne5", m.EqConst(rd, 5).Not())
	r := bmc.Check(m.N, 0, bmc.Options{MaxDepth: 3, UseEMM: true, ValidateWitness: true})
	if r.Kind != bmc.KindCE {
		t.Fatalf("expected CE, got %v", r)
	}
	var buf bytes.Buffer
	if err := DumpWitness(&buf, m.N, r.Witness, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "prop_ok") {
		t.Fatalf("bad VCD")
	}
}

func TestSparseIndicesFallBackToScalars(t *testing.T) {
	m := rtl.NewModule("dut")
	m.N.NewInput("odd[1]")
	m.N.NewInput("odd[3]")
	sigs := collectSignals(m.N)
	if len(sigs) != 2 {
		t.Fatalf("sparse bus must split into scalars: %d", len(sigs))
	}
}
